// Ablation: adaptive probe ramp-up (the Section 5.2 extension: "start at a
// low baseline rate and ramp up only when activity is detected").
//
// A bursty client issues a read burst, sleeps 200 us, repeats. Fixed fast
// probing pays constant probe bandwidth; fixed slow probing taxes first-
// request latency; adaptive probing gets (nearly) the best of both.
//
// --jobs N runs the three policy configurations concurrently (default:
// hardware concurrency); rows are emitted in fixed order, so output is
// identical for any N.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "bench_util.h"
#include "core/client.h"
#include "sim/parallel.h"
#include "spot/agent.h"
#include "spot/setup.h"
#include "workload/testbed.h"

using namespace cowbird;

namespace {

constexpr std::uint64_t kPoolBase = 0x100'0000;
constexpr std::uint64_t kHeap = 0x8000'0000;
constexpr std::uint16_t kRegion = 1;

struct Result {
  double first_latency_us = 0;   // avg latency of the first read of a burst
  double steady_latency_us = 0;  // avg latency of the rest of the burst
  double probes_per_ms = 0;
};

Result RunBursty(bool adaptive, Nanos base_interval) {
  workload::Testbed bed;
  const auto* pool_mr = bed.memory_dev.RegisterMemory(kPoolBase, MiB(16));
  core::CowbirdClient::Config cc;
  cc.layout.base = 0x10000;
  cc.layout.threads = 1;
  core::CowbirdClient client(bed.compute_dev, cc);
  client.RegisterRegion(core::RegionInfo{kRegion, workload::Testbed::kMemoryId,
                                         kPoolBase, pool_mr->rkey, MiB(16)});
  spot::SpotAgent::Config ac;
  ac.probe_interval = base_interval;
  ac.adaptive_probe = adaptive;
  spot::SpotAgent agent(bed.spot_dev, bed.spot_machine, ac);
  rdma::Device* memories[] = {&bed.memory_dev};
  auto conn = spot::ConnectSpotEngine(bed.spot_dev, bed.compute_dev, memories);
  agent.AddInstance(client.descriptor(), conn.to_compute, conn.compute_cq,
                    conn.to_memory, conn.memory_cqs);
  agent.Start();

  sim::SimThread thread(bed.compute_machine, "app");
  double first_sum = 0, steady_sum = 0;
  int bursts = 0, steady_count = 0;
  bed.sim.Spawn([](workload::Testbed& b, core::CowbirdClient& cl,
                   sim::SimThread& thr, double& sum, int& count,
                   double& ssum, int& scount) -> sim::Task<void> {
    auto& ctx = cl.thread(0);
    const core::PollId poll = ctx.PollCreate();
    Rng rng(5);
    for (int burst = 0; burst < 40; ++burst) {
      co_await thr.Idle(Micros(200));  // idle gap: adaptive backs off
      for (int i = 0; i < 16; ++i) {
        const Nanos begin = b.sim.Now();
        auto id = co_await ctx.AsyncRead(thr, kRegion, rng.Below(1024) * 256,
                                         kHeap, 64);
        if (!id) {
          co_await thr.Idle(Micros(2));
          --i;
          continue;
        }
        ctx.PollAdd(poll, *id);
        while ((co_await ctx.PollWait(thr, poll, 1, Millis(1))).empty()) {
        }
        if (i == 0) {
          sum += static_cast<double>(b.sim.Now() - begin) / 1000.0;
          ++count;
        } else {
          ssum += static_cast<double>(b.sim.Now() - begin) / 1000.0;
          ++scount;
        }
      }
    }
    b.sim.Halt();
  }(bed, client, thread, first_sum, bursts, steady_sum, steady_count));
  bed.sim.Run();

  Result r;
  r.first_latency_us = bursts ? first_sum / bursts : 0;
  r.steady_latency_us = steady_count ? steady_sum / steady_count : 0;
  r.probes_per_ms =
      static_cast<double>(agent.probes_sent()) / (bed.sim.Now() / 1e6);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParallelFlags flags;
  for (int i = 1; i < argc; ++i) {
    if (!flags.Consume(argc, argv, i) || !flags.ok()) {
      std::printf("usage: %s %s\n", argv[0], flags.Usage());
      return 2;
    }
  }

  bench::Banner("Ablation: adaptive probing",
                "bursty workload — first-request latency vs probe overhead");

  struct Config {
    bool adaptive;
    Nanos base_interval;
  };
  const Config configs[] = {
      {false, Micros(2)}, {false, Micros(32)}, {true, Micros(2)}};
  std::vector<Result> results(3);
  sim::ParallelFor(flags.Jobs(), 3, [&](int i) {
    results[static_cast<std::size_t>(i)] =
        RunBursty(configs[i].adaptive, configs[i].base_interval);
  });
  const Result& fast = results[0];
  const Result& slow = results[1];
  const Result& adaptive = results[2];

  bench::Table table({"policy", "first-read (us)", "steady (us)",
                      "probes/ms"});
  table.Row({"fixed 2us", bench::Fmt(fast.first_latency_us, 1),
             bench::Fmt(fast.steady_latency_us, 1),
             bench::Fmt(fast.probes_per_ms, 0)});
  table.Row({"fixed 32us", bench::Fmt(slow.first_latency_us, 1),
             bench::Fmt(slow.steady_latency_us, 1),
             bench::Fmt(slow.probes_per_ms, 0)});
  table.Row({"adaptive 2-64us", bench::Fmt(adaptive.first_latency_us, 1),
             bench::Fmt(adaptive.steady_latency_us, 1),
             bench::Fmt(adaptive.probes_per_ms, 0)});
  table.Print();

  // This is exactly Section 5.2's stated trade-off: "users [can] tradeoff
  // extra probe memory accesses with worst-case completion latency while
  // maintaining high throughput". Adaptive pays the worst case only on the
  // first request of a burst, then snaps back to fast probing.
  std::printf("\nShape checks:\n");
  bench::ShapeCheck(adaptive.probes_per_ms < fast.probes_per_ms * 0.7,
                    "adaptive probing cuts idle probe traffic substantially");
  bench::ShapeCheck(adaptive.steady_latency_us < slow.steady_latency_us,
                    "after ramp-up, in-burst latency returns to the "
                    "fast-probe level (throughput maintained)");
  bench::ShapeCheck(adaptive.first_latency_us > fast.first_latency_us,
                    "the saved probes are paid for in worst-case first-"
                    "request latency — the knob the paper describes");
  return 0;
}
