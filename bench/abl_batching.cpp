// Ablation: Cowbird-Spot BATCH_SIZE sweep. Batching coalesces read results
// into fewer RDMA writes to the compute node (Section 6); this sweeps the
// throughput/latency trade-off the paper fixes at its chosen configuration.
//
// --jobs N runs the sweep points concurrently (default: hardware
// concurrency). Each point is an independent bit-deterministic simulation,
// and rows are emitted in sweep order, so the output never depends on N.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <vector>

#include "bench_util.h"
#include "sim/parallel.h"
#include "workload/hash_workload.h"

using namespace cowbird;
using workload::HashWorkloadConfig;
using workload::LatencyProbeConfig;
using workload::Paradigm;

int main(int argc, char** argv) {
  bench::ParallelFlags flags;
  for (int i = 1; i < argc; ++i) {
    if (!flags.Consume(argc, argv, i) || !flags.ok()) {
      std::printf("usage: %s %s\n", argv[0], flags.Usage());
      return 2;
    }
  }

  bench::Banner("Ablation: BATCH_SIZE",
                "Cowbird-Spot response batching sweep (64 B records)");

  const int batches[] = {1, 2, 4, 8, 16, 32, 64};
  const int points = static_cast<int>(std::size(batches));
  struct Point {
    double mops = 0;
    workload::LatencyResult lat;
  };
  std::vector<Point> results(static_cast<std::size_t>(points));
  sim::ParallelFor(flags.Jobs(), points, [&](int i) {
    const int b = batches[i];
    HashWorkloadConfig c;
    c.paradigm = Paradigm::kCowbird;
    c.threads = 8;
    c.record_size = 64;
    c.records = 400'000;
    c.measure = Millis(1.5);
    c.agent.batch_size = b;
    results[static_cast<std::size_t>(i)].mops = RunHashWorkload(c).mops;

    LatencyProbeConfig lc;
    lc.paradigm = Paradigm::kCowbird;
    lc.record_size = 64;
    lc.inflight = std::max(2 * b, 8);
    lc.samples = 1000;
    lc.agent.batch_size = b;
    results[static_cast<std::size_t>(i)].lat = RunLatencyProbe(lc);
  });

  bench::Table table({"batch", "throughput (MOPS, 8 thr)", "median lat (us)",
                      "p99 lat (us)"});
  double mops1 = 0, mops16 = 0;
  for (int i = 0; i < points; ++i) {
    const int b = batches[i];
    const Point& p = results[static_cast<std::size_t>(i)];
    table.Row({std::to_string(b), bench::Fmt(p.mops, 2),
               bench::Fmt(p.lat.median_us, 1), bench::Fmt(p.lat.p99_us, 1)});
    if (b == 1) mops1 = p.mops;
    if (b == 16) mops16 = p.mops;
  }
  table.Print();

  std::printf("\nShape checks:\n");
  bench::ShapeCheck(mops16 > mops1 * 1.5,
                    "batching is the 'up to 3.5x' lever of Figure 1 "
                    "(>1.5x at batch 16 here)");
  return 0;
}
