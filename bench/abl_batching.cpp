// Ablation: Cowbird-Spot BATCH_SIZE sweep. Batching coalesces read results
// into fewer RDMA writes to the compute node (Section 6); this sweeps the
// throughput/latency trade-off the paper fixes at its chosen configuration.
#include <cstdio>

#include "bench_util.h"
#include "workload/hash_workload.h"

using namespace cowbird;
using workload::HashWorkloadConfig;
using workload::LatencyProbeConfig;
using workload::Paradigm;

int main() {
  bench::Banner("Ablation: BATCH_SIZE",
                "Cowbird-Spot response batching sweep (64 B records)");

  const int batches[] = {1, 2, 4, 8, 16, 32, 64};
  bench::Table table({"batch", "throughput (MOPS, 8 thr)", "median lat (us)",
                      "p99 lat (us)"});
  double mops1 = 0, mops16 = 0;
  for (int b : batches) {
    HashWorkloadConfig c;
    c.paradigm = Paradigm::kCowbird;
    c.threads = 8;
    c.record_size = 64;
    c.records = 400'000;
    c.measure = Millis(1.5);
    c.agent.batch_size = b;
    const double mops = RunHashWorkload(c).mops;

    LatencyProbeConfig lc;
    lc.paradigm = Paradigm::kCowbird;
    lc.record_size = 64;
    lc.inflight = std::max(2 * b, 8);
    lc.samples = 1000;
    lc.agent.batch_size = b;
    const auto lat = RunLatencyProbe(lc);

    table.Row({std::to_string(b), bench::Fmt(mops, 2),
               bench::Fmt(lat.median_us, 1), bench::Fmt(lat.p99_us, 1)});
    if (b == 1) mops1 = mops;
    if (b == 16) mops16 = mops;
  }
  table.Print();

  std::printf("\nShape checks:\n");
  bench::ShapeCheck(mops16 > mops1 * 1.5,
                    "batching is the 'up to 3.5x' lever of Figure 1 "
                    "(>1.5x at batch 16 here)");
  return 0;
}
