// Ablation: multi-tenant incast on the 16-node rack (shared-fabric
// congestion). K clients all read from one memory server through one
// switch, with 4 KiB records so the aggregate response stream genuinely
// oversubscribes the 100 Gbps fabric. Two policies per engine:
//
//   drops — finite egress queues that tail-drop on overflow and nothing
//           else: the congestion-unaware baseline, where overflow turns
//           into Go-Back-N retransmission storms.
//   ecn   — the same queues mark ECT packets CE above a threshold and
//           every NIC runs DCQCN: senders pace instead of overrunning.
//
// The headline shape is the Cowbird-Spot row at 12 clients: ECN+DCQCN must
// recover at least 2x the aggregate MOPS of the drops policy with a lower
// read p99. Every simulated metric is bit-deterministic, so the emitted
// JSON is gated against a committed baseline (bench_gate fails on drift in
// either direction), and one sweep point is re-run split across PDES
// worker counts to pin that congestion does not break split determinism.
//
// --jobs N runs sweep points concurrently; rows are emitted in sweep
// order, so output is identical for any N.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "sim/parallel.h"
#include "workload/scale_workload.h"

using namespace cowbird;
using workload::Paradigm;
using workload::RunScaleWorkload;
using workload::ScaleWorkloadConfig;
using workload::ScaleWorkloadResult;

namespace {

ScaleWorkloadConfig MakeConfig(Paradigm paradigm, int clients, bool ecn) {
  ScaleWorkloadConfig cfg;
  cfg.paradigm = paradigm;
  cfg.clients = clients;
  cfg.memory_servers = 2;  // striping off: incast aims everyone at server 0
  cfg.incast = true;
  cfg.record_size = 4096;  // one MTU per read: bandwidth-bound on purpose
  cfg.records = 20'000;
  cfg.warmup = Micros(200);
  // Long enough that DCQCN's convergence transient amortizes and a
  // post-drop recovery stall is a dent, not the whole window.
  cfg.measure = Millis(4);
  cfg.sample_latency = true;
  // 20 response packets per port: shallow enough that the unaware policy
  // overflows under incast, with headroom above the PFC pause threshold
  // (64KiB) so the paused-ingress in-flight tail never tail-drops.
  cfg.egress_queue_capacity = KiB(80);
  // Both policies: Go-Back-N timeout above the worst congested RTT. With
  // the 100us default, congestion delay reads as loss, the requester
  // rewinds whole read windows, and the responder's duplicate
  // re-executions melt down the fabric regardless of policy — real RoCE
  // deployments set the timeout well above RTT for exactly this reason.
  cfg.retransmit_timeout = Millis(1);
  if (ecn) {
    cfg.ecn_threshold = KiB(16);
    cfg.dcqcn.enabled = true;
    // PFC is the lossless backstop under the rate control (the RoCE
    // deployment model): if a burst outruns the mark -> CNP -> cut loop,
    // the switch pauses the offending ingress at 64KiB buffered (resume
    // at 32KiB) instead of tail-dropping at the cap.
    cfg.pfc = true;
    // One cut per recovery step: with the default 5us CNP cadence the rate
    // is halved five times for every recovery step and pins to the floor.
    cfg.dcqcn.cnp_interval = Micros(25);
    // Rate floor chosen so a full 32-deep read window paced at the floor
    // still delivers well inside the Go-Back-N timeout (32 * 4KiB / 5G =
    // 213us < 1ms); a 1G floor would turn pacing itself into timeouts.
    cfg.dcqcn.min_rate_gbps = 5.0;
  }
  return cfg;
}

const char* EngineName(Paradigm paradigm) {
  return paradigm == Paradigm::kCowbird ? "spot" : "p4";
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParallelFlags flags;
  for (int i = 1; i < argc; ++i) {
    if (!flags.Consume(argc, argv, i) || !flags.ok()) {
      std::printf("usage: %s %s\n", argv[0], flags.Usage());
      return 2;
    }
  }

  bench::Banner("Ablation: incast congestion",
                "ECN+DCQCN vs congestion-unaware drops, K clients -> one "
                "memory server");

  struct Point {
    Paradigm paradigm;
    int clients;
    bool ecn;
  };
  std::vector<Point> points;
  for (const Paradigm paradigm : {Paradigm::kCowbird, Paradigm::kCowbirdP4}) {
    for (const bool ecn : {false, true}) {
      for (const int clients : {1, 4, 8, 12}) {
        points.push_back({paradigm, clients, ecn});
      }
    }
  }

  std::vector<ScaleWorkloadResult> results(points.size());
  sim::ParallelFor(flags.Jobs(), static_cast<int>(points.size()),
                   [&](int i) {
                     const Point& p = points[static_cast<std::size_t>(i)];
                     results[static_cast<std::size_t>(i)] = RunScaleWorkload(
                         MakeConfig(p.paradigm, p.clients, p.ecn));
                   });

  bench::BenchJson json("abl_incast", "shared-fabric congestion ablation");
  bench::Table table({"engine", "policy", "clients", "MOPS", "p99 (us)",
                      "drops", "marks", "retrans", "cnps"});
  double spot_drops_12 = 0, spot_ecn_12 = 0;
  Nanos spot_drops_p99 = 0, spot_ecn_p99 = 0;
  std::uint64_t drops_at_12 = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    const ScaleWorkloadResult& r = results[i];
    const char* const policy = p.ecn ? "ecn" : "drops";
    if (p.paradigm == Paradigm::kCowbird && p.clients == 12) {
      if (p.ecn) {
        spot_ecn_12 = r.mops;
        spot_ecn_p99 = r.p99_latency;
      } else {
        spot_drops_12 = r.mops;
        spot_drops_p99 = r.p99_latency;
        drops_at_12 = r.switch_drops;
      }
    }
    table.Row({EngineName(p.paradigm), policy, std::to_string(p.clients),
               bench::Fmt(r.mops, 3), bench::Fmt(r.p99_latency / 1e3, 1),
               std::to_string(r.switch_drops), std::to_string(r.ecn_marked),
               std::to_string(r.retransmissions), std::to_string(r.cnps)});
    json.Row({{"engine", EngineName(p.paradigm)},
              {"policy", policy},
              {"clients", std::to_string(p.clients)}},
             {{"mops", r.mops},
              {"p99_us", static_cast<double>(r.p99_latency) / 1e3},
              {"switch_drops", static_cast<double>(r.switch_drops)},
              {"ecn_marked", static_cast<double>(r.ecn_marked)},
              {"retransmissions", static_cast<double>(r.retransmissions)},
              {"cnps", static_cast<double>(r.cnps)}});
  }
  table.Print();

  std::printf("\nShape checks:\n");
  json.ShapeCheck(drops_at_12 > 0,
                  "12-client incast overflows the finite egress queue "
                  "(tail drops observed)");
  json.ShapeCheck(spot_ecn_12 >= 2.0 * spot_drops_12,
                  "spot: ECN+DCQCN recovers >= 2x aggregate MOPS at 12 "
                  "clients vs congestion-unaware drops");
  json.ShapeCheck(spot_ecn_p99 < spot_drops_p99,
                  "spot: ECN+DCQCN lowers read p99 at 12 clients");

  // Congestion must not break split determinism: the hottest sweep point,
  // re-run one PDES domain per node, yields byte-identical per-client op
  // counts for any worker count. (Serial-vs-split equality is not the
  // contract — cross-domain deliveries may flip same-timestamp tie-breaks;
  // see ScaleSimTest.SplitTracksSerialWithinTieBreakTolerance.)
  {
    ScaleWorkloadConfig cfg = MakeConfig(Paradigm::kCowbird, 12, true);
    cfg.split = true;
    cfg.split_workers = 1;
    const ScaleWorkloadResult one = RunScaleWorkload(cfg);
    bool identical = true;
    for (const int workers : {2, 4}) {
      cfg.split_workers = workers;
      const ScaleWorkloadResult many = RunScaleWorkload(cfg);
      identical = identical && many.client_ops == one.client_ops;
    }
    json.ShapeCheck(identical,
                    "congested per-node split runs bit-identical across "
                    "worker counts 1/2/4 (per-client op counts)");
  }

  return json.WriteFile() ? 0 : 1;
}
