// Ablation: Go-Back-N recovery under injected packet loss (Section 5.3
// fault tolerance). Cowbird keeps completing — correctly — while throughput
// degrades gracefully with loss rate.
#include <cstdio>

#include "bench_util.h"
#include "workload/hash_workload.h"

using namespace cowbird;
using workload::HashWorkloadConfig;
using workload::Paradigm;
using workload::RunHashWorkload;

int main() {
  bench::Banner("Ablation: packet loss",
                "Cowbird-Spot throughput under injected RDMA loss");

  const double rates[] = {0.0, 0.0001, 0.001, 0.005, 0.02};
  bench::Table table({"loss rate", "throughput (MOPS, 4 thr)",
                      "vs lossless"});
  double lossless = 0;
  double at_2pct = 0;
  for (double rate : rates) {
    HashWorkloadConfig c;
    c.paradigm = Paradigm::kCowbird;
    c.threads = 4;
    c.record_size = 64;
    c.records = 400'000;
    c.loss_rate = rate;
    c.measure = Millis(2);
    const double mops = RunHashWorkload(c).mops;
    if (rate == 0.0) lossless = mops;
    if (rate == 0.02) at_2pct = mops;
    table.Row({bench::Fmt(rate, 4), bench::Fmt(mops, 2),
               bench::Fmt(100.0 * mops / lossless, 0) + "%"});
  }
  table.Print();

  std::printf("\nShape checks:\n");
  bench::ShapeCheck(at_2pct > 0.02 * lossless,
                    "the pipeline survives 2% loss (Go-Back-N recovers)");
  bench::ShapeCheck(lossless > at_2pct,
                    "loss costs throughput monotonically");
  return 0;
}
