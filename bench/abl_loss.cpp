// Ablation: Go-Back-N recovery under injected packet loss (Section 5.3
// fault tolerance). Cowbird keeps completing — correctly — while throughput
// degrades gracefully with loss rate.
//
// --jobs N runs the sweep points concurrently (default: hardware
// concurrency); rows are emitted in sweep order, so output is identical for
// any N.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <vector>

#include "bench_util.h"
#include "sim/parallel.h"
#include "workload/hash_workload.h"

using namespace cowbird;
using workload::HashWorkloadConfig;
using workload::Paradigm;
using workload::RunHashWorkload;

int main(int argc, char** argv) {
  bench::ParallelFlags flags;
  for (int i = 1; i < argc; ++i) {
    if (!flags.Consume(argc, argv, i) || !flags.ok()) {
      std::printf("usage: %s %s\n", argv[0], flags.Usage());
      return 2;
    }
  }

  bench::Banner("Ablation: packet loss",
                "Cowbird-Spot throughput under injected RDMA loss");

  const double rates[] = {0.0, 0.0001, 0.001, 0.005, 0.02};
  const int points = static_cast<int>(std::size(rates));
  std::vector<double> mops(static_cast<std::size_t>(points), 0);
  sim::ParallelFor(flags.Jobs(), points, [&](int i) {
    HashWorkloadConfig c;
    c.paradigm = Paradigm::kCowbird;
    c.threads = 4;
    c.record_size = 64;
    c.records = 400'000;
    c.loss_rate = rates[i];
    c.measure = Millis(2);
    mops[static_cast<std::size_t>(i)] = RunHashWorkload(c).mops;
  });

  bench::Table table({"loss rate", "throughput (MOPS, 4 thr)",
                      "vs lossless"});
  double lossless = 0;
  double at_2pct = 0;
  for (int i = 0; i < points; ++i) {
    const double rate = rates[i];
    const double m = mops[static_cast<std::size_t>(i)];
    if (rate == 0.0) lossless = m;
    if (rate == 0.02) at_2pct = m;
    table.Row({bench::Fmt(rate, 4), bench::Fmt(m, 2),
               bench::Fmt(100.0 * m / lossless, 0) + "%"});
  }
  table.Print();

  std::printf("\nShape checks:\n");
  bench::ShapeCheck(at_2pct > 0.02 * lossless,
                    "the pipeline survives 2% loss (Go-Back-N recovers)");
  bench::ShapeCheck(lossless > at_2pct,
                    "loss costs throughput monotonically");
  return 0;
}
