// Ablation: the cost of the RMT pause-all-reads restriction (Section 5.3).
// Under a mixed read/write stream to *disjoint* addresses, Cowbird-Spot's
// exact overlapping-range check never stalls a read, while Cowbird-P4 must
// pause every newly probed read behind any in-flight write.
//
// --jobs N runs the (write fraction × engine) grid concurrently (default:
// hardware concurrency); rows are emitted in sweep order, so output is
// identical for any N.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <vector>

#include "bench_util.h"
#include "sim/parallel.h"
#include "workload/hash_workload.h"

using namespace cowbird;
using workload::HashWorkloadConfig;
using workload::Paradigm;
using workload::RunHashWorkload;

int main(int argc, char** argv) {
  bench::ParallelFlags flags;
  for (int i = 1; i < argc; ++i) {
    if (!flags.Consume(argc, argv, i) || !flags.ok()) {
      std::printf("usage: %s %s\n", argv[0], flags.Usage());
      return 2;
    }
  }

  bench::Banner("Ablation: read-fencing policy",
                "P4 pause-all vs Spot exact-range under write mixes");

  const double write_fractions[] = {0.0, 0.05, 0.1, 0.2, 0.4};
  const int points = static_cast<int>(std::size(write_fractions));
  // Grid index: 2*i for P4, 2*i+1 for Spot.
  std::vector<double> grid(static_cast<std::size_t>(2 * points), 0);
  sim::ParallelFor(
      flags.Jobs(), 2 * points, [&](int g) {
        HashWorkloadConfig c;
        c.paradigm = g % 2 == 0 ? Paradigm::kCowbirdP4 : Paradigm::kCowbird;
        c.threads = 4;
        c.record_size = 64;
        c.records = 400'000;  // random keys → overlaps essentially never
        c.write_fraction = write_fractions[g / 2];
        c.measure = Millis(1.5);
        grid[static_cast<std::size_t>(g)] = RunHashWorkload(c).mops;
      });

  bench::Table table({"write fraction", "cowbird-p4 (MOPS)",
                      "cowbird-spot (MOPS)", "p4/spot"});
  double ratio_no_writes = 0, ratio_heavy = 0;
  for (int i = 0; i < points; ++i) {
    const double wf = write_fractions[i];
    const double p4 = grid[static_cast<std::size_t>(2 * i)];
    const double spot = grid[static_cast<std::size_t>(2 * i + 1)];
    const double ratio = p4 / spot;
    table.Row({bench::Fmt(wf, 2), bench::Fmt(p4, 2), bench::Fmt(spot, 2),
               bench::Fmt(ratio, 2)});
    if (wf == 0.0) ratio_no_writes = ratio;
    if (wf == 0.4) ratio_heavy = ratio;
  }
  table.Print();

  std::printf("\nShape checks:\n");
  bench::ShapeCheck(ratio_no_writes > 0.55,
                    "with no writes the engines are comparable");
  bench::ShapeCheck(ratio_heavy < ratio_no_writes,
                    "write-heavy mixes cost P4 relatively more: the price "
                    "of pause-all fencing");
  return 0;
}
