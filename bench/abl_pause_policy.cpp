// Ablation: the cost of the RMT pause-all-reads restriction (Section 5.3).
// Under a mixed read/write stream to *disjoint* addresses, Cowbird-Spot's
// exact overlapping-range check never stalls a read, while Cowbird-P4 must
// pause every newly probed read behind any in-flight write.
#include <cstdio>

#include "bench_util.h"
#include "workload/hash_workload.h"

using namespace cowbird;
using workload::HashWorkloadConfig;
using workload::Paradigm;
using workload::RunHashWorkload;

int main() {
  bench::Banner("Ablation: read-fencing policy",
                "P4 pause-all vs Spot exact-range under write mixes");

  const double write_fractions[] = {0.0, 0.05, 0.1, 0.2, 0.4};
  bench::Table table({"write fraction", "cowbird-p4 (MOPS)",
                      "cowbird-spot (MOPS)", "p4/spot"});
  double ratio_no_writes = 0, ratio_heavy = 0;
  for (double wf : write_fractions) {
    auto run = [wf](Paradigm p) {
      HashWorkloadConfig c;
      c.paradigm = p;
      c.threads = 4;
      c.record_size = 64;
      c.records = 400'000;  // random keys → overlaps are essentially never
      c.write_fraction = wf;
      c.measure = Millis(1.5);
      return RunHashWorkload(c).mops;
    };
    const double p4 = run(Paradigm::kCowbirdP4);
    const double spot = run(Paradigm::kCowbird);
    const double ratio = p4 / spot;
    table.Row({bench::Fmt(wf, 2), bench::Fmt(p4, 2), bench::Fmt(spot, 2),
               bench::Fmt(ratio, 2)});
    if (wf == 0.0) ratio_no_writes = ratio;
    if (wf == 0.4) ratio_heavy = ratio;
  }
  table.Print();

  std::printf("\nShape checks:\n");
  bench::ShapeCheck(ratio_no_writes > 0.55,
                    "with no writes the engines are comparable");
  bench::ShapeCheck(ratio_heavy < ratio_no_writes,
                    "write-heavy mixes cost P4 relatively more: the price "
                    "of pause-all fencing");
  return 0;
}
