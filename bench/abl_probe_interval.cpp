// Ablation: probe-interval sweep. Probing faster discovers requests sooner
// (lower completion latency) but spends more low-priority network and
// compute-node memory bandwidth — the trade-off Section 5.2 describes
// (1 probe / 2 us in the paper's FASTER prototype).
//
// --jobs N runs the sweep points concurrently (default: hardware
// concurrency); rows are emitted in sweep order, so output is identical for
// any N.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <vector>

#include "bench_util.h"
#include "sim/parallel.h"
#include "workload/hash_workload.h"

using namespace cowbird;
using workload::LatencyProbeConfig;
using workload::Paradigm;

int main(int argc, char** argv) {
  bench::ParallelFlags flags;
  for (int i = 1; i < argc; ++i) {
    if (!flags.Consume(argc, argv, i) || !flags.ok()) {
      std::printf("usage: %s %s\n", argv[0], flags.Usage());
      return 2;
    }
  }

  bench::Banner("Ablation: probe interval",
                "completion latency vs probe bandwidth (256 B reads)");

  const double intervals_us[] = {0.5, 1, 2, 4, 8, 16};
  const int points = static_cast<int>(std::size(intervals_us));
  std::vector<workload::LatencyResult> lats(
      static_cast<std::size_t>(points));
  sim::ParallelFor(flags.Jobs(), points, [&](int i) {
    LatencyProbeConfig c;
    c.paradigm = Paradigm::kCowbirdNoBatch;
    c.record_size = 256;
    c.inflight = 1;
    c.samples = 800;
    c.agent.probe_interval = Micros(intervals_us[i]);
    lats[static_cast<std::size_t>(i)] = RunLatencyProbe(c);
  });

  bench::Table table({"probe interval (us)", "median lat (us)",
                      "p99 lat (us)", "probe bw (Mbps)"});
  double lat_fast = 0, lat_slow = 0;
  for (int i = 0; i < points; ++i) {
    const double us = intervals_us[i];
    const auto& lat = lats[static_cast<std::size_t>(i)];
    // Probe cost: one ~94 B read request + one response carrying the green
    // blocks (~24 B per thread + headers) per interval.
    const double probe_bytes = 94.0 + 94.0 + 24.0;
    const double mbps = probe_bytes * 8.0 / (us * 1000.0) * 1000.0;
    table.Row({bench::Fmt(us, 1), bench::Fmt(lat.median_us, 2),
               bench::Fmt(lat.p99_us, 2), bench::Fmt(mbps, 1)});
    if (us == 0.5) lat_fast = lat.median_us;
    if (us == 16) lat_slow = lat.median_us;
  }
  table.Print();

  std::printf("\nShape checks:\n");
  bench::ShapeCheck(lat_slow > lat_fast + 4,
                    "slower probing shows up as completion latency (the "
                    "ramp-up trade-off of Section 5.2)");
  return 0;
}
