// Ablation: probe-interval sweep. Probing faster discovers requests sooner
// (lower completion latency) but spends more low-priority network and
// compute-node memory bandwidth — the trade-off Section 5.2 describes
// (1 probe / 2 us in the paper's FASTER prototype).
#include <cstdio>

#include "bench_util.h"
#include "workload/hash_workload.h"

using namespace cowbird;
using workload::LatencyProbeConfig;
using workload::Paradigm;

int main() {
  bench::Banner("Ablation: probe interval",
                "completion latency vs probe bandwidth (256 B reads)");

  const double intervals_us[] = {0.5, 1, 2, 4, 8, 16};
  bench::Table table({"probe interval (us)", "median lat (us)",
                      "p99 lat (us)", "probe bw (Mbps)"});
  double lat_fast = 0, lat_slow = 0;
  for (double us : intervals_us) {
    LatencyProbeConfig c;
    c.paradigm = Paradigm::kCowbirdNoBatch;
    c.record_size = 256;
    c.inflight = 1;
    c.samples = 800;
    c.agent.probe_interval = Micros(us);
    const auto lat = RunLatencyProbe(c);
    // Probe cost: one ~94 B read request + one response carrying the green
    // blocks (~24 B per thread + headers) per interval.
    const double probe_bytes = 94.0 + 94.0 + 24.0;
    const double mbps = probe_bytes * 8.0 / (us * 1000.0) * 1000.0;
    table.Row({bench::Fmt(us, 1), bench::Fmt(lat.median_us, 2),
               bench::Fmt(lat.p99_us, 2), bench::Fmt(mbps, 1)});
    if (us == 0.5) lat_fast = lat.median_us;
    if (us == 16) lat_slow = lat.median_us;
  }
  table.Print();

  std::printf("\nShape checks:\n");
  bench::ShapeCheck(lat_slow > lat_fast + 4,
                    "slower probing shows up as completion latency (the "
                    "ramp-up trade-off of Section 5.2)");
  return 0;
}
