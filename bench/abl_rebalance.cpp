// Ablation: live region rebalance on the 16-node rack. 12 clients read
// through one engine; client 0's region lives in an elastic ClusterPool on
// memory server 0 and is live-migrated to server 1 mid-run — copy pass
// over the shared fabric, dirty chase, detach, final drain, and a cutover
// that flips the translation entry and re-attaches the instance inside one
// virtual-time tick. The foreground workload never stops issuing.
//
// The table splits the measure window into before / during / after phases
// per engine. The headline shape: steady-state aggregate MOPS after the
// cutover recovers to within 10% of the pre-migration rate (the rebalance
// is live, not a stop-the-world move), and the copy moved at least the
// whole region once. Every simulated metric is bit-deterministic, so the
// emitted JSON is gated against a committed baseline (bench_gate fails on
// drift in either direction), and the migrating run is re-run split across
// PDES worker counts to pin that the rebalance machinery — global cutover
// tick included — does not break split determinism.
//
// --jobs N runs the engine sweeps concurrently; rows are emitted in sweep
// order, so output is identical for any N.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "sim/parallel.h"
#include "workload/scale_workload.h"

using namespace cowbird;
using workload::Paradigm;
using workload::RunScaleWorkload;
using workload::ScaleWorkloadConfig;
using workload::ScaleWorkloadResult;

namespace {

ScaleWorkloadConfig MakeConfig(Paradigm paradigm) {
  ScaleWorkloadConfig cfg;
  cfg.paradigm = paradigm;
  cfg.clients = 12;
  cfg.memory_servers = 2;
  cfg.records = 16'384;  // 2 MiB region: the copy takes ~1/8 of the window
  cfg.warmup = Micros(200);
  cfg.measure = Millis(2);
  cfg.sample_latency = true;
  cfg.migrate = true;
  cfg.migrate_start = Micros(400);
  return cfg;
}

const char* EngineName(Paradigm paradigm) {
  return paradigm == Paradigm::kCowbird ? "spot" : "p4";
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParallelFlags flags;
  for (int i = 1; i < argc; ++i) {
    if (!flags.Consume(argc, argv, i) || !flags.ok()) {
      std::printf("usage: %s %s\n", argv[0], flags.Usage());
      return 2;
    }
  }

  bench::Banner("Ablation: live region rebalance",
                "ClusterPool range migration under 12-client traffic, "
                "copy + dirty chase + one-tick cutover");

  const std::vector<Paradigm> engines = {Paradigm::kCowbird,
                                         Paradigm::kCowbirdP4};
  std::vector<ScaleWorkloadResult> results(engines.size());
  sim::ParallelFor(flags.Jobs(), static_cast<int>(engines.size()),
                   [&](int i) {
                     results[static_cast<std::size_t>(i)] = RunScaleWorkload(
                         MakeConfig(engines[static_cast<std::size_t>(i)]));
                   });

  bench::BenchJson json("abl_rebalance", "live region rebalance ablation");
  bench::Table table({"engine", "phase", "MOPS", "p99 (us)", "copied (KiB)",
                      "cutover (us)"});
  bool all_migrated = true;
  bool all_recovered = true;
  bool all_copied_whole = true;
  const Bytes region_bytes = MakeConfig(Paradigm::kCowbird).records * 128;
  for (std::size_t i = 0; i < engines.size(); ++i) {
    const ScaleWorkloadResult& r = results[i];
    const char* const engine = EngineName(engines[i]);
    all_migrated = all_migrated && r.migrations == 1;
    all_recovered =
        all_recovered && r.mops_before > 0 &&
        r.mops_after >= 0.9 * r.mops_before;
    all_copied_whole =
        all_copied_whole && r.migrate_bytes_copied >= region_bytes;
    const struct {
      const char* phase;
      double mops;
      Nanos p99;
    } rows[] = {
        {"before", r.mops_before, r.p99_before},
        {"during", r.mops_during, r.p99_during},
        {"after", r.mops_after, r.p99_after},
    };
    for (const auto& row : rows) {
      table.Row({engine, row.phase, bench::Fmt(row.mops, 3),
                 bench::Fmt(row.p99 / 1e3, 1),
                 std::to_string(r.migrate_bytes_copied / 1024),
                 bench::Fmt(r.migrate_cutover_at / 1e3, 0)});
      json.Row({{"engine", engine}, {"phase", row.phase}},
               {{"mops", row.mops},
                {"p99_us", static_cast<double>(row.p99) / 1e3},
                {"bytes_copied", static_cast<double>(r.migrate_bytes_copied)},
                {"cutover_us",
                 static_cast<double>(r.migrate_cutover_at) / 1e3}});
    }
  }
  table.Print();

  std::printf("\nShape checks:\n");
  json.ShapeCheck(all_migrated,
                  "both engines complete exactly one live cutover inside "
                  "the measure window");
  json.ShapeCheck(all_copied_whole,
                  "the copy stream moved at least the whole region once "
                  "(initial pass + dirty chase)");
  json.ShapeCheck(all_recovered,
                  "steady-state aggregate MOPS after cutover >= 0.9x the "
                  "pre-migration rate on both engines");

  // The rebalance must not break split determinism: the same migrating
  // run, one PDES domain per node, yields byte-identical per-client op
  // counts — and still exactly one cutover — for any worker count.
  {
    ScaleWorkloadConfig cfg = MakeConfig(Paradigm::kCowbird);
    cfg.split = true;
    cfg.split_workers = 1;
    const ScaleWorkloadResult one = RunScaleWorkload(cfg);
    bool identical = one.migrations == 1;
    for (const int workers : {2, 4}) {
      cfg.split_workers = workers;
      const ScaleWorkloadResult many = RunScaleWorkload(cfg);
      identical = identical && many.client_ops == one.client_ops &&
                  many.migrations == 1;
    }
    json.ShapeCheck(identical,
                    "migrating per-node split runs bit-identical across "
                    "worker counts 1/2/4 (per-client op counts)");
  }

  return json.WriteFile() ? 0 : 1;
}
