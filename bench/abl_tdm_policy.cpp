// Ablation: TDM probe scheduling across instances (Section 5.4's "more
// complex policies are possible, e.g., to prioritize more active
// applications"). One hot tenant and three idle tenants share a switch:
// plain round-robin spends 3/4 of probe slots on silence; the activity-
// weighted policy concentrates them where requests are.
//
// --jobs N runs the two policy configurations concurrently (default:
// hardware concurrency); rows are emitted in fixed order, so output is
// identical for any N.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "core/client.h"
#include "p4/engine.h"
#include "sim/parallel.h"
#include "workload/testbed.h"

using namespace cowbird;

namespace {

constexpr std::uint64_t kPoolBase = 0x100'0000;
constexpr std::uint64_t kHeap = 0x8000'0000;
constexpr std::uint16_t kRegion = 1;
constexpr net::NodeId kSwitchId = 100;

double RunHotTenant(p4::CowbirdP4Engine::ProbePolicy policy) {
  workload::Testbed bed;
  const auto* pool_mr = bed.memory_dev.RegisterMemory(kPoolBase, MiB(64));

  p4::CowbirdP4Engine::Config ec;
  ec.switch_node_id = kSwitchId;
  ec.probe_policy = policy;
  p4::CowbirdP4Engine engine(bed.sw, ec);

  std::vector<std::unique_ptr<core::CowbirdClient>> tenants;
  for (int i = 0; i < 4; ++i) {
    core::CowbirdClient::Config cc;
    cc.layout.base = 0x10000 + static_cast<std::uint64_t>(i) * MiB(8);
    cc.layout.threads = 1;
    tenants.push_back(
        std::make_unique<core::CowbirdClient>(bed.compute_dev, cc));
    tenants.back()->RegisterRegion(
        core::RegionInfo{kRegion, workload::Testbed::kMemoryId, kPoolBase,
                         pool_mr->rkey, MiB(64)});
    auto conn = p4::ConnectP4Engine(engine, kSwitchId, bed.compute_dev,
                                    bed.memory_dev, 0x800 + i * 8);
    engine.AddInstance(tenants.back()->descriptor(), conn);
  }
  engine.Start();

  // Only tenant 0 is active; tenants 1-3 are registered but idle.
  sim::SimThread thread(bed.compute_machine, "hot");
  std::uint64_t ops = 0;
  bed.sim.Spawn([](workload::Testbed& bb, core::CowbirdClient& cl,
                   sim::SimThread& thr, std::uint64_t& done)
                    -> sim::Task<void> {
    (void)bb;
    auto& ctx = cl.thread(0);
    const core::PollId poll = ctx.PollCreate();
    Rng rng(9);
    int outstanding = 0;
    for (;;) {
      if (outstanding < 64) {
        auto id = co_await ctx.AsyncRead(thr, kRegion,
                                         rng.Below(4096) * 256, kHeap, 64);
        if (id) {
          ctx.PollAdd(poll, *id);
          ++outstanding;
          continue;
        }
      }
      auto d = co_await ctx.PollWait(thr, poll, 64, 0);
      if (d.empty()) {
        co_await thr.Idle(300);
        continue;
      }
      outstanding -= static_cast<int>(d.size());
      done += d.size();
    }
  }(bed, *tenants[0], thread, ops));

  bed.sim.RunFor(Millis(2));
  return Mops(ops, Millis(2));
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParallelFlags flags;
  for (int i = 1; i < argc; ++i) {
    if (!flags.Consume(argc, argv, i) || !flags.ok()) {
      std::printf("usage: %s %s\n", argv[0], flags.Usage());
      return 2;
    }
  }

  bench::Banner("Ablation: TDM probe policy",
                "1 hot + 3 idle tenants on one switch");

  const p4::CowbirdP4Engine::ProbePolicy policies[] = {
      p4::CowbirdP4Engine::ProbePolicy::kRoundRobin,
      p4::CowbirdP4Engine::ProbePolicy::kActivityWeighted};
  double mops[2] = {0, 0};
  sim::ParallelFor(flags.Jobs(), 2, [&](int i) {
    mops[i] = RunHotTenant(policies[i]);
  });
  const double rr = mops[0];
  const double weighted = mops[1];

  bench::Table table({"policy", "hot tenant MOPS"});
  table.Row({"round-robin (paper prototype)", bench::Fmt(rr, 2)});
  table.Row({"activity-weighted (future work)", bench::Fmt(weighted, 2)});
  table.Print();

  std::printf("\nShape checks:\n");
  bench::ShapeCheck(weighted > rr * 1.2,
                    "prioritizing active applications recovers the probe "
                    "slots round-robin wastes on idle tenants");
  return 0;
}
