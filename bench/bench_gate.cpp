// CI perf-regression gate over committed bench baselines.
//
// Compares the BENCH_<name>.json documents a CI run just produced against
// the checked-in medians under bench/baselines/, using the repo's own JSON
// parser — no python in the loop. Per metric the gate knows the failure
// direction:
//
//   * *_wall metrics          — wall-clock throughput/speedups; shared CI
//                               runners make these too noisy to gate by
//                               default, so they are informational unless
//                               --gate-wall is passed (then they fail LOW
//                               only).
//   * allocations_per_op      — datapath heap discipline; fails HIGH only,
//                               with a small absolute slack so a 0.03 → 0.05
//                               jitter does not page anyone.
//   * mops / latency / etc.   — simulated outcomes, bit-deterministic by
//                               construction; fail on drift in EITHER
//                               direction (a drift here is a behavior
//                               change, not a slow machine).
//   * ops / wall_ms / jobs / alloc_bytes_per_op — informational, never
//                               gated.
//
// Medians are taken across reps (rows whose params differ only in "rep").
// Exit 0 = within tolerance, 1 = regression, 2 = usage/parse error.
//
// Refreshing baselines after an intentional perf change:
//   ./bench/sim_throughput && ./bench/fig08_hash_throughput &&
//   ./bench/fig13_latency && ./bench/bench_gate --write-baseline
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/json.h"

namespace cowbird::bench {
namespace {

namespace fs = std::filesystem;
using telemetry::JsonValue;
using telemetry::ParseJson;

enum class Direction {
  kLowerFails,   // throughput-like
  kHigherFails,  // cost-like
  kBothFail,     // deterministic simulated outcome
  kIgnored,
};

bool IsWallMetric(const std::string& metric) {
  const std::string suffix = "_wall";
  return metric.size() > suffix.size() &&
         metric.compare(metric.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

Direction DirectionFor(const std::string& metric, bool gate_wall) {
  if (IsWallMetric(metric)) {
    return gate_wall ? Direction::kLowerFails : Direction::kIgnored;
  }
  if (metric == "allocations_per_op") return Direction::kHigherFails;
  if (metric == "ops" || metric == "wall_ms" ||
      metric == "alloc_bytes_per_op" || metric == "samples" ||
      metric == "jobs") {
    return Direction::kIgnored;
  }
  return Direction::kBothFail;
}

// (group key, metric) → samples across reps. The group key is the params
// object minus "rep", rendered canonically (params are insertion-ordered
// and emitted in a fixed order by BenchJson, so string keys are stable).
using MetricTable = std::map<std::pair<std::string, std::string>,
                             std::vector<double>>;

std::optional<MetricTable> LoadBench(const fs::path& path,
                                     std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open " + path.string();
    return std::nullopt;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string parse_error;
  const auto doc = ParseJson(buffer.str(), &parse_error);
  if (!doc.has_value()) {
    *error = path.string() + ": " + parse_error;
    return std::nullopt;
  }
  const JsonValue* rows = doc->Find("rows");
  if (rows == nullptr || !rows->IsArray()) {
    *error = path.string() + ": missing rows array";
    return std::nullopt;
  }
  MetricTable table;
  for (const JsonValue& row : rows->array) {
    const JsonValue* params = row.Find("params");
    const JsonValue* metrics = row.Find("metrics");
    if (params == nullptr || metrics == nullptr) continue;
    std::string key;
    for (const auto& [name, value] : params->object) {
      if (name == "rep") continue;
      key += name + "=" + value.string + ",";
    }
    for (const auto& [name, value] : metrics->object) {
      if (value.IsNumber()) table[{key, name}].push_back(value.number);
    }
  }
  return table;
}

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : (v[n / 2 - 1] + v[n / 2]) / 2.0;
}

struct GateArgs {
  fs::path baseline_dir;
  fs::path candidate_dir = ".";
  double tolerance = 0.10;
  double alloc_slack = 0.25;  // absolute allocations/op headroom
  bool write_baseline = false;
  bool gate_wall = false;  // opt-in gating of *_wall metrics
};

int CompareOne(const fs::path& baseline_path, const fs::path& candidate_path,
               const GateArgs& args) {
  std::string error;
  const auto baseline = LoadBench(baseline_path, &error);
  if (!baseline.has_value()) {
    std::fprintf(stderr, "bench_gate: %s\n", error.c_str());
    return 2;
  }
  const auto candidate = LoadBench(candidate_path, &error);
  if (!candidate.has_value()) {
    std::fprintf(stderr, "bench_gate: %s\n", error.c_str());
    return 2;
  }

  int failures = 0;
  int checked = 0;
  for (const auto& [key, samples] : *baseline) {
    const auto& [group, metric] = key;
    const Direction dir = DirectionFor(metric, args.gate_wall);
    if (dir == Direction::kIgnored) continue;
    const auto it = candidate->find(key);
    if (it == candidate->end()) {
      std::fprintf(stderr, "  FAIL %s%s: present in baseline, missing from "
                   "candidate\n", group.c_str(), metric.c_str());
      ++failures;
      continue;
    }
    const double base = Median(samples);
    const double cand = Median(it->second);
    const double slack = std::abs(base) * args.tolerance +
                         (metric == "allocations_per_op" ? args.alloc_slack
                                                         : 0.0);
    bool ok = true;
    switch (dir) {
      case Direction::kLowerFails: ok = cand >= base - slack; break;
      case Direction::kHigherFails: ok = cand <= base + slack; break;
      case Direction::kBothFail: ok = std::abs(cand - base) <= slack; break;
      case Direction::kIgnored: break;
    }
    ++checked;
    if (!ok) {
      std::fprintf(stderr, "  FAIL %s%s: baseline median %.4f, candidate "
                   "%.4f (tolerance %.0f%%%s)\n",
                   group.c_str(), metric.c_str(), base, cand,
                   args.tolerance * 100,
                   metric == "allocations_per_op" ? " + slack" : "");
      ++failures;
    }
  }
  std::printf("bench_gate: %s — %d metrics checked, %d regressions\n",
              baseline_path.filename().string().c_str(), checked, failures);
  return failures == 0 ? 0 : 1;
}

int Main(int argc, char** argv) {
#ifdef COWBIRD_SOURCE_DIR
  GateArgs args{.baseline_dir = fs::path(COWBIRD_SOURCE_DIR) / "bench" /
                                "baselines"};
#else
  GateArgs args{.baseline_dir = "bench/baselines"};
#endif
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--baseline-dir") == 0 && i + 1 < argc) {
      args.baseline_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--candidate-dir") == 0 && i + 1 < argc) {
      args.candidate_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
      args.tolerance = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--alloc-slack") == 0 && i + 1 < argc) {
      args.alloc_slack = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--write-baseline") == 0) {
      args.write_baseline = true;
    } else if (std::strcmp(argv[i], "--gate-wall") == 0) {
      args.gate_wall = true;
    } else {
      std::printf(
          "usage: %s [--baseline-dir D] [--candidate-dir D] [--tolerance F]"
          " [--alloc-slack F] [--write-baseline] [--gate-wall]\n", argv[0]);
      return 2;
    }
  }

  if (args.write_baseline) {
    fs::create_directories(args.baseline_dir);
    int written = 0;
    for (const auto& entry : fs::directory_iterator(args.candidate_dir)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("BENCH_", 0) != 0 || entry.path().extension() != ".json")
        continue;
      fs::path dest = args.baseline_dir /
                      (entry.path().stem().string() + ".baseline.json");
      fs::copy_file(entry.path(), dest, fs::copy_options::overwrite_existing);
      std::printf("bench_gate: wrote %s\n", dest.string().c_str());
      ++written;
    }
    if (written == 0) {
      std::fprintf(stderr, "bench_gate: no BENCH_*.json in %s\n",
                   args.candidate_dir.string().c_str());
      return 2;
    }
    return 0;
  }

  if (!fs::is_directory(args.baseline_dir)) {
    std::fprintf(stderr, "bench_gate: baseline dir %s not found\n",
                 args.baseline_dir.string().c_str());
    return 2;
  }
  int rc = 0;
  int compared = 0;
  for (const auto& entry : fs::directory_iterator(args.baseline_dir)) {
    const std::string name = entry.path().filename().string();
    const std::string suffix = ".baseline.json";
    if (name.size() <= suffix.size() ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0)
      continue;
    const fs::path candidate =
        args.candidate_dir /
        (name.substr(0, name.size() - suffix.size()) + ".json");
    rc = std::max(rc, CompareOne(entry.path(), candidate, args));
    ++compared;
  }
  if (compared == 0) {
    std::fprintf(stderr, "bench_gate: no *.baseline.json under %s\n",
                 args.baseline_dir.string().c_str());
    return 2;
  }
  return rc;
}

}  // namespace
}  // namespace cowbird::bench

int main(int argc, char** argv) { return cowbird::bench::Main(argc, argv); }
