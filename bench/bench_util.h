// Shared output helpers for the figure/table benchmarks.
//
// Every bench prints (a) a header identifying the paper artifact it
// regenerates, (b) a gnuplot-friendly data table (series as columns), and
// (c) a short "shape check" comparing the measured relationships with what
// the paper reports. Absolute numbers are simulator-calibrated, not testbed
// numbers — the shapes are the reproduction target (see EXPERIMENTS.md).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace cowbird::bench {

inline void Banner(const char* artifact, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", artifact, description);
  std::printf("==============================================================\n");
}

class Table {
 public:
  explicit Table(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  void Row(const std::vector<std::string>& cells) { rows_.push_back(cells); }

  void Print() const {
    std::vector<std::size_t> widths(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      widths[c] = columns_[c].size();
      for (const auto& row : rows_) {
        if (c < row.size()) widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < columns_.size(); ++c) {
        std::printf("%-*s  ", static_cast<int>(widths[c]),
                    c < cells.size() ? cells[c].c_str() : "");
      }
      std::printf("\n");
    };
    print_row(columns_);
    rows_checked_ = true;
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
  mutable bool rows_checked_ = false;
};

inline std::string Fmt(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline void ShapeCheck(bool ok, const char* claim) {
  std::printf("  [%s] %s\n", ok ? "ok" : "MISMATCH", claim);
}

}  // namespace cowbird::bench
