// Shared output helpers for the figure/table benchmarks.
//
// Every bench prints (a) a header identifying the paper artifact it
// regenerates, (b) a gnuplot-friendly data table (series as columns), and
// (c) a short "shape check" comparing the measured relationships with what
// the paper reports. Absolute numbers are simulator-calibrated, not testbed
// numbers — the shapes are the reproduction target (see EXPERIMENTS.md).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "sim/parallel.h"
#include "telemetry/json.h"
#include "telemetry/metrics.h"

namespace cowbird::bench {

// The parallel-execution flags every sweep driver grew its own copy of:
// --jobs N always, plus --split / --split-workers N / --split-scope
// pair|node|packed when constructed with `with_split`. Call Consume once per argv
// position inside the driver's flag loop; it returns true when it
// recognized (and consumed, including any value operand) the flag. A
// missing or malformed value flips ok() to false — the driver prints
// Usage() and exits, same as for an unknown flag.
class ParallelFlags {
 public:
  explicit ParallelFlags(bool with_split = false) : with_split_(with_split) {}

  bool Consume(int argc, char** argv, int& i) {
    const char* const flag = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        ok_ = false;
        return nullptr;
      }
      return argv[++i];
    };
    if (std::strcmp(flag, "--jobs") == 0) {
      if (const char* v = value()) jobs = std::atoi(v);
      return true;
    }
    if (!with_split_) return false;
    if (std::strcmp(flag, "--split") == 0) {
      split = true;
      return true;
    }
    if (std::strcmp(flag, "--split-workers") == 0) {
      if (const char* v = value()) split_workers = std::atoi(v);
      return true;
    }
    if (std::strcmp(flag, "--split-scope") == 0) {
      const char* const v = value();
      if (v == nullptr) return true;
      if (std::strcmp(v, "pair") != 0 && std::strcmp(v, "node") != 0 &&
          std::strcmp(v, "packed") != 0) {
        ok_ = false;
        return true;
      }
      split_scope = v;
      return true;
    }
    return false;
  }

  bool ok() const { return ok_; }
  const char* Usage() const {
    return with_split_ ? "[--jobs N] [--split] [--split-workers N] "
                         "[--split-scope pair|node|packed]"
                       : "[--jobs N]";
  }
  // Resolved sweep width: the explicit --jobs value or hardware concurrency.
  int Jobs() const { return jobs > 0 ? jobs : sim::HardwareJobs(); }
  bool per_node_scope() const { return split_scope == "node"; }
  bool packed_scope() const { return split_scope == "packed"; }

  int jobs = 0;  // 0 → hardware concurrency
  bool split = false;
  int split_workers = 1;
  std::string split_scope = "pair";

 private:
  bool with_split_ = false;
  bool ok_ = true;
};

inline void Banner(const char* artifact, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", artifact, description);
  std::printf("==============================================================\n");
}

class Table {
 public:
  explicit Table(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  void Row(const std::vector<std::string>& cells) { rows_.push_back(cells); }

  void Print() const {
    std::vector<std::size_t> widths(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      widths[c] = columns_[c].size();
      for (const auto& row : rows_) {
        if (c < row.size()) widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < columns_.size(); ++c) {
        std::printf("%-*s  ", static_cast<int>(widths[c]),
                    c < cells.size() ? cells[c].c_str() : "");
      }
      std::printf("\n");
    };
    print_row(columns_);
    rows_checked_ = true;
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
  mutable bool rows_checked_ = false;
};

inline std::string Fmt(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline void ShapeCheck(bool ok, const char* claim) {
  std::printf("  [%s] %s\n", ok ? "ok" : "MISMATCH", claim);
}

// Machine-readable companion to the printed tables: collects the measured
// data points, the shape-check verdicts, and the run's telemetry snapshot,
// then writes BENCH_<name>.json next to the binary. The document is
// re-parsed before it is written, so a bench can never publish a file the
// repo's own JSON tooling would reject.
//
// Schema:
//   { "schema_version": N, "bench": <name>, "artifact": <figure/table>,
//     "rows": [ { "params": {k: string}, "metrics": {k: number} }, ... ],
//     "shape_checks": [ { "claim": string, "ok": bool }, ... ],
//     "telemetry": <telemetry::Snapshot::ToJson object> }
//
// Version 1 is the original layout. Version 2 (sim_throughput) keeps the
// same structure but adds aggregate/parallel rows whose wall metrics are
// named *_wall; a schema bump marks the row-set change so stale baselines
// are caught by inspection, not by silent drift. Version 3 (sim_throughput)
// adds the split-scaling rows: the 16-node rack workload partitioned one
// PDES domain per topology node, swept across worker counts (params gain a
// "workers" key; deterministic scale_ops is gated, wall curves stay *_wall).
// Version 4 (sim_throughput) adds the fabric-scaling rows: a 128-client
// two-tier fabric swept across worker counts and split scopes (params gain
// "scope"), plus the horizon A/B rows comparing per-edge against global-min
// epoch horizons (deterministic fabric_ops / epochs / epochs_per_sim_ms are
// gated, wall metrics stay *_wall informational).
class BenchJson {
 public:
  using Params = std::vector<std::pair<std::string, std::string>>;
  using Metrics = std::vector<std::pair<std::string, double>>;

  BenchJson(std::string name, std::string artifact,
            unsigned schema_version = 1)
      : name_(std::move(name)),
        artifact_(std::move(artifact)),
        schema_version_(schema_version) {}

  void Row(Params params, Metrics metrics) {
    rows_.push_back({std::move(params), std::move(metrics)});
  }

  // Records the verdict AND prints it like the free ShapeCheck.
  void ShapeCheck(bool ok, const char* claim) {
    bench::ShapeCheck(ok, claim);
    checks_.push_back({claim, ok});
  }

  void SetTelemetry(const telemetry::Snapshot& snapshot) {
    telemetry_json_ = snapshot.ToJson();
  }

  std::string ToJson() const {
    telemetry::JsonWriter w;
    w.BeginObject();
    w.Key("schema_version");
    w.Uint(schema_version_);
    w.Key("bench");
    w.String(name_);
    w.Key("artifact");
    w.String(artifact_);
    w.Key("rows");
    w.BeginArray();
    for (const auto& row : rows_) {
      w.BeginObject();
      w.Key("params");
      w.BeginObject();
      for (const auto& [k, v] : row.params) {
        w.Key(k);
        w.String(v);
      }
      w.EndObject();
      w.Key("metrics");
      w.BeginObject();
      for (const auto& [k, v] : row.metrics) {
        w.Key(k);
        w.Double(v);
      }
      w.EndObject();
      w.EndObject();
    }
    w.EndArray();
    w.Key("shape_checks");
    w.BeginArray();
    for (const auto& check : checks_) {
      w.BeginObject();
      w.Key("claim");
      w.String(check.claim);
      w.Key("ok");
      w.Bool(check.ok);
      w.EndObject();
    }
    w.EndArray();
    w.Key("telemetry");
    w.RawNumber(telemetry_json_.empty() ? "null" : telemetry_json_);
    w.EndObject();
    return w.TakeString();
  }

  // Validates, writes BENCH_<name>.json in the working directory, and
  // reports. Returns false (and writes nothing) if self-validation fails.
  bool WriteFile() const {
    const std::string doc = ToJson();
    std::string error;
    const auto parsed = telemetry::ParseJson(doc, &error);
    if (!parsed.has_value() || parsed->Find("rows") == nullptr ||
        parsed->Find("telemetry") == nullptr) {
      std::printf("  [MISMATCH] BENCH_%s.json failed self-validation: %s\n",
                  name_.c_str(), error.c_str());
      return false;
    }
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::printf("  [MISMATCH] cannot open %s for writing\n", path.c_str());
      return false;
    }
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    std::printf("  [ok] wrote %s (%zu bytes, schema v%u, %zu rows)\n",
                path.c_str(), doc.size(), schema_version_, rows_.size());
    return true;
  }

 private:
  struct RowData {
    Params params;
    Metrics metrics;
  };
  struct Check {
    std::string claim;
    bool ok;
  };

  std::string name_;
  std::string artifact_;
  unsigned schema_version_ = 1;
  std::vector<RowData> rows_;
  std::vector<Check> checks_;
  std::string telemetry_json_;  // empty until SetTelemetry
};

}  // namespace cowbird::bench
