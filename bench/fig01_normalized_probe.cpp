// Figure 1: throughput of a hash-index probe of 256-byte elements in remote
// memory, for each communication primitive, normalized to local memory.
#include <vector>

#include "bench_util.h"
#include "workload/hash_workload.h"

using namespace cowbird;
using workload::HashWorkloadConfig;
using workload::Paradigm;
using workload::RunHashWorkload;

int main() {
  bench::Banner("Figure 1",
                "hash probe of 256 B records, normalized to local memory");

  const int threads[] = {1, 2, 4};
  const Paradigm series[] = {
      Paradigm::kTwoSidedSync, Paradigm::kOneSidedSync,
      Paradigm::kOneSidedAsync, Paradigm::kCowbirdNoBatch,
      Paradigm::kCowbird,
  };

  bench::Table table({"threads", "two-sided(sync)", "one-sided(sync)",
                      "one-sided(async)", "cowbird(nobatch)", "cowbird",
                      "local(MOPS)"});
  double cowbird_norm_last = 0, async_norm_last = 0, sync_norm_last = 0;
  for (int t : threads) {
    auto run = [t](Paradigm p) {
      HashWorkloadConfig c;
      c.paradigm = p;
      c.threads = t;
      c.record_size = 256;
      c.records = 400'000;
      c.measure = Millis(1.5);
      return RunHashWorkload(c).mops;
    };
    const double local = run(Paradigm::kLocalMemory);
    std::vector<std::string> row{std::to_string(t)};
    double norms[5];
    int i = 0;
    for (Paradigm p : series) {
      norms[i] = run(p) / local;
      row.push_back(bench::Fmt(norms[i], 3));
      ++i;
    }
    row.push_back(bench::Fmt(local, 2));
    table.Row(row);
    sync_norm_last = norms[1];
    async_norm_last = norms[2];
    cowbird_norm_last = norms[4];
  }
  table.Print();

  std::printf("\nShape checks vs the paper:\n");
  bench::ShapeCheck(cowbird_norm_last > 0.8,
                    "Cowbird bridges the gap to local memory (>0.8x)");
  bench::ShapeCheck(async_norm_last > 3.5 * sync_norm_last,
                    "async I/O is ~an order of magnitude above sync");
  bench::ShapeCheck(cowbird_norm_last > async_norm_last,
                    "offloading beats compute-issued async RDMA");
  return 0;
}
