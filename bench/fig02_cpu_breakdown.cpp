// Figure 2: compute-side CPU time of a single Cowbird read versus an
// asynchronous one-sided RDMA read, broken down by subtask (post: lock /
// WQE / doorbell; poll: lock / CQE). The breakdown parameters come from the
// paper's rdtsc instrumentation of the OFED driver; the *measured* column
// shows what one operation actually charges in the simulator, validating
// that the model and the executed code path agree.
#include <cstdio>

#include "bench_util.h"
#include "rdma/params.h"
#include "workload/hash_workload.h"

using namespace cowbird;

int main() {
  bench::Banner("Figure 2",
                "CPU time of one read: async one-sided RDMA vs Cowbird");

  const rdma::CostModel costs;
  std::printf("\nModelled per-operation compute-node CPU (ns):\n\n");
  bench::Table table({"path", "subtask", "ns"});
  table.Row({"RDMA post", "lock", bench::Fmt(costs.post_lock, 0)});
  table.Row({"RDMA post", "wqe", bench::Fmt(costs.post_wqe, 0)});
  table.Row({"RDMA post", "doorbell", bench::Fmt(costs.post_doorbell, 0)});
  table.Row({"RDMA poll", "lock", bench::Fmt(costs.poll_lock, 0)});
  table.Row({"RDMA poll", "cqe", bench::Fmt(costs.poll_cqe, 0)});
  table.Row({"RDMA total", "", bench::Fmt(costs.PostTotal() + costs.PollTotal(), 0)});
  table.Row({"Cowbird post", "ring writes", bench::Fmt(costs.cowbird_post, 0)});
  table.Row({"Cowbird poll", "counter check", bench::Fmt(costs.cowbird_poll, 0)});
  table.Row({"Cowbird total", "",
             bench::Fmt(costs.cowbird_post + costs.cowbird_poll, 0)});
  table.Print();

  // Measured: issue+complete cost per op from a one-thread run of each
  // paradigm (communication CPU divided by completed operations).
  auto measure = [](workload::Paradigm p) {
    workload::HashWorkloadConfig c;
    c.paradigm = p;
    c.threads = 1;
    c.record_size = 8;  // minimize copy contribution
    c.records = 200'000;
    c.local_fraction = 0.0;
    c.measure = Millis(1);
    const auto r = workload::RunHashWorkload(c);
    // comm time per op = comm_ratio * total_busy / ops; reconstruct from
    // mops: ops/ns = mops*1e-3.
    const double ns_per_op = 1.0 / (r.mops * 1e-3);
    return r.comm_ratio * ns_per_op;
  };
  const double rdma_comm = measure(workload::Paradigm::kOneSidedAsync);
  const double cowbird_comm = measure(workload::Paradigm::kCowbird);
  std::printf("\nMeasured communication CPU per operation (ns/op):\n");
  std::printf("  async one-sided RDMA : %8.1f\n", rdma_comm);
  std::printf("  Cowbird              : %8.1f\n", cowbird_comm);
  std::printf("  ratio                : %8.1fx\n", rdma_comm / cowbird_comm);

  std::printf("\nShape checks vs the paper:\n");
  const double model_ratio =
      static_cast<double>(costs.PostTotal() + costs.PollTotal()) /
      static_cast<double>(costs.cowbird_post + costs.cowbird_poll);
  bench::ShapeCheck(model_ratio > 8,
                    "RDMA needs ~an order of magnitude more CPU per read");
  bench::ShapeCheck(rdma_comm > 5 * cowbird_comm,
                    "measured end-to-end gap preserves the order of magnitude");
  return 0;
}
