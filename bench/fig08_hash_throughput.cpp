// Figure 8 (a–d): hash table performance backed by disaggregated memory —
// uniformly accessing 8/64/256/512-byte records with 1..16 application
// threads, for every communication primitive. Dashed "bw-bound" columns for
// (c) and (d) are the 100 Gbps upper bound the paper draws.
//
// Besides the printed tables, every data point lands in
// BENCH_fig08_hash_throughput.json together with the cumulative telemetry
// snapshot of the instrumented (Cowbird) runs.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "telemetry/hub.h"
#include "workload/hash_workload.h"

using namespace cowbird;
using workload::HashWorkloadConfig;
using workload::Paradigm;
using workload::RunHashWorkload;

int main() {
  const Bytes sizes[] = {8, 64, 256, 512};
  const int threads[] = {1, 2, 4, 8, 16};
  const Paradigm series[] = {
      Paradigm::kTwoSidedSync,  Paradigm::kOneSidedSync,
      Paradigm::kOneSidedAsync, Paradigm::kCowbirdNoBatch,
      Paradigm::kCowbird,       Paradigm::kLocalMemory,
  };

  bench::Banner("Figure 8",
                "hash table on disaggregated memory, MOPS by record size");
  bench::BenchJson out("fig08_hash_throughput", "Figure 8");

  // One hub for every Cowbird run: counters accumulate across runs, so the
  // embedded snapshot describes the whole instrumented portion of the
  // bench. (The clock is re-seated per run; per-run gauges unbind at each
  // teardown and the final bound set comes from the last run's snapshot.)
  telemetry::Hub hub([] { return Nanos{0}; });
  telemetry::Snapshot last_instrumented;

  bool cowbird_tracks_local_small = true;
  bool cowbird_hits_bw_large = false;
  double async_vs_sync_min = 1e9;

  for (int si = 0; si < 4; ++si) {
    const Bytes size = sizes[si];
    std::printf("\n(%c) uniformly accessing %llu-byte records\n",
                static_cast<char>('a' + si),
                static_cast<unsigned long long>(size));
    bench::Table table({"threads", "two-sided(sync)", "one-sided(sync)",
                        "one-sided(async)", "cowbird(nobatch)", "cowbird",
                        "local", "bw-bound"});
    for (int t : threads) {
      std::vector<std::string> row{std::to_string(t)};
      double mops[6];
      int i = 0;
      for (Paradigm p : series) {
        HashWorkloadConfig c;
        c.paradigm = p;
        c.threads = t;
        c.record_size = size;
        c.records = 400'000;
        c.measure = Millis(1.5);
        if (p == Paradigm::kCowbird) c.telemetry = &hub;
        const auto result = RunHashWorkload(c);
        if (p == Paradigm::kCowbird) last_instrumented = result.telemetry;
        mops[i] = result.mops;
        row.push_back(bench::Fmt(mops[i], 2));
        out.Row({{"paradigm", workload::ParadigmName(p)},
                 {"record_size", std::to_string(size)},
                 {"threads", std::to_string(t)}},
                {{"mops", mops[i]}});
        ++i;
      }
      // 100 Gbps of 95%-remote records (per-record response bytes).
      const double bw_bound =
          100e9 / 8.0 / static_cast<double>(size) / 0.95 / 1e6;
      row.push_back(size >= 256 ? bench::Fmt(bw_bound, 1) : "-");
      table.Row(row);

      async_vs_sync_min = std::min(async_vs_sync_min, mops[2] / mops[1]);
      if (size <= 64 && t <= 4 && mops[4] < 0.75 * mops[5]) {
        cowbird_tracks_local_small = false;
      }
      if (size == 512 && t == 16 && mops[4] > 0.6 * bw_bound) {
        cowbird_hits_bw_large = true;
      }
    }
    table.Print();
  }

  std::printf("\nShape checks vs the paper:\n");
  out.ShapeCheck(async_vs_sync_min > 3,
                 "(1) async I/O is order-of-magnitude more efficient");
  out.ShapeCheck(cowbird_tracks_local_small,
                 "(3) batching Cowbird closes the gap to local memory for "
                 "small records at low thread counts");
  out.ShapeCheck(cowbird_hits_bw_large,
                 "large records with 16 threads approach the bandwidth "
                 "bound");
  out.SetTelemetry(last_instrumented);
  return out.WriteFile() ? 0 : 1;
}
