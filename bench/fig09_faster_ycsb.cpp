// Figure 9 (a–b): FASTER throughput on YCSB (Zipfian theta = 0.99) with
// each storage backend, for 64 B and 512 B values, 1..16 FASTER threads.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "faster/ycsb.h"

using namespace cowbird;
using faster::Backend;
using faster::RunYcsb;
using faster::YcsbConfig;

int main() {
  const std::uint32_t value_sizes[] = {64, 512};
  const int threads[] = {1, 2, 4, 8, 16};
  const Backend series[] = {
      Backend::kSsd,         Backend::kOneSidedSync,
      Backend::kOneSidedAsync, Backend::kCowbirdP4,
      Backend::kCowbirdSpot, Backend::kLocal,
  };

  bench::Banner("Figure 9", "FASTER on YCSB (Zipfian 0.99) by backend");

  double min_remote_vs_ssd = 1e9;
  double max_cowbird_speedup_over_ssd = 0;
  bool cowbird_near_local = true;
  bool engines_similar = true;

  for (std::uint32_t vs : value_sizes) {
    std::printf("\n(%c) %u-byte records\n", vs == 64 ? 'a' : 'b', vs);
    bench::Table table({"threads", "ssd", "1s-sync", "1s-async",
                        "cowbird-p4", "cowbird-spot", "local"});
    for (int t : threads) {
      std::vector<std::string> row{std::to_string(t)};
      double mops[6];
      int i = 0;
      for (Backend b : series) {
        YcsbConfig c;
        c.backend = b;
        c.threads = t;
        c.value_size = vs;
        c.records = vs == 64 ? 60'000 : 20'000;
        c.memory_fraction = 0.12;  // stress the storage layer, as in the paper
        c.measure = Millis(1.5);
        mops[i] = RunYcsb(c).mops;
        row.push_back(bench::Fmt(mops[i], 3));
        ++i;
      }
      table.Row(row);
      min_remote_vs_ssd = std::min(min_remote_vs_ssd, mops[1] / mops[0]);
      max_cowbird_speedup_over_ssd =
          std::max(max_cowbird_speedup_over_ssd, mops[4] / mops[0]);
      if (mops[4] < 0.75 * mops[5]) cowbird_near_local = false;
      if (mops[3] < 0.55 * mops[4] || mops[3] > 1.8 * mops[4]) {
        engines_similar = false;
      }
    }
    table.Print();
  }

  std::printf("\nShape checks vs the paper:\n");
  bench::ShapeCheck(min_remote_vs_ssd >= 2.3,
                    "remote memory is at least 2.3x faster than SSD");
  bench::ShapeCheck(max_cowbird_speedup_over_ssd >= 12,
                    "Cowbird speedup over SSD reaches the 12x-84x band");
  bench::ShapeCheck(cowbird_near_local,
                    "Cowbird stays within ~a quarter of local memory "
                    "(paper: within 8% on the testbed)");
  bench::ShapeCheck(engines_similar,
                    "Cowbird-P4 and Cowbird-Spot perform similarly");
  return 0;
}
