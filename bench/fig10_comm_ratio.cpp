// Figure 10 (a–b): the communication ratio — time spent in the
// communication library over total execution time — for FASTER with each
// remote-memory backend (the Figure 9 runs).
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "faster/ycsb.h"

using namespace cowbird;
using faster::Backend;
using faster::RunYcsb;
using faster::YcsbConfig;

int main() {
  const std::uint32_t value_sizes[] = {64, 512};
  const int threads[] = {1, 2, 4, 8, 16};
  const Backend series[] = {
      Backend::kOneSidedSync,
      Backend::kOneSidedAsync,
      Backend::kCowbirdP4,
      Backend::kCowbirdSpot,
  };

  bench::Banner("Figure 10",
                "communication ratio (comm library CPU / total CPU)");

  double sync_min = 1.0, cowbird_max = 0.0;
  for (std::uint32_t vs : value_sizes) {
    std::printf("\n(%c) %u-byte records\n", vs == 64 ? 'a' : 'b', vs);
    bench::Table table(
        {"threads", "1s-sync", "1s-async", "cowbird-p4", "cowbird-spot"});
    for (int t : threads) {
      std::vector<std::string> row{std::to_string(t)};
      int i = 0;
      for (Backend b : series) {
        YcsbConfig c;
        c.backend = b;
        c.threads = t;
        c.value_size = vs;
        c.records = vs == 64 ? 60'000 : 20'000;
        c.memory_fraction = 0.12;
        c.measure = Millis(1.5);
        const double ratio = RunYcsb(c).comm_ratio;
        row.push_back(bench::Fmt(ratio, 3));
        if (b == Backend::kOneSidedSync) sync_min = std::min(sync_min, ratio);
        if (b == Backend::kCowbirdSpot || b == Backend::kCowbirdP4) {
          cowbird_max = std::max(cowbird_max, ratio);
        }
        ++i;
      }
      table.Row(row);
    }
    table.Print();
  }

  std::printf("\nShape checks vs the paper:\n");
  // Paper: sync RDMA >80%. Our FASTER model charges heavier per-op compute
  // (epoch/context work) and the Zipfian mix serves ~40-50% of reads from
  // memory, so the sync ratio lands in the 0.5-0.7 band — still an order of
  // magnitude above Cowbird's (EXPERIMENTS.md).
  bench::ShapeCheck(sync_min > 0.5,
                    "sync RDMA spends the majority of its CPU communicating");
  bench::ShapeCheck(cowbird_max < 0.25,
                    "Cowbird consistently spends <20-25%, much of it wrapper "
                    "code");
  bench::ShapeCheck(sync_min > 5 * cowbird_max,
                    "the sync-vs-Cowbird gap is ~an order of magnitude");
  return 0;
}
