// Figure 11: FASTER throughput with Cowbird-Spot vs Redy (YCSB, 64-byte
// records, uniform keys, small local memory). Redy pins one I/O thread per
// FASTER thread to a compute-node core; past half the cores the machine is
// out of cores and Redy stops scaling, while Cowbird keeps all cores for
// the application.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "faster/ycsb.h"

using namespace cowbird;
using faster::Backend;
using faster::RunYcsb;
using faster::YcsbConfig;

int main() {
  bench::Banner("Figure 11", "FASTER throughput: Cowbird-Spot vs Redy");

  const int threads[] = {1, 2, 4, 8, 12, 16};
  bench::Table table({"threads", "redy", "cowbird-spot", "note"});
  double redy8 = 0, redy16 = 0, cow16 = 0, cow8 = 0;
  for (int t : threads) {
    auto run = [t](Backend b) {
      YcsbConfig c;
      c.backend = b;
      c.threads = t;
      c.value_size = 64;
      c.records = 60'000;
      c.zipfian = false;  // uniform, as in the paper's Figure 11 setup
      c.memory_fraction = 0.12;  // 1 GB of ~18 GB
      c.measure = Millis(1.5);
      return RunYcsb(c).mops;
    };
    const double redy = run(Backend::kRedy);
    const double cowbird = run(Backend::kCowbirdSpot);
    // 16 logical cores: t app threads + t pinned Redy I/O threads.
    const bool out_of_cores = 2 * t > 16;
    table.Row({std::to_string(t), bench::Fmt(redy, 3),
               bench::Fmt(cowbird, 3),
               out_of_cores ? "redy out of cores" : ""});
    if (t == 8) { redy8 = redy; cow8 = cow8 + cowbird; }
    if (t == 16) { redy16 = redy; cow16 = cowbird; }
  }
  table.Print();

  std::printf("\nShape checks vs the paper:\n");
  bench::ShapeCheck(cow16 > redy16 * 1.3,
                    "past the core budget Cowbird clearly outperforms Redy");
  bench::ShapeCheck(redy16 < redy8 * 1.6,
                    "Redy stops scaling once I/O threads exhaust cores");
  return 0;
}
