// Figure 12: throughput of uniformly reading 8-byte objects from remote
// memory — Cowbird-Spot vs the AIFM model. AIFM pays a nontrivial CPU path
// per dereference (yield + runtime dataplane) and serializes across
// threads; Cowbird's per-access cost is a few local-memory writes.
#include <cstdio>

#include "bench_util.h"
#include "workload/hash_workload.h"

using namespace cowbird;
using workload::HashWorkloadConfig;
using workload::Paradigm;
using workload::RunHashWorkload;

int main() {
  bench::Banner("Figure 12",
                "uniform 8 B object reads: AIFM vs Cowbird-Spot");

  const int threads[] = {1, 2, 4, 8, 16};
  bench::Table table({"threads", "aifm", "cowbird-spot", "speedup"});
  double max_speedup = 0;
  bool always_order_of_magnitude = true;
  for (int t : threads) {
    auto run = [t](Paradigm p) {
      HashWorkloadConfig c;
      c.paradigm = p;
      c.threads = t;
      c.record_size = 8;
      c.records = 400'000;
      c.local_fraction = 0.0;  // pure remote reads
      c.app_compute = 20;      // thin driver, as in the AIFM microbench
      c.measure = Millis(1.5);
      return RunHashWorkload(c).mops;
    };
    const double aifm = run(Paradigm::kAifm);
    const double cowbird = run(Paradigm::kCowbird);
    const double speedup = cowbird / aifm;
    max_speedup = std::max(max_speedup, speedup);
    if (speedup < 4) always_order_of_magnitude = false;
    table.Row({std::to_string(t), bench::Fmt(aifm, 3),
               bench::Fmt(cowbird, 2), bench::Fmt(speedup, 1) + "x"});
  }
  table.Print();

  std::printf("\nShape checks vs the paper:\n");
  bench::ShapeCheck(always_order_of_magnitude,
                    "Cowbird is order-of-magnitude-class faster at every "
                    "thread count");
  bench::ShapeCheck(max_speedup > 10,
                    "peak speedup lands in the paper's double-digit band "
                    "(paper: up to 71x)");
  return 0;
}
