// Figure 13: median and p99 latency of reading records of different sizes
// from remote memory — sync one-sided RDMA, async one-sided RDMA (batched),
// Cowbird without batching, Cowbird with batching.
//
// Besides the printed table this bench emits BENCH_fig13_latency.json (all
// data points + the telemetry snapshot of an instrumented Cowbird probe)
// and TRACE_fig13_cowbird.json, a Chrome-trace sample of that probe's op
// lifecycles, validated before it is written (open it in chrome://tracing
// or https://ui.perfetto.dev).
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "telemetry/hub.h"
#include "workload/hash_workload.h"

using namespace cowbird;
using workload::LatencyProbeConfig;
using workload::LatencyResult;
using workload::Paradigm;
using workload::RunLatencyProbe;

int main() {
  bench::Banner("Figure 13", "read latency by record size (median / p99, us)");
  bench::BenchJson out("fig13_latency", "Figure 13");

  const Bytes sizes[] = {8, 64, 256, 512, 1024, 2048};
  bench::Table table({"size", "1s-sync p50/p99", "1s-async p50/p99",
                      "cowbird-nobatch p50/p99", "cowbird-batch p50/p99"});

  bool nobatch_close_to_sync = true;
  bool batch_below_async = true;
  bool batch_bounds_hold = true;

  telemetry::Snapshot instrumented;

  for (Bytes size : sizes) {
    auto run = [size](Paradigm p, int inflight,
                      telemetry::Hub* hub = nullptr) {
      LatencyProbeConfig c;
      c.paradigm = p;
      c.record_size = size;
      c.inflight = inflight;
      c.samples = 1500;
      c.telemetry = hub;
      return RunLatencyProbe(c);
    };
    const LatencyResult sync = run(Paradigm::kOneSidedSync, 1);
    const LatencyResult async_b = run(Paradigm::kOneSidedAsync, 100);
    const LatencyResult nobatch = run(Paradigm::kCowbirdNoBatch, 1);
    // Deep enough that batches form without draining the pipeline. The
    // 256-byte probe (the paper's headline record size) runs instrumented
    // and contributes the snapshot + sample trace.
    LatencyResult batch;
    if (size == 256) {
      telemetry::Hub hub([] { return Nanos{0}; });  // re-seated by the run
      batch = run(Paradigm::kCowbird, 48, &hub);
      instrumented = batch.telemetry;
      const std::string trace = hub.tracer.ToChromeTraceJson();
      std::string error;
      if (!telemetry::ValidateChromeTrace(trace, &error)) {
        std::printf("  [MISMATCH] sample trace invalid: %s\n", error.c_str());
        return 1;
      }
      if (std::FILE* f = std::fopen("TRACE_fig13_cowbird.json", "w")) {
        std::fwrite(trace.data(), 1, trace.size(), f);
        std::fclose(f);
        std::printf("  [ok] wrote TRACE_fig13_cowbird.json (%zu bytes, "
                    "%zu op lifecycles)\n",
                    trace.size(), hub.tracer.ops().size());
      }
    } else {
      batch = run(Paradigm::kCowbird, 48);
    }

    auto cell = [](const LatencyResult& r) {
      return bench::Fmt(r.median_us, 1) + " / " + bench::Fmt(r.p99_us, 1);
    };
    table.Row({std::to_string(size), cell(sync), cell(async_b),
               cell(nobatch), cell(batch)});
    const struct {
      const char* series;
      const LatencyResult* r;
    } points[] = {{"one_sided_sync", &sync},
                  {"one_sided_async", &async_b},
                  {"cowbird_nobatch", &nobatch},
                  {"cowbird_batch", &batch}};
    for (const auto& p : points) {
      out.Row({{"series", p.series}, {"record_size", std::to_string(size)}},
              {{"median_us", p.r->median_us},
               {"p99_us", p.r->p99_us},
               {"samples", static_cast<double>(p.r->samples)}});
    }

    if (nobatch.median_us > 3.5 * sync.median_us) {
      nobatch_close_to_sync = false;
    }
    if (batch.median_us > async_b.median_us) batch_below_async = false;
    // The paper reports <10 us median / <20 us p99 on its testbed (RTT
    // ~1.3 us); our calibrated fabric RTT is ~2.3 us, shifting the chain by
    // ~3 us. Check the bound with that shift applied (see EXPERIMENTS.md).
    if (size <= 512 && (batch.median_us > 13.0 || batch.p99_us > 20.0)) {
      batch_bounds_hold = false;
    }
  }
  table.Print();

  std::printf("\nShape checks vs the paper:\n");
  out.ShapeCheck(nobatch_close_to_sync,
                 "unbatched Cowbird is similar to sync one-sided RDMA "
                 "(2 extra RTTs + probe interval, minus post/poll)");
  out.ShapeCheck(batch_below_async,
                 "batched Cowbird stays well below batched async RDMA");
  out.ShapeCheck(batch_bounds_hold,
                 "batched Cowbird keeps ~10 us median / <20 us p99 for "
                 "small records (paper bound + fabric RTT shift)");
  out.SetTelemetry(instrumented);
  return out.WriteFile() ? 0 : 1;
}
