// Figure 14: aggregate bandwidth of 10 contending TCP flows from the
// compute node toward a bystander server (25 Gbps NIC) while Cowbird runs
// FASTER-style 512 B traffic — with Cowbird-P4, Cowbird-Spot, and without
// Cowbird. RDMA packets ride *above* user traffic on the priority-scheduled
// uplink, bounding the worst case as in the paper.
#include <cstdio>

#include "bench_util.h"
#include "workload/hash_workload.h"

using namespace cowbird;
using workload::ContentionResult;
using workload::HashWorkloadConfig;
using workload::Paradigm;
using workload::RunContentionExperiment;

int main() {
  bench::Banner("Figure 14",
                "TCP goodput under Cowbird contention (10 flows, 512 B)");

  const int threads[] = {1, 2, 4, 8};
  // The shared uplink is provisioned at the contending path's capacity so
  // the interference is visible (see EXPERIMENTS.md).
  const BitRate uplink = BitRate::Gbps(25);

  bench::Table table({"app-threads", "cowbird-p4 (Gbps)",
                      "cowbird-spot (Gbps)", "w/o cowbird (Gbps)"});
  double baseline8 = 0, p4_8 = 0, spot8 = 0;
  for (int t : threads) {
    auto run = [t, uplink](Paradigm p) {
      HashWorkloadConfig c;
      c.paradigm = p;
      c.threads = t;
      c.record_size = 512;
      c.records = 200'000;
      c.measure = Millis(3);
      return RunContentionExperiment(c, /*tcp_flows=*/10, uplink);
    };
    const ContentionResult p4 = run(Paradigm::kCowbirdP4);
    const ContentionResult spot = run(Paradigm::kCowbird);
    const ContentionResult none = run(Paradigm::kLocalMemory);
    table.Row({std::to_string(t), bench::Fmt(p4.tcp_gbps, 1),
               bench::Fmt(spot.tcp_gbps, 1), bench::Fmt(none.tcp_gbps, 1)});
    if (t == 8) {
      baseline8 = none.tcp_gbps;
      p4_8 = p4.tcp_gbps;
      spot8 = spot.tcp_gbps;
    }
  }
  table.Print();

  const double p4_drop = 1.0 - p4_8 / baseline8;
  const double spot_drop = 1.0 - spot8 / baseline8;
  std::printf("\nAt 8 application threads: P4 drop %.0f%%, Spot drop %.0f%%\n",
              p4_drop * 100, spot_drop * 100);
  std::printf("\nShape checks vs the paper:\n");
  bench::ShapeCheck(spot_drop < 0.10,
                    "Cowbird-Spot overhead on user traffic is negligible");
  bench::ShapeCheck(p4_drop > spot_drop && p4_drop <= 0.45,
                    "Cowbird-P4 costs user TCP up to ~30% (no response "
                    "batching)");
  return 0;
}
