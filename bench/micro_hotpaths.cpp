// Google-benchmark microbenchmarks of the implementation's hot paths —
// real wall-clock numbers for the code the simulator executes per event.
// These bound the simulator's own throughput (events/s), independent of
// the modelled virtual-time costs.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/ring.h"
#include "common/rng.h"
#include "common/sparse_memory.h"
#include "core/request.h"
#include "rdma/wire.h"
#include "sim/parallel.h"
#include "sim/simulation.h"
#include "telemetry/hub.h"
#include "workload/generator.h"

namespace {

using namespace cowbird;

void BM_WireBuildParseReadRequest(benchmark::State& state) {
  rdma::Bth bth;
  bth.opcode = rdma::Opcode::kReadRequest;
  bth.dest_qp = 7;
  rdma::Reth reth{0xDEADBEEF, 0x1234, 4096};
  for (auto _ : state) {
    bth.psn = static_cast<std::uint32_t>(state.iterations());
    net::Packet p = rdma::BuildRdmaPacket(1, 2, net::Priority::kRdma, bth,
                                          &reth, nullptr, {});
    auto view = rdma::ParseRdmaPacket(p);
    benchmark::DoNotOptimize(view.bth.psn);
  }
}
BENCHMARK(BM_WireBuildParseReadRequest);

void BM_WireBuildParseWithPayload(benchmark::State& state) {
  std::vector<std::uint8_t> payload(state.range(0));
  rdma::Bth bth;
  bth.opcode = rdma::Opcode::kReadResponseOnly;
  rdma::Aeth aeth{};
  for (auto _ : state) {
    net::Packet p = rdma::BuildRdmaPacket(2, 1, net::Priority::kRdma, bth,
                                          nullptr, &aeth, payload);
    auto view = rdma::ParseRdmaPacket(p);
    benchmark::DoNotOptimize(view.payload.size());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WireBuildParseWithPayload)->Arg(64)->Arg(1024);

void BM_RingCursorsPushPop(benchmark::State& state) {
  RingCursors ring(1024);
  for (auto _ : state) {
    const auto c = ring.Push();
    benchmark::DoNotOptimize(ring.Slot(c));
    ring.Pop();
  }
}
BENCHMARK(BM_RingCursorsPushPop);

void BM_MetadataPublishParse(benchmark::State& state) {
  SparseMemory mem;
  core::RequestMetadata meta;
  meta.rw_type = core::RwType::kRead;
  meta.length = 256;
  std::vector<std::uint8_t> raw(core::kMetadataEntryBytes);
  for (auto _ : state) {
    meta.req_addr = static_cast<std::uint64_t>(state.iterations());
    meta.Publish(mem, 0x1000);
    mem.Read(0x1000, raw);
    auto parsed = core::RequestMetadata::ParseBytes(raw);
    benchmark::DoNotOptimize(parsed.req_addr);
  }
}
BENCHMARK(BM_MetadataPublishParse);

void BM_SparseMemoryCopy(benchmark::State& state) {
  SparseMemory mem;
  std::vector<std::uint8_t> buf(state.range(0), 0xAB);
  std::uint64_t addr = 0;
  for (auto _ : state) {
    mem.Write(addr, buf);
    mem.Read(addr, buf);
    addr = (addr + 8192) % (64 << 20);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_SparseMemoryCopy)->Arg(64)->Arg(1024)->Arg(32768);

void BM_ZipfianNext(benchmark::State& state) {
  Rng rng(1);
  workload::ZipfianGenerator gen(1'000'000, 0.99);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.NextScrambled(rng));
  }
}
BENCHMARK(BM_ZipfianNext);

void BM_EventQueueScheduleDispatch(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulation sim;
    state.ResumeTiming();
    for (int i = 0; i < 1000; ++i) {
      sim.ScheduleAt(i, [] {});
    }
    sim.Run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleDispatch);

void BM_CoroutineDelayRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    sim.Spawn([](sim::Simulation& s) -> sim::Task<void> {
      for (int i = 0; i < 1000; ++i) co_await s.Delay(1);
    }(sim));
    sim.Run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CoroutineDelayRoundTrip);

// --- PDES epoch machinery ------------------------------------------------
// The coordinator pays these once per epoch, so at fabric scale (hundreds
// of domains, hundreds of thousands of epochs per simulated second) they
// bound the split engine's own throughput. The synthetic fabric mirrors
// the two-tier fan-in shape: domain 0 is the core switch, the next G are
// group ToRs (~16 hosts each), the rest are hosts — at 136 domains this is
// the 128-client testbed's silhouette.

struct EpochBenchFabric {
  std::vector<std::unique_ptr<sim::Simulation>> sims;
  std::unique_ptr<sim::DomainGroup> group;
  std::vector<std::pair<int, int>> edges;  // every (src, dst) pair wired
};

EpochBenchFabric MakeEpochBenchFabric(int domains) {
  EpochBenchFabric f;
  f.group = std::make_unique<sim::DomainGroup>(1);
  for (int d = 0; d < domains; ++d) {
    f.sims.push_back(std::make_unique<sim::Simulation>());
    f.group->AddDomain(*f.sims.back());
  }
  const int tors = std::max(1, (domains - 2) / 17);
  const auto link = [&f](int a, int b, Nanos lookahead) {
    f.group->NoteCrossLink(sim::CutEdge{a, b, lookahead, "bench", "a", "b"});
    f.group->NoteCrossLink(sim::CutEdge{b, a, lookahead, "bench", "b", "a"});
    f.edges.emplace_back(a, b);
    f.edges.emplace_back(b, a);
  };
  for (int t = 0; t < tors; ++t) link(0, 1 + t, 500);
  for (int h = 1 + tors; h < domains; ++h) {
    link(1 + h % tors, h, 200 + (h % 5) * 60);
  }
  // Staggered pending events so the horizon relaxation sees heterogeneous
  // next-event times, as a real epoch would.
  for (int d = 0; d < domains; ++d) {
    f.sims[static_cast<std::size_t>(d)]->ScheduleAt(100 + d * 7, [] {});
  }
  return f;
}

void BM_DomainGroupComputeHorizons(benchmark::State& state) {
  EpochBenchFabric f = MakeEpochBenchFabric(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    f.group->ComputeHorizonsForBench(Millis(1));
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DomainGroupComputeHorizons)->Arg(16)->Arg(64)->Arg(136);

void BM_DomainGroupDrainInboxes(benchmark::State& state) {
  EpochBenchFabric f = MakeEpochBenchFabric(static_cast<int>(state.range(0)));
  // CrossPost checks deliveries land beyond the destination's published
  // horizon, so publish horizons once before filling any mailbox.
  f.group->ComputeHorizonsForBench(Millis(1));
  constexpr int kEventsPerEdge = 2;
  Nanos when = Millis(2);
  for (auto _ : state) {
    state.PauseTiming();
    for (const auto& [src, dst] : f.edges) {
      for (int i = 0; i < kEventsPerEdge; ++i) {
        f.group->CrossPost(src, dst, when + i, [] {});
      }
    }
    state.ResumeTiming();
    f.group->DrainAllInboxesForBench();
    state.PauseTiming();
    // Empty the domain heaps so they do not grow across iterations; the
    // clocks advance, so later posts use a fresh, strictly later `when`.
    for (auto& sim : f.sims) sim->Run();
    when += Micros(10);
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(f.edges.size()) *
                          kEventsPerEdge);
}
BENCHMARK(BM_DomainGroupDrainInboxes)->Arg(16)->Arg(64)->Arg(136);

// --- telemetry hot paths -------------------------------------------------
// The registry's claim is near-zero hot-path cost: a bound Counter::Add is
// one increment through a pointer, and an unbound one is a test-and-skip.
// Both must stay within noise of a plain local increment.

void BM_TelemetryCounterAdd(benchmark::State& state) {
  telemetry::MetricRegistry registry;
  telemetry::Counter counter =
      registry.GetCounter("bench_ops", {{"engine", "spot"}});
  for (auto _ : state) {
    counter.Add();
  }
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_TelemetryCounterAdd);

void BM_TelemetryCounterAddUnbound(benchmark::State& state) {
  telemetry::Counter counter;  // unbound: telemetry off, writes no-op
  for (auto _ : state) {
    counter.Add();
  }
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_TelemetryCounterAddUnbound);

void BM_TelemetryHistogramObserve(benchmark::State& state) {
  telemetry::MetricRegistry registry;
  telemetry::Histogram histogram = registry.GetHistogram("bench_lat");
  std::uint64_t v = 1;
  for (auto _ : state) {
    histogram.Observe(v);
    v = v * 2862933555777941757ull + 3037000493ull;  // cover all buckets
  }
}
BENCHMARK(BM_TelemetryHistogramObserve);

void BM_TelemetryRecordOpPhase(benchmark::State& state) {
  // One op-lifecycle stamp: map lookup + array store. This is the most
  // expensive per-op telemetry cost the engines pay.
  telemetry::SpanTracer tracer([] { return Nanos{0}; });
  std::uint64_t seq = 0;
  for (auto _ : state) {
    tracer.RecordOpAt(telemetry::OpKey{1, 0, false, ++seq},
                      telemetry::OpPhase::kIssue, 100);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TelemetryRecordOpPhase);

void BM_TelemetrySnapshot(benchmark::State& state) {
  // Snapshot cost scales with series count, not with hot-path traffic.
  telemetry::MetricRegistry registry;
  for (int i = 0; i < 64; ++i) {
    registry.GetCounter("c" + std::to_string(i)).Add(i);
    registry.GetGauge("g" + std::to_string(i)).Set(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.TakeSnapshot().counters.size());
  }
}
BENCHMARK(BM_TelemetrySnapshot);

}  // namespace

BENCHMARK_MAIN();
