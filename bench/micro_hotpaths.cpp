// Google-benchmark microbenchmarks of the implementation's hot paths —
// real wall-clock numbers for the code the simulator executes per event.
// These bound the simulator's own throughput (events/s), independent of
// the modelled virtual-time costs.
#include <benchmark/benchmark.h>

#include "common/ring.h"
#include "common/rng.h"
#include "common/sparse_memory.h"
#include "core/request.h"
#include "rdma/wire.h"
#include "sim/simulation.h"
#include "telemetry/hub.h"
#include "workload/generator.h"

namespace {

using namespace cowbird;

void BM_WireBuildParseReadRequest(benchmark::State& state) {
  rdma::Bth bth;
  bth.opcode = rdma::Opcode::kReadRequest;
  bth.dest_qp = 7;
  rdma::Reth reth{0xDEADBEEF, 0x1234, 4096};
  for (auto _ : state) {
    bth.psn = static_cast<std::uint32_t>(state.iterations());
    net::Packet p = rdma::BuildRdmaPacket(1, 2, net::Priority::kRdma, bth,
                                          &reth, nullptr, {});
    auto view = rdma::ParseRdmaPacket(p);
    benchmark::DoNotOptimize(view.bth.psn);
  }
}
BENCHMARK(BM_WireBuildParseReadRequest);

void BM_WireBuildParseWithPayload(benchmark::State& state) {
  std::vector<std::uint8_t> payload(state.range(0));
  rdma::Bth bth;
  bth.opcode = rdma::Opcode::kReadResponseOnly;
  rdma::Aeth aeth{};
  for (auto _ : state) {
    net::Packet p = rdma::BuildRdmaPacket(2, 1, net::Priority::kRdma, bth,
                                          nullptr, &aeth, payload);
    auto view = rdma::ParseRdmaPacket(p);
    benchmark::DoNotOptimize(view.payload.size());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WireBuildParseWithPayload)->Arg(64)->Arg(1024);

void BM_RingCursorsPushPop(benchmark::State& state) {
  RingCursors ring(1024);
  for (auto _ : state) {
    const auto c = ring.Push();
    benchmark::DoNotOptimize(ring.Slot(c));
    ring.Pop();
  }
}
BENCHMARK(BM_RingCursorsPushPop);

void BM_MetadataPublishParse(benchmark::State& state) {
  SparseMemory mem;
  core::RequestMetadata meta;
  meta.rw_type = core::RwType::kRead;
  meta.length = 256;
  std::vector<std::uint8_t> raw(core::kMetadataEntryBytes);
  for (auto _ : state) {
    meta.req_addr = static_cast<std::uint64_t>(state.iterations());
    meta.Publish(mem, 0x1000);
    mem.Read(0x1000, raw);
    auto parsed = core::RequestMetadata::ParseBytes(raw);
    benchmark::DoNotOptimize(parsed.req_addr);
  }
}
BENCHMARK(BM_MetadataPublishParse);

void BM_SparseMemoryCopy(benchmark::State& state) {
  SparseMemory mem;
  std::vector<std::uint8_t> buf(state.range(0), 0xAB);
  std::uint64_t addr = 0;
  for (auto _ : state) {
    mem.Write(addr, buf);
    mem.Read(addr, buf);
    addr = (addr + 8192) % (64 << 20);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_SparseMemoryCopy)->Arg(64)->Arg(1024)->Arg(32768);

void BM_ZipfianNext(benchmark::State& state) {
  Rng rng(1);
  workload::ZipfianGenerator gen(1'000'000, 0.99);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.NextScrambled(rng));
  }
}
BENCHMARK(BM_ZipfianNext);

void BM_EventQueueScheduleDispatch(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulation sim;
    state.ResumeTiming();
    for (int i = 0; i < 1000; ++i) {
      sim.ScheduleAt(i, [] {});
    }
    sim.Run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleDispatch);

void BM_CoroutineDelayRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    sim.Spawn([](sim::Simulation& s) -> sim::Task<void> {
      for (int i = 0; i < 1000; ++i) co_await s.Delay(1);
    }(sim));
    sim.Run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CoroutineDelayRoundTrip);

// --- telemetry hot paths -------------------------------------------------
// The registry's claim is near-zero hot-path cost: a bound Counter::Add is
// one increment through a pointer, and an unbound one hits the shared dummy
// cell. Both must stay within noise of a plain local increment.

void BM_TelemetryCounterAdd(benchmark::State& state) {
  telemetry::MetricRegistry registry;
  telemetry::Counter counter =
      registry.GetCounter("bench_ops", {{"engine", "spot"}});
  for (auto _ : state) {
    counter.Add();
  }
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_TelemetryCounterAdd);

void BM_TelemetryCounterAddUnbound(benchmark::State& state) {
  telemetry::Counter counter;  // dummy-cell fallback: telemetry off
  for (auto _ : state) {
    counter.Add();
  }
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_TelemetryCounterAddUnbound);

void BM_TelemetryHistogramObserve(benchmark::State& state) {
  telemetry::MetricRegistry registry;
  telemetry::Histogram histogram = registry.GetHistogram("bench_lat");
  std::uint64_t v = 1;
  for (auto _ : state) {
    histogram.Observe(v);
    v = v * 2862933555777941757ull + 3037000493ull;  // cover all buckets
  }
}
BENCHMARK(BM_TelemetryHistogramObserve);

void BM_TelemetryRecordOpPhase(benchmark::State& state) {
  // One op-lifecycle stamp: map lookup + array store. This is the most
  // expensive per-op telemetry cost the engines pay.
  telemetry::SpanTracer tracer([] { return Nanos{0}; });
  std::uint64_t seq = 0;
  for (auto _ : state) {
    tracer.RecordOpAt(telemetry::OpKey{1, 0, false, ++seq},
                      telemetry::OpPhase::kIssue, 100);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TelemetryRecordOpPhase);

void BM_TelemetrySnapshot(benchmark::State& state) {
  // Snapshot cost scales with series count, not with hot-path traffic.
  telemetry::MetricRegistry registry;
  for (int i = 0; i < 64; ++i) {
    registry.GetCounter("c" + std::to_string(i)).Add(i);
    registry.GetGauge("g" + std::to_string(i)).Set(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.TakeSnapshot().counters.size());
  }
}
BENCHMARK(BM_TelemetrySnapshot);

}  // namespace

BENCHMARK_MAIN();
