// Simulator-throughput macro-benchmark and allocation audit.
//
// Unlike the figure benches, the metric here is the *simulator's* wall-clock
// speed, not the simulated system's performance: how many simulated
// read/write operations per real second each engine's datapath sustains, and
// how many heap allocations each operation costs. A global counting
// operator new/delete (compiled into this binary only) is armed exactly over
// the steady-state measure window via HashWorkloadConfig's measure hooks, so
// warmup, topology construction, and teardown never pollute the count.
//
// Four parallel sections ride along (schema v4):
//
//   * --jobs N (default: hardware concurrency) re-runs each engine's rep
//     batch on a sim::ParallelFor pool and reports aggregate wall
//     throughput plus the batch speedup over the same batch run serially.
//     Per-run outcomes are bit-identical either way (checked).
//   * A domain-split section runs one rep with the testbed cut into two
//     event-loop domains (sim::DomainGroup) and reports the wall speedup of
//     the split run over the serial run, plus the split run's own
//     worker-count invariance (1 worker vs N must match bit for bit).
//   * A split-scaling section runs the 16-node rack fan-in workload
//     (12 clients + 2 memory servers + spot + switch) partitioned one PDES
//     domain per topology node, sweeping 1 → 8 workers. Per-client op
//     counts must be bit-identical for every worker count; the wall
//     speedup curve is reported per point and its monotonicity is only
//     asserted when the machine actually has >= 8 hardware threads.
//   * A fabric-scaling section (new in v4) runs the 128-client two-tier
//     fabric (8 groups of 16 clients behind per-group ToRs trunked into the
//     core, 4 memory servers) swept across worker counts 1 → 8 under both
//     split scopes: one PDES domain per node (142 domains) and the
//     event-rate-packed partition (net::PackDomains, budget 8). Per-scope op
//     and epoch counts are bit-deterministic and gated; the horizon A/B rows
//     rerun each scope under the historical global-min horizon and gate the
//     per-edge policy's epoch reduction (>= 3x fewer barrier rounds per
//     simulated ms on the per-node partition).
//
// All *_wall metrics are informational in bench_gate unless --gate-wall;
// the deterministic outcome totals (ops_total, split_ops, scale_ops,
// fabric_ops, fabric_epochs, epochs_per_sim_ms) are gated tight.
//
// Emits BENCH_sim_throughput.json (schema v4). The committed baseline under
// bench/baselines/ plus the bench_gate comparator turn this into the CI
// perf-regression gate; see README.md.
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <new>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "sim/parallel.h"
#include "workload/hash_workload.h"
#include "workload/scale_workload.h"

namespace {

// Relaxed atomics: the simulator is single-threaded, but operator new is a
// process-global hook and must stay well-defined no matter who calls it.
std::atomic<bool> g_counting{false};
std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};

void CountAlloc(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  }
}

}  // namespace

// All deletes funnel to free(): glibc documents free() as the release
// function for aligned_alloc storage too, but GCC's new/delete pairing
// heuristic cannot see that and warns.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  CountAlloc(size);
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  CountAlloc(size);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& t) noexcept {
  return ::operator new(size, t);
}
void* operator new(std::size_t size, std::align_val_t align) {
  CountAlloc(size);
  const std::size_t a = static_cast<std::size_t>(align);
  void* p = std::aligned_alloc(a, (size + a - 1) / a * a);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace cowbird::bench {
namespace {

using workload::HashWorkloadConfig;
using workload::LatencyProbeConfig;
using workload::Paradigm;
using workload::ParadigmName;

struct RunStats {
  double ops_per_sec_wall = 0;  // simulated ops retired per real second
  double allocs_per_op = 0;
  double alloc_bytes_per_op = 0;
  double mops_sim = 0;  // simulated MOPS (sanity: sim outcome must not move)
  double events_per_op = 0;  // dispatcher events per retired op
  std::uint64_t ops = 0;
  double wall_ms = 0;
};

struct BenchArgs {
  int reps = 3;
  int threads = 4;
  Nanos measure = Millis(10);
  double write_fraction = 0.3;
  int jobs = 0;  // parallel batch width; 0 → hardware concurrency
};

HashWorkloadConfig BaseConfig(Paradigm paradigm, const BenchArgs& args,
                              int rep) {
  HashWorkloadConfig cfg;
  cfg.paradigm = paradigm;
  cfg.threads = args.threads;
  cfg.record_size = 256;
  cfg.records = 200'000;
  cfg.local_fraction = 0.0;  // every op exercises the remote datapath
  cfg.window = 64;
  cfg.warmup = Micros(300);
  cfg.measure = args.measure;
  cfg.write_fraction = args.write_fraction;
  cfg.seed = 1 + static_cast<std::uint64_t>(rep);
  return cfg;
}

RunStats RunOne(Paradigm paradigm, const BenchArgs& args, int rep) {
  HashWorkloadConfig cfg = BaseConfig(paradigm, args, rep);

  using Clock = std::chrono::steady_clock;
  Clock::time_point t0, t1;
  std::uint64_t allocs = 0, alloc_bytes = 0;
  cfg.on_measure_start = [&] {
    g_allocs.store(0, std::memory_order_relaxed);
    g_alloc_bytes.store(0, std::memory_order_relaxed);
    g_counting.store(true, std::memory_order_relaxed);
    t0 = Clock::now();
  };
  cfg.on_measure_end = [&] {
    t1 = Clock::now();
    g_counting.store(false, std::memory_order_relaxed);
    allocs = g_allocs.load(std::memory_order_relaxed);
    alloc_bytes = g_alloc_bytes.load(std::memory_order_relaxed);
  };

  const auto result = workload::RunHashWorkload(cfg);

  RunStats s;
  const double wall_s =
      std::chrono::duration<double>(t1 - t0).count();
  s.ops = result.ops;
  s.wall_ms = wall_s * 1e3;
  s.ops_per_sec_wall =
      wall_s > 0 ? static_cast<double>(result.ops) / wall_s : 0;
  s.allocs_per_op = result.ops > 0
                        ? static_cast<double>(allocs) /
                              static_cast<double>(result.ops)
                        : 0;
  s.alloc_bytes_per_op = result.ops > 0
                             ? static_cast<double>(alloc_bytes) /
                                   static_cast<double>(result.ops)
                             : 0;
  s.mops_sim = result.mops;
  s.events_per_op = result.ops > 0 ? static_cast<double>(result.sim_events) /
                                         static_cast<double>(result.ops)
                                   : 0;
  return s;
}

double MedianOf(std::vector<double> v) {
  PercentileSampler s;
  for (double x : v) s.Add(x);
  return s.Median();
}

double WallSeconds(const std::function<void()>& body) {
  const auto t0 = std::chrono::steady_clock::now();
  body();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Level-1 parallelism: the engine's rep batch on a ParallelFor pool vs the
// same batch serially. The allocation hooks stay disarmed — they are
// process-global and would mix runs — so these rows carry wall and outcome
// metrics only. Per-run results are bit-identical either way; only the wall
// clock may move.
void AggregateSection(Paradigm paradigm, const BenchArgs& args, int jobs,
                      BenchJson& json, Table& table) {
  std::vector<std::uint64_t> serial_ops(
      static_cast<std::size_t>(args.reps), 0);
  std::vector<std::uint64_t> parallel_ops(
      static_cast<std::size_t>(args.reps), 0);
  const double serial_s = WallSeconds([&] {
    for (int rep = 0; rep < args.reps; ++rep) {
      serial_ops[static_cast<std::size_t>(rep)] =
          workload::RunHashWorkload(BaseConfig(paradigm, args, rep)).ops;
    }
  });
  const double parallel_s = WallSeconds([&] {
    sim::ParallelFor(jobs, args.reps, [&](int rep) {
      parallel_ops[static_cast<std::size_t>(rep)] =
          workload::RunHashWorkload(BaseConfig(paradigm, args, rep)).ops;
    });
  });

  std::uint64_t total = 0;
  bool outcomes_match = true;
  for (int rep = 0; rep < args.reps; ++rep) {
    const auto r = static_cast<std::size_t>(rep);
    total += parallel_ops[r];
    outcomes_match = outcomes_match && serial_ops[r] == parallel_ops[r];
  }
  const double agg_ops_per_sec =
      parallel_s > 0 ? static_cast<double>(total) / parallel_s : 0;
  const double speedup = parallel_s > 0 ? serial_s / parallel_s : 0;
  table.Row({ParadigmName(paradigm), "agg", std::to_string(total),
             Fmt(agg_ops_per_sec, 0), "-", "-", "-", "-",
             Fmt(parallel_s * 1e3, 1)});
  json.Row({{"engine", ParadigmName(paradigm)}, {"rep", "aggregate"}},
           {{"jobs", static_cast<double>(jobs)},
            {"ops_total", static_cast<double>(total)},
            {"agg_ops_per_sec_wall", agg_ops_per_sec},
            {"agg_speedup_wall", speedup}});
  char claim[128];
  std::snprintf(claim, sizeof(claim),
                "%s batch outcomes identical serial vs --jobs=%d "
                "(speedup %.2fx)",
                ParadigmName(paradigm), jobs, speedup);
  json.ShapeCheck(outcomes_match, claim);
}

// Level-2 parallelism: one simulation cut into two event-loop domains. The
// split schedule resolves same-timestamp ties across the cut differently
// than the serial heap, so outcomes are near-identical (sub-percent), not
// bit-equal — but the split run itself must be bit-identical for any
// worker count.
void SplitSection(Paradigm paradigm, const BenchArgs& args, int jobs,
                  BenchJson& json, Table& table) {
  std::uint64_t serial_ops = 0, split1_ops = 0, splitn_ops = 0;
  const double serial_s = WallSeconds([&] {
    serial_ops = workload::RunHashWorkload(BaseConfig(paradigm, args, 0)).ops;
  });
  {
    HashWorkloadConfig cfg = BaseConfig(paradigm, args, 0);
    cfg.split_domains = true;
    cfg.split_workers = 1;
    split1_ops = workload::RunHashWorkload(cfg).ops;
  }
  double split_s = 0;
  {
    HashWorkloadConfig cfg = BaseConfig(paradigm, args, 0);
    cfg.split_domains = true;
    cfg.split_workers = jobs;
    split_s = WallSeconds(
        [&] { splitn_ops = workload::RunHashWorkload(cfg).ops; });
  }
  const double speedup = split_s > 0 ? serial_s / split_s : 0;
  const double drift =
      serial_ops > 0 ? std::abs(static_cast<double>(splitn_ops) -
                                static_cast<double>(serial_ops)) /
                           static_cast<double>(serial_ops)
                     : 1.0;
  table.Row({ParadigmName(paradigm), "split", std::to_string(splitn_ops),
             "-", "-", "-", "-", "-", Fmt(split_s * 1e3, 1)});
  json.Row({{"engine", ParadigmName(paradigm)}, {"rep", "split"}},
           {{"jobs", static_cast<double>(jobs)},
            {"split_ops", static_cast<double>(splitn_ops)},
            {"split_speedup_wall", speedup}});
  char claim[160];
  std::snprintf(claim, sizeof(claim),
                "%s domain-split bit-identical across worker counts "
                "(1:%llu N:%llu)",
                ParadigmName(paradigm),
                static_cast<unsigned long long>(split1_ops),
                static_cast<unsigned long long>(splitn_ops));
  json.ShapeCheck(split1_ops == splitn_ops, claim);
  std::snprintf(claim, sizeof(claim),
                "%s split outcome within 2%% of serial (serial:%llu "
                "split:%llu, wall speedup %.2fx)",
                ParadigmName(paradigm),
                static_cast<unsigned long long>(serial_ops),
                static_cast<unsigned long long>(splitn_ops), speedup);
  json.ShapeCheck(drift <= 0.02, claim);
}

// Level-3 parallelism: the 16-node rack fabric (12 clients + 2 memory
// servers + spot + switch, workload/scale_workload.h) partitioned one PDES
// domain per topology node and swept across worker counts. The op totals are
// bit-deterministic and gated; the wall speedup curve is informational and
// its monotonicity is only asserted on machines with enough hardware
// threads to actually run the workers concurrently.
void ScaleSection(BenchJson& json, Table& table) {
  using workload::ScaleWorkloadConfig;
  using workload::ScaleWorkloadResult;
  const auto base = [] {
    ScaleWorkloadConfig cfg;  // defaults: 12 clients + 2 memory servers
    cfg.records = 50'000;
    cfg.warmup = Micros(200);
    cfg.measure = Millis(1);
    return cfg;
  };

  ScaleWorkloadResult serial;
  const double serial_s =
      WallSeconds([&] { serial = workload::RunScaleWorkload(base()); });
  table.Row({"cowbird", "scale-serial", std::to_string(serial.ops), "-", "-",
             "-", "-", "-", Fmt(serial_s * 1e3, 1)});
  json.Row({{"engine", "cowbird"}, {"rep", "scale"}, {"workers", "serial"}},
           {{"scale_ops", static_cast<double>(serial.ops)},
            {"scale_ms_wall", serial_s * 1e3}});

  constexpr int kWorkerCounts[] = {1, 2, 4, 8};
  std::vector<std::uint64_t> pinned_client_ops;
  std::uint64_t split_ops = 0;
  bool identical = true;
  bool monotonic = true;
  double prev_speedup = 0;
  for (const int workers : kWorkerCounts) {
    ScaleWorkloadConfig cfg = base();
    cfg.split = true;
    cfg.split_workers = workers;
    ScaleWorkloadResult r;
    const double split_s =
        WallSeconds([&] { r = workload::RunScaleWorkload(cfg); });
    const double speedup = split_s > 0 ? serial_s / split_s : 0;
    if (pinned_client_ops.empty()) {
      pinned_client_ops = r.client_ops;
      split_ops = r.ops;
    } else {
      identical = identical && r.client_ops == pinned_client_ops &&
                  r.ops == split_ops;
    }
    // 10% slack absorbs wall-clock noise between adjacent sweep points.
    monotonic =
        monotonic && (prev_speedup == 0 || speedup >= prev_speedup * 0.9);
    prev_speedup = speedup;
    table.Row({"cowbird", "scale-w" + std::to_string(workers),
               std::to_string(r.ops), "-", "-", "-", "-", "-",
               Fmt(split_s * 1e3, 1)});
    json.Row({{"engine", "cowbird"},
              {"rep", "scale"},
              {"workers", std::to_string(workers)}},
             {{"scale_ops", static_cast<double>(r.ops)},
              {"scale_ms_wall", split_s * 1e3},
              {"scale_speedup_wall", speedup}});
  }

  char claim[160];
  std::snprintf(claim, sizeof(claim),
                "16-node scale split bit-identical across workers 1/2/4/8 "
                "(%llu ops, serial %llu)",
                static_cast<unsigned long long>(split_ops),
                static_cast<unsigned long long>(serial.ops));
  json.ShapeCheck(identical, claim);
  const int hardware = sim::MaxParallelism();
  if (hardware >= kWorkerCounts[3]) {
    std::snprintf(claim, sizeof(claim),
                  "scale split speedup non-decreasing 1->8 workers "
                  "(final %.2fx, 10%% slack)",
                  prev_speedup);
    json.ShapeCheck(monotonic, claim);
  } else {
    std::snprintf(claim, sizeof(claim),
                  "scale split speedup curve informational: %d hardware "
                  "thread(s) < 8 workers",
                  hardware);
    json.ShapeCheck(true, claim);
  }
}

// Level-4 parallelism: the 128-client two-tier fabric — 8 groups of 16
// clients behind per-group ToR switches trunked into the core, 4 memory
// servers — swept across worker counts under both split scopes. "node" is
// one PDES domain per topology node (142 domains); "packed" folds those
// down to 8 via net::PackDomains over event rates profiled by a short
// deterministic pre-run. Within each scope, per-client op counts and epoch
// counts are bit-identical for every worker count (gated); across scopes
// the partition legitimately shifts same-timestamp tie-breaks at the cuts,
// so only per-scope totals are pinned. The horizon A/B rows rerun each
// scope under HorizonPolicy::kGlobalMin — outcomes are policy-invariant,
// and epochs-per-simulated-ms is the gated efficiency metric: per-edge
// LBTS horizons must cut barrier rounds >= 3x on the per-node partition.
void FabricSection(BenchJson& json, Table& table) {
  using workload::ScaleWorkloadConfig;
  using workload::ScaleWorkloadResult;
  constexpr Nanos kMeasure = Micros(200);
  const double sim_ms = static_cast<double>(kMeasure) * 1e-6;
  const auto base = [] {
    ScaleWorkloadConfig cfg;
    cfg.paradigm = Paradigm::kCowbirdP4;
    cfg.clients = 128;
    cfg.memory_servers = 4;
    cfg.client_groups = 8;
    cfg.threads_per_client = 1;
    cfg.records = 20'000;
    cfg.app_compute = Micros(10);
    cfg.window = 1;
    // Completions are probe-paced, so poll coarsely instead of spinning:
    // the idle polls otherwise floor every domain's horizon. At 128
    // instances the probe engine also spaces its sweeps out, or probe
    // handling alone keeps every rack neighborhood hot.
    cfg.poll_idle = Micros(2);
    cfg.poll_jitter = 31;
    cfg.p4_probe_interval = Micros(4);
    // In-rack client <-> ToR DACs: ~4 m at 5 ns/m. The short uplinks make
    // the lookahead graph heterogeneous; the global-min horizon is floored
    // at this value fabric-wide, while per-edge horizons confine it to the
    // client neighborhoods.
    cfg.client_propagation = 20;
    // Hall-scale ToR <-> core optics: ~120 m of fiber. The wide trunk
    // lookahead is what lets each rack neighborhood advance in trunk-sized
    // epoch steps regardless of how dense the core's own event stream is.
    cfg.trunk_propagation = 600;
    cfg.warmup = Micros(50);
    cfg.measure = kMeasure;
    cfg.split = true;
    return cfg;
  };

  struct Scope {
    const char* name;
    bool packed;
  };
  constexpr Scope kScopes[] = {{"node", false}, {"packed", true}};
  constexpr int kWorkerCounts[] = {1, 2, 4, 8};

  for (const Scope& scope : kScopes) {
    std::vector<std::uint64_t> pinned_client_ops;
    std::uint64_t pinned_ops = 0, pinned_epochs = 0, pinned_skipped = 0;
    bool identical = true;
    int domains = 0;
    for (const int workers : kWorkerCounts) {
      ScaleWorkloadConfig cfg = base();
      cfg.packed = scope.packed;
      cfg.split_workers = workers;
      ScaleWorkloadResult r;
      const double wall_s =
          WallSeconds([&] { r = workload::RunScaleWorkload(cfg); });
      domains = r.domains;
      if (pinned_client_ops.empty()) {
        pinned_client_ops = r.client_ops;
        pinned_ops = r.ops;
        pinned_epochs = r.epochs;
        pinned_skipped = r.epochs_skipped;
      } else {
        identical = identical && r.client_ops == pinned_client_ops &&
                    r.ops == pinned_ops && r.epochs == pinned_epochs &&
                    r.epochs_skipped == pinned_skipped;
      }
      table.Row({"cowbird",
                 std::string("fabric-") + scope.name + "-w" +
                     std::to_string(workers),
                 std::to_string(r.ops), "-", "-", "-", "-", "-",
                 Fmt(wall_s * 1e3, 1)});
      json.Row({{"engine", "cowbird"},
                {"rep", "fabric"},
                {"scope", scope.name},
                {"workers", std::to_string(workers)}},
               {{"fabric_ops", static_cast<double>(r.ops)},
                {"fabric_epochs", static_cast<double>(r.epochs)},
                {"fabric_epochs_skipped",
                 static_cast<double>(r.epochs_skipped)},
                {"fabric_domains", static_cast<double>(r.domains)},
                {"fabric_ms_wall", wall_s * 1e3}});
    }

    char claim[192];
    std::snprintf(claim, sizeof(claim),
                  "128-client two-tier %s scope bit-identical across workers "
                  "1/2/4/8 (%llu ops, %llu epochs, %d domains)",
                  scope.name, static_cast<unsigned long long>(pinned_ops),
                  static_cast<unsigned long long>(pinned_epochs), domains);
    json.ShapeCheck(identical && domains == (scope.packed ? 8 : 142), claim);

    // Horizon A/B: one global-min rerun per scope. Epoch counts are
    // deterministic for any worker count, so a single point suffices.
    ScaleWorkloadConfig cfg = base();
    cfg.packed = scope.packed;
    cfg.split_workers = 4;
    cfg.horizon_policy = sim::HorizonPolicy::kGlobalMin;
    ScaleWorkloadResult gm;
    const double gm_wall_s =
        WallSeconds([&] { gm = workload::RunScaleWorkload(cfg); });
    const double per_edge_rate = static_cast<double>(pinned_epochs) / sim_ms;
    const double global_min_rate = static_cast<double>(gm.epochs) / sim_ms;
    const double reduction =
        pinned_epochs > 0 ? static_cast<double>(gm.epochs) /
                                static_cast<double>(pinned_epochs)
                          : 0;
    table.Row({"cowbird", std::string("fabric-") + scope.name + "-gmin",
               std::to_string(gm.ops), "-", "-", "-", "-", "-",
               Fmt(gm_wall_s * 1e3, 1)});
    json.Row({{"engine", "cowbird"},
              {"rep", "horizon"},
              {"scope", scope.name},
              {"workers", "4"}},
             {{"fabric_ops", static_cast<double>(gm.ops)},
              {"epochs_per_edge", static_cast<double>(pinned_epochs)},
              {"epochs_global_min", static_cast<double>(gm.epochs)},
              {"epochs_per_sim_ms", per_edge_rate},
              {"epochs_per_sim_ms_global_min", global_min_rate},
              {"fabric_ms_wall", gm_wall_s * 1e3}});
    std::snprintf(claim, sizeof(claim),
                  "%s scope horizon-policy-invariant outcome (per-edge %llu "
                  "ops == global-min %llu ops)",
                  scope.name, static_cast<unsigned long long>(pinned_ops),
                  static_cast<unsigned long long>(gm.ops));
    json.ShapeCheck(gm.ops == pinned_ops && gm.client_ops == pinned_client_ops,
                    claim);
    if (scope.packed) {
      std::snprintf(claim, sizeof(claim),
                    "packed scope per-edge horizons reduce epochs "
                    "(%.0f -> %.0f epochs/sim-ms, %.2fx)",
                    global_min_rate, per_edge_rate, reduction);
      json.ShapeCheck(pinned_epochs < gm.epochs, claim);
    } else {
      std::snprintf(claim, sizeof(claim),
                    "node scope per-edge horizons cut epochs >= 3x "
                    "(%.0f -> %.0f epochs/sim-ms, %.2fx)",
                    global_min_rate, per_edge_rate, reduction);
      json.ShapeCheck(reduction >= 3.0, claim);
    }
    const double exec_pe = static_cast<double>(pinned_epochs) * domains -
                           static_cast<double>(pinned_skipped);
    const double exec_gm = static_cast<double>(gm.epochs) * domains -
                           static_cast<double>(gm.epochs_skipped);
    std::printf("  fabric %s: %d domains, epochs/sim-ms %.0f per-edge vs "
                "%.0f global-min (%.2fx); executed domain-epochs %.0f vs "
                "%.0f (%.2fx)\n",
                scope.name, domains, per_edge_rate, global_min_rate,
                reduction, exec_pe, exec_gm, exec_pe > 0 ? exec_gm / exec_pe : 0);
  }
}

int Main(int argc, char** argv) {
  BenchArgs args;
  ParallelFlags parallel;
  for (int i = 1; i < argc; ++i) {
    if (parallel.Consume(argc, argv, i)) {
      if (!parallel.ok()) {
        std::printf("usage: %s [--reps N] [--threads N] [--measure-ms N] %s\n",
                    argv[0], parallel.Usage());
        return 2;
      }
      continue;
    }
    if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      args.reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      args.threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--measure-ms") == 0 && i + 1 < argc) {
      args.measure = Millis(std::atoi(argv[++i]));
    } else {
      std::printf("usage: %s [--reps N] [--threads N] [--measure-ms N] %s\n",
                  argv[0], parallel.Usage());
      return 2;
    }
  }
  args.jobs = parallel.jobs;
  const int jobs = parallel.Jobs();

  Banner("sim_throughput",
         "simulator wall-clock throughput, allocations per op, and "
         "parallel-execution speedups");

  const Paradigm engines[] = {Paradigm::kCowbird, Paradigm::kCowbirdP4};
  BenchJson json("sim_throughput", "perf-gate", /*schema_version=*/4);
  Table table({"engine", "rep", "ops", "ops/sec(wall)", "allocs/op",
               "bytes/op", "events/op", "sim MOPS", "wall ms"});

  std::vector<double> median_allocs;
  std::uint64_t total_ops = 0;
  for (const Paradigm paradigm : engines) {
    std::vector<double> ops_per_sec, allocs_per_op;
    for (int rep = 0; rep < args.reps; ++rep) {
      const RunStats s = RunOne(paradigm, args, rep);
      total_ops += s.ops;
      ops_per_sec.push_back(s.ops_per_sec_wall);
      allocs_per_op.push_back(s.allocs_per_op);
      table.Row({ParadigmName(paradigm), std::to_string(rep),
                 std::to_string(s.ops), Fmt(s.ops_per_sec_wall, 0),
                 Fmt(s.allocs_per_op, 3), Fmt(s.alloc_bytes_per_op, 1),
                 Fmt(s.events_per_op, 1), Fmt(s.mops_sim, 3),
                 Fmt(s.wall_ms, 1)});
      json.Row({{"engine", ParadigmName(paradigm)},
                {"rep", std::to_string(rep)}},
               {{"ops", static_cast<double>(s.ops)},
                {"ops_per_sec_wall", s.ops_per_sec_wall},
                {"allocations_per_op", s.allocs_per_op},
                {"alloc_bytes_per_op", s.alloc_bytes_per_op},
                {"mops_sim", s.mops_sim}});
    }
    median_allocs.push_back(MedianOf(allocs_per_op));

    // Closed-loop p50/p99 sim latency: a sanity field, not a gated metric —
    // the pooled datapath must not change the simulated outcome at all.
    LatencyProbeConfig probe;
    probe.paradigm = paradigm;
    probe.inflight = 16;
    probe.samples = 2000;
    const auto lat = workload::RunLatencyProbe(probe);
    json.Row({{"engine", ParadigmName(paradigm)}, {"rep", "latency"}},
             {{"sim_p50_us", lat.median_us}, {"sim_p99_us", lat.p99_us}});
    std::printf("  %s sim latency: p50=%.2fus p99=%.2fus (%llu samples)\n",
                ParadigmName(paradigm), lat.median_us, lat.p99_us,
                static_cast<unsigned long long>(lat.samples));
  }

  std::printf("  parallel sections: --jobs %d (%d hardware)\n", jobs,
              sim::MaxParallelism());
  for (const Paradigm paradigm : engines) {
    AggregateSection(paradigm, args, jobs, json, table);
    SplitSection(paradigm, args, jobs, json, table);
  }
  ScaleSection(json, table);
  FabricSection(json, table);

  table.Print();
  json.ShapeCheck(total_ops > 0, "workload retired operations");
  for (std::size_t i = 0; i < median_allocs.size(); ++i) {
    char claim[128];
    std::snprintf(claim, sizeof(claim),
                  "%s steady-state datapath allocations/op = %.3f",
                  ParadigmName(engines[i]), median_allocs[i]);
    // Printed for the record; the hard <=1 gate lives in bench_gate against
    // the committed baseline.
    json.ShapeCheck(true, claim);
  }
  return json.WriteFile() ? 0 : 1;
}

}  // namespace
}  // namespace cowbird::bench

int main(int argc, char** argv) { return cowbird::bench::Main(argc, argv); }
