// Table 1: on-demand vs spot prices for general-purpose 4-vCPU/16 GB VMs
// (data from July 24, 2023, as in the paper) plus the derived quantity the
// argument rests on: offloading Cowbird's engine to spot capacity costs a
// small fraction of the compute-node cores it frees.
#include <cstdio>

#include "bench_util.h"

using namespace cowbird;

int main() {
  bench::Banner("Table 1", "on-demand vs spot instance pricing");

  struct Row {
    const char* vm;
    double on_demand;
    double spot;
  };
  const Row rows[] = {
      {"GCP: c3-standard-4", 0.257, 0.059},
      {"AWS: m5.xlarge", 0.192, 0.049},
      {"Azure: D4s-v3", 0.236, 0.023},
  };

  bench::Table table({"VM type", "on-demand $/h", "spot $/h", "discount"});
  double worst_discount = 1.0;
  for (const auto& r : rows) {
    const double discount = 1.0 - r.spot / r.on_demand;
    worst_discount = std::min(worst_discount, discount);
    table.Row({r.vm, bench::Fmt(r.on_demand, 3), bench::Fmt(r.spot, 3),
               bench::Fmt(discount * 100, 0) + "%"});
  }
  table.Print();

  // GCP pure spot CPUs: $0.009638 per vCPU-hour (Section 2.2).
  const double spot_vcpu_hour = 0.009638;
  // The Cowbird-Spot agent uses at most one core (Section 8.4) and serves
  // all application threads of a compute node; a verbs-based design burns
  // compute-node cores instead (Redy: one pinned I/O core per app thread).
  const double on_demand_vcpu_hour = 0.257 / 4;  // c3-standard-4
  std::printf("\nDerived cost of disaggregation CPU:\n");
  std::printf("  1 spot vCPU for the Cowbird engine : $%.6f/h\n",
              spot_vcpu_hour);
  std::printf("  1 on-demand vCPU (compute node)    : $%.6f/h\n",
              on_demand_vcpu_hour);
  std::printf("  engine cost / freed core cost      : %.1f%%\n",
              100.0 * spot_vcpu_hour / on_demand_vcpu_hour);

  std::printf("\nShape checks vs the paper:\n");
  bench::ShapeCheck(worst_discount >= 0.74,
                    "spot reduces cost by up to ~90% (all rows >74%)");
  bench::ShapeCheck(spot_vcpu_hour / on_demand_vcpu_hour < 0.2,
                    "offload engine CPU is far cheaper than compute CPU");
  return 0;
}
