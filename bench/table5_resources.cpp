// Table 5: data-plane resource usage of the Cowbird-P4 program on a 32-port
// L3-forwarding Tofino switch (worst case: all ports drive Cowbird). The
// totals are computed by summing what each match-action stage declares.
#include <cstdio>

#include "bench_util.h"
#include "p4/resources.h"

using namespace cowbird;

int main() {
  bench::Banner("Table 5", "Cowbird-P4 data-plane resource usage");

  p4::P4SpecParams params;  // 32 instances x 16 threads, worst case
  const p4::P4PipelineSpec spec = p4::BuildCowbirdP4Spec(params);

  std::printf("\nPHV allocation:\n");
  bench::Table phv({"field", "bits"});
  for (const auto& f : spec.phv) phv.Row({f.name, std::to_string(f.bits)});
  phv.Print();

  std::printf("\nStage layout:\n");
  bench::Table stages({"stage", "SRAM(KiB)", "TCAM(KiB)", "VLIW", "sALU"});
  for (const auto& s : spec.stages) {
    stages.Row({s.name, bench::Fmt(s.sram_bits / 8.0 / 1024.0, 1),
                bench::Fmt(s.tcam_bits / 8.0 / 1024.0, 2),
                std::to_string(s.vliw_instructions),
                std::to_string(s.stateful_alus)});
  }
  stages.Print();

  const auto totals = spec.Sum();
  std::printf("\nTotals (computed vs paper Table 5):\n");
  bench::Table cmp({"resource", "computed", "paper"});
  cmp.Row({"PHV", std::to_string(totals.phv_bits) + " b", "1085 b"});
  cmp.Row({"SRAM", bench::Fmt(totals.sram_kib, 0) + " KB", "1424 KB"});
  cmp.Row({"TCAM", bench::Fmt(totals.tcam_kib, 2) + " KB", "1.28 KB"});
  cmp.Row({"Stages", std::to_string(totals.stages), "12"});
  cmp.Row({"VLIW instrs.", std::to_string(totals.vliw_instructions), "38"});
  cmp.Row({"sALU", std::to_string(totals.stateful_alus), "11"});
  cmp.Print();

  std::printf("\nShape checks vs the paper:\n");
  bench::ShapeCheck(totals.phv_bits == 1085, "PHV allocation matches");
  bench::ShapeCheck(totals.stages == 12, "fits 12 stages, no recirculation");
  bench::ShapeCheck(std::abs(totals.sram_kib - 1424) < 30,
                    "SRAM within 2% of the reported 1424 KB");
  bench::ShapeCheck(totals.stateful_alus == 11 &&
                        totals.vliw_instructions == 38,
                    "sALU / VLIW budgets match");
  return 0;
}
