file(REMOVE_RECURSE
  "../bench/abl_adaptive_probe"
  "../bench/abl_adaptive_probe.pdb"
  "CMakeFiles/abl_adaptive_probe.dir/abl_adaptive_probe.cpp.o"
  "CMakeFiles/abl_adaptive_probe.dir/abl_adaptive_probe.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_adaptive_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
