# Empty compiler generated dependencies file for abl_adaptive_probe.
# This may be replaced when dependencies are built.
