file(REMOVE_RECURSE
  "../bench/abl_batching"
  "../bench/abl_batching.pdb"
  "CMakeFiles/abl_batching.dir/abl_batching.cpp.o"
  "CMakeFiles/abl_batching.dir/abl_batching.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_batching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
