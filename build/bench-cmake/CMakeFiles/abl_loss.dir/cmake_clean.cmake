file(REMOVE_RECURSE
  "../bench/abl_loss"
  "../bench/abl_loss.pdb"
  "CMakeFiles/abl_loss.dir/abl_loss.cpp.o"
  "CMakeFiles/abl_loss.dir/abl_loss.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
