# Empty dependencies file for abl_loss.
# This may be replaced when dependencies are built.
