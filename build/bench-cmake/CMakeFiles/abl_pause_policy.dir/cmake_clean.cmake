file(REMOVE_RECURSE
  "../bench/abl_pause_policy"
  "../bench/abl_pause_policy.pdb"
  "CMakeFiles/abl_pause_policy.dir/abl_pause_policy.cpp.o"
  "CMakeFiles/abl_pause_policy.dir/abl_pause_policy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_pause_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
