# Empty compiler generated dependencies file for abl_pause_policy.
# This may be replaced when dependencies are built.
