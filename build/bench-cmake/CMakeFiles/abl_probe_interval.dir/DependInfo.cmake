
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/abl_probe_interval.cpp" "bench-cmake/CMakeFiles/abl_probe_interval.dir/abl_probe_interval.cpp.o" "gcc" "bench-cmake/CMakeFiles/abl_probe_interval.dir/abl_probe_interval.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/cowbird_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/cowbird_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/spot/CMakeFiles/cowbird_spot.dir/DependInfo.cmake"
  "/root/repo/build/src/p4/CMakeFiles/cowbird_p4.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cowbird_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rdma/CMakeFiles/cowbird_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cowbird_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cowbird_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cowbird_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
