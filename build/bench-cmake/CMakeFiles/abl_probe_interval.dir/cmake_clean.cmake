file(REMOVE_RECURSE
  "../bench/abl_probe_interval"
  "../bench/abl_probe_interval.pdb"
  "CMakeFiles/abl_probe_interval.dir/abl_probe_interval.cpp.o"
  "CMakeFiles/abl_probe_interval.dir/abl_probe_interval.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_probe_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
