# Empty compiler generated dependencies file for abl_probe_interval.
# This may be replaced when dependencies are built.
