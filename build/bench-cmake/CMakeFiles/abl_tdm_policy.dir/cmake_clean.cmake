file(REMOVE_RECURSE
  "../bench/abl_tdm_policy"
  "../bench/abl_tdm_policy.pdb"
  "CMakeFiles/abl_tdm_policy.dir/abl_tdm_policy.cpp.o"
  "CMakeFiles/abl_tdm_policy.dir/abl_tdm_policy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_tdm_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
