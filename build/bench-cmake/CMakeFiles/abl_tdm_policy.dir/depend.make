# Empty dependencies file for abl_tdm_policy.
# This may be replaced when dependencies are built.
