file(REMOVE_RECURSE
  "../bench/fig01_normalized_probe"
  "../bench/fig01_normalized_probe.pdb"
  "CMakeFiles/fig01_normalized_probe.dir/fig01_normalized_probe.cpp.o"
  "CMakeFiles/fig01_normalized_probe.dir/fig01_normalized_probe.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_normalized_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
