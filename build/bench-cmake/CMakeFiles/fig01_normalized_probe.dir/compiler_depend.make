# Empty compiler generated dependencies file for fig01_normalized_probe.
# This may be replaced when dependencies are built.
