file(REMOVE_RECURSE
  "../bench/fig02_cpu_breakdown"
  "../bench/fig02_cpu_breakdown.pdb"
  "CMakeFiles/fig02_cpu_breakdown.dir/fig02_cpu_breakdown.cpp.o"
  "CMakeFiles/fig02_cpu_breakdown.dir/fig02_cpu_breakdown.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_cpu_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
