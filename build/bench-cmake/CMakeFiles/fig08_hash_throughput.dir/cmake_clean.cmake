file(REMOVE_RECURSE
  "../bench/fig08_hash_throughput"
  "../bench/fig08_hash_throughput.pdb"
  "CMakeFiles/fig08_hash_throughput.dir/fig08_hash_throughput.cpp.o"
  "CMakeFiles/fig08_hash_throughput.dir/fig08_hash_throughput.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_hash_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
