# Empty dependencies file for fig08_hash_throughput.
# This may be replaced when dependencies are built.
