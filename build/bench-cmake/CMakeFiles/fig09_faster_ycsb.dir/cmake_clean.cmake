file(REMOVE_RECURSE
  "../bench/fig09_faster_ycsb"
  "../bench/fig09_faster_ycsb.pdb"
  "CMakeFiles/fig09_faster_ycsb.dir/fig09_faster_ycsb.cpp.o"
  "CMakeFiles/fig09_faster_ycsb.dir/fig09_faster_ycsb.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_faster_ycsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
