# Empty compiler generated dependencies file for fig09_faster_ycsb.
# This may be replaced when dependencies are built.
