file(REMOVE_RECURSE
  "../bench/fig10_comm_ratio"
  "../bench/fig10_comm_ratio.pdb"
  "CMakeFiles/fig10_comm_ratio.dir/fig10_comm_ratio.cpp.o"
  "CMakeFiles/fig10_comm_ratio.dir/fig10_comm_ratio.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_comm_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
