# Empty dependencies file for fig10_comm_ratio.
# This may be replaced when dependencies are built.
