file(REMOVE_RECURSE
  "../bench/fig11_redy"
  "../bench/fig11_redy.pdb"
  "CMakeFiles/fig11_redy.dir/fig11_redy.cpp.o"
  "CMakeFiles/fig11_redy.dir/fig11_redy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_redy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
