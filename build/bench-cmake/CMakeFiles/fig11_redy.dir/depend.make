# Empty dependencies file for fig11_redy.
# This may be replaced when dependencies are built.
