file(REMOVE_RECURSE
  "../bench/fig12_aifm"
  "../bench/fig12_aifm.pdb"
  "CMakeFiles/fig12_aifm.dir/fig12_aifm.cpp.o"
  "CMakeFiles/fig12_aifm.dir/fig12_aifm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_aifm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
