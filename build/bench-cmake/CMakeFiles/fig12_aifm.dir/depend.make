# Empty dependencies file for fig12_aifm.
# This may be replaced when dependencies are built.
