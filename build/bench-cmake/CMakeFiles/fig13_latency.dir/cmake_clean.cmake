file(REMOVE_RECURSE
  "../bench/fig13_latency"
  "../bench/fig13_latency.pdb"
  "CMakeFiles/fig13_latency.dir/fig13_latency.cpp.o"
  "CMakeFiles/fig13_latency.dir/fig13_latency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
