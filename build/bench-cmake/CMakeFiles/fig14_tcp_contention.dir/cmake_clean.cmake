file(REMOVE_RECURSE
  "../bench/fig14_tcp_contention"
  "../bench/fig14_tcp_contention.pdb"
  "CMakeFiles/fig14_tcp_contention.dir/fig14_tcp_contention.cpp.o"
  "CMakeFiles/fig14_tcp_contention.dir/fig14_tcp_contention.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_tcp_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
