# Empty compiler generated dependencies file for fig14_tcp_contention.
# This may be replaced when dependencies are built.
