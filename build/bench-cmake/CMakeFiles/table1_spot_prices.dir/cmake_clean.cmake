file(REMOVE_RECURSE
  "../bench/table1_spot_prices"
  "../bench/table1_spot_prices.pdb"
  "CMakeFiles/table1_spot_prices.dir/table1_spot_prices.cpp.o"
  "CMakeFiles/table1_spot_prices.dir/table1_spot_prices.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_spot_prices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
