# Empty compiler generated dependencies file for table1_spot_prices.
# This may be replaced when dependencies are built.
