file(REMOVE_RECURSE
  "../bench/table5_resources"
  "../bench/table5_resources.pdb"
  "CMakeFiles/table5_resources.dir/table5_resources.cpp.o"
  "CMakeFiles/table5_resources.dir/table5_resources.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
