# Empty compiler generated dependencies file for table5_resources.
# This may be replaced when dependencies are built.
