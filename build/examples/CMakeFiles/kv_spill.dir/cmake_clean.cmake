file(REMOVE_RECURSE
  "CMakeFiles/kv_spill.dir/kv_spill.cpp.o"
  "CMakeFiles/kv_spill.dir/kv_spill.cpp.o.d"
  "kv_spill"
  "kv_spill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_spill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
