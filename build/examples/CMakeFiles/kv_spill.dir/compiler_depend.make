# Empty compiler generated dependencies file for kv_spill.
# This may be replaced when dependencies are built.
