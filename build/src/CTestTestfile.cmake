# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("net")
subdirs("rdma")
subdirs("core")
subdirs("p4")
subdirs("spot")
subdirs("baselines")
subdirs("faster")
subdirs("workload")
