file(REMOVE_RECURSE
  "CMakeFiles/cowbird_baselines.dir/twosided.cc.o"
  "CMakeFiles/cowbird_baselines.dir/twosided.cc.o.d"
  "libcowbird_baselines.a"
  "libcowbird_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cowbird_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
