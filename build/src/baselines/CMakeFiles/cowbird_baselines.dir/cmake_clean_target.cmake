file(REMOVE_RECURSE
  "libcowbird_baselines.a"
)
