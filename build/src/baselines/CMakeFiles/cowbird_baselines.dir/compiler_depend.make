# Empty compiler generated dependencies file for cowbird_baselines.
# This may be replaced when dependencies are built.
