file(REMOVE_RECURSE
  "CMakeFiles/cowbird_common.dir/sparse_memory.cc.o"
  "CMakeFiles/cowbird_common.dir/sparse_memory.cc.o.d"
  "CMakeFiles/cowbird_common.dir/stats.cc.o"
  "CMakeFiles/cowbird_common.dir/stats.cc.o.d"
  "libcowbird_common.a"
  "libcowbird_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cowbird_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
