file(REMOVE_RECURSE
  "libcowbird_common.a"
)
