# Empty dependencies file for cowbird_common.
# This may be replaced when dependencies are built.
