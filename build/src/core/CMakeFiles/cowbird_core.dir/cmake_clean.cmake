file(REMOVE_RECURSE
  "CMakeFiles/cowbird_core.dir/client.cc.o"
  "CMakeFiles/cowbird_core.dir/client.cc.o.d"
  "libcowbird_core.a"
  "libcowbird_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cowbird_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
