file(REMOVE_RECURSE
  "libcowbird_core.a"
)
