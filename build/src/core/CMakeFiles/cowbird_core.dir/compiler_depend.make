# Empty compiler generated dependencies file for cowbird_core.
# This may be replaced when dependencies are built.
