file(REMOVE_RECURSE
  "CMakeFiles/cowbird_faster.dir/store.cc.o"
  "CMakeFiles/cowbird_faster.dir/store.cc.o.d"
  "CMakeFiles/cowbird_faster.dir/ycsb.cc.o"
  "CMakeFiles/cowbird_faster.dir/ycsb.cc.o.d"
  "libcowbird_faster.a"
  "libcowbird_faster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cowbird_faster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
