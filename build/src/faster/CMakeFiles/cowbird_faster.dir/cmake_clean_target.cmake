file(REMOVE_RECURSE
  "libcowbird_faster.a"
)
