# Empty dependencies file for cowbird_faster.
# This may be replaced when dependencies are built.
