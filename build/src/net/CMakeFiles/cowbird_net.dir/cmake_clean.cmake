file(REMOVE_RECURSE
  "CMakeFiles/cowbird_net.dir/link.cc.o"
  "CMakeFiles/cowbird_net.dir/link.cc.o.d"
  "CMakeFiles/cowbird_net.dir/switch.cc.o"
  "CMakeFiles/cowbird_net.dir/switch.cc.o.d"
  "libcowbird_net.a"
  "libcowbird_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cowbird_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
