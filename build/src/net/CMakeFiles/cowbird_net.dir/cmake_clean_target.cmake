file(REMOVE_RECURSE
  "libcowbird_net.a"
)
