# Empty compiler generated dependencies file for cowbird_net.
# This may be replaced when dependencies are built.
