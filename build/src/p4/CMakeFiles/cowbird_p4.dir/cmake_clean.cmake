file(REMOVE_RECURSE
  "CMakeFiles/cowbird_p4.dir/control.cc.o"
  "CMakeFiles/cowbird_p4.dir/control.cc.o.d"
  "CMakeFiles/cowbird_p4.dir/engine.cc.o"
  "CMakeFiles/cowbird_p4.dir/engine.cc.o.d"
  "CMakeFiles/cowbird_p4.dir/resources.cc.o"
  "CMakeFiles/cowbird_p4.dir/resources.cc.o.d"
  "libcowbird_p4.a"
  "libcowbird_p4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cowbird_p4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
