file(REMOVE_RECURSE
  "libcowbird_p4.a"
)
