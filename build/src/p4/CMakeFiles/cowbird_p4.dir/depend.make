# Empty dependencies file for cowbird_p4.
# This may be replaced when dependencies are built.
