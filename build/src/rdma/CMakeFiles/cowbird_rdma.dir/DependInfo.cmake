
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rdma/device.cc" "src/rdma/CMakeFiles/cowbird_rdma.dir/device.cc.o" "gcc" "src/rdma/CMakeFiles/cowbird_rdma.dir/device.cc.o.d"
  "/root/repo/src/rdma/qp.cc" "src/rdma/CMakeFiles/cowbird_rdma.dir/qp.cc.o" "gcc" "src/rdma/CMakeFiles/cowbird_rdma.dir/qp.cc.o.d"
  "/root/repo/src/rdma/wire.cc" "src/rdma/CMakeFiles/cowbird_rdma.dir/wire.cc.o" "gcc" "src/rdma/CMakeFiles/cowbird_rdma.dir/wire.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cowbird_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cowbird_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cowbird_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
