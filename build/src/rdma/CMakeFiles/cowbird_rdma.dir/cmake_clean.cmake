file(REMOVE_RECURSE
  "CMakeFiles/cowbird_rdma.dir/device.cc.o"
  "CMakeFiles/cowbird_rdma.dir/device.cc.o.d"
  "CMakeFiles/cowbird_rdma.dir/qp.cc.o"
  "CMakeFiles/cowbird_rdma.dir/qp.cc.o.d"
  "CMakeFiles/cowbird_rdma.dir/wire.cc.o"
  "CMakeFiles/cowbird_rdma.dir/wire.cc.o.d"
  "libcowbird_rdma.a"
  "libcowbird_rdma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cowbird_rdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
