file(REMOVE_RECURSE
  "libcowbird_rdma.a"
)
