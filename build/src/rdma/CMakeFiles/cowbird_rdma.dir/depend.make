# Empty dependencies file for cowbird_rdma.
# This may be replaced when dependencies are built.
