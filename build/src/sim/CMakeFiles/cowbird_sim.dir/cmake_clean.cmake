file(REMOVE_RECURSE
  "CMakeFiles/cowbird_sim.dir/simulation.cc.o"
  "CMakeFiles/cowbird_sim.dir/simulation.cc.o.d"
  "libcowbird_sim.a"
  "libcowbird_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cowbird_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
