file(REMOVE_RECURSE
  "libcowbird_sim.a"
)
