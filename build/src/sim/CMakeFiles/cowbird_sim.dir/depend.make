# Empty dependencies file for cowbird_sim.
# This may be replaced when dependencies are built.
