file(REMOVE_RECURSE
  "CMakeFiles/cowbird_spot.dir/agent.cc.o"
  "CMakeFiles/cowbird_spot.dir/agent.cc.o.d"
  "libcowbird_spot.a"
  "libcowbird_spot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cowbird_spot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
