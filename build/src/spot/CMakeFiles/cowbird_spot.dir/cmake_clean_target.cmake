file(REMOVE_RECURSE
  "libcowbird_spot.a"
)
