# Empty dependencies file for cowbird_spot.
# This may be replaced when dependencies are built.
