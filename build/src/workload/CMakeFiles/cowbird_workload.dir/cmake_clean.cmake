file(REMOVE_RECURSE
  "CMakeFiles/cowbird_workload.dir/hash_workload.cc.o"
  "CMakeFiles/cowbird_workload.dir/hash_workload.cc.o.d"
  "libcowbird_workload.a"
  "libcowbird_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cowbird_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
