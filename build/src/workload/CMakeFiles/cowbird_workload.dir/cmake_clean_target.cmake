file(REMOVE_RECURSE
  "libcowbird_workload.a"
)
