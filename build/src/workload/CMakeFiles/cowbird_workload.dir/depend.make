# Empty dependencies file for cowbird_workload.
# This may be replaced when dependencies are built.
