# Empty dependencies file for faster_test.
# This may be replaced when dependencies are built.
