# Empty dependencies file for p4_control_test.
# This may be replaced when dependencies are built.
