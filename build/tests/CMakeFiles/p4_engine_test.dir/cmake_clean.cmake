file(REMOVE_RECURSE
  "CMakeFiles/p4_engine_test.dir/p4_engine_test.cc.o"
  "CMakeFiles/p4_engine_test.dir/p4_engine_test.cc.o.d"
  "p4_engine_test"
  "p4_engine_test.pdb"
  "p4_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p4_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
