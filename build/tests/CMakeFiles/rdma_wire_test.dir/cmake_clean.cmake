file(REMOVE_RECURSE
  "CMakeFiles/rdma_wire_test.dir/rdma_wire_test.cc.o"
  "CMakeFiles/rdma_wire_test.dir/rdma_wire_test.cc.o.d"
  "rdma_wire_test"
  "rdma_wire_test.pdb"
  "rdma_wire_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdma_wire_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
