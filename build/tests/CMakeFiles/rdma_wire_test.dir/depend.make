# Empty dependencies file for rdma_wire_test.
# This may be replaced when dependencies are built.
