file(REMOVE_RECURSE
  "CMakeFiles/spot_engine_test.dir/spot_engine_test.cc.o"
  "CMakeFiles/spot_engine_test.dir/spot_engine_test.cc.o.d"
  "spot_engine_test"
  "spot_engine_test.pdb"
  "spot_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spot_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
