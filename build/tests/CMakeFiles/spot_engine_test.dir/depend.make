# Empty dependencies file for spot_engine_test.
# This may be replaced when dependencies are built.
