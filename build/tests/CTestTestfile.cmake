# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/rdma_wire_test[1]_include.cmake")
include("/root/repo/build/tests/rdma_qp_test[1]_include.cmake")
include("/root/repo/build/tests/core_client_test[1]_include.cmake")
include("/root/repo/build/tests/spot_engine_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/faster_test[1]_include.cmake")
include("/root/repo/build/tests/p4_engine_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/p4_control_test[1]_include.cmake")
include("/root/repo/build/tests/engine_features_test[1]_include.cmake")
include("/root/repo/build/tests/core_extensions_test[1]_include.cmake")
