// Fault tolerance demo, two failure domains:
//
// Part 1 (Section 5.3): 1% of all RDMA packets are dropped on every link
// while a client writes and reads back 500 records through Cowbird-P4.
// Go-Back-N recovery (PSN rewind + pending-FIFO replay in the switch, plus
// host-side duplicate absorption) delivers every byte intact.
//
// Part 2 (engine decommission): a second instance is served by a fleet of
// two Cowbird-Spot agents under the same packet loss. Mid-run the
// InstanceRegistry stops agent A — exporting the instance's red-block
// progress snapshot — and the surviving agent B resumes probing from
// exactly that point. The client never notices: same API, same counters,
// every record still verifies.
//
// Run it:   ./build/examples/failure_recovery
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/client.h"
#include "offload/registry.h"
#include "p4/engine.h"
#include "spot/agent.h"
#include "spot/setup.h"
#include "workload/testbed.h"

using namespace cowbird;

namespace {

constexpr std::uint64_t kPoolBase = 0x100'0000;
constexpr std::uint64_t kSpotPoolBase = 0x200'0000;
constexpr std::uint64_t kAppBuf = 0x8000'0000;
constexpr std::uint16_t kRegion = 1;
constexpr net::NodeId kSwitchId = 100;

int parts_done = 0;

void PartDone(sim::Simulation& sim) {
  if (++parts_done == 2) sim.Halt();
}

sim::Task<void> Run(core::CowbirdClient& client, sim::SimThread& thread,
                    SparseMemory& memory, sim::Simulation& sim,
                    int& verified, int& corrupt) {
  auto& ctx = client.thread(0);
  const core::PollId poll = ctx.PollCreate();
  Rng rng(42);
  for (int i = 0; i < 500; ++i) {
    const std::uint32_t len =
        static_cast<std::uint32_t>(rng.Between(16, 1500));
    std::vector<std::uint8_t> data(len);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.Next());
    memory.Write(kAppBuf, data);

    std::optional<core::ReqId> id;
    while (!(id = co_await ctx.AsyncWrite(thread, kRegion, kAppBuf, i * 2048,
                                          len))) {
      co_await thread.Idle(Micros(5));
    }
    ctx.PollAdd(poll, *id);
    while ((co_await ctx.PollWait(thread, poll, 1, Millis(2))).empty()) {
    }

    while (!(id = co_await ctx.AsyncRead(thread, kRegion, i * 2048,
                                         kAppBuf + 4096, len))) {
      co_await thread.Idle(Micros(5));
    }
    ctx.PollAdd(poll, *id);
    while ((co_await ctx.PollWait(thread, poll, 1, Millis(2))).empty()) {
    }

    std::vector<std::uint8_t> out(len);
    memory.Read(kAppBuf + 4096, out);
    if (out == data) {
      ++verified;
    } else {
      ++corrupt;
    }
  }
  PartDone(sim);
}

// Part 2 driver: write+read-back rounds through whichever spot agent the
// registry currently assigns; halfway through, decommission agent A.
sim::Task<void> RunWithFailover(core::CowbirdClient& client,
                                sim::SimThread& thread, SparseMemory& memory,
                                sim::Simulation& sim,
                                offload::InstanceRegistry& registry,
                                offload::EngineId engine_a,
                                spot::SpotAgent& agent_a, int& verified,
                                int& corrupt, bool& migrated_ok) {
  const std::uint32_t instance_id = client.descriptor().instance_id;
  auto& ctx = client.thread(0);
  const core::PollId poll = ctx.PollCreate();
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    if (i == 100) {
      // Decommission agent A gracefully: stop probing, let in-flight work
      // drain, then migrate through the registry. Agent B's attach resumes
      // from the red-block snapshot A exported.
      agent_a.StopProbing();
      while (!agent_a.InstanceDrained(instance_id)) {
        co_await thread.Idle(Micros(10));
      }
      const auto moved = registry.StopEngine(engine_a);
      migrated_ok = moved.size() == 1 && moved[0] == instance_id;
    }
    const std::uint32_t len =
        static_cast<std::uint32_t>(rng.Between(16, 1500));
    std::vector<std::uint8_t> data(len);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.Next());
    memory.Write(kAppBuf + 0x10000, data);

    std::optional<core::ReqId> id;
    while (!(id = co_await ctx.AsyncWrite(thread, kRegion,
                                          kAppBuf + 0x10000, i * 2048,
                                          len))) {
      co_await thread.Idle(Micros(5));
    }
    ctx.PollAdd(poll, *id);
    while ((co_await ctx.PollWait(thread, poll, 1, Millis(2))).empty()) {
    }

    while (!(id = co_await ctx.AsyncRead(thread, kRegion, i * 2048,
                                         kAppBuf + 0x14000, len))) {
      co_await thread.Idle(Micros(5));
    }
    ctx.PollAdd(poll, *id);
    while ((co_await ctx.PollWait(thread, poll, 1, Millis(2))).empty()) {
    }

    std::vector<std::uint8_t> out(len);
    memory.Read(kAppBuf + 0x14000, out);
    if (out == data) {
      ++verified;
    } else {
      ++corrupt;
    }
  }
  PartDone(sim);
}

}  // namespace

int main() {
  workload::Testbed bed;
  const auto* pool_mr = bed.memory_dev.RegisterMemory(kPoolBase, MiB(16));
  const auto* spot_pool_mr =
      bed.memory_dev.RegisterMemory(kSpotPoolBase, MiB(16));

  // 1% RDMA loss on every host-facing link, both directions.
  auto rng = std::make_shared<Rng>(1234);
  auto lossy = [rng](const net::Packet& p) {
    return rdma::LooksLikeRdma(p) && rng->Bernoulli(0.01);
  };
  bed.sw.EgressLink(bed.compute_nic.switch_port()).set_drop_filter(lossy);
  bed.sw.EgressLink(bed.memory_nic.switch_port()).set_drop_filter(lossy);
  bed.sw.EgressLink(bed.spot_nic.switch_port()).set_drop_filter(lossy);

  // ---- Part 1: packet loss through Cowbird-P4 -------------------------
  core::CowbirdClient::Config cc;
  cc.layout.base = 0x10000;
  cc.layout.threads = 1;
  core::CowbirdClient client(bed.compute_dev, cc);
  client.RegisterRegion(core::RegionInfo{kRegion, workload::Testbed::kMemoryId,
                                         kPoolBase, pool_mr->rkey, MiB(16)});

  p4::CowbirdP4Engine::Config ec;
  ec.switch_node_id = kSwitchId;
  p4::CowbirdP4Engine engine(bed.sw, ec);
  auto conn = p4::ConnectP4Engine(engine, kSwitchId, bed.compute_dev,
                                  bed.memory_dev, 0x800);
  engine.AddInstance(client.descriptor(), conn);
  engine.Start();

  // ---- Part 2: engine decommission across a spot-agent fleet ---------
  core::CowbirdClient::Config sc;
  sc.layout.base = 0x400000;
  sc.layout.threads = 1;
  core::CowbirdClient spot_client(bed.compute_dev, sc);
  spot_client.RegisterRegion(
      core::RegionInfo{kRegion, workload::Testbed::kMemoryId, kSpotPoolBase,
                       spot_pool_mr->rkey, MiB(16)});

  sim::Machine spot_machine_b(bed.sim, 1);
  spot::SpotAgent::Config sa;
  sa.staging_base = 0x4000'0000;
  spot::SpotAgent::Config sb;
  sb.staging_base = 0x8000'0000;
  spot::SpotAgent agent_a(bed.spot_dev, bed.spot_machine, sa);
  spot::SpotAgent agent_b(bed.spot_dev, spot_machine_b, sb);

  offload::InstanceRegistry registry;
  auto bind = [&](spot::SpotAgent& agent, const char* name) {
    offload::EngineBinding binding;
    binding.name = name;
    binding.attach = [&](std::uint32_t id,
                         const offload::InstanceProgress* resume) {
      if (id != spot_client.descriptor().instance_id) return false;
      rdma::Device* memories[] = {&bed.memory_dev};
      auto spot_conn =
          spot::ConnectSpotEngine(bed.spot_dev, bed.compute_dev, memories);
      agent.AddInstance(spot_client.descriptor(), spot_conn.to_compute,
                        spot_conn.compute_cq, spot_conn.to_memory,
                        spot_conn.memory_cqs, resume);
      return true;
    };
    binding.detach = [&agent](std::uint32_t id) {
      auto snapshot = agent.ExportProgress(id);
      agent.RemoveInstance(id);
      return snapshot;
    };
    return binding;
  };
  const auto engine_a_id = registry.AddEngine(bind(agent_a, "spot-a"));
  registry.AddEngine(bind(agent_b, "spot-b"));
  registry.AddInstance(spot_client.descriptor().instance_id, engine_a_id);
  agent_a.Start();
  agent_b.Start();

  sim::SimThread thread(bed.compute_machine, "app");
  sim::SimThread spot_app(bed.compute_machine, "app-spot");
  int verified = 0, corrupt = 0;
  int spot_verified = 0, spot_corrupt = 0;
  bool migrated_ok = false;
  bed.sim.Spawn(Run(client, thread, bed.compute_mem, bed.sim, verified,
                    corrupt));
  bed.sim.Spawn(RunWithFailover(spot_client, spot_app, bed.compute_mem,
                                bed.sim, registry, engine_a_id, agent_a,
                                spot_verified, spot_corrupt, migrated_ok));
  bed.sim.Run();

  std::printf("Part 1 — 500 write+read-back rounds under 1%% loss (P4):\n");
  std::printf("  verified intact : %d\n", verified);
  std::printf("  corrupt         : %d\n", corrupt);
  std::printf("  GBN recoveries  : %llu (switch rewound and replayed)\n",
              static_cast<unsigned long long>(engine.recoveries()));
  std::printf("Part 2 — 200 rounds, engine A stopped at round 100 (spot):\n");
  std::printf("  verified intact : %d\n", spot_verified);
  std::printf("  corrupt         : %d\n", spot_corrupt);
  std::printf("  migrated        : %s (A ops=%llu, B ops=%llu)\n",
              migrated_ok ? "yes" : "NO",
              static_cast<unsigned long long>(agent_a.ops_completed()),
              static_cast<unsigned long long>(agent_b.ops_completed()));
  std::printf("  virtual time    : %.2f ms\n", bed.sim.Now() / 1e6);
  const bool ok = corrupt == 0 && spot_corrupt == 0 && migrated_ok &&
                  agent_b.ops_completed() > 0;
  return ok ? 0 : 1;
}
