// Fault tolerance demo (Section 5.3): 1% of all RDMA packets are dropped on
// every link while a client writes and reads back 500 records through
// Cowbird-P4. Go-Back-N recovery (PSN rewind + pending-FIFO replay in the
// switch, plus host-side duplicate absorption) delivers every byte intact.
// Run it:   ./build/examples/failure_recovery
#include <cstdio>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/client.h"
#include "p4/engine.h"
#include "workload/testbed.h"

using namespace cowbird;

namespace {

constexpr std::uint64_t kPoolBase = 0x100'0000;
constexpr std::uint64_t kAppBuf = 0x8000'0000;
constexpr std::uint16_t kRegion = 1;
constexpr net::NodeId kSwitchId = 100;

sim::Task<void> Run(core::CowbirdClient& client, sim::SimThread& thread,
                    SparseMemory& memory, sim::Simulation& sim,
                    int& verified, int& corrupt) {
  auto& ctx = client.thread(0);
  const core::PollId poll = ctx.PollCreate();
  Rng rng(42);
  for (int i = 0; i < 500; ++i) {
    const std::uint32_t len =
        static_cast<std::uint32_t>(rng.Between(16, 1500));
    std::vector<std::uint8_t> data(len);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.Next());
    memory.Write(kAppBuf, data);

    std::optional<core::ReqId> id;
    while (!(id = co_await ctx.AsyncWrite(thread, kRegion, kAppBuf, i * 2048,
                                          len))) {
      co_await thread.Idle(Micros(5));
    }
    ctx.PollAdd(poll, *id);
    while ((co_await ctx.PollWait(thread, poll, 1, Millis(2))).empty()) {
    }

    while (!(id = co_await ctx.AsyncRead(thread, kRegion, i * 2048,
                                         kAppBuf + 4096, len))) {
      co_await thread.Idle(Micros(5));
    }
    ctx.PollAdd(poll, *id);
    while ((co_await ctx.PollWait(thread, poll, 1, Millis(2))).empty()) {
    }

    std::vector<std::uint8_t> out(len);
    memory.Read(kAppBuf + 4096, out);
    if (out == data) {
      ++verified;
    } else {
      ++corrupt;
    }
  }
  sim.Halt();
}

}  // namespace

int main() {
  workload::Testbed bed;
  const auto* pool_mr = bed.memory_dev.RegisterMemory(kPoolBase, MiB(16));

  // 1% RDMA loss on every host-facing link, both directions.
  auto rng = std::make_shared<Rng>(1234);
  auto lossy = [rng](const net::Packet& p) {
    return rdma::LooksLikeRdma(p) && rng->Bernoulli(0.01);
  };
  bed.sw.EgressLink(bed.compute_nic.switch_port()).set_drop_filter(lossy);
  bed.sw.EgressLink(bed.memory_nic.switch_port()).set_drop_filter(lossy);

  core::CowbirdClient::Config cc;
  cc.layout.base = 0x10000;
  cc.layout.threads = 1;
  core::CowbirdClient client(bed.compute_dev, cc);
  client.RegisterRegion(core::RegionInfo{kRegion, workload::Testbed::kMemoryId,
                                         kPoolBase, pool_mr->rkey, MiB(16)});

  p4::CowbirdP4Engine::Config ec;
  ec.switch_node_id = kSwitchId;
  p4::CowbirdP4Engine engine(bed.sw, ec);
  auto conn = p4::ConnectP4Engine(engine, kSwitchId, bed.compute_dev,
                                  bed.memory_dev, 0x800);
  engine.AddInstance(client.descriptor(), conn.compute, conn.probe,
                     conn.memory);
  engine.Start();

  sim::SimThread thread(bed.compute_machine, "app");
  int verified = 0, corrupt = 0;
  bed.sim.Spawn(Run(client, thread, bed.compute_mem, bed.sim, verified,
                    corrupt));
  bed.sim.Run();

  std::printf("500 write+read-back rounds under 1%% packet loss:\n");
  std::printf("  verified intact : %d\n", verified);
  std::printf("  corrupt         : %d\n", corrupt);
  std::printf("  GBN recoveries  : %llu (switch rewound and replayed)\n",
              static_cast<unsigned long long>(engine.recoveries()));
  std::printf("  virtual time    : %.2f ms\n", bed.sim.Now() / 1e6);
  return corrupt == 0 ? 0 : 1;
}
