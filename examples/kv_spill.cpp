// A key-value store whose cold data lives in disaggregated memory — the
// FASTER case study of Section 7 in example form.
//
// Loads 30k records into a store whose mutable region holds only ~15% of
// them; the rest spill through the Cowbird IDevice into the memory pool.
// Then reads a mix of hot and cold keys and verifies every byte came back
// intact through the full client→engine→pool→engine→client path.
// Run it:   ./build/examples/kv_spill
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "core/client.h"
#include "faster/devices_rdma.h"
#include "faster/store.h"
#include "spot/agent.h"
#include "spot/setup.h"
#include "workload/testbed.h"

using namespace cowbird;

namespace {

constexpr std::uint64_t kPoolBase = 0x100'0000;
constexpr std::uint64_t kDest = 0x8000'0000;
constexpr std::uint16_t kRegion = 1;
constexpr std::uint64_t kRecords = 30'000;
constexpr std::uint32_t kValueLen = 64;

std::vector<std::uint8_t> ValueFor(std::uint64_t key) {
  std::vector<std::uint8_t> v(kValueLen,
                              static_cast<std::uint8_t>(key * 131 + 7));
  for (int i = 0; i < 8; ++i) v[i] = static_cast<std::uint8_t>(key >> (8 * i));
  return v;
}

sim::Task<void> Run(faster::FasterStore& store, faster::IDevice& device,
                    sim::SimThread& thread, SparseMemory& memory,
                    sim::Simulation& sim) {
  // Load.
  for (std::uint64_t key = 0; key < kRecords; ++key) {
    co_await store.Upsert(thread, device, key, ValueFor(key));
  }
  co_await device.Poll(thread);
  std::printf("loaded %llu records; %llu spill pages went to the pool; "
              "in-memory bytes: %llu\n",
              static_cast<unsigned long long>(store.size()),
              static_cast<unsigned long long>(store.spills()),
              static_cast<unsigned long long>(store.InMemoryBytes()));

  // Read a mix: recent (in-memory) and old (spilled) keys.
  Rng rng(7);
  std::uint64_t local = 0, remote = 0, bad = 0;
  int outstanding = 0;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t key = rng.Below(kRecords);
    const std::uint64_t dest = kDest + (i % 256) * 1024;
    auto status = co_await store.Read(
        thread, device, key, dest,
        [&memory, &remote, &bad, key, dest] {
          ++remote;
          if (memory.ReadValue<std::uint64_t>(dest + 16) != key) ++bad;
        });
    switch (status) {
      case faster::FasterStore::ReadStatus::kLocal:
        ++local;
        if (memory.ReadValue<std::uint64_t>(dest + 16) != key) ++bad;
        break;
      case faster::FasterStore::ReadStatus::kPending:
        ++outstanding;
        break;
      case faster::FasterStore::ReadStatus::kNotFound:
        ++bad;
        break;
    }
    if (outstanding > 24) {
      co_await device.Poll(thread);
      outstanding = 0;  // Poll drained everything completable so far
    }
  }
  // Drain the tail.
  for (int i = 0; i < 64; ++i) {
    co_await device.Poll(thread);
    co_await thread.Idle(Micros(10));
  }

  std::printf("reads: %llu from local memory, %llu through Cowbird, "
              "%llu corrupt\n",
              static_cast<unsigned long long>(local),
              static_cast<unsigned long long>(remote),
              static_cast<unsigned long long>(bad));
  std::printf("every spilled record crossed the fabric twice (spill + "
              "fetch) without the CPU posting a single verb.\n");
  sim.Halt();
}

}  // namespace

int main() {
  workload::Testbed bed;
  const auto* pool_mr = bed.memory_dev.RegisterMemory(kPoolBase, MiB(64));

  core::CowbirdClient::Config cc;
  cc.layout.base = 0x10000;
  cc.layout.threads = 1;
  core::CowbirdClient client(bed.compute_dev, cc);
  client.RegisterRegion(core::RegionInfo{kRegion, workload::Testbed::kMemoryId,
                                         kPoolBase, pool_mr->rkey, MiB(64)});

  spot::SpotAgent agent(bed.spot_dev, bed.spot_machine,
                        spot::SpotAgent::Config{});
  rdma::Device* memories[] = {&bed.memory_dev};
  auto conn = spot::ConnectSpotEngine(bed.spot_dev, bed.compute_dev, memories);
  agent.AddInstance(client.descriptor(), conn.to_compute, conn.compute_cq,
                    conn.to_memory, conn.memory_cqs);
  agent.Start();

  faster::FasterStore::Config sc;
  sc.memory_budget = 384 * 1024;  // ~15% of the 2.4 MB log
  faster::FasterStore store(bed.compute_mem, sc);
  faster::CowbirdDevice device(client.thread(0), kRegion);

  sim::SimThread thread(bed.compute_machine, "kv");
  bed.sim.Spawn(Run(store, device, thread, bed.compute_mem, bed.sim));
  bed.sim.Run();
  return 0;
}
