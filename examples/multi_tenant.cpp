// Two tenants, one programmable switch: Cowbird-P4 multiplexes instances
// with time-division round-robin probing (Section 5.4).
//
// Tenant A streams large (1 KiB) reads; tenant B issues small latency-
// sensitive reads. Both are served by the same switch pipeline via separate
// QP sets, resolved through the QPN→instance mapping.
// Run it:   ./build/examples/multi_tenant
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "core/client.h"
#include "p4/engine.h"
#include "workload/testbed.h"

using namespace cowbird;

namespace {

constexpr std::uint64_t kPoolBase = 0x100'0000;
constexpr std::uint64_t kAppBuf = 0x8000'0000;
constexpr std::uint16_t kRegion = 1;
constexpr net::NodeId kSwitchId = 100;

struct TenantStats {
  std::uint64_t ops = 0;
  Nanos latency_sum = 0;
};

sim::Task<void> Tenant(core::CowbirdClient& client, sim::SimThread& thread,
                       std::uint32_t record, const char* name,
                       TenantStats& stats) {
  auto& ctx = client.thread(0);
  const core::PollId poll = ctx.PollCreate();
  Rng rng(record);
  for (;;) {
    const Nanos begin = thread.simulation().Now();
    auto id = co_await ctx.AsyncRead(thread, kRegion,
                                     rng.Below(4096) * 2048,
                                     kAppBuf + record, record);
    if (!id) {
      co_await thread.Idle(Micros(2));
      continue;
    }
    ctx.PollAdd(poll, *id);
    while ((co_await ctx.PollWait(thread, poll, 1, Millis(1))).empty()) {
    }
    stats.latency_sum += thread.simulation().Now() - begin;
    ++stats.ops;
    (void)name;
  }
}

}  // namespace

int main() {
  workload::Testbed bed;
  const auto* pool_mr = bed.memory_dev.RegisterMemory(kPoolBase, MiB(64));

  p4::CowbirdP4Engine::Config ec;
  ec.switch_node_id = kSwitchId;
  p4::CowbirdP4Engine engine(bed.sw, ec);

  std::vector<std::unique_ptr<core::CowbirdClient>> tenants;
  for (int i = 0; i < 2; ++i) {
    core::CowbirdClient::Config cc;
    cc.layout.base = 0x10000 + static_cast<std::uint64_t>(i) * MiB(8);
    cc.layout.threads = 1;
    tenants.push_back(
        std::make_unique<core::CowbirdClient>(bed.compute_dev, cc));
    tenants.back()->RegisterRegion(
        core::RegionInfo{kRegion, workload::Testbed::kMemoryId, kPoolBase,
                         pool_mr->rkey, MiB(64)});
    auto conn = p4::ConnectP4Engine(engine, kSwitchId, bed.compute_dev,
                                    bed.memory_dev, 0x800 + i * 8);
    engine.AddInstance(tenants.back()->descriptor(), conn);
  }
  engine.Start();

  sim::SimThread thread_a(bed.compute_machine, "tenant-a");
  sim::SimThread thread_b(bed.compute_machine, "tenant-b");
  TenantStats stats_a, stats_b;
  bed.sim.Spawn(Tenant(*tenants[0], thread_a, 1024, "A", stats_a));
  bed.sim.Spawn(Tenant(*tenants[1], thread_b, 64, "B", stats_b));

  bed.sim.RunFor(Millis(3));

  std::printf("one switch pipeline, two tenants, TDM probing:\n");
  std::printf("  tenant A (1 KiB streaming): %6llu reads, avg %5.1f us\n",
              static_cast<unsigned long long>(stats_a.ops),
              stats_a.ops ? stats_a.latency_sum / 1000.0 /
                                static_cast<double>(stats_a.ops)
                          : 0.0);
  std::printf("  tenant B (64 B point gets): %6llu reads, avg %5.1f us\n",
              static_cast<unsigned long long>(stats_b.ops),
              stats_b.ops ? stats_b.latency_sum / 1000.0 /
                                static_cast<double>(stats_b.ops)
                          : 0.0);
  std::printf("switch totals: %llu probes, %llu ops, %llu recycled packets\n",
              static_cast<unsigned long long>(engine.probes_sent()),
              static_cast<unsigned long long>(engine.ops_completed()),
              static_cast<unsigned long long>(engine.packets_recycled()));
  return 0;
}
