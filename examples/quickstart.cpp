// Quickstart: the smallest complete Cowbird deployment.
//
// One compute node, one memory pool, one spot-VM offload engine, one switch.
// The application issues an async_write and an async_read of remote memory
// using nothing but local-memory operations (Table 2 API); the spot engine
// discovers them by probing the request rings over RDMA and executes the
// transfers. Run it:   ./build/examples/quickstart
#include <cstdio>
#include <string>
#include <vector>

#include "core/client.h"
#include "spot/agent.h"
#include "spot/setup.h"
#include "workload/testbed.h"

using namespace cowbird;

namespace {

constexpr std::uint64_t kPoolBase = 0x100'0000;  // pool virtual address
constexpr std::uint64_t kAppBuf = 0x8000'0000;   // app heap on compute node
constexpr std::uint16_t kRegion = 1;

sim::Task<void> Application(core::CowbirdClient& client,
                            sim::SimThread& thread, SparseMemory& memory,
                            sim::Simulation& sim) {
  auto& ctx = client.thread(0);

  // 1. Put a message in compute-node memory and write it to the pool.
  const std::string message = "cowbird says: your CPU is free";
  memory.Write(kAppBuf, std::span<const std::uint8_t>(
                            reinterpret_cast<const std::uint8_t*>(
                                message.data()),
                            message.size()));
  auto write_id = co_await ctx.AsyncWrite(
      thread, kRegion, kAppBuf, /*remote_dest_offset=*/128,
      static_cast<std::uint32_t>(message.size()));
  std::printf("[app %6lld ns] async_write issued (req id seq=%llu)\n",
              static_cast<long long>(sim.Now()),
              static_cast<unsigned long long>(write_id->seq()));

  // 2. Wait for it with the epoll-like notification group API.
  const core::PollId poll = ctx.PollCreate();
  ctx.PollAdd(poll, *write_id);
  while ((co_await ctx.PollWait(thread, poll, 1, Millis(1))).empty()) {
  }
  std::printf("[app %6lld ns] write complete (engine moved the data)\n",
              static_cast<long long>(sim.Now()));

  // 3. Read it back to a different local buffer.
  auto read_id = co_await ctx.AsyncRead(
      thread, kRegion, /*remote_src_offset=*/128, kAppBuf + 4096,
      static_cast<std::uint32_t>(message.size()));
  ctx.PollAdd(poll, *read_id);
  while ((co_await ctx.PollWait(thread, poll, 1, Millis(1))).empty()) {
  }

  std::vector<std::uint8_t> out(message.size());
  memory.Read(kAppBuf + 4096, out);
  std::printf("[app %6lld ns] read complete: \"%.*s\"\n",
              static_cast<long long>(sim.Now()),
              static_cast<int>(out.size()),
              reinterpret_cast<const char*>(out.data()));

  // 4. What did the CPU pay? Only the Cowbird client library.
  std::printf("\ncompute-node CPU spent in communication: %lld ns total\n",
              static_cast<long long>(
                  thread.TimeIn(sim::CpuCategory::kCommunication)));
  std::printf("(a single sync RDMA read would spin ~4000 ns *per access*)\n");
  sim.Halt();
}

}  // namespace

int main() {
  workload::Testbed bed;

  // Memory pool: register a region and hand out its rkey.
  const auto* pool_mr = bed.memory_dev.RegisterMemory(kPoolBase, MiB(16));

  // Compute node: client library with one application thread.
  core::CowbirdClient::Config cc;
  cc.layout.base = 0x10000;
  cc.layout.threads = 1;
  core::CowbirdClient client(bed.compute_dev, cc);
  client.RegisterRegion(core::RegionInfo{kRegion, workload::Testbed::kMemoryId,
                                         kPoolBase, pool_mr->rkey, MiB(16)});

  // Offload engine on the spot node (one core).
  spot::SpotAgent agent(bed.spot_dev, bed.spot_machine,
                        spot::SpotAgent::Config{});
  rdma::Device* memories[] = {&bed.memory_dev};
  auto conn = spot::ConnectSpotEngine(bed.spot_dev, bed.compute_dev, memories);
  agent.AddInstance(client.descriptor(), conn.to_compute, conn.compute_cq,
                    conn.to_memory, conn.memory_cqs);
  agent.Start();

  sim::SimThread app_thread(bed.compute_machine, "app");
  bed.sim.Spawn(Application(client, app_thread, bed.compute_mem, bed.sim));
  bed.sim.Run();

  std::printf("\nengine stats: %llu probes, %llu ops completed\n",
              static_cast<unsigned long long>(agent.probes_sent()),
              static_cast<unsigned long long>(agent.ops_completed()));
  return 0;
}
