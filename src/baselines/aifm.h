// AIFM model (Figure 12 comparison).
//
// AIFM [32] hides remote-memory latency with Shenango-style green threads:
// a dereference that misses locally yields the core, a runtime issues the
// remote fetch (over its TCP-on-Shenango dataplane), and the green thread is
// rescheduled when data arrives. Latency is hidden well — but every access
// still pays a nontrivial *CPU* path on the compute node (object descriptor
// management, yield/resume, dataplane work), and parts of the runtime
// serialize across threads. For small objects this caps throughput at a
// level far below NIC line rate, which is exactly what Figure 12 shows
// (Cowbird up to 71x on 8-byte reads).
//
// This is a cost model, not a reimplementation of AIFM: the comparison in
// the paper hinges on AIFM's per-access compute-node CPU cost and its
// cross-thread serialization, both of which are parameters here (documented
// in DESIGN.md as a modelled comparator).
#pragma once

#include "common/units.h"
#include "rdma/params.h"
#include "sim/sync.h"
#include "sim/thread.h"

namespace cowbird::baselines {

class AifmModel {
 public:
  struct Config {
    // CPU on the app thread per remote dereference: descriptor check, green
    // thread yield + resume, request marshalling, swap-in bookkeeping.
    Nanos per_access_cpu = 1600;
    // Runtime-shared dataplane section (serializes across threads).
    Nanos serialized_cpu = 350;
    // Per-byte swap-in copy cost.
    double copy_ns_per_byte = 0.03;
  };

  AifmModel(sim::Simulation& sim, Config config)
      : config_(config), dataplane_lock_(sim, 1) {}

  // One remote object read of `length` bytes. Green threads hide the fabric
  // round-trip (the calling SimThread is never idle-blocked on latency);
  // the charged CPU is the bottleneck, as in AIFM's own small-object runs.
  sim::Task<void> RemoteGet(sim::SimThread& thread, std::uint32_t length) {
    co_await thread.Work(config_.per_access_cpu,
                         sim::CpuCategory::kCommunication);
    co_await dataplane_lock_.Acquire();
    co_await thread.Work(config_.serialized_cpu,
                         sim::CpuCategory::kCommunication);
    dataplane_lock_.Release();
    const auto copy = static_cast<Nanos>(config_.copy_ns_per_byte *
                                         static_cast<double>(length));
    if (copy > 0) {
      co_await thread.Work(copy, sim::CpuCategory::kCommunication);
    }
  }

 private:
  Config config_;
  sim::Semaphore dataplane_lock_;
};

}  // namespace cowbird::baselines
