// One-sided RDMA baselines (Figures 1, 8, 9, 13).
//
// Sync: post a read/write, spin on the CQ until it completes — one verb pair
// per access, the slowest and simplest path.
// Async: keep up to `window` operations in flight per thread, posting and
// polling in a pipeline (batch size 100 in the paper's evaluation); hides
// fabric latency but still pays the full verb CPU cost per operation.
#pragma once

#include <cstdint>

#include "rdma/device.h"
#include "rdma/params.h"
#include "rdma/qp.h"
#include "rdma/verbs.h"
#include "sim/thread.h"

namespace cowbird::baselines {

struct OneSidedEndpoint {
  rdma::QueuePair* qp = nullptr;
  rdma::CompletionQueue* cq = nullptr;
  std::uint32_t rkey = 0;  // pool MR
};

inline sim::Task<void> SyncRead(sim::SimThread& thread,
                                const rdma::CostModel& costs,
                                OneSidedEndpoint& ep,
                                std::uint64_t remote_addr,
                                std::uint64_t local_dest,
                                std::uint32_t length) {
  co_await rdma::PostSendVerb(thread, costs, *ep.qp,
                              rdma::SendWqe{rdma::WqeOp::kRead, 0, local_dest,
                                            remote_addr, ep.rkey, length,
                                            true});
  (void)co_await rdma::BusyPollCqVerb(thread, costs, *ep.cq);
}

inline sim::Task<void> SyncWrite(sim::SimThread& thread,
                                 const rdma::CostModel& costs,
                                 OneSidedEndpoint& ep,
                                 std::uint64_t local_src,
                                 std::uint64_t remote_addr,
                                 std::uint32_t length) {
  co_await rdma::PostSendVerb(thread, costs, *ep.qp,
                              rdma::SendWqe{rdma::WqeOp::kWrite, 0, local_src,
                                            remote_addr, ep.rkey, length,
                                            true});
  (void)co_await rdma::BusyPollCqVerb(thread, costs, *ep.cq);
}

// Asynchronous pipeline over one endpoint. The caller issues operations
// (each pays the post cost immediately) and harvests completions (each
// check pays a poll). `outstanding()` drives window management.
class AsyncPipeline {
 public:
  AsyncPipeline(OneSidedEndpoint ep, rdma::CostModel costs, int window)
      : ep_(ep), costs_(costs), window_(window) {}

  int window() const { return window_; }
  int outstanding() const { return outstanding_; }
  bool CanIssue() const { return outstanding_ < window_; }

  sim::Task<void> IssueRead(sim::SimThread& thread, std::uint64_t remote_addr,
                            std::uint64_t local_dest, std::uint32_t length,
                            std::uint64_t wr_id = 0) {
    ++outstanding_;
    co_await rdma::PostSendVerb(
        thread, costs_, *ep_.qp,
        rdma::SendWqe{rdma::WqeOp::kRead, wr_id, local_dest, remote_addr,
                      ep_.rkey, length, true});
  }

  sim::Task<void> IssueWrite(sim::SimThread& thread, std::uint64_t local_src,
                             std::uint64_t remote_addr, std::uint32_t length,
                             std::uint64_t wr_id = 0) {
    ++outstanding_;
    co_await rdma::PostSendVerb(
        thread, costs_, *ep_.qp,
        rdma::SendWqe{rdma::WqeOp::kWrite, wr_id, local_src, remote_addr,
                      ep_.rkey, length, true});
  }

  // One poll check; returns the completion if any.
  sim::Task<std::optional<rdma::Cqe>> Poll(sim::SimThread& thread) {
    auto cqe = co_await rdma::PollCqVerb(thread, costs_, *ep_.cq);
    if (cqe.has_value()) --outstanding_;
    co_return cqe;
  }

 private:
  OneSidedEndpoint ep_;
  rdma::CostModel costs_;
  int window_;
  int outstanding_ = 0;
};

}  // namespace cowbird::baselines
