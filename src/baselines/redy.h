// Redy model (Figure 11 comparison).
//
// Redy [47] reaches high RDMA throughput by batching requests on dedicated
// I/O threads that are *pinned to compute-node cores* and spin for work.
// Structurally: each application thread hands requests to a companion I/O
// thread over a shared queue; the I/O thread batches them into asynchronous
// one-sided verbs and completes them back. The verbs CPU cost therefore
// moves off the application thread — but onto another core of the SAME
// machine. That is the property Figure 11 isolates: past ~half the cores,
// Redy's I/O threads and the application fight for CPUs, while Cowbird's
// engine lives on a different box entirely.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "baselines/onesided.h"
#include "rdma/params.h"
#include "sim/sync.h"
#include "sim/thread.h"

namespace cowbird::baselines {

class RedyEngine {
 public:
  struct Config {
    int window = 100;           // async verbs in flight per I/O thread
    Nanos enqueue_cost = 60;    // app-side cost to hand off one request
    rdma::CostModel costs;
  };

  struct Request {
    bool is_read = true;
    std::uint64_t remote_addr = 0;
    std::uint64_t local_addr = 0;
    std::uint32_t length = 0;
    std::function<void()> done;  // invoked in engine context
  };

  // One I/O thread per endpoint; each permanently occupies a compute core
  // (pinned + spinning).
  RedyEngine(sim::Machine& compute_machine, Config config)
      : machine_(&compute_machine), config_(config) {}

  // Adds an I/O thread bound to `ep` and returns its queue index.
  int AddIoThread(OneSidedEndpoint ep) {
    auto worker = std::make_unique<Worker>(machine_->simulation(), *machine_,
                                           ep, config_);
    machine_->AddPinnedLoad(1);  // the core burns whether or not work exists
    workers_.push_back(std::move(worker));
    workers_.back()->Start();
    return static_cast<int>(workers_.size()) - 1;
  }

  // Application-side submit: a queue hand-off, charged to the app thread.
  sim::Task<void> Submit(sim::SimThread& app_thread, int io_index,
                         Request request) {
    co_await app_thread.Work(config_.enqueue_cost,
                             sim::CpuCategory::kCommunication);
    Worker& worker = *workers_[io_index];
    worker.queue.push_back(std::move(request));
    worker.wake.Send(true);
  }

  std::uint64_t ops_completed() const {
    std::uint64_t total = 0;
    for (const auto& w : workers_) total += w->completed;
    return total;
  }

 private:
  struct Worker {
    Worker(sim::Simulation& sim, sim::Machine& machine, OneSidedEndpoint ep,
           Config config)
        : wake(sim),
          thread(machine, "redy-io"),
          pipeline(ep, config.costs, config.window),
          endpoint(ep) {}

    void Start() {
      endpoint.cq->SetCompletionCallback([this] { wake.Send(true); });
      thread.simulation().Spawn(Loop());
    }

    sim::Task<void> Loop() {
      std::deque<Request> inflight;
      for (;;) {
        // Drain submissions while the window allows.
        bool progressed = false;
        while (pipeline.CanIssue() && !queue.empty()) {
          Request request = std::move(queue.front());
          queue.pop_front();
          if (request.is_read) {
            co_await pipeline.IssueRead(thread, request.remote_addr,
                                        request.local_addr, request.length);
          } else {
            co_await pipeline.IssueWrite(thread, request.local_addr,
                                         request.remote_addr,
                                         request.length);
          }
          inflight.push_back(std::move(request));
          progressed = true;
        }
        // Harvest completions (RC: in order).
        for (;;) {
          auto cqe = co_await pipeline.Poll(thread);
          if (!cqe.has_value()) break;
          COWBIRD_CHECK(!inflight.empty());
          Request done = std::move(inflight.front());
          inflight.pop_front();
          ++completed;
          if (done.done) done.done();
          progressed = true;
        }
        if (!progressed) {
          // Nothing to do: sleep until a submission or a completion wakes
          // us. Wakes are level-triggered (a stale wake just re-scans), so
          // a submission racing with this check cannot be lost. The pinned
          // core burns regardless (AddPinnedLoad models the spin).
          (void)co_await wake.Receive();
        }
      }
    }

    std::deque<Request> queue;
    sim::Channel<bool> wake;
    sim::SimThread thread;
    AsyncPipeline pipeline;
    OneSidedEndpoint endpoint;
    std::uint64_t completed = 0;
  };

  sim::Machine* machine_;
  Config config_;
  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace cowbird::baselines
