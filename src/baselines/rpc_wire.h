// Request/response format for the two-sided RDMA baseline.
//
// The classic disaggregation RPC (Section 1): the client SENDs a request
// descriptor; a server thread on the memory pool receives it, performs the
// memory access, and SENDs the payload back. Every byte still crosses the
// same fabric — the difference from Cowbird is *who* spends CPU.
#pragma once

#include <cstdint>
#include <span>

#include "common/check.h"
#include "net/bytes.h"

namespace cowbird::baselines {

enum class RpcOp : std::uint8_t { kRead = 1, kWrite = 2 };

struct RpcRequest {
  RpcOp op = RpcOp::kRead;
  std::uint64_t remote_addr = 0;
  std::uint32_t length = 0;
  std::uint64_t client_cookie = 0;  // echoed in the response

  static constexpr std::size_t kHeaderBytes = 21;

  void SerializeHeader(std::span<std::uint8_t> buf) const {
    COWBIRD_DCHECK(buf.size() >= kHeaderBytes);
    net::PutU8(buf, 0, static_cast<std::uint8_t>(op));
    net::PutU64(buf, 1, remote_addr);
    net::PutU32(buf, 9, length);
    net::PutU64(buf, 13, client_cookie);
  }
  static RpcRequest ParseHeader(std::span<const std::uint8_t> buf) {
    COWBIRD_DCHECK(buf.size() >= kHeaderBytes);
    RpcRequest r;
    r.op = static_cast<RpcOp>(net::GetU8(buf, 0));
    r.remote_addr = net::GetU64(buf, 1);
    r.length = net::GetU32(buf, 9);
    r.client_cookie = net::GetU64(buf, 13);
    return r;
  }
};

struct RpcResponse {
  std::uint64_t client_cookie = 0;
  std::uint32_t payload_length = 0;

  static constexpr std::size_t kHeaderBytes = 12;

  void SerializeHeader(std::span<std::uint8_t> buf) const {
    COWBIRD_DCHECK(buf.size() >= kHeaderBytes);
    net::PutU64(buf, 0, client_cookie);
    net::PutU32(buf, 8, payload_length);
  }
  static RpcResponse ParseHeader(std::span<const std::uint8_t> buf) {
    COWBIRD_DCHECK(buf.size() >= kHeaderBytes);
    RpcResponse r;
    r.client_cookie = net::GetU64(buf, 0);
    r.payload_length = net::GetU32(buf, 8);
    return r;
  }
};

}  // namespace cowbird::baselines
