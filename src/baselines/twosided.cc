#include "baselines/twosided.h"

#include <vector>

#include "common/check.h"

namespace cowbird::baselines {

void TwoSidedServer::Serve(rdma::QueuePair* qp,
                           rdma::CompletionQueue* recv_cq, int conn_index) {
  auto arrivals =
      std::make_shared<sim::Channel<rdma::Cqe>>(device_->simulation());
  recv_cq->SetCompletionCallback([recv_cq, arrivals] {
    while (auto cqe = recv_cq->Pop()) arrivals->Send(*cqe);
  });
  // Pre-post the receive window.
  const std::uint64_t base =
      buffers_.recv_base + static_cast<std::uint64_t>(conn_index) *
                               buffers_.slot_bytes * buffers_.slots;
  for (int i = 0; i < buffers_.slots; ++i) {
    qp->PostRecv(rdma::RecvWqe{static_cast<std::uint64_t>(i),
                               base + static_cast<std::uint64_t>(i) *
                                          buffers_.slot_bytes,
                               buffers_.slot_bytes});
  }
  device_->simulation().Spawn(ServeLoop(
      qp, arrivals, std::make_shared<sim::SimThread>(*machine_, "rpc-server"),
      conn_index));
}

sim::Task<void> TwoSidedServer::ServeLoop(
    rdma::QueuePair* qp, std::shared_ptr<sim::Channel<rdma::Cqe>> arrivals,
    std::shared_ptr<sim::SimThread> server_thread, int conn_index) {
  auto& mem = device_->memory();
  const std::uint64_t recv_base =
      buffers_.recv_base + static_cast<std::uint64_t>(conn_index) *
                               buffers_.slot_bytes * buffers_.slots;
  const std::uint64_t send_base =
      buffers_.send_base + static_cast<std::uint64_t>(conn_index) *
                               buffers_.slot_bytes * buffers_.slots;
  int send_slot = 0;
  for (;;) {
    const rdma::Cqe cqe = co_await arrivals->Receive();
    COWBIRD_CHECK(cqe.opcode == rdma::CqeOpcode::kRecv);
    // Server-side CPU (memory-pool cores, not the compute node's): poll the
    // recv CQ, process, post the response.
    co_await server_thread->Work(costs_.PollTotal(),
                                 sim::CpuCategory::kCommunication);
    const std::uint64_t slot_addr =
        recv_base + cqe.wr_id * buffers_.slot_bytes;
    std::vector<std::uint8_t> header(RpcRequest::kHeaderBytes);
    mem.Read(slot_addr, header);
    const RpcRequest request = RpcRequest::ParseHeader(header);

    const std::uint64_t out_addr =
        send_base + static_cast<std::uint64_t>(send_slot) *
                        buffers_.slot_bytes;
    send_slot = (send_slot + 1) % buffers_.slots;
    RpcResponse response;
    response.client_cookie = request.client_cookie;

    if (request.op == RpcOp::kRead) {
      // Copy requested bytes after the response header.
      response.payload_length = request.length;
      std::vector<std::uint8_t> payload(request.length);
      mem.Read(request.remote_addr, payload);
      std::vector<std::uint8_t> hdr(RpcResponse::kHeaderBytes);
      response.SerializeHeader(hdr);
      mem.Write(out_addr, hdr);
      mem.Write(out_addr + RpcResponse::kHeaderBytes, payload);
    } else {
      // Payload follows the request header; apply it.
      std::vector<std::uint8_t> payload(request.length);
      mem.Read(slot_addr + RpcRequest::kHeaderBytes, payload);
      mem.Write(request.remote_addr, payload);
      response.payload_length = 0;
      std::vector<std::uint8_t> hdr(RpcResponse::kHeaderBytes);
      response.SerializeHeader(hdr);
      mem.Write(out_addr, hdr);
    }

    // Recycle the receive slot, then answer.
    co_await server_thread->Work(
        costs_.CopyCost(request.length) + costs_.PostTotal(),
        sim::CpuCategory::kCommunication);
    qp->PostRecv(rdma::RecvWqe{cqe.wr_id, slot_addr, buffers_.slot_bytes});
    qp->PostSend(rdma::SendWqe{
        rdma::WqeOp::kSend, /*wr_id=*/0, out_addr, 0, 0,
        static_cast<std::uint32_t>(RpcResponse::kHeaderBytes +
                                   response.payload_length),
        /*signaled=*/false});
  }
}

TwoSidedClient::TwoSidedClient(rdma::Device& device, rdma::QueuePair* qp,
                               rdma::CompletionQueue* recv_cq,
                               rdma::CostModel costs, int conn_index,
                               Buffers buffers)
    : device_(&device),
      qp_(qp),
      recv_cq_(recv_cq),
      costs_(costs),
      buffers_(buffers),
      recv_addr_(buffers.recv_base +
                 static_cast<std::uint64_t>(conn_index) * buffers.slot_bytes *
                     buffers.slots),
      send_addr_(buffers.send_base +
                 static_cast<std::uint64_t>(conn_index) * buffers.slot_bytes *
                     buffers.slots) {
  for (int i = 0; i < buffers_.slots; ++i) {
    qp_->PostRecv(rdma::RecvWqe{static_cast<std::uint64_t>(i),
                                recv_addr_ + static_cast<std::uint64_t>(i) *
                                                 buffers_.slot_bytes,
                                buffers_.slot_bytes});
  }
}

sim::Task<void> TwoSidedClient::Read(sim::SimThread& thread,
                                     std::uint64_t remote_addr,
                                     std::uint64_t local_dest,
                                     std::uint32_t length) {
  co_await Call(thread, RpcOp::kRead, remote_addr, local_dest, length);
}

sim::Task<void> TwoSidedClient::Write(sim::SimThread& thread,
                                      std::uint64_t local_src,
                                      std::uint64_t remote_addr,
                                      std::uint32_t length) {
  co_await Call(thread, RpcOp::kWrite, remote_addr, local_src, length);
}

sim::Task<void> TwoSidedClient::Call(sim::SimThread& thread, RpcOp op,
                                     std::uint64_t remote_addr,
                                     std::uint64_t local_addr,
                                     std::uint32_t length) {
  auto& mem = device_->memory();
  RpcRequest request;
  request.op = op;
  request.remote_addr = remote_addr;
  request.length = length;
  request.client_cookie = next_cookie_++;

  std::vector<std::uint8_t> hdr(RpcRequest::kHeaderBytes);
  request.SerializeHeader(hdr);
  mem.Write(send_addr_, hdr);
  std::uint32_t send_len = RpcRequest::kHeaderBytes;
  if (op == RpcOp::kWrite) {
    std::vector<std::uint8_t> payload(length);
    mem.Read(local_addr, payload);
    mem.Write(send_addr_ + RpcRequest::kHeaderBytes, payload);
    co_await thread.Work(costs_.CopyCost(length),
                         sim::CpuCategory::kCommunication);
    send_len += length;
  }

  co_await rdma::PostSendVerb(thread, costs_, *qp_,
                              rdma::SendWqe{rdma::WqeOp::kSend, 0,
                                            send_addr_, 0, 0, send_len,
                                            /*signaled=*/false});
  // Spin on the recv CQ for the response (the synchronous path).
  const rdma::Cqe cqe = co_await rdma::BusyPollCqVerb(thread, costs_,
                                                      *recv_cq_);
  COWBIRD_CHECK(cqe.opcode == rdma::CqeOpcode::kRecv);
  const std::uint64_t slot_addr = recv_addr_ + cqe.wr_id * buffers_.slot_bytes;
  std::vector<std::uint8_t> rhdr(RpcResponse::kHeaderBytes);
  mem.Read(slot_addr, rhdr);
  const RpcResponse response = RpcResponse::ParseHeader(rhdr);
  COWBIRD_CHECK(response.client_cookie == request.client_cookie);
  if (op == RpcOp::kRead) {
    std::vector<std::uint8_t> payload(response.payload_length);
    mem.Read(slot_addr + RpcResponse::kHeaderBytes, payload);
    mem.Write(local_addr, payload);
    co_await thread.Work(costs_.CopyCost(response.payload_length),
                         sim::CpuCategory::kCommunication);
  }
  // Recycle the receive slot.
  qp_->PostRecv(rdma::RecvWqe{cqe.wr_id, slot_addr, buffers_.slot_bytes});
}

}  // namespace cowbird::baselines
