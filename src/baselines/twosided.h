// Two-sided RDMA baseline: SEND/RECV RPC to a server thread on the memory
// pool. Used by the Figure 1/8 "Two-sided RDMA (sync)" series.
#pragma once

#include <cstdint>
#include <memory>

#include "baselines/rpc_wire.h"
#include "rdma/device.h"
#include "rdma/params.h"
#include "rdma/qp.h"
#include "rdma/verbs.h"
#include "sim/sync.h"
#include "sim/thread.h"

namespace cowbird::baselines {

// Server side: one coroutine per connection, event-driven on the recv CQ.
// (The real server busy-polls; we do not account memory-pool CPU, so the
// event-driven form is equivalent and keeps the event queue bounded.)
struct ServerBuffers {
  std::uint64_t recv_base = 0x7000'0000;
  std::uint64_t send_base = 0x7100'0000;
  std::uint32_t slot_bytes = 8192;
  int slots = 8;
};

struct ClientBuffers {
  std::uint64_t recv_base = 0x7200'0000;
  std::uint64_t send_base = 0x7300'0000;
  std::uint32_t slot_bytes = 8192;
  int slots = 4;
};

class TwoSidedServer {
 public:
  using Buffers = ServerBuffers;

  TwoSidedServer(rdma::Device& device, sim::Machine& machine,
                 rdma::CostModel costs, Buffers buffers = Buffers())
      : device_(&device), machine_(&machine), costs_(costs),
        buffers_(buffers) {}

  // Starts serving a connected QP. `conn_index` selects a disjoint buffer
  // range so multiple connections can be served concurrently.
  void Serve(rdma::QueuePair* qp, rdma::CompletionQueue* recv_cq,
             int conn_index);

 private:
  sim::Task<void> ServeLoop(rdma::QueuePair* qp,
                            std::shared_ptr<sim::Channel<rdma::Cqe>> arrivals,
                            std::shared_ptr<sim::SimThread> server_thread,
                            int conn_index);

  rdma::Device* device_;
  sim::Machine* machine_;
  rdma::CostModel costs_;
  Buffers buffers_;
};

// Client side: synchronous RPC — post the request (unsignaled SEND), spin on
// the recv CQ, copy the payload out. All of it charged to the calling
// compute-node thread; this is the 80%+ communication ratio of Figure 10.
class TwoSidedClient {
 public:
  using Buffers = ClientBuffers;

  TwoSidedClient(rdma::Device& device, rdma::QueuePair* qp,
                 rdma::CompletionQueue* recv_cq, rdma::CostModel costs,
                 int conn_index, Buffers buffers = Buffers());

  // Synchronous read of `length` bytes at `remote_addr` into `local_dest`.
  sim::Task<void> Read(sim::SimThread& thread, std::uint64_t remote_addr,
                       std::uint64_t local_dest, std::uint32_t length);

  // Synchronous write.
  sim::Task<void> Write(sim::SimThread& thread, std::uint64_t local_src,
                        std::uint64_t remote_addr, std::uint32_t length);

 private:
  sim::Task<void> Call(sim::SimThread& thread, RpcOp op,
                       std::uint64_t remote_addr, std::uint64_t local_addr,
                       std::uint32_t length);

  rdma::Device* device_;
  rdma::QueuePair* qp_;
  rdma::CompletionQueue* recv_cq_;
  rdma::CostModel costs_;
  Buffers buffers_;
  std::uint64_t recv_addr_;
  std::uint64_t send_addr_;
  std::uint64_t next_cookie_ = 1;
};

}  // namespace cowbird::baselines
