#include "chaos/fault_injector.h"

#include "rdma/wire.h"

namespace cowbird::chaos {

void FaultInjector::Attach(net::Link& link) {
  links_.push_back(&link);
  link.set_fault_filter(
      [this](const net::Packet& packet) { return Decide(packet); });
}

net::FaultAction FaultInjector::Decide(const net::Packet& packet) {
  net::FaultAction action;
  if (!rdma::LooksLikeRdma(packet)) return action;

  // Inside a partition window everything drops — counted as a decided
  // drop so the audit stays exact.
  const Nanos now = sim_->Now();
  for (const auto& window : plan_.partitions) {
    if (now >= window.start && now < window.end) {
      action.drop = true;
      ++decided_dropped_;
      return action;
    }
  }

  // One uniform draw, partitioned by the (additive) rates: at most one
  // fault per packet, each with exactly its configured probability.
  const double u = rng_.NextDouble();
  double edge = plan_.drop_rate;
  if (u < edge) {
    action.drop = true;
    ++decided_dropped_;
    return action;
  }
  edge += plan_.duplicate_rate;
  if (u < edge) {
    action.duplicate = static_cast<int>(
        rng_.Between(1, static_cast<std::uint64_t>(plan_.max_duplicates)));
    decided_duplicated_ += static_cast<std::uint64_t>(action.duplicate);
    return action;
  }
  edge += plan_.reorder_rate;
  if (u < edge) {
    action.reorder = true;
    action.delay = plan_.reorder_delay;
    ++decided_reordered_;
    return action;
  }
  edge += plan_.delay_rate;
  if (u < edge) {
    action.delay = static_cast<Nanos>(
        rng_.Between(static_cast<std::uint64_t>(plan_.delay_min),
                     static_cast<std::uint64_t>(plan_.delay_max)));
    ++decided_delayed_;
    return action;
  }
  return action;
}

bool FaultInjector::CountersExact() const {
  std::uint64_t dropped = 0, duplicated = 0, reordered = 0, delayed = 0;
  for (const net::Link* link : links_) {
    dropped += link->faults_dropped();
    duplicated += link->faults_duplicated();
    reordered += link->faults_reordered();
    delayed += link->faults_delayed();
  }
  return dropped == decided_dropped_ && duplicated == decided_duplicated_ &&
         reordered == decided_reordered_ && delayed == decided_delayed_;
}

}  // namespace cowbird::chaos
