#include "chaos/fault_injector.h"

#include "rdma/wire.h"

namespace cowbird::chaos {

void FaultInjector::Attach(net::Link& link) {
  auto state = std::make_unique<LinkState>();
  state->link = &link;
  state->clock = &link.destination();
  if (split_streams_) {
    state->rng = std::make_unique<Rng>(
        seed_ ^ 0xFA017EC7ull ^
        (0x9E3779B97F4A7C15ull *
         static_cast<std::uint64_t>(links_.size() + 1)));
  }
  LinkState* raw = state.get();
  link.set_fault_filter(
      [this, raw](const net::Packet& packet) { return Decide(*raw, packet); });
  links_.push_back(std::move(state));
}

net::FaultAction FaultInjector::Decide(LinkState& state,
                                       const net::Packet& packet) {
  net::FaultAction action;
  if (!rdma::LooksLikeRdma(packet)) return action;

  // Inside a partition window everything drops — counted as a decided
  // drop so the audit stays exact. The clock is the destination domain's:
  // that is the thread this filter runs on.
  const Nanos now = state.clock->Now();
  for (const auto& window : plan_.partitions) {
    if (now >= window.start && now < window.end) {
      action.drop = true;
      ++state.dropped;
      return action;
    }
  }

  // One uniform draw, partitioned by the (additive) rates: at most one
  // fault per packet, each with exactly its configured probability.
  Rng& rng = state.rng != nullptr ? *state.rng : rng_;
  const double u = rng.NextDouble();
  double edge = plan_.drop_rate;
  if (u < edge) {
    action.drop = true;
    ++state.dropped;
    return action;
  }
  edge += plan_.duplicate_rate;
  if (u < edge) {
    action.duplicate = static_cast<int>(
        rng.Between(1, static_cast<std::uint64_t>(plan_.max_duplicates)));
    state.duplicated += static_cast<std::uint64_t>(action.duplicate);
    return action;
  }
  edge += plan_.reorder_rate;
  if (u < edge) {
    action.reorder = true;
    action.delay = plan_.reorder_delay;
    ++state.reordered;
    return action;
  }
  edge += plan_.delay_rate;
  if (u < edge) {
    action.delay = static_cast<Nanos>(
        rng.Between(static_cast<std::uint64_t>(plan_.delay_min),
                    static_cast<std::uint64_t>(plan_.delay_max)));
    ++state.delayed;
    return action;
  }
  return action;
}

std::uint64_t FaultInjector::decided_dropped() const {
  std::uint64_t total = 0;
  for (const auto& state : links_) total += state->dropped;
  return total;
}

std::uint64_t FaultInjector::decided_duplicated() const {
  std::uint64_t total = 0;
  for (const auto& state : links_) total += state->duplicated;
  return total;
}

std::uint64_t FaultInjector::decided_reordered() const {
  std::uint64_t total = 0;
  for (const auto& state : links_) total += state->reordered;
  return total;
}

std::uint64_t FaultInjector::decided_delayed() const {
  std::uint64_t total = 0;
  for (const auto& state : links_) total += state->delayed;
  return total;
}

bool FaultInjector::CountersExact() const {
  std::uint64_t dropped = 0, duplicated = 0, reordered = 0, delayed = 0;
  for (const auto& state : links_) {
    dropped += state->link->faults_dropped();
    duplicated += state->link->faults_duplicated();
    reordered += state->link->faults_reordered();
    delayed += state->link->faults_delayed();
  }
  return dropped == decided_dropped() &&
         duplicated == decided_duplicated() &&
         reordered == decided_reordered() && delayed == decided_delayed();
}

}  // namespace cowbird::chaos
