// Applies a FaultPlan to fabric links, with exact decision accounting.
//
// One injector installs a fault filter on every attached link. Faults only
// target RDMA packets (LooksLikeRdma) — chaos in the transport is the
// point; mangling non-RDMA control traffic the sim does not retransmit
// would just wedge the run. Every decision the injector makes is counted,
// and the attached links count every fault they actually execute, so a run
// can assert the two sides agree exactly (no fault is silently
// double-applied or lost).
//
// The filter runs where net::Link::Deliver runs: on the link's destination
// domain. Serial runs share one seeded RNG across links (the golden-pinned
// decision stream); split-domain runs give every link its own stream and
// its own counters, so nothing in the filter path is shared between
// domains.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "chaos/fault_plan.h"
#include "common/check.h"
#include "common/rng.h"
#include "net/link.h"
#include "sim/simulation.h"

namespace cowbird::chaos {

class FaultInjector {
 public:
  FaultInjector(sim::Simulation& sim, FaultPlan plan, std::uint64_t seed)
      : sim_(&sim),
        plan_(std::move(plan)),
        seed_(seed),
        rng_(seed ^ 0xFA017EC7ull) {}

  // Split-domain runs must call this (with true) before any Attach: filters
  // on links with different destination domains run on different threads,
  // so the serial mode's single shared stream would turn the draw order
  // into an inter-domain race. Each link instead draws from a private
  // stream derived from the seed and its attach index. Serial runs keep the
  // shared stream, leaving the golden-pinned decision sequence untouched.
  void set_split_streams(bool split) {
    COWBIRD_CHECK(links_.empty());
    split_streams_ = split;
  }

  // Installs this injector's fault filter on the link. The link must
  // outlive the injector's use and have its destination wired (ConnectTo /
  // SetDestination) first; one injector can drive many links.
  void Attach(net::Link& link);

  // Decisions made (what the plan asked for), summed over links...
  std::uint64_t decided_dropped() const;
  std::uint64_t decided_duplicated() const;  // sum of extra copies requested
  std::uint64_t decided_reordered() const;
  std::uint64_t decided_delayed() const;
  std::uint64_t decided_total() const {
    return decided_dropped() + decided_duplicated() + decided_reordered() +
           decided_delayed();
  }

  // ...must match what the links executed, bucket by bucket.
  bool CountersExact() const;

 private:
  // Per-attached-link state: the filter's clock is the destination domain's
  // (where Deliver runs), and decisions are counted link-locally so the
  // accessors can sum them after the run without any cross-domain sharing.
  struct LinkState {
    net::Link* link = nullptr;
    sim::Simulation* clock = nullptr;
    std::unique_ptr<Rng> rng;  // null → the shared serial stream
    std::uint64_t dropped = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t reordered = 0;
    std::uint64_t delayed = 0;
  };

  net::FaultAction Decide(LinkState& state, const net::Packet& packet);

  sim::Simulation* sim_;
  FaultPlan plan_;
  std::uint64_t seed_ = 0;
  Rng rng_;
  bool split_streams_ = false;
  std::vector<std::unique_ptr<LinkState>> links_;
};

}  // namespace cowbird::chaos
