// Applies a FaultPlan to fabric links, with exact decision accounting.
//
// One injector owns one seeded RNG and installs a fault filter on every
// attached link. Faults only target RDMA packets (LooksLikeRdma) — chaos in
// the transport is the point; mangling non-RDMA control traffic the sim
// does not retransmit would just wedge the run. Every decision the injector
// makes is counted, and the attached links count every fault they actually
// execute, so a run can assert the two sides agree exactly (no fault is
// silently double-applied or lost).
#pragma once

#include <cstdint>
#include <vector>

#include "chaos/fault_plan.h"
#include "common/rng.h"
#include "net/link.h"
#include "sim/simulation.h"

namespace cowbird::chaos {

class FaultInjector {
 public:
  FaultInjector(sim::Simulation& sim, FaultPlan plan, std::uint64_t seed)
      : sim_(&sim), plan_(std::move(plan)), rng_(seed ^ 0xFA017EC7ull) {}

  // Installs this injector's fault filter on the link. The link must
  // outlive the injector's use; one injector can drive many links (the
  // filter decisions stay globally ordered by delivery time, which is what
  // keeps a run deterministic).
  void Attach(net::Link& link);

  // Decisions made (what the plan asked for)...
  std::uint64_t decided_dropped() const { return decided_dropped_; }
  std::uint64_t decided_duplicated() const { return decided_duplicated_; }
  std::uint64_t decided_reordered() const { return decided_reordered_; }
  std::uint64_t decided_delayed() const { return decided_delayed_; }
  std::uint64_t decided_total() const {
    return decided_dropped_ + decided_duplicated_ + decided_reordered_ +
           decided_delayed_;
  }

  // ...must match what the links executed, bucket by bucket.
  bool CountersExact() const;

 private:
  net::FaultAction Decide(const net::Packet& packet);

  sim::Simulation* sim_;
  FaultPlan plan_;
  Rng rng_;
  std::vector<net::Link*> links_;
  std::uint64_t decided_dropped_ = 0;
  std::uint64_t decided_duplicated_ = 0;  // sum of extra copies requested
  std::uint64_t decided_reordered_ = 0;
  std::uint64_t decided_delayed_ = 0;
};

}  // namespace cowbird::chaos
