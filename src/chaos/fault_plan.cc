#include "chaos/fault_plan.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/rng.h"

namespace cowbird::chaos {
namespace {

std::string FormatRate(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

const char* CongestionScenarioName(CongestionScenario scenario) {
  switch (scenario) {
    case CongestionScenario::kNone: return "none";
    case CongestionScenario::kIncast: return "incast";
    case CongestionScenario::kVictim: return "victim";
    case CongestionScenario::kPauseStorm: return "pause_storm";
  }
  return "none";
}

std::optional<CongestionScenario> ParseCongestionScenario(
    std::string_view name) {
  for (const CongestionScenario scenario :
       {CongestionScenario::kNone, CongestionScenario::kIncast,
        CongestionScenario::kVictim, CongestionScenario::kPauseStorm}) {
    if (name == CongestionScenarioName(scenario)) return scenario;
  }
  return std::nullopt;
}

std::string FaultPlan::Serialize() const {
  std::ostringstream out;
  out << "drop=" << FormatRate(drop_rate)
      << " dup=" << FormatRate(duplicate_rate)
      << " reorder=" << FormatRate(reorder_rate)
      << " delay=" << FormatRate(delay_rate) << " delay_min=" << delay_min
      << " delay_max=" << delay_max << " reorder_delay=" << reorder_delay
      << " max_dup=" << max_duplicates;
  out << " partitions=";
  for (std::size_t i = 0; i < partitions.size(); ++i) {
    if (i > 0) out << ',';
    out << partitions[i].start << '-' << partitions[i].end;
  }
  out << " crashes=";
  for (std::size_t i = 0; i < crashes.size(); ++i) {
    if (i > 0) out << ',';
    out << crashes[i];
  }
  // Emitted only when set: pre-congestion traces stay byte-identical.
  if (congestion != CongestionScenario::kNone) {
    out << " congestion=" << CongestionScenarioName(congestion);
  }
  // Same opt-in rule for the migration scenario.
  if (migrate) {
    out << " migrate=1 migrate_start=" << migrate_start;
  }
  return out.str();
}

std::optional<FaultPlan> FaultPlan::Parse(std::string_view line) {
  FaultPlan plan;
  std::istringstream in{std::string(line)};
  std::string token;
  while (in >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos) return std::nullopt;
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    char* end = nullptr;
    if (key == "drop") {
      plan.drop_rate = std::strtod(value.c_str(), &end);
    } else if (key == "dup") {
      plan.duplicate_rate = std::strtod(value.c_str(), &end);
    } else if (key == "reorder") {
      plan.reorder_rate = std::strtod(value.c_str(), &end);
    } else if (key == "delay") {
      plan.delay_rate = std::strtod(value.c_str(), &end);
    } else if (key == "delay_min") {
      plan.delay_min = std::strtoll(value.c_str(), &end, 10);
    } else if (key == "delay_max") {
      plan.delay_max = std::strtoll(value.c_str(), &end, 10);
    } else if (key == "reorder_delay") {
      plan.reorder_delay = std::strtoll(value.c_str(), &end, 10);
    } else if (key == "max_dup") {
      plan.max_duplicates =
          static_cast<int>(std::strtol(value.c_str(), &end, 10));
    } else if (key == "partitions") {
      std::istringstream list(value);
      std::string item;
      while (std::getline(list, item, ',')) {
        const auto dash = item.find('-');
        if (dash == std::string::npos) return std::nullopt;
        Partition p;
        p.start = std::strtoll(item.substr(0, dash).c_str(), nullptr, 10);
        p.end = std::strtoll(item.substr(dash + 1).c_str(), nullptr, 10);
        plan.partitions.push_back(p);
      }
      continue;
    } else if (key == "crashes") {
      std::istringstream list(value);
      std::string item;
      while (std::getline(list, item, ',')) {
        plan.crashes.push_back(std::strtoll(item.c_str(), nullptr, 10));
      }
      continue;
    } else if (key == "congestion") {
      const auto scenario = ParseCongestionScenario(value);
      if (!scenario.has_value()) return std::nullopt;
      plan.congestion = *scenario;
      continue;
    } else if (key == "migrate") {
      plan.migrate = std::strtol(value.c_str(), &end, 10) != 0;
    } else if (key == "migrate_start") {
      plan.migrate_start = std::strtoll(value.c_str(), &end, 10);
    } else {
      return std::nullopt;  // unknown key: refuse to half-parse a trace
    }
    if (end == value.c_str()) return std::nullopt;
  }
  return plan;
}

FaultPlan FaultPlan::FromSeed(std::uint64_t seed, int crash_count) {
  // Derive from a distinct stream so the plan does not correlate with the
  // injector's per-packet draws or the workload's operation mix.
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 0xC0FFEE);
  FaultPlan plan;
  plan.drop_rate = rng.NextDouble() * 0.02;
  plan.duplicate_rate = rng.NextDouble() * 0.02;
  plan.reorder_rate = rng.NextDouble() * 0.02;
  plan.delay_rate = rng.NextDouble() * 0.05;
  if (rng.Bernoulli(0.3)) {
    // One short partition, well under the Go-Back-N give-up horizon but
    // long enough to force retransmission timeouts (timeout is 100us).
    const Nanos start = static_cast<Nanos>(rng.Between(50'000, 250'000));
    const Nanos len = static_cast<Nanos>(rng.Between(10'000, 50'000));
    plan.partitions.push_back(Partition{start, start + len});
  }
  for (int i = 0; i < crash_count; ++i) {
    plan.crashes.push_back(
        static_cast<Nanos>(rng.Between(100'000, 400'000)));
  }
  std::sort(plan.crashes.begin(), plan.crashes.end());
  return plan;
}

}  // namespace cowbird::chaos
