// A seeded, serializable description of every fault a chaos run injects.
//
// The plan is pure data: packet-level fault rates (drop / duplicate /
// reorder / delay), link-partition windows during which every RDMA packet
// is dropped, and engine crash times that drive registry migrations. A run
// is fully determined by (engine, workload, plan, seed), which is what
// makes a captured failure trace replayable bit-for-bit.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.h"

namespace cowbird::chaos {

// Shared-fabric congestion scenarios a chaos run can layer on top of the
// packet faults. kIncast shrinks the switch's egress queues and turns on
// ECN marking + DCQCN so the fabric is genuinely contended; kVictim is the
// same contention shape but the checker's interest shifts to the
// uncongested flows (they must keep their rate); kPauseStorm enables PFC
// and injects repeated pause frames at the switch egress links.
enum class CongestionScenario : std::uint8_t {
  kNone,
  kIncast,
  kVictim,
  kPauseStorm,
};

const char* CongestionScenarioName(CongestionScenario scenario);
std::optional<CongestionScenario> ParseCongestionScenario(
    std::string_view name);

struct FaultPlan {
  // Per-RDMA-packet fault probabilities. The injector draws one uniform
  // variate per packet and partitions it, so the faults are mutually
  // exclusive and the rates are additive (their sum must stay <= 1).
  double drop_rate = 0.0;
  double duplicate_rate = 0.0;
  double reorder_rate = 0.0;
  double delay_rate = 0.0;

  // Plain delay faults hold a packet for a uniform draw in [min, max].
  Nanos delay_min = 500;
  Nanos delay_max = 5000;
  // Reorder faults hold a packet long enough for later arrivals to pass
  // it (several serialization times plus propagation).
  Nanos reorder_delay = Micros(5);
  // Duplicate faults emit between 1 and this many extra copies.
  int max_duplicates = 2;

  // Link-partition windows: while sim time is inside one, every RDMA
  // packet on the faulted links is dropped.
  struct Partition {
    Nanos start = 0;
    Nanos end = 0;
  };
  std::vector<Partition> partitions;

  // Engine crash times. At each, the chaos runner kills the serving engine
  // without draining (halting its QPs) and migrates the instance through
  // the registry.
  std::vector<Nanos> crashes;

  // Congestion scenario (kNone by default; Serialize omits the key then,
  // so pre-congestion traces round-trip byte-identically).
  CongestionScenario congestion = CongestionScenario::kNone;

  // Live region migration (DESIGN.md §14): at `migrate_start` the runner
  // begins copying the region's hot range from the primary memory server
  // to a second one and cuts the translation entry over mid-run, while the
  // workload keeps issuing. Off by default — and omitted from Serialize
  // then — so pre-migration traces stay byte-identical.
  bool migrate = false;
  Nanos migrate_start = Micros(150);

  bool AnyPacketFaults() const {
    return drop_rate > 0 || duplicate_rate > 0 || reorder_rate > 0 ||
           delay_rate > 0 || !partitions.empty();
  }

  // One-line key=value form used in failure traces.
  std::string Serialize() const;
  static std::optional<FaultPlan> Parse(std::string_view line);

  // Derives a randomized mixed plan from a seed: moderate fault rates, a
  // chance of partitions, and `crashes` crash events. Every sweep seed
  // exercises a different mixture deterministically.
  static FaultPlan FromSeed(std::uint64_t seed, int crash_count);
};

}  // namespace cowbird::chaos
