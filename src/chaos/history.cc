#include "chaos/history.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <tuple>
#include <utility>

#include "common/check.h"

namespace cowbird::chaos {

std::string Violation::Format() const {
  std::ostringstream out;
  out << kind << " op=" << op_id << " " << detail;
  return out.str();
}

std::uint64_t HistoryRecorder::Digest(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001B3ull;
  }
  return h;
}

std::uint64_t HistoryRecorder::OnInvoke(int thread, bool is_write,
                                        std::uint16_t region,
                                        std::uint64_t offset,
                                        std::uint32_t length, Nanos now,
                                        std::uint64_t write_digest) {
  OpRecord op;
  op.id = ops_.size();
  op.thread = thread;
  op.is_write = is_write;
  op.region = region;
  op.offset = offset;
  op.length = length;
  op.invoke = now;
  op.digest = is_write ? write_digest : 0;
  ops_.push_back(op);
  return op.id;
}

void HistoryRecorder::OnComplete(std::uint64_t op_id, Nanos now,
                                 std::uint64_t read_digest) {
  COWBIRD_CHECK(op_id < ops_.size());
  OpRecord& op = ops_[op_id];
  COWBIRD_CHECK(op.complete == kNeverCompleted);
  op.complete = now;
  if (!op.is_write) op.digest = read_digest;
}

namespace {

std::uint64_t ZeroDigest(std::uint32_t length) {
  std::vector<std::uint8_t> zeros(length, 0);
  return HistoryRecorder::Digest(zeros);
}

}  // namespace

std::vector<Violation> CheckHistory(const std::vector<OpRecord>& ops) {
  std::vector<Violation> violations;
  auto flag = [&violations](const OpRecord& op, const char* kind,
                            std::string detail) {
    violations.push_back(Violation{op.id, kind, std::move(detail)});
  };

  // Completion liveness and per-(thread, type) FIFO. Operations appear in
  // invoke order, so a single pass per group suffices.
  std::map<std::pair<int, bool>, std::pair<Nanos, bool>> group_state;
  for (const OpRecord& op : ops) {
    auto& [last_complete, saw_lost] = group_state[{op.thread, op.is_write}];
    if (op.complete == kNeverCompleted) {
      flag(op, "never-completed",
           op.is_write ? "write was invoked but never retired"
                       : "read was invoked but never retired");
      saw_lost = true;
      continue;
    }
    if (saw_lost) {
      flag(op, "fifo-skip",
           "completed although an earlier same-type op on this thread "
           "never did");
    } else if (op.complete < last_complete) {
      std::ostringstream detail;
      detail << "completed at " << op.complete
             << " before an earlier same-type op completed at "
             << last_complete;
      flag(op, "fifo-order", detail.str());
    }
    if (op.complete > last_complete) last_complete = op.complete;
  }

  // Per-slot read/write consistency.
  using SlotKey = std::tuple<std::uint16_t, std::uint64_t, std::uint32_t>;
  struct WriteVersion {
    const OpRecord* op;
    std::uint64_t version;  // 1-based; 0 = never written
  };
  std::map<SlotKey, std::vector<WriteVersion>> slot_writes;
  for (const OpRecord& op : ops) {
    if (!op.is_write) continue;
    auto& writes = slot_writes[{op.region, op.offset, op.length}];
    writes.push_back(WriteVersion{&op, writes.size() + 1});
  }

  for (const OpRecord& op : ops) {
    if (op.is_write || op.complete == kNeverCompleted) continue;
    const SlotKey key{op.region, op.offset, op.length};
    const auto it = slot_writes.find(key);
    const std::vector<WriteVersion> no_writes;
    const auto& writes = it == slot_writes.end() ? no_writes : it->second;

    // Resolve the observed digest to a version.
    std::uint64_t observed = 0;
    bool resolved = op.digest == ZeroDigest(op.length);
    for (const WriteVersion& w : writes) {
      if (w.op->digest == op.digest) {
        observed = w.version;  // last match wins; digests are unique anyway
        resolved = true;
      }
    }
    if (!resolved) {
      std::ostringstream detail;
      detail << "digest " << op.digest
             << " matches no write to slot offset=" << op.offset
             << " (torn or corrupt payload)";
      flag(op, "torn-read", detail.str());
      continue;
    }

    // floor: versions this read is guaranteed to see. Strict comparisons
    // throughout — completion times are recorded at harvest, which lags the
    // true event, so leniency must always favor the history.
    std::uint64_t floor = 0;
    std::uint64_t ceiling = 0;
    for (const WriteVersion& w : writes) {
      const bool same_thread_before =
          w.op->thread == op.thread && w.op->invoke < op.invoke;
      const bool completed_before = w.op->complete != kNeverCompleted &&
                                    w.op->complete < op.invoke;
      if (same_thread_before || completed_before) {
        floor = std::max(floor, w.version);
      }
      if (w.op->invoke <= op.complete) {
        ceiling = std::max(ceiling, w.version);
      }
    }
    if (observed < floor) {
      std::ostringstream detail;
      detail << "observed version " << observed << " but version " << floor
             << " preceded the read (offset=" << op.offset << ")";
      flag(op, "stale-read", detail.str());
    } else if (observed > ceiling) {
      std::ostringstream detail;
      detail << "observed version " << observed
             << " which was not invoked until after the read completed "
             << "(ceiling " << ceiling << ", offset=" << op.offset << ")";
      flag(op, "future-read", detail.str());
    }
  }
  return violations;
}

}  // namespace cowbird::chaos
