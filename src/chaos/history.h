// Operation history recording and linearizability checking.
//
// The chaos workload records every client operation as an interval
// [invoke, complete] with a payload digest, and the checker verifies the
// property the paper claims (Sections 4.1/5.3): per-type linearizability
// with read-after-write consistency. The checker is purely history-based —
// it knows nothing about engines, rings, or faults — so the same code
// audits both engines under any fault plan, and a dumped history is enough
// to re-verify a failure offline.
//
// Model checked, per slot (a (region, offset, length) triple the workload
// always accesses whole):
//   * writes to a slot are versioned by invoke order (the workload gives
//     each slot a single writer thread, making that order total);
//   * a completed read must observe a version in [floor, ceiling] where
//       floor   = max(latest same-thread write invoked before the read,
//                     latest any-thread write completed before the read)
//       ceiling = latest write invoked before the read completed
//     — below the floor is a stale read (the read-after-write violation a
//     broken fence produces), above the ceiling is time travel;
//   * an observed digest matching no write (and not the never-written
//     zero state) is a torn or corrupt read;
//   * per thread and type, completions arrive in invoke order (FIFO), and
//     every invoked operation eventually completes.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/units.h"

namespace cowbird::chaos {

inline constexpr Nanos kNeverCompleted = -1;

struct OpRecord {
  std::uint64_t id = 0;  // invoke order, unique per run
  int thread = 0;
  bool is_write = false;
  std::uint16_t region = 0;
  std::uint64_t offset = 0;
  std::uint32_t length = 0;
  Nanos invoke = 0;
  Nanos complete = kNeverCompleted;
  // Writes: digest of the payload written. Reads: digest of the bytes
  // observed at completion (0 while incomplete).
  std::uint64_t digest = 0;
};

struct Violation {
  std::uint64_t op_id = 0;
  std::string kind;    // stable identifier: "stale-read", "torn-read", ...
  std::string detail;  // human-oriented explanation
  std::string Format() const;
};

class HistoryRecorder {
 public:
  // FNV-1a, the digest both sides of the history use.
  static std::uint64_t Digest(std::span<const std::uint8_t> bytes);

  std::uint64_t OnInvoke(int thread, bool is_write, std::uint16_t region,
                         std::uint64_t offset, std::uint32_t length,
                         Nanos now, std::uint64_t write_digest = 0);
  void OnComplete(std::uint64_t op_id, Nanos now,
                  std::uint64_t read_digest = 0);

  const std::vector<OpRecord>& ops() const { return ops_; }
  std::vector<OpRecord>& mutable_ops() { return ops_; }

 private:
  std::vector<OpRecord> ops_;  // indexed by id
};

// Verifies the full history; an empty result means the run linearizes.
std::vector<Violation> CheckHistory(const std::vector<OpRecord>& ops);

}  // namespace cowbird::chaos
