#include "chaos/runner.h"

#include <cstdio>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <utility>
#include <vector>

#include "chaos/fault_injector.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/sparse_memory.h"
#include "core/client.h"
#include "core/cluster_pool.h"
#include "core/migration.h"
#include "net/switch.h"
#include "net/topology.h"
#include "offload/progress.h"
#include "offload/registry.h"
#include "p4/engine.h"
#include "rdma/congestion.h"
#include "rdma/device.h"
#include "rdma/params.h"
#include "sim/parallel.h"
#include "sim/simulation.h"
#include "sim/thread.h"
#include "spot/agent.h"
#include "spot/setup.h"

namespace cowbird::chaos {
namespace {

using core::CowbirdClient;
using core::ReqId;

constexpr net::NodeId kComputeId = 1;
constexpr net::NodeId kMemoryId = 2;
constexpr net::NodeId kSpotId = 3;
constexpr net::NodeId kMemory2Id = 4;  // migration runs only
constexpr net::NodeId kSwitchId = 100;
constexpr std::uint64_t kPoolBase = 0x100000;
constexpr std::uint64_t kHeap = 0x4000000;
constexpr std::uint16_t kRegion = 1;
// Issue no new operations past this point; drain until the hard deadline.
constexpr Nanos kIssueDeadline = Millis(20);
constexpr Nanos kDrainDeadline = Millis(40);

// Migration runs (plan.migrate): the primary server's slab is deliberately
// this small, so the region's hot head — every offset the workload touches —
// becomes its own range there and the cold tail spills to the second
// server. The scenario then live-migrates the hot range under traffic.
constexpr Bytes kMigrateRangeBytes = KiB(256);
constexpr std::uint64_t kPool2Base = 0x1000'0000;  // second server's slab
constexpr Nanos kMigrateTick = Micros(50);  // coordinator cadence

// Bystander-tenant traffic behind the incast/victim scenarios: 4 KiB
// closed-loop streams deep enough to push an egress queue past the ECN
// threshold. Starts almost immediately so it overlaps even the shortest
// workloads (the run's Halt() is what ends it).
constexpr Nanos kBgStart = Micros(50);
constexpr Bytes kBgBytes = 4096;
constexpr int kBgWindow = 24;
constexpr std::uint64_t kBgSpan = MiB(4);
constexpr std::uint64_t kBgMemBase = 0xA000'0000;    // scratch on responder
constexpr std::uint64_t kBgLocalBase = 0xC000'0000;  // requester staging

// The whole deterministic world of one chaos run: the Section 7 testbed
// topology, a client, the serving engine plus spot standbys behind an
// InstanceRegistry, the fault injector, and the recorded history.
struct ChaosHarness {
  // Topology node ids, in BuildTopo insertion order.
  static constexpr net::TopoNodeId kComputeNode = 0;
  static constexpr net::TopoNodeId kSwitchNode = 1;
  static constexpr net::TopoNodeId kMemoryNode = 2;
  static constexpr net::TopoNodeId kSpotNode = 3;
  static constexpr net::TopoNodeId kMemory2Node = 4;  // migration runs only

  // The Section 7 testbed as a topology plan: compute, memory, and spot
  // hosts on one switch. Serial collapses everything into domain 0; kPair
  // reproduces the historical two-way cut (compute node vs the rest);
  // kPerNode leaves every node in a domain of its own.
  static net::Topology BuildTopo(const ChaosOptions& opt, Nanos propagation) {
    net::Topology topo;
    const net::TopoNodeId compute =
        topo.AddNode(net::TopoNodeKind::kComputeHost, "compute", kComputeId);
    const net::TopoNodeId tor =
        topo.AddNode(net::TopoNodeKind::kSwitch, "switch");
    const net::TopoNodeId memory =
        topo.AddNode(net::TopoNodeKind::kMemoryServer, "memory", kMemoryId);
    const net::TopoNodeId spot =
        topo.AddNode(net::TopoNodeKind::kSpotHost, "spot", kSpotId);
    topo.AddEdge(compute, tor, propagation);
    topo.AddEdge(memory, tor, propagation);
    topo.AddEdge(spot, tor, propagation);
    // The second memory server exists only for migration runs, appended
    // after the legacy nodes so their topology ids — and everything seeded
    // off insertion order — stay exactly as pre-migration runs had them.
    net::TopoNodeId memory2 = 0;
    if (opt.plan.migrate) {
      memory2 = topo.AddNode(net::TopoNodeKind::kMemoryServer, "memory2",
                             kMemory2Id);
      topo.AddEdge(memory2, tor, propagation);
      COWBIRD_CHECK(memory2 == kMemory2Node);
    }
    if (opt.mode == ExecutionMode::kSerial) {
      topo.GroupAll(0);
    } else if (opt.split_scope == SplitScope::kPair) {
      topo.SetGroup(tor, 1);
      topo.SetGroup(memory, 1);
      topo.SetGroup(spot, 1);
      if (opt.plan.migrate) topo.SetGroup(memory2, 1);
    } else if (opt.split_scope == SplitScope::kPacked) {
      // The packed datapath on the small testbed: a static kind-weight rate
      // vector (the switch forwards every packet, so it is the hottest node;
      // hosts in between; the mostly-idle spot lightest) packed down to two
      // domains. No profiling pre-run here — chaos pins outcomes, not
      // placement quality, and a fixed vector keeps the sweep cheap and the
      // packing trivially reproducible.
      std::vector<std::uint64_t> rates(
          static_cast<std::size_t>(topo.node_count()));
      for (net::TopoNodeId n = 0; n < topo.node_count(); ++n) {
        switch (topo.node(n).kind) {
          case net::TopoNodeKind::kSwitch:
            rates[static_cast<std::size_t>(n)] = 6;
            break;
          case net::TopoNodeKind::kSpotHost:
            rates[static_cast<std::size_t>(n)] = 2;
            break;
          default:
            rates[static_cast<std::size_t>(n)] = 3;
            break;
        }
      }
      net::PackDomains(topo, rates, 2);
    }
    return topo;
  }

  // Congestion scenarios tighten the fabric; kNone leaves every knob at
  // its default so pre-congestion runs stay byte-identical.
  static net::Switch::Config MakeSwitchConfig(
      const ChaosOptions& opt, const rdma::FabricParams& fabric) {
    net::Switch::Config sc;
    sc.pipeline_latency = fabric.switch_pipeline;
    switch (opt.plan.congestion) {
      case CongestionScenario::kNone:
        break;
      case CongestionScenario::kIncast:
      case CongestionScenario::kVictim:
        sc.egress_queue_capacity = KiB(64);
        sc.ecn_threshold = KiB(16);
        break;
      case CongestionScenario::kPauseStorm:
        sc.pfc_enabled = true;
        sc.pfc_pause_threshold = KiB(32);
        sc.pfc_resume_threshold = KiB(16);
        break;
    }
    return sc;
  }

  static rdma::NicConfig MakeNicConfig(const ChaosOptions& opt) {
    rdma::NicConfig nc;
    if (opt.plan.congestion == CongestionScenario::kIncast ||
        opt.plan.congestion == CongestionScenario::kVictim) {
      nc.dcqcn.enabled = true;
    }
    return nc;
  }

  ChaosHarness(const ChaosOptions& opt, telemetry::Hub* hub)
      : options(opt),
        nic_config(MakeNicConfig(opt)),
        topo(BuildTopo(opt, fabric_params.link_propagation)),
        partition(net::PartitionTopology(topo)),
        domains(sim, partition, opt.split_workers),
        esim(domains.sim_for(kSwitchNode)),
        msim(domains.sim_for(kMemoryNode)),
        ssim(domains.sim_for(kSpotNode)),
        group(domains.group()),
        sw(esim, MakeSwitchConfig(opt, fabric_params)),
        compute_nic(sim, kComputeId, fabric_params.host_link,
                    fabric_params.link_propagation),
        memory_nic(msim, kMemoryId, fabric_params.host_link,
                   fabric_params.link_propagation),
        spot_nic(ssim, kSpotId, fabric_params.host_link,
                 fabric_params.link_propagation),
        compute_dev(compute_nic, compute_mem, nic_config),
        memory_dev(memory_nic, memory_mem, nic_config),
        spot_dev(spot_nic, spot_mem, nic_config),
        compute_machine(sim, 16),
        machine_a(ssim, 1),
        machine_b(ssim, 1),
        injector(sim, opt.plan, opt.seed) {
    // FabricDomains registered every domain before ConnectTo wires the
    // cross-domain links (SetDestination reads domain ids to record the
    // per-cut lookahead).
    COWBIRD_CHECK(!partition.zero_lookahead_error().has_value());
    if (group != nullptr) group->set_horizon_policy(opt.horizon_policy);
    compute_nic.ConnectTo(sw, "compute");
    memory_nic.ConnectTo(sw, "memory");
    spot_nic.ConnectTo(sw, "spot");
    if (opt.plan.migrate) {
      memory2_nic.emplace(domains.sim_for(kMemory2Node), kMemory2Id,
                          fabric_params.host_link,
                          fabric_params.link_propagation);
      memory2_dev.emplace(*memory2_nic, memory2_mem, nic_config);
      memory2_nic->ConnectTo(sw, "memory2");
      // The elastic pool owns the slabs (it registers the MRs itself);
      // legacy runs keep the historical single RegisterMemory call so the
      // rkey sequence — and thus every golden-pinned byte — is untouched.
      pool.AddServer(memory_dev, kPoolBase, kMigrateRangeBytes);
      pool.AddServer(*memory2_dev, kPool2Base, MiB(80));
    } else {
      pool_mr = memory_dev.RegisterMemory(kPoolBase, MiB(64));
    }

    // Telemetry shards per PDES domain: shard 0 is the caller's hub, the
    // engine-side domains get private hubs that are merged into the
    // caller's snapshot after the run.
    shards.Reset(hub, partition.domain_count(), [this](int d) {
      sim::Simulation& dsim = domains.domain_sim(d);
      return telemetry::Clock([&dsim] { return dsim.Now(); });
    });

    if (hub != nullptr) {
      hub->tracer.SetClock([this] { return sim.Now(); });
      const struct {
        const char* name;
        net::Link* link;
        int domain;  // the domain whose thread delivers on this link
      } fabric[] = {
          {"sw_to_compute", &sw.EgressLink(compute_nic.switch_port()),
           partition.domain_of(kComputeNode)},
          {"sw_to_memory", &sw.EgressLink(memory_nic.switch_port()),
           partition.domain_of(kMemoryNode)},
          {"sw_to_spot", &sw.EgressLink(spot_nic.switch_port()),
           partition.domain_of(kSpotNode)},
          {"compute_uplink", &compute_nic.uplink(),
           partition.domain_of(kSwitchNode)},
          {"memory_uplink", &memory_nic.uplink(),
           partition.domain_of(kSwitchNode)},
          {"spot_uplink", &spot_nic.uplink(),
           partition.domain_of(kSwitchNode)},
      };
      for (const auto& f : fabric) {
        f.link->BindTelemetry(shards.ForDomain(f.domain)->metrics,
                              {{"link", f.name}});
        bound_links.push_back(f.link);
      }
      if (memory2_nic.has_value()) {
        const std::pair<const char*, net::Link*> extra[] = {
            {"sw_to_memory2", &sw.EgressLink(memory2_nic->switch_port())},
            {"memory2_uplink", &memory2_nic->uplink()},
        };
        const int extra_domain[] = {partition.domain_of(kMemory2Node),
                                    partition.domain_of(kSwitchNode)};
        for (int i = 0; i < 2; ++i) {
          extra[i].second->BindTelemetry(
              shards.ForDomain(extra_domain[i])->metrics,
              {{"link", extra[i].first}});
          bound_links.push_back(extra[i].second);
        }
        pool.BindTelemetry(hub->metrics, telemetry::Labels{});
      }
      if (group != nullptr) {
        for (int d = 0; d < partition.domain_count(); ++d) {
          group->SetDomainStartHook(d, [this, d] {
            shards.ForDomain(d)->metrics.BindToCurrentThread();
          });
        }
      }
    }

    CowbirdClient::Config cc;
    cc.layout.base = 0x10000;
    cc.layout.threads = opt.workload.threads;
    cc.layout.meta_slots = 128;
    cc.layout.data_capacity = KiB(128);
    cc.layout.resp_capacity = KiB(128);
    cc.telemetry = hub;
    client = std::make_unique<CowbirdClient>(compute_dev, cc);
    if (opt.plan.migrate) {
      // Preferred-first allocation carves the hot head on the primary
      // server and spills the tail to memory2; the client publishes the
      // pool's authoritative range table so both engines translate per
      // range from the very first attach.
      const auto region =
          pool.AllocateRegion(kRegion, kPoolBase, MiB(64), kMemoryId);
      COWBIRD_CHECK(region.has_value());
      client->RegisterRegion(*region);
      client->SetRegionRanges(kRegion, pool.RangesFor(kRegion));
    } else {
      client->RegisterRegion(core::RegionInfo{kRegion, kMemoryId, kPoolBase,
                                              pool_mr->rkey, MiB(64)});
    }

    telemetry::Hub* const spot_hub =
        shards.ForDomain(partition.domain_of(kSpotNode));
    spot::SpotAgent::Config config_a;
    config_a.staging_base = 0x4000'0000;
    config_a.chaos_unsafe_skip_hazards = opt.break_fence;
    config_a.telemetry = spot_hub;
    spot::SpotAgent::Config config_b;
    config_b.staging_base = 0x8000'0000;
    config_b.chaos_unsafe_skip_hazards = opt.break_fence;
    config_b.telemetry = spot_hub;
    agent_a = std::make_unique<spot::SpotAgent>(spot_dev, machine_a, config_a);
    agent_b = std::make_unique<spot::SpotAgent>(spot_dev, machine_b, config_b);
    agent_a->Start();
    agent_b->Start();

    if (opt.engine == EngineKind::kP4) {
      p4::CowbirdP4Engine::Config ec;
      ec.switch_node_id = kSwitchId;
      ec.chaos_unsafe_skip_hazards = opt.break_fence;
      ec.telemetry = shards.ForDomain(partition.domain_of(kSwitchNode));
      p4_engine = std::make_unique<p4::CowbirdP4Engine>(sw, ec);
      p4_engine->Start();
      serving = registry.AddEngine(P4Binding());
      serving_agent = nullptr;
    } else {
      serving = registry.AddEngine(SpotBinding(*agent_a, "spot-a"));
      serving_agent = agent_a.get();
    }
    const EngineId placed =
        registry.AddInstance(client->descriptor().instance_id, serving);
    COWBIRD_CHECK(placed == serving);

    if (opt.plan.AnyPacketFaults()) {
      injector.set_split_streams(group != nullptr);
      injector.Attach(sw.EgressLink(compute_nic.switch_port()));
      injector.Attach(sw.EgressLink(memory_nic.switch_port()));
      injector.Attach(sw.EgressLink(spot_nic.switch_port()));
      injector.Attach(compute_nic.uplink());
      injector.Attach(memory_nic.uplink());
      injector.Attach(spot_nic.uplink());
      // Migration-only links attach last so the legacy links keep their
      // historical per-link fault streams.
      if (memory2_nic.has_value()) {
        injector.Attach(sw.EgressLink(memory2_nic->switch_port()));
        injector.Attach(memory2_nic->uplink());
      }
    }
    if (opt.plan.congestion == CongestionScenario::kIncast ||
        opt.plan.congestion == CongestionScenario::kVictim) {
      SetupBackgroundTraffic(opt.plan.congestion);
    }
    if (opt.plan.congestion == CongestionScenario::kPauseStorm) {
      // A storm of pause frames "received" at the switch egress: every
      // 200us between 1ms and 6ms, the links toward the memory and compute
      // hosts pause their data classes for 50us. Egress-link transmit state
      // lives in the switch domain, so the events schedule on esim and the
      // storm is identical under any split.
      for (Nanos when = Millis(1); when < Millis(6); when += Micros(200)) {
        esim.ScheduleAt(when, [this] {
          sw.EgressLink(memory_nic.switch_port()).PauseData(Micros(50));
          sw.EgressLink(compute_nic.switch_port()).PauseData(Micros(50));
        });
      }
    }
    for (const Nanos when : opt.plan.crashes) {
      if (group != nullptr) {
        // Crash + migration spans both domains (registry, both NIC sides,
        // the published red block); it runs between epochs with every
        // domain quiescent and advanced to `when`.
        group->ScheduleGlobal(when, [this] { CrashServingEngine(); });
      } else {
        sim.ScheduleAt(when, [this] { CrashServingEngine(); });
      }
    }
    if (opt.plan.migrate) {
      // The copy stream's QP: source-device side `a` writes into memory2's
      // slab, congestion-controlled against the foreground traffic.
      migrate_qp = rdma::ConnectQueuePairs(memory_dev, *memory2_dev);
      // Every coordinator tick is pre-scheduled up front: rescheduling a
      // global event from inside one is undefined under conservative PDES,
      // and a fixed tick train is bit-identical for any worker count. Ticks
      // on a finished migration are cheap no-ops.
      for (Nanos when = opt.plan.migrate_start; when < kDrainDeadline;
           when += kMigrateTick) {
        if (group != nullptr) {
          group->ScheduleGlobal(when, [this] { MigrationTick(); });
        } else {
          sim.ScheduleAt(when, [this] { MigrationTick(); });
        }
      }
    }
    telemetry_hub = hub;
  }

  ~ChaosHarness() {
    if (telemetry_hub != nullptr) {
      for (net::Link* link : bound_links) link->UnbindTelemetry();
      // The per-run simulation dies with the harness but the caller keeps
      // the hub: freeze the tracer clock at the final virtual time so open
      // spans clamp sanely instead of reading a dangling Simulation.
      telemetry_hub->tracer.SetClock([now = sim.Now()] { return now; });
    }
  }

  using EngineId = offload::EngineId;

  // The client's published red block, per thread — the optimistic counters
  // a crash-exported snapshot is reconciled against.
  std::vector<offload::ThreadProgress> ReadPublishedProgress() const {
    std::vector<offload::ThreadProgress> published;
    const auto& layout = client->descriptor().layout;
    std::vector<std::uint8_t> block(core::kRedBlockBytes);
    for (int t = 0; t < layout.threads; ++t) {
      compute_mem.Read(layout.RedAddr(t), block);
      published.push_back(offload::ProgressPublisher::Unpack(block));
    }
    return published;
  }

  offload::EngineBinding SpotBinding(spot::SpotAgent& agent,
                                     std::string name) {
    offload::EngineBinding binding;
    binding.name = std::move(name);
    binding.attach = [this, &agent](std::uint32_t instance_id,
                                    const offload::InstanceProgress* resume) {
      COWBIRD_CHECK(instance_id == client->descriptor().instance_id);
      std::vector<rdma::Device*> memories{&memory_dev};
      if (memory2_dev.has_value()) memories.push_back(&*memory2_dev);
      auto conn = spot::ConnectSpotEngine(spot_dev, compute_dev, memories);
      offload::InstanceProgress reconciled;
      const offload::InstanceProgress* use = resume;
      if (resume != nullptr) {
        reconciled = *resume;
        offload::ReconcileWithPublished(reconciled, ReadPublishedProgress());
        use = &reconciled;
      }
      agent.AddInstance(client->descriptor(), conn.to_compute,
                        conn.compute_cq, conn.to_memory, conn.memory_cqs,
                        use);
      conn_of[&agent] = conn;
      serving_agent = &agent;
      return true;
    };
    binding.detach = [this, &agent](std::uint32_t instance_id) {
      // Crash semantics: export, then kill the NIC state mid-flight — no
      // drain, and no zombie retransmissions once the survivor takes over.
      auto snapshot = agent.ExportProgress(instance_id);
      agent.RemoveInstance(instance_id);
      auto it = conn_of.find(&agent);
      if (it != conn_of.end()) {
        it->second.to_compute->Halt();
        for (auto& [node, qp] : it->second.to_memory) qp->Halt();
        conn_of.erase(it);
      }
      return snapshot;
    };
    return binding;
  }

  offload::EngineBinding P4Binding() {
    offload::EngineBinding binding;
    binding.name = "p4";
    binding.attach = [this](std::uint32_t instance_id,
                            const offload::InstanceProgress* resume) {
      COWBIRD_CHECK(instance_id == client->descriptor().instance_id);
      // Every attach consumes a fresh QPN block: a handoff re-attach must
      // not collide with the host QPs the detached connection left behind.
      // (The first attach still gets the historical 0x800 base.)
      const std::uint32_t qpn_base = p4_qpn_base;
      p4_qpn_base += 0x40;
      std::vector<rdma::Device*> memories{&memory_dev};
      if (memory2_dev.has_value()) memories.push_back(&*memory2_dev);
      auto conn = p4::ConnectP4Engine(*p4_engine, kSwitchId, compute_dev,
                                      memories, qpn_base);
      p4_engine->AddInstance(client->descriptor(), conn, resume);
      serving_agent = nullptr;
      return true;
    };
    binding.detach = [this](std::uint32_t instance_id) {
      // The P4 engine's counters only ever cover completed work and its
      // in-flight pipeline state dies with the instance entry, so its
      // export is crash-safe as-is. The switch makes no host-side verbs of
      // its own to halt; packets already on the wire land harmlessly
      // (idempotent re-execution, Section 5.3). A handoff detach keeps the
      // probe loop alive — the same switch re-attaches the instance after
      // the cutover.
      auto snapshot = p4_engine->ExportProgress(instance_id);
      p4_engine->RemoveInstance(instance_id);
      if (!handoff_in_progress) p4_engine->StopProbing();
      return snapshot;
    };
    return binding;
  }

  // One bystander flow: a closed-loop 4 KiB stream on its own QP pair,
  // pumped from the requester's domain sim so splits see identical event
  // orderings.
  struct BgFlow {
    rdma::QpPair pair;
    sim::Simulation* psim = nullptr;
    bool write = false;
    std::uint64_t laddr = 0;
    std::uint64_t raddr = 0;
    std::uint32_t rkey = 0;
    std::uint64_t posted = 0;
  };

  // kIncast fans two read streams (served by the memory and spot hosts)
  // into the compute port, so the tenant under test shares the congested
  // egress with the bystander. kVictim aims two write streams at the
  // memory port instead: the tenant's own requests must cross a port
  // somebody else congested. Both shapes leave the fault plan's packet
  // streams untouched — the bystander packets go through the same
  // injector, which is part of the scenario's determinism surface.
  void SetupBackgroundTraffic(CongestionScenario scenario) {
    bg_flows.reserve(2);
    if (scenario == CongestionScenario::kIncast) {
      const auto* mem_mr = memory_dev.RegisterMemory(kBgMemBase, kBgSpan);
      const auto* spot_mr = spot_dev.RegisterMemory(kBgMemBase, kBgSpan);
      memory_mem.PreFault(kBgMemBase, kBgSpan);
      spot_mem.PreFault(kBgMemBase, kBgSpan);
      compute_mem.PreFault(kBgLocalBase, 2 * kBgSpan);
      bg_flows.push_back(BgFlow{ConnectQueuePairs(compute_dev, memory_dev),
                                &sim, /*write=*/false, kBgLocalBase,
                                mem_mr->base, mem_mr->rkey});
      bg_flows.push_back(BgFlow{ConnectQueuePairs(compute_dev, spot_dev),
                                &sim, /*write=*/false, kBgLocalBase + kBgSpan,
                                spot_mr->base, spot_mr->rkey});
    } else {
      const auto* mem_mr = memory_dev.RegisterMemory(kBgMemBase, kBgSpan);
      memory_mem.PreFault(kBgMemBase, kBgSpan);
      compute_mem.PreFault(kBgLocalBase, kBgSpan);
      spot_mem.PreFault(kBgLocalBase, kBgSpan);
      bg_flows.push_back(BgFlow{ConnectQueuePairs(compute_dev, memory_dev),
                                &sim, /*write=*/true, kBgLocalBase,
                                mem_mr->base, mem_mr->rkey});
      bg_flows.push_back(BgFlow{ConnectQueuePairs(spot_dev, memory_dev),
                                &ssim, /*write=*/true, kBgLocalBase,
                                mem_mr->base, mem_mr->rkey});
    }
    for (BgFlow& f : bg_flows) {
      f.psim->ScheduleAt(kBgStart, [this, &f] {
        for (int i = 0; i < kBgWindow; ++i) PostBg(f);
        PumpBg(f);
      });
    }
  }

  void PostBg(BgFlow& f) {
    const std::uint64_t slot = f.posted++ % (kBgSpan / kBgBytes);
    f.pair.a->PostSend(rdma::SendWqe{
        f.write ? rdma::WqeOp::kWrite : rdma::WqeOp::kRead, f.posted,
        f.laddr + slot * kBgBytes, f.raddr + slot * kBgBytes, f.rkey,
        static_cast<std::uint32_t>(kBgBytes), true});
  }

  void PumpBg(BgFlow& f) {
    while (f.pair.a_send_cq->Pop()) PostBg(f);
    f.psim->ScheduleAfter(500, [this, &f] { PumpBg(f); });
  }

  // One step of the copy-then-cutover state machine (core/migration.h),
  // driven by the pre-scheduled tick train. Runs as a global event under
  // PDES splits because the cutover — registry handoff, translation flip,
  // client range republish, re-attach — spans every domain; like the crash
  // path it executes with all domains quiescent at the tick time.
  void MigrationTick() {
    switch (migration_stage) {
      case MigrationStage::kArmed: {
        migrate_plan = pool.PlanMove(kRegion, kPoolBase, kMemory2Id);
        COWBIRD_CHECK(migrate_plan.has_value());
        core::RegionMigrator::Config mc;
        mc.chunk = KiB(16);  // stretch the copy so foreground writes race it
        mc.window = 2;
        mc.telemetry = telemetry_hub;
        migrator = std::make_unique<core::RegionMigrator>(
            memory_dev, *migrate_qp.a, *migrate_qp.a_send_cq, *migrate_plan,
            mc);
        migrator->Start();
        migration_stage = MigrationStage::kCopying;
        break;
      }
      case MigrationStage::kCopying: {
        if (!migrator->ReadyForCutover()) break;
        // Cutover, step 1: park the instance (the registry detach exports
        // the resume snapshot and halts the engine-side QPs) and enter the
        // final drain. Stragglers already on the wire still land on the
        // source, re-mark their chunk, and are chased before Synced().
        // BeginHandoff can refuse transiently (e.g. the instance is mid
        // crash-migration and unassigned); retry on the next tick. The flag
        // must be raised *before* the call: BeginHandoff synchronously runs
        // the serving engine's detach, which keeps the P4 probe loop alive
        // only while a handoff is in progress.
        handoff_in_progress = true;
        if (!registry.BeginHandoff(client->descriptor().instance_id)) {
          handoff_in_progress = false;
          break;
        }
        migrator->BeginFinalDrain();
        migration_stage = MigrationStage::kDraining;
        break;
      }
      case MigrationStage::kDraining: {
        migrator->Nudge();
        if (!migrator->Synced()) break;
        // Cutover, step 2 — atomic in virtual time, all inside this one
        // event: flip the pool's translation entry, republish the client's
        // range table, and re-attach. The resumed engine rebuilds its
        // translation mirror from the new placement, so every re-executed
        // and new operation resolves to the destination server.
        pool.CommitMove(*migrate_plan);
        client->SetRegionRanges(kRegion, pool.RangesFor(kRegion));
        migrator->Finish();
        const EngineId placed =
            registry.CompleteHandoff(client->descriptor().instance_id);
        COWBIRD_CHECK(placed != offload::kNoEngine);
        handoff_in_progress = false;
        serving = placed;
        migration_stage = MigrationStage::kDone;
        ++migrations_executed;
        break;
      }
      case MigrationStage::kDone:
        break;
    }
  }

  void CrashServingEngine() {
    if (serving == offload::kNoEngine) return;
    // Bring up the standby as a *new* registry engine first so the
    // migration has exactly one live target, then kill the serving one.
    spot::SpotAgent* standby =
        serving_agent == agent_a.get() ? agent_b.get() : agent_a.get();
    const EngineId fresh = registry.AddEngine(
        SpotBinding(*standby, standby == agent_a.get() ? "spot-a" : "spot-b"));
    const EngineId dying = serving;
    registry.StopEngine(dying);
    serving = fresh;
    ++crashes_executed;
  }

  const ChaosOptions& options;
  sim::Simulation sim;
  rdma::FabricParams fabric_params;
  rdma::NicConfig nic_config;
  // Split mode partitions the testbed topology per ChaosOptions::split_scope:
  // the compute NIC, client and app threads stay in `sim` (domain 0) while
  // the switch and the memory/spot nodes run in the domains the partitioner
  // assigns them. esim/msim/ssim all alias `sim` when serial (group null)
  // and one shared engine domain under kPair; kPerNode gives each its own.
  net::Topology topo;
  net::Partition partition;
  net::FabricDomains domains;
  sim::Simulation& esim;  // switch domain
  sim::Simulation& msim;  // memory-server domain
  sim::Simulation& ssim;  // spot-host domain
  sim::DomainGroup* group = nullptr;  // null when serial
  net::Switch sw;
  net::HostNic compute_nic;
  net::HostNic memory_nic;
  net::HostNic spot_nic;
  SparseMemory compute_mem;
  SparseMemory memory_mem;
  SparseMemory spot_mem;
  rdma::Device compute_dev;
  rdma::Device memory_dev;
  rdma::Device spot_dev;
  // Migration runs only: the second memory server (engaged after the
  // legacy members so everything they consume — node ids, switch ports,
  // rkeys — is untouched when absent).
  SparseMemory memory2_mem;
  std::optional<net::HostNic> memory2_nic;
  std::optional<rdma::Device> memory2_dev;
  sim::Machine compute_machine;
  sim::Machine machine_a;
  sim::Machine machine_b;
  const rdma::MemoryRegion* pool_mr = nullptr;
  // Declared before the client and engines: their destructors unregister
  // callback gauges against the per-domain shard hubs, so the shards must
  // outlive them.
  telemetry::HubShards shards;
  std::unique_ptr<CowbirdClient> client;
  std::unique_ptr<spot::SpotAgent> agent_a;
  std::unique_ptr<spot::SpotAgent> agent_b;
  std::unique_ptr<p4::CowbirdP4Engine> p4_engine;
  offload::InstanceRegistry registry;
  std::map<spot::SpotAgent*, spot::SpotConnection> conn_of;
  spot::SpotAgent* serving_agent = nullptr;
  EngineId serving = offload::kNoEngine;
  // Live-migration state (plan.migrate only).
  enum class MigrationStage { kArmed, kCopying, kDraining, kDone };
  core::ClusterPool pool;
  rdma::QpPair migrate_qp;
  std::optional<core::ClusterPool::MigrationPlan> migrate_plan;
  std::unique_ptr<core::RegionMigrator> migrator;
  MigrationStage migration_stage = MigrationStage::kArmed;
  bool handoff_in_progress = false;
  std::uint32_t p4_qpn_base = 0x800;
  std::uint64_t migrations_executed = 0;
  FaultInjector injector;
  std::vector<BgFlow> bg_flows;
  telemetry::Hub* telemetry_hub = nullptr;
  std::vector<net::Link*> bound_links;
  HistoryRecorder recorder;
  std::uint64_t reads_checked = 0;
  std::uint64_t writes_completed = 0;
  std::uint64_t crashes_executed = 0;
  int threads_done = 0;
};

// One application thread: random reads/writes over its own slots, every
// operation recorded as an interval in the shared history.
sim::Task<void> WorkloadThread(ChaosHarness& h, int t) {
  const WorkloadParams& wl = h.options.workload;
  sim::SimThread thread(h.compute_machine, "chaos-app");
  auto& ctx = h.client->thread(t);
  const core::PollId poll = ctx.PollCreate();
  Rng rng(h.options.seed * 1000003 + static_cast<std::uint64_t>(t) * 7919 +
          1);

  const std::uint64_t scratch = kHeap + static_cast<std::uint64_t>(t) *
                                            MiB(4);
  const std::uint64_t dest_base =
      kHeap + MiB(32) + static_cast<std::uint64_t>(t) * MiB(1);
  std::vector<std::uint64_t> versions(wl.slots_per_thread, 0);

  struct PendingEntry {
    std::uint64_t seq = 0;      // client-side per-type sequence
    std::uint64_t hist_id = 0;  // HistoryRecorder op id
    std::uint64_t dest = 0;     // reads only
    std::uint32_t length = 0;
  };
  std::deque<PendingEntry> reads, writes;
  int dest_rr = 0;

  auto harvest = [&h, &ctx, &reads, &writes] {
    while (!reads.empty() && ctx.reads_retired() >= reads.front().seq) {
      const PendingEntry& r = reads.front();
      std::vector<std::uint8_t> observed(r.length);
      h.compute_mem.Read(r.dest, observed);
      h.recorder.OnComplete(r.hist_id, h.sim.Now(),
                            HistoryRecorder::Digest(observed));
      ++h.reads_checked;
      reads.pop_front();
    }
    while (!writes.empty() && ctx.writes_retired() >= writes.front().seq) {
      h.recorder.OnComplete(writes.front().hist_id, h.sim.Now());
      ++h.writes_completed;
      writes.pop_front();
    }
  };

  std::vector<std::uint8_t> payload;
  for (int i = 0; i < wl.ops_per_thread && h.sim.Now() < kIssueDeadline;) {
    const int slot = static_cast<int>(rng.Below(
        static_cast<std::uint64_t>(wl.slots_per_thread)));
    const std::uint64_t offset =
        static_cast<std::uint64_t>(t * wl.slots_per_thread + slot) * 4096;
    if (rng.Bernoulli(wl.write_ratio)) {
      const std::uint64_t version = versions[slot] + 1;
      payload.assign(wl.len, 0);
      for (int b = 0; b < 8; ++b) {
        payload[b] = static_cast<std::uint8_t>(version >> (8 * b));
        payload[8 + b] = static_cast<std::uint8_t>(
            static_cast<std::uint64_t>(offset) >> (8 * b));
      }
      for (std::uint32_t b = 16; b < wl.len; ++b) {
        payload[b] = static_cast<std::uint8_t>(
            version * 37 + static_cast<std::uint64_t>(slot));
      }
      h.compute_mem.Write(scratch, payload);
      auto id = co_await ctx.AsyncWrite(thread, kRegion, scratch, offset,
                                        wl.len);
      if (!id.has_value()) {
        harvest();
        co_await thread.Idle(Micros(10));
        continue;
      }
      versions[slot] = version;
      const std::uint64_t hist_id =
          h.recorder.OnInvoke(t, /*is_write=*/true, kRegion, offset, wl.len,
                              h.sim.Now(), HistoryRecorder::Digest(payload));
      writes.push_back(PendingEntry{id->seq(), hist_id, 0, wl.len});
      ctx.PollAdd(poll, *id);
    } else {
      const std::uint64_t dest =
          dest_base + static_cast<std::uint64_t>(dest_rr++ % 64) * 4096;
      auto id = co_await ctx.AsyncRead(thread, kRegion, offset, dest,
                                       wl.len);
      if (!id.has_value()) {
        harvest();
        co_await thread.Idle(Micros(10));
        continue;
      }
      const std::uint64_t hist_id = h.recorder.OnInvoke(
          t, /*is_write=*/false, kRegion, offset, wl.len, h.sim.Now());
      reads.push_back(PendingEntry{id->seq(), hist_id, dest, wl.len});
    }
    ++i;

    while (static_cast<int>(reads.size() + writes.size()) >=
           wl.max_outstanding) {
      const auto done = co_await ctx.PollWait(thread, poll, 16, 0);
      harvest();
      if (static_cast<int>(reads.size() + writes.size()) <
          wl.max_outstanding) {
        break;
      }
      if (done.empty()) co_await thread.Idle(Micros(5));
      if (h.sim.Now() >= kDrainDeadline) break;
    }
    if (h.sim.Now() >= kDrainDeadline) break;
  }

  // Drain: whatever never retires by the deadline stays open in the
  // history and the checker reports it.
  while (!(reads.empty() && writes.empty()) &&
         h.sim.Now() < kDrainDeadline) {
    (void)co_await ctx.PollWait(thread, poll, 16, Micros(50));
    harvest();
  }
  if (++h.threads_done == h.options.workload.threads) h.sim.Halt();
}

}  // namespace

const char* EngineKindName(EngineKind kind) {
  return kind == EngineKind::kSpot ? "spot" : "p4";
}

std::optional<EngineKind> ParseEngineKind(std::string_view name) {
  if (name == "spot") return EngineKind::kSpot;
  if (name == "p4") return EngineKind::kP4;
  return std::nullopt;
}

ChaosOptions SweepOptions(EngineKind engine, std::uint64_t seed,
                          bool break_fence) {
  ChaosOptions opt;
  opt.engine = engine;
  opt.seed = seed;
  opt.break_fence = break_fence;
  opt.workload.threads = 2;
  opt.workload.ops_per_thread = 200;
  if (break_fence) {
    // Hot single slot maximizes read-after-write conflicts so the planted
    // bug has every chance to manifest; no packet faults needed.
    opt.workload.slots_per_thread = 1;
    opt.workload.write_ratio = 0.5;
  } else {
    opt.plan = FaultPlan::FromSeed(seed, /*crash_count=*/seed % 2 ? 2 : 0);
  }
  return opt;
}

std::string WorkloadParams::Serialize() const {
  std::ostringstream out;
  out << "threads=" << threads << " slots=" << slots_per_thread
      << " len=" << len << " ops=" << ops_per_thread;
  char ratio[32];
  std::snprintf(ratio, sizeof(ratio), "%.6g", write_ratio);
  out << " write_ratio=" << ratio << " outstanding=" << max_outstanding;
  return out.str();
}

std::optional<WorkloadParams> WorkloadParams::Parse(std::string_view line) {
  WorkloadParams wl;
  std::istringstream in{std::string(line)};
  std::string token;
  while (in >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos) return std::nullopt;
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "threads") {
      wl.threads = std::atoi(value.c_str());
    } else if (key == "slots") {
      wl.slots_per_thread = std::atoi(value.c_str());
    } else if (key == "len") {
      wl.len = static_cast<std::uint32_t>(std::atoi(value.c_str()));
    } else if (key == "ops") {
      wl.ops_per_thread = std::atoi(value.c_str());
    } else if (key == "write_ratio") {
      wl.write_ratio = std::atof(value.c_str());
    } else if (key == "outstanding") {
      wl.max_outstanding = std::atoi(value.c_str());
    } else {
      return std::nullopt;
    }
  }
  return wl;
}

ChaosResult RunChaos(const ChaosOptions& options, telemetry::Hub* hub) {
  COWBIRD_CHECK(options.workload.threads >= 1);
  COWBIRD_CHECK(options.workload.len >= 16 && options.workload.len <= 4096);
  COWBIRD_CHECK(options.workload.max_outstanding >= 1 &&
                options.workload.max_outstanding <= 32);

  ChaosHarness harness(options, hub);
  for (int t = 0; t < options.workload.threads; ++t) {
    harness.sim.Spawn(WorkloadThread(harness, t));
  }
  harness.domains.Run();

  ChaosResult result;
  result.history = harness.recorder.ops();
  result.violations = CheckHistory(result.history);
  result.reads_checked = harness.reads_checked;
  result.writes_completed = harness.writes_completed;
  result.faults_injected = harness.injector.decided_total();
  result.counters_exact = harness.injector.CountersExact();
  result.decided_dropped = harness.injector.decided_dropped();
  result.decided_duplicated = harness.injector.decided_duplicated();
  result.decided_reordered = harness.injector.decided_reordered();
  result.decided_delayed = harness.injector.decided_delayed();
  result.crashes_executed = harness.crashes_executed;
  result.migrations_executed = harness.migrations_executed;
  if (harness.migrator != nullptr) {
    result.migrate_bytes_copied = harness.migrator->bytes_copied();
    result.migrate_dirty_marks = harness.migrator->dirty_marks();
  }
  result.ecn_marked = harness.sw.ecn_marked();
  result.pfc_pauses = harness.sw.pfc_pauses_sent();
  std::vector<net::Link*> fabric_links = {
      &harness.sw.EgressLink(harness.compute_nic.switch_port()),
      &harness.sw.EgressLink(harness.memory_nic.switch_port()),
      &harness.sw.EgressLink(harness.spot_nic.switch_port()),
      &harness.compute_nic.uplink(), &harness.memory_nic.uplink(),
      &harness.spot_nic.uplink()};
  std::vector<rdma::Device*> devices = {
      &harness.compute_dev, &harness.memory_dev, &harness.spot_dev};
  if (harness.memory2_nic.has_value()) {
    fabric_links.push_back(
        &harness.sw.EgressLink(harness.memory2_nic->switch_port()));
    fabric_links.push_back(&harness.memory2_nic->uplink());
    devices.push_back(&*harness.memory2_dev);
  }
  for (net::Link* link : fabric_links) {
    result.link_pauses += link->pauses_received();
  }
  for (rdma::Device* dev : devices) {
    if (rdma::CongestionManager* cm = dev->congestion()) {
      result.cnps += cm->cnps_received();
    }
  }
  if (hub != nullptr) {
    result.telemetry = hub->metrics.TakeSnapshot();
    harness.shards.MergeInto(result.telemetry);
  }
  return result;
}

}  // namespace cowbird::chaos
