// The chaos harness: one deterministic run of client workload + engine(s)
// + fault plan, with a checked operation history.
//
// A run stands up the testbed topology (compute + memory + spot node on one
// switch), an InstanceRegistry over the chosen primary engine plus spot
// standbys, and a multi-threaded client workload that records every
// operation into a HistoryRecorder. The FaultPlan drives a FaultInjector on
// every fabric link and schedules engine crashes: a crash halts the serving
// engine's QPs mid-flight (no drain, zombie retransmissions killed) and
// migrates the instance through the registry to a standby, reconciling the
// crash-exported snapshot against the client's published red block.
//
// Everything is derived from ChaosOptions — same options, same result,
// bit for bit — which is what makes failure traces replayable.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "chaos/fault_plan.h"
#include "chaos/history.h"
#include "sim/parallel.h"
#include "telemetry/hub.h"

namespace cowbird::chaos {

enum class EngineKind { kSpot, kP4 };

const char* EngineKindName(EngineKind kind);
std::optional<EngineKind> ParseEngineKind(std::string_view name);

struct WorkloadParams {
  int threads = 2;
  int slots_per_thread = 4;  // distinct 4KiB-spaced addresses per thread
  std::uint32_t len = 128;   // record length (<= 4096)
  int ops_per_thread = 300;
  double write_ratio = 0.4;
  int max_outstanding = 8;

  std::string Serialize() const;
  static std::optional<WorkloadParams> Parse(std::string_view line);
};

// How RunChaos executes the run's simulation. kSerial is the single-loop
// golden-pinned path; kSplit partitions the testbed topology into PDES
// domains driven by a sim::DomainGroup. The mode is a property of this
// process's execution, not of the recorded scenario: it is never serialized
// into failure traces, and replay always runs serial.
enum class ExecutionMode { kSerial, kSplit };

// kSplit only: which partition the topology-driven partitioner derives.
// kPair is the historical two-way cut (compute node in one domain, switch +
// memory/spot machines in the other); kPerNode gives every topology node —
// compute, switch, memory, spot — a domain of its own, the N-way partition
// the rack-scale fabrics use. kPacked runs the per-node domains through
// net::PackDomains under a fixed budget of 2, with a static kind-weight
// rate vector (the switch heaviest) standing in for profiled event rates —
// exercising the packed-partition datapath on every chaos scenario. All
// three scopes are outcome-equivalent: the scope is never serialized into
// failure traces, and replay always runs serial.
enum class SplitScope { kPair, kPerNode, kPacked };

struct ChaosOptions {
  EngineKind engine = EngineKind::kSpot;
  std::uint64_t seed = 1;
  // TEST-ONLY: runs the engines with their read-after-write fence disabled,
  // to prove the checker catches the resulting stale reads.
  bool break_fence = false;
  WorkloadParams workload;
  FaultPlan plan;
  ExecutionMode mode = ExecutionMode::kSerial;
  SplitScope split_scope = SplitScope::kPair;
  // kSplit only: worker threads for the domain group (0 → hardware
  // concurrency). Split runs are bit-deterministic for any worker count.
  int split_workers = 1;
  // kSplit only: the epoch-horizon policy. Outcomes are policy-invariant
  // (the banded cross-event keys make delivery order a pure function of
  // published state); kGlobalMin stays selectable so tests can pin that
  // equivalence on full chaos runs.
  sim::HorizonPolicy horizon_policy = sim::HorizonPolicy::kPerEdge;
};

struct ChaosResult {
  std::vector<OpRecord> history;
  std::vector<Violation> violations;
  std::uint64_t reads_checked = 0;
  std::uint64_t writes_completed = 0;
  // Fault-injection audit: decisions made, and whether the links' fault
  // counters match them exactly.
  std::uint64_t faults_injected = 0;
  bool counters_exact = true;
  // Per-bucket decision counts from the injector, so an external audit
  // (e.g. against telemetry link gauges) can match bucket by bucket.
  std::uint64_t decided_dropped = 0;
  std::uint64_t decided_duplicated = 0;
  std::uint64_t decided_reordered = 0;
  std::uint64_t decided_delayed = 0;
  std::uint64_t crashes_executed = 0;
  // Live-migration observability (all zero when the plan does not migrate):
  // completed copy-then-cutover handoffs, bytes the migrator moved (initial
  // pass + dirty chase + drain), and chunks the dirty chase re-copied
  // because application writes raced the copy.
  std::uint64_t migrations_executed = 0;
  std::uint64_t migrate_bytes_copied = 0;
  std::uint64_t migrate_dirty_marks = 0;
  // Congestion observability (all zero when the plan's scenario is kNone).
  std::uint64_t ecn_marked = 0;       // CE rewrites at the switch
  std::uint64_t pfc_pauses = 0;       // pause frames the switch originated
  std::uint64_t link_pauses = 0;      // pauses honored across fabric links
  std::uint64_t cnps = 0;             // CNPs received across every NIC
  // Metric snapshot taken just before teardown when RunChaos was given a
  // hub (empty otherwise). Teardown unbinds every per-run gauge — the links
  // and engines die with the harness — so this is the instrumented run's
  // complete observable state.
  telemetry::Snapshot telemetry;

  bool Passed() const { return violations.empty() && counters_exact; }
};

// Canonical options for one run of the CI seed sweep: the fixed workload
// shape plus the seed-derived fault plan (crashes on odd seeds). Shared by
// the chaos_sweep driver and the datapath parity test, which pins the
// byte-exact outcomes of an 8-seed sweep across allocator-path changes —
// both must derive a seed's run from the same recipe or the pin is
// meaningless.
ChaosOptions SweepOptions(EngineKind engine, std::uint64_t seed,
                          bool break_fence = false);

// When `hub` is non-null the run is fully instrumented: the tracer's clock
// is re-seated onto the run's private simulation, the client and engines
// receive the hub (op-lifecycle spans, engine gauges), and every fabric
// link is bound to the registry with a {"link": <name>} label so the fault
// counters in a snapshot can be audited against the decided_* counts.
ChaosResult RunChaos(const ChaosOptions& options,
                     telemetry::Hub* hub = nullptr);

}  // namespace cowbird::chaos
