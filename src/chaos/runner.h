// The chaos harness: one deterministic run of client workload + engine(s)
// + fault plan, with a checked operation history.
//
// A run stands up the testbed topology (compute + memory + spot node on one
// switch), an InstanceRegistry over the chosen primary engine plus spot
// standbys, and a multi-threaded client workload that records every
// operation into a HistoryRecorder. The FaultPlan drives a FaultInjector on
// every fabric link and schedules engine crashes: a crash halts the serving
// engine's QPs mid-flight (no drain, zombie retransmissions killed) and
// migrates the instance through the registry to a standby, reconciling the
// crash-exported snapshot against the client's published red block.
//
// Everything is derived from ChaosOptions — same options, same result,
// bit for bit — which is what makes failure traces replayable.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "chaos/fault_plan.h"
#include "chaos/history.h"

namespace cowbird::chaos {

enum class EngineKind { kSpot, kP4 };

const char* EngineKindName(EngineKind kind);
std::optional<EngineKind> ParseEngineKind(std::string_view name);

struct WorkloadParams {
  int threads = 2;
  int slots_per_thread = 4;  // distinct 4KiB-spaced addresses per thread
  std::uint32_t len = 128;   // record length (<= 4096)
  int ops_per_thread = 300;
  double write_ratio = 0.4;
  int max_outstanding = 8;

  std::string Serialize() const;
  static std::optional<WorkloadParams> Parse(std::string_view line);
};

struct ChaosOptions {
  EngineKind engine = EngineKind::kSpot;
  std::uint64_t seed = 1;
  // TEST-ONLY: runs the engines with their read-after-write fence disabled,
  // to prove the checker catches the resulting stale reads.
  bool break_fence = false;
  WorkloadParams workload;
  FaultPlan plan;
};

struct ChaosResult {
  std::vector<OpRecord> history;
  std::vector<Violation> violations;
  std::uint64_t reads_checked = 0;
  std::uint64_t writes_completed = 0;
  // Fault-injection audit: decisions made, and whether the links' fault
  // counters match them exactly.
  std::uint64_t faults_injected = 0;
  bool counters_exact = true;
  std::uint64_t crashes_executed = 0;

  bool Passed() const { return violations.empty() && counters_exact; }
};

ChaosResult RunChaos(const ChaosOptions& options);

}  // namespace cowbird::chaos
