#include "chaos/sweep.h"

#include <cstdarg>
#include <cstdio>
#include <filesystem>
#include <optional>

#include "chaos/trace.h"
#include "sim/parallel.h"

namespace cowbird::chaos {
namespace {

void Appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

// Writes the failure trace for one run and reports the path (empty on IO
// failure, with the error appended to the report).
std::string DumpTrace(const std::string& trace_dir, const ChaosOptions& opt,
                      const ChaosResult& result, std::string& report) {
  std::error_code ec;  // best-effort: WriteTraceFile reports the failure
  std::filesystem::create_directories(trace_dir, ec);
  const std::string path = trace_dir + "/chaos-trace-" +
                           EngineKindName(opt.engine) + "-seed" +
                           std::to_string(opt.seed) + ".txt";
  if (!WriteTraceFile(path, MakeTrace(opt, result))) {
    Appendf(report, "chaos_sweep: cannot write trace %s\n", path.c_str());
    return {};
  }
  return path;
}

}  // namespace

SweepOutcome RunSweep(const SweepConfig& config) {
  struct Item {
    EngineKind engine = EngineKind::kSpot;
    std::uint64_t seed = 0;
  };
  std::vector<Item> items;
  for (const EngineKind engine : config.engines) {
    for (std::uint64_t seed = config.start; seed < config.start + config.seeds;
         ++seed) {
      items.push_back({engine, seed});
    }
  }

  struct RunRecord {
    ChaosOptions opt;
    ChaosResult result;
  };
  std::vector<RunRecord> records(items.size());
  const int jobs = config.jobs > 0 ? config.jobs : sim::HardwareJobs();
  sim::ParallelFor(jobs, static_cast<int>(items.size()), [&](int i) {
    const auto index = static_cast<std::size_t>(i);
    ChaosOptions opt = SweepOptions(items[index].engine, items[index].seed,
                                    config.break_fence);
    opt.plan.congestion = config.congestion;
    opt.plan.migrate = config.migrate;
    if (config.split) {
      opt.mode = ExecutionMode::kSplit;
      opt.split_scope = config.split_scope;
      opt.split_workers = config.split_workers;
    }
    records[index].opt = opt;
    records[index].result = RunChaos(opt);
  });

  // Serial post-pass in (engine, seed) order: every byte of the report —
  // and the side effects (trace files, the break-fence replay) — is
  // independent of how many jobs ran the sweep.
  SweepOutcome out;
  for (const RunRecord& rec : records) {
    const EngineKind engine = rec.opt.engine;
    const std::uint64_t seed = rec.opt.seed;
    ++out.runs;
    if (!rec.result.counters_exact) {
      Appendf(out.report, "FAIL engine=%s seed=%llu: fault counters inexact\n",
              EngineKindName(engine),
              static_cast<unsigned long long>(seed));
      ++out.failures;
    }
    if (config.migrate && rec.result.migrations_executed != 1) {
      Appendf(out.report,
              "FAIL engine=%s seed=%llu: migration did not cut over "
              "(%llu completed)\n",
              EngineKindName(engine), static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(
                  rec.result.migrations_executed));
      ++out.failures;
    }
    if (config.break_fence) {
      if (rec.result.violations.empty()) continue;
      ++out.caught;
      if (out.caught == 1) {
        // Prove the capture→replay loop on the first caught violation.
        // Replay always re-runs serial (the mode is not part of the trace).
        const std::string path =
            DumpTrace(config.trace_dir, rec.opt, rec.result, out.report);
        const auto loaded =
            path.empty() ? std::nullopt : ReadTraceFile(path);
        if (!loaded.has_value()) {
          out.replay_ok = false;
        } else {
          const ReplayOutcome outcome = ReplayTrace(*loaded);
          out.replay_ok = outcome.deterministic;
          Appendf(out.report,
                  "caught engine=%s seed=%llu (%zu violations), replay %s: "
                  "%s\n",
                  EngineKindName(engine),
                  static_cast<unsigned long long>(seed),
                  rec.result.violations.size(),
                  outcome.deterministic ? "deterministic" : "MISMATCH",
                  path.c_str());
          if (!outcome.deterministic) {
            out.report += outcome.mismatch;
            out.report += '\n';
          }
        }
      }
      continue;
    }
    if (!rec.result.violations.empty()) {
      ++out.failures;
      const std::string path =
          DumpTrace(config.trace_dir, rec.opt, rec.result, out.report);
      Appendf(out.report,
              "FAIL engine=%s seed=%llu: %zu violations (reads=%llu "
              "crashes=%llu)\n  repro: COWBIRD_TEST_SEED=%llu or "
              "chaos_replay %s\n",
              EngineKindName(engine), static_cast<unsigned long long>(seed),
              rec.result.violations.size(),
              static_cast<unsigned long long>(rec.result.reads_checked),
              static_cast<unsigned long long>(rec.result.crashes_executed),
              static_cast<unsigned long long>(seed), path.c_str());
      for (const Violation& v : rec.result.violations) {
        out.report += "    " + v.Format() + "\n";
      }
    }
  }

  if (config.break_fence) {
    Appendf(out.report,
            "chaos_sweep --break-fence: %llu/%llu seeds caught the planted "
            "bug, replay %s\n",
            static_cast<unsigned long long>(out.caught),
            static_cast<unsigned long long>(out.runs),
            out.replay_ok ? "ok" : "FAILED");
    out.ok = out.caught > 0 && out.replay_ok && out.failures == 0;
  } else {
    Appendf(out.report, "chaos_sweep: %llu runs, %llu failures\n",
            static_cast<unsigned long long>(out.runs),
            static_cast<unsigned long long>(out.failures));
    out.ok = out.failures == 0;
  }
  return out;
}

}  // namespace cowbird::chaos
