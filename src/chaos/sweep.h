// Parallel chaos seed-sweep executor.
//
// RunSweep expands (engines × seeds) into independent chaos runs and
// executes them on a sim::ParallelFor pool. Each run is bit-deterministic
// on its own, results are kept in work-item order, and all reporting — the
// textual report, failure-trace dumps, and the break-fence capture→replay
// proof — happens in a serial post-pass in (engine, seed) order. The
// aggregated report is therefore byte-identical for any --jobs value,
// which tests/CI pin.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/runner.h"

namespace cowbird::chaos {

struct SweepConfig {
  std::vector<EngineKind> engines = {EngineKind::kSpot, EngineKind::kP4};
  std::uint64_t seeds = 8;
  std::uint64_t start = 1;
  // Failure traces land here (created on demand). The default is a
  // .gitignore'd directory so an interrupted local sweep never leaves
  // chaos-trace-*.txt litter in the repo root.
  std::string trace_dir = "chaos-traces";
  bool break_fence = false;
  // Concurrent runs (0 → hardware concurrency). Parallelism only changes
  // wall-clock time, never the report.
  int jobs = 0;
  // Run every simulation domain-split (ExecutionMode::kSplit) instead of
  // serial. Split runs exercise the same scenarios through the parallel
  // datapath; the golden-pinned byte-exact outcomes belong to serial mode.
  bool split = false;
  // Partition shape when split: the historical two-domain cut or one
  // domain per topology node (SplitScope::kPerNode) or the packed
  // two-domain partition (SplitScope::kPacked). Every scope produces the
  // same report bytes.
  SplitScope split_scope = SplitScope::kPair;
  int split_workers = 1;  // per-run workers when split (0 → hardware)
  // Layers a shared-fabric congestion scenario onto every seed's fault
  // plan. kNone leaves the plans untouched, so the report stays byte-
  // identical to a pre-congestion sweep.
  CongestionScenario congestion = CongestionScenario::kNone;
  // Layers the live-migration scenario (plan.migrate at its default start
  // time) onto every seed's fault plan, and requires every run to have
  // completed its cutover. False leaves the plans untouched.
  bool migrate = false;
};

struct SweepOutcome {
  std::uint64_t runs = 0;
  std::uint64_t failures = 0;
  std::uint64_t caught = 0;  // break-fence mode: seeds that caught the bug
  bool replay_ok = true;
  bool ok = false;  // the driver's pass/fail verdict
  // The complete human-readable report (per-run FAIL/caught lines plus the
  // final summary line), assembled in (engine, seed) order.
  std::string report;
};

SweepOutcome RunSweep(const SweepConfig& config);

}  // namespace cowbird::chaos
