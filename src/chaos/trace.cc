#include "chaos/trace.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace cowbird::chaos {
namespace {

constexpr const char* kMagic = "cowbird-chaos-trace v1";

std::string FormatOp(const OpRecord& op) {
  std::ostringstream out;
  out << op.id << ' ' << op.thread << ' ' << (op.is_write ? 'W' : 'R') << ' '
      << op.region << ' ' << op.offset << ' ' << op.length << ' '
      << op.invoke << ' ' << op.complete << ' ' << op.digest;
  return out.str();
}

std::optional<OpRecord> ParseOp(const std::string& line) {
  std::istringstream in(line);
  OpRecord op;
  char type = 0;
  if (!(in >> op.id >> op.thread >> type >> op.region >> op.offset >>
        op.length >> op.invoke >> op.complete >> op.digest)) {
    return std::nullopt;
  }
  op.is_write = type == 'W';
  return op;
}

}  // namespace

ChaosTrace MakeTrace(const ChaosOptions& options, const ChaosResult& result) {
  ChaosTrace trace;
  trace.options = options;
  for (const Violation& v : result.violations) {
    trace.violations.push_back(v.Format());
  }
  trace.history = result.history;
  return trace;
}

std::string SerializeTrace(const ChaosTrace& trace) {
  std::ostringstream out;
  out << kMagic << '\n';
  out << "engine " << EngineKindName(trace.options.engine) << '\n';
  out << "seed " << trace.options.seed << '\n';
  out << "break_fence " << (trace.options.break_fence ? 1 : 0) << '\n';
  out << "workload " << trace.options.workload.Serialize() << '\n';
  out << "plan " << trace.options.plan.Serialize() << '\n';
  out << "violations " << trace.violations.size() << '\n';
  for (const std::string& v : trace.violations) out << v << '\n';
  out << "history " << trace.history.size() << '\n';
  for (const OpRecord& op : trace.history) out << FormatOp(op) << '\n';
  out << "end\n";
  return out.str();
}

std::optional<ChaosTrace> ParseTrace(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kMagic) return std::nullopt;

  ChaosTrace trace;
  auto read_keyed = [&in, &line](const std::string& key,
                                 std::string& value) {
    if (!std::getline(in, line)) return false;
    if (line.rfind(key + ' ', 0) != 0) return false;
    value = line.substr(key.size() + 1);
    return true;
  };

  std::string value;
  if (!read_keyed("engine", value)) return std::nullopt;
  const auto engine = ParseEngineKind(value);
  if (!engine.has_value()) return std::nullopt;
  trace.options.engine = *engine;
  if (!read_keyed("seed", value)) return std::nullopt;
  trace.options.seed = std::strtoull(value.c_str(), nullptr, 10);
  if (!read_keyed("break_fence", value)) return std::nullopt;
  trace.options.break_fence = value == "1";
  if (!read_keyed("workload", value)) return std::nullopt;
  const auto workload = WorkloadParams::Parse(value);
  if (!workload.has_value()) return std::nullopt;
  trace.options.workload = *workload;
  if (!read_keyed("plan", value)) return std::nullopt;
  const auto plan = FaultPlan::Parse(value);
  if (!plan.has_value()) return std::nullopt;
  trace.options.plan = *plan;

  if (!read_keyed("violations", value)) return std::nullopt;
  const auto violation_count = std::strtoull(value.c_str(), nullptr, 10);
  for (std::uint64_t i = 0; i < violation_count; ++i) {
    if (!std::getline(in, line)) return std::nullopt;
    trace.violations.push_back(line);
  }
  if (!read_keyed("history", value)) return std::nullopt;
  const auto history_count = std::strtoull(value.c_str(), nullptr, 10);
  for (std::uint64_t i = 0; i < history_count; ++i) {
    if (!std::getline(in, line)) return std::nullopt;
    const auto op = ParseOp(line);
    if (!op.has_value()) return std::nullopt;
    trace.history.push_back(*op);
  }
  if (!std::getline(in, line) || line != "end") return std::nullopt;
  return trace;
}

bool WriteTraceFile(const std::string& path, const ChaosTrace& trace) {
  std::ofstream out(path);
  if (!out) return false;
  out << SerializeTrace(trace);
  return static_cast<bool>(out);
}

std::optional<ChaosTrace> ReadTraceFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseTrace(buffer.str());
}

ReplayOutcome ReplayTrace(const ChaosTrace& trace) {
  ReplayOutcome outcome;
  outcome.result = RunChaos(trace.options);
  std::vector<std::string> replayed;
  for (const Violation& v : outcome.result.violations) {
    replayed.push_back(v.Format());
  }
  if (replayed.size() != trace.violations.size()) {
    std::ostringstream mismatch;
    mismatch << "violation count differs: trace has "
             << trace.violations.size() << ", replay produced "
             << replayed.size();
    outcome.mismatch = mismatch.str();
    return outcome;
  }
  for (std::size_t i = 0; i < replayed.size(); ++i) {
    if (replayed[i] != trace.violations[i]) {
      std::ostringstream mismatch;
      mismatch << "violation " << i << " differs:\n  trace:  "
               << trace.violations[i] << "\n  replay: " << replayed[i];
      outcome.mismatch = mismatch.str();
      return outcome;
    }
  }
  outcome.deterministic = true;
  return outcome;
}

}  // namespace cowbird::chaos
