// Failure-trace capture and deterministic replay.
//
// When a chaos run's checker finds violations, the run is dumped to a
// line-based text trace: everything needed to re-execute it (engine, seed,
// fence knob, workload, fault plan) plus everything needed to audit it
// offline (the violations and the full operation history). ReplayTrace
// parses the reproduction header, re-runs RunChaos, and verifies the rerun
// produces the *identical* violations — the determinism claim the whole
// harness rests on, and the repro workflow for a red seed-sweep shard.
#pragma once

#include <optional>
#include <string>

#include "chaos/runner.h"

namespace cowbird::chaos {

struct ChaosTrace {
  ChaosOptions options;
  std::vector<std::string> violations;  // Violation::Format() lines
  std::vector<OpRecord> history;
};

ChaosTrace MakeTrace(const ChaosOptions& options, const ChaosResult& result);

std::string SerializeTrace(const ChaosTrace& trace);
std::optional<ChaosTrace> ParseTrace(const std::string& text);

// Convenience file forms (empty path / failed IO reported via false /
// nullopt).
bool WriteTraceFile(const std::string& path, const ChaosTrace& trace);
std::optional<ChaosTrace> ReadTraceFile(const std::string& path);

struct ReplayOutcome {
  bool deterministic = false;  // rerun produced the identical violations
  ChaosResult result;          // the rerun's result
  std::string mismatch;        // first difference when !deterministic
};

ReplayOutcome ReplayTrace(const ChaosTrace& trace);

}  // namespace cowbird::chaos
