// Lightweight invariant checking used across the Cowbird codebase.
//
// CHECK() is always on: simulator correctness depends on invariants that are
// cheap relative to event dispatch, and a silently-corrupt simulation is worse
// than an aborted one. DCHECK() compiles out in release builds and is meant
// for hot paths (per-packet, per-ring-slot).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace cowbird {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace cowbird

#define COWBIRD_CHECK(expr)                             \
  do {                                                  \
    if (!(expr)) [[unlikely]] {                         \
      ::cowbird::CheckFailed(#expr, __FILE__, __LINE__); \
    }                                                   \
  } while (0)

#define CHECK_COWBIRD COWBIRD_CHECK  // alias guard against macro collisions

#ifndef NDEBUG
#define COWBIRD_DCHECK(expr) COWBIRD_CHECK(expr)
#else
#define COWBIRD_DCHECK(expr) \
  do {                       \
  } while (0)
#endif
