// Move-only callable with inline storage, for the event-queue hot path.
//
// Every simulated packet hop schedules at least one event, and
// std::function's small-buffer optimization (16 bytes in libstdc++) cannot
// hold a lambda that captures a Packet — so with std::function the event
// queue heap-allocates per event, which is most of the allocator traffic in
// the whole simulator. InlineFunction stores callables up to `Cap` bytes in
// place; larger ones are boxed on the heap (correct, just not free), so no
// call site can break by growing its capture. Unlike std::function it is
// move-only, which lets events capture move-only types (pooled packet
// buffers) in the first place.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "common/check.h"

namespace cowbird {

template <typename Sig, std::size_t Cap = 64>
class InlineFunction;

template <typename R, typename... Args, std::size_t Cap>
class InlineFunction<R(Args...), Cap> {
 public:
  InlineFunction() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<
                std::decay_t<F>, InlineFunction>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    Emplace(std::forward<F>(f));
  }

  InlineFunction(InlineFunction&& other) noexcept { MoveFrom(other); }
  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }
  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { Reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  R operator()(Args... args) {
    COWBIRD_DCHECK(ops_ != nullptr);
    return ops_->call(storage_, std::forward<Args>(args)...);
  }

 private:
  // One static vtable per stored callable type: invoke, relocate (move into
  // fresh storage + destroy source), destroy.
  struct Ops {
    R (*call)(void*, Args&&...);
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename F>
  void Emplace(F&& f) {
    using Decayed = std::decay_t<F>;
    if constexpr (sizeof(Decayed) <= Cap &&
                  alignof(Decayed) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Decayed>) {
      ::new (static_cast<void*>(storage_)) Decayed(std::forward<F>(f));
      static const Ops ops = {
          [](void* s, Args&&... args) -> R {
            return (*std::launder(reinterpret_cast<Decayed*>(s)))(
                std::forward<Args>(args)...);
          },
          [](void* dst, void* src) noexcept {
            Decayed* from = std::launder(reinterpret_cast<Decayed*>(src));
            ::new (dst) Decayed(std::move(*from));
            from->~Decayed();
          },
          [](void* s) noexcept {
            std::launder(reinterpret_cast<Decayed*>(s))->~Decayed();
          },
      };
      ops_ = &ops;
    } else {
      // Boxed fallback: the box pointer lives inline, the callable on the
      // heap. Keeps oversized captures working while the common case stays
      // allocation-free.
      using Box = Decayed*;
      ::new (static_cast<void*>(storage_))
          Box(new Decayed(std::forward<F>(f)));
      static const Ops ops = {
          [](void* s, Args&&... args) -> R {
            return (**std::launder(reinterpret_cast<Box*>(s)))(
                std::forward<Args>(args)...);
          },
          [](void* dst, void* src) noexcept {
            Box* from = std::launder(reinterpret_cast<Box*>(src));
            ::new (dst) Box(*from);
            from->~Box();
          },
          [](void* s) noexcept {
            Box* box = std::launder(reinterpret_cast<Box*>(s));
            delete *box;
            box->~Box();
          },
      };
      ops_ = &ops;
    }
  }

  void MoveFrom(InlineFunction& other) noexcept {
    if (other.ops_ == nullptr) return;
    other.ops_->relocate(storage_, other.storage_);
    ops_ = other.ops_;
    other.ops_ = nullptr;
  }

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[Cap];
  const Ops* ops_ = nullptr;
};

}  // namespace cowbird
