// Allocation-free building blocks for the simulated datapath.
//
// The simulator's throughput is our stand-in for line rate, and a datapath
// that heap-allocates per packet/WQE/op is bounded by the allocator rather
// than the protocol (the same argument Clio and Tiara make about real
// offload hardware). Everything here trades malloc/free for recycled slots:
//
//   * Pool<T>      — free-list object pool with generation-tagged handles.
//                    A handle names (slot, generation); a stale handle of a
//                    recycled slot is detected, not silently honored
//                    (ABA-safe use-after-free detection). Fixed-capacity
//                    pools report exhaustion (null handle + counter);
//                    growable pools add slabs, keeping slot addresses
//                    stable forever.
//   * BufferArena  — bump allocator for short-lived payload scratch; Reset()
//                    reclaims everything at a phase boundary.
//   * FixedDeque<T>— ring-buffer deque for the protocol FIFOs (WQE queues,
//                    CQ entries, switch egress queues). Steady-state
//                    push/pop never touches the allocator, unlike
//                    std::deque's block churn.
//   * DenseMap<V>  — open-addressed uint64-key map for hot lookups (batch
//                    tokens) that the tree map's node-per-entry would
//                    otherwise heap-allocate.
//
// None of these are thread-safe; a simulation is single-threaded by design.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/units.h"

namespace cowbird {

// Names one live object in a Pool. The generation tag makes a recycled
// slot's old handles detectably stale instead of aliasing the new tenant.
struct PoolHandle {
  static constexpr std::uint32_t kInvalidIndex = 0xFFFF'FFFFu;

  std::uint32_t index = kInvalidIndex;
  std::uint32_t generation = 0;

  bool IsNull() const { return index == kInvalidIndex; }
  explicit operator bool() const { return !IsNull(); }
  friend bool operator==(const PoolHandle&, const PoolHandle&) = default;
};

// Counters every pool exposes; surfaced as registry gauges (pool_in_use,
// pool_high_water, pool_exhausted_total) by BindPoolTelemetry below.
struct PoolStats {
  std::uint64_t in_use = 0;
  std::uint64_t high_water = 0;
  std::uint64_t exhausted_total = 0;
};

template <typename T>
class Pool {
 public:
  // `capacity` slots are reserved up front (one allocation, not per
  // object). A growable pool adds same-sized slabs instead of exhausting;
  // addresses stay stable across growth because slabs are never moved.
  explicit Pool(std::size_t capacity, bool growable = false)
      : slab_slots_(capacity == 0 ? 1 : capacity), growable_(growable) {
    AddSlab();
  }
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;
  ~Pool() {
    for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(slots_.size());
         ++i) {
      if (slots_[i]->live) Destroy(*slots_[i]);
    }
  }

  // Constructs an object in a free slot. Returns the null handle (and bumps
  // exhausted_total) when a fixed-capacity pool is full.
  template <typename... Args>
  PoolHandle Acquire(Args&&... args) {
    if (free_.empty()) {
      if (!growable_ || !AddSlab()) {
        ++stats_.exhausted_total;
        return PoolHandle{};
      }
    }
    const std::uint32_t index = free_.back();
    free_.pop_back();
    Slot& slot = *slots_[index];
    ::new (static_cast<void*>(slot.storage)) T(std::forward<Args>(args)...);
    slot.live = true;
    ++stats_.in_use;
    if (stats_.in_use > stats_.high_water) stats_.high_water = stats_.in_use;
    return PoolHandle{index, slot.generation};
  }

  // Dereferences a handle, CHECK-failing on a stale generation: touching a
  // recycled slot through an old handle is a use-after-free, and a corrupt
  // simulation is worse than an aborted one.
  T* Get(PoolHandle handle) {
    COWBIRD_CHECK(Valid(handle));
    return Ptr(handle.index);
  }
  const T* Get(PoolHandle handle) const {
    COWBIRD_CHECK(Valid(handle));
    return Ptr(handle.index);
  }

  // Null for stale/null handles (the tolerant form: lazy timer
  // cancellation, dropped completions).
  T* TryGet(PoolHandle handle) {
    return Valid(handle) ? Ptr(handle.index) : nullptr;
  }

  bool Valid(PoolHandle handle) const {
    return !handle.IsNull() && handle.index < slots_.size() &&
           slots_[handle.index]->live &&
           slots_[handle.index]->generation == handle.generation;
  }

  // Destroys the object and recycles the slot under a new generation.
  void Release(PoolHandle handle) {
    COWBIRD_CHECK(Valid(handle));
    Slot& slot = *slots_[handle.index];
    Destroy(slot);
    ++slot.generation;
    free_.push_back(handle.index);
    --stats_.in_use;
  }

  const PoolStats& stats() const { return stats_; }
  std::size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    alignas(T) unsigned char storage[sizeof(T)];
    std::uint32_t generation = 0;
    bool live = false;
  };

  T* Ptr(std::uint32_t index) {
    return std::launder(reinterpret_cast<T*>(slots_[index]->storage));
  }
  const T* Ptr(std::uint32_t index) const {
    return std::launder(reinterpret_cast<const T*>(slots_[index]->storage));
  }
  void Destroy(Slot& slot) {
    std::launder(reinterpret_cast<T*>(slot.storage))->~T();
    slot.live = false;
  }

  bool AddSlab() {
    const std::size_t old = slots_.size();
    if (old + slab_slots_ > PoolHandle::kInvalidIndex) return false;
    auto slab = std::make_unique<Slot[]>(slab_slots_);
    free_.reserve(old + slab_slots_);
    slots_.reserve(old + slab_slots_);
    for (std::size_t i = 0; i < slab_slots_; ++i) {
      slots_.push_back(&slab[i]);
    }
    // LIFO free list: hand slots out in index order, lowest first.
    for (std::size_t i = old + slab_slots_; i > old; --i) {
      free_.push_back(static_cast<std::uint32_t>(i - 1));
    }
    slabs_.push_back(std::move(slab));
    return true;
  }

  std::size_t slab_slots_;
  bool growable_;
  std::vector<std::unique_ptr<Slot[]>> slabs_;  // stable slot storage
  std::vector<Slot*> slots_;                    // index → slot
  std::vector<std::uint32_t> free_;
  PoolStats stats_;
};

// Surfaces a pool's counters through a metric registry as callback gauges.
// Templated so common/ does not link against telemetry/: instantiated only
// where a registry type is already in scope (engines, benches, harnesses).
// The stats object must outlive the registry or be unregistered first.
template <typename Registry, typename Labels>
void BindPoolTelemetry(Registry& registry, const Labels& labels,
                       const PoolStats& stats) {
  registry.RegisterCallbackGauge("pool_in_use", labels, [&stats] {
    return static_cast<std::int64_t>(stats.in_use);
  });
  registry.RegisterCallbackGauge("pool_high_water", labels, [&stats] {
    return static_cast<std::int64_t>(stats.high_water);
  });
  registry.RegisterCallbackGauge("pool_exhausted_total", labels, [&stats] {
    return static_cast<std::int64_t>(stats.exhausted_total);
  });
}

template <typename Registry, typename Labels>
void UnbindPoolTelemetry(Registry& registry, const Labels& labels) {
  registry.UnregisterCallbackGauge("pool_in_use", labels);
  registry.UnregisterCallbackGauge("pool_high_water", labels);
  registry.UnregisterCallbackGauge("pool_exhausted_total", labels);
}

// Bump allocator for payload scratch whose lifetime ends at a well-defined
// boundary (one parse pass, one batch flush). Alloc is pointer arithmetic;
// Reset() reclaims the whole arena at once. Returns nullptr (and counts the
// exhaustion) when the fixed capacity would overflow — callers fall back to
// the heap and the gauge makes the misconfiguration visible.
class BufferArena {
 public:
  explicit BufferArena(Bytes capacity)
      : storage_(std::make_unique<std::uint8_t[]>(capacity)),
        capacity_(capacity) {}

  std::uint8_t* Alloc(Bytes len) {
    if (cursor_ + len > capacity_) {
      ++stats_.exhausted_total;
      return nullptr;
    }
    std::uint8_t* p = storage_.get() + cursor_;
    cursor_ += len;
    stats_.in_use = cursor_;
    if (cursor_ > stats_.high_water) stats_.high_water = cursor_;
    return p;
  }

  void Reset() {
    cursor_ = 0;
    stats_.in_use = 0;
  }

  Bytes used() const { return cursor_; }
  Bytes capacity() const { return capacity_; }
  const PoolStats& stats() const { return stats_; }  // in_use/high_water in bytes

 private:
  std::unique_ptr<std::uint8_t[]> storage_;
  Bytes capacity_;
  Bytes cursor_ = 0;
  PoolStats stats_;
};

// Ring-buffer deque for the protocol FIFOs. Grows by doubling (amortized,
// and only until the workload's high-water mark); steady-state push/pop is
// index arithmetic with zero allocator traffic. Indexing is front-relative:
// [0] is the front, [size()-1] the back — matching how the QP and engine
// code walks std::deque today. Growth moves elements, so do not hold
// pointers into a FixedDeque across a push (pool handles exist for that).
template <typename T>
class FixedDeque {
 public:
  FixedDeque() = default;
  explicit FixedDeque(std::size_t initial_capacity) {
    Reserve(initial_capacity);
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  // Storage is a raw T[] (not std::vector<T>) so FixedDeque<bool> hands out
  // real references instead of vector<bool>'s proxy.
  T& operator[](std::size_t i) {
    COWBIRD_DCHECK(i < size_);
    return ring_[Mask(head_ + i)];
  }
  const T& operator[](std::size_t i) const {
    COWBIRD_DCHECK(i < size_);
    return ring_[Mask(head_ + i)];
  }
  T& front() { return (*this)[0]; }
  const T& front() const { return (*this)[0]; }
  T& back() { return (*this)[size_ - 1]; }
  const T& back() const { return (*this)[size_ - 1]; }

  void push_back(T value) {
    if (size_ == cap_) Grow();
    ring_[Mask(head_ + size_)] = std::move(value);
    ++size_;
  }
  void pop_front() {
    COWBIRD_DCHECK(size_ > 0);
    ring_[Mask(head_)] = T{};
    head_ = Mask(head_ + 1);
    --size_;
  }
  void pop_back() {
    COWBIRD_DCHECK(size_ > 0);
    ring_[Mask(head_ + size_ - 1)] = T{};
    --size_;
  }

  // Removes element i, preserving order (shifts the shorter side). Rare
  // path: only the priority-scheduling link scan uses it.
  void erase_at(std::size_t i) {
    COWBIRD_DCHECK(i < size_);
    if (i <= size_ / 2) {
      for (std::size_t k = i; k > 0; --k) {
        (*this)[k] = std::move((*this)[k - 1]);
      }
      pop_front();
    } else {
      for (std::size_t k = i; k + 1 < size_; ++k) {
        (*this)[k] = std::move((*this)[k + 1]);
      }
      pop_back();
    }
  }

  void clear() {
    while (size_ > 0) pop_front();
    head_ = 0;
  }

  void Reserve(std::size_t capacity) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    if (cap > cap_) Rebuild(cap);
  }

  // Minimal iterator support (range-for over [front, back]).
  template <typename Deque, typename Ref>
  struct Iter {
    Deque* dq;
    std::size_t i;
    Ref operator*() const { return (*dq)[i]; }
    Iter& operator++() {
      ++i;
      return *this;
    }
    bool operator!=(const Iter& other) const { return i != other.i; }
  };
  auto begin() { return Iter<FixedDeque, T&>{this, 0}; }
  auto end() { return Iter<FixedDeque, T&>{this, size_}; }
  auto begin() const { return Iter<const FixedDeque, const T&>{this, 0}; }
  auto end() const { return Iter<const FixedDeque, const T&>{this, size_}; }

 private:
  std::size_t Mask(std::size_t i) const { return i & (cap_ - 1); }

  void Grow() { Rebuild(cap_ == 0 ? 8 : cap_ * 2); }

  void Rebuild(std::size_t cap) {
    auto next = std::make_unique<T[]>(cap);
    for (std::size_t i = 0; i < size_; ++i) {
      next[i] = std::move((*this)[i]);
    }
    ring_ = std::move(next);
    cap_ = cap;
    head_ = 0;
  }

  std::unique_ptr<T[]> ring_;  // power-of-two capacity
  std::size_t cap_ = 0;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

// Open-addressed uint64→V map with linear probing and backward-shift
// deletion. For hot-path lookups keyed by dense tokens (batch wr_ids) where
// std::map would heap-allocate a node per entry. No iteration API on
// purpose: nothing behavior-relevant may depend on hash order.
template <typename V>
class DenseMap {
 public:
  explicit DenseMap(std::size_t initial_capacity = 16) {
    std::size_t cap = 4;
    while (cap < initial_capacity) cap <<= 1;
    slots_.resize(cap);
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  V& operator[](std::uint64_t key) {
    if ((size_ + 1) * 4 >= slots_.size() * 3) Grow();
    std::size_t i = Probe(key);
    if (!slots_[i].used) {
      slots_[i].used = true;
      slots_[i].key = key;
      ++size_;
    }
    return slots_[i].value;
  }

  V* Find(std::uint64_t key) {
    const std::size_t i = Probe(key);
    return slots_[i].used ? &slots_[i].value : nullptr;
  }

  bool Erase(std::uint64_t key) {
    std::size_t i = Probe(key);
    if (!slots_[i].used) return false;
    // Backward-shift deletion keeps probe chains contiguous without
    // tombstones (which would otherwise accumulate under token churn).
    std::size_t hole = i;
    slots_[hole] = Slot{};
    --size_;
    for (std::size_t j = Mask(hole + 1); slots_[j].used; j = Mask(j + 1)) {
      const std::size_t home = Mask(Hash(slots_[j].key));
      const bool movable = Mask(j - home) >= Mask(j - hole);
      if (movable) {
        slots_[hole] = std::move(slots_[j]);
        slots_[j] = Slot{};
        hole = j;
      }
    }
    return true;
  }

  void clear() {
    for (auto& slot : slots_) slot = Slot{};
    size_ = 0;
  }

 private:
  struct Slot {
    std::uint64_t key = 0;
    V value{};
    bool used = false;
  };

  static std::uint64_t Hash(std::uint64_t key) {
    // splitmix64 finalizer: tokens are sequential, spread them.
    key ^= key >> 30;
    key *= 0xBF58476D1CE4E5B9ull;
    key ^= key >> 27;
    key *= 0x94D049BB133111EBull;
    return key ^ (key >> 31);
  }

  std::size_t Mask(std::size_t i) const { return i & (slots_.size() - 1); }

  void Grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.clear();
    slots_.resize(old.size() * 2);
    size_ = 0;
    for (auto& slot : old) {
      if (!slot.used) continue;
      slots_[Probe(slot.key)] = std::move(slot);
      ++size_;
    }
  }

  // First slot that either holds `key` or is free along its probe chain.
  std::size_t Probe(std::uint64_t key) const {
    std::size_t i = Mask(Hash(key));
    while (slots_[i].used && slots_[i].key != key) i = Mask(i + 1);
    return i;
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace cowbird
