// Arithmetic for the circular buffers of Section 4.2.
//
// Cowbird's rings use *monotonic* 64-bit head/tail cursors: the cursor value
// never wraps (2^64 ns-scale operations outlive any run), and the physical
// slot is cursor % capacity. This makes fullness/emptiness unambiguous
// without a reserved empty slot and lets the offload engine reason about
// progress with plain integer comparison — exactly the property Section 4.3
// relies on for lock-free coordination.
#pragma once

#include <cstdint>

#include "common/check.h"

namespace cowbird {

// Cursor bookkeeping for a ring of `capacity` fixed-size slots.
// Producer owns `tail`, consumer owns `head`; both only ever increase.
class RingCursors {
 public:
  RingCursors() = default;
  explicit RingCursors(std::uint64_t capacity) : capacity_(capacity) {
    COWBIRD_CHECK(capacity > 0);
  }

  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t head() const { return head_; }
  std::uint64_t tail() const { return tail_; }

  std::uint64_t Size() const { return tail_ - head_; }
  bool Empty() const { return head_ == tail_; }
  bool Full() const { return Size() == capacity_; }
  std::uint64_t Free() const { return capacity_ - Size(); }

  // Physical slot index for a cursor value.
  std::uint64_t Slot(std::uint64_t cursor) const { return cursor % capacity_; }

  // Producer: reserve one slot; returns the cursor of the reserved slot.
  std::uint64_t Push() {
    COWBIRD_DCHECK(!Full());
    return tail_++;
  }
  // Consumer: release one slot; returns the cursor of the released slot.
  std::uint64_t Pop() {
    COWBIRD_DCHECK(!Empty());
    return head_++;
  }

  void AdvanceHeadTo(std::uint64_t new_head) {
    COWBIRD_CHECK(new_head >= head_ && new_head <= tail_);
    head_ = new_head;
  }
  void AdvanceTailTo(std::uint64_t new_tail) {
    COWBIRD_CHECK(new_tail >= tail_ && new_tail - head_ <= capacity_);
    tail_ = new_tail;
  }

 private:
  std::uint64_t capacity_ = 1;
  std::uint64_t head_ = 0;
  std::uint64_t tail_ = 0;
};

// Byte-granularity ring (for the request/response *data* buffers, whose
// entries are variable length). Same monotonic-cursor discipline, but
// reservations span byte ranges. A range may wrap the physical end of the
// buffer; SplitSpan() exposes the (at most two) contiguous pieces.
class ByteRing {
 public:
  ByteRing() = default;
  explicit ByteRing(std::uint64_t capacity_bytes) : capacity_(capacity_bytes) {
    COWBIRD_CHECK(capacity_bytes > 0);
  }

  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t head() const { return head_; }
  std::uint64_t tail() const { return tail_; }
  std::uint64_t Used() const { return tail_ - head_; }
  std::uint64_t Free() const { return capacity_ - Used(); }

  bool CanReserve(std::uint64_t len) const { return Free() >= len; }

  // Reserve `len` bytes; returns the starting cursor of the reservation.
  std::uint64_t Reserve(std::uint64_t len) {
    COWBIRD_DCHECK(CanReserve(len));
    const std::uint64_t at = tail_;
    tail_ += len;
    return at;
  }

  void Release(std::uint64_t len) {
    COWBIRD_DCHECK(Used() >= len);
    head_ += len;
  }

  void AdvanceHeadTo(std::uint64_t new_head) {
    COWBIRD_CHECK(new_head >= head_ && new_head <= tail_);
    head_ = new_head;
  }
  void AdvanceTailTo(std::uint64_t new_tail) {
    COWBIRD_CHECK(new_tail >= tail_ && new_tail - head_ <= capacity_);
    tail_ = new_tail;
  }

  struct Span {
    std::uint64_t offset;  // physical byte offset into the buffer
    std::uint64_t len;
  };
  struct SplitResult {
    Span first;
    Span second;  // len == 0 when the range does not wrap
  };

  SplitResult SplitSpan(std::uint64_t cursor, std::uint64_t len) const {
    COWBIRD_DCHECK(len <= capacity_);
    const std::uint64_t off = cursor % capacity_;
    if (off + len <= capacity_) {
      return {{off, len}, {0, 0}};
    }
    const std::uint64_t first_len = capacity_ - off;
    return {{off, first_len}, {0, len - first_len}};
  }

 private:
  std::uint64_t capacity_ = 1;
  std::uint64_t head_ = 0;
  std::uint64_t tail_ = 0;
};

}  // namespace cowbird
