// Deterministic, fast PRNG for workload generation and fault injection.
//
// xoshiro256** (Blackman & Vigna). We avoid std::mt19937 for speed and
// because we want identical streams across standard library versions —
// benchmark output must be reproducible bit-for-bit from a seed.
#pragma once

#include <cstdint>

#include "common/check.h"

namespace cowbird {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { Seed(seed); }

  // SplitMix64 expansion of a single seed word into the full state, as
  // recommended by the xoshiro authors.
  void Seed(std::uint64_t seed) {
    for (auto& word : state_) {
      seed += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). Uses Lemire's multiply-shift reduction;
  // the modulo bias is < 2^-64 * bound, negligible for simulation purposes.
  std::uint64_t Below(std::uint64_t bound) {
    COWBIRD_DCHECK(bound > 0);
    return static_cast<std::uint64_t>(
        (static_cast<__uint128_t>(Next()) * bound) >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::uint64_t Between(std::uint64_t lo, std::uint64_t hi) {
    COWBIRD_DCHECK(lo <= hi);
    return lo + Below(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace cowbird
