#include "common/sparse_memory.h"

#include <algorithm>

namespace cowbird {

std::uint8_t* SparseMemory::EnsurePage(std::uint64_t page_index) {
  CachedPage& slot = cache_[page_index % kCacheWays];
  if (slot.index == page_index) return slot.page;
  auto it = pages_.find(page_index);
  if (it == pages_.end()) {
    auto page = std::make_unique<std::uint8_t[]>(kPageSize);
    std::memset(page.get(), 0, kPageSize);
    it = pages_.emplace(page_index, std::move(page)).first;
  }
  slot = CachedPage{page_index, it->second.get()};
  return slot.page;
}

const std::uint8_t* SparseMemory::FindPage(std::uint64_t page_index) const {
  CachedPage& slot = cache_[page_index % kCacheWays];
  if (slot.index == page_index) return slot.page;
  auto it = pages_.find(page_index);
  if (it == pages_.end()) return nullptr;  // not cached: stays a miss until written
  slot = CachedPage{page_index, it->second.get()};
  return slot.page;
}

void SparseMemory::PreFault(std::uint64_t addr, Bytes len) {
  if (len <= 0) return;
  const std::uint64_t first = addr / kPageSize;
  const std::uint64_t last = (addr + static_cast<std::uint64_t>(len) - 1) / kPageSize;
  for (std::uint64_t page = first; page <= last; ++page) EnsurePage(page);
}

void SparseMemory::Write(std::uint64_t addr,
                         std::span<const std::uint8_t> data) {
  std::uint64_t pos = addr;
  std::size_t done = 0;
  while (done < data.size()) {
    const std::uint64_t page_index = pos / kPageSize;
    const std::uint64_t in_page = pos % kPageSize;
    const std::size_t chunk = static_cast<std::size_t>(
        std::min<std::uint64_t>(kPageSize - in_page, data.size() - done));
    std::memcpy(EnsurePage(page_index) + in_page, data.data() + done, chunk);
    pos += chunk;
    done += chunk;
  }
}

void SparseMemory::Read(std::uint64_t addr, std::span<std::uint8_t> out) const {
  std::uint64_t pos = addr;
  std::size_t done = 0;
  while (done < out.size()) {
    const std::uint64_t page_index = pos / kPageSize;
    const std::uint64_t in_page = pos % kPageSize;
    const std::size_t chunk = static_cast<std::size_t>(
        std::min<std::uint64_t>(kPageSize - in_page, out.size() - done));
    if (const std::uint8_t* page = FindPage(page_index)) {
      std::memcpy(out.data() + done, page + in_page, chunk);
    } else {
      std::memset(out.data() + done, 0, chunk);
    }
    pos += chunk;
    done += chunk;
  }
}

}  // namespace cowbird
