// Byte-addressable memory for simulated nodes.
//
// Node address spaces in the simulation can be large (a memory pool is tens
// of GiB in the paper), but benchmarks only touch a fraction. SparseMemory
// materializes 4 KiB pages on first write; reads of never-written memory
// return zeros, like fresh anonymous mappings.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <unordered_map>

#include "common/check.h"
#include "common/units.h"

namespace cowbird {

class SparseMemory {
 public:
  static constexpr std::uint64_t kPageSize = 4096;

  SparseMemory() = default;
  SparseMemory(const SparseMemory&) = delete;
  SparseMemory& operator=(const SparseMemory&) = delete;
  SparseMemory(SparseMemory&& other) noexcept : pages_(std::move(other.pages_)) {
    other.cache_ = {};
  }
  SparseMemory& operator=(SparseMemory&& other) noexcept {
    pages_ = std::move(other.pages_);
    cache_ = {};
    other.cache_ = {};
    return *this;
  }

  void Write(std::uint64_t addr, std::span<const std::uint8_t> data);
  void Read(std::uint64_t addr, std::span<std::uint8_t> out) const;

  // Materialize every page of [addr, addr+len) up front, the way an RDMA
  // stack pins a registered MR at ibv_reg_mr time. Contents are unchanged
  // (fresh pages read as zeros either way); this only moves the page
  // allocations out of the datapath and into setup.
  void PreFault(std::uint64_t addr, Bytes len);

  // Typed helpers for the fixed-width fields the protocol moves around.
  template <typename T>
  void WriteValue(std::uint64_t addr, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::uint8_t raw[sizeof(T)];
    std::memcpy(raw, &value, sizeof(T));
    Write(addr, std::span<const std::uint8_t>(raw, sizeof(T)));
  }

  template <typename T>
  T ReadValue(std::uint64_t addr) const {
    static_assert(std::is_trivially_copyable_v<T>);
    std::uint8_t raw[sizeof(T)];
    Read(addr, std::span<std::uint8_t>(raw, sizeof(T)));
    T value;
    std::memcpy(&value, raw, sizeof(T));
    return value;
  }

  std::size_t ResidentPages() const { return pages_.size(); }
  Bytes ResidentBytes() const { return pages_.size() * kPageSize; }

 private:
  using Page = std::unique_ptr<std::uint8_t[]>;

  std::uint8_t* EnsurePage(std::uint64_t page_index);
  const std::uint8_t* FindPage(std::uint64_t page_index) const;

  std::unordered_map<std::uint64_t, Page> pages_;
  // Direct-mapped cache over the page table. The datapath hammers a handful
  // of ring/staging pages per op, and the hash lookup was ~15% of simulator
  // wall time. Pages are never unmapped, so a cached pointer can only go
  // stale through move (handled above) — never through eviction.
  struct CachedPage {
    std::uint64_t index = ~std::uint64_t{0};
    std::uint8_t* page = nullptr;
  };
  static constexpr std::size_t kCacheWays = 32;
  mutable std::array<CachedPage, kCacheWays> cache_{};
};

}  // namespace cowbird
