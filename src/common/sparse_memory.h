// Byte-addressable memory for simulated nodes.
//
// Node address spaces in the simulation can be large (a memory pool is tens
// of GiB in the paper), but benchmarks only touch a fraction. SparseMemory
// materializes 4 KiB pages on first write; reads of never-written memory
// return zeros, like fresh anonymous mappings.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <unordered_map>

#include "common/check.h"
#include "common/units.h"

namespace cowbird {

class SparseMemory {
 public:
  static constexpr std::uint64_t kPageSize = 4096;

  SparseMemory() = default;
  SparseMemory(const SparseMemory&) = delete;
  SparseMemory& operator=(const SparseMemory&) = delete;
  SparseMemory(SparseMemory&&) = default;
  SparseMemory& operator=(SparseMemory&&) = default;

  void Write(std::uint64_t addr, std::span<const std::uint8_t> data);
  void Read(std::uint64_t addr, std::span<std::uint8_t> out) const;

  // Typed helpers for the fixed-width fields the protocol moves around.
  template <typename T>
  void WriteValue(std::uint64_t addr, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::uint8_t raw[sizeof(T)];
    std::memcpy(raw, &value, sizeof(T));
    Write(addr, std::span<const std::uint8_t>(raw, sizeof(T)));
  }

  template <typename T>
  T ReadValue(std::uint64_t addr) const {
    static_assert(std::is_trivially_copyable_v<T>);
    std::uint8_t raw[sizeof(T)];
    Read(addr, std::span<std::uint8_t>(raw, sizeof(T)));
    T value;
    std::memcpy(&value, raw, sizeof(T));
    return value;
  }

  std::size_t ResidentPages() const { return pages_.size(); }
  Bytes ResidentBytes() const { return pages_.size() * kPageSize; }

 private:
  using Page = std::unique_ptr<std::uint8_t[]>;

  std::uint8_t* EnsurePage(std::uint64_t page_index);
  const std::uint8_t* FindPage(std::uint64_t page_index) const;

  std::unordered_map<std::uint64_t, Page> pages_;
};

}  // namespace cowbird
