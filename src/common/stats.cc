#include "common/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/check.h"

namespace cowbird {

void OnlineStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double PercentileSampler::Quantile(double q) const {
  COWBIRD_CHECK(q >= 0.0 && q <= 1.0);
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double rank = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double PercentileSampler::Mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

void LogHistogram::Add(std::uint64_t value) {
  const int bucket = value == 0 ? 0 : 64 - std::countl_zero(value);
  static_assert(kBuckets == 65, "bucket index for bit-63 values is 64");
  ++buckets_[bucket];
  ++count_;
}

std::uint64_t LogHistogram::QuantileUpperBound(double q) const {
  if (count_ == 0) return 0;
  const auto target =
      static_cast<std::uint64_t>(q * static_cast<double>(count_));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen > target) {
      if (i == 0) return 0;       // bucket 0 holds only the value 0
      if (i >= 64) return ~0ull;  // 2^64 - 1 without shifting by 64
      return (1ull << i) - 1;
    }
  }
  return ~0ull;
}

std::string LogHistogram::ToString() const {
  std::string out;
  for (int i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    out += "[<2^" + std::to_string(i) + "]=" + std::to_string(buckets_[i]) +
           " ";
  }
  return out;
}

}  // namespace cowbird
