// Statistics collectors used by tests and the benchmark harness.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"

namespace cowbird {

// Streaming mean/variance/min/max (Welford).
class OnlineStats {
 public:
  void Add(double x);

  std::uint64_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Exact percentile sampler: stores every sample. Our benchmark runs collect
// at most a few million latency samples, so exactness is affordable and we
// avoid the bin-boundary artifacts of streaming sketches in the p99 plots.
class PercentileSampler {
 public:
  void Add(double x) {
    samples_.push_back(x);
    sorted_ = false;  // a cached sort no longer covers this sample
  }
  void Reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t count() const { return samples_.size(); }
  // q in [0, 1]; q=0.5 is the median. Linear interpolation between ranks.
  double Quantile(double q) const;
  double Median() const { return Quantile(0.5); }
  double P99() const { return Quantile(0.99); }
  double Mean() const;
  void Clear() {
    samples_.clear();
    sorted_ = false;
  }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

// Log-scaled latency histogram (power-of-two buckets) for cheap always-on
// distribution tracking inside the simulator.
class LogHistogram {
 public:
  // Bucket 0 counts only the value 0; bucket i>=1 counts [2^(i-1), 2^i).
  // Bucket 64 exists so values with bit 63 set (up to UINT64_MAX) land in a
  // real bucket instead of one past the array.
  static constexpr int kBuckets = 65;

  void Add(std::uint64_t value);
  std::uint64_t count() const { return count_; }
  std::uint64_t bucket(int i) const { return buckets_[i]; }
  // Upper bound of the bucket that contains quantile q.
  std::uint64_t QuantileUpperBound(double q) const;
  std::string ToString() const;

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
};

}  // namespace cowbird
