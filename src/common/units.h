// Strongly-named units for the simulation.
//
// All simulated time is in integer nanoseconds (Nanos). All data quantities
// are in bytes. Rates are expressed in bits per second and converted through
// the helpers below so that "how long does it take to serialize N bytes at
// R Gbps" is written exactly one way everywhere.
#pragma once

#include <cstdint>

namespace cowbird {

using Nanos = std::int64_t;   // virtual time / durations, ns
using Bytes = std::uint64_t;  // data sizes

constexpr Nanos kNanosPerMicro = 1'000;
constexpr Nanos kNanosPerMilli = 1'000'000;
constexpr Nanos kNanosPerSec = 1'000'000'000;

constexpr Nanos Micros(double us) {
  return static_cast<Nanos>(us * static_cast<double>(kNanosPerMicro));
}
constexpr Nanos Millis(double ms) {
  return static_cast<Nanos>(ms * static_cast<double>(kNanosPerMilli));
}
constexpr Nanos Seconds(double s) {
  return static_cast<Nanos>(s * static_cast<double>(kNanosPerSec));
}

constexpr Bytes KiB(Bytes n) { return n * 1024; }
constexpr Bytes MiB(Bytes n) { return n * 1024 * 1024; }
constexpr Bytes GiB(Bytes n) { return n * 1024 * 1024 * 1024; }

// A link/NIC rate in bits per second.
struct BitRate {
  std::uint64_t bits_per_sec = 0;

  static constexpr BitRate Gbps(double g) {
    return BitRate{static_cast<std::uint64_t>(g * 1e9)};
  }
  static constexpr BitRate Mbps(double m) {
    return BitRate{static_cast<std::uint64_t>(m * 1e6)};
  }

  // Time to push `bytes` onto the wire at this rate, rounded up to a whole
  // nanosecond so that back-to-back packets never overlap.
  constexpr Nanos TransmitTime(Bytes bytes) const {
    if (bits_per_sec == 0) return 0;
    const auto bits = static_cast<__uint128_t>(bytes) * 8u;
    const auto ns =
        (bits * kNanosPerSec + bits_per_sec - 1) / bits_per_sec;
    return static_cast<Nanos>(ns);
  }

  constexpr double GbpsValue() const {
    return static_cast<double>(bits_per_sec) / 1e9;
  }
};

// Throughput helper: operations per virtual second, expressed in MOPS.
constexpr double Mops(std::uint64_t ops, Nanos elapsed) {
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(ops) * 1e3 / static_cast<double>(elapsed);
}

}  // namespace cowbird
