#include "core/client.h"

#include <algorithm>
#include <atomic>

#include "common/check.h"

namespace cowbird::core {

namespace {
// Atomic: parallel sweeps construct clients from concurrent simulations.
// Ids stay unique and monotone within any one (single-threaded) simulation;
// nothing observable depends on their absolute values across runs.
std::atomic<std::uint32_t> next_instance_id{1};
}  // namespace

CowbirdClient::CowbirdClient(rdma::Device& device, Config config)
    : device_(&device), config_(config) {
  const auto* mr = device.RegisterMemory(config_.layout.base,
                                         config_.layout.TotalBytes());
  descriptor_.instance_id =
      next_instance_id.fetch_add(1, std::memory_order_relaxed);
  descriptor_.compute_node = device.node_id();
  descriptor_.compute_rkey = mr->rkey;
  descriptor_.layout = config_.layout;
  for (int i = 0; i < config_.layout.threads; ++i) {
    threads_.push_back(std::make_unique<ThreadContext>(*this, i));
  }
  // Zero-initialize both bookkeeping blocks so the engine's first probe
  // reads a consistent (empty) state.
  for (int i = 0; i < config_.layout.threads; ++i) {
    GreenBlock green;
    RedBlock red;
    auto& mem = device.memory();
    const auto g = config_.layout.GreenAddr(i);
    mem.WriteValue<std::uint64_t>(g, green.meta_tail);
    mem.WriteValue<std::uint64_t>(g + 8, green.data_tail);
    mem.WriteValue<std::uint64_t>(g + 16, green.resp_head);
    const auto r = config_.layout.RedAddr(i);
    mem.WriteValue<std::uint64_t>(r, red.meta_head);
    mem.WriteValue<std::uint64_t>(r + 8, red.data_head);
    mem.WriteValue<std::uint64_t>(r + 16, red.resp_tail);
    mem.WriteValue<std::uint64_t>(r + 24, red.write_progress);
    mem.WriteValue<std::uint64_t>(r + 32, red.read_progress);
  }
}

void CowbirdClient::RegisterRegion(const RegionInfo& region) {
  COWBIRD_CHECK(descriptor_.FindRegion(region.region_id) == nullptr);
  descriptor_.regions.push_back(region);
}

CowbirdClient::ThreadContext::ThreadContext(CowbirdClient& client, int index)
    : client_(&client),
      index_(index),
      meta_ring_(client.config_.layout.meta_slots),
      data_ring_(client.config_.layout.data_capacity),
      resp_ring_(client.config_.layout.resp_capacity) {
  if (auto* hub = client.config_.telemetry) {
    const telemetry::Labels labels = {
        {"instance", std::to_string(client.descriptor_.instance_id)},
        {"thread", std::to_string(index)}};
    hub->metrics.RegisterCallbackGauge(
        "client_reads_issued", labels,
        [this] { return static_cast<std::int64_t>(reads_issued_); });
    hub->metrics.RegisterCallbackGauge(
        "client_writes_issued", labels,
        [this] { return static_cast<std::int64_t>(writes_issued_); });
    hub->metrics.RegisterCallbackGauge(
        "client_issue_failures", labels,
        [this] { return static_cast<std::int64_t>(issue_failures_); });
    hub->metrics.RegisterCallbackGauge(
        "client_reads_retired", labels,
        [this] { return static_cast<std::int64_t>(retired_read_seq_); });
    hub->metrics.RegisterCallbackGauge(
        "client_writes_retired", labels,
        [this] { return static_cast<std::int64_t>(retired_write_seq_); });
  }
}

CowbirdClient::ThreadContext::~ThreadContext() {
  if (auto* hub = client_->config_.telemetry) {
    const telemetry::Labels labels = {
        {"instance", std::to_string(client_->descriptor_.instance_id)},
        {"thread", std::to_string(index_)}};
    for (const char* name :
         {"client_reads_issued", "client_writes_issued",
          "client_issue_failures", "client_reads_retired",
          "client_writes_retired"}) {
      hub->metrics.UnregisterCallbackGauge(name, labels);
    }
  }
}

std::optional<std::uint64_t> CowbirdClient::ThreadContext::ContiguousPad(
    const ByteRing& ring, std::uint64_t len) {
  COWBIRD_CHECK(len <= ring.capacity());
  const std::uint64_t offset = ring.tail() % ring.capacity();
  const std::uint64_t pad =
      offset + len > ring.capacity() ? ring.capacity() - offset : 0;
  if (!ring.CanReserve(pad + len)) return std::nullopt;
  return pad;
}

sim::Task<std::optional<ReqId>> CowbirdClient::ThreadContext::AsyncRead(
    sim::SimThread& thread, std::uint16_t region_id,
    std::uint64_t remote_src_offset, std::uint64_t local_dest,
    std::uint32_t length) {
  const RegionInfo* region = client_->descriptor_.FindRegion(region_id);
  COWBIRD_CHECK(region != nullptr);
  COWBIRD_CHECK(remote_src_offset + length <= region->size);
  COWBIRD_CHECK(length > 0);

  // Lifecycle clock starts before the post cost is charged, so the span sum
  // covers everything the caller observes.
  const Nanos issue_ts = thread.simulation().Now();

  // The issue path itself: a handful of local-memory writes.
  co_await thread.Work(client_->config_.costs.cowbird_post,
                       sim::CpuCategory::kCommunication);

  auto pad = ContiguousPad(resp_ring_, length);
  if (!pad.has_value() || meta_ring_.Full()) {
    // Out of space: sync with engine progress once, then retry the
    // reservation; if still full the caller must drain completions.
    co_await Reconcile(thread);
    pad = ContiguousPad(resp_ring_, length);
    if (!pad.has_value() || meta_ring_.Full()) {
      ++issue_failures_;
      co_return std::nullopt;
    }
  }

  const std::uint64_t cursor = resp_ring_.Reserve(*pad + length);
  const std::uint64_t data_start = cursor + *pad;
  const auto& layout = client_->config_.layout;
  const std::uint64_t resp_addr =
      layout.RespRingAddr(index_) + (data_start % resp_ring_.capacity());

  RequestMetadata meta;
  meta.rw_type = RwType::kRead;
  meta.region_id = region_id;
  meta.length = length;
  meta.req_addr = region->remote_base + remote_src_offset;
  meta.resp_addr = resp_addr;
  const std::uint64_t slot = meta_ring_.Push();
  auto& mem = client_->device_->memory();
  meta.Publish(mem, layout.MetaSlotAddr(index_, slot));
  // Publish the new tail in the green block (plain store; engine probes it).
  mem.WriteValue<std::uint64_t>(layout.GreenAddr(index_), meta_ring_.tail());

  const std::uint64_t seq = ++next_read_seq_;
  outstanding_reads_.push_back(
      OutstandingRead{seq, cursor, *pad, length, local_dest});
  ++reads_issued_;
  if (auto* hub = client_->config_.telemetry) {
    hub->tracer.RecordOpAt(
        telemetry::OpKey{client_->descriptor_.instance_id,
                         static_cast<std::uint32_t>(index_), false, seq},
        telemetry::OpPhase::kIssue, issue_ts);
  }
  co_return ReqId::Make(RwType::kRead, index_, seq);
}

sim::Task<std::optional<ReqId>> CowbirdClient::ThreadContext::AsyncWrite(
    sim::SimThread& thread, std::uint16_t region_id, std::uint64_t local_src,
    std::uint64_t remote_dest_offset, std::uint32_t length) {
  const RegionInfo* region = client_->descriptor_.FindRegion(region_id);
  COWBIRD_CHECK(region != nullptr);
  COWBIRD_CHECK(remote_dest_offset + length <= region->size);
  COWBIRD_CHECK(length > 0);

  const Nanos issue_ts = thread.simulation().Now();

  co_await thread.Work(client_->config_.costs.cowbird_post,
                       sim::CpuCategory::kCommunication);

  auto pad = ContiguousPad(data_ring_, length);
  if (!pad.has_value() || meta_ring_.Full()) {
    co_await Reconcile(thread);
    pad = ContiguousPad(data_ring_, length);
    if (!pad.has_value() || meta_ring_.Full()) {
      ++issue_failures_;
      co_return std::nullopt;
    }
  }

  const std::uint64_t cursor = data_ring_.Reserve(*pad + length);
  const std::uint64_t data_start = cursor + *pad;
  const auto& layout = client_->config_.layout;
  const std::uint64_t ring_addr =
      layout.DataRingAddr(index_) + (data_start % data_ring_.capacity());

  // Stage the payload into the request data ring (the one copy the write
  // path pays; the engine fetches it from here asynchronously).
  auto& mem = client_->device_->memory();
  copy_scratch_.resize(length);
  mem.Read(local_src, copy_scratch_);
  mem.Write(ring_addr, copy_scratch_);
  co_await thread.Work(client_->config_.costs.CopyCost(length),
                       sim::CpuCategory::kCommunication);

  RequestMetadata meta;
  meta.rw_type = RwType::kWrite;
  meta.region_id = region_id;
  meta.length = length;
  meta.req_addr = ring_addr;
  meta.resp_addr = region->remote_base + remote_dest_offset;
  const std::uint64_t slot = meta_ring_.Push();
  meta.Publish(mem, layout.MetaSlotAddr(index_, slot));
  mem.WriteValue<std::uint64_t>(layout.GreenAddr(index_), meta_ring_.tail());
  mem.WriteValue<std::uint64_t>(layout.GreenAddr(index_) + 8,
                                data_ring_.tail());

  const std::uint64_t seq = ++next_write_seq_;
  outstanding_writes_.push_back(OutstandingWrite{seq, *pad + length});
  ++writes_issued_;
  if (auto* hub = client_->config_.telemetry) {
    hub->tracer.RecordOpAt(
        telemetry::OpKey{client_->descriptor_.instance_id,
                         static_cast<std::uint32_t>(index_), true, seq},
        telemetry::OpPhase::kIssue, issue_ts);
  }
  co_return ReqId::Make(RwType::kWrite, index_, seq);
}

sim::Task<void> CowbirdClient::ThreadContext::Reconcile(
    sim::SimThread& thread) {
  co_await thread.Work(client_->config_.costs.cowbird_poll,
                       sim::CpuCategory::kCommunication);
  auto& mem = client_->device_->memory();
  const auto& layout = client_->config_.layout;
  const std::uint64_t red_addr = layout.RedAddr(index_);
  RedBlock red;
  red.meta_head = mem.ReadValue<std::uint64_t>(red_addr);
  red.write_progress = mem.ReadValue<std::uint64_t>(red_addr + 24);
  red.read_progress = mem.ReadValue<std::uint64_t>(red_addr + 32);

  meta_ring_.AdvanceHeadTo(red.meta_head);

  auto* hub = client_->config_.telemetry;
  while (!outstanding_writes_.empty() &&
         outstanding_writes_.front().seq <= red.write_progress) {
    if (hub != nullptr) {
      hub->tracer.RecordOp(
          telemetry::OpKey{client_->descriptor_.instance_id,
                           static_cast<std::uint32_t>(index_), true,
                           outstanding_writes_.front().seq},
          telemetry::OpPhase::kRetired);
    }
    data_ring_.Release(outstanding_writes_.front().reserved_bytes);
    outstanding_writes_.pop_front();
  }
  retired_write_seq_ = std::max(retired_write_seq_, red.write_progress);

  while (!outstanding_reads_.empty() &&
         outstanding_reads_.front().seq <= red.read_progress) {
    // Copied, not referenced: the ring may grow (relocating entries) if an
    // issue path runs while this coroutine is suspended at the copy charge.
    const OutstandingRead done = outstanding_reads_.front();
    // Copy the payload out of the response ring to the user's buffer.
    const std::uint64_t ring_addr =
        layout.RespRingAddr(index_) +
        ((done.ring_cursor + done.pad) % resp_ring_.capacity());
    copy_scratch_.resize(done.length);
    mem.Read(ring_addr, copy_scratch_);
    mem.Write(done.user_dest, copy_scratch_);
    co_await thread.Work(
        client_->config_.costs.DeliveryCopyCost(done.length),
        sim::CpuCategory::kCommunication);
    // Stamped after the delivery copy: the op's lifecycle ends when its
    // payload is in the caller's buffer, which is what PollWait observes.
    if (hub != nullptr) {
      hub->tracer.RecordOp(
          telemetry::OpKey{client_->descriptor_.instance_id,
                           static_cast<std::uint32_t>(index_), false,
                           done.seq},
          telemetry::OpPhase::kRetired);
    }
    resp_ring_.Release(done.pad + done.length);
    mem.WriteValue<std::uint64_t>(layout.GreenAddr(index_) + 16,
                                  resp_ring_.head());
    outstanding_reads_.pop_front();
  }
  retired_read_seq_ = std::max(retired_read_seq_, red.read_progress);
}

PollId CowbirdClient::ThreadContext::PollCreate() {
  poll_groups_.emplace_back();
  poll_groups_.back().live = true;
  return static_cast<PollId>(poll_groups_.size() - 1);
}

void CowbirdClient::ThreadContext::PollAdd(PollId poll_id, ReqId req_id) {
  COWBIRD_CHECK(poll_id < poll_groups_.size() && poll_groups_[poll_id].live);
  auto& group = poll_groups_[poll_id];
  auto& queue =
      req_id.type() == RwType::kRead ? group.reads : group.writes;
  COWBIRD_DCHECK(queue.empty() || queue.back().seq() < req_id.seq());
  queue.push_back(req_id);
}

void CowbirdClient::ThreadContext::PollRemove(PollId poll_id, ReqId req_id) {
  COWBIRD_CHECK(poll_id < poll_groups_.size() && poll_groups_[poll_id].live);
  auto& group = poll_groups_[poll_id];
  auto& queue =
      req_id.type() == RwType::kRead ? group.reads : group.writes;
  for (std::size_t i = 0; i < queue.size();) {
    if (queue[i] == req_id) {
      queue.erase_at(i);
    } else {
      ++i;
    }
  }
}

sim::Task<int> CowbirdClient::ThreadContext::PollWait(
    sim::SimThread& thread, PollId poll_id, std::vector<ReqId>& responses,
    int max_ret, Nanos timeout) {
  COWBIRD_CHECK(poll_id < poll_groups_.size() && poll_groups_[poll_id].live);
  auto& group = poll_groups_[poll_id];
  const Nanos deadline = thread.simulation().Now() + timeout;
  responses.clear();
  for (;;) {
    co_await Reconcile(thread);
    // Completion checks are integer comparisons against the progress
    // counters (Section 4.4).
    while (static_cast<int>(responses.size()) < max_ret &&
           !group.reads.empty() &&
           group.reads.front().seq() <= retired_read_seq_) {
      responses.push_back(group.reads.front());
      group.reads.pop_front();
    }
    while (static_cast<int>(responses.size()) < max_ret &&
           !group.writes.empty() &&
           group.writes.front().seq() <= retired_write_seq_) {
      responses.push_back(group.writes.front());
      group.writes.pop_front();
    }
    if (static_cast<int>(responses.size()) >= max_ret ||
        thread.simulation().Now() >= deadline) {
      co_return static_cast<int>(responses.size());
    }
    const Nanos remaining = deadline - thread.simulation().Now();
    co_await thread.Idle(
        std::min<Nanos>(client_->config_.poll_interval, remaining));
  }
}

sim::Task<std::vector<ReqId>> CowbirdClient::ThreadContext::PollWait(
    sim::SimThread& thread, PollId poll_id, int max_ret, Nanos timeout) {
  std::vector<ReqId> results;
  co_await PollWait(thread, poll_id, results, max_ret, timeout);
  co_return results;
}

bool CowbirdClient::ThreadContext::IsRetired(ReqId id) const {
  if (id.type() == RwType::kRead) return id.seq() <= retired_read_seq_;
  return id.seq() <= retired_write_seq_;
}

}  // namespace cowbird::core
