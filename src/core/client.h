// The Cowbird client library (Sections 4.1 and 4.3, Table 2).
//
// Every API call executes only local-memory loads and stores on the calling
// thread — there is no RDMA verb, no doorbell, no fence on this path, and no
// background activity. Issuing a request is: reserve ring space, fill the
// 24-byte metadata entry (rw_type last), bump the green-block tail. Checking
// completions is: load the engine-written progress counters and compare
// integers. The per-call CPU charges (CostModel::cowbird_post/cowbird_poll)
// are an order of magnitude below a verbs post/poll — Figure 2.
//
// Completion-side data movement: when a read completes, the engine has
// already deposited the payload in the response ring; the library copies it
// to the caller's destination buffer during the poll that discovers the
// completion, then frees the ring space.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/pool.h"
#include "common/ring.h"
#include "common/units.h"
#include "core/instance.h"
#include "core/request.h"
#include "rdma/device.h"
#include "rdma/params.h"
#include "sim/task.h"
#include "sim/thread.h"
#include "telemetry/hub.h"

namespace cowbird::core {

using PollId = std::uint32_t;

class CowbirdClient {
 public:
  struct Config {
    InstanceLayout layout;
    rdma::CostModel costs;
    // Gap between completion checks inside PollWait. The CPU is *not*
    // charged for this gap (a real application overlaps it with compute);
    // each check itself is charged.
    Nanos poll_interval = 200;
    // Optional telemetry hub. When set, the library stamps each op's
    // kIssue/kRetired lifecycle phases and surfaces per-thread issue/retire
    // counters as callback gauges. nullptr = telemetry off (no cost).
    telemetry::Hub* telemetry = nullptr;
  };

  // Registers the client buffer area with the compute node's RDMA device so
  // offload engines can reach it.
  CowbirdClient(rdma::Device& device, Config config);

  void RegisterRegion(const RegionInfo& region);
  // Replaces the cluster-pool translation ranges for one region (elastic
  // pool, DESIGN.md §14). Control-plane only: engines copy the descriptor at
  // attach time, so call this while the instance is detached (between
  // BeginHandoff and CompleteHandoff) and the re-attached engine sees the
  // new placement atomically.
  void SetRegionRanges(std::uint16_t region_id,
                       const std::vector<RangeEntry>& ranges) {
    auto& all = descriptor_.ranges;
    for (auto it = all.begin(); it != all.end();) {
      it = it->region_id == region_id ? all.erase(it) : it + 1;
    }
    all.insert(all.end(), ranges.begin(), ranges.end());
  }
  const InstanceDescriptor& descriptor() const { return descriptor_; }

  class ThreadContext;
  ThreadContext& thread(int index) { return *threads_[index]; }
  int thread_count() const { return static_cast<int>(threads_.size()); }

  class ThreadContext {
   public:
    ThreadContext(CowbirdClient& client, int index);
    ~ThreadContext();

    // Table 2: async_read(region_id, src, dest, length).
    // `remote_src_offset` is relative to the region base; `local_dest` is a
    // compute-node address the data will be copied to on completion.
    // Returns nullopt when a ring is full (caller should poll, then retry).
    sim::Task<std::optional<ReqId>> AsyncRead(sim::SimThread& thread,
                                              std::uint16_t region_id,
                                              std::uint64_t remote_src_offset,
                                              std::uint64_t local_dest,
                                              std::uint32_t length);

    // Table 2: async_write(region_id, src, dest, length).
    sim::Task<std::optional<ReqId>> AsyncWrite(
        sim::SimThread& thread, std::uint16_t region_id,
        std::uint64_t local_src, std::uint64_t remote_dest_offset,
        std::uint32_t length);

    PollId PollCreate();
    void PollAdd(PollId poll_id, ReqId req_id);
    void PollRemove(PollId poll_id, ReqId req_id);

    // Table 2: poll_wait(poll_id, responses, max_ret, timeout). Appends up
    // to `max_ret` completed request IDs into the caller-provided
    // `responses` array (cleared first), waiting at most `timeout`; returns
    // the count. The caller reuses the array across calls, so a steady-state
    // poll loop performs no allocation once the array has grown to the
    // window size — matching the paper's API, where the application owns the
    // responses buffer.
    sim::Task<int> PollWait(sim::SimThread& thread, PollId poll_id,
                            std::vector<ReqId>& responses, int max_ret,
                            Nanos timeout);

    // Convenience wrapper returning a fresh vector per call. Fine for tests
    // and control paths; hot loops should pass their own responses array.
    sim::Task<std::vector<ReqId>> PollWait(sim::SimThread& thread,
                                           PollId poll_id, int max_ret,
                                           Nanos timeout);

    // Completion state without a poll group (used by tests/integrations):
    // true once the request's sequence number is covered by the engine's
    // progress counter *and* the library has retired it.
    bool IsRetired(ReqId id) const;

    std::uint64_t reads_issued() const { return reads_issued_; }
    std::uint64_t writes_issued() const { return writes_issued_; }
    std::uint64_t issue_failures() const { return issue_failures_; }
    std::uint64_t reads_retired() const { return retired_read_seq_; }
    std::uint64_t writes_retired() const { return retired_write_seq_; }

   private:
    friend class CowbirdClient;

    struct OutstandingRead {
      std::uint64_t seq;
      std::uint64_t ring_cursor;  // reservation start (monotonic, incl. pad)
      std::uint64_t pad;
      std::uint32_t length;
      std::uint64_t user_dest;
    };
    struct OutstandingWrite {
      std::uint64_t seq;
      std::uint64_t reserved_bytes;  // pad + length
    };
    struct PollGroup {
      bool live = false;
      FixedDeque<ReqId> reads;   // ascending seq
      FixedDeque<ReqId> writes;  // ascending seq
    };

    // Synchronize with the engine-written red block: advance ring heads,
    // retire completed operations (copying read payloads to their user
    // destinations). Charges one cowbird_poll plus copy costs.
    sim::Task<void> Reconcile(sim::SimThread& thread);

    // Computes a contiguous reservation in a byte ring: returns pad bytes
    // to skip (ring-wrap padding), or nullopt if it does not fit.
    static std::optional<std::uint64_t> ContiguousPad(const ByteRing& ring,
                                                      std::uint64_t len);

    CowbirdClient* client_;
    int index_;
    RingCursors meta_ring_;
    ByteRing data_ring_;
    ByteRing resp_ring_;
    std::uint64_t next_read_seq_ = 0;
    std::uint64_t next_write_seq_ = 0;
    std::uint64_t retired_read_seq_ = 0;
    std::uint64_t retired_write_seq_ = 0;
    FixedDeque<OutstandingRead> outstanding_reads_;
    FixedDeque<OutstandingWrite> outstanding_writes_;
    std::vector<PollGroup> poll_groups_;
    std::uint64_t reads_issued_ = 0;
    std::uint64_t writes_issued_ = 0;
    std::uint64_t issue_failures_ = 0;
    // Payload shuttle for staging/delivery copies. Safe to share across the
    // thread's coroutines: every use is a resize+read+write stretch with no
    // suspension point inside it.
    std::vector<std::uint8_t> copy_scratch_;
  };

 private:
  friend class ThreadContext;

  rdma::Device* device_;
  Config config_;
  InstanceDescriptor descriptor_;
  std::vector<std::unique_ptr<ThreadContext>> threads_;
};

}  // namespace cowbird::core
