#include "core/cluster_pool.h"

#include <algorithm>

#include "common/check.h"

namespace cowbird::core {

ClusterPool::~ClusterPool() { UnbindTelemetry(); }

void ClusterPool::AddServer(rdma::Device& device, std::uint64_t base,
                            Bytes capacity) {
  COWBIRD_CHECK(capacity >= kRangeAlign);
  COWBIRD_CHECK(FindServer(device.node_id()) == nullptr);
  const rdma::MemoryRegion* mr = device.RegisterMemory(base, capacity);
  COWBIRD_CHECK(mr != nullptr);
  servers_.push_back(
      Server{device.node_id(), mr->rkey, ExtentAllocator(base, capacity)});
}

std::size_t ClusterPool::RangesOn(net::NodeId node) const {
  std::size_t n = 0;
  for (const RangeEntry& e : table_.entries()) n += e.node == node;
  return n;
}

bool ClusterPool::RemoveServer(net::NodeId node, std::string* error) {
  auto it = std::find_if(servers_.begin(), servers_.end(),
                         [node](const Server& s) { return s.node == node; });
  if (it == servers_.end()) {
    if (error != nullptr) {
      *error = "shrink refused: node " + std::to_string(node) +
               " is not part of the pool";
    }
    return false;
  }
  // Shrink refusal: a server leaves only once every range was migrated or
  // released — name the squatters so the caller knows what to move.
  std::string squatters;
  for (const RangeEntry& e : table_.entries()) {
    if (e.node != node) continue;
    if (!squatters.empty()) squatters += ", ";
    squatters += "region " + std::to_string(e.region_id) + " range @" +
                 std::to_string(e.vbase) + " (" + std::to_string(e.length) +
                 " bytes)";
  }
  if (!squatters.empty()) {
    if (error != nullptr) {
      *error = "shrink refused: node " + std::to_string(node) +
               " still owns live ranges: " + squatters;
    }
    return false;
  }
  servers_.erase(it);
  return true;
}

bool ClusterPool::HasServer(net::NodeId node) const {
  return FindServer(node) != nullptr;
}

ClusterPool::Server* ClusterPool::FindServer(net::NodeId node) {
  for (Server& s : servers_) {
    if (s.node == node) return &s;
  }
  return nullptr;
}

const ClusterPool::Server* ClusterPool::FindServer(net::NodeId node) const {
  for (const Server& s : servers_) {
    if (s.node == node) return &s;
  }
  return nullptr;
}

std::vector<ClusterPool::ServerStats> ClusterPool::servers() const {
  std::vector<ServerStats> out;
  out.reserve(servers_.size());
  for (const Server& s : servers_) {
    out.push_back(ServerStats{s.node, s.arena.capacity(),
                              s.arena.allocated(), RangesOn(s.node), s.rkey});
  }
  return out;
}

std::optional<RegionInfo> ClusterPool::AllocateRegion(std::uint16_t region_id,
                                                      std::uint64_t vbase,
                                                      Bytes size,
                                                      net::NodeId preferred) {
  COWBIRD_CHECK(size > 0);
  COWBIRD_CHECK(!servers_.empty());
  COWBIRD_CHECK(table_.RangesFor(region_id).empty());

  // Visit the preferred server first, then the rest in AddServer order.
  std::vector<std::size_t> order;
  std::size_t start = 0;
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    if (preferred != 0 && servers_[i].node == preferred) start = i;
  }
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    order.push_back((start + i) % servers_.size());
  }

  std::vector<RangeEntry> carved;
  Bytes remaining = ExtentAllocator::AlignUp(size, kRangeAlign);
  std::uint64_t cursor = vbase;
  for (const std::size_t idx : order) {
    Server& server = servers_[idx];
    while (remaining > 0) {
      const auto extent = server.arena.AllocateAtMost(remaining, kRangeAlign);
      if (!extent.has_value()) break;  // spill to the next server
      carved.push_back(RangeEntry{region_id, cursor, extent->length,
                                  server.node, server.rkey, extent->start});
      cursor += extent->length;
      remaining -= extent->length;
    }
    if (remaining == 0) break;
  }
  if (remaining > 0) {
    // Whole-cluster exhaustion: put everything back, leak nothing.
    for (const RangeEntry& e : carved) {
      FindServer(e.node)->arena.Release(e.server_base, e.length);
    }
    return std::nullopt;
  }
  for (const RangeEntry& e : carved) table_.Install(e);

  RegionInfo region;
  region.region_id = region_id;
  region.memory_node = carved.front().node;
  region.remote_base = vbase;
  region.rkey = carved.front().rkey;
  region.size = size;
  return region;
}

void ClusterPool::ReleaseRegion(std::uint16_t region_id) {
  for (const RangeEntry& e : table_.RangesFor(region_id)) {
    Server* server = FindServer(e.node);
    COWBIRD_CHECK(server != nullptr);
    server->arena.Release(e.server_base, e.length);
    table_.Remove(e.region_id, e.vbase);
  }
}

std::optional<ClusterPool::MigrationPlan> ClusterPool::PlanMove(
    std::uint16_t region_id, std::uint64_t vbase, net::NodeId to) {
  const RangeEntry* range = nullptr;
  for (const RangeEntry& e : table_.entries()) {
    if (e.region_id == region_id && e.vbase == vbase) range = &e;
  }
  if (range == nullptr || range->node == to) return std::nullopt;
  Server* dst = FindServer(to);
  if (dst == nullptr) return std::nullopt;
  const auto dst_addr = dst->arena.Allocate(range->length, kRangeAlign);
  if (!dst_addr.has_value()) return std::nullopt;

  MigrationPlan plan;
  plan.region_id = region_id;
  plan.vbase = vbase;
  plan.length = range->length;
  plan.src_node = range->node;
  plan.src_rkey = range->rkey;
  plan.src_addr = range->server_base;
  plan.dst_node = to;
  plan.dst_rkey = dst->rkey;
  plan.dst_addr = *dst_addr;
  return plan;
}

void ClusterPool::CommitMove(const MigrationPlan& plan) {
  COWBIRD_CHECK(table_.Retarget(plan.region_id, plan.vbase, plan.dst_node,
                                plan.dst_rkey, plan.dst_addr));
  Server* src = FindServer(plan.src_node);
  COWBIRD_CHECK(src != nullptr);
  src->arena.Release(plan.src_addr,
                     ExtentAllocator::AlignUp(plan.length, kRangeAlign));
}

void ClusterPool::AbortMove(const MigrationPlan& plan) {
  Server* dst = FindServer(plan.dst_node);
  COWBIRD_CHECK(dst != nullptr);
  dst->arena.Release(plan.dst_addr,
                     ExtentAllocator::AlignUp(plan.length, kRangeAlign));
}

void ClusterPool::BindTelemetry(telemetry::MetricRegistry& registry,
                                const telemetry::Labels& labels) {
  UnbindTelemetry();
  telemetry_registry_ = &registry;
  telemetry_labels_ = labels;
  for (const Server& server : servers_) {
    telemetry::Labels with_server = labels;
    with_server.emplace_back("server", std::to_string(server.node));
    const net::NodeId node = server.node;
    registry.RegisterCallbackGauge(
        "pool_server_capacity_bytes", with_server, [this, node] {
          const Server* s = FindServer(node);
          return s == nullptr
                     ? 0
                     : static_cast<std::int64_t>(s->arena.capacity());
        });
    registry.RegisterCallbackGauge(
        "pool_server_allocated_bytes", with_server, [this, node] {
          const Server* s = FindServer(node);
          return s == nullptr
                     ? 0
                     : static_cast<std::int64_t>(s->arena.allocated());
        });
    registry.RegisterCallbackGauge(
        "pool_server_ranges", with_server, [this, node] {
          return static_cast<std::int64_t>(RangesOn(node));
        });
  }
}

void ClusterPool::UnbindTelemetry() {
  if (telemetry_registry_ == nullptr) return;
  for (const Server& server : servers_) {
    telemetry::Labels with_server = telemetry_labels_;
    with_server.emplace_back("server", std::to_string(server.node));
    telemetry_registry_->UnregisterCallbackGauge("pool_server_capacity_bytes",
                                                 with_server);
    telemetry_registry_->UnregisterCallbackGauge(
        "pool_server_allocated_bytes", with_server);
    telemetry_registry_->UnregisterCallbackGauge("pool_server_ranges",
                                                 with_server);
  }
  telemetry_registry_ = nullptr;
}

}  // namespace cowbird::core
