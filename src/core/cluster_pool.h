// Cluster pool allocator: one elastic memory pool spanning many servers.
//
// The MIND-style generalization of core::RegionAllocator (ROADMAP item 3):
// the pool is a set of memory servers, each contributing one registered
// slab; a *region* is a contiguous virtual interval carved into one or more
// ranges with per-range server ownership. The pool owns the authoritative
// TranslationTable — the same entries the P4 pipeline installs as a range
// match stage and the spot agent mirrors per instance (translation.h).
//
// Elasticity:
//   * grow    — AddServer registers a new slab; subsequent allocations and
//               spills can land on it.
//   * shrink  — RemoveServer succeeds only when no live range owns bytes on
//               that server (the structured refusal names the squatters).
//   * spill   — AllocateRegion carves from the preferred server first and
//               splits the region across the remaining servers, in 4 KiB
//               chunks, when the preferred slab is exhausted.
//   * rebalance — PlanMove/CommitMove relocate one range between servers.
//               The plan carries both placements; RegionMigrator
//               (migration.h) copies the bytes, and CommitMove is the
//               atomic virtual-time flip of the translation entry.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/units.h"
#include "core/instance.h"
#include "core/region_allocator.h"
#include "core/translation.h"
#include "rdma/device.h"
#include "telemetry/metrics.h"

namespace cowbird::core {

class ClusterPool {
 public:
  // Virtual ranges split on 4 KiB boundaries so sub-page records never
  // straddle an ownership boundary.
  static constexpr Bytes kRangeAlign = 4096;

  struct ServerStats {
    net::NodeId node = 0;
    Bytes capacity = 0;
    Bytes allocated = 0;
    std::size_t ranges = 0;  // live ranges owned by this server
    std::uint32_t rkey = 0;
  };

  // One planned range move: everything the copy engine and the cutover
  // need, resolved up front so the flip itself is a single Retarget.
  struct MigrationPlan {
    std::uint16_t region_id = 0;
    std::uint64_t vbase = 0;
    Bytes length = 0;
    net::NodeId src_node = 0;
    std::uint32_t src_rkey = 0;
    std::uint64_t src_addr = 0;
    net::NodeId dst_node = 0;
    std::uint32_t dst_rkey = 0;
    std::uint64_t dst_addr = 0;
  };

  ~ClusterPool();

  // Grow: registers `capacity` bytes at `base` on `device` as one slab MR.
  void AddServer(rdma::Device& device, std::uint64_t base, Bytes capacity);

  // Shrink: drops an empty server. Refuses (returning false and naming the
  // live ranges in `error`) while any range still owns bytes there.
  bool RemoveServer(net::NodeId node, std::string* error = nullptr);

  bool HasServer(net::NodeId node) const;
  std::vector<ServerStats> servers() const;

  // Carves `size` virtual bytes rooted at `vbase`. Prefers `preferred`
  // (0 = first server added) and spills across the remaining servers in
  // kRangeAlign chunks when it runs out; nullopt when the whole cluster
  // cannot hold the region (nothing is leaked on failure). The returned
  // RegionInfo describes the virtual region (remote_base = vbase); callers
  // publish RangesFor() alongside it so engines translate per range.
  std::optional<RegionInfo> AllocateRegion(std::uint16_t region_id,
                                           std::uint64_t vbase, Bytes size,
                                           net::NodeId preferred = 0);

  // Frees every range of the region.
  void ReleaseRegion(std::uint16_t region_id);

  // Rebalance, step 1: reserve a destination extent on `to` for the range
  // identified by (region_id, vbase). The translation still points at the
  // source; nothing is live on the destination yet.
  std::optional<MigrationPlan> PlanMove(std::uint16_t region_id,
                                        std::uint64_t vbase, net::NodeId to);

  // Rebalance, step 2 (the cutover): atomically retarget the translation
  // entry at the destination and free the source extent. Every lookup
  // strictly after this call resolves to the destination.
  void CommitMove(const MigrationPlan& plan);

  // Abandons a planned move: frees the reserved destination extent.
  void AbortMove(const MigrationPlan& plan);

  const TranslationTable& table() const { return table_; }
  std::vector<RangeEntry> RangesFor(std::uint16_t region_id) const {
    return table_.RangesFor(region_id);
  }

  // Per-server occupancy as callback gauges:
  //   pool_server_capacity_bytes{server=N}, pool_server_allocated_bytes{...},
  //   pool_server_ranges{...}. The pool must outlive the registry or call
  //   UnbindTelemetry first.
  void BindTelemetry(telemetry::MetricRegistry& registry,
                     const telemetry::Labels& labels);
  void UnbindTelemetry();

 private:
  struct Server {
    net::NodeId node = 0;
    std::uint32_t rkey = 0;
    ExtentAllocator arena;
  };

  Server* FindServer(net::NodeId node);
  const Server* FindServer(net::NodeId node) const;
  std::size_t RangesOn(net::NodeId node) const;

  std::vector<Server> servers_;  // in AddServer order
  TranslationTable table_;
  telemetry::MetricRegistry* telemetry_registry_ = nullptr;
  telemetry::Labels telemetry_labels_;
};

}  // namespace cowbird::core
