// Convenience layers over the core API (Section 4.1: "Simple extensions can
// be made to the API to allow convenience methods like traditional
// select/poll semantics or an implicit notification group tied to each read
// and write").
#pragma once

#include <optional>

#include "core/client.h"

namespace cowbird::core {

// Wraps a ThreadContext with an implicit notification group: every issued
// request is auto-added, and completions are harvested with select-style
// calls. This is the interface most ports (like the FASTER IDevice) want.
class ImplicitGroup {
 public:
  explicit ImplicitGroup(CowbirdClient::ThreadContext& ctx)
      : ctx_(&ctx), poll_(ctx.PollCreate()) {}

  // async_read with implicit registration.
  sim::Task<std::optional<ReqId>> Read(sim::SimThread& thread,
                                       std::uint16_t region_id,
                                       std::uint64_t remote_src_offset,
                                       std::uint64_t local_dest,
                                       std::uint32_t length) {
    auto id = co_await ctx_->AsyncRead(thread, region_id, remote_src_offset,
                                       local_dest, length);
    if (id.has_value()) {
      ctx_->PollAdd(poll_, *id);
      ++outstanding_;
    }
    co_return id;
  }

  // async_write with implicit registration.
  sim::Task<std::optional<ReqId>> Write(sim::SimThread& thread,
                                        std::uint16_t region_id,
                                        std::uint64_t local_src,
                                        std::uint64_t remote_dest_offset,
                                        std::uint32_t length) {
    auto id = co_await ctx_->AsyncWrite(thread, region_id, local_src,
                                        remote_dest_offset, length);
    if (id.has_value()) {
      ctx_->PollAdd(poll_, *id);
      ++outstanding_;
    }
    co_return id;
  }

  // select()-style: returns the first completion, waiting up to `timeout`.
  sim::Task<std::optional<ReqId>> Select(sim::SimThread& thread,
                                         Nanos timeout) {
    auto done = co_await ctx_->PollWait(thread, poll_, 1, timeout);
    if (done.empty()) co_return std::nullopt;
    --outstanding_;
    co_return done.front();
  }

  // Blocks (up to `timeout`) until a *specific* request completes; other
  // completions harvested along the way are dropped from the group but
  // remain retired in the library (their data is already delivered).
  sim::Task<bool> WaitFor(sim::SimThread& thread, ReqId target,
                          Nanos timeout) {
    const Nanos deadline = thread.simulation().Now() + timeout;
    if (ctx_->IsRetired(target)) co_return true;
    for (;;) {
      const Nanos now = thread.simulation().Now();
      if (now >= deadline) co_return false;
      auto done = co_await ctx_->PollWait(thread, poll_, 16, deadline - now);
      outstanding_ -= static_cast<int>(done.size());
      for (const ReqId& id : done) {
        if (id == target) co_return true;
      }
      if (done.empty() && ctx_->IsRetired(target)) co_return true;
    }
  }

  // Synchronous-looking read: issue (retrying on ring pressure) and wait.
  sim::Task<bool> ReadSync(sim::SimThread& thread, std::uint16_t region_id,
                           std::uint64_t remote_src_offset,
                           std::uint64_t local_dest, std::uint32_t length,
                           Nanos timeout = Millis(10)) {
    std::optional<ReqId> id;
    const Nanos deadline = thread.simulation().Now() + timeout;
    while (!(id = co_await Read(thread, region_id, remote_src_offset,
                                local_dest, length))) {
      if (thread.simulation().Now() >= deadline) co_return false;
      (void)co_await Select(thread, Micros(5));
    }
    co_return co_await WaitFor(thread, *id,
                               deadline - thread.simulation().Now());
  }

  int outstanding() const { return outstanding_; }

 private:
  CowbirdClient::ThreadContext* ctx_;
  PollId poll_;
  int outstanding_ = 0;
};

}  // namespace cowbird::core
