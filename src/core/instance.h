// Descriptor shared between the client library and the offload engines.
//
// This is the information the compute node ships to the engine during the
// Setup phase (Section 5.2, Phase I): where the client buffers live (base +
// rkey of the compute-side MR, per-thread layout) and the table of remote
// memory regions (node, base address, rkey, size) that region_ids refer to.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "core/layout.h"
#include "core/translation.h"
#include "net/packet.h"

namespace cowbird::core {

struct RegionInfo {
  std::uint16_t region_id = 0;
  net::NodeId memory_node = 0;
  std::uint64_t remote_base = 0;  // virtual address on the memory node
  std::uint32_t rkey = 0;         // memory-pool MR rkey
  Bytes size = 0;
};

struct InstanceDescriptor {
  std::uint32_t instance_id = 0;
  net::NodeId compute_node = 0;
  std::uint32_t compute_rkey = 0;  // MR covering the client buffer area
  InstanceLayout layout;
  std::vector<RegionInfo> regions;
  // Cluster-pool translation ranges (elastic pool, DESIGN.md §14). Empty
  // means single-server identity: every engine synthesizes one range per
  // region mapping the region onto its own memory_node 1:1, which keeps
  // legacy descriptors byte-identical in behavior.
  std::vector<RangeEntry> ranges;

  const RegionInfo* FindRegion(std::uint16_t region_id) const {
    for (const auto& region : regions) {
      if (region.region_id == region_id) return &region;
    }
    return nullptr;
  }

  // The engine-side translation mirror: explicit ranges when the control
  // plane shipped a cluster table, identity ranges otherwise. Engines copy
  // this at attach time — a live engine never reads a mutating table.
  TranslationTable BuildTranslation() const {
    TranslationTable table;
    if (!ranges.empty()) {
      for (const RangeEntry& entry : ranges) table.Install(entry);
      return table;
    }
    for (const RegionInfo& region : regions) {
      table.Install(RangeEntry{region.region_id, region.remote_base,
                               region.size, region.memory_node, region.rkey,
                               region.remote_base});
    }
    return table;
  }
};

}  // namespace cowbird::core
