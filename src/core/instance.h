// Descriptor shared between the client library and the offload engines.
//
// This is the information the compute node ships to the engine during the
// Setup phase (Section 5.2, Phase I): where the client buffers live (base +
// rkey of the compute-side MR, per-thread layout) and the table of remote
// memory regions (node, base address, rkey, size) that region_ids refer to.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "core/layout.h"
#include "net/packet.h"

namespace cowbird::core {

struct RegionInfo {
  std::uint16_t region_id = 0;
  net::NodeId memory_node = 0;
  std::uint64_t remote_base = 0;  // virtual address on the memory node
  std::uint32_t rkey = 0;         // memory-pool MR rkey
  Bytes size = 0;
};

struct InstanceDescriptor {
  std::uint32_t instance_id = 0;
  net::NodeId compute_node = 0;
  std::uint32_t compute_rkey = 0;  // MR covering the client buffer area
  InstanceLayout layout;
  std::vector<RegionInfo> regions;

  const RegionInfo* FindRegion(std::uint16_t region_id) const {
    for (const auto& region : regions) {
      if (region.region_id == region_id) return &region;
    }
    return nullptr;
  }
};

}  // namespace cowbird::core
