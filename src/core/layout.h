// Compute-side buffer layout (Section 4.2, Figure 4).
//
// Each application hardware thread owns three rings in compute-node memory:
//   - request metadata ring: fixed 24-byte entries (Table 3)
//   - request data ring:     raw write payloads, variable length
//   - response data ring:    raw read results, variable length
// plus two bookkeeping blocks:
//   - "green" block: cursors advanced by the *client* (tails of the two
//     request rings, head of the response ring), packed contiguously across
//     threads so the offload engine fetches every thread's state with a
//     single RDMA read (requirement R3);
//   - "red" block: cursors/counters advanced by the *engine* (metadata head,
//     progress counters), likewise packed so one RDMA write updates all of
//     them (Phase IV).
//
// All addresses are compute-node virtual addresses inside one registered MR.
#pragma once

#include <cstdint>

#include "common/check.h"
#include "common/units.h"

namespace cowbird::core {

constexpr std::uint64_t kMetadataEntryBytes = 24;

// Green block (client-written): one per thread, 3 × u64.
struct GreenBlock {
  std::uint64_t meta_tail = 0;       // request metadata ring tail (slots)
  std::uint64_t data_tail = 0;       // request data ring tail (bytes)
  std::uint64_t resp_head = 0;       // response data ring head (bytes)
};
constexpr std::uint64_t kGreenBlockBytes = 24;

// Red block (engine-written): one per thread, 5 × u64.
struct RedBlock {
  std::uint64_t meta_head = 0;       // metadata entries consumed by engine
  std::uint64_t data_head = 0;       // request-data bytes consumed (info)
  std::uint64_t resp_tail = 0;       // response bytes delivered (info)
  std::uint64_t write_progress = 0;  // seq of last completed write
  std::uint64_t read_progress = 0;   // seq of last completed read
};
constexpr std::uint64_t kRedBlockBytes = 40;

struct InstanceLayout {
  std::uint64_t base = 0;       // start of the registered client-buffer MR
  int threads = 1;
  std::uint64_t meta_slots = 1024;          // metadata entries per thread
  std::uint64_t data_capacity = MiB(1);     // request-data bytes per thread
  std::uint64_t resp_capacity = MiB(1);     // response bytes per thread

  // Region order within the MR: green blocks (all threads, contiguous),
  // red blocks (all threads, contiguous), then per-thread rings.
  std::uint64_t GreenBase() const { return base; }
  std::uint64_t GreenAddr(int thread) const {
    COWBIRD_DCHECK(thread < threads);
    return base + static_cast<std::uint64_t>(thread) * kGreenBlockBytes;
  }
  std::uint64_t GreenBytesTotal() const {
    return static_cast<std::uint64_t>(threads) * kGreenBlockBytes;
  }

  std::uint64_t RedBase() const { return base + GreenBytesTotal(); }
  std::uint64_t RedAddr(int thread) const {
    COWBIRD_DCHECK(thread < threads);
    return RedBase() + static_cast<std::uint64_t>(thread) * kRedBlockBytes;
  }
  std::uint64_t RedBytesTotal() const {
    return static_cast<std::uint64_t>(threads) * kRedBlockBytes;
  }

  std::uint64_t PerThreadRingBytes() const {
    return meta_slots * kMetadataEntryBytes + data_capacity + resp_capacity;
  }
  std::uint64_t RingsBase() const { return RedBase() + RedBytesTotal(); }

  std::uint64_t MetaRingAddr(int thread) const {
    return RingsBase() +
           static_cast<std::uint64_t>(thread) * PerThreadRingBytes();
  }
  // Address of metadata slot for a monotonic cursor value.
  std::uint64_t MetaSlotAddr(int thread, std::uint64_t cursor) const {
    return MetaRingAddr(thread) + (cursor % meta_slots) * kMetadataEntryBytes;
  }
  std::uint64_t DataRingAddr(int thread) const {
    return MetaRingAddr(thread) + meta_slots * kMetadataEntryBytes;
  }
  std::uint64_t RespRingAddr(int thread) const {
    return DataRingAddr(thread) + data_capacity;
  }

  std::uint64_t TotalBytes() const {
    return GreenBytesTotal() + RedBytesTotal() +
           static_cast<std::uint64_t>(threads) * PerThreadRingBytes();
  }
};

}  // namespace cowbird::core
