#include "core/migration.h"

#include <algorithm>

#include "common/check.h"

namespace cowbird::core {

RegionMigrator::RegionMigrator(rdma::Device& src_device,
                               rdma::QueuePair& to_dst,
                               rdma::CompletionQueue& send_cq,
                               const ClusterPool::MigrationPlan& plan,
                               Config config)
    : src_device_(&src_device),
      qp_(&to_dst),
      cq_(&send_cq),
      plan_(plan),
      config_(config) {
  COWBIRD_CHECK(config_.chunk > 0 && config_.window > 0);
  COWBIRD_CHECK(plan_.length > 0);
  COWBIRD_CHECK(src_device_->node_id() == plan_.src_node);
  COWBIRD_CHECK(qp_->Connected() && qp_->remote_node() == plan_.dst_node);
  dirty_.assign(ChunkCount(), false);
}

RegionMigrator::~RegionMigrator() {
  if (started_ && !finished_) src_device_->ClearWriteWatch();
}

std::size_t RegionMigrator::ChunkCount() const {
  return static_cast<std::size_t>((plan_.length + config_.chunk - 1) /
                                  config_.chunk);
}

void RegionMigrator::Start() {
  COWBIRD_CHECK(!started_);
  started_ = true;
  if (config_.telemetry != nullptr) {
    copy_span_ = config_.telemetry->tracer.Begin("migration", "copy");
  }
  src_device_->SetWriteWatch(
      plan_.src_addr, plan_.length,
      [this](std::uint64_t addr, std::uint32_t len) { OnWrite(addr, len); });
  cq_->SetCompletionCallback([this] {
    while (cq_->Pop().has_value()) {
      COWBIRD_CHECK(outstanding_ > 0);
      --outstanding_;
    }
    Pump();
  });
  Pump();
}

void RegionMigrator::OnWrite(std::uint64_t addr, std::uint32_t len) {
  // Mark every chunk the write touches. Writes before a chunk's first copy
  // are harmless extra marks (the initial sweep would cover them anyway);
  // writes after it are exactly what the chase exists for.
  const std::uint64_t rel_start = addr > plan_.src_addr
                                      ? addr - plan_.src_addr
                                      : 0;
  const std::uint64_t rel_end =
      std::min<std::uint64_t>(addr + len - plan_.src_addr, plan_.length);
  for (std::size_t c = static_cast<std::size_t>(rel_start / config_.chunk);
       c < ChunkCount() && c * config_.chunk < rel_end; ++c) {
    if (!dirty_[c]) ++dirty_marks_;
    dirty_[c] = true;
  }
}

void RegionMigrator::PostChunk(std::size_t index) {
  const std::uint64_t offset = index * config_.chunk;
  const Bytes len = std::min<Bytes>(config_.chunk, plan_.length - offset);
  rdma::SendWqe wqe;
  wqe.op = rdma::WqeOp::kWrite;
  wqe.wr_id = index;
  wqe.laddr = plan_.src_addr + offset;
  wqe.raddr = plan_.dst_addr + offset;
  wqe.rkey = plan_.dst_rkey;
  wqe.length = static_cast<std::uint32_t>(len);
  qp_->PostSend(wqe);
  ++outstanding_;
  ++chunks_copied_;
  bytes_copied_ += len;
}

void RegionMigrator::Pump() {
  if (!started_ || finished_) return;
  // Initial sweep first, then dirty chase. A chunk's dirty bit is cleared
  // *before* the copy is posted: the WQE's payload is read from source
  // memory at transmit time, so any write racing the copy lands first in
  // memory and re-marks the bit — re-copied on a later pump, never lost.
  while (outstanding_ < config_.window && pass_next_ < ChunkCount()) {
    dirty_[pass_next_] = false;
    PostChunk(pass_next_);
    ++pass_next_;
  }
  if (pass_next_ == ChunkCount() && !pass_done_ && outstanding_ == 0) {
    pass_done_ = true;
    if (config_.telemetry != nullptr) {
      config_.telemetry->tracer.End(copy_span_);
      copy_span_ = {};
    }
  }
  if (pass_next_ < ChunkCount()) return;
  for (std::size_t c = 0; c < ChunkCount() && outstanding_ < config_.window;
       ++c) {
    if (!dirty_[c]) continue;
    dirty_[c] = false;
    PostChunk(c);
    if (draining_) ++drain_chunks_;
  }
}

bool RegionMigrator::ReadyForCutover() const {
  return pass_done_ && !finished_;
}

void RegionMigrator::BeginFinalDrain() {
  COWBIRD_CHECK(started_ && pass_done_ && !draining_);
  draining_ = true;
  if (config_.telemetry != nullptr) {
    drain_span_ = config_.telemetry->tracer.Begin("migration", "drain");
  }
  Pump();
}

bool RegionMigrator::Synced() const {
  if (!draining_ || outstanding_ != 0) return false;
  return std::none_of(dirty_.begin(), dirty_.end(),
                      [](bool dirty) { return dirty; });
}

void RegionMigrator::Finish() {
  COWBIRD_CHECK(Synced());
  finished_ = true;
  src_device_->ClearWriteWatch();
  cq_->SetCompletionCallback(nullptr);
  if (config_.telemetry != nullptr) {
    config_.telemetry->tracer.End(drain_span_);
    config_.telemetry->tracer.Instant("migration", "cutover");
  }
}

}  // namespace cowbird::core
