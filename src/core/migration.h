// Live region migration: copy-then-cutover between memory servers.
//
// Moves one range's bytes from its source server to a reserved destination
// extent (a ClusterPool::MigrationPlan) while application traffic keeps
// writing to the source, then hands the coordinator a clean point to flip
// the translation entry. The protocol:
//
//   1. copy pass   — chunked RDMA WRITEs src→dst over a real fabric QP
//                    (the copy stream contends with — and is congestion-
//                    controlled against — foreground traffic and incast).
//   2. dirty chase — a write watch on the source device marks every chunk
//                    an application RDMA WRITE lands in; marked chunks are
//                    re-copied while the engine is still serving. The dirty
//                    bit is cleared *before* the chunk is re-read, so a
//                    racing write re-marks it — never lost.
//   3. final drain — the coordinator detaches the instance from its engine
//                    (the registry handoff exports the resume snapshot and
//                    halts the engine's QPs), calls BeginFinalDrain(), and
//                    waits for Synced(): no dirty chunks, no copy in
//                    flight. Straggler writes already on the wire still
//                    land, re-mark their chunk, and are chased — Synced()
//                    only holds once they were copied too.
//   4. cutover     — ClusterPool::CommitMove retargets the translation
//                    entry and the instance re-attaches; every re-executed
//                    or new operation resolves to the destination server.
//
// Correctness leans on the same idempotent re-execution argument as the
// crash path (Section 5.3): writes the detached engine had not completed
// are re-executed against the destination; writes it had completed landed
// on the source before the detach and were dirty-chased across.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/units.h"
#include "core/cluster_pool.h"
#include "rdma/device.h"
#include "rdma/qp.h"
#include "telemetry/hub.h"

namespace cowbird::core {

class RegionMigrator {
 public:
  struct Config {
    Bytes chunk = KiB(64);
    int window = 4;  // outstanding copy WRITEs
    // Optional spans ("migration" track: copy/drain) + counters.
    telemetry::Hub* telemetry = nullptr;
  };

  // `to_dst` must be a connected QP on the *source* device whose peer lives
  // on the destination device; `send_cq` is its send CQ (the migrator takes
  // over its completion callback).
  RegionMigrator(rdma::Device& src_device, rdma::QueuePair& to_dst,
                 rdma::CompletionQueue& send_cq,
                 const ClusterPool::MigrationPlan& plan, Config config);
  ~RegionMigrator();
  RegionMigrator(const RegionMigrator&) = delete;
  RegionMigrator& operator=(const RegionMigrator&) = delete;

  // Arms the write watch and kicks the copy pass. Call from an event.
  void Start();

  // True once the initial pass has covered every chunk and no copy is in
  // flight — dirty chunks may remain; the coordinator may cut over now.
  bool ReadyForCutover() const;

  // Enters the drain phase. The serving engine must already be detached
  // (no new application writes are being *initiated*; stragglers still
  // land and are chased).
  void BeginFinalDrain();

  // Drain phase only: every chunk clean and nothing in flight — source and
  // destination hold identical bytes from here on.
  bool Synced() const;

  // Re-examines the dirty set and posts copies as the window allows. The
  // copy loop normally re-pumps itself off send completions; a straggler
  // write that lands while nothing is in flight marks its chunk with no
  // completion coming, so drain coordinators tick this until Synced().
  void Nudge() { Pump(); }

  // Disarms the write watch. Call after CommitMove.
  void Finish();

  bool started() const { return started_; }
  bool draining() const { return draining_; }
  std::uint64_t chunks_copied() const { return chunks_copied_; }
  std::uint64_t bytes_copied() const { return bytes_copied_; }
  std::uint64_t dirty_marks() const { return dirty_marks_; }
  std::uint64_t drain_chunks() const { return drain_chunks_; }
  const ClusterPool::MigrationPlan& plan() const { return plan_; }

 private:
  void OnWrite(std::uint64_t addr, std::uint32_t len);
  void Pump();
  void PostChunk(std::size_t index);
  std::size_t ChunkCount() const;

  rdma::Device* src_device_;
  rdma::QueuePair* qp_;
  rdma::CompletionQueue* cq_;
  ClusterPool::MigrationPlan plan_;
  Config config_;

  bool started_ = false;
  bool pass_done_ = false;   // initial sequential sweep finished
  bool draining_ = false;
  bool finished_ = false;
  std::size_t pass_next_ = 0;  // next chunk of the initial sweep
  int outstanding_ = 0;
  std::vector<bool> dirty_;

  std::uint64_t chunks_copied_ = 0;
  std::uint64_t bytes_copied_ = 0;
  std::uint64_t dirty_marks_ = 0;
  std::uint64_t drain_chunks_ = 0;

  telemetry::SpanTracer::SpanHandle copy_span_{};
  telemetry::SpanTracer::SpanHandle drain_span_{};
};

}  // namespace cowbird::core
