// Memory-pool region management.
//
// Section 3: pool memory "can be reserved or harvested from fragmented
// resources [47] but should be registered with the compute node client
// library". This allocator manages the pool side of that hand-shake: it
// carves registered-MR-backed regions out of a node's pool (first-fit over
// a free list, with coalescing on release) and emits the RegionInfo records
// the client registers and the engines resolve.
#pragma once

#include <cstdint>
#include <list>
#include <optional>

#include "common/check.h"
#include "core/instance.h"
#include "rdma/device.h"

namespace cowbird::core {

class RegionAllocator {
 public:
  // Registers `capacity` bytes at `base` on the memory node's device as one
  // MR; individual regions are sub-ranges (a single rkey serves them all,
  // as with harvested slabs in practice).
  RegionAllocator(rdma::Device& device, std::uint64_t base, Bytes capacity)
      : node_(device.node_id()), base_(base), capacity_(capacity) {
    mr_ = device.RegisterMemory(base, capacity);
    free_.push_back(Extent{base, capacity});
  }

  // Carves a region of `size` bytes; returns nullopt when fragmented full.
  std::optional<RegionInfo> Allocate(std::uint16_t region_id, Bytes size) {
    COWBIRD_CHECK(size > 0);
    const Bytes aligned = (size + 63) & ~Bytes{63};
    for (auto it = free_.begin(); it != free_.end(); ++it) {
      if (it->length < aligned) continue;
      RegionInfo region;
      region.region_id = region_id;
      region.memory_node = node_;
      region.remote_base = it->start;
      region.rkey = mr_->rkey;
      region.size = aligned;
      it->start += aligned;
      it->length -= aligned;
      if (it->length == 0) free_.erase(it);
      allocated_ += aligned;
      return region;
    }
    return std::nullopt;
  }

  // Returns a region to the pool (harvested memory being reclaimed, or a
  // channel torn down). Coalesces with free neighbours.
  void Release(const RegionInfo& region) {
    COWBIRD_CHECK(region.memory_node == node_);
    COWBIRD_CHECK(region.remote_base >= base_ &&
                  region.remote_base + region.size <= base_ + capacity_);
    COWBIRD_CHECK(allocated_ >= region.size);
    allocated_ -= region.size;
    Extent freed{region.remote_base, region.size};
    auto it = free_.begin();
    while (it != free_.end() && it->start < freed.start) ++it;
    // Coalesce with the previous extent.
    if (it != free_.begin()) {
      auto prev = std::prev(it);
      COWBIRD_CHECK(prev->start + prev->length <= freed.start);
      if (prev->start + prev->length == freed.start) {
        prev->length += freed.length;
        // And possibly with the next one too.
        if (it != free_.end() && prev->start + prev->length == it->start) {
          prev->length += it->length;
          free_.erase(it);
        }
        return;
      }
    }
    // Coalesce with the next extent.
    if (it != free_.end()) {
      COWBIRD_CHECK(freed.start + freed.length <= it->start);
      if (freed.start + freed.length == it->start) {
        it->start = freed.start;
        it->length += freed.length;
        return;
      }
    }
    free_.insert(it, freed);
  }

  Bytes allocated() const { return allocated_; }
  Bytes free_bytes() const { return capacity_ - allocated_; }
  std::size_t fragments() const { return free_.size(); }
  std::uint32_t rkey() const { return mr_->rkey; }

 private:
  struct Extent {
    std::uint64_t start;
    Bytes length;
  };

  net::NodeId node_;
  std::uint64_t base_;
  Bytes capacity_;
  const rdma::MemoryRegion* mr_ = nullptr;
  std::list<Extent> free_;  // sorted by start address
  Bytes allocated_ = 0;
};

}  // namespace cowbird::core
