// Memory-pool region management.
//
// Section 3: pool memory "can be reserved or harvested from fragmented
// resources [47] but should be registered with the compute node client
// library". Two layers manage the pool side of that hand-shake:
//
//   * ExtentAllocator — the raw free-list arithmetic: first-fit carving
//     over a sorted extent list with coalescing on release. One instance
//     per memory server's registered slab.
//   * RegionAllocator — the original single-server façade: one device, one
//     MR, RegionInfo in and out. Kept for the single-pool callers.
//
// The multi-server generalization (grow/shrink/rebalance across servers,
// per-range ownership) is core::ClusterPool, which composes one
// ExtentAllocator per server — see cluster_pool.h and DESIGN.md §14.
#pragma once

#include <algorithm>
#include <cstdint>
#include <list>
#include <optional>

#include "common/check.h"
#include "core/instance.h"
#include "rdma/device.h"

namespace cowbird::core {

// First-fit extent allocator over [base, base+capacity). Pure bookkeeping:
// no device, no MR — the callers own what the addresses mean.
class ExtentAllocator {
 public:
  struct Extent {
    std::uint64_t start;
    Bytes length;
  };

  ExtentAllocator(std::uint64_t base, Bytes capacity)
      : base_(base), capacity_(capacity) {
    free_.push_back(Extent{base, capacity});
  }

  // Carves `size` bytes (rounded up to `align`); nullopt when no free
  // extent fits the whole request contiguously.
  std::optional<std::uint64_t> Allocate(Bytes size, Bytes align = 64) {
    COWBIRD_CHECK(size > 0 && align > 0);
    const Bytes aligned = AlignUp(size, align);
    for (auto it = free_.begin(); it != free_.end(); ++it) {
      if (it->length < aligned) continue;
      const std::uint64_t start = it->start;
      it->start += aligned;
      it->length -= aligned;
      if (it->length == 0) free_.erase(it);
      allocated_ += aligned;
      return start;
    }
    return std::nullopt;
  }

  // Carves the largest available extent up to `size` bytes, in multiples of
  // `align` — the spill path when a region is split across servers. Returns
  // nullopt when not even one aligned unit is free contiguously.
  std::optional<Extent> AllocateAtMost(Bytes size, Bytes align) {
    COWBIRD_CHECK(size > 0 && align > 0);
    auto best = free_.end();
    for (auto it = free_.begin(); it != free_.end(); ++it) {
      if (it->length < align) continue;
      if (best == free_.end() || it->length > best->length) best = it;
    }
    if (best == free_.end()) return std::nullopt;
    const Bytes take =
        std::min(AlignUp(size, align), best->length / align * align);
    Extent out{best->start, take};
    best->start += take;
    best->length -= take;
    if (best->length == 0) free_.erase(best);
    allocated_ += take;
    return out;
  }

  // Returns an extent to the free list, coalescing with its neighbours.
  void Release(std::uint64_t start, Bytes length) {
    COWBIRD_CHECK(start >= base_ && start + length <= base_ + capacity_);
    COWBIRD_CHECK(allocated_ >= length);
    allocated_ -= length;
    Extent freed{start, length};
    auto it = free_.begin();
    while (it != free_.end() && it->start < freed.start) ++it;
    // Coalesce with the previous extent.
    if (it != free_.begin()) {
      auto prev = std::prev(it);
      COWBIRD_CHECK(prev->start + prev->length <= freed.start);
      if (prev->start + prev->length == freed.start) {
        prev->length += freed.length;
        // And possibly with the next one too.
        if (it != free_.end() && prev->start + prev->length == it->start) {
          prev->length += it->length;
          free_.erase(it);
        }
        return;
      }
    }
    // Coalesce with the next extent.
    if (it != free_.end()) {
      COWBIRD_CHECK(freed.start + freed.length <= it->start);
      if (freed.start + freed.length == it->start) {
        it->start = freed.start;
        it->length += freed.length;
        return;
      }
    }
    free_.insert(it, freed);
  }

  std::uint64_t base() const { return base_; }
  Bytes capacity() const { return capacity_; }
  Bytes allocated() const { return allocated_; }
  Bytes free_bytes() const { return capacity_ - allocated_; }
  std::size_t fragments() const { return free_.size(); }

  static Bytes AlignUp(Bytes size, Bytes align) {
    return (size + align - 1) / align * align;
  }

 private:
  std::uint64_t base_;
  Bytes capacity_;
  std::list<Extent> free_;  // sorted by start address
  Bytes allocated_ = 0;
};

class RegionAllocator {
 public:
  // Registers `capacity` bytes at `base` on the memory node's device as one
  // MR; individual regions are sub-ranges (a single rkey serves them all,
  // as with harvested slabs in practice).
  RegionAllocator(rdma::Device& device, std::uint64_t base, Bytes capacity)
      : node_(device.node_id()), extents_(base, capacity) {
    mr_ = device.RegisterMemory(base, capacity);
  }

  // Carves a region of `size` bytes; returns nullopt when fragmented full.
  std::optional<RegionInfo> Allocate(std::uint16_t region_id, Bytes size) {
    COWBIRD_CHECK(size > 0);
    const Bytes aligned = ExtentAllocator::AlignUp(size, 64);
    const auto start = extents_.Allocate(aligned, 64);
    if (!start.has_value()) return std::nullopt;
    RegionInfo region;
    region.region_id = region_id;
    region.memory_node = node_;
    region.remote_base = *start;
    region.rkey = mr_->rkey;
    region.size = aligned;
    return region;
  }

  // Returns a region to the pool (harvested memory being reclaimed, or a
  // channel torn down). Coalesces with free neighbours.
  void Release(const RegionInfo& region) {
    COWBIRD_CHECK(region.memory_node == node_);
    extents_.Release(region.remote_base, region.size);
  }

  Bytes allocated() const { return extents_.allocated(); }
  Bytes free_bytes() const { return extents_.free_bytes(); }
  std::size_t fragments() const { return extents_.fragments(); }
  std::uint32_t rkey() const { return mr_->rkey; }

 private:
  net::NodeId node_;
  const rdma::MemoryRegion* mr_ = nullptr;
  ExtentAllocator extents_;
};

}  // namespace cowbird::core
