// Request metadata entries (Table 3) and request-ID encoding (Section 4.4).
//
// A metadata entry is a fixed 24-byte block. rw_type doubles as the validity
// flag and is written *last* when the client issues a request (Section 4.3):
// under x86-TSO the earlier field writes are visible before it, so the
// offload engine can never observe a half-written entry with a valid type.
// Entries are serialized little-endian (host memory layout, fetched by RDMA
// as raw bytes).
#pragma once

#include <cstdint>
#include <span>

#include "common/check.h"
#include "common/sparse_memory.h"
#include "core/layout.h"

namespace cowbird::core {

enum class RwType : std::uint16_t {
  kInvalid = 0,
  kRead = 1,
  kWrite = 2,
};

struct RequestMetadata {
  RwType rw_type = RwType::kInvalid;
  std::uint16_t region_id = 0;
  std::uint32_t length = 0;
  std::uint64_t req_addr = 0;   // read: memory-node addr; write: compute addr
  std::uint64_t resp_addr = 0;  // read: compute addr; write: memory-node addr

  // Field offsets within the 24-byte entry.
  static constexpr std::uint64_t kRwTypeOffset = 0;
  static constexpr std::uint64_t kRegionOffset = 2;
  static constexpr std::uint64_t kLengthOffset = 4;
  static constexpr std::uint64_t kReqAddrOffset = 8;
  static constexpr std::uint64_t kRespAddrOffset = 16;

  // Writes the entry into `mem` at `addr`, rw_type last (the publish).
  void Publish(SparseMemory& mem, std::uint64_t addr) const {
    mem.WriteValue<std::uint16_t>(addr + kRegionOffset, region_id);
    mem.WriteValue<std::uint32_t>(addr + kLengthOffset, length);
    mem.WriteValue<std::uint64_t>(addr + kReqAddrOffset, req_addr);
    mem.WriteValue<std::uint64_t>(addr + kRespAddrOffset, resp_addr);
    mem.WriteValue<std::uint16_t>(addr + kRwTypeOffset,
                                  static_cast<std::uint16_t>(rw_type));
  }

  static RequestMetadata ParseBytes(std::span<const std::uint8_t> raw) {
    COWBIRD_CHECK(raw.size() >= kMetadataEntryBytes);
    auto rd16 = [&](std::uint64_t at) {
      return static_cast<std::uint16_t>(raw[at] | (raw[at + 1] << 8));
    };
    auto rd32 = [&](std::uint64_t at) {
      return static_cast<std::uint32_t>(raw[at]) |
             (static_cast<std::uint32_t>(raw[at + 1]) << 8) |
             (static_cast<std::uint32_t>(raw[at + 2]) << 16) |
             (static_cast<std::uint32_t>(raw[at + 3]) << 24);
    };
    auto rd64 = [&](std::uint64_t at) {
      return static_cast<std::uint64_t>(rd32(at)) |
             (static_cast<std::uint64_t>(rd32(at + 4)) << 32);
    };
    RequestMetadata m;
    m.rw_type = static_cast<RwType>(rd16(kRwTypeOffset));
    m.region_id = rd16(kRegionOffset);
    m.length = rd32(kLengthOffset);
    m.req_addr = rd64(kReqAddrOffset);
    m.resp_addr = rd64(kRespAddrOffset);
    return m;
  }
};

// Request IDs encode type, issuing thread, and a per-thread per-type
// sequence number so that completion checks are integer comparisons against
// the progress counters (Section 4.4).
//
//   bit 63      : type (0 = read, 1 = write)
//   bits 48..62 : thread index
//   bits 0..47  : 1-based sequence number
class ReqId {
 public:
  ReqId() = default;

  static ReqId Make(RwType type, int thread, std::uint64_t seq) {
    COWBIRD_DCHECK(type == RwType::kRead || type == RwType::kWrite);
    COWBIRD_DCHECK(thread >= 0 && thread < (1 << 15));
    COWBIRD_DCHECK(seq > 0 && seq < (1ull << 48));
    std::uint64_t v = seq;
    v |= static_cast<std::uint64_t>(thread) << 48;
    if (type == RwType::kWrite) v |= 1ull << 63;
    return ReqId(v);
  }

  RwType type() const {
    return (value_ >> 63) ? RwType::kWrite : RwType::kRead;
  }
  int thread() const { return static_cast<int>((value_ >> 48) & 0x7FFF); }
  std::uint64_t seq() const { return value_ & ((1ull << 48) - 1); }

  std::uint64_t value() const { return value_; }
  bool valid() const { return value_ != 0; }
  friend bool operator==(ReqId a, ReqId b) { return a.value_ == b.value_; }

 private:
  explicit ReqId(std::uint64_t v) : value_(v) {}
  std::uint64_t value_ = 0;
};

}  // namespace cowbird::core
