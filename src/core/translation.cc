#include "core/translation.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/check.h"

namespace cowbird::core {

namespace {

bool Before(const RangeEntry& e, std::pair<std::uint16_t, std::uint64_t> key) {
  if (e.region_id != key.first) return e.region_id < key.first;
  return e.vbase < key.second;
}

bool KeyBefore(std::pair<std::uint16_t, std::uint64_t> key,
               const RangeEntry& e) {
  if (key.first != e.region_id) return key.first < e.region_id;
  return key.second < e.vbase;
}

std::string Hex(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string Describe(const RangeEntry& e) {
  return "[" + Hex(e.vbase) + ", " + Hex(e.vbase + e.length) + ") -> node " +
         std::to_string(e.node) + " @ " + Hex(e.server_base);
}

}  // namespace

std::string TranslateError::ToString() const {
  std::string out = "translate failed: region " + std::to_string(region_id) +
                    " vaddr " + Hex(vaddr) + " len " + std::to_string(length);
  switch (kind) {
    case Kind::kUnknownRegion:
      out += ": no ranges mapped for this region";
      break;
    case Kind::kUnmappedHole:
      out += ": address falls in an unmapped hole";
      break;
    case Kind::kStraddle:
      out += ": access straddles a range boundary";
      break;
  }
  if (has_below) out += "; nearest range below: " + Describe(below);
  if (has_above) out += "; nearest range above: " + Describe(above);
  if (!has_below && !has_above && kind != Kind::kUnknownRegion) {
    out += "; no mapped neighbours";
  }
  return out;
}

void TranslationTable::Install(const RangeEntry& entry) {
  COWBIRD_CHECK(entry.length > 0);
  auto it = std::lower_bound(entries_.begin(), entries_.end(),
                             std::make_pair(entry.region_id, entry.vbase),
                             Before);
  // No overlap with the neighbour on either side (same region only).
  if (it != entries_.begin()) {
    const RangeEntry& prev = *std::prev(it);
    COWBIRD_CHECK(prev.region_id != entry.region_id ||
                  prev.vbase + prev.length <= entry.vbase);
  }
  if (it != entries_.end()) {
    COWBIRD_CHECK(it->region_id != entry.region_id ||
                  entry.vbase + entry.length <= it->vbase);
  }
  entries_.insert(it, entry);
}

bool TranslationTable::Retarget(std::uint16_t region_id, std::uint64_t vbase,
                                net::NodeId node, std::uint32_t rkey,
                                std::uint64_t server_base) {
  auto it = std::lower_bound(entries_.begin(), entries_.end(),
                             std::make_pair(region_id, vbase), Before);
  if (it == entries_.end() || it->region_id != region_id ||
      it->vbase != vbase) {
    return false;
  }
  it->node = node;
  it->rkey = rkey;
  it->server_base = server_base;
  return true;
}

bool TranslationTable::Remove(std::uint16_t region_id, std::uint64_t vbase) {
  auto it = std::lower_bound(entries_.begin(), entries_.end(),
                             std::make_pair(region_id, vbase), Before);
  if (it == entries_.end() || it->region_id != region_id ||
      it->vbase != vbase) {
    return false;
  }
  entries_.erase(it);
  return true;
}

std::optional<Translation> TranslationTable::Lookup(
    std::uint16_t region_id, std::uint64_t vaddr, std::uint64_t length,
    TranslateError* error) const {
  // First entry with vbase > vaddr; the candidate owner is the one before.
  auto above = std::upper_bound(entries_.begin(), entries_.end(),
                                std::make_pair(region_id, vaddr), KeyBefore);
  auto candidate = entries_.end();
  if (above != entries_.begin()) {
    auto prev = std::prev(above);
    if (prev->region_id == region_id) candidate = prev;
  }
  if (candidate != entries_.end() && candidate->Contains(vaddr, length)) {
    return Translation{candidate->node, candidate->rkey,
                       candidate->server_base + (vaddr - candidate->vbase)};
  }
  if (error != nullptr) {
    error->region_id = region_id;
    error->vaddr = vaddr;
    error->length = length;
    error->has_below = candidate != entries_.end();
    if (error->has_below) error->below = *candidate;
    error->has_above =
        above != entries_.end() && above->region_id == region_id;
    if (error->has_above) error->above = *above;
    if (!error->has_below && !error->has_above) {
      error->kind = TranslateError::Kind::kUnknownRegion;
    } else if (candidate != entries_.end() && vaddr >= candidate->vbase &&
               vaddr < candidate->vbase + candidate->length) {
      error->kind = TranslateError::Kind::kStraddle;
    } else {
      error->kind = TranslateError::Kind::kUnmappedHole;
    }
  }
  return std::nullopt;
}

std::vector<RangeEntry> TranslationTable::RangesFor(
    std::uint16_t region_id) const {
  std::vector<RangeEntry> out;
  for (const RangeEntry& e : entries_) {
    if (e.region_id == region_id) out.push_back(e);
  }
  return out;
}

}  // namespace cowbird::core
