// Range-based address translation for the elastic memory pool.
//
// MIND (NSDI '21) argues the network is the right place for memory
// management: the switch holds a range table mapping virtual pool addresses
// to {memory server, rkey, server offset} and rewrites RDMA requests at
// line rate. This header is that table, engine-agnostic: the Cowbird-P4
// model installs it as a pipeline match stage (range match in the data
// plane), while the Cowbird-Spot agent mirrors the same entries agent-side
// and consults them before posting each pool verb — the same placement
// asymmetry as the TDM discussion in §5.4 (what the switch does per packet,
// the agent does per operation). See DESIGN.md §14.
//
// A region is a contiguous *virtual* interval (what the client addresses);
// its backing may be split across servers as multiple ranges with per-range
// ownership. Migration retargets one range's owner atomically in virtual
// time — lookups before the flip resolve to the old server, lookups after
// to the new one, and nothing in between.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/units.h"
#include "net/packet.h"

namespace cowbird::core {

// One translation entry: virtual interval [vbase, vbase+length) of
// `region_id` lives on `node` at [server_base, server_base+length) under
// `rkey`.
struct RangeEntry {
  std::uint16_t region_id = 0;
  std::uint64_t vbase = 0;
  Bytes length = 0;
  net::NodeId node = 0;
  std::uint32_t rkey = 0;
  std::uint64_t server_base = 0;

  bool Contains(std::uint64_t vaddr, std::uint64_t len) const {
    return vaddr >= vbase && vaddr + len <= vbase + length && len <= length;
  }
};

// A resolved pool access: post to `node` at `addr` under `rkey`.
struct Translation {
  net::NodeId node = 0;
  std::uint32_t rkey = 0;
  std::uint64_t addr = 0;
};

// Structured lookup failure: names the address and the nearest mapped
// ranges so a misrouted access reads like a page-fault report, not a
// silent nullopt.
struct TranslateError {
  enum class Kind : std::uint8_t {
    kUnknownRegion,  // no range registered for the region id at all
    kUnmappedHole,   // address falls between mapped ranges
    kStraddle,       // access starts in one range but crosses its end
  };
  Kind kind = Kind::kUnknownRegion;
  std::uint16_t region_id = 0;
  std::uint64_t vaddr = 0;
  std::uint64_t length = 0;
  bool has_below = false;  // nearest mapped range ending at or below vaddr
  bool has_above = false;  // nearest mapped range starting above vaddr
  RangeEntry below;
  RangeEntry above;

  std::string ToString() const;
};

// Sorted, non-overlapping range table. Single-writer (the control plane /
// migration coordinator); engines hold their own mirror built from the
// descriptor, so a live engine never observes a mutation.
class TranslationTable {
 public:
  // Inserts one range; CHECK-fails on overlap with an existing range of the
  // same region.
  void Install(const RangeEntry& entry);

  // Atomically repoints the range identified by (region_id, vbase) at a new
  // owner. Returns false if no such range exists. This is the migration
  // cutover: a single in-place store in virtual time.
  bool Retarget(std::uint16_t region_id, std::uint64_t vbase,
                net::NodeId node, std::uint32_t rkey,
                std::uint64_t server_base);

  // Removes the range identified by (region_id, vbase); false if unknown.
  bool Remove(std::uint16_t region_id, std::uint64_t vbase);

  // Resolves `length` bytes at virtual address `vaddr` of `region_id`.
  // On failure returns nullopt and fills `error` (when non-null) with the
  // address and its nearest mapped neighbours.
  std::optional<Translation> Lookup(std::uint16_t region_id,
                                    std::uint64_t vaddr, std::uint64_t length,
                                    TranslateError* error = nullptr) const;

  // All ranges of one region, ascending vbase.
  std::vector<RangeEntry> RangesFor(std::uint16_t region_id) const;

  const std::vector<RangeEntry>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  void Clear() { entries_.clear(); }

 private:
  // Sorted by (region_id, vbase) — lookups lower-bound into the region's
  // slice, the software analogue of the switch's range-match stage.
  std::vector<RangeEntry> entries_;
};

}  // namespace cowbird::core
