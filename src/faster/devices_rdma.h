// IDevice backends over the fabric: one-sided RDMA (sync/async), Cowbird,
// and Redy. Each instance is per-application-thread (FASTER threads own
// their I/O contexts; the paper's port creates a notification group per
// thread through poll_create()).
#pragma once

#include <deque>

#include "baselines/onesided.h"
#include "baselines/redy.h"
#include "core/client.h"
#include "faster/idevice.h"

namespace cowbird::faster {

// One-sided RDMA, synchronous: the calling thread posts and spins per I/O.
class OneSidedSyncDevice : public IDevice {
 public:
  OneSidedSyncDevice(baselines::OneSidedEndpoint ep, std::uint64_t pool_base,
                     rdma::CostModel costs)
      : ep_(ep), pool_base_(pool_base), costs_(costs) {}

  sim::Task<void> ReadAsync(sim::SimThread& thread, std::uint64_t offset,
                            std::uint64_t dest_addr, std::uint32_t len,
                            CompletionFn done) override {
    co_await baselines::SyncRead(thread, costs_, ep_, pool_base_ + offset,
                                 dest_addr, len);
    done();
  }

  sim::Task<void> WriteAsync(sim::SimThread& thread, std::uint64_t src_addr,
                             std::uint64_t offset, std::uint32_t len,
                             CompletionFn done) override {
    co_await baselines::SyncWrite(thread, costs_, ep_, src_addr,
                                  pool_base_ + offset, len);
    done();
  }

  sim::Task<void> Poll(sim::SimThread&) override { co_return; }

 private:
  baselines::OneSidedEndpoint ep_;
  std::uint64_t pool_base_;
  rdma::CostModel costs_;
};

// One-sided RDMA, asynchronous: pipelined posts, completions harvested from
// Poll(). Every operation still pays the full post+poll verb cost on the
// application thread.
class OneSidedAsyncDevice : public IDevice {
 public:
  OneSidedAsyncDevice(baselines::OneSidedEndpoint ep, std::uint64_t pool_base,
                      rdma::CostModel costs, int window)
      : pipeline_(ep, costs, window), pool_base_(pool_base) {}

  sim::Task<void> ReadAsync(sim::SimThread& thread, std::uint64_t offset,
                            std::uint64_t dest_addr, std::uint32_t len,
                            CompletionFn done) override {
    while (!pipeline_.CanIssue()) co_await Poll(thread);
    pending_.push_back(std::move(done));
    co_await pipeline_.IssueRead(thread, pool_base_ + offset, dest_addr,
                                 len);
  }

  sim::Task<void> WriteAsync(sim::SimThread& thread, std::uint64_t src_addr,
                             std::uint64_t offset, std::uint32_t len,
                             CompletionFn done) override {
    while (!pipeline_.CanIssue()) co_await Poll(thread);
    pending_.push_back(std::move(done));
    co_await pipeline_.IssueWrite(thread, src_addr, pool_base_ + offset,
                                  len);
  }

  sim::Task<void> Poll(sim::SimThread& thread) override {
    // Harvest whatever has completed (RC completes in order).
    for (;;) {
      auto cqe = co_await pipeline_.Poll(thread);
      if (!cqe.has_value()) break;
      COWBIRD_CHECK(!pending_.empty());
      CompletionFn done = std::move(pending_.front());
      pending_.pop_front();
      done();
    }
  }

 private:
  baselines::AsyncPipeline pipeline_;
  std::uint64_t pool_base_;
  std::deque<CompletionFn> pending_;
};

// Cowbird: the IDevice instantiation of Section 7. async_read/async_write
// plus a per-thread notification group; Poll() is poll_wait with a zero
// timeout.
class CowbirdDevice : public IDevice {
 public:
  CowbirdDevice(core::CowbirdClient::ThreadContext& ctx,
                std::uint16_t region_id)
      : ctx_(&ctx), region_(region_id), poll_(ctx.PollCreate()) {}

  sim::Task<void> ReadAsync(sim::SimThread& thread, std::uint64_t offset,
                            std::uint64_t dest_addr, std::uint32_t len,
                            CompletionFn done) override {
    for (;;) {
      auto id = co_await ctx_->AsyncRead(thread, region_, offset, dest_addr,
                                         len);
      if (id.has_value()) {
        ctx_->PollAdd(poll_, *id);
        pending_reads_.push_back(std::move(done));
        co_return;
      }
      co_await Poll(thread);  // rings full: drain completions, retry
      co_await thread.Idle(200);
    }
  }

  sim::Task<void> WriteAsync(sim::SimThread& thread, std::uint64_t src_addr,
                             std::uint64_t offset, std::uint32_t len,
                             CompletionFn done) override {
    for (;;) {
      auto id = co_await ctx_->AsyncWrite(thread, region_, src_addr, offset,
                                          len);
      if (id.has_value()) {
        ctx_->PollAdd(poll_, *id);
        pending_writes_.push_back(std::move(done));
        co_return;
      }
      co_await Poll(thread);
      co_await thread.Idle(200);
    }
  }

  sim::Task<void> Poll(sim::SimThread& thread) override {
    auto completed = co_await ctx_->PollWait(thread, poll_, 64, 0);
    for (const core::ReqId& id : completed) {
      // Cowbird is per-type FIFO: match callbacks by operation type.
      auto& queue = id.type() == core::RwType::kRead ? pending_reads_
                                                     : pending_writes_;
      COWBIRD_CHECK(!queue.empty());
      CompletionFn done = std::move(queue.front());
      queue.pop_front();
      done();
    }
  }

 private:
  core::CowbirdClient::ThreadContext* ctx_;
  std::uint16_t region_;
  core::PollId poll_;
  std::deque<CompletionFn> pending_reads_;
  std::deque<CompletionFn> pending_writes_;
};

// Redy: requests hop to a pinned I/O thread on the compute node.
class RedyDevice : public IDevice {
 public:
  RedyDevice(baselines::RedyEngine& engine, int io_index,
             std::uint64_t pool_base, sim::Simulation& sim)
      : engine_(&engine), io_index_(io_index), pool_base_(pool_base),
        completions_(sim) {}

  sim::Task<void> ReadAsync(sim::SimThread& thread, std::uint64_t offset,
                            std::uint64_t dest_addr, std::uint32_t len,
                            CompletionFn done) override {
    pending_.push_back(std::move(done));
    co_await engine_->Submit(
        thread, io_index_,
        baselines::RedyEngine::Request{true, pool_base_ + offset, dest_addr,
                                       len, [this] {
                                         completions_.Send(true);
                                       }});
  }

  sim::Task<void> WriteAsync(sim::SimThread& thread, std::uint64_t src_addr,
                             std::uint64_t offset, std::uint32_t len,
                             CompletionFn done) override {
    pending_.push_back(std::move(done));
    co_await engine_->Submit(
        thread, io_index_,
        baselines::RedyEngine::Request{false, pool_base_ + offset, src_addr,
                                       len, [this] {
                                         completions_.Send(true);
                                       }});
  }

  sim::Task<void> Poll(sim::SimThread& thread) override {
    while (completions_.TryReceive()) {
      // Completion notification check on the app side.
      co_await thread.Work(30, sim::CpuCategory::kCommunication);
      COWBIRD_CHECK(!pending_.empty());
      CompletionFn done = std::move(pending_.front());
      pending_.pop_front();
      done();
    }
  }

 private:
  baselines::RedyEngine* engine_;
  int io_index_;
  std::uint64_t pool_base_;
  sim::Channel<bool> completions_;
  std::deque<CompletionFn> pending_;
};

}  // namespace cowbird::faster
