// The storage-layer interface FASTER exposes (IDevice) and its local/SSD
// implementations.
//
// FASTER's hybrid log spills the read-only portion to an IDevice; the paper
// ports FASTER to Cowbird by instantiating an IDevice over the Cowbird API
// (Section 7). We reproduce that seam: every storage backend in Figure 9 is
// an IDevice here. All device CPU costs are charged to the calling
// application thread as kCommunication (that is precisely the overhead
// Figure 10 measures); data always physically moves so reads can be
// verified end-to-end.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>

#include "common/sparse_memory.h"
#include "common/units.h"
#include "rdma/params.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "sim/thread.h"

namespace cowbird::faster {

using CompletionFn = std::function<void()>;

class IDevice {
 public:
  virtual ~IDevice() = default;

  // Reads `len` bytes at device offset `offset` into compute-node memory at
  // `dest_addr`. If the call completes inline, `done` is invoked before
  // returning; otherwise it fires later (from Poll or an engine event).
  virtual sim::Task<void> ReadAsync(sim::SimThread& thread,
                                    std::uint64_t offset,
                                    std::uint64_t dest_addr,
                                    std::uint32_t len, CompletionFn done) = 0;

  // Writes `len` bytes from compute memory `src_addr` to device `offset`.
  virtual sim::Task<void> WriteAsync(sim::SimThread& thread,
                                     std::uint64_t src_addr,
                                     std::uint64_t offset, std::uint32_t len,
                                     CompletionFn done) = 0;

  // Completion pump, called periodically by application threads (FASTER's
  // CompletePending()). Sync devices make this a no-op.
  virtual sim::Task<void> Poll(sim::SimThread& thread) = 0;
};

// Upper bound: "remote" data is actually in compute-node DRAM.
class LocalMemoryDevice : public IDevice {
 public:
  LocalMemoryDevice(SparseMemory& memory, std::uint64_t base,
                    rdma::CostModel costs)
      : memory_(&memory), base_(base), costs_(costs) {}

  sim::Task<void> ReadAsync(sim::SimThread& thread, std::uint64_t offset,
                            std::uint64_t dest_addr, std::uint32_t len,
                            CompletionFn done) override {
    co_await thread.Work(costs_.LocalRecordCost(len),
                         sim::CpuCategory::kCompute);
    std::vector<std::uint8_t> buf(len);
    memory_->Read(base_ + offset, buf);
    memory_->Write(dest_addr, buf);
    done();
  }

  sim::Task<void> WriteAsync(sim::SimThread& thread, std::uint64_t src_addr,
                             std::uint64_t offset, std::uint32_t len,
                             CompletionFn done) override {
    co_await thread.Work(costs_.CopyCost(len), sim::CpuCategory::kCompute);
    std::vector<std::uint8_t> buf(len);
    memory_->Read(src_addr, buf);
    memory_->Write(base_ + offset, buf);
    done();
  }

  sim::Task<void> Poll(sim::SimThread&) override { co_return; }

 private:
  SparseMemory* memory_;
  std::uint64_t base_;
  rdma::CostModel costs_;
};

// Local SATA SSD (FASTER's default backend): 6 Gb/s of device bandwidth
// shared across threads, ~80 us access latency, and a kernel I/O submission
// path that costs real CPU per operation.
struct SsdParams {
  BitRate bandwidth = BitRate::Gbps(6);
  Nanos access_latency = Micros(80);
  // SATA SSDs are IOPS-bound on small random accesses (~90k IOPS): every
  // command occupies the device for at least this long, regardless of size.
  Nanos min_service = Micros(11);
  Nanos submit_cpu = Micros(1.5);       // syscall + block layer + interrupt
  Nanos complete_cpu = 400;             // completion reap per I/O
};

class SsdDevice : public IDevice {
 public:
  using Params = SsdParams;

  SsdDevice(sim::Simulation& sim, SparseMemory& memory, std::uint64_t base,
            Params params = Params())
      : sim_(&sim), memory_(&memory), base_(base), params_(params),
        completions_(sim) {}

  sim::Task<void> ReadAsync(sim::SimThread& thread, std::uint64_t offset,
                            std::uint64_t dest_addr, std::uint32_t len,
                            CompletionFn done) override {
    co_await thread.Work(params_.submit_cpu,
                         sim::CpuCategory::kCommunication);
    Submit(Job{true, offset, dest_addr, len, std::move(done)});
  }

  sim::Task<void> WriteAsync(sim::SimThread& thread, std::uint64_t src_addr,
                             std::uint64_t offset, std::uint32_t len,
                             CompletionFn done) override {
    co_await thread.Work(params_.submit_cpu,
                         sim::CpuCategory::kCommunication);
    Submit(Job{false, offset, src_addr, len, std::move(done)});
  }

  sim::Task<void> Poll(sim::SimThread& thread) override {
    while (auto done = completions_.TryReceive()) {
      co_await thread.Work(params_.complete_cpu,
                           sim::CpuCategory::kCommunication);
      (*done)();
    }
  }

 private:
  struct Job {
    bool is_read;
    std::uint64_t offset;
    std::uint64_t host_addr;
    std::uint32_t len;
    CompletionFn done;
  };

  void Submit(Job job) {
    queue_.push_back(std::move(job));
    if (!busy_) StartNext();
  }

  void StartNext() {
    if (queue_.empty()) {
      busy_ = false;
      return;
    }
    busy_ = true;
    Job job = std::move(queue_.front());
    queue_.pop_front();
    const Nanos service = std::max(params_.min_service,
                                   params_.bandwidth.TransmitTime(job.len));
    // The device is occupied for the transfer time; access latency overlaps
    // with queueing of subsequent requests (NCQ-style).
    sim_->ScheduleAfter(service, [this] { StartNext(); });
    sim_->ScheduleAfter(service + params_.access_latency,
                        [this, job = std::move(job)]() mutable {
                          std::vector<std::uint8_t> buf(job.len);
                          if (job.is_read) {
                            memory_->Read(base_ + job.offset, buf);
                            memory_->Write(job.host_addr, buf);
                          } else {
                            memory_->Read(job.host_addr, buf);
                            memory_->Write(base_ + job.offset, buf);
                          }
                          completions_.Send(std::move(job.done));
                        });
  }

  sim::Simulation* sim_;
  SparseMemory* memory_;
  std::uint64_t base_;
  Params params_;
  std::deque<Job> queue_;
  bool busy_ = false;
  sim::Channel<CompletionFn> completions_;
};

}  // namespace cowbird::faster
