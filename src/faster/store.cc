#include "faster/store.h"

#include "common/check.h"

namespace cowbird::faster {

FasterStore::FasterStore(SparseMemory& memory, Config config)
    : memory_(&memory), config_(config) {
  COWBIRD_CHECK((config_.index_buckets & (config_.index_buckets - 1)) == 0);
  COWBIRD_CHECK(config_.memory_budget % config_.spill_page == 0);
  index_.resize(config_.index_buckets);
}

std::uint64_t FasterStore::HashKey(std::uint64_t key) {
  // 64-bit finalizer (splittable-mix); cheap and well distributed.
  std::uint64_t h = key + 0x9E3779B97F4A7C15ull;
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
  h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
  return h ^ (h >> 31);
}

std::uint64_t FasterStore::IndexSlot(std::uint64_t key) const {
  const std::uint64_t mask = config_.index_buckets - 1;
  std::uint64_t slot = HashKey(key) & mask;
  for (;;) {
    const IndexEntry& entry = index_[slot];
    if (entry.address == kInvalidAddress || entry.key == key) return slot;
    slot = (slot + 1) & mask;
  }
}

sim::Task<void> FasterStore::MaybeSpill(sim::SimThread& thread,
                                        IDevice& device, Bytes incoming) {
  // Make room for `incoming` bytes of appends in the mutable region.
  while (tail_ + incoming > head_ + config_.memory_budget) {
    if (spill_inflight_) {
      // Another thread's spill is draining; poll completions and wait.
      co_await device.Poll(thread);
      co_await thread.Idle(500);
      continue;
    }
    spill_inflight_ = true;
    const std::uint64_t spill_at = head_;
    const Bytes page = config_.spill_page;
    ++spills_;
    // The page is contiguous in the circular buffer because budget is a
    // multiple of the page size.
    co_await device.WriteAsync(
        thread, MemSlotAddr(spill_at), spill_at,
        static_cast<std::uint32_t>(page), [this, spill_at, page] {
          COWBIRD_CHECK(head_ == spill_at);
          head_ += page;
          spill_inflight_ = false;
        });
    // Wait for the spill to land before reusing the region.
    while (spill_inflight_) {
      co_await device.Poll(thread);
      if (spill_inflight_) co_await thread.Idle(500);
    }
  }
}

sim::Task<void> FasterStore::Upsert(sim::SimThread& thread, IDevice& device,
                                    std::uint64_t key,
                                    std::span<const std::uint8_t> value) {
  const Bytes record = RecordSize(static_cast<std::uint32_t>(value.size()));
  co_await thread.Work(config_.op_overhead, sim::CpuCategory::kCompute);
  // Records never straddle a spill-page boundary (FASTER pads pages); a
  // straddling record would be half-spilled, half-mutable.
  const std::uint64_t in_page = tail_ % config_.spill_page;
  const Bytes pad =
      in_page + record > config_.spill_page ? config_.spill_page - in_page
                                            : 0;
  co_await MaybeSpill(thread, device, pad + record);

  // Append at the tail: header + value, one streaming copy.
  tail_ += pad;
  const std::uint64_t addr = tail_;
  tail_ += record;
  const std::uint64_t mem_addr = MemSlotAddr(addr);
  memory_->WriteValue<std::uint64_t>(mem_addr, key);
  memory_->WriteValue<std::uint32_t>(mem_addr + 8,
                                     static_cast<std::uint32_t>(value.size()));
  memory_->WriteValue<std::uint32_t>(mem_addr + 12, 0);
  memory_->Write(mem_addr + 16, value);
  co_await thread.Work(config_.costs.CopyCost(record),
                       sim::CpuCategory::kCompute);

  // Index update: hash + one cache-missing bucket access.
  const std::uint64_t slot = IndexSlot(key);
  if (index_[slot].address == kInvalidAddress) ++live_keys_;
  index_[slot] = IndexEntry{key, addr,
                            static_cast<std::uint32_t>(value.size())};
  co_await thread.Work(config_.hash_cost + config_.costs.local_access,
                       sim::CpuCategory::kCompute);
}

sim::Task<FasterStore::ReadStatus> FasterStore::Read(sim::SimThread& thread,
                                                     IDevice& device,
                                                     std::uint64_t key,
                                                     std::uint64_t dest_addr,
                                                     CompletionFn done) {
  // Operation context + index probe.
  co_await thread.Work(
      config_.op_overhead + config_.hash_cost + config_.costs.local_access,
      sim::CpuCategory::kCompute);
  const std::uint64_t slot = IndexSlot(key);
  const IndexEntry& entry = index_[slot];
  if (entry.address == kInvalidAddress) co_return ReadStatus::kNotFound;

  // The record length is not known until the record is inspected; the
  // benchmarks use fixed-size values, and FASTER reads full pages/records —
  // we read the header from the index side by consulting the log.
  const std::uint64_t addr = entry.address;
  if (addr >= head_) {
    // Mutable/read-only in-memory region.
    const std::uint64_t mem_addr = MemSlotAddr(addr);
    const auto vlen = memory_->ReadValue<std::uint32_t>(mem_addr + 8);
    const Bytes record = RecordSize(vlen);
    std::vector<std::uint8_t> buf(record);
    memory_->Read(mem_addr, buf);
    memory_->Write(dest_addr, buf);
    co_await thread.Work(config_.costs.LocalRecordCost(record),
                         sim::CpuCategory::kCompute);
    co_return ReadStatus::kLocal;
  }

  // Spilled: fetch the exact record through the device (the index carries
  // the value length, as FASTER's tentative entries carry size class info).
  const Bytes record = RecordSize(entry.value_len);
  co_await device.ReadAsync(thread, addr, dest_addr,
                            static_cast<std::uint32_t>(record),
                            std::move(done));
  co_return ReadStatus::kPending;
}

}  // namespace cowbird::faster
