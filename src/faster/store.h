// FASTER-like key-value store with a hybrid log (Section 7).
//
// Records live in a log: the mutable tail is a circular buffer in compute-
// node memory; older data is spilled, page at a time, to an IDevice (SSD,
// RDMA, or Cowbird — Figure 9's series). A read first probes the hash index
// for the record's logical address, then fetches it from memory or from the
// device. Upserts append at the tail (RCU-style, as in FASTER) and update
// the index; appends apply backpressure until eviction frees budget.
//
// Record layout: [key u64][value_len u32][pad u32][value ...], rounded up
// to 8 bytes. Values written by the benchmarks embed the key in their first
// 8 bytes, so every read — including those that traveled through the whole
// Cowbird or RDMA stack — is verified end-to-end.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/sparse_memory.h"
#include "common/units.h"
#include "faster/idevice.h"
#include "rdma/params.h"
#include "sim/task.h"
#include "sim/thread.h"

namespace cowbird::faster {

constexpr std::uint64_t kInvalidAddress = ~0ull;

class FasterStore {
 public:
  struct Config {
    std::uint64_t index_buckets = 1 << 20;  // power of two
    Bytes memory_budget = MiB(16);          // mutable-region size
    Bytes spill_page = KiB(32);             // eviction granularity
    std::uint64_t log_base = 0x9000'0000;   // mutable region in compute mem
    rdma::CostModel costs;
    // CPU model for index operations.
    Nanos hash_cost = 25;
    // Per-operation FASTER machinery: epoch protection, operation context
    // allocation, status plumbing. Calibrated so local-memory throughput per
    // thread lands near the paper's Figure 9 testbed.
    Nanos op_overhead = 800;
  };

  FasterStore(SparseMemory& memory, Config config);

  Bytes RecordSize(std::uint32_t value_len) const {
    return (16 + value_len + 7) & ~Bytes{7};
  }

  // Appends (or updates) key → value. May suspend on eviction backpressure.
  // `device` is the calling thread's storage backend (used for spills).
  sim::Task<void> Upsert(sim::SimThread& thread, IDevice& device,
                         std::uint64_t key,
                         std::span<const std::uint8_t> value);

  enum class ReadStatus : std::uint8_t {
    kLocal,     // completed inline; record bytes are at dest_addr
    kPending,   // `done` fires when the record lands at dest_addr
    kNotFound,
  };

  // Looks up `key`; materializes the record (header + value) at dest_addr.
  sim::Task<ReadStatus> Read(sim::SimThread& thread, IDevice& device,
                             std::uint64_t key, std::uint64_t dest_addr,
                             CompletionFn done);

  std::uint64_t tail() const { return tail_; }
  std::uint64_t head() const { return head_; }
  Bytes InMemoryBytes() const { return tail_ - head_; }
  std::uint64_t spills() const { return spills_; }
  std::uint64_t size() const { return live_keys_; }
  const Config& config() const { return config_; }

 private:
  struct IndexEntry {
    std::uint64_t key = 0;
    std::uint64_t address = kInvalidAddress;
    std::uint32_t value_len = 0;  // lets reads size spilled fetches exactly
  };

  static std::uint64_t HashKey(std::uint64_t key);
  // Returns the slot for `key` (existing or first free), linear probing.
  std::uint64_t IndexSlot(std::uint64_t key) const;

  // In-memory position of a logical address.
  std::uint64_t MemSlotAddr(std::uint64_t logical) const {
    return config_.log_base + (logical % config_.memory_budget);
  }

  sim::Task<void> MaybeSpill(sim::SimThread& thread, IDevice& device,
                             Bytes incoming);

  SparseMemory* memory_;
  Config config_;
  std::vector<IndexEntry> index_;
  std::uint64_t tail_ = 0;  // next append address (logical)
  std::uint64_t head_ = 0;  // below head_: on the device
  std::uint64_t live_keys_ = 0;
  bool spill_inflight_ = false;
  std::uint64_t spills_ = 0;
};

}  // namespace cowbird::faster
