#include "faster/ycsb.h"

#include <memory>
#include <vector>

#include "baselines/redy.h"
#include "common/check.h"
#include "common/rng.h"
#include "core/client.h"
#include "p4/engine.h"
#include "faster/devices_rdma.h"
#include "faster/idevice.h"
#include "faster/store.h"
#include "spot/setup.h"
#include "workload/generator.h"
#include "workload/testbed.h"

namespace cowbird::faster {

const char* BackendName(Backend b) {
  switch (b) {
    case Backend::kLocal: return "local-memory";
    case Backend::kSsd: return "ssd";
    case Backend::kOneSidedSync: return "one-sided-sync";
    case Backend::kOneSidedAsync: return "one-sided-async";
    case Backend::kCowbirdSpot: return "cowbird-spot";
    case Backend::kCowbirdP4: return "cowbird-p4";
    case Backend::kRedy: return "redy";
  }
  return "unknown";
}

namespace {

constexpr std::uint64_t kPoolBase = 0x1000'0000;
constexpr std::uint64_t kLocalDeviceBase = 0x3000'0000;
constexpr std::uint64_t kDestBase = 0x8000'0000;
constexpr std::uint64_t kDestStride = MiB(4);
constexpr std::uint64_t kValueScratch = 0x7800'0000;
constexpr std::uint16_t kRegion = 1;

struct YcsbHarness {
  explicit YcsbHarness(const YcsbConfig& config) : cfg(config) {
    const Bytes record =
        (16 + cfg.value_size + 7) & ~Bytes{7};
    const Bytes log_size = cfg.records * record * 11 / 10;  // updates grow it
    // Size the device / pool region generously: the log only grows.
    const Bytes device_capacity = log_size * 8;

    FasterStore::Config sc;
    sc.costs = cfg.costs;
    sc.memory_budget =
        RoundPage(static_cast<Bytes>(cfg.memory_fraction *
                                     static_cast<double>(log_size)));
    sc.spill_page = KiB(32);
    store = std::make_unique<FasterStore>(bed.compute_mem, sc);

    pool_mr = bed.memory_dev.RegisterMemory(kPoolBase, device_capacity);

    for (int t = 0; t < cfg.threads; ++t) {
      threads.push_back(std::make_unique<sim::SimThread>(
          bed.compute_machine, "faster-" + std::to_string(t)));
    }

    switch (cfg.backend) {
      case Backend::kLocal:
        for (int t = 0; t < cfg.threads; ++t) {
          devices.push_back(std::make_unique<LocalMemoryDevice>(
              bed.compute_mem, kLocalDeviceBase, cfg.costs));
        }
        break;
      case Backend::kSsd: {
        // One physical SSD shared by all threads.
        ssd = std::make_unique<SsdDevice>(bed.sim, bed.compute_mem,
                                          kLocalDeviceBase);
        break;
      }
      case Backend::kOneSidedSync:
        for (int t = 0; t < cfg.threads; ++t) {
          auto pair = rdma::ConnectQueuePairs(bed.compute_dev,
                                              bed.memory_dev);
          devices.push_back(std::make_unique<OneSidedSyncDevice>(
              baselines::OneSidedEndpoint{pair.a, pair.a_send_cq,
                                          pool_mr->rkey},
              kPoolBase, cfg.costs));
        }
        break;
      case Backend::kOneSidedAsync:
        for (int t = 0; t < cfg.threads; ++t) {
          auto pair = rdma::ConnectQueuePairs(bed.compute_dev,
                                              bed.memory_dev);
          devices.push_back(std::make_unique<OneSidedAsyncDevice>(
              baselines::OneSidedEndpoint{pair.a, pair.a_send_cq,
                                          pool_mr->rkey},
              kPoolBase, cfg.costs, cfg.pipeline));
        }
        break;
      case Backend::kCowbirdSpot:
      case Backend::kCowbirdP4: {
        core::CowbirdClient::Config cc;
        cc.layout.base = 0x10000;
        cc.layout.threads = cfg.threads;
        cc.layout.meta_slots = 4096;
        cc.layout.data_capacity = MiB(1);
        cc.layout.resp_capacity = MiB(1);
        cc.costs = cfg.costs;
        client = std::make_unique<core::CowbirdClient>(bed.compute_dev, cc);
        client->RegisterRegion(core::RegionInfo{
            kRegion, workload::Testbed::kMemoryId, kPoolBase, pool_mr->rkey,
            device_capacity});
        if (cfg.backend == Backend::kCowbirdP4) {
          p4::CowbirdP4Engine::Config ec;
          p4_engine = std::make_unique<p4::CowbirdP4Engine>(bed.sw, ec);
          auto conn = p4::ConnectP4Engine(*p4_engine, ec.switch_node_id,
                                          bed.compute_dev, bed.memory_dev,
                                          0x800);
          p4_engine->AddInstance(client->descriptor(), conn);
          p4_engine->Start();
        } else {
          spot::SpotAgent::Config ac = cfg.agent;
          ac.costs = cfg.costs;
          agent = std::make_unique<spot::SpotAgent>(bed.spot_dev,
                                                    bed.spot_machine, ac);
          rdma::Device* memories[] = {&bed.memory_dev};
          auto conn = spot::ConnectSpotEngine(bed.spot_dev, bed.compute_dev,
                                              memories);
          agent->AddInstance(client->descriptor(), conn.to_compute,
                             conn.compute_cq, conn.to_memory,
                             conn.memory_cqs);
          agent->Start();
        }
        for (int t = 0; t < cfg.threads; ++t) {
          devices.push_back(
              std::make_unique<CowbirdDevice>(client->thread(t), kRegion));
        }
        break;
      }
      case Backend::kRedy: {
        redy = std::make_unique<baselines::RedyEngine>(
            bed.compute_machine,
            baselines::RedyEngine::Config{.window = cfg.pipeline,
                                          .enqueue_cost = 60,
                                          .costs = cfg.costs});
        for (int t = 0; t < cfg.threads; ++t) {
          auto pair = rdma::ConnectQueuePairs(bed.compute_dev,
                                              bed.memory_dev);
          const int io = redy->AddIoThread(baselines::OneSidedEndpoint{
              pair.a, pair.a_send_cq, pool_mr->rkey});
          devices.push_back(std::make_unique<RedyDevice>(*redy, io, kPoolBase,
                                                         bed.sim));
        }
        break;
      }
    }
  }

  static Bytes RoundPage(Bytes b) {
    const Bytes page = KiB(32);
    const Bytes rounded = ((b + page - 1) / page) * page;
    return rounded < 2 * page ? 2 * page : rounded;
  }

  IDevice& DeviceFor(int t) {
    if (cfg.backend == Backend::kSsd) return *ssd;
    return *devices[t];
  }

  std::uint64_t DestSlot(int t, int slot) const {
    return kDestBase + t * kDestStride + static_cast<std::uint64_t>(slot) *
                                             1024;
  }

  // Deterministic value: first 8 bytes are the key.
  void MakeValue(std::uint64_t key, std::vector<std::uint8_t>& out) const {
    out.assign(cfg.value_size, static_cast<std::uint8_t>(key * 131 + 7));
    for (int i = 0; i < 8; ++i) {
      out[i] = static_cast<std::uint8_t>(key >> (8 * i));
    }
  }

  bool VerifyRecord(std::uint64_t dest, std::uint64_t key) const {
    // Record header: key at offset 0; value begins at 16.
    const auto stored_key = bed.compute_mem.ReadValue<std::uint64_t>(dest);
    const auto value_key =
        bed.compute_mem.ReadValue<std::uint64_t>(dest + 16);
    return stored_key == key && value_key == key;
  }

  YcsbConfig cfg;
  workload::Testbed bed;
  const rdma::MemoryRegion* pool_mr = nullptr;
  std::unique_ptr<FasterStore> store;
  std::vector<std::unique_ptr<sim::SimThread>> threads;
  std::vector<std::unique_ptr<IDevice>> devices;
  std::unique_ptr<SsdDevice> ssd;
  std::unique_ptr<core::CowbirdClient> client;
  std::unique_ptr<spot::SpotAgent> agent;
  std::unique_ptr<p4::CowbirdP4Engine> p4_engine;
  std::unique_ptr<baselines::RedyEngine> redy;
  std::unique_ptr<workload::ZipfianGenerator> zipf;

  // Run-phase counters.
  std::vector<std::uint64_t> ops;
  std::uint64_t local_reads = 0;
  std::uint64_t remote_reads = 0;
  std::uint64_t updates = 0;
  std::uint64_t verify_failures = 0;
  bool loaded = false;
};

sim::Task<void> LoadPhase(YcsbHarness& h) {
  sim::SimThread& thread = *h.threads[0];
  std::vector<std::uint8_t> value;
  for (std::uint64_t key = 0; key < h.cfg.records; ++key) {
    h.MakeValue(key, value);
    co_await h.store->Upsert(thread, h.DeviceFor(0), key, value);
  }
  // Drain any spill still in flight.
  co_await h.DeviceFor(0).Poll(thread);
  h.loaded = true;
}

sim::Task<void> RunThread(YcsbHarness& h, int t) {
  sim::SimThread& thread = *h.threads[t];
  IDevice& device = h.DeviceFor(t);
  Rng rng(h.cfg.seed * 31337 + t);
  std::vector<std::uint8_t> value;
  int outstanding = 0;
  int next_slot = 0;

  while (!h.loaded) co_await thread.Idle(Micros(10));

  for (;;) {
    // Pump completions first so the pipeline never stalls full.
    co_await device.Poll(thread);
    if (outstanding >= h.cfg.pipeline) {
      co_await thread.Idle(300);
      continue;
    }
    const std::uint64_t key = h.cfg.zipfian
                                  ? h.zipf->NextScrambled(rng)
                                  : rng.Below(h.cfg.records);
    if (rng.NextDouble() < h.cfg.read_fraction) {
      const int slot = next_slot;
      next_slot = (next_slot + 1) % (h.cfg.pipeline * 2);
      const std::uint64_t dest = h.DestSlot(t, slot);
      auto status = co_await h.store->Read(
          thread, device, key, dest, [&h, t, key, dest, &outstanding] {
            // Completion runs on this thread's poll path.
            if (!h.VerifyRecord(dest, key)) ++h.verify_failures;
            ++h.remote_reads;
            ++h.ops[t];
            --outstanding;
          });
      switch (status) {
        case FasterStore::ReadStatus::kLocal:
          if (!h.VerifyRecord(dest, key)) ++h.verify_failures;
          ++h.local_reads;
          ++h.ops[t];
          break;
        case FasterStore::ReadStatus::kPending:
          ++outstanding;
          break;
        case FasterStore::ReadStatus::kNotFound:
          ++h.verify_failures;  // all keys were loaded
          break;
      }
    } else {
      h.MakeValue(key, value);
      co_await h.store->Upsert(thread, device, key, value);
      ++h.updates;
      ++h.ops[t];
    }
  }
}

}  // namespace

YcsbResult RunYcsb(const YcsbConfig& config) {
  YcsbHarness h(config);
  if (config.zipfian) {
    h.zipf = std::make_unique<workload::ZipfianGenerator>(config.records,
                                                          config.zipf_theta);
  }
  h.ops.assign(config.threads, 0);

  h.bed.sim.Spawn(LoadPhase(h));
  for (int t = 0; t < config.threads; ++t) {
    h.bed.sim.Spawn(RunThread(h, t));
  }
  // Let the load complete (virtual time), then warm up and measure.
  while (!h.loaded) h.bed.sim.RunFor(Millis(1));
  h.bed.sim.RunFor(config.warmup);

  struct Snap {
    std::uint64_t ops = 0;
    Nanos comm = 0;
    Nanos compute = 0;
    std::uint64_t local = 0, remote = 0, upd = 0;
  };
  auto snapshot = [&h, &config] {
    Snap s;
    for (int t = 0; t < config.threads; ++t) {
      s.ops += h.ops[t];
      s.comm += h.threads[t]->TimeIn(sim::CpuCategory::kCommunication);
      s.compute += h.threads[t]->TimeIn(sim::CpuCategory::kCompute);
    }
    s.local = h.local_reads;
    s.remote = h.remote_reads;
    s.upd = h.updates;
    return s;
  };

  const Snap start = snapshot();
  const Nanos t0 = h.bed.sim.Now();
  h.bed.sim.RunFor(config.measure);
  const Snap end = snapshot();
  const Nanos elapsed = h.bed.sim.Now() - t0;

  YcsbResult result;
  result.ops = end.ops - start.ops;
  result.mops = Mops(result.ops, elapsed);
  const Nanos comm = end.comm - start.comm;
  const Nanos compute = end.compute - start.compute;
  result.comm_ratio =
      comm + compute > 0
          ? static_cast<double>(comm) / static_cast<double>(comm + compute)
          : 0.0;
  result.local_reads = end.local - start.local;
  result.remote_reads = end.remote - start.remote;
  result.updates = end.upd - start.upd;
  const std::uint64_t reads = result.local_reads + result.remote_reads;
  result.remote_read_fraction =
      reads > 0 ? static_cast<double>(result.remote_reads) /
                      static_cast<double>(reads)
                : 0.0;
  result.verify_failures = h.verify_failures;
  return result;
}

}  // namespace cowbird::faster
