// YCSB benchmark harness for the FASTER port (Figures 9, 10, 11).
//
// Load phase: `records` upserts with fixed-size values whose first 8 bytes
// embed the key (every read, through any backend, is verified end-to-end).
// Run phase: each thread issues a read_fraction/update mix over Zipfian
// (theta = 0.99) or uniform keys, pipelining storage reads up to `pipeline`
// outstanding per thread and pumping completions via IDevice::Poll — the
// structure of the paper's IDevice integration (Section 7).
#pragma once

#include <cstdint>

#include "common/units.h"
#include "rdma/params.h"
#include "spot/agent.h"

namespace cowbird::faster {

enum class Backend {
  kLocal,          // purely local memory (upper bound)
  kSsd,            // FASTER's default secondary storage
  kOneSidedSync,   // remote memory via sync one-sided RDMA
  kOneSidedAsync,  // remote memory via pipelined one-sided RDMA
  kCowbirdSpot,    // Cowbird with the spot-VM offload engine
  kCowbirdP4,      // Cowbird with the programmable-switch offload engine
  kRedy,           // Redy: batched RDMA with pinned compute-node I/O threads
};

const char* BackendName(Backend b);

struct YcsbConfig {
  Backend backend = Backend::kCowbirdSpot;
  int threads = 1;
  std::uint32_t value_size = 64;
  std::uint64_t records = 150'000;
  double read_fraction = 0.95;
  bool zipfian = true;
  double zipf_theta = 0.99;
  // Mutable-region budget as a fraction of total log size (paper: 5 GB of
  // 18-24 GB ≈ 20-28%).
  double memory_fraction = 0.25;
  int pipeline = 32;  // outstanding storage reads per thread
  Nanos warmup = Micros(300);
  Nanos measure = Millis(2);
  std::uint64_t seed = 1;
  spot::SpotAgent::Config agent;
  rdma::CostModel costs;
};

struct YcsbResult {
  double mops = 0;
  double comm_ratio = 0;
  std::uint64_t ops = 0;
  std::uint64_t local_reads = 0;
  std::uint64_t remote_reads = 0;
  std::uint64_t updates = 0;
  std::uint64_t verify_failures = 0;
  double remote_read_fraction = 0;
};

YcsbResult RunYcsb(const YcsbConfig& config);

}  // namespace cowbird::faster
