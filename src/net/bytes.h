// Byte-order helpers for wire formats.
//
// All protocol headers (Ethernet/IPv4/UDP and the RoCEv2 BTH/RETH/AETH) are
// serialized in network byte order, exactly as they appear on the wire; the
// P4 parser operates on these bytes.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>

#include "common/check.h"

namespace cowbird::net {

inline void PutU8(std::span<std::uint8_t> buf, std::size_t at,
                  std::uint8_t v) {
  COWBIRD_DCHECK(at < buf.size());
  buf[at] = v;
}
inline void PutU16(std::span<std::uint8_t> buf, std::size_t at,
                   std::uint16_t v) {
  COWBIRD_DCHECK(at + 2 <= buf.size());
  buf[at] = static_cast<std::uint8_t>(v >> 8);
  buf[at + 1] = static_cast<std::uint8_t>(v);
}
inline void PutU24(std::span<std::uint8_t> buf, std::size_t at,
                   std::uint32_t v) {
  COWBIRD_DCHECK(at + 3 <= buf.size());
  buf[at] = static_cast<std::uint8_t>(v >> 16);
  buf[at + 1] = static_cast<std::uint8_t>(v >> 8);
  buf[at + 2] = static_cast<std::uint8_t>(v);
}
inline void PutU32(std::span<std::uint8_t> buf, std::size_t at,
                   std::uint32_t v) {
  COWBIRD_DCHECK(at + 4 <= buf.size());
  buf[at] = static_cast<std::uint8_t>(v >> 24);
  buf[at + 1] = static_cast<std::uint8_t>(v >> 16);
  buf[at + 2] = static_cast<std::uint8_t>(v >> 8);
  buf[at + 3] = static_cast<std::uint8_t>(v);
}
inline void PutU64(std::span<std::uint8_t> buf, std::size_t at,
                   std::uint64_t v) {
  PutU32(buf, at, static_cast<std::uint32_t>(v >> 32));
  PutU32(buf, at + 4, static_cast<std::uint32_t>(v));
}

inline std::uint8_t GetU8(std::span<const std::uint8_t> buf, std::size_t at) {
  COWBIRD_DCHECK(at < buf.size());
  return buf[at];
}
inline std::uint16_t GetU16(std::span<const std::uint8_t> buf,
                            std::size_t at) {
  COWBIRD_DCHECK(at + 2 <= buf.size());
  return static_cast<std::uint16_t>((buf[at] << 8) | buf[at + 1]);
}
inline std::uint32_t GetU24(std::span<const std::uint8_t> buf,
                            std::size_t at) {
  COWBIRD_DCHECK(at + 3 <= buf.size());
  return (static_cast<std::uint32_t>(buf[at]) << 16) |
         (static_cast<std::uint32_t>(buf[at + 1]) << 8) | buf[at + 2];
}
inline std::uint32_t GetU32(std::span<const std::uint8_t> buf,
                            std::size_t at) {
  COWBIRD_DCHECK(at + 4 <= buf.size());
  return (static_cast<std::uint32_t>(buf[at]) << 24) |
         (static_cast<std::uint32_t>(buf[at + 1]) << 16) |
         (static_cast<std::uint32_t>(buf[at + 2]) << 8) | buf[at + 3];
}
inline std::uint64_t GetU64(std::span<const std::uint8_t> buf,
                            std::size_t at) {
  return (static_cast<std::uint64_t>(GetU32(buf, at)) << 32) |
         GetU32(buf, at + 4);
}

}  // namespace cowbird::net
