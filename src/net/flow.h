// Contending traffic for the bandwidth-overhead experiment (Figure 14).
//
// A GreedyFlow models an always-backlogged bulk transfer (the paper uses
// iperf3): the source keeps `window` MTU-sized packets in flight to a sink
// on another host; the sink returns a small ACK per packet, and every ACK
// releases the next data packet. With a deep window this saturates whatever
// bandwidth strict-priority scheduling leaves to the bulk class, which is
// the quantity Figure 14 measures.
#pragma once

#include <cstdint>
#include <functional>

#include "common/units.h"
#include "net/packet.h"
#include "net/switch.h"
#include "sim/simulation.h"

namespace cowbird::net {

constexpr std::uint16_t kFlowBasePort = 5001;

class GreedyFlow {
 public:
  struct Config {
    Bytes payload_bytes = 1400;
    int window = 64;
    Priority priority = Priority::kBulk;
  };

  GreedyFlow(HostNic& source, HostNic& sink, std::uint16_t flow_index,
             Config config)
      : source_(&source),
        sink_(&sink),
        port_(static_cast<std::uint16_t>(kFlowBasePort + flow_index)),
        config_(config) {
    // Data packets arrive at the sink; ACKs return to the source on the
    // same UDP port.
    sink_->SetPortReceiver(port_, [this](Packet p) { OnData(std::move(p)); });
    source_->SetPortReceiver(port_, [this](Packet) { OnAck(); });
  }

  void Start() {
    running_ = true;
    started_at_ = source_->simulation().Now();
    for (int i = 0; i < config_.window; ++i) SendData();
  }
  void Stop() { running_ = false; }

  std::uint64_t delivered_bytes() const { return delivered_bytes_; }

  // Goodput since Start(), in Gbps of payload bytes.
  double GoodputGbps() const {
    const Nanos elapsed = source_->simulation().Now() - started_at_;
    if (elapsed <= 0) return 0.0;
    return static_cast<double>(delivered_bytes_) * 8.0 /
           static_cast<double>(elapsed);
  }

 private:
  void SendData() {
    Packet p = MakeUdpPacket(source_->id(), sink_->id(),
                             config_.payload_bytes, config_.priority, port_);
    source_->Send(std::move(p));
  }

  void OnData(Packet p) {
    delivered_bytes_ += p.bytes.size() - kL2L3L4Bytes;
    Packet ack = MakeUdpPacket(sink_->id(), source_->id(), /*payload_len=*/8,
                               Priority::kControl, port_);
    sink_->Send(std::move(ack));
  }

  void OnAck() {
    if (running_) SendData();
  }

  HostNic* source_;
  HostNic* sink_;
  std::uint16_t port_;
  Config config_;
  bool running_ = false;
  Nanos started_at_ = 0;
  std::uint64_t delivered_bytes_ = 0;
};

}  // namespace cowbird::net
