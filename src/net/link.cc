#include "net/link.h"

#include <utility>

#include "common/check.h"
#include "sim/parallel.h"

namespace cowbird::net {

void Link::Send(Packet packet) {
  queue_.push_back(std::move(packet));
  if (!busy_ && HasEligible()) StartNext();
}

bool Link::HasEligible() const {
  if (!data_paused_) return !queue_.empty();
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (queue_[i].priority == Priority::kControl) return true;
  }
  return false;
}

void Link::PauseData(Nanos duration) {
  if (duration <= 0) {
    ResumeData();
    return;
  }
  ++pauses_received_;
  if (!data_paused_) {
    data_paused_ = true;
    pause_started_at_ = sim_->Now();
  }
  // A refresh extends the deadline: congestion that persists keeps the port
  // paused without gaps.
  pause_timer_.Cancel();
  pause_timer_ =
      sim_->ScheduleCancelableAfter(duration, [this] { ResumeData(); });
}

void Link::ResumeData() {
  if (!data_paused_) return;
  data_paused_ = false;
  paused_ns_ += static_cast<std::uint64_t>(sim_->Now() - pause_started_at_);
  pause_timer_.Cancel();
  if (!busy_ && HasEligible()) StartNext();
}

void Link::SetDestination(sim::Simulation& dst) {
  dst_ = &dst;
  sim::DomainGroup* group = sim_->domain_group();
  if (group != nullptr && dst.domain_group() == group &&
      dst.domain_id() != sim_->domain_id()) {
    sim::CutEdge edge;
    edge.src = sim_->domain_id();
    edge.dst = dst.domain_id();
    edge.lookahead = propagation_;
    edge.link = name_;
    edge.src_node = src_node_;
    edge.dst_node = dst_node_;
    group->NoteCrossLink(edge);
  }
}

void Link::StartNext() {
  // Pick the first eligible packet (FIFO), or the highest-priority eligible
  // one under priority scheduling. While data-paused only kControl is
  // eligible; ineligible packets are held in place, never dropped.
  std::size_t next = queue_.size();
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (data_paused_ && queue_[i].priority != Priority::kControl) continue;
    if (next == queue_.size()) {
      next = i;
      if (!priority_scheduling_) break;
      continue;
    }
    if (static_cast<int>(queue_[i].priority) >
        static_cast<int>(queue_[next].priority)) {
      next = i;
    }
  }
  COWBIRD_CHECK(next < queue_.size());
  busy_ = true;
  Packet packet = std::move(queue_[next]);
  queue_.erase_at(next);
  const Nanos tx = rate_.TransmitTime(packet.WireBytes());
  // Delivery is scheduled independently of transmitter availability so that
  // back-to-back packets pipeline across the propagation delay.
  if (dst_ == sim_) {
    sim_->ScheduleAfter(tx + propagation_,
                        [this, p = std::move(packet)]() mutable {
                          Deliver(std::move(p));
                        });
  } else {
    // Domain cut: the delivery event belongs to the destination's loop. Its
    // timestamp is at least propagation_ (>= the group lookahead) ahead of
    // now, which is exactly what makes the epoch horizon safe.
    sim_->domain_group()->CrossPost(
        sim_->domain_id(), dst_->domain_id(),
        sim_->Now() + tx + propagation_,
        sim::EventFn([this, p = std::move(packet)]() mutable {
          Deliver(std::move(p));
        }));
  }
  sim_->ScheduleAfter(tx, [this] {
    busy_ = false;
    if (HasEligible()) {
      StartNext();
    } else if (queue_.empty() && idle_callback_) {
      // Data held behind a pause is neither transmitted nor "drained": the
      // idle callback only fires on a genuinely empty queue; ResumeData
      // re-kicks held packets when the pause lifts.
      idle_callback_();
    }
  });
}

void Link::Deliver(Packet packet) {
  if (drop_filter_ && drop_filter_(packet)) {
    ++packets_dropped_;
    return;
  }
  if (!fault_filter_) {
    Arrive(std::move(packet));
    return;
  }
  const FaultAction action = fault_filter_(packet);
  if (action.drop) {
    ++packets_dropped_;
    ++faults_dropped_;
    return;
  }
  if (action.reorder) {
    ++faults_reordered_;
  } else if (action.delay > 0) {
    ++faults_delayed_;
  }
  faults_duplicated_ += static_cast<std::uint64_t>(
      action.duplicate > 0 ? action.duplicate : 0);
  // Duplicates trail the original at the same (possibly delayed) arrival
  // time; scheduled deliveries bypass the filters so a fault is never
  // compounded with itself.
  // Deliver runs on the destination domain, so delayed originals and copies
  // reschedule on dst_'s own loop (== sim_ unless this link is a cut).
  const int duplicates = action.duplicate;
  Packet dup = duplicates > 0 ? packet : Packet{};
  if (action.delay > 0) {
    dst_->ScheduleAfter(action.delay, [this, p = std::move(packet)]() mutable {
      Arrive(std::move(p));
    });
  } else {
    Arrive(std::move(packet));
  }
  for (int copy = 0; copy < duplicates; ++copy) {
    dst_->ScheduleAfter(action.delay, [this, p = dup]() mutable {
      Arrive(std::move(p));
    });
  }
}

void Link::Arrive(Packet packet) {
  ++packets_delivered_;
  bytes_delivered_ += packet.bytes.size();
  if (receiver_) receiver_(std::move(packet));
}

void Link::BindTelemetry(telemetry::MetricRegistry& registry,
                         const telemetry::Labels& labels) {
  UnbindTelemetry();
  telemetry_registry_ = &registry;
  telemetry_labels_ = labels;
  const struct {
    const char* name;
    const std::uint64_t* cell;
  } series[] = {
      {"link_packets_delivered", &packets_delivered_},
      {"link_bytes_delivered", &bytes_delivered_},
      {"link_packets_dropped", &packets_dropped_},
      {"link_faults_dropped", &faults_dropped_},
      {"link_faults_duplicated", &faults_duplicated_},
      {"link_faults_delayed", &faults_delayed_},
      {"link_faults_reordered", &faults_reordered_},
      {"link_paused_ns", &paused_ns_},
      {"link_pfc_pauses", &pauses_received_},
  };
  for (const auto& s : series) {
    registry.RegisterCallbackGauge(s.name, labels, [cell = s.cell] {
      return static_cast<std::int64_t>(*cell);
    });
  }
}

void Link::UnbindTelemetry() {
  if (telemetry_registry_ == nullptr) return;
  for (const char* name :
       {"link_packets_delivered", "link_bytes_delivered",
        "link_packets_dropped", "link_faults_dropped",
        "link_faults_duplicated", "link_faults_delayed",
        "link_faults_reordered", "link_paused_ns", "link_pfc_pauses"}) {
    telemetry_registry_->UnregisterCallbackGauge(name, telemetry_labels_);
  }
  telemetry_registry_ = nullptr;
  telemetry_labels_.clear();
}

}  // namespace cowbird::net
