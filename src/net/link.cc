#include "net/link.h"

#include <utility>

#include "common/check.h"

namespace cowbird::net {

void Link::Send(Packet packet) {
  queue_.push_back(std::move(packet));
  if (!busy_) StartNext();
}

void Link::StartNext() {
  COWBIRD_CHECK(!queue_.empty());
  busy_ = true;
  auto next = queue_.begin();
  if (priority_scheduling_) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (static_cast<int>(it->priority) > static_cast<int>(next->priority)) {
        next = it;
      }
    }
  }
  Packet packet = std::move(*next);
  queue_.erase(next);
  const Nanos tx = rate_.TransmitTime(packet.WireBytes());
  // Delivery is scheduled independently of transmitter availability so that
  // back-to-back packets pipeline across the propagation delay.
  sim_->ScheduleAfter(tx + propagation_,
                      [this, p = std::move(packet)]() mutable {
                        Deliver(std::move(p));
                      });
  sim_->ScheduleAfter(tx, [this] {
    busy_ = false;
    if (!queue_.empty()) {
      StartNext();
    } else if (idle_callback_) {
      idle_callback_();
    }
  });
}

void Link::Deliver(Packet packet) {
  if (drop_filter_ && drop_filter_(packet)) {
    ++packets_dropped_;
    return;
  }
  ++packets_delivered_;
  bytes_delivered_ += packet.bytes.size();
  if (receiver_) receiver_(std::move(packet));
}

}  // namespace cowbird::net
