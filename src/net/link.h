// Point-to-point unidirectional link with a serializing transmitter.
//
// A link transmits one packet at a time at its configured rate; completed
// packets propagate for `propagation` ns and are handed to the receiver.
// Multiple packets can be in flight on the wire simultaneously (transmission
// pipelines with propagation). Loss is injected at delivery time through an
// optional drop filter — corruption and congestive loss look identical to
// the endpoints, which is all the Go-Back-N recovery path (Section 5.3)
// can observe anyway.
//
// Beyond plain loss, a fault filter can mutate delivery: drop, duplicate,
// delay, or hold a packet long enough that later arrivals overtake it
// (reordering). Each injected fault is counted exactly once, so a chaos
// plan's decisions can be audited against the link's counters.
#pragma once

#include <functional>
#include <string>

#include "common/pool.h"
#include "common/units.h"
#include "net/packet.h"
#include "sim/simulation.h"
#include "telemetry/metrics.h"

namespace cowbird::net {

// What a fault filter decides for one delivered packet. The original packet
// is delivered unless `drop`; `duplicate` extra copies follow it; a non-zero
// `delay` postpones delivery (copies included). `reorder` marks the delay as
// intended to push this packet behind later arrivals — it only affects which
// counter the fault lands in, so injector reports stay exact.
struct FaultAction {
  bool drop = false;
  int duplicate = 0;
  Nanos delay = 0;
  bool reorder = false;
};

class Link {
 public:
  Link(sim::Simulation& sim, BitRate rate, Nanos propagation)
      : sim_(&sim), rate_(rate), propagation_(propagation) {}
  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  void set_receiver(std::function<void(Packet)> receiver) {
    receiver_ = std::move(receiver);
  }
  // Fires whenever the transmitter drains its queue and goes idle.
  void set_idle_callback(std::function<void()> cb) {
    idle_callback_ = std::move(cb);
  }
  // Return true to drop the packet (applied as the packet would arrive).
  void set_drop_filter(std::function<bool(const Packet&)> filter) {
    drop_filter_ = std::move(filter);
  }
  // General delivery mutation, applied after the drop filter as the packet
  // would arrive. Faulted deliveries (delayed originals, duplicates) do not
  // re-enter the filters.
  void set_fault_filter(std::function<FaultAction(const Packet&)> filter) {
    fault_filter_ = std::move(filter);
  }

  void Send(Packet packet);

  // Names this link and its endpoints for diagnostics. When the link turns
  // out to be a domain cut, the registered CutEdge carries these names so a
  // zero-lookahead misconfiguration is reported against the topology the
  // user wrote. Call before SetDestination.
  void SetNames(std::string link_name, std::string src_node,
                std::string dst_node) {
    name_ = std::move(link_name);
    src_node_ = std::move(src_node);
    dst_node_ = std::move(dst_node);
  }
  const std::string& name() const { return name_; }

  // Declares that deliveries land in `dst`'s event loop. Defaults to the
  // transmitting simulation; pointing it at a different member of the same
  // sim::DomainGroup makes this link a domain cut: deliveries cross through
  // the group's per-edge mailboxes and the link registers a CutEdge
  // advertising its propagation delay as lookahead. Call during wiring,
  // before traffic.
  void SetDestination(sim::Simulation& dst);
  sim::Simulation& destination() const { return *dst_; }

  // Host NICs can schedule their transmit queue by traffic class (strict
  // priority, highest first) instead of FIFO — how RDMA traffic is
  // prioritized above user TCP in the Figure 14 worst case.
  void set_priority_scheduling(bool enabled) {
    priority_scheduling_ = enabled;
  }

  // PFC: pauses the data classes (everything below Priority::kControl) for
  // `duration` ns. Control frames keep flowing — that is what keeps the
  // pause/CNP loop itself deadlock-free. A refresh while already paused
  // extends the deadline; a zero/negative duration (or the timer expiring)
  // resumes and re-kicks the transmitter. Queued data packets are *held*,
  // not dropped, so delivery back-pressures instead of losing frames — and
  // the per-fault counters (counted once at delivery) stay exact even when
  // a pause defers the transmit that precedes them.
  void PauseData(Nanos duration);
  void ResumeData();
  bool data_paused() const { return data_paused_; }

  bool TransmitterIdle() const { return !busy_; }
  std::size_t QueuedPackets() const { return queue_.size(); }
  BitRate rate() const { return rate_; }
  Nanos propagation() const { return propagation_; }

  // Completed pause intervals, accumulated (an in-progress pause counts
  // once it resumes).
  std::uint64_t paused_ns() const { return paused_ns_; }
  std::uint64_t pauses_received() const { return pauses_received_; }

  std::uint64_t packets_delivered() const { return packets_delivered_; }
  std::uint64_t bytes_delivered() const { return bytes_delivered_; }
  std::uint64_t packets_dropped() const { return packets_dropped_; }

  // Exact injected-fault accounting (each FaultAction is counted once, in
  // exactly one bucket per effect it requested).
  std::uint64_t faults_dropped() const { return faults_dropped_; }
  std::uint64_t faults_duplicated() const { return faults_duplicated_; }
  std::uint64_t faults_delayed() const { return faults_delayed_; }
  std::uint64_t faults_reordered() const { return faults_reordered_; }

  // Surfaces delivery and fault counters through a registry as callback
  // gauges (evaluated at snapshot time; the link pays nothing per packet).
  // The link must outlive the registry or UnbindTelemetry first.
  void BindTelemetry(telemetry::MetricRegistry& registry,
                     const telemetry::Labels& labels);
  void UnbindTelemetry();

 private:
  // True when some queued packet may transmit now (any packet normally;
  // only kControl while data-paused).
  bool HasEligible() const;
  void StartNext();
  void Deliver(Packet packet);
  void Arrive(Packet packet);

  sim::Simulation* sim_;
  // Delivery-side event loop; == sim_ unless SetDestination made this link
  // a domain cut. Deliver/Arrive (and the counters they touch) always run
  // on the destination domain's thread.
  sim::Simulation* dst_ = sim_;
  std::string name_ = "<link>";
  std::string src_node_ = "<node>";
  std::string dst_node_ = "<node>";
  BitRate rate_;
  Nanos propagation_;
  std::function<void(Packet)> receiver_;
  std::function<void()> idle_callback_;
  std::function<bool(const Packet&)> drop_filter_;
  std::function<FaultAction(const Packet&)> fault_filter_;
  FixedDeque<Packet> queue_;
  bool priority_scheduling_ = false;
  bool busy_ = false;
  bool data_paused_ = false;
  Nanos pause_started_at_ = 0;
  sim::TimerHandle pause_timer_;
  std::uint64_t paused_ns_ = 0;
  std::uint64_t pauses_received_ = 0;
  std::uint64_t packets_delivered_ = 0;
  std::uint64_t bytes_delivered_ = 0;
  std::uint64_t packets_dropped_ = 0;
  std::uint64_t faults_dropped_ = 0;
  std::uint64_t faults_duplicated_ = 0;
  std::uint64_t faults_delayed_ = 0;
  std::uint64_t faults_reordered_ = 0;
  telemetry::MetricRegistry* telemetry_registry_ = nullptr;
  telemetry::Labels telemetry_labels_;
};

}  // namespace cowbird::net
