// Packets and the Ethernet/IPv4/UDP encapsulation carried by every RoCEv2
// message in the simulation.
//
// A Packet owns its full wire bytes; the struct-level header types here are
// views that serialize to / parse from those bytes at fixed offsets (none of
// the protocols involved have options in our use). Higher layers (rdma/wire)
// append BTH/RETH/AETH after the UDP header.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/units.h"
#include "net/bytes.h"

namespace cowbird::net {

using NodeId = std::uint32_t;

constexpr std::size_t kEthernetHeaderBytes = 14;
constexpr std::size_t kIpv4HeaderBytes = 20;
constexpr std::size_t kUdpHeaderBytes = 8;
constexpr std::size_t kL2L3L4Bytes =
    kEthernetHeaderBytes + kIpv4HeaderBytes + kUdpHeaderBytes;
// Preamble (8) + inter-frame gap (12) + FCS (4): occupies wire time but is
// not part of the buffered bytes.
constexpr std::size_t kWireExtraBytes = 24;
constexpr std::uint16_t kRoceUdpPort = 4791;
constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
constexpr std::uint8_t kIpProtoUdp = 17;

struct EthernetHeader {
  std::uint64_t dst_mac = 0;  // low 48 bits used
  std::uint64_t src_mac = 0;
  std::uint16_t ether_type = kEtherTypeIpv4;

  void Serialize(std::span<std::uint8_t> buf) const {
    COWBIRD_DCHECK(buf.size() >= kEthernetHeaderBytes);
    PutU16(buf, 0, static_cast<std::uint16_t>(dst_mac >> 32));
    PutU32(buf, 2, static_cast<std::uint32_t>(dst_mac));
    PutU16(buf, 6, static_cast<std::uint16_t>(src_mac >> 32));
    PutU32(buf, 8, static_cast<std::uint32_t>(src_mac));
    PutU16(buf, 12, ether_type);
  }
  static EthernetHeader Parse(std::span<const std::uint8_t> buf) {
    COWBIRD_DCHECK(buf.size() >= kEthernetHeaderBytes);
    EthernetHeader h;
    h.dst_mac = (static_cast<std::uint64_t>(GetU16(buf, 0)) << 32) |
                GetU32(buf, 2);
    h.src_mac = (static_cast<std::uint64_t>(GetU16(buf, 6)) << 32) |
                GetU32(buf, 8);
    h.ether_type = GetU16(buf, 12);
    return h;
  }
};

struct Ipv4Header {
  std::uint8_t dscp = 0;  // carries the priority class on the wire
  std::uint16_t total_length = 0;
  std::uint8_t ttl = 64;
  std::uint8_t protocol = kIpProtoUdp;
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;

  void Serialize(std::span<std::uint8_t> buf) const {
    COWBIRD_DCHECK(buf.size() >= kIpv4HeaderBytes);
    PutU8(buf, 0, 0x45);  // version 4, IHL 5
    PutU8(buf, 1, static_cast<std::uint8_t>(dscp << 2));
    PutU16(buf, 2, total_length);
    PutU16(buf, 4, 0);  // identification
    PutU16(buf, 6, 0x4000);  // don't fragment
    PutU8(buf, 8, ttl);
    PutU8(buf, 9, protocol);
    PutU16(buf, 10, 0);  // checksum: computed lazily by real NICs; unused here
    PutU32(buf, 12, src_ip);
    PutU32(buf, 16, dst_ip);
  }
  static Ipv4Header Parse(std::span<const std::uint8_t> buf) {
    COWBIRD_DCHECK(buf.size() >= kIpv4HeaderBytes);
    Ipv4Header h;
    h.dscp = static_cast<std::uint8_t>(GetU8(buf, 1) >> 2);
    h.total_length = GetU16(buf, 2);
    h.ttl = GetU8(buf, 8);
    h.protocol = GetU8(buf, 9);
    h.src_ip = GetU32(buf, 12);
    h.dst_ip = GetU32(buf, 16);
    return h;
  }
};

struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;

  void Serialize(std::span<std::uint8_t> buf) const {
    COWBIRD_DCHECK(buf.size() >= kUdpHeaderBytes);
    PutU16(buf, 0, src_port);
    PutU16(buf, 2, dst_port);
    PutU16(buf, 4, length);
    PutU16(buf, 6, 0);  // checksum unused
  }
  static UdpHeader Parse(std::span<const std::uint8_t> buf) {
    COWBIRD_DCHECK(buf.size() >= kUdpHeaderBytes);
    UdpHeader h;
    h.src_port = GetU16(buf, 0);
    h.dst_port = GetU16(buf, 2);
    h.length = GetU16(buf, 4);
    return h;
  }
};

// Traffic classes used in the evaluation. Lower numeric value = lower
// priority. Probes ride the lowest class (Section 5.2, Phase II).
enum class Priority : std::uint8_t {
  kProbe = 0,     // Cowbird-P4 probe packets, scavenger class
  kBulk = 1,      // contending user traffic (Fig 14 TCP flows)
  kRdma = 2,      // RDMA data packets (configured *above* user traffic in
                  // Fig 14 to bound the worst case, per the paper)
  kControl = 3,   // ACKs / control
  kLevels = 4,
};

struct Packet {
  std::vector<std::uint8_t> bytes;  // full frame: Eth + IP + UDP + payload
  NodeId src = 0;
  NodeId dst = 0;
  Priority priority = Priority::kRdma;

  Bytes WireBytes() const { return bytes.size() + kWireExtraBytes; }

  std::span<const std::uint8_t> L3() const {
    return std::span<const std::uint8_t>(bytes).subspan(kEthernetHeaderBytes);
  }
  std::span<const std::uint8_t> L4Payload() const {
    return std::span<const std::uint8_t>(bytes).subspan(kL2L3L4Bytes);
  }
  std::span<std::uint8_t> MutableL4Payload() {
    return std::span<std::uint8_t>(bytes).subspan(kL2L3L4Bytes);
  }
};

// Builds the L2–L4 encapsulation around `payload_len` bytes of upper-layer
// content and returns the packet with payload zeroed, ready to be filled.
inline Packet MakeUdpPacket(NodeId src, NodeId dst, std::size_t payload_len,
                            Priority priority,
                            std::uint16_t dst_port = kRoceUdpPort) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.priority = priority;
  p.bytes.resize(kL2L3L4Bytes + payload_len);
  EthernetHeader eth;
  eth.dst_mac = 0x0200'0000'0000ull | dst;
  eth.src_mac = 0x0200'0000'0000ull | src;
  eth.Serialize(p.bytes);
  Ipv4Header ip;
  ip.dscp = static_cast<std::uint8_t>(priority);
  ip.src_ip = 0x0A000000u | src;  // 10.0.0.0/8
  ip.dst_ip = 0x0A000000u | dst;
  ip.total_length =
      static_cast<std::uint16_t>(kIpv4HeaderBytes + kUdpHeaderBytes +
                                 payload_len);
  ip.Serialize(std::span<std::uint8_t>(p.bytes).subspan(kEthernetHeaderBytes));
  UdpHeader udp;
  udp.src_port = 0xC000;
  udp.dst_port = dst_port;
  udp.length = static_cast<std::uint16_t>(kUdpHeaderBytes + payload_len);
  udp.Serialize(std::span<std::uint8_t>(p.bytes).subspan(
      kEthernetHeaderBytes + kIpv4HeaderBytes));
  return p;
}

}  // namespace cowbird::net
