// Packets and the Ethernet/IPv4/UDP encapsulation carried by every RoCEv2
// message in the simulation.
//
// A Packet owns its full wire bytes; the struct-level header types here are
// views that serialize to / parse from those bytes at fixed offsets (none of
// the protocols involved have options in our use). Higher layers (rdma/wire)
// append BTH/RETH/AETH after the UDP header.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/pool.h"
#include "common/units.h"
#include "net/bytes.h"

namespace cowbird::net {

using NodeId = std::uint32_t;

constexpr std::size_t kEthernetHeaderBytes = 14;
constexpr std::size_t kIpv4HeaderBytes = 20;
constexpr std::size_t kUdpHeaderBytes = 8;
constexpr std::size_t kL2L3L4Bytes =
    kEthernetHeaderBytes + kIpv4HeaderBytes + kUdpHeaderBytes;
// Preamble (8) + inter-frame gap (12) + FCS (4): occupies wire time but is
// not part of the buffered bytes.
constexpr std::size_t kWireExtraBytes = 24;
constexpr std::uint16_t kRoceUdpPort = 4791;
constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
// IEEE 802.3x/802.1Qbb flow-control frames (PFC pause/resume).
constexpr std::uint16_t kEtherTypePfc = 0x8808;
constexpr std::uint8_t kIpProtoUdp = 17;

// ECN codepoints (RFC 3168, low two bits of the IPv4 TOS byte). Senders
// with congestion control enabled stamp ECT(0); a congested switch queue
// rewrites ECT to CE in place.
constexpr std::uint8_t kEcnNotCapable = 0b00;
constexpr std::uint8_t kEcnEct0 = 0b10;
constexpr std::uint8_t kEcnCe = 0b11;

struct EthernetHeader {
  std::uint64_t dst_mac = 0;  // low 48 bits used
  std::uint64_t src_mac = 0;
  std::uint16_t ether_type = kEtherTypeIpv4;

  void Serialize(std::span<std::uint8_t> buf) const {
    COWBIRD_DCHECK(buf.size() >= kEthernetHeaderBytes);
    PutU16(buf, 0, static_cast<std::uint16_t>(dst_mac >> 32));
    PutU32(buf, 2, static_cast<std::uint32_t>(dst_mac));
    PutU16(buf, 6, static_cast<std::uint16_t>(src_mac >> 32));
    PutU32(buf, 8, static_cast<std::uint32_t>(src_mac));
    PutU16(buf, 12, ether_type);
  }
  static EthernetHeader Parse(std::span<const std::uint8_t> buf) {
    COWBIRD_DCHECK(buf.size() >= kEthernetHeaderBytes);
    EthernetHeader h;
    h.dst_mac = (static_cast<std::uint64_t>(GetU16(buf, 0)) << 32) |
                GetU32(buf, 2);
    h.src_mac = (static_cast<std::uint64_t>(GetU16(buf, 6)) << 32) |
                GetU32(buf, 8);
    h.ether_type = GetU16(buf, 12);
    return h;
  }
};

struct Ipv4Header {
  std::uint8_t dscp = 0;  // carries the priority class on the wire
  std::uint8_t ecn = kEcnNotCapable;  // RFC 3168 codepoint (TOS low bits)
  std::uint16_t total_length = 0;
  std::uint8_t ttl = 64;
  std::uint8_t protocol = kIpProtoUdp;
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;

  void Serialize(std::span<std::uint8_t> buf) const {
    COWBIRD_DCHECK(buf.size() >= kIpv4HeaderBytes);
    PutU8(buf, 0, 0x45);  // version 4, IHL 5
    PutU8(buf, 1, static_cast<std::uint8_t>((dscp << 2) | (ecn & 3)));
    PutU16(buf, 2, total_length);
    PutU16(buf, 4, 0);  // identification
    PutU16(buf, 6, 0x4000);  // don't fragment
    PutU8(buf, 8, ttl);
    PutU8(buf, 9, protocol);
    PutU16(buf, 10, 0);  // checksum: computed lazily by real NICs; unused here
    PutU32(buf, 12, src_ip);
    PutU32(buf, 16, dst_ip);
  }
  static Ipv4Header Parse(std::span<const std::uint8_t> buf) {
    COWBIRD_DCHECK(buf.size() >= kIpv4HeaderBytes);
    Ipv4Header h;
    h.dscp = static_cast<std::uint8_t>(GetU8(buf, 1) >> 2);
    h.ecn = static_cast<std::uint8_t>(GetU8(buf, 1) & 3);
    h.total_length = GetU16(buf, 2);
    h.ttl = GetU8(buf, 8);
    h.protocol = GetU8(buf, 9);
    h.src_ip = GetU32(buf, 12);
    h.dst_ip = GetU32(buf, 16);
    return h;
  }
};

struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;

  void Serialize(std::span<std::uint8_t> buf) const {
    COWBIRD_DCHECK(buf.size() >= kUdpHeaderBytes);
    PutU16(buf, 0, src_port);
    PutU16(buf, 2, dst_port);
    PutU16(buf, 4, length);
    PutU16(buf, 6, 0);  // checksum unused
  }
  static UdpHeader Parse(std::span<const std::uint8_t> buf) {
    COWBIRD_DCHECK(buf.size() >= kUdpHeaderBytes);
    UdpHeader h;
    h.src_port = GetU16(buf, 0);
    h.dst_port = GetU16(buf, 2);
    h.length = GetU16(buf, 4);
    return h;
  }
};

// Traffic classes used in the evaluation. Lower numeric value = lower
// priority. Probes ride the lowest class (Section 5.2, Phase II).
enum class Priority : std::uint8_t {
  kProbe = 0,     // Cowbird-P4 probe packets, scavenger class
  kBulk = 1,      // contending user traffic (Fig 14 TCP flows)
  kRdma = 2,      // RDMA data packets (configured *above* user traffic in
                  // Fig 14 to bound the worst case, per the paper)
  kControl = 3,   // ACKs / control
  kLevels = 4,
};

// Frame storage backed by a recycled slot cache instead of the heap. Every
// hop in the simulation copies or moves a Packet at least once (into the
// delivery event, through the switch pipeline, into the fault injector), and
// a std::vector here meant one allocation per copy. Slots are 1536 bytes —
// enough for the largest RDMA frame (1098B) and the bulk-flow MTU frames
// (1442B); anything larger falls back to an exact heap allocation, counted
// in the slot cache's exhausted_total so the misconfiguration is visible in
// the pool gauges. The cache is thread-local because simulations are
// thread-confined.
//
// The deliberately vector-shaped API (size/resize/data/begin/end, implicit
// span conversion, zero-fill on growth) keeps the wire-format code
// unchanged.
class PacketBuffer {
 public:
  static constexpr std::size_t kSlotBytes = 1536;

  PacketBuffer() = default;
  PacketBuffer(const PacketBuffer& other) { CopyFrom(other); }
  PacketBuffer& operator=(const PacketBuffer& other) {
    if (this != &other) {
      ReleaseStorage();
      CopyFrom(other);
    }
    return *this;
  }
  PacketBuffer(PacketBuffer&& other) noexcept
      : data_(other.data_), size_(other.size_), cap_(other.cap_) {
    other.data_ = nullptr;
    other.size_ = 0;
    other.cap_ = 0;
  }
  PacketBuffer& operator=(PacketBuffer&& other) noexcept {
    if (this != &other) {
      ReleaseStorage();
      data_ = other.data_;
      size_ = other.size_;
      cap_ = other.cap_;
      other.data_ = nullptr;
      other.size_ = 0;
      other.cap_ = 0;
    }
    return *this;
  }
  ~PacketBuffer() { ReleaseStorage(); }

  std::uint8_t* data() { return data_; }
  const std::uint8_t* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::uint8_t* begin() { return data_; }
  std::uint8_t* end() { return data_ + size_; }
  const std::uint8_t* begin() const { return data_; }
  const std::uint8_t* end() const { return data_ + size_; }
  std::uint8_t& operator[](std::size_t i) {
    COWBIRD_DCHECK(i < size_);
    return data_[i];
  }
  std::uint8_t operator[](std::size_t i) const {
    COWBIRD_DCHECK(i < size_);
    return data_[i];
  }

  // vector semantics: growth zero-fills the new tail, shrinking keeps data.
  void resize(std::size_t n) {
    if (n > cap_) GrowTo(n);
    if (n > size_) std::memset(data_ + size_, 0, n - size_);
    size_ = n;
  }

  operator std::span<std::uint8_t>() { return {data_, size_}; }
  operator std::span<const std::uint8_t>() const { return {data_, size_}; }

  // Counters of the calling thread's slot cache (bindable as pool gauges).
  static const PoolStats& stats() { return Cache().stats; }

 private:
  struct SlotCache {
    std::vector<std::uint8_t*> free;
    PoolStats stats;
    ~SlotCache() {
      for (std::uint8_t* slot : free) delete[] slot;
    }
  };
  static SlotCache& Cache() {
    thread_local SlotCache cache;
    return cache;
  }

  void GrowTo(std::size_t n) {
    std::uint8_t* next = nullptr;
    std::size_t next_cap = 0;
    if (n <= kSlotBytes) {
      SlotCache& cache = Cache();
      if (cache.free.empty()) {
        next = new std::uint8_t[kSlotBytes];
      } else {
        next = cache.free.back();
        cache.free.pop_back();
      }
      next_cap = kSlotBytes;
      ++cache.stats.in_use;
      if (cache.stats.in_use > cache.stats.high_water) {
        cache.stats.high_water = cache.stats.in_use;
      }
    } else {
      // Oversized frame: exact heap allocation, visible in the gauges.
      next = new std::uint8_t[n];
      next_cap = n;
      ++Cache().stats.exhausted_total;
    }
    if (size_ > 0) std::memcpy(next, data_, size_);
    ReleaseStorage();
    data_ = next;
    cap_ = next_cap;
  }

  void CopyFrom(const PacketBuffer& other) {
    size_ = 0;
    cap_ = 0;
    data_ = nullptr;
    if (other.size_ == 0) return;
    GrowTo(other.size_);
    std::memcpy(data_, other.data_, other.size_);
    size_ = other.size_;
  }

  void ReleaseStorage() {
    if (cap_ == kSlotBytes) {
      Cache().free.push_back(data_);
      --Cache().stats.in_use;
    } else if (cap_ > 0) {
      delete[] data_;
    }
    data_ = nullptr;
    size_ = 0;
    cap_ = 0;
  }

  std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = 0;
};

struct Packet {
  PacketBuffer bytes;  // full frame: Eth + IP + UDP + payload
  NodeId src = 0;
  NodeId dst = 0;
  Priority priority = Priority::kRdma;

  Bytes WireBytes() const { return bytes.size() + kWireExtraBytes; }

  // ECN codepoint of IPv4 frames, read/rewritten in place (frame offset 15
  // is the TOS byte). Non-IPv4 frames (PFC) report kEcnNotCapable.
  std::uint8_t EcnBits() const {
    if (bytes.size() < kEthernetHeaderBytes + kIpv4HeaderBytes) {
      return kEcnNotCapable;
    }
    if (EthernetHeader::Parse(bytes).ether_type != kEtherTypeIpv4) {
      return kEcnNotCapable;
    }
    return static_cast<std::uint8_t>(bytes[kEthernetHeaderBytes + 1] & 3);
  }
  bool IsEcnCapable() const { return (EcnBits() & kEcnEct0) != 0; }
  void SetEcnBits(std::uint8_t codepoint) {
    COWBIRD_DCHECK(bytes.size() >= kEthernetHeaderBytes + kIpv4HeaderBytes);
    std::uint8_t& tos = bytes[kEthernetHeaderBytes + 1];
    tos = static_cast<std::uint8_t>((tos & ~3u) | (codepoint & 3u));
  }

  std::span<const std::uint8_t> L3() const {
    return std::span<const std::uint8_t>(bytes).subspan(kEthernetHeaderBytes);
  }
  std::span<const std::uint8_t> L4Payload() const {
    return std::span<const std::uint8_t>(bytes).subspan(kL2L3L4Bytes);
  }
  std::span<std::uint8_t> MutableL4Payload() {
    return std::span<std::uint8_t>(bytes).subspan(kL2L3L4Bytes);
  }
};

// Builds the L2–L4 encapsulation around `payload_len` bytes of upper-layer
// content and returns the packet with payload zeroed, ready to be filled.
inline Packet MakeUdpPacket(NodeId src, NodeId dst, std::size_t payload_len,
                            Priority priority,
                            std::uint16_t dst_port = kRoceUdpPort) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.priority = priority;
  p.bytes.resize(kL2L3L4Bytes + payload_len);
  EthernetHeader eth;
  eth.dst_mac = 0x0200'0000'0000ull | dst;
  eth.src_mac = 0x0200'0000'0000ull | src;
  eth.Serialize(p.bytes);
  Ipv4Header ip;
  ip.dscp = static_cast<std::uint8_t>(priority);
  ip.src_ip = 0x0A000000u | src;  // 10.0.0.0/8
  ip.dst_ip = 0x0A000000u | dst;
  ip.total_length =
      static_cast<std::uint16_t>(kIpv4HeaderBytes + kUdpHeaderBytes +
                                 payload_len);
  ip.Serialize(std::span<std::uint8_t>(p.bytes).subspan(kEthernetHeaderBytes));
  UdpHeader udp;
  udp.src_port = 0xC000;
  udp.dst_port = dst_port;
  udp.length = static_cast<std::uint16_t>(kUdpHeaderBytes + payload_len);
  udp.Serialize(std::span<std::uint8_t>(p.bytes).subspan(
      kEthernetHeaderBytes + kIpv4HeaderBytes));
  return p;
}

// --- PFC (priority flow control) frames ---------------------------------
//
// Modeled after 802.3x pause frames: an Ethernet header with ethertype
// 0x8808, a 16-bit opcode, and the pause duration in virtual nanoseconds
// (the real standard counts 512-bit quanta; the simulation pauses for an
// explicit duration and refreshes before expiry while congestion
// persists). A duration of zero is a resume. Pause applies to the data
// classes only — Priority::kControl always flows, which is what keeps the
// pause/CNP control loop itself deadlock-free.
constexpr std::uint16_t kPfcOpcodePause = 0x0101;
constexpr std::size_t kPfcFrameBytes = kEthernetHeaderBytes + 2 + 8;

inline Packet MakePfcFrame(NodeId src, NodeId dst, Nanos pause_duration) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.priority = Priority::kControl;
  p.bytes.resize(kPfcFrameBytes);
  EthernetHeader eth;
  eth.dst_mac = 0x0180'C200'0001ull;  // 802.3x reserved multicast
  eth.src_mac = 0x0200'0000'0000ull | src;
  eth.ether_type = kEtherTypePfc;
  eth.Serialize(p.bytes);
  PutU16(p.bytes, kEthernetHeaderBytes, kPfcOpcodePause);
  PutU64(p.bytes, kEthernetHeaderBytes + 2,
         static_cast<std::uint64_t>(pause_duration));
  return p;
}

inline bool IsPfcFrame(const Packet& p) {
  return p.bytes.size() >= kPfcFrameBytes &&
         EthernetHeader::Parse(p.bytes).ether_type == kEtherTypePfc;
}

// Pause duration carried by a PFC frame; zero means resume.
inline Nanos PfcPauseDuration(const Packet& p) {
  COWBIRD_DCHECK(IsPfcFrame(p));
  return static_cast<Nanos>(GetU64(p.bytes, kEthernetHeaderBytes + 2));
}

}  // namespace cowbird::net
