#include "net/switch.h"

#include <utility>

#include "common/check.h"

namespace cowbird::net {

int Switch::AddPort(BitRate rate, Nanos propagation) {
  auto port = std::make_unique<Port>();
  port->link = std::make_unique<Link>(*sim_, rate, propagation);
  const int index = static_cast<int>(ports_.size());
  port->link->set_idle_callback([this, index] { Drain(index); });
  ports_.push_back(std::move(port));
  return index;
}

void Switch::SetRoute(NodeId node, int port) {
  COWBIRD_CHECK(port >= 0 && port < PortCount());
  routes_.emplace_back(node, port);
}

int Switch::RouteFor(NodeId node) const {
  for (const auto& [n, p] : routes_) {
    if (n == node) return p;
  }
  return -1;
}

void Switch::OnIngress(int ingress_port, Packet packet) {
  sim_->ScheduleAfter(config_.pipeline_latency,
                      [this, ingress_port, p = std::move(packet)]() mutable {
                        RunPipeline(ingress_port, std::move(p));
                      });
}

void Switch::InjectGenerated(int gen_port, Packet packet) {
  // Generated packets enter the pipeline directly; generator-to-parser
  // latency is folded into the pipeline latency.
  sim_->ScheduleAfter(config_.pipeline_latency,
                      [this, gen_port, p = std::move(packet)]() mutable {
                        RunPipeline(gen_port, std::move(p));
                      });
}

void Switch::RunPipeline(int ingress_port, Packet packet) {
  std::vector<ForwardAction>& actions = pipeline_scratch_;
  actions.clear();
  if (processor_ != nullptr) {
    processor_->Process(*this, ingress_port, std::move(packet), actions);
  } else {
    const int port = RouteFor(packet.dst);
    if (port >= 0) actions.push_back({port, std::move(packet)});
  }
  for (auto& action : actions) {
    if (action.egress_port < 0) continue;
    EnqueueEgress(action.egress_port, std::move(action.packet));
  }
}

void Switch::EnqueueEgress(int port_index, Packet packet) {
  COWBIRD_CHECK(port_index >= 0 && port_index < PortCount());
  Port& port = *ports_[port_index];
  const Bytes size = packet.bytes.size();
  if (port.queued_bytes + size > config_.egress_queue_capacity) {
    ++port.drops;
    return;
  }
  port.queued_bytes += size;
  port.queues[static_cast<std::size_t>(packet.priority)].push_back(
      std::move(packet));
  if (port.link->TransmitterIdle()) Drain(port_index);
}

void Switch::Drain(int port_index) {
  Port& port = *ports_[port_index];
  if (!port.link->TransmitterIdle()) return;
  // Strict priority: highest class first.
  for (int prio = static_cast<int>(Priority::kLevels) - 1; prio >= 0;
       --prio) {
    auto& queue = port.queues[static_cast<std::size_t>(prio)];
    if (queue.empty()) continue;
    Packet packet = std::move(queue.front());
    queue.pop_front();
    port.queued_bytes -= packet.bytes.size();
    ++forwarded_;
    port.link->Send(std::move(packet));
    return;
  }
}

}  // namespace cowbird::net
