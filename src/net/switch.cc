#include "net/switch.h"

#include <utility>

#include "common/check.h"

namespace cowbird::net {

int Switch::AddPort(BitRate rate, Nanos propagation) {
  auto port = std::make_unique<Port>();
  port->link = std::make_unique<Link>(*sim_, rate, propagation);
  const int index = static_cast<int>(ports_.size());
  port->link->set_idle_callback([this, index] { Drain(index); });
  ports_.push_back(std::move(port));
  return index;
}

void Switch::SetRoute(NodeId node, int port) {
  COWBIRD_CHECK(port >= 0 && port < PortCount());
  routes_.emplace_back(node, port);
}

void Switch::SetDefaultRoute(int port) {
  COWBIRD_CHECK(port >= 0 && port < PortCount());
  default_route_ = port;
}

int Switch::RouteFor(NodeId node) const {
  for (const auto& [n, p] : routes_) {
    if (n == node) return p;
  }
  return default_route_;
}

TrunkPorts ConnectTrunk(Switch& a, Switch& b, BitRate rate, Nanos propagation,
                        const std::string& a_name, const std::string& b_name) {
  TrunkPorts trunk;
  trunk.a_port = a.AddPort(rate, propagation);
  trunk.b_port = b.AddPort(rate, propagation);
  a.EgressLink(trunk.a_port).set_receiver([&b, port = trunk.b_port](Packet p) {
    b.OnIngress(port, std::move(p));
  });
  b.EgressLink(trunk.b_port).set_receiver([&a, port = trunk.a_port](Packet p) {
    a.OnIngress(port, std::move(p));
  });
  a.EgressLink(trunk.a_port)
      .SetNames("trunk[" + a_name + "->" + b_name + "]", a_name, b_name);
  b.EgressLink(trunk.b_port)
      .SetNames("trunk[" + b_name + "->" + a_name + "]", b_name, a_name);
  // Same as the host attachment: deliveries run on the receiving switch's
  // event loop, and these calls register the cut when the switches are in
  // different PDES domains.
  a.EgressLink(trunk.a_port).SetDestination(b.simulation());
  b.EgressLink(trunk.b_port).SetDestination(a.simulation());
  return trunk;
}

void Switch::OnIngress(int ingress_port, Packet packet) {
  // PFC is handled at the MAC, below the forwarding pipeline: a pause
  // received on a port stops the switch transmitting data classes *to*
  // that port (the egress link shares the port index with the uplink the
  // frame arrived on).
  if (IsPfcFrame(packet)) {
    ports_[ingress_port]->link->PauseData(PfcPauseDuration(packet));
    return;
  }
  sim_->ScheduleAfter(config_.pipeline_latency,
                      [this, ingress_port, p = std::move(packet)]() mutable {
                        RunPipeline(ingress_port, std::move(p));
                      });
}

void Switch::InjectGenerated(int gen_port, Packet packet) {
  // Generated packets enter the pipeline directly; generator-to-parser
  // latency is folded into the pipeline latency.
  sim_->ScheduleAfter(config_.pipeline_latency,
                      [this, gen_port, p = std::move(packet)]() mutable {
                        RunPipeline(gen_port, std::move(p));
                      });
}

void Switch::RunPipeline(int ingress_port, Packet packet) {
  std::vector<ForwardAction>& actions = pipeline_scratch_;
  actions.clear();
  if (processor_ != nullptr) {
    processor_->Process(*this, ingress_port, std::move(packet), actions);
  } else {
    const int port = RouteFor(packet.dst);
    if (port >= 0) actions.push_back({port, std::move(packet)});
  }
  for (auto& action : actions) {
    if (action.egress_port < 0) continue;
    EnqueueEgress(action.egress_port, std::move(action.packet),
                  ingress_port);
  }
}

void Switch::EnqueueEgress(int port_index, Packet packet, int ingress_port) {
  COWBIRD_CHECK(port_index >= 0 && port_index < PortCount());
  Port& port = *ports_[port_index];
  const Bytes size = packet.bytes.size();
  if (port.queued_bytes + size > config_.egress_queue_capacity) {
    ++port.drops;
    return;
  }
  // RED/ECN: mark-on-arrival against the pre-enqueue depth, so the packet
  // that *finds* the queue at the threshold is the first one marked.
  if (config_.ecn_threshold > 0 &&
      port.queued_bytes >= config_.ecn_threshold && packet.IsEcnCapable()) {
    packet.SetEcnBits(kEcnCe);
    ++ecn_marked_;
  }
  port.queued_bytes += size;
  if (port.queued_bytes > queue_high_water_) {
    queue_high_water_ = port.queued_bytes;
  }
  port.queues[static_cast<std::size_t>(packet.priority)].push_back(
      {std::move(packet), ingress_port});
  if (ingress_port >= 0) {
    ports_[ingress_port]->ingress_buffered += size;
    UpdatePfcOnEnqueue(ingress_port);
  }
  if (port.link->TransmitterIdle()) Drain(port_index);
}

void Switch::Drain(int port_index) {
  Port& port = *ports_[port_index];
  if (!port.link->TransmitterIdle()) return;
  // Strict priority: highest class first.
  for (int prio = static_cast<int>(Priority::kLevels) - 1; prio >= 0;
       --prio) {
    auto& queue = port.queues[static_cast<std::size_t>(prio)];
    if (queue.empty()) continue;
    Queued entry = std::move(queue.front());
    queue.pop_front();
    port.queued_bytes -= entry.packet.bytes.size();
    if (entry.ingress >= 0) {
      ports_[entry.ingress]->ingress_buffered -= entry.packet.bytes.size();
      UpdatePfcOnDequeue(entry.ingress);
    }
    ++forwarded_;
    ++port.tx_packets;
    port.tx_bytes += entry.packet.bytes.size();
    port.link->Send(std::move(entry.packet));
    return;
  }
}

void Switch::UpdatePfcOnEnqueue(int ingress_port) {
  if (!config_.pfc_enabled) return;
  Port& ingress = *ports_[ingress_port];
  if (ingress.ingress_buffered < config_.pfc_pause_threshold) return;
  // Assert (or refresh, if in-flight packets keep arriving) the pause. The
  // frame bypasses egress queueing: flow control must not sit behind the
  // very congestion it relieves.
  if (!ingress.pause_asserted) ++pfc_pauses_sent_;
  ingress.pause_asserted = true;
  ingress.link->Send(MakePfcFrame(0, 0, config_.pfc_pause_duration));
}

void Switch::UpdatePfcOnDequeue(int ingress_port) {
  if (!config_.pfc_enabled) return;
  Port& ingress = *ports_[ingress_port];
  if (!ingress.pause_asserted ||
      ingress.ingress_buffered > config_.pfc_resume_threshold) {
    return;
  }
  ingress.pause_asserted = false;
  ++pfc_resumes_sent_;
  ingress.link->Send(MakePfcFrame(0, 0, 0));
}

void Switch::BindTelemetry(telemetry::MetricRegistry& registry,
                           const telemetry::Labels& labels) {
  UnbindTelemetry();
  telemetry_registry_ = &registry;
  telemetry_labels_ = labels;
  registry.RegisterCallbackGauge(
      "switch_forwarded", labels,
      [this] { return static_cast<std::int64_t>(forwarded_); });
  registry.RegisterCallbackGauge(
      "switch_ecn_marked", labels,
      [this] { return static_cast<std::int64_t>(ecn_marked_); });
  registry.RegisterCallbackGauge(
      "switch_pfc_pauses_sent", labels,
      [this] { return static_cast<std::int64_t>(pfc_pauses_sent_); });
  registry.RegisterCallbackGauge(
      "switch_pfc_resumes_sent", labels,
      [this] { return static_cast<std::int64_t>(pfc_resumes_sent_); });
  registry.RegisterCallbackGauge(
      "switch_egress_drops", labels,
      [this] { return static_cast<std::int64_t>(total_drops()); });
  registry.RegisterCallbackGauge("switch_queued_bytes", labels, [this] {
    Bytes total = 0;
    for (const auto& port : ports_) total += port->queued_bytes;
    return static_cast<std::int64_t>(total);
  });
  registry.RegisterCallbackGauge(
      "switch_queue_high_water_bytes", labels,
      [this] { return static_cast<std::int64_t>(queue_high_water_); });
}

void Switch::UnbindTelemetry() {
  if (telemetry_registry_ == nullptr) return;
  for (const char* name :
       {"switch_forwarded", "switch_ecn_marked", "switch_pfc_pauses_sent",
        "switch_pfc_resumes_sent", "switch_egress_drops",
        "switch_queued_bytes", "switch_queue_high_water_bytes"}) {
    telemetry_registry_->UnregisterCallbackGauge(name, telemetry_labels_);
  }
  telemetry_registry_ = nullptr;
  telemetry_labels_.clear();
}

}  // namespace cowbird::net
