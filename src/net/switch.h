// Output-queued switch with strict-priority egress scheduling and a
// pluggable packet processor.
//
// The processor hook is where Cowbird-P4 lives: every ingress packet flows
// through Process(), which may rewrite it, consume it, or emit additional
// packets (packet "recycling", Section 5.2). The default processor is plain
// L3 forwarding. Generated packets (probes) enter through InjectGenerated(),
// mirroring the Tofino packet generator feeding the ingress pipeline.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/pool.h"
#include "common/units.h"
#include "net/link.h"
#include "net/packet.h"
#include "sim/simulation.h"
#include "telemetry/metrics.h"

namespace cowbird::net {

class Switch;

struct ForwardAction {
  int egress_port = -1;  // -1 → drop
  Packet packet;
};

class PacketProcessor {
 public:
  virtual ~PacketProcessor() = default;
  // Transform one ingress packet into zero or more egress actions.
  virtual void Process(Switch& sw, int ingress_port, Packet packet,
                       std::vector<ForwardAction>& out) = 0;
};

class Switch {
 public:
  struct Config {
    Bytes egress_queue_capacity = MiB(4);  // per port, across priorities
    Nanos pipeline_latency = 400;          // ingress→egress, Tofino-like

    // --- shared-fabric congestion (all off by default; the defaults keep
    // every pre-existing run byte-identical) ---

    // RED/ECN: when an egress queue already holds >= ecn_threshold bytes,
    // an arriving ECT packet is rewritten to CE in place. 0 disables.
    Bytes ecn_threshold = 0;
    // PFC: per-ingress buffered-byte watermarks with hysteresis. Crossing
    // pause_threshold sends a pause frame back out of that ingress port's
    // egress link; draining to resume_threshold sends an explicit resume.
    // The pause also self-expires after pfc_pause_duration (the deadline is
    // the safety net if the resume frame is lost by a fault filter).
    bool pfc_enabled = false;
    Bytes pfc_pause_threshold = KiB(64);
    Bytes pfc_resume_threshold = KiB(32);
    Nanos pfc_pause_duration = Micros(10);
  };

  Switch(sim::Simulation& sim, Config config)
      : sim_(&sim), config_(config) {}
  Switch(const Switch&) = delete;
  Switch& operator=(const Switch&) = delete;

  // Creates the egress (switch→device) link for a new port.
  int AddPort(BitRate rate, Nanos propagation);
  Link& EgressLink(int port) { return *ports_[port]->link; }
  int PortCount() const { return static_cast<int>(ports_.size()); }

  void SetRoute(NodeId node, int port);
  // Default-route fallback for nodes with no explicit entry — a leaf
  // switch's trunk toward the core. -1 (the initial state) keeps unknown
  // destinations dropping.
  void SetDefaultRoute(int port);
  // Port a node is reachable through; the default route (-1 if unset) when
  // unknown.
  int RouteFor(NodeId node) const;

  // Entry point for device uplinks (wire this as the uplink's receiver).
  void OnIngress(int ingress_port, Packet packet);

  // Entry point for the switch's internal packet generator: the packet goes
  // through the same pipeline as an ingress packet would. `gen_port` is the
  // nominal ingress port the generator is bound to.
  void InjectGenerated(int gen_port, Packet packet);

  void SetProcessor(PacketProcessor* processor) { processor_ = processor; }

  // Places a processed packet on an egress queue (tail-drops when full).
  // The overload taking `ingress_port` attributes the buffered bytes to the
  // port the packet came in on, which is what PFC watermarks count;
  // processor-generated packets (P4 recycling, probes) use the two-argument
  // form and stay un-attributed (ingress -1, never paused against).
  void EnqueueEgress(int port, Packet packet) {
    EnqueueEgress(port, std::move(packet), -1);
  }
  void EnqueueEgress(int port, Packet packet, int ingress_port);

  sim::Simulation& simulation() { return *sim_; }

  std::uint64_t egress_drops(int port) const { return ports_[port]->drops; }
  Bytes egress_queued_bytes(int port) const {
    return ports_[port]->queued_bytes;
  }
  // Per-egress traffic counters — with one port per host these are the
  // per-server counters the elastic-pool telemetry surfaces (a rebalance
  // visibly shifts bytes from one server's port to another's).
  std::uint64_t port_tx_packets(int port) const {
    return ports_[port]->tx_packets;
  }
  std::uint64_t port_tx_bytes(int port) const {
    return ports_[port]->tx_bytes;
  }
  std::uint64_t forwarded() const { return forwarded_; }
  std::uint64_t ecn_marked() const { return ecn_marked_; }
  std::uint64_t pfc_pauses_sent() const { return pfc_pauses_sent_; }
  std::uint64_t pfc_resumes_sent() const { return pfc_resumes_sent_; }
  std::uint64_t total_drops() const {
    std::uint64_t total = 0;
    for (const auto& port : ports_) total += port->drops;
    return total;
  }

  // Queue-depth / mark-rate / pause counters as snapshot-time callback
  // gauges. The switch must outlive the registry or UnbindTelemetry first.
  void BindTelemetry(telemetry::MetricRegistry& registry,
                     const telemetry::Labels& labels);
  void UnbindTelemetry();

 private:
  struct Queued {
    Packet packet;
    int ingress = -1;  // attributed ingress port; -1 = generated
  };

  struct Port {
    std::unique_ptr<Link> link;
    std::array<FixedDeque<Queued>,
               static_cast<std::size_t>(Priority::kLevels)>
        queues;
    Bytes queued_bytes = 0;
    std::uint64_t drops = 0;
    std::uint64_t tx_packets = 0;  // packets sent out this egress
    Bytes tx_bytes = 0;
    // PFC state for this port acting as an *ingress*: bytes it currently
    // has buffered anywhere in the switch, and whether it is paused.
    Bytes ingress_buffered = 0;
    bool pause_asserted = false;
  };

  void RunPipeline(int ingress_port, Packet packet);
  void Drain(int port);
  void UpdatePfcOnEnqueue(int ingress_port);
  void UpdatePfcOnDequeue(int ingress_port);

  sim::Simulation* sim_;
  Config config_;
  std::vector<std::unique_ptr<Port>> ports_;
  std::vector<std::pair<NodeId, int>> routes_;
  PacketProcessor* processor_ = nullptr;  // null → L3 forwarding
  int default_route_ = -1;
  std::uint64_t forwarded_ = 0;
  std::uint64_t ecn_marked_ = 0;
  std::uint64_t pfc_pauses_sent_ = 0;
  std::uint64_t pfc_resumes_sent_ = 0;
  Bytes queue_high_water_ = 0;  // deepest any single egress queue has been
  telemetry::MetricRegistry* telemetry_registry_ = nullptr;
  telemetry::Labels telemetry_labels_;
  // Per-packet action scratch, reused across pipeline invocations (the
  // pipeline never reenters itself: it only runs from scheduled events).
  std::vector<ForwardAction> pipeline_scratch_;
};

// Switch-to-switch attachment: one port on each side, the egress links
// cross-wired into the peer's ingress — the full-duplex trunk a leaf (group
// ToR) hangs off the core with. Mirrors HostNic::ConnectTo, including the
// SetDestination calls that turn the trunk into a PDES domain cut when the
// two switches live in different domains.
struct TrunkPorts {
  int a_port = -1;  // port on `a` facing `b`
  int b_port = -1;  // port on `b` facing `a`
};
TrunkPorts ConnectTrunk(Switch& a, Switch& b, BitRate rate, Nanos propagation,
                        const std::string& a_name, const std::string& b_name);

// Star topology host endpoint: one full-duplex attachment to the switch,
// with per-UDP-port receiver demultiplexing (RoCE traffic and benchmark
// flows share a host in Fig 14).
class HostNic {
 public:
  HostNic(sim::Simulation& sim, NodeId id, BitRate rate, Nanos propagation)
      : sim_(&sim),
        id_(id),
        uplink_(std::make_unique<Link>(sim, rate, propagation)) {}

  NodeId id() const { return id_; }

  void ConnectTo(Switch& sw, const std::string& host_name = {},
                 const std::string& switch_name = "switch") {
    switch_port_ = sw.AddPort(uplink_->rate(), uplink_->propagation());
    sw.SetRoute(id_, switch_port_);
    uplink_->set_receiver([&sw, port = switch_port_](Packet p) {
      sw.OnIngress(port, std::move(p));
    });
    sw.EgressLink(switch_port_).set_receiver([this](Packet p) {
      Dispatch(std::move(p));
    });
    const std::string host =
        host_name.empty() ? "node" + std::to_string(id_) : host_name;
    uplink_->SetNames("uplink[" + host + "]", host, switch_name);
    sw.EgressLink(switch_port_)
        .SetNames("egress[" + host + "]", switch_name, host);
    // Deliveries run on the receiving endpoint's event loop; when the host
    // and the switch live in different DomainGroup domains these two calls
    // turn the attachment into the domain cut (no-ops otherwise).
    uplink_->SetDestination(sw.simulation());
    sw.EgressLink(switch_port_).SetDestination(*sim_);
  }

  void Send(Packet packet) { uplink_->Send(packet); }

  void SetPortReceiver(std::uint16_t udp_port,
                       std::function<void(Packet)> receiver) {
    port_receivers_.emplace_back(udp_port, std::move(receiver));
  }
  void SetDefaultReceiver(std::function<void(Packet)> receiver) {
    default_receiver_ = std::move(receiver);
  }

  Link& uplink() { return *uplink_; }
  int switch_port() const { return switch_port_; }
  sim::Simulation& simulation() { return *sim_; }

 private:
  void Dispatch(Packet packet) {
    // PFC frames terminate at the MAC: pause (or resume) the uplink's data
    // classes instead of reaching any UDP consumer.
    if (IsPfcFrame(packet)) {
      uplink_->PauseData(PfcPauseDuration(packet));
      return;
    }
    const auto udp = UdpHeader::Parse(
        std::span<const std::uint8_t>(packet.bytes)
            .subspan(kEthernetHeaderBytes + kIpv4HeaderBytes));
    for (auto& [port, receiver] : port_receivers_) {
      if (port == udp.dst_port) {
        receiver(std::move(packet));
        return;
      }
    }
    if (default_receiver_) default_receiver_(std::move(packet));
  }

  sim::Simulation* sim_;
  NodeId id_;
  std::unique_ptr<Link> uplink_;
  int switch_port_ = -1;
  std::vector<std::pair<std::uint16_t, std::function<void(Packet)>>>
      port_receivers_;
  std::function<void(Packet)> default_receiver_;
};

}  // namespace cowbird::net
