#include "net/topology.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/check.h"

namespace cowbird::net {

const char* TopoNodeKindName(TopoNodeKind kind) {
  switch (kind) {
    case TopoNodeKind::kComputeHost:
      return "compute";
    case TopoNodeKind::kMemoryServer:
      return "memory";
    case TopoNodeKind::kSpotHost:
      return "spot";
    case TopoNodeKind::kBystanderHost:
      return "bystander";
    case TopoNodeKind::kSwitch:
      return "switch";
  }
  return "?";
}

TopoNodeId Topology::AddNode(TopoNodeKind kind, std::string name,
                             NodeId address) {
  nodes_.push_back(Node{kind, std::move(name), address, -1});
  return static_cast<TopoNodeId>(nodes_.size() - 1);
}

int Topology::AddEdge(TopoNodeId a, TopoNodeId b, Nanos propagation,
                      std::string name) {
  COWBIRD_CHECK(a >= 0 && a < node_count());
  COWBIRD_CHECK(b >= 0 && b < node_count());
  COWBIRD_CHECK(a != b);
  if (name.empty()) {
    name = node(a).name + "<->" + node(b).name;
  }
  edges_.push_back(Edge{a, b, propagation, std::move(name)});
  return static_cast<int>(edges_.size() - 1);
}

void Topology::SetGroup(TopoNodeId node, int group) {
  nodes_[static_cast<std::size_t>(node)].group = group;
}

void Topology::GroupAll(int group) {
  for (Node& node : nodes_) node.group = group;
}

Partition PartitionTopology(const Topology& topo) {
  Partition partition;
  partition.domain_of_.assign(static_cast<std::size_t>(topo.node_count()), -1);

  // Domain ids by first appearance in node order. Ungrouped nodes (-1) are
  // singletons; equal non-negative tags fuse.
  std::vector<std::pair<int, int>> tag_to_domain;  // (group tag, domain)
  for (TopoNodeId n = 0; n < topo.node_count(); ++n) {
    const int tag = topo.node(n).group;
    int domain = -1;
    if (tag >= 0) {
      for (const auto& [known_tag, known_domain] : tag_to_domain) {
        if (known_tag == tag) {
          domain = known_domain;
          break;
        }
      }
    }
    if (domain < 0) {
      domain = partition.domain_count_++;
      if (tag >= 0) tag_to_domain.emplace_back(tag, domain);
    }
    partition.domain_of_[static_cast<std::size_t>(n)] = domain;
  }

  // Cut edges in edge order, a → b before b → a; the per-edge lookahead is
  // the edge's own propagation delay. Intra-domain edges place no bound on
  // the epoch horizon and are skipped entirely.
  for (int e = 0; e < topo.edge_count(); ++e) {
    const Topology::Edge& edge = topo.edge(e);
    const int da = partition.domain_of(edge.a);
    const int db = partition.domain_of(edge.b);
    if (da == db) continue;
    partition.cut_edges_.push_back(CutEdgeInfo{e, da, db, edge.propagation});
    partition.cut_edges_.push_back(CutEdgeInfo{e, db, da, edge.propagation});
    partition.lookahead_ = std::min(partition.lookahead_, edge.propagation);
    if (edge.propagation <= 0 && !partition.zero_lookahead_error_) {
      char buffer[512];
      std::snprintf(buffer, sizeof(buffer),
                    "zero-lookahead cut: edge '%s' between '%s' (domain %d) "
                    "and '%s' (domain %d) has propagation %lld ns; every cut "
                    "edge needs a positive propagation delay, or both "
                    "endpoints must share a partition group",
                    edge.name.c_str(), topo.node(edge.a).name.c_str(), da,
                    topo.node(edge.b).name.c_str(), db,
                    static_cast<long long>(edge.propagation));
      partition.zero_lookahead_error_ = buffer;
    }
  }
  return partition;
}

std::string Partition::Describe(const Topology& topo) const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "partition: %d domains, %zu cut edges\n",
                domain_count_, cut_edges_.size());
  out += line;
  for (TopoNodeId n = 0; n < topo.node_count(); ++n) {
    std::snprintf(line, sizeof(line), "  node %d '%s' (%s) -> domain %d\n", n,
                  topo.node(n).name.c_str(),
                  TopoNodeKindName(topo.node(n).kind), domain_of(n));
    out += line;
  }
  for (const CutEdgeInfo& cut : cut_edges_) {
    std::snprintf(line, sizeof(line),
                  "  cut '%s' domain %d -> %d, lookahead %lld ns\n",
                  topo.edge(cut.edge).name.c_str(), cut.src_domain,
                  cut.dst_domain, static_cast<long long>(cut.lookahead));
    out += line;
  }
  if (lookahead_ != sim::kNoEventTime) {
    std::snprintf(line, sizeof(line), "  epoch horizon: %lld ns\n",
                  static_cast<long long>(lookahead_));
    out += line;
  }
  return out;
}

FabricDomains::FabricDomains(sim::Simulation& root, const Partition& partition,
                             int workers)
    : root_(&root), partition_(&partition) {
  if (partition.domain_count() <= 1) return;
  group_ = std::make_unique<sim::DomainGroup>(workers);
  group_->AddDomain(root);
  owned_.reserve(static_cast<std::size_t>(partition.domain_count() - 1));
  for (int d = 1; d < partition.domain_count(); ++d) {
    owned_.push_back(std::make_unique<sim::Simulation>());
    group_->AddDomain(*owned_.back());
  }
}

void FabricDomains::Run() {
  if (group_) {
    group_->Run();
  } else {
    root_->Run();
  }
}

void FabricDomains::RunFor(Nanos duration) {
  if (group_) {
    group_->RunFor(duration);
  } else {
    root_->RunFor(duration);
  }
}

Nanos FabricDomains::Now() const {
  return group_ ? group_->Now() : root_->Now();
}

std::uint64_t FabricDomains::EventsProcessed() const {
  return group_ ? group_->EventsProcessed() : root_->EventsProcessed();
}

}  // namespace cowbird::net
