#include "net/topology.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/check.h"

namespace cowbird::net {

const char* TopoNodeKindName(TopoNodeKind kind) {
  switch (kind) {
    case TopoNodeKind::kComputeHost:
      return "compute";
    case TopoNodeKind::kMemoryServer:
      return "memory";
    case TopoNodeKind::kSpotHost:
      return "spot";
    case TopoNodeKind::kBystanderHost:
      return "bystander";
    case TopoNodeKind::kSwitch:
      return "switch";
  }
  return "?";
}

TopoNodeId Topology::AddNode(TopoNodeKind kind, std::string name,
                             NodeId address) {
  nodes_.push_back(Node{kind, std::move(name), address, -1});
  return static_cast<TopoNodeId>(nodes_.size() - 1);
}

int Topology::AddEdge(TopoNodeId a, TopoNodeId b, Nanos propagation,
                      std::string name) {
  COWBIRD_CHECK(a >= 0 && a < node_count());
  COWBIRD_CHECK(b >= 0 && b < node_count());
  COWBIRD_CHECK(a != b);
  if (name.empty()) {
    name = node(a).name + "<->" + node(b).name;
  }
  edges_.push_back(Edge{a, b, propagation, std::move(name)});
  return static_cast<int>(edges_.size() - 1);
}

void Topology::SetGroup(TopoNodeId node, int group) {
  nodes_[static_cast<std::size_t>(node)].group = group;
}

void Topology::GroupAll(int group) {
  for (Node& node : nodes_) node.group = group;
}

Partition PartitionTopology(const Topology& topo) {
  Partition partition;
  partition.domain_of_.assign(static_cast<std::size_t>(topo.node_count()), -1);

  // Domain ids by first appearance in node order. Ungrouped nodes (-1) are
  // singletons; equal non-negative tags fuse.
  std::vector<std::pair<int, int>> tag_to_domain;  // (group tag, domain)
  for (TopoNodeId n = 0; n < topo.node_count(); ++n) {
    const int tag = topo.node(n).group;
    int domain = -1;
    if (tag >= 0) {
      for (const auto& [known_tag, known_domain] : tag_to_domain) {
        if (known_tag == tag) {
          domain = known_domain;
          break;
        }
      }
    }
    if (domain < 0) {
      domain = partition.domain_count_++;
      if (tag >= 0) tag_to_domain.emplace_back(tag, domain);
    }
    partition.domain_of_[static_cast<std::size_t>(n)] = domain;
  }

  // Cut edges in edge order, a → b before b → a; the per-edge lookahead is
  // the edge's own propagation delay. Intra-domain edges place no bound on
  // the epoch horizon and are skipped entirely.
  for (int e = 0; e < topo.edge_count(); ++e) {
    const Topology::Edge& edge = topo.edge(e);
    const int da = partition.domain_of(edge.a);
    const int db = partition.domain_of(edge.b);
    if (da == db) continue;
    partition.cut_edges_.push_back(CutEdgeInfo{e, da, db, edge.propagation});
    partition.cut_edges_.push_back(CutEdgeInfo{e, db, da, edge.propagation});
    partition.lookahead_ = std::min(partition.lookahead_, edge.propagation);
    if (edge.propagation <= 0 && !partition.zero_lookahead_error_) {
      char buffer[512];
      std::snprintf(buffer, sizeof(buffer),
                    "zero-lookahead cut: edge '%s' between '%s' (domain %d) "
                    "and '%s' (domain %d) has propagation %lld ns; every cut "
                    "edge needs a positive propagation delay, or both "
                    "endpoints must share a partition group",
                    edge.name.c_str(), topo.node(edge.a).name.c_str(), da,
                    topo.node(edge.b).name.c_str(), db,
                    static_cast<long long>(edge.propagation));
      partition.zero_lookahead_error_ = buffer;
    }
  }
  return partition;
}

namespace {

// Union-find root with path halving. Deterministic: parents only ever move
// toward lower-indexed roots (Merge below keeps the smaller root).
int FindRoot(std::vector<int>& parent, int x) {
  while (parent[static_cast<std::size_t>(x)] != x) {
    parent[static_cast<std::size_t>(x)] =
        parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
    x = parent[static_cast<std::size_t>(x)];
  }
  return x;
}

}  // namespace

int PackDomains(Topology& topo, const std::vector<std::uint64_t>& rates,
                int budget) {
  const int n = topo.node_count();
  COWBIRD_CHECK(static_cast<int>(rates.size()) == n);
  if (budget <= 0 || budget >= n) {
    // Singleton fallback: the classic one-domain-per-node split.
    for (TopoNodeId node = 0; node < n; ++node) topo.SetGroup(node, node);
    return n;
  }

  std::vector<int> parent(static_cast<std::size_t>(n));
  std::vector<std::uint64_t> weight(rates);
  for (int i = 0; i < n; ++i) parent[static_cast<std::size_t>(i)] = i;
  int components = n;
  auto merge = [&](int ra, int rb) {
    // Smaller root index wins so group numbering follows node order.
    const int keep = std::min(ra, rb);
    const int gone = std::max(ra, rb);
    parent[static_cast<std::size_t>(gone)] = keep;
    weight[static_cast<std::size_t>(keep)] +=
        weight[static_cast<std::size_t>(gone)];
    --components;
  };

  std::uint64_t total = 0;
  std::uint64_t max_rate = 0;
  for (const std::uint64_t r : rates) {
    total += r;
    max_rate = std::max(max_rate, r);
  }
  // Balance cap: no packed domain should carry more than ~2x its fair share
  // of the event rate; a single node hotter than that is unsplittable and
  // sets the cap itself.
  const std::uint64_t cap = std::max(
      max_rate, (2 * total + static_cast<std::uint64_t>(budget) - 1) /
                    static_cast<std::uint64_t>(budget));

  // Phase 1 — heavy-edge contraction: fuse the chattiest attachments first,
  // so the cross-domain mailbox traffic left behind is the light edges.
  std::vector<int> edges(static_cast<std::size_t>(topo.edge_count()));
  for (int e = 0; e < topo.edge_count(); ++e) {
    edges[static_cast<std::size_t>(e)] = e;
  }
  auto edge_weight = [&](int e) {
    const Topology::Edge& edge = topo.edge(e);
    return rates[static_cast<std::size_t>(edge.a)] +
           rates[static_cast<std::size_t>(edge.b)];
  };
  std::sort(edges.begin(), edges.end(), [&](int lhs, int rhs) {
    const std::uint64_t wl = edge_weight(lhs);
    const std::uint64_t wr = edge_weight(rhs);
    if (wl != wr) return wl > wr;
    return lhs < rhs;
  });
  for (const int e : edges) {
    if (components <= budget) break;
    const int ra = FindRoot(parent, topo.edge(e).a);
    const int rb = FindRoot(parent, topo.edge(e).b);
    if (ra == rb) continue;
    if (weight[static_cast<std::size_t>(ra)] +
            weight[static_cast<std::size_t>(rb)] >
        cap) {
      continue;
    }
    merge(ra, rb);
  }

  // Phase 2 — remainder fold: adjacency and the cap both yield to the hard
  // budget; repeatedly fuse the two lightest components.
  while (components > budget) {
    int lightest = -1, second = -1;
    for (int i = 0; i < n; ++i) {
      if (FindRoot(parent, i) != i) continue;
      auto lighter = [&](int a, int b) {
        if (b < 0) return true;
        if (weight[static_cast<std::size_t>(a)] !=
            weight[static_cast<std::size_t>(b)]) {
          return weight[static_cast<std::size_t>(a)] <
                 weight[static_cast<std::size_t>(b)];
        }
        return a < b;  // roots are minimum node ids: the id tie-break
      };
      if (lighter(i, lightest)) {
        second = lightest;
        lightest = i;
      } else if (lighter(i, second)) {
        second = i;
      }
    }
    merge(lightest, second);
  }

  // Number groups by first appearance in node order (matching the domain
  // numbering PartitionTopology will derive).
  std::vector<int> group_of_root(static_cast<std::size_t>(n), -1);
  int groups = 0;
  for (TopoNodeId node = 0; node < n; ++node) {
    const int root = FindRoot(parent, node);
    int& g = group_of_root[static_cast<std::size_t>(root)];
    if (g < 0) g = groups++;
    topo.SetGroup(node, g);
  }
  COWBIRD_CHECK(groups == budget);
  return groups;
}

std::string Partition::Describe(const Topology& topo) const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "partition: %d domains, %zu cut edges\n",
                domain_count_, cut_edges_.size());
  out += line;
  for (TopoNodeId n = 0; n < topo.node_count(); ++n) {
    std::snprintf(line, sizeof(line), "  node %d '%s' (%s) -> domain %d\n", n,
                  topo.node(n).name.c_str(),
                  TopoNodeKindName(topo.node(n).kind), domain_of(n));
    out += line;
  }
  for (const CutEdgeInfo& cut : cut_edges_) {
    std::snprintf(line, sizeof(line),
                  "  cut '%s' domain %d -> %d, lookahead %lld ns\n",
                  topo.edge(cut.edge).name.c_str(), cut.src_domain,
                  cut.dst_domain, static_cast<long long>(cut.lookahead));
    out += line;
  }
  if (lookahead_ != sim::kNoEventTime) {
    std::snprintf(line, sizeof(line), "  epoch horizon: %lld ns\n",
                  static_cast<long long>(lookahead_));
    out += line;
  }
  return out;
}

FabricDomains::FabricDomains(sim::Simulation& root, const Partition& partition,
                             int workers)
    : root_(&root), partition_(&partition) {
  if (partition.domain_count() <= 1) return;
  group_ = std::make_unique<sim::DomainGroup>(workers);
  group_->AddDomain(root);
  owned_.reserve(static_cast<std::size_t>(partition.domain_count() - 1));
  for (int d = 1; d < partition.domain_count(); ++d) {
    owned_.push_back(std::make_unique<sim::Simulation>());
    group_->AddDomain(*owned_.back());
  }
}

void FabricDomains::Run() {
  if (group_) {
    group_->Run();
  } else {
    root_->Run();
  }
}

void FabricDomains::RunFor(Nanos duration) {
  if (group_) {
    group_->RunFor(duration);
  } else {
    root_->RunFor(duration);
  }
}

Nanos FabricDomains::Now() const {
  return group_ ? group_->Now() : root_->Now();
}

std::uint64_t FabricDomains::EventsProcessed() const {
  return group_ ? group_->EventsProcessed() : root_->EventsProcessed();
}

}  // namespace cowbird::net
