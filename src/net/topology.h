// The simulated fabric as an explicit graph, and the partitioner that turns
// it into PDES domains.
//
// A Topology is a declarative plan built before any Simulation object
// exists: nodes are the things that own an event loop (compute hosts,
// memory servers, spot hosts, switches), edges are the full-duplex
// net::Link attachments between them, each carrying its propagation delay.
// PartitionTopology() maps nodes to domains — one domain per partition
// group, nodes default to a group of their own — and derives, from the
// graph alone, everything the conservative engine needs: which edges are
// cut, the per-cut-edge lookahead (the edge's propagation delay), and the
// global epoch horizon (the minimum lookahead over cut edges only;
// intra-domain edges place no bound on the epoch).
//
// FabricDomains then materializes a partition against real Simulations:
// domain 0 aliases the caller's root event loop, the rest are owned, and a
// DomainGroup is created only when the partition actually splits — a
// single-domain partition leaves the serial path byte-identical.
//
// The PR 5 two-way testbed cut (compute node vs switch+everything) is the
// trivial case: put the compute host in one group and every other node in
// another.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/units.h"
#include "net/packet.h"
#include "sim/parallel.h"
#include "sim/simulation.h"

namespace cowbird::net {

enum class TopoNodeKind {
  kComputeHost,
  kMemoryServer,
  kSpotHost,
  kBystanderHost,
  kSwitch,
};

const char* TopoNodeKindName(TopoNodeKind kind);

using TopoNodeId = int;

class Topology {
 public:
  struct Node {
    TopoNodeKind kind = TopoNodeKind::kComputeHost;
    std::string name;
    NodeId address = 0;  // fabric address (switch routing); 0 for switches
    int group = -1;      // partition group; -1 → a group of its own
  };
  // Full-duplex attachment: a Link in each direction, both with the same
  // propagation delay (what every HostNic::ConnectTo builds today).
  struct Edge {
    TopoNodeId a = -1;
    TopoNodeId b = -1;
    Nanos propagation = 0;
    std::string name;
  };

  TopoNodeId AddNode(TopoNodeKind kind, std::string name, NodeId address = 0);
  int AddEdge(TopoNodeId a, TopoNodeId b, Nanos propagation,
              std::string name = {});

  // Partition grouping. Ungrouped nodes partition alone; SetGroup with the
  // same tag fuses nodes into one domain. GroupAll collapses the whole
  // topology into a single domain (the serial plan).
  void SetGroup(TopoNodeId node, int group);
  void GroupAll(int group);

  int node_count() const { return static_cast<int>(nodes_.size()); }
  int edge_count() const { return static_cast<int>(edges_.size()); }
  const Node& node(TopoNodeId id) const {
    return nodes_[static_cast<std::size_t>(id)];
  }
  const Edge& edge(int id) const {
    return edges_[static_cast<std::size_t>(id)];
  }

 private:
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
};

// One cut edge of a partition, in the (src domain → dst domain) direction.
// A full-duplex topology edge whose endpoints land in different domains
// yields two of these, one per direction.
struct CutEdgeInfo {
  int edge = -1;  // Topology edge id
  int src_domain = -1;
  int dst_domain = -1;
  Nanos lookahead = 0;  // the edge's propagation delay
};

class Partition {
 public:
  int domain_count() const { return domain_count_; }
  int domain_of(TopoNodeId node) const {
    return domain_of_[static_cast<std::size_t>(node)];
  }
  const std::vector<CutEdgeInfo>& cut_edges() const { return cut_edges_; }
  // Minimum lookahead over cut edges — the epoch horizon. kNoEventTime when
  // nothing is cut (single domain, or no cross-domain edges).
  Nanos lookahead() const { return lookahead_; }

  // Set when some cut edge has propagation <= 0: the message names the edge
  // and both endpoints. Builders check this before wiring so a misconfigured
  // topology fails while the graph is still in hand (the DomainGroup repeats
  // the refusal at Run time as a backstop).
  const std::optional<std::string>& zero_lookahead_error() const {
    return zero_lookahead_error_;
  }

  // Human-readable summary: domain count, node → domain map, cut edges with
  // lookahead.
  std::string Describe(const Topology& topo) const;

 private:
  friend Partition PartitionTopology(const Topology& topo);

  int domain_count_ = 0;
  std::vector<int> domain_of_;
  std::vector<CutEdgeInfo> cut_edges_;
  Nanos lookahead_ = sim::kNoEventTime;
  std::optional<std::string> zero_lookahead_error_;
};

// Assigns one domain per distinct partition group (ungrouped nodes count as
// singleton groups). Domain ids follow first appearance in node order, so
// node 0 always lands in domain 0 and a fully-grouped topology is domain 0
// alone. Cut edges are emitted in edge order, a → b direction first.
Partition PartitionTopology(const Topology& topo);

// Event-rate-driven domain packing: rewrites the topology's partition groups
// so that at most `budget` domains cover all nodes, balancing the measured
// per-node event rates instead of the blind one-domain-per-node split.
//
// The pass is deterministic — a pure function of (graph, rates, budget),
// with every tie broken by id order — so a packed run stays bit-identical
// for any worker count:
//   1. Heavy-edge contraction: edges in descending endpoint-rate order
//      (ties: lower edge id first) merge their endpoint components while the
//      merged rate stays within the balance cap
//      max(max_rate, ceil(2 * total_rate / budget)).
//   2. Remainder fold: while more than `budget` components remain, the two
//      lightest components merge (ties: lower minimum node id first).
//      Domains need not be connected — a cross-domain hop costs one cut
//      edge either way.
//
// `rates` is indexed by TopoNodeId (one entry per node; a profiling pre-run
// or telemetry counter feed). A budget <= 0 or >= node_count falls back to
// the singleton split (every node its own group). Returns the resulting
// group count; groups are numbered by first appearance in node order, so
// node 0's group is always 0 and PartitionTopology reproduces the packing
// as domain ids verbatim.
int PackDomains(Topology& topo, const std::vector<std::uint64_t>& rates,
                int budget);

// A partition made real: domain 0 aliases `root` (the caller's event loop
// and thread), domains 1..n-1 are owned Simulations, all registered — in
// domain order — in an owned DomainGroup. A single-domain partition creates
// no group and maps every node to `root`, leaving serial wiring and
// scheduling byte-identical to a plain Simulation run.
class FabricDomains {
 public:
  FabricDomains(sim::Simulation& root, const Partition& partition,
                int workers = 0);
  FabricDomains(const FabricDomains&) = delete;
  FabricDomains& operator=(const FabricDomains&) = delete;

  sim::Simulation& sim_for(TopoNodeId node) {
    return domain_sim(partition_->domain_of(node));
  }
  sim::Simulation& domain_sim(int domain) {
    return domain == 0 ? *root_ : *owned_[static_cast<std::size_t>(domain - 1)];
  }
  int domain_count() const { return partition_->domain_count(); }
  // Null when the partition is a single domain (serial).
  sim::DomainGroup* group() const { return group_.get(); }
  const Partition& partition() const { return *partition_; }

  // Run the whole fabric: the group when split, the root loop otherwise.
  void Run();
  void RunFor(Nanos duration);
  Nanos Now() const;
  std::uint64_t EventsProcessed() const;

 private:
  sim::Simulation* root_;
  const Partition* partition_;
  std::vector<std::unique_ptr<sim::Simulation>> owned_;
  std::unique_ptr<sim::DomainGroup> group_;
};

}  // namespace cowbird::net
