#include "offload/hazard_tracker.h"

namespace cowbird::offload {

namespace {

// Overlap of two non-wrapping half-open ranges.
bool FlatOverlap(std::uint64_t a_lo, std::uint64_t a_hi, std::uint64_t b_lo,
                 std::uint64_t b_hi) {
  return a_lo < b_hi && b_lo < a_hi;
}

}  // namespace

bool RangesOverlap(const HazardRange& a, const HazardRange& b) {
  if (a.region_id != b.region_id) return false;
  if (a.len == 0 || b.len == 0) return false;
  // Split each range at the 2^64 wrap point, then test the flat pieces.
  const std::uint64_t a_end = a.addr + a.len;  // may wrap
  const std::uint64_t b_end = b.addr + b.len;
  const bool a_wraps = a_end <= a.addr && a.len != 0;
  const bool b_wraps = b_end <= b.addr && b.len != 0;
  struct Piece {
    std::uint64_t lo, hi;
  };
  Piece ap[2];
  Piece bp[2];
  int an = 0, bn = 0;
  if (a_wraps) {
    ap[an++] = {a.addr, ~0ull};
    ap[an++] = {0, a_end};  // a_end == 0 gives an empty piece
  } else {
    ap[an++] = {a.addr, a_end};
  }
  if (b_wraps) {
    bp[bn++] = {b.addr, ~0ull};
    bp[bn++] = {0, b_end};
  } else {
    bp[bn++] = {b.addr, b_end};
  }
  for (int i = 0; i < an; ++i) {
    for (int j = 0; j < bn; ++j) {
      if (FlatOverlap(ap[i].lo, ap[i].hi, bp[j].lo, bp[j].hi)) return true;
    }
  }
  // The [addr, ~0ull) upper piece drops the single byte at 2^64-1; test it
  // explicitly so a range ending exactly at the top still overlaps there.
  auto covers_top = [](const HazardRange& r) {
    return r.len != 0 && r.addr + r.len - 1 == ~0ull;
  };
  auto covers = [](const HazardRange& r, std::uint64_t x) {
    const std::uint64_t off = x - r.addr;  // modular arithmetic
    return r.len != 0 && off < r.len;
  };
  if (covers_top(a) && covers(b, ~0ull)) return true;
  if (covers_top(b) && covers(a, ~0ull)) return true;
  return false;
}

}  // namespace cowbird::offload
