// Read-after-write hazard policy shared by the offload engines (Section
// 5.3 / Section 6).
//
// Within one request type the engines preserve metadata order, so the only
// cross-type hazard is a read probed after a write to an overlapping pool
// range. The two engines resolve it differently, and both policies now live
// behind one interface:
//
//   * kFenceAllReads — Cowbird-P4: RMT pipelines cannot range-compare a read
//     against the in-flight write set, so *every* newly probed read is
//     paused while any write of that thread is in flight (Section 5.3).
//   * kExactRange   — Cowbird-Spot: a host agent can afford the exact
//     overlapping-range check, so only reads that truly overlap an earlier
//     in-flight write stall (Section 6).
//
// By construction the fence policy stalls a superset of what the exact
// policy stalls (tests/offload_test.cc asserts this for the edge cases).
//
// Ordering matters for exactness: a read conflicts only with writes probed
// *before* it. Writes receive a monotonically increasing ticket when
// admitted; a read captures the ticket frontier when it is probed and later
// checks only writes with a smaller ticket. One tracker per application
// thread (hazards are per-thread by Table 3's per-thread rings).
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "telemetry/metrics.h"

namespace cowbird::offload {

// Half-open byte range [addr, addr+len) inside one memory-pool region.
// len == 0 denotes an empty range: it overlaps nothing and blocks nothing.
// addr + len may wrap past 2^64 (a ring-wrap range); overlap handles that
// by splitting at the wrap point.
struct HazardRange {
  std::uint16_t region_id = 0;
  std::uint64_t addr = 0;
  std::uint64_t len = 0;
};

bool RangesOverlap(const HazardRange& a, const HazardRange& b);

class HazardTracker {
 public:
  enum class Policy : std::uint8_t { kFenceAllReads, kExactRange };
  using Ticket = std::uint64_t;

  HazardTracker() = default;
  explicit HazardTracker(Policy policy) : policy_(policy) {}

  Policy policy() const { return policy_; }

  // Surfaces hazard decisions as counters (blocked vs clear read checks).
  void BindTelemetry(telemetry::MetricRegistry& registry,
                     const telemetry::Labels& labels) {
    reads_blocked_ = registry.GetCounter("hazard_reads_blocked", labels);
    reads_clear_ = registry.GetCounter("hazard_reads_clear", labels);
  }

  // A write enters the hazard window when it is parsed out of the metadata
  // ring, and leaves it when the pool write is known durable.
  Ticket AdmitWrite(const HazardRange& range) {
    const Ticket ticket = next_ticket_++;
    writes_.push_back(ActiveWrite{ticket, range});
    return ticket;
  }

  void RetireWrite(Ticket ticket) {
    for (auto it = writes_.begin(); it != writes_.end(); ++it) {
      if (it->ticket == ticket) {
        writes_.erase(it);
        return;
      }
    }
    COWBIRD_CHECK(false);  // retired a write that was never admitted
  }

  // Ticket frontier a read captures at probe time: it is ordered after
  // every write admitted so far and before any admitted later.
  Ticket ReadFrontier() const { return next_ticket_; }

  // Would a read over `range`, probed at `frontier`, have to stall now?
  bool ReadBlocked(const HazardRange& range, Ticket frontier) const {
    const bool blocked = ReadBlockedImpl(range, frontier);
    (blocked ? reads_blocked_ : reads_clear_).Add();
    return blocked;
  }

  // Convenience for callers that check at admission time (the P4 engine
  // rejects reads while parsing metadata, so every active write is earlier).
  bool ReadBlocked(const HazardRange& range) const {
    return ReadBlocked(range, ReadFrontier());
  }

  std::size_t active_writes() const { return writes_.size(); }

 private:
  struct ActiveWrite {
    Ticket ticket;
    HazardRange range;
  };

  bool ReadBlockedImpl(const HazardRange& range, Ticket frontier) const {
    switch (policy_) {
      case Policy::kFenceAllReads:
        // The fence ignores the range: any in-flight earlier write pauses
        // all newly probed reads.
        for (const ActiveWrite& w : writes_) {
          if (w.ticket < frontier) return true;
        }
        return false;
      case Policy::kExactRange:
        for (const ActiveWrite& w : writes_) {
          if (w.ticket < frontier && RangesOverlap(w.range, range)) {
            return true;
          }
        }
        return false;
    }
    COWBIRD_CHECK(false);
  }

  Policy policy_ = Policy::kExactRange;
  Ticket next_ticket_ = 1;
  std::vector<ActiveWrite> writes_;  // small: bounded by max in-flight ops
  telemetry::Counter reads_blocked_;
  telemetry::Counter reads_clear_;
};

}  // namespace cowbird::offload
