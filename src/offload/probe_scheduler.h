// Probe scheduling shared by every offload engine (Phase II).
//
// Two orthogonal concerns live here, both previously duplicated in
// CowbirdP4Engine and SpotAgent:
//
//   * the Section 5.2 adaptive ramp-up ("start at a low baseline rate and
//     ramp up only when activity is detected"): the probe interval doubles
//     after an idle probe, up to interval_max, and snaps back to the
//     baseline as soon as a probe finds work;
//   * the Section 5.4 instance TDM: which instance the next probe targets.
//     Plain round-robin is the paper's prototype; activity-weighted is the
//     "more complex policies" future-work variant (prefer the instance with
//     the most recent tail movement, with a round-robin pass every 4th tick
//     so idle instances are never starved of discovery).
//
// The scheduler is pure bookkeeping — it owns no timers and issues no I/O,
// so it is backend-agnostic: the P4 engine drives it from the switch packet
// generator, the spot agent from its coroutine probe loop.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>

#include "common/units.h"
#include "telemetry/metrics.h"

namespace cowbird::offload {

enum class ProbeSelection : std::uint8_t {
  kRoundRobin,        // plain TDM (the paper's prototype, Section 5.4)
  kActivityWeighted,  // prefer instances with recent activity
};

class ProbeScheduler {
 public:
  struct Config {
    Nanos interval = Micros(2);  // 1 probe / 2 us (Section 5.2)
    bool adaptive = false;
    Nanos interval_max = Micros(64);
    ProbeSelection selection = ProbeSelection::kRoundRobin;
  };

  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  ProbeScheduler() : ProbeScheduler(Config{}) {}
  explicit ProbeScheduler(Config config)
      : config_(config), current_(config.interval) {}

  Nanos current_interval() const { return current_; }
  ProbeSelection selection() const { return config_.selection; }

  // Surfaces ramp/TDM decisions as counters. Unbound handles are no-ops,
  // so an unbound scheduler pays one predicted branch per event.
  void BindTelemetry(telemetry::MetricRegistry& registry,
                     const telemetry::Labels& labels) {
    probes_with_work_ = registry.GetCounter("probe_found_work", labels);
    probes_idle_ = registry.GetCounter("probe_idle", labels);
    ramp_backoffs_ = registry.GetCounter("probe_ramp_backoffs", labels);
    ramp_snapbacks_ = registry.GetCounter("probe_ramp_snapbacks", labels);
    tdm_ticks_ = registry.GetCounter("probe_tdm_ticks", labels);
  }

  // Section 5.2 ramp-up. Called once per completed probe.
  void OnProbeOutcome(bool found_work) {
    (found_work ? probes_with_work_ : probes_idle_).Add();
    if (!config_.adaptive) return;
    if (found_work) {
      if (current_ != config_.interval) ramp_snapbacks_.Add();
      current_ = config_.interval;
    } else {
      if (current_ < config_.interval_max) ramp_backoffs_.Add();
      current_ = std::min(current_ * 2, config_.interval_max);
    }
  }

  // One TDM candidate per registered instance, in registry order.
  struct Candidate {
    bool eligible = true;  // e.g. no probe already in flight
    std::uint64_t activity_credit = 0;
  };

  // Picks the instance the next probe targets and advances the TDM cursor.
  // Under kActivityWeighted, three of every four ticks go to the busiest
  // eligible instance; the fourth (and any tick with no eligible candidate)
  // falls back to the round-robin slot — which may be ineligible, in which
  // case the caller skips this tick (the cursor has still advanced, exactly
  // like a TDM slot wasted on an instance whose probe is in flight).
  std::size_t PickNext(std::span<const Candidate> candidates) {
    if (candidates.empty()) return kNone;
    std::size_t pick = kNone;
    if (config_.selection == ProbeSelection::kActivityWeighted &&
        (tick_ % 4) != 0) {
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (!candidates[i].eligible) continue;
        if (pick == kNone ||
            candidates[i].activity_credit > candidates[pick].activity_credit) {
          pick = i;
        }
      }
    }
    if (pick == kNone) pick = tick_ % candidates.size();
    ++tick_;
    tdm_ticks_.Add();
    return pick;
  }

  // Activity-credit decay: stale tail movement must not dominate the TDM
  // pick forever. Shared so both engines age credits identically.
  static std::uint64_t DecayCredit(std::uint64_t credit) {
    return credit - credit / 4;
  }

 private:
  Config config_;
  Nanos current_;
  std::size_t tick_ = 0;  // TDM cursor (Section 5.4)
  telemetry::Counter probes_with_work_;
  telemetry::Counter probes_idle_;
  telemetry::Counter ramp_backoffs_;
  telemetry::Counter ramp_snapbacks_;
  telemetry::Counter tdm_ticks_;
};

}  // namespace cowbird::offload
