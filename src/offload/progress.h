// Red-block progress publication shared by both Phase IV paths.
//
// Both engines finish an operation by writing the compute node's "red"
// bookkeeping block: five little-endian u64 counters, packed so one RDMA
// write updates all of them (core::RedBlock, Table 3 / Figure 4). The
// packing used to be hand-rolled twice — a put64 loop in the P4 engine's
// packet builder and WriteValue calls in the spot agent's staging composer.
// It lives here now, together with the counter struct itself, which doubles
// as the progress snapshot an InstanceRegistry migration hands from a
// stopping engine to the survivor: the red block is by construction exactly
// the state a fresh engine needs to resume an instance.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"
#include "core/layout.h"

namespace cowbird::offload {

// Engine-side view of one thread's red block. Field order matches the wire
// layout (core::RedBlock).
struct ThreadProgress {
  std::uint64_t meta_head = 0;       // metadata entries consumed by engine
  std::uint64_t data_head = 0;       // request-data bytes consumed
  std::uint64_t resp_tail = 0;       // response bytes delivered
  std::uint64_t write_progress = 0;  // seq of last completed write
  std::uint64_t read_progress = 0;   // seq of last completed read
};

class ProgressPublisher {
 public:
  static constexpr std::size_t kBlockBytes = core::kRedBlockBytes;

  // Packs the counters into red-block wire format (little-endian u64s).
  static void Pack(const ThreadProgress& p, std::span<std::uint8_t> out) {
    COWBIRD_CHECK(out.size() >= kBlockBytes);
    PutU64(out, 0, p.meta_head);
    PutU64(out, 8, p.data_head);
    PutU64(out, 16, p.resp_tail);
    PutU64(out, 24, p.write_progress);
    PutU64(out, 32, p.read_progress);
  }

  static ThreadProgress Unpack(std::span<const std::uint8_t> in) {
    COWBIRD_CHECK(in.size() >= kBlockBytes);
    ThreadProgress p;
    p.meta_head = GetU64(in, 0);
    p.data_head = GetU64(in, 8);
    p.resp_tail = GetU64(in, 16);
    p.write_progress = GetU64(in, 24);
    p.read_progress = GetU64(in, 32);
    return p;
  }

 private:
  static void PutU64(std::span<std::uint8_t> out, std::size_t at,
                     std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      out[at + b] = static_cast<std::uint8_t>(v >> (8 * b));
    }
  }
  static std::uint64_t GetU64(std::span<const std::uint8_t> in,
                              std::size_t at) {
    std::uint64_t v = 0;
    for (int b = 0; b < 8; ++b) {
      v |= static_cast<std::uint64_t>(in[at + b]) << (8 * b);
    }
    return v;
  }
};

// Progress snapshot of a whole instance (one entry per application thread).
// Exported by an engine on detach, consumed by the next engine on attach.
struct InstanceProgress {
  std::vector<ThreadProgress> threads;
};

}  // namespace cowbird::offload
