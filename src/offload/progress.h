// Red-block progress publication shared by both Phase IV paths.
//
// Both engines finish an operation by writing the compute node's "red"
// bookkeeping block: five little-endian u64 counters, packed so one RDMA
// write updates all of them (core::RedBlock, Table 3 / Figure 4). The
// packing used to be hand-rolled twice — a put64 loop in the P4 engine's
// packet builder and WriteValue calls in the spot agent's staging composer.
// It lives here now, together with the counter struct itself, which doubles
// as the progress snapshot an InstanceRegistry migration hands from a
// stopping engine to the survivor: the red block is by construction exactly
// the state a fresh engine needs to resume an instance.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"
#include "core/layout.h"
#include "core/request.h"

namespace cowbird::offload {

// Engine-side view of one thread's red block. Field order matches the wire
// layout (core::RedBlock).
struct ThreadProgress {
  std::uint64_t meta_head = 0;       // metadata entries consumed by engine
  std::uint64_t data_head = 0;       // request-data bytes consumed
  std::uint64_t resp_tail = 0;       // response bytes delivered
  std::uint64_t write_progress = 0;  // seq of last completed write
  std::uint64_t read_progress = 0;   // seq of last completed read
};

class ProgressPublisher {
 public:
  static constexpr std::size_t kBlockBytes = core::kRedBlockBytes;

  // Packs the counters into red-block wire format (little-endian u64s).
  static void Pack(const ThreadProgress& p, std::span<std::uint8_t> out) {
    COWBIRD_CHECK(out.size() >= kBlockBytes);
    PutU64(out, 0, p.meta_head);
    PutU64(out, 8, p.data_head);
    PutU64(out, 16, p.resp_tail);
    PutU64(out, 24, p.write_progress);
    PutU64(out, 32, p.read_progress);
  }

  static ThreadProgress Unpack(std::span<const std::uint8_t> in) {
    COWBIRD_CHECK(in.size() >= kBlockBytes);
    ThreadProgress p;
    p.meta_head = GetU64(in, 0);
    p.data_head = GetU64(in, 8);
    p.resp_tail = GetU64(in, 16);
    p.write_progress = GetU64(in, 24);
    p.read_progress = GetU64(in, 32);
    return p;
  }

 private:
  static void PutU64(std::span<std::uint8_t> out, std::size_t at,
                     std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      out[at + b] = static_cast<std::uint8_t>(v >> (8 * b));
    }
  }
  static std::uint64_t GetU64(std::span<const std::uint8_t> in,
                              std::size_t at) {
    std::uint64_t v = 0;
    for (int b = 0; b < 8; ++b) {
      v |= static_cast<std::uint64_t>(in[at + b]) << (8 * b);
    }
    return v;
  }
};

// A parsed-but-not-yet-completed operation carried in a crash snapshot.
//
// The red-block counters alone are not enough to resume after a *crash*
// (as opposed to a drained handoff): the spot agent advances meta_head at
// parse time, after which the client frees the metadata slots — parsed ops
// that have not completed exist nowhere but in the engine. A snapshot
// therefore carries them explicitly, in probe order:
//   - completed=true: the transfer is ACKed-durable; the survivor only
//     advances progress counters over it (never re-executes).
//   - writes whose payload fetch had consumed the client data ring carry
//     the payload bytes; everything else is replayed through the normal
//     ring-addressed path (client-side reservations are still intact for
//     any op the published counters do not cover).
struct PendingOp {
  core::RequestMetadata meta;
  std::uint64_t seq = 0;   // per-thread per-type sequence (1-based)
  bool completed = false;
  std::vector<std::uint8_t> payload;  // writes only; may be empty
};

// Progress snapshot of a whole instance (one entry per application thread).
// Exported by an engine on detach, consumed by the next engine on attach.
// `pending` is either empty (drained handoff, or an engine like Cowbird-P4
// whose counters only ever cover completed work) or has one list per thread.
struct InstanceProgress {
  std::vector<ThreadProgress> threads;
  std::vector<std::vector<PendingOp>> pending;
};

// Crash-export reconciliation (the control plane's half of a migration).
//
// A crash-exported snapshot is conservative: it only counts work whose ACK
// the dead engine saw. The client's red block may hold *newer* counters —
// an optimistic publication whose payload provably landed (the red write is
// chained behind the payload on the same RC QP, so counters are never
// visible before data). Resuming from the conservative side would re-deliver
// reads the client already retired, clobbering reused response-ring bytes.
// The registry glue therefore reads each thread's published red block and
// merges: every counter is monotone, so element-wise max is exact, and
// pending ops the merged counters cover are dropped.
inline void ReconcileWithPublished(
    InstanceProgress& snapshot, const std::vector<ThreadProgress>& published) {
  COWBIRD_CHECK(snapshot.threads.size() == published.size());
  for (std::size_t t = 0; t < snapshot.threads.size(); ++t) {
    ThreadProgress& s = snapshot.threads[t];
    const ThreadProgress& p = published[t];
    s.meta_head = std::max(s.meta_head, p.meta_head);
    s.data_head = std::max(s.data_head, p.data_head);
    s.resp_tail = std::max(s.resp_tail, p.resp_tail);
    s.write_progress = std::max(s.write_progress, p.write_progress);
    s.read_progress = std::max(s.read_progress, p.read_progress);
    if (t < snapshot.pending.size()) {
      auto& ops = snapshot.pending[t];
      std::erase_if(ops, [&s](const PendingOp& op) {
        const bool is_write = op.meta.rw_type == core::RwType::kWrite;
        const std::uint64_t covered =
            is_write ? s.write_progress : s.read_progress;
        return op.seq <= covered;
      });
    }
  }
}

}  // namespace cowbird::offload
