#include "offload/registry.h"

#include <limits>

#include "common/check.h"

namespace cowbird::offload {

EngineId InstanceRegistry::AddEngine(EngineBinding binding) {
  COWBIRD_CHECK(binding.attach && binding.detach);
  const EngineId id = next_id_++;
  engines_.emplace(id, Engine{std::move(binding), /*live=*/true});
  return id;
}

EngineId InstanceRegistry::LeastLoadedLiveEngine(EngineId exclude) const {
  EngineId best = kNoEngine;
  std::size_t best_load = std::numeric_limits<std::size_t>::max();
  for (const auto& [id, engine] : engines_) {
    if (!engine.live || id == exclude) continue;
    std::size_t load = 0;
    for (const auto& [inst, assigned] : assignment_) {
      (void)inst;
      load += assigned == id;
    }
    if (load < best_load) {  // ties go to the lowest engine id
      best = id;
      best_load = load;
    }
  }
  return best;
}

EngineId InstanceRegistry::AddInstance(std::uint32_t instance_id,
                                       EngineId preferred) {
  COWBIRD_CHECK(assignment_.find(instance_id) == assignment_.end());
  EngineId target = preferred != kNoEngine ? preferred
                                           : LeastLoadedLiveEngine();
  if (target == kNoEngine) return kNoEngine;
  auto it = engines_.find(target);
  if (it == engines_.end() || !it->second.live) return kNoEngine;
  if (!it->second.binding.attach(instance_id, nullptr)) return kNoEngine;
  assignment_[instance_id] = target;
  return target;
}

bool InstanceRegistry::Reassign(std::uint32_t instance_id, EngineId to) {
  auto assigned = assignment_.find(instance_id);
  if (assigned == assignment_.end()) return false;
  auto dest = engines_.find(to);
  if (dest == engines_.end() || !dest->second.live) return false;
  if (assigned->second == to) return true;

  std::optional<InstanceProgress> snapshot;
  if (assigned->second != kNoEngine) {
    auto& from = engines_.at(assigned->second);
    snapshot = from.binding.detach(instance_id);
    assigned->second = kNoEngine;
  }
  const InstanceProgress* resume = snapshot ? &*snapshot : nullptr;
  if (!dest->second.binding.attach(instance_id, resume)) return false;
  assigned->second = to;
  return true;
}

std::vector<std::uint32_t> InstanceRegistry::StopEngine(EngineId id) {
  std::vector<std::uint32_t> migrated;
  auto it = engines_.find(id);
  if (it == engines_.end() || !it->second.live) return migrated;

  const std::vector<std::uint32_t> orphans = InstancesOn(id);
  // Detach everything from the stopping engine first, then mark it dead so
  // placement only considers survivors.
  std::vector<std::optional<InstanceProgress>> snapshots;
  snapshots.reserve(orphans.size());
  for (std::uint32_t inst : orphans) {
    snapshots.push_back(it->second.binding.detach(inst));
    assignment_[inst] = kNoEngine;
  }
  it->second.live = false;

  for (std::size_t i = 0; i < orphans.size(); ++i) {
    const EngineId target = LeastLoadedLiveEngine();
    if (target == kNoEngine) break;  // no survivors: remain unassigned
    const InstanceProgress* resume =
        snapshots[i] ? &*snapshots[i] : nullptr;
    if (engines_.at(target).binding.attach(orphans[i], resume)) {
      assignment_[orphans[i]] = target;
      migrated.push_back(orphans[i]);
    }
  }
  return migrated;
}

bool InstanceRegistry::BeginHandoff(std::uint32_t instance_id) {
  auto assigned = assignment_.find(instance_id);
  if (assigned == assignment_.end() || assigned->second == kNoEngine) {
    return false;
  }
  if (held_.find(instance_id) != held_.end()) return false;
  auto& from = engines_.at(assigned->second);
  held_[instance_id] = from.binding.detach(instance_id);
  assigned->second = kNoEngine;
  return true;
}

EngineId InstanceRegistry::CompleteHandoff(std::uint32_t instance_id,
                                           EngineId to) {
  auto parked = held_.find(instance_id);
  if (parked == held_.end()) return kNoEngine;
  const EngineId target = to != kNoEngine ? to : LeastLoadedLiveEngine();
  if (target == kNoEngine) return kNoEngine;
  auto it = engines_.find(target);
  if (it == engines_.end() || !it->second.live) return kNoEngine;
  const InstanceProgress* resume =
      parked->second ? &*parked->second : nullptr;
  if (!it->second.binding.attach(instance_id, resume)) return kNoEngine;
  assignment_[instance_id] = target;
  held_.erase(parked);
  return target;
}

bool InstanceRegistry::HandoffInProgress(std::uint32_t instance_id) const {
  return held_.find(instance_id) != held_.end();
}

EngineId InstanceRegistry::EngineOf(std::uint32_t instance_id) const {
  auto it = assignment_.find(instance_id);
  return it == assignment_.end() ? kNoEngine : it->second;
}

std::vector<std::uint32_t> InstanceRegistry::InstancesOn(EngineId id) const {
  std::vector<std::uint32_t> out;
  for (const auto& [inst, assigned] : assignment_) {
    if (assigned == id) out.push_back(inst);
  }
  return out;
}

std::size_t InstanceRegistry::live_engines() const {
  std::size_t n = 0;
  for (const auto& [id, engine] : engines_) {
    (void)id;
    n += engine.live;
  }
  return n;
}

const std::string* InstanceRegistry::EngineName(EngineId id) const {
  auto it = engines_.find(id);
  return it == engines_.end() ? nullptr : &it->second.binding.name;
}

}  // namespace cowbird::offload
