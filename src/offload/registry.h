// Instance → engine assignment for a multi-engine Cowbird deployment.
//
// The two offload engines are now thin backends over the shared core, which
// makes it possible to run *several* of them concurrently — a fleet of spot
// agents, a P4 switch plus spot overflow, etc. — and spread one
// deployment's instances across them. The registry owns that mapping:
//
//   * engines register a backend-agnostic EngineBinding (attach/detach
//     callables that hide the engine-specific connection plumbing: QPs for
//     a spot agent, HostEndpoints for the switch);
//   * instances are placed on the least-loaded live engine (or an explicit
//     preferred engine);
//   * stopping an engine migrates every instance it serves to the
//     survivors: the stopping engine's detach exports the instance's
//     red-block progress snapshot, and the surviving engine's attach
//     resumes probing from exactly that point. In-flight operations past
//     the snapshot are re-probed by the new engine — the same idempotent
//     re-execution argument the Go-Back-N fault-tolerance path relies on
//     (Section 5.3), applied at engine granularity.
//
// The registry does not talk to the network itself; it sequences the
// callbacks. This mirrors the paper's Phase I control plane, where
// instance↔engine wiring is a control-plane concern, not a data-plane one.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "offload/progress.h"

namespace cowbird::offload {

using EngineId = std::uint32_t;
inline constexpr EngineId kNoEngine = 0;

// Backend hooks. `attach` wires an instance into the engine, resuming from
// `resume` when non-null (nullptr = fresh instance). `detach` tears the
// instance down and returns the progress snapshot to resume from; an engine
// that cannot export progress (or no longer knows the instance) returns
// nullopt and the instance is re-attached fresh.
struct EngineBinding {
  std::string name;
  std::function<bool(std::uint32_t instance_id, const InstanceProgress* resume)>
      attach;
  std::function<std::optional<InstanceProgress>(std::uint32_t instance_id)>
      detach;
};

class InstanceRegistry {
 public:
  EngineId AddEngine(EngineBinding binding);

  // Registers an instance and attaches it to `preferred`, or to the
  // least-loaded live engine when kNoEngine. Returns the engine chosen, or
  // kNoEngine if no live engine exists or attach failed.
  EngineId AddInstance(std::uint32_t instance_id,
                       EngineId preferred = kNoEngine);

  // Moves one instance: detach from its current engine (exporting
  // progress), attach to `to` with the snapshot. Returns false if the
  // instance is unknown, `to` is not live, or attach fails.
  bool Reassign(std::uint32_t instance_id, EngineId to);

  // Marks the engine dead and migrates every instance it served to the
  // surviving engines, least-loaded first. Instances that cannot be placed
  // (no survivor, or every attach failed) become unassigned. Returns the
  // ids of the instances that were migrated to a survivor.
  std::vector<std::uint32_t> StopEngine(EngineId id);

  // Two-step reassignment for a copy-then-cutover region migration.
  // BeginHandoff detaches the instance from its engine and parks the
  // exported snapshot inside the registry; the instance is "held" — served
  // by nobody, invisible to placement. The coordinator then drains the
  // region copy and flips the translation entry before CompleteHandoff
  // attaches the instance to `to` (kNoEngine = least-loaded live engine)
  // with the parked snapshot, so the resumed engine sees only the new
  // placement. Returns the engine chosen, or kNoEngine when no live engine
  // accepted the instance (it stays parked and can be retried).
  bool BeginHandoff(std::uint32_t instance_id);
  EngineId CompleteHandoff(std::uint32_t instance_id,
                           EngineId to = kNoEngine);
  bool HandoffInProgress(std::uint32_t instance_id) const;

  EngineId EngineOf(std::uint32_t instance_id) const;
  std::vector<std::uint32_t> InstancesOn(EngineId id) const;
  std::size_t live_engines() const;
  const std::string* EngineName(EngineId id) const;

 private:
  struct Engine {
    EngineBinding binding;
    bool live = true;
  };

  EngineId LeastLoadedLiveEngine(EngineId exclude = kNoEngine) const;

  std::map<EngineId, Engine> engines_;
  std::map<std::uint32_t, EngineId> assignment_;  // kNoEngine = unassigned
  // Snapshots parked between BeginHandoff and CompleteHandoff.
  std::map<std::uint32_t, std::optional<InstanceProgress>> held_;
  EngineId next_id_ = 1;
};

}  // namespace cowbird::offload
