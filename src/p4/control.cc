#include "p4/control.h"

#include "common/check.h"
#include "net/bytes.h"

namespace cowbird::p4 {

namespace {

void PutEndpoint(std::vector<std::uint8_t>& out, const HostEndpoint& ep) {
  const std::size_t at = out.size();
  out.resize(at + 16);
  net::PutU32(out, at, ep.node);
  net::PutU32(out, at + 4, ep.host_qpn);
  net::PutU32(out, at + 8, ep.switch_qpn);
  net::PutU32(out, at + 12, ep.start_psn);
}

HostEndpoint GetEndpoint(std::span<const std::uint8_t> raw, std::size_t at) {
  HostEndpoint ep;
  ep.node = net::GetU32(raw, at);
  ep.host_qpn = net::GetU32(raw, at + 4);
  ep.switch_qpn = net::GetU32(raw, at + 8);
  ep.start_psn = net::GetU32(raw, at + 12);
  return ep;
}

}  // namespace

std::vector<std::uint8_t> ControlMessage::Serialize() const {
  std::vector<std::uint8_t> out(5);
  out[0] = static_cast<std::uint8_t>(op);
  net::PutU32(out, 1, rpc_id);
  if (op == ControlOp::kTeardown) {
    out.resize(9);
    net::PutU32(out, 5, descriptor.instance_id);
    return out;
  }
  if (op != ControlOp::kSetup) return out;  // replies carry no body

  auto put64 = [&out](std::uint64_t v) {
    const std::size_t at = out.size();
    out.resize(at + 8);
    net::PutU64(out, at, v);
  };
  auto put32 = [&out](std::uint32_t v) {
    const std::size_t at = out.size();
    out.resize(at + 4);
    net::PutU32(out, at, v);
  };
  auto put16 = [&out](std::uint16_t v) {
    const std::size_t at = out.size();
    out.resize(at + 2);
    net::PutU16(out, at, v);
  };

  put32(descriptor.instance_id);
  put32(descriptor.compute_node);
  put32(descriptor.compute_rkey);
  put64(descriptor.layout.base);
  put32(static_cast<std::uint32_t>(descriptor.layout.threads));
  put64(descriptor.layout.meta_slots);
  put64(descriptor.layout.data_capacity);
  put64(descriptor.layout.resp_capacity);
  put16(static_cast<std::uint16_t>(descriptor.regions.size()));
  for (const auto& region : descriptor.regions) {
    put16(region.region_id);
    put32(region.memory_node);
    put64(region.remote_base);
    put32(region.rkey);
    put64(region.size);
  }
  PutEndpoint(out, conn.compute);
  PutEndpoint(out, conn.probe);
  PutEndpoint(out, conn.memory);
  PutEndpoint(out, conn.wr_compute);
  PutEndpoint(out, conn.wr_memory);
  // Elastic-pool extension (DESIGN.md §14), appended after the original
  // five endpoints so old messages parse as zero extra servers and zero
  // translation ranges: extra (read, write) endpoint pairs, then the
  // cluster-pool range table.
  put16(static_cast<std::uint16_t>(conn.extra_memory.size()));
  for (const auto& [mem_ep, wr_ep] : conn.extra_memory) {
    PutEndpoint(out, mem_ep);
    PutEndpoint(out, wr_ep);
  }
  put16(static_cast<std::uint16_t>(descriptor.ranges.size()));
  for (const auto& range : descriptor.ranges) {
    put16(range.region_id);
    put64(range.vbase);
    put64(range.length);
    put32(range.node);
    put32(range.rkey);
    put64(range.server_base);
  }
  return out;
}

std::optional<ControlMessage> ControlMessage::Parse(
    std::span<const std::uint8_t> raw) {
  if (raw.size() < 5) return std::nullopt;
  ControlMessage m;
  m.op = static_cast<ControlOp>(raw[0]);
  m.rpc_id = net::GetU32(raw, 1);
  if (m.op == ControlOp::kTeardown) {
    if (raw.size() < 9) return std::nullopt;
    m.descriptor.instance_id = net::GetU32(raw, 5);
    return m;
  }
  if (m.op != ControlOp::kSetup) return m;

  std::size_t at = 5;
  auto need = [&raw, &at](std::size_t n) { return at + n <= raw.size(); };
  if (!need(4 + 4 + 4 + 8 + 4 + 8 + 8 + 8 + 2)) return std::nullopt;
  m.descriptor.instance_id = net::GetU32(raw, at); at += 4;
  m.descriptor.compute_node = net::GetU32(raw, at); at += 4;
  m.descriptor.compute_rkey = net::GetU32(raw, at); at += 4;
  m.descriptor.layout.base = net::GetU64(raw, at); at += 8;
  m.descriptor.layout.threads = static_cast<int>(net::GetU32(raw, at));
  at += 4;
  m.descriptor.layout.meta_slots = net::GetU64(raw, at); at += 8;
  m.descriptor.layout.data_capacity = net::GetU64(raw, at); at += 8;
  m.descriptor.layout.resp_capacity = net::GetU64(raw, at); at += 8;
  const std::uint16_t regions = net::GetU16(raw, at); at += 2;
  for (std::uint16_t i = 0; i < regions; ++i) {
    if (!need(2 + 4 + 8 + 4 + 8)) return std::nullopt;
    core::RegionInfo region;
    region.region_id = net::GetU16(raw, at); at += 2;
    region.memory_node = net::GetU32(raw, at); at += 4;
    region.remote_base = net::GetU64(raw, at); at += 8;
    region.rkey = net::GetU32(raw, at); at += 4;
    region.size = net::GetU64(raw, at); at += 8;
    m.descriptor.regions.push_back(region);
  }
  if (!need(5 * 16)) return std::nullopt;
  m.conn.compute = GetEndpoint(raw, at); at += 16;
  m.conn.probe = GetEndpoint(raw, at); at += 16;
  m.conn.memory = GetEndpoint(raw, at); at += 16;
  m.conn.wr_compute = GetEndpoint(raw, at); at += 16;
  m.conn.wr_memory = GetEndpoint(raw, at); at += 16;
  // Elastic-pool extension: absent in legacy messages (zero extras, zero
  // ranges — the single-server identity path).
  if (at == raw.size()) return m;
  if (!need(2)) return std::nullopt;
  const std::uint16_t extras = net::GetU16(raw, at); at += 2;
  for (std::uint16_t i = 0; i < extras; ++i) {
    if (!need(2 * 16)) return std::nullopt;
    const HostEndpoint mem_ep = GetEndpoint(raw, at); at += 16;
    const HostEndpoint wr_ep = GetEndpoint(raw, at); at += 16;
    m.conn.extra_memory.emplace_back(mem_ep, wr_ep);
  }
  if (!need(2)) return std::nullopt;
  const std::uint16_t ranges = net::GetU16(raw, at); at += 2;
  for (std::uint16_t i = 0; i < ranges; ++i) {
    if (!need(2 + 8 + 8 + 4 + 4 + 8)) return std::nullopt;
    core::RangeEntry range;
    range.region_id = net::GetU16(raw, at); at += 2;
    range.vbase = net::GetU64(raw, at); at += 8;
    range.length = net::GetU64(raw, at); at += 8;
    range.node = net::GetU32(raw, at); at += 4;
    range.rkey = net::GetU32(raw, at); at += 4;
    range.server_base = net::GetU64(raw, at); at += 8;
    m.descriptor.ranges.push_back(range);
  }
  return m;
}

ControlPlaneServer::ControlPlaneServer(CowbirdP4Engine& engine,
                                       net::Switch& sw,
                                       net::NodeId switch_node_id)
    : engine_(&engine), sw_(&sw), switch_id_(switch_node_id) {
  engine_->SetControlHandler(
      [this](const net::Packet& packet) { HandlePacket(packet); });
}

void ControlPlaneServer::HandlePacket(const net::Packet& packet) {
  const auto message = ControlMessage::Parse(packet.L4Payload());
  ControlMessage reply;
  reply.op = ControlOp::kAckError;
  if (message.has_value()) {
    reply.rpc_id = message->rpc_id;
    switch (message->op) {
      case ControlOp::kSetup:
        engine_->AddInstance(message->descriptor, message->conn);
        ++setups_;
        reply.op = ControlOp::kAckOk;
        break;
      case ControlOp::kTeardown:
        if (engine_->RemoveInstance(message->descriptor.instance_id)) {
          ++teardowns_;
          reply.op = ControlOp::kAckOk;
        }
        break;
      default:
        break;
    }
  }
  const auto body = reply.Serialize();
  net::Packet out = net::MakeUdpPacket(switch_id_, packet.src, body.size(),
                                       net::Priority::kControl,
                                       kControlPort);
  std::copy(body.begin(), body.end(), out.MutableL4Payload().begin());
  const int port = sw_->RouteFor(packet.src);
  COWBIRD_CHECK(port >= 0);
  sw_->EnqueueEgress(port, std::move(out));
}

ControlPlaneClient::ControlPlaneClient(net::HostNic& nic,
                                       net::NodeId switch_node_id)
    : nic_(&nic), switch_id_(switch_node_id) {
  nic_->SetPortReceiver(kControlPort, [this](net::Packet packet) {
    const auto reply = ControlMessage::Parse(packet.L4Payload());
    if (!reply.has_value()) return;
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      if ((*it)->rpc_id == reply->rpc_id) {
        (*it)->ok = reply->op == ControlOp::kAckOk;
        (*it)->done->Set();
        pending_.erase(it);
        return;
      }
    }
  });
}

sim::Task<bool> ControlPlaneClient::Call(ControlMessage message) {
  message.rpc_id = next_rpc_id_++;
  const auto body = message.Serialize();
  net::Packet packet = net::MakeUdpPacket(nic_->id(), switch_id_,
                                          body.size(),
                                          net::Priority::kControl,
                                          kControlPort);
  std::copy(body.begin(), body.end(), packet.MutableL4Payload().begin());

  sim::OneShotEvent done(nic_->simulation());
  PendingRpc rpc{message.rpc_id, false, &done};
  pending_.push_back(&rpc);
  nic_->Send(std::move(packet));
  co_await done.Wait();
  co_return rpc.ok;
}

sim::Task<bool> ControlPlaneClient::Setup(
    const core::InstanceDescriptor& descriptor, const P4Connection& conn) {
  ControlMessage m;
  m.op = ControlOp::kSetup;
  m.descriptor = descriptor;
  m.conn = conn;
  co_return co_await Call(std::move(m));
}

sim::Task<bool> ControlPlaneClient::Teardown(std::uint32_t instance_id) {
  ControlMessage m;
  m.op = ControlOp::kTeardown;
  m.descriptor.instance_id = instance_id;
  co_return co_await Call(std::move(m));
}

}  // namespace cowbird::p4
