// Phase I control plane (Section 5.2): "the compute node will then send the
// switch configuration information through an RPC endpoint running on the
// switch control plane, i.e., the QP numbers; the current PSN for each QP;
// and the base memory addresses, remote keys, and total size of all
// registered memory regions. ... Modifications or termination of the
// channel also occur through this interface."
//
// The RPC is a real wire protocol here: a setup/teardown message serialized
// into a UDP packet addressed to the switch's control port, answered with a
// status reply. The switch-side endpoint installs the instance into the
// data-plane engine (register allocation + packet-generator configuration).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/instance.h"
#include "net/switch.h"
#include "p4/engine.h"
#include "sim/sync.h"

namespace cowbird::p4 {

constexpr std::uint16_t kControlPort = 9000;

enum class ControlOp : std::uint8_t {
  kSetup = 1,
  kTeardown = 2,
  kAckOk = 0x80,
  kAckError = 0x81,
};

struct ControlMessage {
  ControlOp op = ControlOp::kSetup;
  std::uint32_t rpc_id = 0;  // echoed in the reply
  core::InstanceDescriptor descriptor;
  P4Connection conn;  // all five per-instance QPs (Phase I)

  std::vector<std::uint8_t> Serialize() const;
  static std::optional<ControlMessage> Parse(
      std::span<const std::uint8_t> raw);
};

// Switch-side RPC endpoint: registers itself as the control-port handler of
// the engine's packet pipeline and applies setup/teardown to the engine.
class ControlPlaneServer {
 public:
  ControlPlaneServer(CowbirdP4Engine& engine, net::Switch& sw,
                     net::NodeId switch_node_id);

  // Called by the engine's pipeline for control packets (installed
  // automatically by the constructor).
  void HandlePacket(const net::Packet& packet);

  std::uint64_t setups() const { return setups_; }
  std::uint64_t teardowns() const { return teardowns_; }

 private:
  CowbirdP4Engine* engine_;
  net::Switch* sw_;
  net::NodeId switch_id_;
  std::uint64_t setups_ = 0;
  std::uint64_t teardowns_ = 0;
};

// Compute-side client: sends the RPC and waits for the reply.
class ControlPlaneClient {
 public:
  ControlPlaneClient(net::HostNic& nic, net::NodeId switch_node_id);

  // Registers an instance with the switch; completes when the switch ACKs.
  // Returns false on an error reply.
  sim::Task<bool> Setup(const core::InstanceDescriptor& descriptor,
                        const P4Connection& conn);

  // Terminates the channel for `instance_id`.
  sim::Task<bool> Teardown(std::uint32_t instance_id);

 private:
  sim::Task<bool> Call(ControlMessage message);

  net::HostNic* nic_;
  net::NodeId switch_id_;
  std::uint32_t next_rpc_id_ = 1;
  struct PendingRpc {
    std::uint32_t rpc_id;
    bool ok = false;
    sim::OneShotEvent* done;
  };
  std::vector<PendingRpc*> pending_;
};

}  // namespace cowbird::p4
