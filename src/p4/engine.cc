#include "p4/engine.h"

#include <algorithm>

#include "common/check.h"

namespace cowbird::p4 {

namespace {

rdma::Opcode RecycleToWrite(rdma::Opcode response_opcode) {
  // The header-rewrite table of the recycling trick (Section 5.2, Phase
  // III): read responses become the corresponding write packets.
  switch (response_opcode) {
    case rdma::Opcode::kReadResponseFirst: return rdma::Opcode::kWriteFirst;
    case rdma::Opcode::kReadResponseMiddle: return rdma::Opcode::kWriteMiddle;
    case rdma::Opcode::kReadResponseLast: return rdma::Opcode::kWriteLast;
    case rdma::Opcode::kReadResponseOnly: return rdma::Opcode::kWriteOnly;
    default: break;
  }
  COWBIRD_CHECK(false);
}

bool IsReadKindImpl(int kind_raw) {
  return kind_raw <= 3;  // kProbe, kMetaFetch, kWriteDataFetch, kPoolRead
}

// In-pipeline address translation (the ig3_range_translate stage). A miss
// means the client addressed outside its regions or the mirror is stale —
// a control-plane bug; abort with the structured error so the log names
// the address and its nearest mapped neighbours.
core::Translation MustTranslate(const core::TranslationTable& table,
                                std::uint16_t region_id, std::uint64_t vaddr,
                                std::uint32_t length) {
  core::TranslateError error;
  const std::optional<core::Translation> t =
      table.Lookup(region_id, vaddr, length, &error);
  if (!t.has_value()) [[unlikely]] {
    std::fprintf(stderr, "p4 translation failed: %s\n",
                 error.ToString().c_str());
    COWBIRD_CHECK(t.has_value());
  }
  return *t;
}

}  // namespace

CowbirdP4Engine::CowbirdP4Engine(net::Switch& sw, Config config)
    : sw_(&sw),
      sim_(&sw.simulation()),
      config_(config),
      scheduler_(offload::ProbeScheduler::Config{
          config.probe_interval, config.adaptive_probe,
          config.probe_interval_max, config.probe_policy}) {
  sw_->SetProcessor(this);
  if (auto* hub = config_.telemetry) {
    const telemetry::Labels labels = EngineLabels();
    scheduler_.BindTelemetry(hub->metrics, labels);
    const struct {
      const char* name;
      const std::uint64_t* cell;
    } series[] = {
        {"engine_ops_completed", &ops_completed_},
        {"engine_probes_sent", &probes_sent_},
        {"engine_packets_recycled", &packets_recycled_},
        {"engine_reads_paused_by_writes", &reads_paused_by_writes_},
        {"engine_gbn_recoveries", &recoveries_},
    };
    for (const auto& s : series) {
      hub->metrics.RegisterCallbackGauge(s.name, labels, [cell = s.cell] {
        return static_cast<std::int64_t>(*cell);
      });
    }
  }
}

CowbirdP4Engine::~CowbirdP4Engine() {
  if (auto* hub = config_.telemetry) {
    while (!instances_.empty()) {
      UnregisterInstanceTelemetry(instances_.back()->descriptor.instance_id);
      instances_.pop_back();
    }
    for (const char* name :
         {"engine_ops_completed", "engine_probes_sent",
          "engine_packets_recycled", "engine_reads_paused_by_writes",
          "engine_gbn_recoveries"}) {
      hub->metrics.UnregisterCallbackGauge(name, EngineLabels());
    }
  }
}

telemetry::Labels CowbirdP4Engine::EngineLabels() const {
  return {{"engine", "p4"},
          {"node", std::to_string(config_.switch_node_id)}};
}

telemetry::Labels CowbirdP4Engine::InstanceLabels(
    std::uint32_t instance_id) const {
  telemetry::Labels labels = EngineLabels();
  labels.emplace_back("instance", std::to_string(instance_id));
  return labels;
}

void CowbirdP4Engine::RegisterInstanceTelemetry(Instance& inst) {
  auto* hub = config_.telemetry;
  if (hub == nullptr) return;
  const std::uint32_t id = inst.descriptor.instance_id;
  inst.probe_track = "p4/i" + std::to_string(id) + "/probe";
  // Queue-depth gauges look the instance up by id so an export taken after
  // RemoveInstance (or during migration) reads 0 instead of freed memory.
  const struct {
    const char* qp_name;
    SwitchQp Instance::* member;
  } qps[] = {
      {"to_compute", &Instance::to_compute},
      {"to_probe", &Instance::to_probe},
      {"to_memory", &Instance::to_memory},
      {"wr_compute", &Instance::wr_compute},
      {"wr_memory", &Instance::wr_memory},
  };
  for (const auto& q : qps) {
    telemetry::Labels labels = InstanceLabels(id);
    labels.emplace_back("qp", q.qp_name);
    hub->metrics.RegisterCallbackGauge(
        "qp_pending_depth", labels, [this, id, member = q.member] {
          for (const auto& candidate : instances_) {
            if (candidate->descriptor.instance_id == id) {
              return static_cast<std::int64_t>(
                  ((*candidate).*member).pending.size());
            }
          }
          return std::int64_t{0};
        });
  }
  // Extra memory servers: per-server pending-depth gauges, labeled by the
  // server node so a rebalance shows up as depth shifting between servers.
  for (std::size_t e = 0; e < inst.extra_paths.size(); ++e) {
    const net::NodeId node = inst.extra_paths[e]->to_memory.host.node;
    const struct {
      const char* qp_name;
      SwitchQp MemoryPath::* member;
    } path_qps[] = {
        {"to_memory", &MemoryPath::to_memory},
        {"wr_memory", &MemoryPath::wr_memory},
    };
    for (const auto& q : path_qps) {
      telemetry::Labels labels = InstanceLabels(id);
      labels.emplace_back(
          "qp", std::string(q.qp_name) + "@" + std::to_string(node));
      hub->metrics.RegisterCallbackGauge(
          "qp_pending_depth", labels, [this, id, e, member = q.member] {
            for (const auto& candidate : instances_) {
              if (candidate->descriptor.instance_id == id &&
                  e < candidate->extra_paths.size()) {
                return static_cast<std::int64_t>(
                    ((*candidate->extra_paths[e]).*member).pending.size());
              }
            }
            return std::int64_t{0};
          });
    }
  }
  hub->metrics.RegisterCallbackGauge(
      "engine_inflight_ops", InstanceLabels(id), [this, id] {
        for (const auto& candidate : instances_) {
          if (candidate->descriptor.instance_id != id) continue;
          std::int64_t total = 0;
          for (const ThreadState& ts : candidate->threads) {
            total += static_cast<std::int64_t>(ts.inflight.size());
          }
          return total;
        }
        return std::int64_t{0};
      });
  for (std::size_t t = 0; t < inst.threads.size(); ++t) {
    telemetry::Labels labels = InstanceLabels(id);
    labels.emplace_back("thread", std::to_string(t));
    inst.threads[t].hazards.BindTelemetry(hub->metrics, labels);
  }
}

void CowbirdP4Engine::UnregisterInstanceTelemetry(std::uint32_t instance_id) {
  auto* hub = config_.telemetry;
  if (hub == nullptr) return;
  for (const char* qp_name :
       {"to_compute", "to_probe", "to_memory", "wr_compute", "wr_memory"}) {
    telemetry::Labels labels = InstanceLabels(instance_id);
    labels.emplace_back("qp", qp_name);
    hub->metrics.UnregisterCallbackGauge("qp_pending_depth", labels);
  }
  for (const auto& inst : instances_) {
    if (inst->descriptor.instance_id != instance_id) continue;
    for (const auto& path : inst->extra_paths) {
      const net::NodeId node = path->to_memory.host.node;
      for (const char* qp_name : {"to_memory", "wr_memory"}) {
        telemetry::Labels labels = InstanceLabels(instance_id);
        labels.emplace_back(
            "qp", std::string(qp_name) + "@" + std::to_string(node));
        hub->metrics.UnregisterCallbackGauge("qp_pending_depth", labels);
      }
    }
    break;
  }
  hub->metrics.UnregisterCallbackGauge("engine_inflight_ops",
                                       InstanceLabels(instance_id));
}

void CowbirdP4Engine::AddInstance(const core::InstanceDescriptor& descriptor,
                                  const P4Connection& conn,
                                  const offload::InstanceProgress* resume) {
  // Instances can be added before or after Start (the control plane
  // registers them at application startup, Section 5.2 Phase I).
  auto inst = std::make_unique<Instance>();
  inst->descriptor = descriptor;
  inst->translation = descriptor.BuildTranslation();
  const auto bind = [](SwitchQp& qp, const HostEndpoint& ep) {
    qp.host = ep;
    qp.next_psn = ep.start_psn;
    qp.committed_psn = ep.start_psn;
  };
  bind(inst->to_compute, conn.compute);
  bind(inst->to_probe, conn.probe);
  bind(inst->to_memory, conn.memory);
  bind(inst->wr_compute, conn.wr_compute);
  bind(inst->wr_memory, conn.wr_memory);
  for (const auto& [mem_ep, wr_ep] : conn.extra_memory) {
    auto path = std::make_unique<MemoryPath>();
    bind(path->to_memory, mem_ep);
    bind(path->wr_memory, wr_ep);
    inst->extra_paths.push_back(std::move(path));
  }
  // Every server the translation table can point at needs an endpoint pair
  // now; a data-path miss would be far harder to debug.
  for (const core::RangeEntry& range : inst->translation.entries()) {
    bool reachable = range.node == conn.memory.node;
    for (const auto& [mem_ep, wr_ep] : conn.extra_memory) {
      reachable = reachable || range.node == mem_ep.node;
    }
    COWBIRD_CHECK(reachable);
  }
  inst->threads.resize(descriptor.layout.threads);
  if (resume != nullptr) {
    // Registry migration: continue from the counters the previous engine
    // published. Everything at or past meta_head is still in the client's
    // rings and will be re-discovered by the next probe.
    COWBIRD_CHECK(resume->threads.size() == inst->threads.size());
    for (std::size_t t = 0; t < inst->threads.size(); ++t) {
      ThreadState& ts = inst->threads[t];
      ts.progress = resume->threads[t];
      ts.tail_seen = ts.progress.meta_head;
      ts.fetch_cursor = ts.progress.meta_head;
      ts.next_read_seq = ts.progress.read_progress;
      ts.next_write_seq = ts.progress.write_progress;
    }
  }
  instances_.push_back(std::move(inst));
  RegisterInstanceTelemetry(*instances_.back());
}

std::optional<offload::InstanceProgress> CowbirdP4Engine::ExportProgress(
    std::uint32_t instance_id) const {
  for (const auto& inst : instances_) {
    if (inst->descriptor.instance_id != instance_id) continue;
    offload::InstanceProgress snapshot;
    snapshot.threads.reserve(inst->threads.size());
    for (const ThreadState& ts : inst->threads) {
      snapshot.threads.push_back(ts.progress);
    }
    return snapshot;
  }
  return std::nullopt;
}

void CowbirdP4Engine::Start() {
  COWBIRD_CHECK(!started_);
  started_ = true;
  sim_->ScheduleAfter(scheduler_.current_interval(), [this] { ProbeTick(); });
}

bool CowbirdP4Engine::RemoveInstance(std::uint32_t instance_id) {
  for (auto it = instances_.begin(); it != instances_.end(); ++it) {
    if ((*it)->descriptor.instance_id != instance_id) continue;
    // Quiesce: cancel retransmission timers so no callback touches the
    // instance after destruction; in-flight packets for its QPNs fall
    // through InstanceForQpn as stale and are dropped.
    (*it)->to_compute.timer.Cancel();
    (*it)->to_probe.timer.Cancel();
    (*it)->to_memory.timer.Cancel();
    (*it)->wr_compute.timer.Cancel();
    (*it)->wr_memory.timer.Cancel();
    for (auto& path : (*it)->extra_paths) {
      path->to_memory.timer.Cancel();
      path->wr_memory.timer.Cancel();
    }
    UnregisterInstanceTelemetry(instance_id);
    instances_.erase(it);
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Probe generator (Phase II)
// ---------------------------------------------------------------------------

void CowbirdP4Engine::ProbeTick() {
  if (probing_stopped_) return;
  if (!instances_.empty()) {
    // Time-division multiplexing across instances (Section 5.4), delegated
    // to the shared scheduler: eligibility = no probe already in flight,
    // credit = recent tail movement.
    std::vector<offload::ProbeScheduler::Candidate> candidates;
    candidates.reserve(instances_.size());
    for (const auto& inst : instances_) {
      candidates.push_back({!inst->probe_inflight, inst->activity_credit});
    }
    const std::size_t at = scheduler_.PickNext(candidates);
    Instance& pick = *instances_[at];
    if (!pick.probe_inflight) EmitProbe(pick);
  }
  sim_->ScheduleAfter(scheduler_.current_interval(), [this] { ProbeTick(); });
}

void CowbirdP4Engine::EmitProbe(Instance& inst) {
  inst.probe_inflight = true;
  ++probes_sent_;
  if (auto* hub = config_.telemetry) {
    inst.probe_span = hub->tracer.Begin(inst.probe_track, "probe");
  }
  Pending p;
  p.kind = PendingKind::kProbe;
  p.segments = rdma::SegmentCount(inst.descriptor.layout.GreenBytesTotal());
  p.raddr = inst.descriptor.layout.GreenBase();
  p.rkey = inst.descriptor.compute_rkey;
  p.length =
      static_cast<std::uint32_t>(inst.descriptor.layout.GreenBytesTotal());
  Admit(inst, inst.to_probe, p);
}

// ---------------------------------------------------------------------------
// Pipeline entry
// ---------------------------------------------------------------------------

void CowbirdP4Engine::Process(net::Switch& sw, int ingress_port,
                              net::Packet packet,
                              std::vector<net::ForwardAction>& out) {
  (void)ingress_port;
  if (packet.dst == config_.switch_node_id) {
    if (rdma::LooksLikeRdma(packet)) {
      ConsumeRdma(std::move(packet));
      return;
    }
    // Control-plane RPC (Phase I) rides the switch's UDP control port.
    if (control_handler_ && packet.bytes.size() >= net::kL2L3L4Bytes) {
      const auto udp = net::UdpHeader::Parse(
          std::span<const std::uint8_t>(packet.bytes)
              .subspan(net::kEthernetHeaderBytes + net::kIpv4HeaderBytes));
      if (udp.dst_port == 9000) {
        control_handler_(packet);
        return;
      }
    }
    return;  // other traffic to the switch endpoint is dropped
  }
  const int port = sw.RouteFor(packet.dst);
  if (port >= 0) out.push_back({port, std::move(packet)});
}

CowbirdP4Engine::Instance* CowbirdP4Engine::InstanceForQpn(
    std::uint32_t switch_qpn, SwitchQp** qp) {
  // The QPN→instance mapping of Section 5.4.
  for (auto& inst : instances_) {
    for (SwitchQp* candidate :
         {&inst->to_compute, &inst->to_probe, &inst->to_memory,
          &inst->wr_compute, &inst->wr_memory}) {
      if (candidate->host.switch_qpn == switch_qpn) {
        *qp = candidate;
        return inst.get();
      }
    }
    for (auto& path : inst->extra_paths) {
      for (SwitchQp* candidate : {&path->to_memory, &path->wr_memory}) {
        if (candidate->host.switch_qpn == switch_qpn) {
          *qp = candidate;
          return inst.get();
        }
      }
    }
  }
  return nullptr;
}

CowbirdP4Engine::SwitchQp& CowbirdP4Engine::PoolReadQp(Instance& inst,
                                                       net::NodeId node) {
  if (inst.to_memory.host.node == node) return inst.to_memory;
  for (auto& path : inst.extra_paths) {
    if (path->to_memory.host.node == node) return path->to_memory;
  }
  COWBIRD_CHECK(false);  // unreachable: AddInstance validated every server
}

CowbirdP4Engine::SwitchQp& CowbirdP4Engine::PoolWriteQp(Instance& inst,
                                                        net::NodeId node) {
  if (inst.wr_memory.host.node == node) return inst.wr_memory;
  for (auto& path : inst.extra_paths) {
    if (path->wr_memory.host.node == node) return path->wr_memory;
  }
  COWBIRD_CHECK(false);
}

void CowbirdP4Engine::ConsumeRdma(net::Packet packet) {
  const rdma::RdmaMessageView view = rdma::ParseRdmaPacket(packet);
  SwitchQp* qp = nullptr;
  Instance* inst = InstanceForQpn(view.bth.dest_qp, &qp);
  if (inst == nullptr) return;  // stale packet from a removed instance
  if (rdma::IsReadResponse(view.bth.opcode)) {
    HandleReadResponse(*inst, *qp, view, packet);
  } else if (view.bth.opcode == rdma::Opcode::kAcknowledge) {
    HandleAck(*inst, *qp, view);
  } else if (view.bth.opcode == rdma::Opcode::kCnp) {
    // The RMT pipeline has no per-flow rate state, so a CNP aimed at a
    // switch endpoint is reflected to the memory *host* whose pool reads
    // feed that flow — its NIC-side DCQCN is the reaction point. This is
    // the P4/Spot asymmetry: Spot CNPs terminate at the memory host
    // directly, P4 CNPs take this one extra reflection hop.
    ++cnps_reflected_;
    // Multi-server pool: a CNP aimed at an extra path's QP is reflected to
    // *that* server's endpoint; everything else keeps the legacy primary
    // target (byte-identical single-server behavior).
    const HostEndpoint* reflect = &inst->to_memory.host;
    for (const auto& path : inst->extra_paths) {
      if (qp == &path->to_memory || qp == &path->wr_memory) {
        reflect = &path->to_memory.host;
        break;
      }
    }
    rdma::Bth bth;
    bth.opcode = rdma::Opcode::kCnp;
    bth.dest_qp = reflect->host_qpn;
    bth.psn = 0;
    SendPacket(rdma::BuildRdmaPacket(
        config_.switch_node_id, reflect->node,
        net::Priority::kControl, bth, nullptr, nullptr, {}));
  }
  // Anything else addressed to the switch endpoint is dropped.
}

void CowbirdP4Engine::HandleReadResponse(Instance& inst, SwitchQp& qp,
                                         const rdma::RdmaMessageView& view,
                                         const net::Packet& packet) {
  (void)packet;
  // Responses arrive in request order: find the oldest read-kind pending
  // still collecting bytes.
  Pending* target = nullptr;
  for (auto& p : qp.pending) {
    if (!p.done && IsReadKindImpl(static_cast<int>(p.kind))) {
      target = &p;
      break;
    }
  }
  if (target == nullptr) return;  // stale duplicate after recovery
  const std::uint32_t expected = rdma::PsnAdd(
      target->first_psn, target->bytes_done / rdma::kPathMtu);
  if (view.bth.psn != expected) return;  // gap; the GBN timer recovers

  const std::uint32_t chunk_offset = target->bytes_done;
  target->bytes_done += static_cast<std::uint32_t>(view.payload.size());
  const bool complete = target->bytes_done >= target->length;
  if (complete) target->done = true;

  switch (target->kind) {
    case PendingKind::kProbe:
      OnProbeData(inst, view);
      break;
    case PendingKind::kMetaFetch:
      OnMetaData(inst, *target, view);
      break;
    case PendingKind::kWriteDataFetch:
      OnWritePayloadChunk(inst, *target, view, chunk_offset);
      break;
    case PendingKind::kPoolRead:
      OnPoolReadChunk(inst, *target, view, chunk_offset);
      break;
    default:
      COWBIRD_CHECK(false);
  }
  PopDonePendings(qp);
  WalkAndEmit(inst, qp);  // admits deferred requests; re-arms the timer
}

void CowbirdP4Engine::HandleAck(Instance& inst, SwitchQp& qp,
                                const rdma::RdmaMessageView& view) {
  COWBIRD_CHECK(view.aeth.has_value());
  if (view.aeth->syndrome != rdma::kSyndromeAck) {
    // NAK: sequence gap at the host. Recover this QP.
    Recover(inst, qp);
    return;
  }
  const std::uint32_t acked = view.bth.psn;
  // Index-based: completion effects (EmitRedWrite) may append to this very
  // deque, which invalidates iterators but not indices/references.
  for (std::size_t i = 0; i < qp.pending.size(); ++i) {
    Pending& p = qp.pending[i];
    if (p.done || IsReadKindImpl(static_cast<int>(p.kind))) continue;
    if (!p.emitted && p.bytes_sent == 0) continue;  // never on the wire yet
    const std::uint32_t last = rdma::PsnAdd(p.first_psn, p.segments - 1);
    if (rdma::PsnDistance(acked, last) < 0) continue;
    p.done = true;
    switch (p.kind) {
      case PendingKind::kPayloadWrite:
        OnPayloadWriteAcked(inst, p);
        break;
      case PendingKind::kPoolWrite:
        OnPoolWriteAcked(inst, p);
        break;
      case PendingKind::kRedWrite:
        break;
      default:
        COWBIRD_CHECK(false);
    }
  }
  PopDonePendings(qp);
  WalkAndEmit(inst, qp);  // admits deferred requests; re-arms the timer
}

// ---------------------------------------------------------------------------
// Completion effects
// ---------------------------------------------------------------------------

void CowbirdP4Engine::OnProbeData(Instance& inst,
                                  const rdma::RdmaMessageView& view) {
  inst.probe_inflight = false;
  if (auto* hub = config_.telemetry) {
    hub->tracer.End(inst.probe_span);
    inst.probe_span = {};
  }
  bool found_work = false;
  // Parse the packed green blocks straight out of the packet payload: this
  // is the "compare the received tail pointer" step of Figure 5.
  for (int t = 0; t < inst.descriptor.layout.threads; ++t) {
    const std::size_t at = static_cast<std::size_t>(t) *
                           core::kGreenBlockBytes;
    if (at + 8 > view.payload.size()) break;
    std::uint64_t tail = 0;
    for (int b = 0; b < 8; ++b) {
      tail |= static_cast<std::uint64_t>(view.payload[at + b]) << (8 * b);
    }
    ThreadState& ts = inst.threads[t];
    if (tail > ts.tail_seen) {
      inst.activity_credit += tail - ts.tail_seen;
      ts.tail_seen = tail;
      found_work = true;
    }
    MaybeFetchMetadata(inst, t);
  }
  // Credits decay so stale activity does not dominate the TDM pick.
  inst.activity_credit = offload::ProbeScheduler::DecayCredit(
      inst.activity_credit);
  scheduler_.OnProbeOutcome(found_work);  // Section 5.2 adaptive ramp-up
  RefetchOrphans(inst);
}

void CowbirdP4Engine::RefetchOrphans(Instance& inst) {
  // Conversion chunks discarded while another stream held the QP leave
  // their op with no live pending anywhere; re-issue the (idempotent)
  // source fetch. Runs on every probe completion.
  for (int t = 0; t < static_cast<int>(inst.threads.size()); ++t) {
    ThreadState& ts = inst.threads[t];
    for (Op& op : ts.inflight) {
      if (!op.refetch_needed || op.done) continue;
      op.refetch_needed = false;
      Pending fetch;
      fetch.thread = t;
      fetch.seq = op.seq;
      fetch.length = op.meta.length;
      fetch.segments = rdma::SegmentCount(op.meta.length);
      if (op.is_write) {
        fetch.kind = PendingKind::kWriteDataFetch;
        fetch.is_write_op = true;
        fetch.raddr = op.meta.req_addr;
        fetch.rkey = inst.descriptor.compute_rkey;
        Admit(inst, inst.to_compute, fetch);
      } else {
        const core::Translation src =
            MustTranslate(inst.translation, op.meta.region_id,
                          op.meta.req_addr, op.meta.length);
        fetch.kind = PendingKind::kPoolRead;
        fetch.raddr = src.addr;
        fetch.rkey = src.rkey;
        Admit(inst, PoolReadQp(inst, src.node), fetch);
      }
    }
  }
}

void CowbirdP4Engine::MaybeFetchMetadata(Instance& inst, int thread) {
  ThreadState& ts = inst.threads[thread];
  if (ts.meta_fetch_inflight || ts.fetch_cursor >= ts.tail_seen) return;
  if (ts.inflight.size() >=
      static_cast<std::size_t>(config_.max_inflight_per_thread)) {
    return;
  }
  const auto& layout = inst.descriptor.layout;
  const std::uint64_t available = ts.tail_seen - ts.fetch_cursor;
  const std::uint64_t start_slot = ts.fetch_cursor % layout.meta_slots;
  const std::uint64_t contiguous = layout.meta_slots - start_slot;
  const std::uint64_t count = std::min<std::uint64_t>(
      {available, contiguous,
       static_cast<std::uint64_t>(config_.meta_entries_per_fetch)});
  Pending p;
  p.kind = PendingKind::kMetaFetch;
  p.thread = thread;
  p.fetch_cursor = ts.fetch_cursor;
  p.fetch_count = static_cast<std::uint32_t>(count);
  p.length = static_cast<std::uint32_t>(count * core::kMetadataEntryBytes);
  p.segments = rdma::SegmentCount(p.length);
  p.raddr = layout.MetaSlotAddr(thread, ts.fetch_cursor);
  p.rkey = inst.descriptor.compute_rkey;
  ts.meta_fetch_inflight = true;
  ts.fetch_cursor += count;  // optimistic; rewound on read-pause
  Admit(inst, inst.to_compute, p);
}

void CowbirdP4Engine::OnMetaData(Instance& inst, Pending& pending,
                                 const rdma::RdmaMessageView& view) {
  // Copied up front: the Admit calls below can push into the ring that
  // holds `pending` (metadata fetches live on to_compute), relocating it.
  const int thread = pending.thread;
  const std::uint32_t fetch_count = pending.fetch_count;
  const std::uint64_t fetch_cursor = pending.fetch_cursor;
  ThreadState& ts = inst.threads[thread];
  ts.meta_fetch_inflight = false;

  std::uint32_t consumed = 0;
  for (std::uint32_t i = 0; i < fetch_count; ++i) {
    const std::size_t at = static_cast<std::size_t>(i) *
                           core::kMetadataEntryBytes;
    if (at + core::kMetadataEntryBytes > view.payload.size()) break;
    const core::RequestMetadata meta = core::RequestMetadata::ParseBytes(
        view.payload.subspan(at, core::kMetadataEntryBytes));
    if (meta.rw_type == core::RwType::kInvalid) break;
    if (ts.inflight.size() >=
        static_cast<std::size_t>(config_.max_inflight_per_thread)) {
      break;
    }
    if (meta.rw_type == core::RwType::kRead &&
        !config_.chaos_unsafe_skip_hazards &&
        ts.hazards.ReadBlocked(offload::HazardRange{
            meta.region_id, meta.req_addr, meta.length})) {
      // Section 5.3: RMT pipelines cannot range-match in-flight writes, so
      // the fence policy pauses *all* newly probed reads until the writes
      // drain. The entry stays in the ring and is re-fetched.
      ++reads_paused_by_writes_;
      break;
    }

    Op op;
    op.meta = meta;
    op.is_write = meta.rw_type == core::RwType::kWrite;
    op.seq = op.is_write ? ++ts.next_write_seq : ++ts.next_read_seq;
    if (op.is_write) {
      // The write's pool destination enters the hazard window until the
      // pool write is acknowledged.
      op.hazard_ticket = ts.hazards.AdmitWrite(offload::HazardRange{
          meta.region_id, meta.resp_addr, meta.length});
    }
    ts.inflight.push_back(op);
    ++consumed;
    // Parse and execute coincide in the RMT pipeline: an admitted op's
    // transfer is issued in the same pass (no host-side queue between).
    RecordOpPhase(inst, thread, op.is_write, op.seq,
                  telemetry::OpPhase::kParsed);
    RecordOpPhase(inst, thread, op.is_write, op.seq,
                  telemetry::OpPhase::kExecute);

    if (op.is_write) {
      // Phase III, Step 1b: fetch the to-be-written payload from the
      // compute node's request data ring.
      Pending fetch;
      fetch.kind = PendingKind::kWriteDataFetch;
      fetch.thread = thread;
      fetch.seq = op.seq;
      fetch.is_write_op = true;
      fetch.length = meta.length;
      fetch.segments = rdma::SegmentCount(meta.length);
      fetch.raddr = meta.req_addr;
      fetch.rkey = inst.descriptor.compute_rkey;
      Admit(inst, inst.to_compute, fetch);
    } else {
      // Phase III, Step 1a: range-translate (region, vaddr) to the owning
      // server and read the requested data from its pool MR.
      const core::Translation src = MustTranslate(
          inst.translation, meta.region_id, meta.req_addr, meta.length);
      Pending fetch;
      fetch.kind = PendingKind::kPoolRead;
      fetch.thread = thread;
      fetch.seq = op.seq;
      fetch.length = meta.length;
      fetch.segments = rdma::SegmentCount(meta.length);
      fetch.raddr = src.addr;
      fetch.rkey = src.rkey;
      Admit(inst, PoolReadQp(inst, src.node), fetch);
    }
  }

  // Entries not consumed (pause / PHV budget) rewind the fetch cursor.
  ts.fetch_cursor = fetch_cursor + consumed;
  MaybeFetchMetadata(inst, thread);
}

namespace {
CowbirdP4Engine::Op* FindOpImpl(FixedDeque<CowbirdP4Engine::Op>& ops,
                                std::uint64_t seq, bool is_write) {
  for (auto& op : ops) {
    if (op.is_write == is_write && op.seq == seq) return &op;
  }
  return nullptr;
}
}  // namespace

void CowbirdP4Engine::OnWritePayloadChunk(Instance& inst, Pending& pending,
                                          const rdma::RdmaMessageView& view,
                                          std::uint32_t chunk_offset) {
  ThreadState& ts = inst.threads[pending.thread];
  Op* op = FindOpImpl(ts.inflight, pending.seq, /*is_write=*/true);
  if (op == nullptr) return;  // stale duplicate: op already completed

  // Translate the pool destination: the owning server's write QP carries
  // the recycled stream (the per-op mapping is stable, so every chunk of
  // one op lands on the same QP).
  const core::Translation dst = MustTranslate(
      inst.translation, op->meta.region_id, op->meta.resp_addr,
      op->meta.length);
  // Find or create the pool-write pending whose PSN span carries this data.
  SwitchQp& pool = PoolWriteQp(inst, dst.node);
  Pending* dest = nullptr;
  for (auto& p : pool.pending) {
    if (p.kind == PendingKind::kPoolWrite && p.thread == pending.thread &&
        p.seq == pending.seq) {
      dest = &p;
      break;
    }
  }
  if (dest == nullptr) {
    if (pool.unemitted > 0) {
      op->refetch_needed = true;  // orphan: re-fetched on next probe
      return;
    }
    Pending w;
    w.kind = PendingKind::kPoolWrite;
    w.thread = pending.thread;
    w.seq = pending.seq;
    w.is_write_op = true;
    w.length = op->meta.length;
    w.segments = rdma::SegmentCount(op->meta.length);
    w.raddr = dst.addr;  // pool destination on the owning server
    w.rkey = dst.rkey;
    dest = &AppendPending(pool, w);
  }
  if (chunk_offset != dest->bytes_sent) return;  // replayed chunk, skip
  if (!IsFrontier(pool, *dest)) return;          // out of order: drop

  // Recycle: response payload becomes a pool write packet (Figure 7, 2b).
  const std::uint32_t index = dest->bytes_sent / rdma::kPathMtu;
  const rdma::Opcode opcode = RecycleToWrite(view.bth.opcode);
  const bool last = rdma::IsLastOrOnly(opcode);
  rdma::Reth reth{dest->raddr, dest->rkey, dest->length};
  ++packets_recycled_;
  SendPacket(BuildRequest(pool, opcode,
                          rdma::PsnAdd(dest->first_psn, index), last,
                          rdma::HasReth(opcode) ? &reth : nullptr,
                          view.payload, net::Priority::kRdma));
  dest->bytes_sent += static_cast<std::uint32_t>(view.payload.size());
  if (dest->bytes_sent >= dest->length) {
    dest->emitted = true;
    --pool.unemitted;
  }
  WalkAndEmit(inst, pool);
}

void CowbirdP4Engine::OnPoolReadChunk(Instance& inst, Pending& pending,
                                      const rdma::RdmaMessageView& view,
                                      std::uint32_t chunk_offset) {
  ThreadState& ts = inst.threads[pending.thread];
  Op* op = FindOpImpl(ts.inflight, pending.seq, /*is_write=*/false);
  if (op == nullptr) return;  // stale duplicate: op already completed

  SwitchQp& compute = inst.wr_compute;
  Pending* dest = nullptr;
  for (auto& p : compute.pending) {
    if (p.kind == PendingKind::kPayloadWrite && p.thread == pending.thread &&
        p.seq == pending.seq) {
      dest = &p;
      break;
    }
  }
  if (dest == nullptr) {
    if (compute.unemitted > 0) {
      op->refetch_needed = true;  // orphan: re-fetched on next probe
      return;
    }
    Pending w;
    w.kind = PendingKind::kPayloadWrite;
    w.thread = pending.thread;
    w.seq = pending.seq;
    w.length = op->meta.length;
    w.segments = rdma::SegmentCount(op->meta.length);
    w.raddr = op->meta.resp_addr;  // compute response ring
    w.rkey = inst.descriptor.compute_rkey;
    dest = &AppendPending(compute, w);
  }
  if (chunk_offset != dest->bytes_sent) return;
  if (!IsFrontier(compute, *dest)) return;  // out of order: drop

  // Recycle: pool read response → write into the response ring (Figure 6,
  // 2a) — header rewritten, payload untouched.
  const std::uint32_t index = dest->bytes_sent / rdma::kPathMtu;
  const rdma::Opcode opcode = RecycleToWrite(view.bth.opcode);
  const bool last = rdma::IsLastOrOnly(opcode);
  rdma::Reth reth{dest->raddr, dest->rkey, dest->length};
  ++packets_recycled_;
  SendPacket(BuildRequest(compute, opcode,
                          rdma::PsnAdd(dest->first_psn, index), last,
                          rdma::HasReth(opcode) ? &reth : nullptr,
                          view.payload, net::Priority::kRdma));
  dest->bytes_sent += static_cast<std::uint32_t>(view.payload.size());
  if (dest->bytes_sent >= dest->length) {
    dest->emitted = true;
    --compute.unemitted;
  }
  WalkAndEmit(inst, compute);
}

void CowbirdP4Engine::OnPayloadWriteAcked(Instance& inst, Pending& pending) {
  ThreadState& ts = inst.threads[pending.thread];
  Op* op = FindOpImpl(ts.inflight, pending.seq, /*is_write=*/false);
  if (op == nullptr) return;  // already completed via an earlier ACK
  op->done = true;
  CompleteOpsInOrder(inst, pending.thread);
}

void CowbirdP4Engine::OnPoolWriteAcked(Instance& inst, Pending& pending) {
  ThreadState& ts = inst.threads[pending.thread];
  Op* op = FindOpImpl(ts.inflight, pending.seq, /*is_write=*/true);
  if (op == nullptr) return;  // already completed via an earlier ACK
  if (op->done) return;
  op->done = true;
  ts.hazards.RetireWrite(op->hazard_ticket);
  CompleteOpsInOrder(inst, pending.thread);
  // Draining writes may release paused reads.
  MaybeFetchMetadata(inst, pending.thread);
}

void CowbirdP4Engine::CompleteOpsInOrder(Instance& inst, int thread) {
  ThreadState& ts = inst.threads[thread];
  bool any = false;
  while (!ts.inflight.empty() && ts.inflight.front().done) {
    const Op& op = ts.inflight.front();
    if (op.is_write) {
      ts.progress.write_progress = op.seq;
      ts.progress.data_head += op.meta.length;
    } else {
      ts.progress.read_progress = op.seq;
      ts.progress.resp_tail += op.meta.length;
    }
    ++ts.progress.meta_head;
    ++ops_completed_;
    RecordOpPhase(inst, thread, op.is_write, op.seq,
                  telemetry::OpPhase::kDone);
    ts.inflight.pop_front();
    any = true;
  }
  if (any) EmitRedWrite(inst, thread);
}

void CowbirdP4Engine::EmitRedWrite(Instance& inst, int thread) {
  // Phase IV: one write covering every pointer and counter, recycled from
  // the ACK that reported the data transfer.
  Pending p;
  p.kind = PendingKind::kRedWrite;
  p.thread = thread;
  p.length = static_cast<std::uint32_t>(core::kRedBlockBytes);
  p.segments = 1;
  p.raddr = inst.descriptor.layout.RedAddr(thread);
  p.rkey = inst.descriptor.compute_rkey;
  Admit(inst, inst.wr_compute, p);
}

// ---------------------------------------------------------------------------
// Ordered emission / Go-Back-N
// ---------------------------------------------------------------------------

CowbirdP4Engine::Pending& CowbirdP4Engine::AppendPending(SwitchQp& qp,
                                                         Pending pending) {
  pending.first_psn = qp.next_psn;
  qp.next_psn = rdma::PsnAdd(qp.next_psn, pending.segments);
  pending.emitted = false;
  ++qp.unemitted;
  qp.pending.push_back(pending);
  return qp.pending.back();
}

void CowbirdP4Engine::Admit(Instance& inst, SwitchQp& qp, Pending pending) {
  // PSN order must equal emission order: while anything already admitted is
  // still (partially) off the wire, switch-generated requests wait.
  if (qp.unemitted > 0) {
    qp.deferred.push_back(std::move(pending));
    return;
  }
  AppendPending(qp, pending);
  WalkAndEmit(inst, qp);
}

bool CowbirdP4Engine::IsFrontier(const SwitchQp& qp,
                                 const Pending& pending) const {
  for (const auto& p : qp.pending) {
    if (&p == &pending) return true;
    if (!p.emitted) return false;
  }
  return false;
}

void CowbirdP4Engine::WalkAndEmit(Instance& inst, SwitchQp& qp) {
  bool progress = true;
  while (progress) {
    progress = false;
    bool blocked = false;
    for (auto& p : qp.pending) {
      if (p.emitted) continue;
      if (p.kind == PendingKind::kPayloadWrite ||
          p.kind == PendingKind::kPoolWrite) {
        if (p.bytes_sent >= p.length) {
          p.emitted = true;
          --qp.unemitted;
          progress = true;
          continue;
        }
        if (p.pool_reissue_needed) {
          p.pool_reissue_needed = false;
          // Rebuild the source read on the other QP (idempotent re-fetch);
          // its responses re-convert onto this pending's reserved PSN span.
          // Skip when the original source read is still pending — its
          // responses will arrive and convert. A pending that is not done
          // always has a live op (ops retire only after their write ACKs).
          ThreadState& ts = inst.threads[p.thread];
          Op* op = FindOpImpl(ts.inflight, p.seq,
                              p.kind == PendingKind::kPoolWrite);
          COWBIRD_CHECK(op != nullptr);
          SwitchQp* source_qp;
          PendingKind source_kind;
          std::optional<core::Translation> src;
          if (p.kind == PendingKind::kPoolWrite) {
            source_qp = &inst.to_compute;
            source_kind = PendingKind::kWriteDataFetch;
          } else {
            src = MustTranslate(inst.translation, op->meta.region_id,
                                op->meta.req_addr, op->meta.length);
            source_qp = &PoolReadQp(inst, src->node);
            source_kind = PendingKind::kPoolRead;
          }
          bool source_alive = false;
          for (const auto* queue :
               {&source_qp->pending, &source_qp->deferred}) {
            for (const auto& sp : *queue) {
              if (sp.kind == source_kind && sp.thread == p.thread &&
                  sp.seq == p.seq && !sp.done) {
                source_alive = true;
                break;
              }
            }
            if (source_alive) break;
          }
          if (!source_alive) {
            Pending fetch;
            fetch.thread = p.thread;
            fetch.seq = p.seq;
            fetch.length = op->meta.length;
            fetch.segments = rdma::SegmentCount(op->meta.length);
            if (p.kind == PendingKind::kPoolWrite) {
              fetch.kind = PendingKind::kWriteDataFetch;
              fetch.is_write_op = true;
              fetch.raddr = op->meta.req_addr;
              fetch.rkey = inst.descriptor.compute_rkey;
            } else {
              fetch.kind = PendingKind::kPoolRead;
              fetch.raddr = src->addr;
              fetch.rkey = src->rkey;
            }
            Admit(inst, *source_qp, fetch);
          }
        }
        // Later entries wait for this write to finish streaming (strict
        // PSN order on the wire).
        blocked = true;
        break;
      }
      EmitRequestPacket(inst, qp, p);
      p.emitted = true;
      --qp.unemitted;
      progress = true;
    }
    // Everything on the wire: admit one deferred request and loop.
    if (!blocked && qp.unemitted == 0 && !qp.deferred.empty()) {
      Pending d = std::move(qp.deferred.front());
      qp.deferred.pop_front();
      AppendPending(qp, d);
      progress = true;
    }
  }
  ArmTimer(inst, qp);
}

void CowbirdP4Engine::EmitRequestPacket(Instance& inst, SwitchQp& qp,
                                        Pending& pending) {
  switch (pending.kind) {
    case PendingKind::kProbe:
    case PendingKind::kMetaFetch:
    case PendingKind::kWriteDataFetch:
    case PendingKind::kPoolRead: {
      rdma::Reth reth{pending.raddr, pending.rkey, pending.length};
      const net::Priority priority = pending.kind == PendingKind::kProbe
                                         ? net::Priority::kProbe
                                         : net::Priority::kRdma;
      SendPacket(BuildRequest(qp, rdma::Opcode::kReadRequest,
                              pending.first_psn, false, &reth, {},
                              priority));
      break;
    }
    case PendingKind::kRedWrite: {
      // Payload composed from the progress registers *at emission time* —
      // cumulative values make replays safe.
      const ThreadState& ts = inst.threads[pending.thread];
      std::uint8_t block[core::kRedBlockBytes];
      offload::ProgressPublisher::Pack(ts.progress, block);
      rdma::Reth reth{pending.raddr, pending.rkey, pending.length};
      SendPacket(BuildRequest(qp, rdma::Opcode::kWriteOnly,
                              pending.first_psn, /*ack_request=*/true, &reth,
                              std::span<const std::uint8_t>(
                                  block, core::kRedBlockBytes),
                              net::Priority::kRdma));
      break;
    }
    default:
      COWBIRD_CHECK(false);  // conversion-driven kinds never come here
  }
}

void CowbirdP4Engine::PopDonePendings(SwitchQp& qp) {
  while (!qp.pending.empty() && qp.pending.front().done) {
    const Pending& p = qp.pending.front();
    qp.committed_psn = rdma::PsnAdd(p.first_psn, p.segments);
    qp.pending.pop_front();
  }
  if (qp.pending.empty()) qp.timer.Cancel();
}

void CowbirdP4Engine::ArmTimer(Instance& inst, SwitchQp& qp) {
  qp.timer.Cancel();
  if (qp.pending.empty()) return;
  qp.timer = sim_->ScheduleCancelableAfter(
      config_.gbn_timeout, [this, &inst, &qp] { Recover(inst, qp); });
}

void CowbirdP4Engine::Recover(Instance& inst, SwitchQp& qp) {

  if (qp.pending.empty()) return;
  ++recoveries_;
  if (auto* hub = config_.telemetry) {
    hub->tracer.Instant("p4/gbn", "recover");
  }
  // Go-Back-N (Section 5.3): rewind the send PSN to the committed boundary
  // and re-walk the pending FIFO. Duplicate packets are absorbed by the
  // host responder (reads re-execute, writes re-ACK).
  std::uint32_t psn = qp.committed_psn;
  qp.unemitted = 0;
  for (auto& p : qp.pending) {
    p.first_psn = psn;
    psn = rdma::PsnAdd(psn, p.segments);
    if (p.done) {
      // A cumulative ACK can complete a later entry while an earlier one
      // still waits for its (lost) response, leaving done entries stuck
      // mid-FIFO. They keep their PSN span — the layout on the wire must
      // not shift — but are never re-emitted: the responder ACKed them,
      // and their op may already be retired from the inflight table.
      p.emitted = true;
      continue;
    }
    p.emitted = false;
    ++qp.unemitted;
    if (IsReadKindImpl(static_cast<int>(p.kind))) {
      p.bytes_done = 0;
    } else if (p.kind == PendingKind::kPayloadWrite ||
               p.kind == PendingKind::kPoolWrite) {
      p.bytes_sent = 0;
      p.pool_reissue_needed = true;
    }
  }
  qp.next_psn = psn;
  WalkAndEmit(inst, qp);
}

// ---------------------------------------------------------------------------
// Packet construction
// ---------------------------------------------------------------------------

net::Packet CowbirdP4Engine::BuildRequest(
    const SwitchQp& qp, rdma::Opcode opcode, std::uint32_t psn,
    bool ack_request, const rdma::Reth* reth,
    std::span<const std::uint8_t> payload, net::Priority priority) {
  rdma::Bth bth;
  bth.opcode = opcode;
  bth.ack_request = ack_request;
  bth.dest_qp = qp.host.host_qpn;
  bth.psn = psn & rdma::kPsnMask;
  net::Packet packet =
      rdma::BuildRdmaPacket(config_.switch_node_id, qp.host.node, priority,
                            bth, reth, nullptr, payload);
  if (config_.ecn_capable && priority != net::Priority::kControl) {
    packet.SetEcnBits(net::kEcnEct0);
  }
  return packet;
}

void CowbirdP4Engine::SendPacket(net::Packet packet) {
  const int port = sw_->RouteFor(packet.dst);
  COWBIRD_CHECK(port >= 0);
  // Direct egress enqueue: recycling happens in the same pipeline pass, no
  // recirculation (requirement S2).
  sw_->EnqueueEgress(port, std::move(packet));
}

P4PipelineSpec CowbirdP4Engine::BuildPipelineSpec() const {
  P4SpecParams params;
  params.instances = std::max<int>(1, static_cast<int>(instances_.size()));
  params.threads = instances_.empty()
                       ? 16
                       : instances_[0]->descriptor.layout.threads;
  params.max_inflight = config_.max_inflight_per_thread;
  params.meta_entries_per_fetch = config_.meta_entries_per_fetch;
  for (const auto& inst : instances_) {
    params.translation_ranges = std::max(
        params.translation_ranges, static_cast<int>(inst->translation.size()));
  }
  return BuildCowbirdP4Spec(params);
}

// ---------------------------------------------------------------------------
// Phase I plumbing
// ---------------------------------------------------------------------------

namespace {
HostEndpoint SetupHostEndpoint(rdma::Device& dev, net::NodeId switch_id,
                               std::uint32_t switch_qpn,
                               std::uint32_t host_psn,
                               std::uint32_t switch_psn) {
  auto* cq = dev.CreateCq();
  auto* qp = dev.CreateQp(cq, cq);
  qp->Connect(switch_id, switch_qpn, host_psn, switch_psn);
  HostEndpoint ep;
  ep.node = dev.node_id();
  ep.host_qpn = qp->qpn();
  ep.switch_qpn = switch_qpn;
  ep.start_psn = switch_psn;
  return ep;
}
}  // namespace

P4Connection ConnectP4Engine(CowbirdP4Engine& engine, net::NodeId switch_id,
                             rdma::Device& compute, rdma::Device& memory,
                             std::uint32_t qpn_base) {
  (void)engine;
  P4Connection conn;
  auto setup = [&](rdma::Device& dev, std::uint32_t switch_qpn,
                   std::uint32_t host_psn,
                   std::uint32_t switch_psn) -> HostEndpoint {
    return SetupHostEndpoint(dev, switch_id, switch_qpn, host_psn,
                             switch_psn);
  };
  conn.compute = setup(compute, qpn_base, 1000, 5000);
  conn.probe = setup(compute, qpn_base + 1, 1500, 5500);
  conn.memory = setup(memory, qpn_base + 2, 2000, 6000);
  conn.wr_compute = setup(compute, qpn_base + 3, 2500, 6500);
  conn.wr_memory = setup(memory, qpn_base + 4, 3000, 7000);
  return conn;
}

P4Connection ConnectP4Engine(CowbirdP4Engine& engine, net::NodeId switch_id,
                             rdma::Device& compute,
                             std::span<rdma::Device* const> memories,
                             std::uint32_t qpn_base) {
  COWBIRD_CHECK(!memories.empty());
  P4Connection conn =
      ConnectP4Engine(engine, switch_id, compute, *memories[0], qpn_base);
  std::uint32_t qpn = qpn_base + 5;
  for (std::uint32_t i = 1; i < memories.size(); ++i) {
    rdma::Device& dev = *memories[i];
    // Per-server PSN offsets keep every stream disjoint from the primary
    // pair (2000/6000, 3000/7000) and from each other.
    const HostEndpoint mem = SetupHostEndpoint(
        dev, switch_id, qpn++, 2000 + 100 * i, 6000 + 100 * i);
    const HostEndpoint wr = SetupHostEndpoint(
        dev, switch_id, qpn++, 3000 + 100 * i, 7000 + 100 * i);
    conn.extra_memory.emplace_back(mem, wr);
  }
  return conn;
}

}  // namespace cowbird::p4
