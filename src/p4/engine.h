// Cowbird-P4 offload engine (Section 5).
//
// The engine lives inside the switch's packet pipeline (net::PacketProcessor)
// and *recycles* RDMA packets instead of running a host stack:
//
//   Probe (Phase II)  — a packet generator emits lowest-priority RDMA read
//     requests for the packed green-block region; the response's payload is
//     parsed in the pipeline and compared against tail registers.
//   Fetch             — a moved tail recycles the probe response into a read
//     of the request-metadata ring (bounded entries per fetch — what fits
//     in the PHV).
//   Execute (Phase III) — read ops: a read request is sent to the memory
//     pool; each response packet is rewritten header-only (READ_RESP_* →
//     WRITE_*) toward the compute node's response ring, payload untouched.
//     Write ops: the payload is fetched from the compute data ring and the
//     response packets are rewritten into WRITE_* toward the pool.
//   Complete (Phase IV) — the ACK returning from the payload write is
//     recycled into a single RDMA write of the packed red block (pointers +
//     progress counters).
//
// Consistency: the pipeline is the serialization point. Within a type,
// execution follows metadata order. Across types, the engine *pauses all
// newly probed reads* while any write of that thread is in flight — RMT
// pipelines cannot do range comparisons over in-flight sets, so the paper's
// Cowbird-P4 conservatively fences everything (Section 5.3); contrast with
// the exact range check in spot/agent.h.
//
// Fault tolerance: per-QP Go-Back-N. Every request the switch makes is held
// in a pending FIFO with enough register state to rebuild it. On timeout or
// NAK, the switch resets its send PSN to the committed boundary and re-walks
// the FIFO in order; payload writes (whose bytes the switch never stores)
// are rebuilt by re-issuing the idempotent pool read and re-converting the
// responses onto their original, reserved PSN span.
//
// QP layout per instance: switch-generated read requests and recycled write
// streams never share a QP. A write stream mid-conversion blocks everything
// behind it in PSN order, so putting the reads that *feed* conversions on
// the same QP deadlocks under loss: each QP's front write waits for a
// re-fetch read stuck behind the other QP's front write. Read-only QPs
// always drain, so the recovery re-fetch is always emittable.
//
// Multiple instances are probed in a time-division round-robin (Section
// 5.4); a QPN→instance mapping resolves all non-probe packets.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "common/pool.h"
#include "common/units.h"
#include "core/instance.h"
#include "core/request.h"
#include "net/switch.h"
#include "offload/hazard_tracker.h"
#include "offload/probe_scheduler.h"
#include "offload/progress.h"
#include "rdma/device.h"
#include "rdma/qp.h"
#include "p4/resources.h"
#include "rdma/wire.h"
#include "sim/simulation.h"
#include "telemetry/hub.h"

namespace cowbird::p4 {

// Host-side endpoint the switch speaks RDMA with (established by the
// control plane in Phase I).
struct HostEndpoint {
  net::NodeId node = 0;
  std::uint32_t host_qpn = 0;    // QP on the host, responder role
  std::uint32_t switch_qpn = 0;  // QPN the host believes it is talking to
  std::uint32_t start_psn = 0;   // switch's initial send PSN toward the host
};

// The five QPs Phase I establishes per instance. Requests and recycled write
// streams are deliberately separate (see the fault-tolerance note above).
// Elastic pool (DESIGN.md §14): every memory server beyond the first adds
// one (pool-read, pool-write) endpoint pair with the same read/write QP
// split; the in-switch translation table picks the pair per operation.
struct P4Connection {
  HostEndpoint compute;     // metadata / data-ring reads (compute node)
  HostEndpoint probe;       // lowest-priority green-region probes
  HostEndpoint memory;      // pool reads (primary memory node)
  HostEndpoint wr_compute;  // recycled payload writes + red writes
  HostEndpoint wr_memory;   // recycled pool writes (primary memory node)
  // (pool read, pool write) per additional memory server.
  std::vector<std::pair<HostEndpoint, HostEndpoint>> extra_memory;
};

class CowbirdP4Engine : public net::PacketProcessor {
 public:
  // TDM selection now lives in the shared offload core (Section 5.4).
  using ProbePolicy = offload::ProbeSelection;

  struct Config {
    net::NodeId switch_node_id = 100;
    Nanos probe_interval = Micros(2);  // 1 probe / 2 us (Section 5.2)
    ProbePolicy probe_policy = ProbePolicy::kRoundRobin;
    // Section 5.2 ramp-up: back off while idle, snap back on activity.
    bool adaptive_probe = false;
    Nanos probe_interval_max = Micros(64);
    Nanos gbn_timeout = Micros(100);
    // Metadata entries fetched per read: limited by what the parser can
    // walk through the PHV (Section 5.2 fetches head→tail; the PHV bounds
    // one packet's parsed entries).
    int meta_entries_per_fetch = 8;
    // In-flight operations per thread the pending "hash table" can hold.
    int max_inflight_per_thread = 64;
    // TEST-ONLY: disables the pause-all-reads write fence (Section 5.3).
    // Exists so the chaos harness can prove its linearizability checker
    // catches a real consistency bug; never enable outside tests.
    bool chaos_unsafe_skip_hazards = false;
    // Stamps switch-generated data packets ECT(0) so congested egress
    // queues can CE-mark them. The RMT pipeline keeps no per-flow rate
    // state, so CNPs that come back are *reflected* to the memory host's
    // endpoint (see ConsumeRdma) — the host NIC's DCQCN does the pacing.
    bool ecn_capable = false;
    // Optional telemetry hub: op lifecycle phases (parsed/execute/done),
    // probe spans, per-instance queue-depth gauges, and engine counters.
    // nullptr = telemetry off.
    telemetry::Hub* telemetry = nullptr;
  };

  CowbirdP4Engine(net::Switch& sw, Config config);
  ~CowbirdP4Engine();

  // Control-plane RPC (Phase I): registers an instance with its descriptor
  // and established QPs. Every memory server the descriptor's translation
  // table references must have an endpoint (conn.memory or an extra_memory
  // pair) — checked here, not on the data path. When `resume` is non-null
  // the instance continues from a progress snapshot exported by another
  // engine (InstanceRegistry migration) instead of starting fresh.
  void AddInstance(const core::InstanceDescriptor& descriptor,
                   const P4Connection& conn,
                   const offload::InstanceProgress* resume = nullptr);

  // Tears down an instance (control-plane channel termination). Returns
  // false if the instance id is unknown.
  bool RemoveInstance(std::uint32_t instance_id);

  // Red-block counters for every thread of an instance — the snapshot an
  // InstanceRegistry migration hands to the engine taking over. Exported
  // counters only cover *completed* work; a drained instance (no in-flight
  // ops) resumes losslessly, an undrained one re-executes the tail
  // idempotently on the new engine.
  std::optional<offload::InstanceProgress> ExportProgress(
      std::uint32_t instance_id) const;

  // Stops the probe generator (engine decommission). In-flight operations
  // keep completing through the pipeline; no new probes are emitted.
  void StopProbing() { probing_stopped_ = true; }

  // Installs the control-plane endpoint handler (packets to the switch's
  // UDP control port are routed here instead of the RDMA pipeline).
  void SetControlHandler(std::function<void(const net::Packet&)> handler) {
    control_handler_ = std::move(handler);
  }

  void Start();

  // net::PacketProcessor: every packet entering the switch.
  void Process(net::Switch& sw, int ingress_port, net::Packet packet,
               std::vector<net::ForwardAction>& out) override;

  // Table 5: resource usage of the configured pipeline.
  P4PipelineSpec BuildPipelineSpec() const;

  // Counters.
  std::uint64_t probes_sent() const { return probes_sent_; }
  std::uint64_t pending_depth_compute(std::size_t instance) const {
    return instances_[instance]->to_compute.pending.size();
  }
  std::uint64_t packets_recycled() const { return packets_recycled_; }
  std::uint64_t ops_completed() const { return ops_completed_; }
  std::uint64_t reads_paused_by_writes() const {
    return reads_paused_by_writes_;
  }
  std::uint64_t recoveries() const { return recoveries_; }
  std::uint64_t cnps_reflected() const { return cnps_reflected_; }

 public:
  enum class PendingKind : std::uint8_t {
    kProbe,           // read of the green region
    kMetaFetch,       // read of request-metadata entries
    kWriteDataFetch,  // read of the compute data ring (write op payload)
    kPoolRead,        // read of the pool (read op data)
    kPayloadWrite,    // write of read-op data toward the compute node
    kPoolWrite,       // write of write-op data toward the pool
    kRedWrite,        // Phase IV bookkeeping write
  };

  struct Op {
    core::RequestMetadata meta;
    std::uint64_t seq = 0;
    bool is_write = false;
    bool done = false;
    // Set when a conversion chunk had to be discarded before its
    // destination stream existed; the probe-periodic sweep re-fetches.
    bool refetch_needed = false;
    // Hazard-window handle for writes (pause-all-reads fence).
    offload::HazardTracker::Ticket hazard_ticket = 0;
  };

  struct Pending {
    PendingKind kind;
    std::uint32_t first_psn = 0;
    std::uint32_t segments = 1;
    std::uint32_t bytes_done = 0;   // read-response progress
    bool emitted = false;           // request sent since last (re)walk
    bool done = false;              // response/ack received
    int thread = 0;
    std::uint64_t seq = 0;          // op sequence (per type)
    bool is_write_op = false;
    // Rebuild info for reads the switch originates.
    std::uint64_t raddr = 0;
    std::uint32_t rkey = 0;
    std::uint32_t length = 0;
    // kMetaFetch: ring cursor + entry count.
    std::uint64_t fetch_cursor = 0;
    std::uint32_t fetch_count = 0;
    // kPayloadWrite: conversion progress (bytes of payload re-emitted).
    std::uint32_t bytes_sent = 0;
    bool pool_reissue_needed = false;
  };

  struct SwitchQp {
    HostEndpoint host;
    std::uint32_t next_psn = 0;       // next request PSN to assign
    std::uint32_t committed_psn = 0;  // everything below is fully done
    // Invariant: `pending` is in PSN order AND emission order. Entries are
    // admitted (PSN assigned) only when everything before them is fully on
    // the wire; switch-generated requests that arrive while a conversion
    // stream is mid-flight wait in `deferred`.
    FixedDeque<Pending> pending;
    FixedDeque<Pending> deferred;
    int unemitted = 0;
    sim::TimerHandle timer;
  };

  struct ThreadState {
    std::uint64_t tail_seen = 0;
    std::uint64_t fetch_cursor = 0;   // metadata entries fetched
    // Red-block counters (meta_head, data_head, resp_tail, progress seqs):
    // the completed boundary published in Phase IV.
    offload::ThreadProgress progress;
    std::uint64_t next_read_seq = 0;
    std::uint64_t next_write_seq = 0;
    // Section 5.3 pause-all-reads fence, via the shared hazard core.
    offload::HazardTracker hazards{
        offload::HazardTracker::Policy::kFenceAllReads};
    FixedDeque<Op> inflight;          // fetch order
    bool meta_fetch_inflight = false;
  };

  // One extra memory server's QP pair, same read/write split as the
  // primary. Heap-allocated so SwitchQp addresses stay stable for the
  // retransmission-timer captures.
  struct MemoryPath {
    SwitchQp to_memory;
    SwitchQp wr_memory;
  };

  struct Instance {
    core::InstanceDescriptor descriptor;
    // In-switch translation mirror (the ig3_range_translate stage): every
    // pool access range-matches (region, vaddr) to {server, rkey, offset}.
    // Copied from the descriptor at attach, never mutated while attached.
    core::TranslationTable translation;
    std::uint64_t activity_credit = 0;  // recent tail movement (TDM weight)
    SwitchQp to_compute;  // metadata + data-ring reads (never blocks)
    SwitchQp to_probe;    // dedicated QP for lowest-priority probes: probe
                          // packets may be overtaken by higher classes, so
                          // they cannot share a PSN space with data
    SwitchQp to_memory;   // pool reads, primary server (never blocks)
    // Recycled write streams: a conversion mid-stream stalls its QP until
    // fed, so writes get QPs of their own — the reads that feed them (and
    // rebuild them after Go-Back-N) stay emittable. See the header comment.
    SwitchQp wr_compute;  // payload writes (read delivery) + red writes
    SwitchQp wr_memory;   // pool writes, primary server (write-op data)
    // Additional memory servers (elastic pool), one pair each.
    std::vector<std::unique_ptr<MemoryPath>> extra_paths;
    std::vector<ThreadState> threads;
    bool probe_inflight = false;
    // Telemetry: probe round-trip span + precomputed track name.
    telemetry::SpanTracer::SpanHandle probe_span;
    std::string probe_track;
  };

  // --- probe generator ---
 private:
  void ProbeTick();
  void EmitProbe(Instance& inst);

  // --- pipeline packet handling ---
  void ConsumeRdma(net::Packet packet);
  void HandleReadResponse(Instance& inst, SwitchQp& qp,
                          const rdma::RdmaMessageView& view,
                          const net::Packet& packet);
  void HandleAck(Instance& inst, SwitchQp& qp,
                 const rdma::RdmaMessageView& view);

  // --- pending completion effects ---
  void OnProbeData(Instance& inst, const rdma::RdmaMessageView& view);
  void OnMetaData(Instance& inst, Pending& pending,
                  const rdma::RdmaMessageView& view);
  void OnWritePayloadChunk(Instance& inst, Pending& pending,
                           const rdma::RdmaMessageView& view,
                           std::uint32_t chunk_offset);
  void OnPoolReadChunk(Instance& inst, Pending& pending,
                       const rdma::RdmaMessageView& view,
                       std::uint32_t chunk_offset);
  void OnPayloadWriteAcked(Instance& inst, Pending& pending);
  void OnPoolWriteAcked(Instance& inst, Pending& pending);
  void CompleteOpsInOrder(Instance& inst, int thread);
  void EmitRedWrite(Instance& inst, int thread);

  // --- request scheduling with ordered emission (GBN-safe) ---
  Pending& AppendPending(SwitchQp& qp, Pending pending);
  void Admit(Instance& inst, SwitchQp& qp, Pending pending);
  bool IsFrontier(const SwitchQp& qp, const Pending& pending) const;
  void WalkAndEmit(Instance& inst, SwitchQp& qp);
  void EmitRequestPacket(Instance& inst, SwitchQp& qp, Pending& pending);
  void PopDonePendings(SwitchQp& qp);
  void MaybeFetchMetadata(Instance& inst, int thread);
  void RefetchOrphans(Instance& inst);
  void StartOps(Instance& inst, int thread);

  // Pool QP selection by owning server (translation output). The primary
  // pair serves conn.memory's node; extra servers get their own pair.
  SwitchQp& PoolReadQp(Instance& inst, net::NodeId node);
  SwitchQp& PoolWriteQp(Instance& inst, net::NodeId node);

  // --- fault tolerance ---
  void ArmTimer(Instance& inst, SwitchQp& qp);
  void Recover(Instance& inst, SwitchQp& qp);

  void SendPacket(net::Packet packet);
  net::Packet BuildRequest(const SwitchQp& qp, rdma::Opcode opcode,
                           std::uint32_t psn, bool ack_request,
                           const rdma::Reth* reth,
                           std::span<const std::uint8_t> payload,
                           net::Priority priority);

  // --- telemetry ---
  telemetry::Labels EngineLabels() const;
  telemetry::Labels InstanceLabels(std::uint32_t instance_id) const;
  void RegisterInstanceTelemetry(Instance& inst);
  void UnregisterInstanceTelemetry(std::uint32_t instance_id);
  void RecordOpPhase(const Instance& inst, int thread, bool is_write,
                     std::uint64_t seq, telemetry::OpPhase phase) {
    if (config_.telemetry != nullptr) {
      config_.telemetry->tracer.RecordOp(
          telemetry::OpKey{inst.descriptor.instance_id,
                           static_cast<std::uint32_t>(thread), is_write, seq},
          phase);
    }
  }

  Instance* InstanceForQpn(std::uint32_t switch_qpn, SwitchQp** qp);

  net::Switch* sw_;
  sim::Simulation* sim_;
  Config config_;
  std::vector<std::unique_ptr<Instance>> instances_;
  offload::ProbeScheduler scheduler_;  // TDM + adaptive ramp (shared core)
  std::function<void(const net::Packet&)> control_handler_;
  bool started_ = false;
  bool probing_stopped_ = false;
  std::uint32_t next_switch_qpn_ = 0x800;

  std::uint64_t probes_sent_ = 0;
  std::uint64_t packets_recycled_ = 0;
  std::uint64_t ops_completed_ = 0;
  std::uint64_t reads_paused_by_writes_ = 0;
  std::uint64_t recoveries_ = 0;
  std::uint64_t cnps_reflected_ = 0;
};

// Phase I helper: creates responder QPs on the hosts and wires them to the
// switch endpoint identity. Consumes five switch QPNs starting at qpn_base.
P4Connection ConnectP4Engine(CowbirdP4Engine& engine, net::NodeId switch_id,
                             rdma::Device& compute, rdma::Device& memory,
                             std::uint32_t qpn_base);

// Multi-server variant (elastic pool): memories[0] is the primary endpoint
// with the exact QPN/PSN layout of the two-device overload; every further
// server consumes two more switch QPNs (read + write pair) with per-server
// PSN offsets. Consumes 5 + 2*(memories.size()-1) QPNs from qpn_base.
P4Connection ConnectP4Engine(CowbirdP4Engine& engine, net::NodeId switch_id,
                             rdma::Device& compute,
                             std::span<rdma::Device* const> memories,
                             std::uint32_t qpn_base);

}  // namespace cowbird::p4
