#include "p4/resources.h"

namespace cowbird::p4 {

P4PipelineSpec BuildCowbirdP4Spec(const P4SpecParams& p) {
  P4PipelineSpec spec;

  // --- PHV: parsed headers + bridged metadata ------------------------------
  // Headers the parser extracts (Table 4 plus encapsulation).
  spec.phv = {
      {"ethernet", 112},
      {"ipv4", 160},
      {"udp", 64},
      {"bth", 96},
      {"reth", 128},
      {"aeth", 32},
      // Bridged/ingress metadata: instance id, thread id, op kind, pending
      // slot index, PSN scratch, cursor scratch, recycle opcode map, flags.
      {"md.instance", 16},
      {"md.thread", 16},
      {"md.kind", 8},
      {"md.pending_slot", 32},
      {"md.psn_scratch", 48},
      {"md.cursor_scratch", 64},
      {"md.addr_scratch", 128},
      {"md.len_scratch", 32},
      {"md.counter_scratch", 128},
      {"md.flags", 21},
  };

  const auto iq = static_cast<std::uint64_t>(p.instances);
  const auto tq = static_cast<std::uint64_t>(p.threads);
  const auto fq = static_cast<std::uint64_t>(p.max_inflight);
  const auto rq = static_cast<std::uint64_t>(p.translation_ranges);

  // --- Stages --------------------------------------------------------------
  // Entry sizes (bits) for the stateful structures.
  constexpr std::uint64_t kQpnMapEntry = 96;       // qpn → instance/role
  constexpr std::uint64_t kRegionEntry = 160;      // region → node/rkey/base
  constexpr std::uint64_t kPendingEntry = 288;     // rebuild + progress state
  constexpr std::uint64_t kCounterBlock = 5 * 64;  // red-block registers
  constexpr std::uint64_t kTailBlock = 3 * 64;     // probe-side cursors
  constexpr std::uint64_t kQpState = 256;          // PSNs per switch QP
  // Range translation (elastic pool): the match key is region id + vaddr;
  // a range match compiles to ~2 TCAM prefixes per entry, and the action
  // data rewrites {server, rkey, remote offset}.
  constexpr std::uint64_t kRangeKey = 80;      // region(16) + vaddr(64)
  constexpr std::uint64_t kRangeAction = 160;  // node/rkey/base rewrite

  spec.stages = {
      // Ingress.
      {"ig0_port_and_roce_classify", /*sram=*/32 * 1024 * 8,
       /*tcam=*/static_cast<std::uint64_t>(1.25 * 1024 * 8), /*vliw=*/3, /*salu=*/0},
      {"ig1_qpn_to_instance", iq * 128 * kQpnMapEntry, 0, 3, 0},
      {"ig2_region_table", iq * 64 * kRegionEntry, 0, 2, 0},
      // Elastic pool (DESIGN.md §14): range-match the virtual pool address
      // to the owning memory server and rewrite raddr/rkey in the PHV.
      {"ig3_range_translate", iq * rq * kRangeAction,
       iq * rq * kRangeKey * 2, 3, 0},
      {"ig4_probe_tail_compare", iq * tq * kTailBlock, 0, 3, 2},
      {"ig5_meta_cursor_update", iq * tq * kTailBlock, 0, 3, 1},
      {"ig6_write_fence", iq * tq * 64, 0, 2, 1},
      {"ig7_pending_table_lookup", iq * tq * fq * kPendingEntry, 0, 4, 2},
      // Egress.
      {"eg0_psn_allocate", iq * 2 * kQpState, 0, 4, 2},
      {"eg1_opcode_rewrite", 16 * 1024 * 8, 0, 5, 0},
      {"eg2_header_rebuild", 8 * 1024 * 8, 0, 5, 0},
      {"eg3_progress_counters", iq * tq * kCounterBlock, 0, 2, 2},
      {"eg4_tdm_and_ack", iq * 64 + 64 * 1024 * 8, 0, 2, 1},
  };

  return spec;
}

}  // namespace cowbird::p4
