// RMT pipeline resource model (Table 5).
//
// The Cowbird-P4 logic is laid out as match-action stages below; the
// estimator sums the resources each stage declares, with table/register
// sizes derived from the engine configuration (instances, threads,
// in-flight budget). Running `bench/table5_resources` for the paper's
// worst case — all 32 ports driving Cowbird — reproduces the Table 5 row.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"

namespace cowbird::p4 {

struct P4StageSpec {
  std::string name;
  std::uint64_t sram_bits = 0;
  std::uint64_t tcam_bits = 0;
  int vliw_instructions = 0;
  int stateful_alus = 0;
};

struct P4PipelineSpec {
  // PHV allocation is pipeline-wide: headers + bridged metadata.
  struct PhvField {
    std::string name;
    int bits;
  };
  std::vector<PhvField> phv;
  std::vector<P4StageSpec> stages;

  struct Totals {
    int phv_bits = 0;
    double sram_kib = 0;
    double tcam_kib = 0;
    int stages = 0;
    int vliw_instructions = 0;
    int stateful_alus = 0;
  };

  Totals Sum() const {
    Totals t;
    for (const auto& f : phv) t.phv_bits += f.bits;
    for (const auto& s : stages) {
      t.sram_kib += static_cast<double>(s.sram_bits) / 8.0 / 1024.0;
      t.tcam_kib += static_cast<double>(s.tcam_bits) / 8.0 / 1024.0;
      t.vliw_instructions += s.vliw_instructions;
      t.stateful_alus += s.stateful_alus;
    }
    t.stages = static_cast<int>(stages.size());
    return t;
  }
};

struct P4SpecParams {
  int instances = 32;   // worst case: every port runs Cowbird
  int threads = 16;     // hardware threads per compute node
  int max_inflight = 64;
  int meta_entries_per_fetch = 8;
  // Elastic-pool range-translation entries per instance (the
  // ig3_range_translate TCAM stage, DESIGN.md §14). The default covers a
  // region split across a handful of servers; single-server identity
  // tables need one entry per region.
  int translation_ranges = 4;
};

// Builds the stage-by-stage layout of the Cowbird-P4 program.
P4PipelineSpec BuildCowbirdP4Spec(const P4SpecParams& params);

}  // namespace cowbird::p4
