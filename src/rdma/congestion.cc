#include "rdma/congestion.h"

#include <algorithm>
#include <string>

#include "common/check.h"
#include "rdma/device.h"
#include "rdma/qp.h"

namespace cowbird::rdma {

CongestionManager::CongestionManager(Device& device,
                                     const DcqcnConfig& config,
                                     double line_rate_gbps)
    : device_(&device), config_(config), line_rate_gbps_(line_rate_gbps) {
  COWBIRD_CHECK(line_rate_gbps_ > 0);
}

CongestionManager::~CongestionManager() { UnbindTelemetry(); }

CongestionManager::Flow& CongestionManager::FlowFor(std::uint32_t qpn) {
  COWBIRD_CHECK(qpn >= 1);
  if (flows_.size() < qpn) {
    const std::size_t first_new = flows_.size();
    flows_.resize(qpn);
    for (std::size_t i = first_new; i < flows_.size(); ++i) {
      flows_[i].rate_gbps = line_rate_gbps_;
      flows_[i].target_gbps = line_rate_gbps_;
      if (telemetry_registry_ != nullptr) {
        BindFlowGauge(static_cast<std::uint32_t>(i + 1));
      }
    }
  }
  return flows_[qpn - 1];
}

Nanos CongestionManager::ReserveSend(std::uint32_t qpn, Bytes wire_bytes) {
  Flow& flow = FlowFor(qpn);
  if (!flow.paced) return 0;
  const Nanos now = device_->simulation().Now();
  const Nanos start = std::max(now, flow.next_free);
  // Serialization time of this packet at the flow's current rate.
  const auto tx = static_cast<Nanos>(
      static_cast<double>(wire_bytes) * 8.0 / flow.rate_gbps);
  flow.next_free = start + tx;
  return start - now;
}

void CongestionManager::OnCnpReceived(std::uint32_t qpn) {
  Flow& flow = FlowFor(qpn);
  ++cnps_received_;
  ++rate_decreases_;
  // DCQCN reaction point: raise alpha, cut the rate, remember the pre-cut
  // rate as the recovery target.
  flow.alpha = (1.0 - config_.g) * flow.alpha + config_.g;
  flow.target_gbps = flow.rate_gbps;
  flow.rate_gbps = std::max(config_.min_rate_gbps,
                            flow.rate_gbps * (1.0 - flow.alpha / 2.0));
  flow.recovery_stage = 0;
  if (!flow.paced) {
    flow.paced = true;
    flow.next_free = device_->simulation().Now();
  }
  flow.alpha_timer.Cancel();
  flow.alpha_timer = device_->simulation().ScheduleCancelableAfter(
      config_.alpha_timer, [this, qpn] { DecayAlpha(qpn); });
  flow.recovery_timer.Cancel();
  flow.recovery_timer = device_->simulation().ScheduleCancelableAfter(
      config_.recovery_timer, [this, qpn] { RecoverRate(qpn); });
}

void CongestionManager::DecayAlpha(std::uint32_t qpn) {
  Flow& flow = flows_[qpn - 1];
  if (!flow.paced) return;
  flow.alpha *= 1.0 - config_.g;
  flow.alpha_timer = device_->simulation().ScheduleCancelableAfter(
      config_.alpha_timer, [this, qpn] { DecayAlpha(qpn); });
}

void CongestionManager::RecoverRate(std::uint32_t qpn) {
  Flow& flow = flows_[qpn - 1];
  if (!flow.paced) return;
  // The DCQCN increase ladder: fast recovery halves the gap to the pre-cut
  // target, then the target itself climbs additively, then hyperactively.
  if (flow.recovery_stage >= config_.fast_recovery_stages) {
    const bool hyper =
        flow.recovery_stage >= 2 * config_.fast_recovery_stages;
    flow.target_gbps = std::min(
        line_rate_gbps_, flow.target_gbps + (hyper ? config_.rate_hai_gbps
                                                   : config_.rate_ai_gbps));
  }
  flow.rate_gbps = (flow.rate_gbps + flow.target_gbps) / 2.0;
  ++flow.recovery_stage;
  if (flow.rate_gbps >= line_rate_gbps_ * 0.999) {
    StopPacing(qpn);
    return;
  }
  flow.recovery_timer = device_->simulation().ScheduleCancelableAfter(
      config_.recovery_timer, [this, qpn] { RecoverRate(qpn); });
}

void CongestionManager::StopPacing(std::uint32_t qpn) {
  Flow& flow = flows_[qpn - 1];
  flow.rate_gbps = line_rate_gbps_;
  flow.target_gbps = line_rate_gbps_;
  flow.alpha = 1.0;
  flow.paced = false;
  flow.recovery_stage = 0;
  flow.alpha_timer.Cancel();
  flow.recovery_timer.Cancel();
}

void CongestionManager::NoteCeMark(const QueuePair& qp) {
  Flow& flow = FlowFor(qp.qpn());
  const Nanos now = device_->simulation().Now();
  if (flow.last_cnp_out >= 0 &&
      now - flow.last_cnp_out < config_.cnp_interval) {
    return;
  }
  flow.last_cnp_out = now;
  ++cnps_sent_;
  Bth bth;
  bth.opcode = Opcode::kCnp;
  bth.dest_qp = qp.remote_qpn();  // the QP at the flow's *source*
  bth.psn = 0;
  net::Packet packet =
      BuildRdmaPacket(device_->node_id(), qp.remote_node(),
                      net::Priority::kControl, bth, nullptr, nullptr, {});
  device_->EmitPacket(std::move(packet));
}

double CongestionManager::FlowRateGbps(std::uint32_t qpn) const {
  if (qpn == 0 || qpn > flows_.size()) return line_rate_gbps_;
  return flows_[qpn - 1].rate_gbps;
}

void CongestionManager::BindFlowGauge(std::uint32_t qpn) {
  Flow& flow = flows_[qpn - 1];
  if (flow.gauge_bound) return;
  flow.gauge_bound = true;
  telemetry::Labels labels = telemetry_labels_;
  labels.emplace_back("qp", std::to_string(qpn));
  // Captured by index, not pointer: flows_ may reallocate as QPs appear.
  telemetry_registry_->RegisterCallbackGauge(
      "dcqcn_rate_gbps", labels, [this, qpn] {
        return static_cast<std::int64_t>(FlowRateGbps(qpn) *
                                         1000.0);  // milli-Gbps
      });
}

void CongestionManager::BindTelemetry(telemetry::MetricRegistry& registry,
                                      const telemetry::Labels& labels) {
  UnbindTelemetry();
  telemetry_registry_ = &registry;
  telemetry_labels_ = labels;
  registry.RegisterCallbackGauge("dcqcn_cnps_sent", labels, [this] {
    return static_cast<std::int64_t>(cnps_sent_);
  });
  registry.RegisterCallbackGauge("dcqcn_cnps_received", labels, [this] {
    return static_cast<std::int64_t>(cnps_received_);
  });
  registry.RegisterCallbackGauge("dcqcn_rate_decreases", labels, [this] {
    return static_cast<std::int64_t>(rate_decreases_);
  });
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    BindFlowGauge(static_cast<std::uint32_t>(i + 1));
  }
}

void CongestionManager::UnbindTelemetry() {
  if (telemetry_registry_ == nullptr) return;
  for (const char* name :
       {"dcqcn_cnps_sent", "dcqcn_cnps_received", "dcqcn_rate_decreases"}) {
    telemetry_registry_->UnregisterCallbackGauge(name, telemetry_labels_);
  }
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    if (!flows_[i].gauge_bound) continue;
    telemetry::Labels labels = telemetry_labels_;
    labels.emplace_back("qp", std::to_string(i + 1));
    telemetry_registry_->UnregisterCallbackGauge("dcqcn_rate_gbps", labels);
    flows_[i].gauge_bound = false;
  }
  telemetry_registry_ = nullptr;
  telemetry_labels_.clear();
}

}  // namespace cowbird::rdma
