// DCQCN-style congestion manager: the rate-control half of the RoCEv2
// engine split (the Go-Back-N half lives in rdma::ReliabilityManager).
//
// One manager per Device, one Flow per QP. The receiver side echoes
// CE-marked data packets as CNPs (rate-limited per flow); the sender side
// reacts to a CNP with a multiplicative rate decrease and then recovers
// through the standard DCQCN ladder — fast recovery toward the pre-cut
// target, additive increase, hyper increase — driven by cancelable timers
// on the virtual clock, so every run is deterministic.
//
// Pacing is exact-token: a paced flow's packets are admitted through a
// leaky bucket at the flow's current rate. A flow that has never seen a
// CNP (or has recovered to line rate) is not paced at all — its packets
// take the identical code path and timestamps as a congestion-disabled
// run, which is what keeps congestion-*enabled*-but-unmarked runs
// byte-identical to congestion-off goldens.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "rdma/params.h"
#include "sim/simulation.h"
#include "telemetry/metrics.h"

namespace cowbird::rdma {

class Device;
class QueuePair;

class CongestionManager {
 public:
  CongestionManager(Device& device, const DcqcnConfig& config,
                    double line_rate_gbps);
  CongestionManager(const CongestionManager&) = delete;
  CongestionManager& operator=(const CongestionManager&) = delete;
  ~CongestionManager();

  // Sender side: admission delay (ns from now) before `wire_bytes` may
  // leave on flow `qpn`, accounting its serialization at the flow rate.
  // Returns 0 for unpaced flows.
  Nanos ReserveSend(std::uint32_t qpn, Bytes wire_bytes);

  // Sender side: a CNP for local QP `qpn` arrived — cut the flow's rate.
  void OnCnpReceived(std::uint32_t qpn);

  // Receiver side: a CE-marked data packet arrived on `qp`; echo a CNP to
  // the flow's source unless one was sent within cnp_interval.
  void NoteCeMark(const QueuePair& qp);

  double FlowRateGbps(std::uint32_t qpn) const;
  std::uint64_t cnps_sent() const { return cnps_sent_; }
  std::uint64_t cnps_received() const { return cnps_received_; }
  std::uint64_t rate_decreases() const { return rate_decreases_; }

  // Aggregate counters plus a per-flow dcqcn_rate_gbps gauge (labelled
  // qp=<qpn>) for every flow that exists at bind time or is created while
  // bound. The manager must outlive the registry or UnbindTelemetry first.
  void BindTelemetry(telemetry::MetricRegistry& registry,
                     const telemetry::Labels& labels);
  void UnbindTelemetry();

 private:
  struct Flow {
    double rate_gbps = 0;
    double target_gbps = 0;
    double alpha = 1.0;
    bool paced = false;
    int recovery_stage = 0;
    Nanos next_free = 0;      // leaky bucket: earliest next departure
    Nanos last_cnp_out = -1;  // receiver-side echo rate limit
    sim::TimerHandle alpha_timer;
    sim::TimerHandle recovery_timer;
    bool gauge_bound = false;
  };

  Flow& FlowFor(std::uint32_t qpn);
  void DecayAlpha(std::uint32_t qpn);
  void RecoverRate(std::uint32_t qpn);
  void StopPacing(std::uint32_t qpn);
  void BindFlowGauge(std::uint32_t qpn);

  Device* device_;
  DcqcnConfig config_;
  double line_rate_gbps_;
  std::vector<Flow> flows_;  // indexed by qpn - 1, grown lazily
  std::uint64_t cnps_sent_ = 0;
  std::uint64_t cnps_received_ = 0;
  std::uint64_t rate_decreases_ = 0;
  telemetry::MetricRegistry* telemetry_registry_ = nullptr;
  telemetry::Labels telemetry_labels_;
};

}  // namespace cowbird::rdma
