#include "rdma/device.h"

#include <utility>

#include "rdma/congestion.h"
#include "rdma/qp.h"

namespace cowbird::rdma {

namespace {
// rkeys are sparse, non-sequential tokens (a real NIC hands out opaque
// values); a fixed multiplicative hash over the registration index keeps
// them deterministic across runs.
std::uint32_t MakeRkey(std::size_t index) {
  return static_cast<std::uint32_t>((index + 1) * 2654435761u) | 1u;
}
}  // namespace

Device::Device(net::HostNic& nic, SparseMemory& memory, NicConfig config)
    : nic_(&nic), memory_(&memory), config_(config) {
  nic_->SetPortReceiver(net::kRoceUdpPort,
                        [this](net::Packet p) { OnPacket(std::move(p)); });
  if (config_.dcqcn.enabled) {
    congestion_ = std::make_unique<CongestionManager>(
        *this, config_.dcqcn, nic_->uplink().rate().GbpsValue());
  }
}

Device::~Device() = default;

const MemoryRegion* Device::RegisterMemory(std::uint64_t base, Bytes length) {
  auto region = std::make_unique<MemoryRegion>();
  region->base = base;
  region->length = length;
  region->rkey = MakeRkey(regions_.size());
  regions_.push_back(std::move(region));
  return regions_.back().get();
}

const MemoryRegion* Device::LookupRkey(std::uint32_t rkey) const {
  for (const auto& region : regions_) {
    if (region->rkey == rkey) return region.get();
  }
  return nullptr;
}

CompletionQueue* Device::CreateCq() {
  cqs_.push_back(std::make_unique<CompletionQueue>());
  return cqs_.back().get();
}

QueuePair* Device::CreateQp(CompletionQueue* send_cq,
                            CompletionQueue* recv_cq) {
  const auto qpn = static_cast<std::uint32_t>(qps_.size() + 1);
  qps_.push_back(std::make_unique<QueuePair>(*this, qpn, send_cq, recv_cq));
  return qps_.back().get();
}

QueuePair* Device::FindQp(std::uint32_t qpn) const {
  if (qpn == 0 || qpn > qps_.size()) return nullptr;
  return qps_[qpn - 1].get();
}

void Device::EmitPacket(net::Packet packet) {
  ++packets_sent_;
  simulation().ScheduleAfter(config_.processing_delay,
                             [this, p = std::move(packet)]() mutable {
                               nic_->Send(std::move(p));
                             });
}

void Device::EmitPaced(std::uint32_t qpn, net::Packet packet) {
  if (congestion_ != nullptr) {
    packet.SetEcnBits(net::kEcnEct0);
    const Nanos delay = congestion_->ReserveSend(qpn, packet.WireBytes());
    if (delay > 0) {
      ++packets_sent_;
      simulation().ScheduleAfter(delay + config_.processing_delay,
                                 [this, p = std::move(packet)]() mutable {
                                   nic_->Send(std::move(p));
                                 });
      return;
    }
  }
  EmitPacket(std::move(packet));
}

void Device::OnPacket(net::Packet packet) {
  ++packets_received_;
  simulation().ScheduleAfter(
      config_.processing_delay, [this, p = std::move(packet)]() mutable {
        const RdmaMessageView view = ParseRdmaPacket(p);
        if (view.bth.opcode == Opcode::kCnp) {
          // A CNP names the local QP whose flow must slow down; it never
          // reaches the QP state machines.
          if (congestion_ != nullptr) {
            congestion_->OnCnpReceived(view.bth.dest_qp);
          }
          return;
        }
        QueuePair* qp = FindQp(view.bth.dest_qp);
        if (qp == nullptr || !qp->Connected()) return;  // stale packet
        if (congestion_ != nullptr && CarriesPayload(view.bth.opcode) &&
            p.EcnBits() == net::kEcnCe) {
          congestion_->NoteCeMark(*qp);
        }
        qp->HandlePacket(p, view);
      });
}

std::uint64_t Device::total_retransmissions() const {
  std::uint64_t total = 0;
  for (const auto& qp : qps_) total += qp->retransmissions();
  return total;
}

void Device::BindTelemetry(telemetry::MetricRegistry& registry,
                           const telemetry::Labels& labels) {
  UnbindTelemetry();
  telemetry_registry_ = &registry;
  telemetry_labels_ = labels;
  registry.RegisterCallbackGauge("nic_packets_sent", labels, [this] {
    return static_cast<std::int64_t>(packets_sent_);
  });
  registry.RegisterCallbackGauge("nic_packets_received", labels, [this] {
    return static_cast<std::int64_t>(packets_received_);
  });
  registry.RegisterCallbackGauge("qp_retransmissions", labels, [this] {
    return static_cast<std::int64_t>(total_retransmissions());
  });
  if (congestion_ != nullptr) congestion_->BindTelemetry(registry, labels);
}

void Device::UnbindTelemetry() {
  if (telemetry_registry_ == nullptr) return;
  for (const char* name :
       {"nic_packets_sent", "nic_packets_received", "qp_retransmissions"}) {
    telemetry_registry_->UnregisterCallbackGauge(name, telemetry_labels_);
  }
  if (congestion_ != nullptr) congestion_->UnbindTelemetry();
  telemetry_registry_ = nullptr;
  telemetry_labels_.clear();
}

}  // namespace cowbird::rdma
