// RNIC device model: protection domain, memory regions, completion queues,
// and packet demultiplexing to queue pairs.
//
// A Device is the per-host RDMA endpoint. It owns the MR table (rkey
// validation happens here, as it would in NIC hardware), hands out QPs and
// CQs, and moves packets between QPs and the host's NIC with the configured
// per-packet processing latency. Nothing in this file charges application
// CPU time — that is the whole point of one-sided RDMA; the *verbs* wrappers
// (verbs.h) are where the compute node pays.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/pool.h"
#include "common/sparse_memory.h"
#include "common/units.h"
#include "net/switch.h"
#include "rdma/params.h"
#include "rdma/wire.h"
#include "sim/simulation.h"
#include "telemetry/metrics.h"

namespace cowbird::rdma {

class CongestionManager;
class QueuePair;

struct MemoryRegion {
  std::uint64_t base = 0;
  Bytes length = 0;
  std::uint32_t rkey = 0;

  bool Contains(std::uint64_t vaddr, std::uint64_t len) const {
    return vaddr >= base && vaddr + len <= base + length && len <= length;
  }
};

enum class CqeStatus : std::uint8_t { kSuccess, kRemoteAccessError };
enum class CqeOpcode : std::uint8_t { kRead, kWrite, kSend, kRecv };

struct Cqe {
  std::uint64_t wr_id = 0;
  CqeOpcode opcode = CqeOpcode::kRead;
  CqeStatus status = CqeStatus::kSuccess;
  std::uint32_t byte_len = 0;
};

class CompletionQueue {
 public:
  void Push(const Cqe& cqe) {
    entries_.push_back(cqe);
    if (on_completion_) on_completion_();
  }
  std::optional<Cqe> Pop() {
    if (entries_.empty()) return std::nullopt;
    Cqe cqe = entries_.front();
    entries_.pop_front();
    return cqe;
  }
  std::size_t Size() const { return entries_.size(); }
  bool Empty() const { return entries_.empty(); }

  // Event hook for event-driven consumers (the Cowbird-Spot agent). Fires
  // after each push; the consumer drains with Pop().
  void SetCompletionCallback(std::function<void()> cb) {
    on_completion_ = std::move(cb);
  }

 private:
  FixedDeque<Cqe> entries_;
  std::function<void()> on_completion_;
};

class Device {
 public:
  Device(net::HostNic& nic, SparseMemory& memory, NicConfig config);
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;
  ~Device();

  const MemoryRegion* RegisterMemory(std::uint64_t base, Bytes length);
  const MemoryRegion* LookupRkey(std::uint32_t rkey) const;

  CompletionQueue* CreateCq();
  QueuePair* CreateQp(CompletionQueue* send_cq, CompletionQueue* recv_cq);
  QueuePair* FindQp(std::uint32_t qpn) const;

  // Hands a fully-built packet to the NIC after the TX processing delay.
  void EmitPacket(net::Packet packet);

  // Data-path emit for QP `qpn`: when DCQCN is enabled the packet is
  // stamped ECT and may be held by the flow's leaky bucket before the
  // processing delay. Unpaced flows (never marked, or fully recovered)
  // take the exact EmitPacket path, byte- and timestamp-identical to a
  // congestion-disabled run.
  void EmitPaced(std::uint32_t qpn, net::Packet packet);

  SparseMemory& memory() { return *memory_; }
  net::HostNic& nic() { return *nic_; }
  sim::Simulation& simulation() { return nic_->simulation(); }
  const NicConfig& config() const { return config_; }
  net::NodeId node_id() const { return nic_->id(); }

  std::uint64_t packets_sent() const { return packets_sent_; }
  std::uint64_t packets_received() const { return packets_received_; }

  // Null unless config.dcqcn.enabled.
  CongestionManager* congestion() { return congestion_.get(); }

  // Write watch for live region migration (core::RegionMigrator): `cb`
  // fires for every RDMA WRITE payload chunk a responder lands inside
  // [base, base+length) on this device — the dirty-tracking hook a real
  // NIC would implement with ODP/dirty-bit scanning. One watch per device;
  // re-arming replaces the previous one.
  void SetWriteWatch(std::uint64_t base, Bytes length,
                     std::function<void(std::uint64_t, std::uint32_t)> cb) {
    watch_base_ = base;
    watch_length_ = length;
    write_watch_ = std::move(cb);
  }
  void ClearWriteWatch() {
    write_watch_ = nullptr;
    watch_length_ = 0;
  }
  // Called by QueuePair on every landed WRITE chunk; no cost when unarmed.
  void NotifyWrite(std::uint64_t addr, std::uint32_t len) {
    if (write_watch_ && addr < watch_base_ + watch_length_ &&
        addr + len > watch_base_) {
      write_watch_(addr, len);
    }
  }

  // Sum of Go-Back-N retransmissions across every QP on this device.
  std::uint64_t total_retransmissions() const;

  // Surfaces packet and retransmission counters as callback gauges. The
  // device must outlive the registry or UnbindTelemetry first.
  void BindTelemetry(telemetry::MetricRegistry& registry,
                     const telemetry::Labels& labels);
  void UnbindTelemetry();

 private:
  void OnPacket(net::Packet packet);

  net::HostNic* nic_;
  SparseMemory* memory_;
  NicConfig config_;
  std::vector<std::unique_ptr<MemoryRegion>> regions_;
  std::vector<std::unique_ptr<CompletionQueue>> cqs_;
  std::vector<std::unique_ptr<QueuePair>> qps_;
  std::unique_ptr<CongestionManager> congestion_;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t packets_received_ = 0;
  std::uint64_t watch_base_ = 0;
  Bytes watch_length_ = 0;  // 0 = watch unarmed
  std::function<void(std::uint64_t, std::uint32_t)> write_watch_;
  telemetry::MetricRegistry* telemetry_registry_ = nullptr;
  telemetry::Labels telemetry_labels_;
};

}  // namespace cowbird::rdma
