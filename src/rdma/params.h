// Calibrated cost parameters for the simulated fabric.
//
// The CPU-side costs come from the paper's Figure 2 (rdtsc instrumentation
// of the Mellanox OFED driver): a post is lock + WQE build + doorbell ring,
// a poll is lock + CQE check. Cowbird's client library replaces all of that
// with a handful of local-memory writes/reads. The ~10x per-operation gap
// between these two columns is the paper's central observation; everything
// in the evaluation follows from it.
#pragma once

#include "common/units.h"
#include "rdma/wire.h"

namespace cowbird::rdma {

struct CostModel {
  // ibv_post_send() — Figure 2, red segments.
  Nanos post_lock = 100;
  Nanos post_wqe = 150;
  Nanos post_doorbell = 200;
  // ibv_poll_cq(), one check — Figure 2, blue segments.
  Nanos poll_lock = 80;
  Nanos poll_cqe = 120;

  // Doorbell batching (linked work-request lists / wide CQ polls): the lock
  // and doorbell are paid once per batch, and the marginal WQE/CQE cost is a
  // cache-resident descriptor write/read. This is how Redy and the
  // Cowbird-Spot agent reach high message rates on few cores; applications
  // that issue one request at a time (Figures 1/2/8 baselines) cannot use it
  // on their critical path.
  Nanos post_wqe_each = 8;
  Nanos poll_cqe_each = 6;
  // Dedicated engine event loop (Cowbird-Spot agent): single-threaded send
  // queue (no lock) and write-combined doorbells amortized across the whole
  // drain pass — the fixed cost collapses to a store-fence + MMIO write.
  Nanos engine_post_fixed = 50;

  Nanos PostBatch(int n) const {
    return post_lock + post_doorbell + n * post_wqe_each;
  }
  Nanos EnginePostBatch(int n) const {
    return engine_post_fixed + n * post_wqe_each;
  }
  Nanos PollBatch(int n) const { return poll_lock + n * poll_cqe_each; }

  // Cowbird client library (Section 4.3): plain local-memory writes for the
  // request metadata + tail bump, and integer comparisons for completion
  // checks. No locks, no fences, no doorbells.
  Nanos cowbird_post = 40;
  Nanos cowbird_poll = 20;

  // First-touch DRAM access (row miss): what a *local* random record access
  // pays for its first cache line. Subsequent lines stream at copy rate.
  // This is the quantity Cowbird's ~60 ns issue+poll path is competing
  // against — a remote record via Cowbird costs the client little more than
  // a couple of cache misses, which is why Figure 1 shows it tracking local
  // memory.
  Nanos local_access = 90;
  // Per-byte cost of touching/copying sequential memory.
  double copy_ns_per_byte = 0.05;
  // Leading-line latency for data that was just DMA-written by the NIC:
  // DDIO places it in the LLC, so the client's delivery copy out of the
  // response ring starts from L3, not DRAM.
  Nanos llc_access = 40;

  Nanos PostTotal() const { return post_lock + post_wqe + post_doorbell; }
  Nanos PollTotal() const { return poll_lock + poll_cqe; }

  // Cost to materialize `n` sequential bytes that are not in L1/L2.
  Nanos CopyCost(Bytes n) const {
    const auto cost =
        static_cast<Nanos>(copy_ns_per_byte * static_cast<double>(n));
    return cost > 20 ? cost : 20;
  }
  // Cost of a local random record access: leading DRAM miss + streaming.
  Nanos LocalRecordCost(Bytes n) const {
    return local_access +
           static_cast<Nanos>(copy_ns_per_byte * static_cast<double>(n));
  }
  // Client-side cost to copy a completed read out of the response ring
  // (LLC-resident thanks to DDIO).
  Nanos DeliveryCopyCost(Bytes n) const {
    return llc_access +
           static_cast<Nanos>(copy_ns_per_byte * static_cast<double>(n));
  }
};

// DCQCN-style per-QP rate control (the congestion half of the RoCEv2
// engine split; the GBN half is rdma::ReliabilityManager). Disabled by
// default: with `enabled` false the device builds no CongestionManager,
// stamps no ECT bits, and every pre-existing run stays byte-identical.
// Timer periods are compressed relative to the published DCQCN constants
// (55 us / 40 Mbps steps) so flows converge within the simulated
// millisecond-scale measure windows; the control *law* is unchanged.
struct DcqcnConfig {
  bool enabled = false;
  double g = 1.0 / 16.0;         // alpha EWMA gain
  double min_rate_gbps = 1.0;    // floor under multiplicative decrease
  double rate_ai_gbps = 2.0;     // additive-increase step
  double rate_hai_gbps = 10.0;   // hyper-increase step
  int fast_recovery_stages = 3;  // stages of (rate+target)/2 before AI
  Nanos alpha_timer = Micros(20);     // alpha decay period (no-CNP window)
  Nanos recovery_timer = Micros(25);  // rate-increase period
  Nanos cnp_interval = Micros(5);     // min gap between CNPs per flow
};

struct NicConfig {
  // Doorbell-to-wire (TX) / wire-to-DMA-complete (RX) latency per packet.
  Nanos processing_delay = 250;
  // Go-Back-N window: maximum in-flight messages per QP.
  int max_outstanding = 64;
  // Retransmission timeout. Datacenter RTTs here are a few microseconds;
  // the paper's recovery relies on data-plane timeouts in the same regime.
  Nanos retransmit_timeout = Micros(100);
  // Congestion control (ECN echo + rate limiting); off by default.
  DcqcnConfig dcqcn;
};

// Testbed-wide constants (Section 7): 100 Gbps ConnectX-5 NICs, one switch.
struct FabricParams {
  BitRate host_link = BitRate::Gbps(100);
  Nanos link_propagation = 150;   // rack-scale cabling
  Nanos switch_pipeline = 300;    // Tofino ingress-to-egress
};

}  // namespace cowbird::rdma
