#include "rdma/qp.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace cowbird::rdma {

namespace {

Opcode ReadResponseOpcode(std::uint32_t index, std::uint32_t count) {
  if (count == 1) return Opcode::kReadResponseOnly;
  if (index == 0) return Opcode::kReadResponseFirst;
  return index == count - 1 ? Opcode::kReadResponseLast
                            : Opcode::kReadResponseMiddle;
}

}  // namespace

QueuePair::QueuePair(Device& device, std::uint32_t qpn,
                     CompletionQueue* send_cq, CompletionQueue* recv_cq)
    : device_(&device), qpn_(qpn), send_cq_(send_cq), recv_cq_(recv_cq) {
  COWBIRD_CHECK(send_cq != nullptr);
}

void QueuePair::Connect(net::NodeId remote_node, std::uint32_t remote_qpn,
                        std::uint32_t my_start_psn,
                        std::uint32_t peer_start_psn) {
  remote_node_ = remote_node;
  remote_qpn_ = remote_qpn;
  reliability_.set_start_psn(my_start_psn);
  epsn_ = peer_start_psn & kPsnMask;
  connected_ = true;
}

void QueuePair::PostSend(SendWqe wqe) {
  COWBIRD_CHECK(connected_);
  COWBIRD_CHECK(wqe.length > 0);
  if (halted_) return;
  reliability_.Enqueue(wqe);
}

void QueuePair::Halt() {
  halted_ = true;
  reliability_.Halt();
  recv_queue_.clear();
  recv_active_ = false;
}

void QueuePair::PostRecv(RecvWqe wqe) { recv_queue_.push_back(wqe); }

// ---------------------------------------------------------------------------
// Responder side
// ---------------------------------------------------------------------------

void QueuePair::HandlePacket(const net::Packet& packet,
                             const RdmaMessageView& view) {
  (void)packet;
  if (halted_) return;
  const Opcode op = view.bth.opcode;
  if (IsReadResponse(op)) {
    reliability_.HandleReadResponse(view);
    return;
  }
  if (op == Opcode::kAcknowledge) {
    reliability_.HandleAck(view);
    return;
  }
  HandleRequest(view);
}

void QueuePair::HandleRequest(const RdmaMessageView& view) {
  const std::uint32_t psn = view.bth.psn;
  const std::int32_t distance = PsnDistance(psn, epsn_);
  const Opcode op = view.bth.opcode;

  if (distance < 0) {
    // Duplicate from a Go-Back-N retransmission. Reads are re-executed
    // (idempotent); writes/sends are *not* re-applied — only re-ACKed so the
    // requester can make progress.
    if (op == Opcode::kReadRequest) {
      COWBIRD_CHECK(view.reth.has_value());
      ExecuteReadRequest(view, /*duplicate=*/true);
    } else if (view.bth.ack_request || IsLastOrOnly(op)) {
      SendAck(kSyndromeAck, PsnAdd(epsn_, kPsnMask));  // epsn − 1
    }
    return;
  }
  if (distance > 0) {
    // Sequence gap: NAK once, drop everything until the requester rewinds.
    if (!nak_outstanding_) {
      SendAck(kSyndromeNakSequenceError, epsn_);
      nak_outstanding_ = true;
    }
    return;
  }

  nak_outstanding_ = false;
  switch (op) {
    case Opcode::kWriteFirst:
    case Opcode::kWriteOnly: {
      COWBIRD_CHECK(view.reth.has_value());
      const MemoryRegion* mr = device_->LookupRkey(view.reth->rkey);
      if (mr == nullptr ||
          !mr->Contains(view.reth->vaddr, view.reth->dma_length)) {
        SendAck(kSyndromeNakRemoteAccess, epsn_);
        return;
      }
      write_target_ = view.reth->vaddr;
      [[fallthrough]];
    }
    case Opcode::kWriteMiddle:
    case Opcode::kWriteLast: {
      device_->memory().Write(write_target_, view.payload);
      device_->NotifyWrite(write_target_,
                           static_cast<std::uint32_t>(view.payload.size()));
      write_target_ += view.payload.size();
      epsn_ = PsnAdd(epsn_, 1);
      if (IsLastOrOnly(op)) {
        ++msn_;
        if (view.bth.ack_request) SendAck(kSyndromeAck, psn);
      }
      return;
    }
    case Opcode::kReadRequest: {
      COWBIRD_CHECK(view.reth.has_value());
      ExecuteReadRequest(view, /*duplicate=*/false);
      return;
    }
    case Opcode::kSendFirst:
    case Opcode::kSendOnly: {
      if (recv_queue_.empty()) {
        // Receiver not ready: NAK so the requester retries the message.
        SendAck(kSyndromeRnrNak, epsn_);
        return;
      }
      active_recv_ = recv_queue_.front();
      recv_queue_.pop_front();
      recv_active_ = true;
      send_target_ = active_recv_.addr;
      send_received_ = 0;
      [[fallthrough]];
    }
    case Opcode::kSendMiddle:
    case Opcode::kSendLast: {
      if (!recv_active_) {
        SendAck(kSyndromeNakSequenceError, epsn_);
        return;
      }
      COWBIRD_CHECK(send_received_ + view.payload.size() <=
                    active_recv_.length);
      device_->memory().Write(send_target_, view.payload);
      send_target_ += view.payload.size();
      send_received_ += static_cast<std::uint32_t>(view.payload.size());
      epsn_ = PsnAdd(epsn_, 1);
      if (IsLastOrOnly(op)) {
        ++msn_;
        recv_active_ = false;
        if (recv_cq_ != nullptr) {
          recv_cq_->Push(Cqe{active_recv_.wr_id, CqeOpcode::kRecv,
                             CqeStatus::kSuccess, send_received_});
        }
        if (view.bth.ack_request) SendAck(kSyndromeAck, psn);
      }
      return;
    }
    default:
      COWBIRD_CHECK(false);
  }
}

void QueuePair::ExecuteReadRequest(const RdmaMessageView& view,
                                   bool duplicate) {
  const Reth& reth = *view.reth;
  const MemoryRegion* mr = device_->LookupRkey(reth.rkey);
  if (mr == nullptr || !mr->Contains(reth.vaddr, reth.dma_length)) {
    SendAck(kSyndromeNakRemoteAccess, view.bth.psn);
    return;
  }
  const std::uint32_t segments = SegmentCount(reth.dma_length);
  if (!duplicate) {
    epsn_ = PsnAdd(epsn_, segments);
    ++msn_;
  }
  for (std::uint32_t i = 0; i < segments; ++i) {
    const std::uint64_t offset = std::uint64_t{i} * kPathMtu;
    const auto len = static_cast<std::size_t>(
        std::min<std::uint64_t>(kPathMtu, reth.dma_length - offset));
    const Opcode opcode = ReadResponseOpcode(i, segments);
    Aeth aeth{kSyndromeAck, msn_};
    EmitFromMemory(opcode, PsnAdd(view.bth.psn, i), /*ack_request=*/false,
                   nullptr, HasAeth(opcode) ? &aeth : nullptr,
                   reth.vaddr + offset, len);
  }
}

void QueuePair::SendAck(std::uint8_t syndrome, std::uint32_t psn) {
  Aeth aeth{syndrome, msn_};
  Bth bth;
  bth.opcode = Opcode::kAcknowledge;
  bth.dest_qp = remote_qpn_;
  bth.psn = psn & kPsnMask;
  net::Packet packet =
      BuildRdmaPacket(device_->node_id(), remote_node_,
                      net::Priority::kControl, bth, nullptr, &aeth, {});
  device_->EmitPacket(std::move(packet));
}

void QueuePair::Emit(Opcode opcode, std::uint32_t psn, bool ack_request,
                     const Reth* reth, const Aeth* aeth,
                     std::span<const std::uint8_t> payload) {
  Bth bth;
  bth.opcode = opcode;
  bth.ack_request = ack_request;
  bth.dest_qp = remote_qpn_;
  bth.psn = psn & kPsnMask;
  net::Packet packet = BuildRdmaPacket(
      device_->node_id(), remote_node_, data_priority_, bth, reth, aeth,
      payload);
  device_->EmitPaced(qpn_, std::move(packet));
}

void QueuePair::EmitFromMemory(Opcode opcode, std::uint32_t psn,
                               bool ack_request, const Reth* reth,
                               const Aeth* aeth, std::uint64_t addr,
                               std::size_t len) {
  Bth bth;
  bth.opcode = opcode;
  bth.ack_request = ack_request;
  bth.dest_qp = remote_qpn_;
  bth.psn = psn & kPsnMask;
  std::span<std::uint8_t> payload;
  net::Packet packet =
      BuildRdmaPacketInPlace(device_->node_id(), remote_node_, data_priority_,
                             bth, reth, aeth, len, &payload);
  device_->memory().Read(addr, payload);
  device_->EmitPaced(qpn_, std::move(packet));
}

QpPair ConnectQueuePairs(Device& a, Device& b, std::uint32_t start_psn_a,
                         std::uint32_t start_psn_b) {
  QpPair pair;
  pair.a_send_cq = a.CreateCq();
  pair.a_recv_cq = a.CreateCq();
  pair.b_send_cq = b.CreateCq();
  pair.b_recv_cq = b.CreateCq();
  pair.a = a.CreateQp(pair.a_send_cq, pair.a_recv_cq);
  pair.b = b.CreateQp(pair.b_send_cq, pair.b_recv_cq);
  pair.a->Connect(b.node_id(), pair.b->qpn(), start_psn_a, start_psn_b);
  pair.b->Connect(a.node_id(), pair.a->qpn(), start_psn_b, start_psn_a);
  return pair;
}

}  // namespace cowbird::rdma
