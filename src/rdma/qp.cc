#include "rdma/qp.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace cowbird::rdma {

namespace {

Opcode SegmentOpcode(WqeOp op, std::uint32_t index, std::uint32_t count) {
  const bool only = count == 1;
  const bool first = index == 0;
  const bool last = index == count - 1;
  switch (op) {
    case WqeOp::kWrite:
      if (only) return Opcode::kWriteOnly;
      if (first) return Opcode::kWriteFirst;
      return last ? Opcode::kWriteLast : Opcode::kWriteMiddle;
    case WqeOp::kSend:
      if (only) return Opcode::kSendOnly;
      if (first) return Opcode::kSendFirst;
      return last ? Opcode::kSendLast : Opcode::kSendMiddle;
    case WqeOp::kRead:
      break;
  }
  COWBIRD_CHECK(false);
}

Opcode ReadResponseOpcode(std::uint32_t index, std::uint32_t count) {
  if (count == 1) return Opcode::kReadResponseOnly;
  if (index == 0) return Opcode::kReadResponseFirst;
  return index == count - 1 ? Opcode::kReadResponseLast
                            : Opcode::kReadResponseMiddle;
}

CqeOpcode ToCqeOpcode(WqeOp op) {
  switch (op) {
    case WqeOp::kRead: return CqeOpcode::kRead;
    case WqeOp::kWrite: return CqeOpcode::kWrite;
    case WqeOp::kSend: return CqeOpcode::kSend;
  }
  COWBIRD_CHECK(false);
}

}  // namespace

QueuePair::QueuePair(Device& device, std::uint32_t qpn,
                     CompletionQueue* send_cq, CompletionQueue* recv_cq)
    : device_(&device), qpn_(qpn), send_cq_(send_cq), recv_cq_(recv_cq) {
  COWBIRD_CHECK(send_cq != nullptr);
}

void QueuePair::Connect(net::NodeId remote_node, std::uint32_t remote_qpn,
                        std::uint32_t my_start_psn,
                        std::uint32_t peer_start_psn) {
  remote_node_ = remote_node;
  remote_qpn_ = remote_qpn;
  next_psn_ = my_start_psn & kPsnMask;
  epsn_ = peer_start_psn & kPsnMask;
  connected_ = true;
}

void QueuePair::PostSend(SendWqe wqe) {
  COWBIRD_CHECK(connected_);
  COWBIRD_CHECK(wqe.length > 0);
  if (halted_) return;
  pending_.push_back(wqe);
  TryTransmit();
}

void QueuePair::Halt() {
  halted_ = true;
  retransmit_timer_.Cancel();
  pending_.clear();
  inflight_.clear();
  recv_queue_.clear();
  recv_active_ = false;
}

void QueuePair::PostRecv(RecvWqe wqe) { recv_queue_.push_back(wqe); }

// ---------------------------------------------------------------------------
// Requester side
// ---------------------------------------------------------------------------

void QueuePair::TryTransmit() {
  while (!pending_.empty() &&
         inflight_.size() <
             static_cast<std::size_t>(device_->config().max_outstanding)) {
    InflightWqe entry;
    entry.wqe = pending_.front();
    pending_.pop_front();
    entry.segments = SegmentCount(entry.wqe.length);
    entry.first_psn = next_psn_;
    entry.last_psn = PsnAdd(next_psn_, entry.segments - 1);
    next_psn_ = PsnAdd(next_psn_, entry.segments);
    inflight_.push_back(entry);
    EmitMessage(inflight_.back());
  }
  if (!inflight_.empty()) ArmTimer();
}

void QueuePair::EmitMessage(const InflightWqe& entry) {
  const SendWqe& wqe = entry.wqe;
  if (wqe.op == WqeOp::kRead) {
    Reth reth{wqe.raddr, wqe.rkey, wqe.length};
    Emit(Opcode::kReadRequest, entry.first_psn, /*ack_request=*/false, &reth,
         nullptr, {});
    return;
  }
  for (std::uint32_t i = 0; i < entry.segments; ++i) {
    const std::uint64_t offset = std::uint64_t{i} * kPathMtu;
    const auto len = static_cast<std::size_t>(
        std::min<std::uint64_t>(kPathMtu, wqe.length - offset));
    const Opcode opcode = SegmentOpcode(wqe.op, i, entry.segments);
    const bool last = i == entry.segments - 1;
    Reth reth{wqe.raddr, wqe.rkey, wqe.length};
    EmitFromMemory(opcode, PsnAdd(entry.first_psn, i), /*ack_request=*/last,
                   HasReth(opcode) ? &reth : nullptr, nullptr,
                   wqe.laddr + offset, len);
  }
}

void QueuePair::HandleReadResponse(const RdmaMessageView& view) {
  // Responses arrive in PSN order for the oldest incomplete read.
  InflightWqe* target = nullptr;
  for (auto& entry : inflight_) {
    if (entry.wqe.op == WqeOp::kRead && !entry.done) {
      target = &entry;
      break;
    }
  }
  if (target == nullptr) return;  // stale duplicate after recovery
  const std::uint32_t expected =
      PsnAdd(target->first_psn, target->bytes_done / kPathMtu);
  if (view.bth.psn != expected) return;  // gap or stale; timer recovers

  device_->memory().Write(target->wqe.laddr + target->bytes_done,
                          view.payload);
  target->bytes_done += static_cast<std::uint32_t>(view.payload.size());
  if (target->bytes_done >= target->wqe.length) {
    COWBIRD_CHECK(target->bytes_done == target->wqe.length);
    target->done = true;
  }
  OnProgress();
  CompleteInOrder();
}

void QueuePair::HandleAck(const RdmaMessageView& view) {
  COWBIRD_CHECK(view.aeth.has_value());
  const std::uint8_t syndrome = view.aeth->syndrome;
  if (syndrome == kSyndromeAck) {
    const std::uint32_t acked = view.bth.psn;
    for (auto& entry : inflight_) {
      if (entry.wqe.op == WqeOp::kRead || entry.done) continue;
      if (PsnDistance(acked, entry.last_psn) >= 0) {
        entry.acked = true;
        entry.done = true;
      }
    }
    OnProgress();
    CompleteInOrder();
    return;
  }
  if (syndrome == kSyndromeNakSequenceError) {
    GoBackN();
    return;
  }
  if (syndrome == kSyndromeRnrNak) {
    // Receiver-not-ready: back off briefly before rewinding so we do not
    // hammer a responder that has no RECV posted yet.
    retransmit_timer_.Cancel();
    retransmit_timer_ = device_->simulation().ScheduleCancelableAfter(
        device_->config().retransmit_timeout / 8, [this] { GoBackN(); });
    return;
  }
  if (syndrome == kSyndromeNakRemoteAccess) {
    // Fatal for the offending WQE: complete it with an error status.
    for (auto& entry : inflight_) {
      if (!entry.done) {
        entry.done = true;
        entry.status = CqeStatus::kRemoteAccessError;
        break;
      }
    }
    OnProgress();
    CompleteInOrder();
  }
}

void QueuePair::CompleteInOrder() {
  bool freed = false;
  while (!inflight_.empty() && inflight_.front().done) {
    const InflightWqe& entry = inflight_.front();
    if (entry.wqe.signaled) {
      send_cq_->Push(Cqe{entry.wqe.wr_id, ToCqeOpcode(entry.wqe.op),
                         entry.status, entry.wqe.length});
    }
    inflight_.pop_front();
    freed = true;
  }
  if (freed) TryTransmit();
  if (inflight_.empty()) retransmit_timer_.Cancel();
}

void QueuePair::GoBackN() {
  retransmit_timer_.Cancel();
  if (halted_ || inflight_.empty()) return;
  ++retransmissions_;
  for (auto& entry : inflight_) {
    if (entry.done) continue;
    entry.bytes_done = 0;
    EmitMessage(entry);
  }
  ArmTimer();
}

void QueuePair::ArmTimer() {
  if (retransmit_timer_.Pending()) return;
  retransmit_timer_ = device_->simulation().ScheduleCancelableAfter(
      device_->config().retransmit_timeout, [this] { GoBackN(); });
}

void QueuePair::OnProgress() {
  retransmit_timer_.Cancel();
  if (!inflight_.empty()) ArmTimer();
}

// ---------------------------------------------------------------------------
// Responder side
// ---------------------------------------------------------------------------

void QueuePair::HandlePacket(const net::Packet& packet,
                             const RdmaMessageView& view) {
  (void)packet;
  if (halted_) return;
  const Opcode op = view.bth.opcode;
  if (IsReadResponse(op)) {
    HandleReadResponse(view);
    return;
  }
  if (op == Opcode::kAcknowledge) {
    HandleAck(view);
    return;
  }
  HandleRequest(view);
}

void QueuePair::HandleRequest(const RdmaMessageView& view) {
  const std::uint32_t psn = view.bth.psn;
  const std::int32_t distance = PsnDistance(psn, epsn_);
  const Opcode op = view.bth.opcode;

  if (distance < 0) {
    // Duplicate from a Go-Back-N retransmission. Reads are re-executed
    // (idempotent); writes/sends are *not* re-applied — only re-ACKed so the
    // requester can make progress.
    if (op == Opcode::kReadRequest) {
      COWBIRD_CHECK(view.reth.has_value());
      ExecuteReadRequest(view, /*duplicate=*/true);
    } else if (view.bth.ack_request || IsLastOrOnly(op)) {
      SendAck(kSyndromeAck, PsnAdd(epsn_, kPsnMask));  // epsn − 1
    }
    return;
  }
  if (distance > 0) {
    // Sequence gap: NAK once, drop everything until the requester rewinds.
    if (!nak_outstanding_) {
      SendAck(kSyndromeNakSequenceError, epsn_);
      nak_outstanding_ = true;
    }
    return;
  }

  nak_outstanding_ = false;
  switch (op) {
    case Opcode::kWriteFirst:
    case Opcode::kWriteOnly: {
      COWBIRD_CHECK(view.reth.has_value());
      const MemoryRegion* mr = device_->LookupRkey(view.reth->rkey);
      if (mr == nullptr ||
          !mr->Contains(view.reth->vaddr, view.reth->dma_length)) {
        SendAck(kSyndromeNakRemoteAccess, epsn_);
        return;
      }
      write_target_ = view.reth->vaddr;
      [[fallthrough]];
    }
    case Opcode::kWriteMiddle:
    case Opcode::kWriteLast: {
      device_->memory().Write(write_target_, view.payload);
      write_target_ += view.payload.size();
      epsn_ = PsnAdd(epsn_, 1);
      if (IsLastOrOnly(op)) {
        ++msn_;
        if (view.bth.ack_request) SendAck(kSyndromeAck, psn);
      }
      return;
    }
    case Opcode::kReadRequest: {
      COWBIRD_CHECK(view.reth.has_value());
      ExecuteReadRequest(view, /*duplicate=*/false);
      return;
    }
    case Opcode::kSendFirst:
    case Opcode::kSendOnly: {
      if (recv_queue_.empty()) {
        // Receiver not ready: NAK so the requester retries the message.
        SendAck(kSyndromeRnrNak, epsn_);
        return;
      }
      active_recv_ = recv_queue_.front();
      recv_queue_.pop_front();
      recv_active_ = true;
      send_target_ = active_recv_.addr;
      send_received_ = 0;
      [[fallthrough]];
    }
    case Opcode::kSendMiddle:
    case Opcode::kSendLast: {
      if (!recv_active_) {
        SendAck(kSyndromeNakSequenceError, epsn_);
        return;
      }
      COWBIRD_CHECK(send_received_ + view.payload.size() <=
                    active_recv_.length);
      device_->memory().Write(send_target_, view.payload);
      send_target_ += view.payload.size();
      send_received_ += static_cast<std::uint32_t>(view.payload.size());
      epsn_ = PsnAdd(epsn_, 1);
      if (IsLastOrOnly(op)) {
        ++msn_;
        recv_active_ = false;
        if (recv_cq_ != nullptr) {
          recv_cq_->Push(Cqe{active_recv_.wr_id, CqeOpcode::kRecv,
                             CqeStatus::kSuccess, send_received_});
        }
        if (view.bth.ack_request) SendAck(kSyndromeAck, psn);
      }
      return;
    }
    default:
      COWBIRD_CHECK(false);
  }
}

void QueuePair::ExecuteReadRequest(const RdmaMessageView& view,
                                   bool duplicate) {
  const Reth& reth = *view.reth;
  const MemoryRegion* mr = device_->LookupRkey(reth.rkey);
  if (mr == nullptr || !mr->Contains(reth.vaddr, reth.dma_length)) {
    SendAck(kSyndromeNakRemoteAccess, view.bth.psn);
    return;
  }
  const std::uint32_t segments = SegmentCount(reth.dma_length);
  if (!duplicate) {
    epsn_ = PsnAdd(epsn_, segments);
    ++msn_;
  }
  for (std::uint32_t i = 0; i < segments; ++i) {
    const std::uint64_t offset = std::uint64_t{i} * kPathMtu;
    const auto len = static_cast<std::size_t>(
        std::min<std::uint64_t>(kPathMtu, reth.dma_length - offset));
    const Opcode opcode = ReadResponseOpcode(i, segments);
    Aeth aeth{kSyndromeAck, msn_};
    EmitFromMemory(opcode, PsnAdd(view.bth.psn, i), /*ack_request=*/false,
                   nullptr, HasAeth(opcode) ? &aeth : nullptr,
                   reth.vaddr + offset, len);
  }
}

void QueuePair::SendAck(std::uint8_t syndrome, std::uint32_t psn) {
  Aeth aeth{syndrome, msn_};
  Bth bth;
  bth.opcode = Opcode::kAcknowledge;
  bth.dest_qp = remote_qpn_;
  bth.psn = psn & kPsnMask;
  net::Packet packet =
      BuildRdmaPacket(device_->node_id(), remote_node_,
                      net::Priority::kControl, bth, nullptr, &aeth, {});
  device_->EmitPacket(std::move(packet));
}

void QueuePair::Emit(Opcode opcode, std::uint32_t psn, bool ack_request,
                     const Reth* reth, const Aeth* aeth,
                     std::span<const std::uint8_t> payload) {
  Bth bth;
  bth.opcode = opcode;
  bth.ack_request = ack_request;
  bth.dest_qp = remote_qpn_;
  bth.psn = psn & kPsnMask;
  net::Packet packet = BuildRdmaPacket(
      device_->node_id(), remote_node_, data_priority_, bth, reth, aeth,
      payload);
  device_->EmitPacket(std::move(packet));
}

void QueuePair::EmitFromMemory(Opcode opcode, std::uint32_t psn,
                               bool ack_request, const Reth* reth,
                               const Aeth* aeth, std::uint64_t addr,
                               std::size_t len) {
  Bth bth;
  bth.opcode = opcode;
  bth.ack_request = ack_request;
  bth.dest_qp = remote_qpn_;
  bth.psn = psn & kPsnMask;
  std::span<std::uint8_t> payload;
  net::Packet packet =
      BuildRdmaPacketInPlace(device_->node_id(), remote_node_, data_priority_,
                             bth, reth, aeth, len, &payload);
  device_->memory().Read(addr, payload);
  device_->EmitPacket(std::move(packet));
}

QpPair ConnectQueuePairs(Device& a, Device& b, std::uint32_t start_psn_a,
                         std::uint32_t start_psn_b) {
  QpPair pair;
  pair.a_send_cq = a.CreateCq();
  pair.a_recv_cq = a.CreateCq();
  pair.b_send_cq = b.CreateCq();
  pair.b_recv_cq = b.CreateCq();
  pair.a = a.CreateQp(pair.a_send_cq, pair.a_recv_cq);
  pair.b = b.CreateQp(pair.b_send_cq, pair.b_recv_cq);
  pair.a->Connect(b.node_id(), pair.b->qpn(), start_psn_a, start_psn_b);
  pair.b->Connect(a.node_id(), pair.a->qpn(), start_psn_b, start_psn_a);
  return pair;
}

}  // namespace cowbird::rdma
