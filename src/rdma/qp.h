// Reliable-Connection queue pair.
//
// Implements the RC requester and responder state machines over the
// simulated fabric: MTU segmentation into First/Middle/Last/Only packets,
// 24-bit PSN sequencing, one ACK per message (ack-request on the last
// segment), NAK on sequence gaps, and Go-Back-N recovery on NAK or
// retransmission timeout. Read requests consume as many PSNs as their
// response will span, exactly as in InfiniBand — this is what lets the
// Cowbird-P4 switch predict and rewrite response PSNs.
//
// The requester half (window, PSNs, GBN timer) lives in the QP's
// ReliabilityManager; congestion control lives in the device's
// CongestionManager. The QP itself keeps packet construction and the
// responder state machine, and routes its data packets through the
// device's paced emit path so both managers compose per flow.
#pragma once

#include <cstdint>

#include "common/pool.h"
#include "common/units.h"
#include "rdma/device.h"
#include "rdma/reliability.h"
#include "rdma/wire.h"

namespace cowbird::rdma {

struct RecvWqe {
  std::uint64_t wr_id = 0;
  std::uint64_t addr = 0;
  std::uint32_t length = 0;
};

class QueuePair {
 public:
  QueuePair(Device& device, std::uint32_t qpn, CompletionQueue* send_cq,
            CompletionQueue* recv_cq);

  // Connects this QP to its peer. Both sides must agree on the starting
  // PSNs (this one's send PSN is the peer's expected PSN).
  void Connect(net::NodeId remote_node, std::uint32_t remote_qpn,
               std::uint32_t my_start_psn, std::uint32_t peer_start_psn);

  // Raw posting interfaces. These model the NIC-visible effect only; the
  // CPU cost of invoking the verb is charged by the wrappers in verbs.h.
  void PostSend(SendWqe wqe);
  void PostRecv(RecvWqe wqe);

  std::uint32_t qpn() const { return qpn_; }
  net::NodeId remote_node() const { return remote_node_; }
  std::uint32_t remote_qpn() const { return remote_qpn_; }
  bool Connected() const { return connected_; }

  std::size_t OutstandingWqes() const { return reliability_.Outstanding(); }
  std::size_t PostedRecvs() const { return recv_queue_.size(); }
  std::uint32_t next_psn() const { return reliability_.next_psn(); }
  std::uint32_t expected_psn() const { return epsn_; }
  std::uint64_t retransmissions() const {
    return reliability_.retransmissions();
  }

  // Priority used for data packets (ACKs always use kControl).
  void set_data_priority(net::Priority p) { data_priority_ = p; }

  // Models the NIC-level teardown of an engine crash: cancels the
  // retransmission timer, discards pending and in-flight WQEs without
  // completing them, and ignores every subsequent packet. Crucially this
  // kills queued retransmissions — a crashed engine must not emit "zombie"
  // writes after its state was exported to a survivor. Packets already on
  // the wire still land at the peer (a crash cannot recall them).
  void Halt();
  bool Halted() const { return halted_; }

  // Packet entry point (called by Device demux).
  void HandlePacket(const net::Packet& packet, const RdmaMessageView& view);

 private:
  friend class ReliabilityManager;

  // ---- responder side ----
  void HandleRequest(const RdmaMessageView& view);
  void ExecuteReadRequest(const RdmaMessageView& view, bool duplicate);
  void SendAck(std::uint8_t syndrome, std::uint32_t psn);

  void Emit(Opcode opcode, std::uint32_t psn, bool ack_request,
            const Reth* reth, const Aeth* aeth,
            std::span<const std::uint8_t> payload);
  // Segmenting emit path: builds the frame first and DMAs `len` bytes from
  // local memory straight into its payload (no staging buffer).
  void EmitFromMemory(Opcode opcode, std::uint32_t psn, bool ack_request,
                      const Reth* reth, const Aeth* aeth, std::uint64_t addr,
                      std::size_t len);

  Device* device_;
  std::uint32_t qpn_;
  CompletionQueue* send_cq_;
  CompletionQueue* recv_cq_;
  net::NodeId remote_node_ = 0;
  std::uint32_t remote_qpn_ = 0;
  bool connected_ = false;
  bool halted_ = false;
  net::Priority data_priority_ = net::Priority::kRdma;

  // Requester state machine (window, PSNs, Go-Back-N).
  ReliabilityManager reliability_{*this};

  // Responder state.
  std::uint32_t epsn_ = 0;
  std::uint32_t msn_ = 0;
  bool nak_outstanding_ = false;
  std::uint64_t write_target_ = 0;  // cursor for WRITE_MIDDLE/LAST
  std::uint64_t send_target_ = 0;   // cursor within the active RECV buffer
  std::uint32_t send_received_ = 0;
  bool recv_active_ = false;
  FixedDeque<RecvWqe> recv_queue_;
  RecvWqe active_recv_{};
};

// Convenience for tests and engines: a connected QP pair with fresh CQs.
struct QpPair {
  QueuePair* a = nullptr;
  QueuePair* b = nullptr;
  CompletionQueue* a_send_cq = nullptr;
  CompletionQueue* a_recv_cq = nullptr;
  CompletionQueue* b_send_cq = nullptr;
  CompletionQueue* b_recv_cq = nullptr;
};
QpPair ConnectQueuePairs(Device& a, Device& b, std::uint32_t start_psn_a = 100,
                         std::uint32_t start_psn_b = 200);

}  // namespace cowbird::rdma
