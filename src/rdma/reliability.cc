#include "rdma/reliability.h"

#include <algorithm>

#include "common/check.h"
#include "rdma/qp.h"

namespace cowbird::rdma {

namespace {

Opcode SegmentOpcode(WqeOp op, std::uint32_t index, std::uint32_t count) {
  const bool only = count == 1;
  const bool first = index == 0;
  const bool last = index == count - 1;
  switch (op) {
    case WqeOp::kWrite:
      if (only) return Opcode::kWriteOnly;
      if (first) return Opcode::kWriteFirst;
      return last ? Opcode::kWriteLast : Opcode::kWriteMiddle;
    case WqeOp::kSend:
      if (only) return Opcode::kSendOnly;
      if (first) return Opcode::kSendFirst;
      return last ? Opcode::kSendLast : Opcode::kSendMiddle;
    case WqeOp::kRead:
      break;
  }
  COWBIRD_CHECK(false);
}

CqeOpcode ToCqeOpcode(WqeOp op) {
  switch (op) {
    case WqeOp::kRead: return CqeOpcode::kRead;
    case WqeOp::kWrite: return CqeOpcode::kWrite;
    case WqeOp::kSend: return CqeOpcode::kSend;
  }
  COWBIRD_CHECK(false);
}

}  // namespace

void ReliabilityManager::Enqueue(SendWqe wqe) {
  pending_.push_back(wqe);
  TryTransmit();
}

void ReliabilityManager::Halt() {
  retransmit_timer_.Cancel();
  pending_.clear();
  inflight_.clear();
}

void ReliabilityManager::TryTransmit() {
  Device* device = qp_->device_;
  while (!pending_.empty() &&
         inflight_.size() <
             static_cast<std::size_t>(device->config().max_outstanding)) {
    InflightWqe entry;
    entry.wqe = pending_.front();
    pending_.pop_front();
    entry.segments = SegmentCount(entry.wqe.length);
    entry.first_psn = next_psn_;
    entry.last_psn = PsnAdd(next_psn_, entry.segments - 1);
    next_psn_ = PsnAdd(next_psn_, entry.segments);
    inflight_.push_back(entry);
    EmitMessage(inflight_.back());
  }
  if (!inflight_.empty()) ArmTimer();
}

void ReliabilityManager::EmitMessage(const InflightWqe& entry) {
  const SendWqe& wqe = entry.wqe;
  if (wqe.op == WqeOp::kRead) {
    Reth reth{wqe.raddr, wqe.rkey, wqe.length};
    qp_->Emit(Opcode::kReadRequest, entry.first_psn, /*ack_request=*/false,
              &reth, nullptr, {});
    return;
  }
  for (std::uint32_t i = 0; i < entry.segments; ++i) {
    const std::uint64_t offset = std::uint64_t{i} * kPathMtu;
    const auto len = static_cast<std::size_t>(
        std::min<std::uint64_t>(kPathMtu, wqe.length - offset));
    const Opcode opcode = SegmentOpcode(wqe.op, i, entry.segments);
    const bool last = i == entry.segments - 1;
    Reth reth{wqe.raddr, wqe.rkey, wqe.length};
    qp_->EmitFromMemory(opcode, PsnAdd(entry.first_psn, i),
                        /*ack_request=*/last,
                        HasReth(opcode) ? &reth : nullptr, nullptr,
                        wqe.laddr + offset, len);
  }
}

void ReliabilityManager::HandleReadResponse(const RdmaMessageView& view) {
  // Responses arrive in PSN order for the oldest incomplete read.
  InflightWqe* target = nullptr;
  for (auto& entry : inflight_) {
    if (entry.wqe.op == WqeOp::kRead && !entry.done) {
      target = &entry;
      break;
    }
  }
  if (target == nullptr) return;  // stale duplicate after recovery
  const std::uint32_t expected =
      PsnAdd(target->first_psn, target->bytes_done / kPathMtu);
  if (view.bth.psn != expected) return;  // gap or stale; timer recovers

  qp_->device_->memory().Write(target->wqe.laddr + target->bytes_done,
                               view.payload);
  target->bytes_done += static_cast<std::uint32_t>(view.payload.size());
  if (target->bytes_done >= target->wqe.length) {
    COWBIRD_CHECK(target->bytes_done == target->wqe.length);
    target->done = true;
  }
  OnProgress();
  CompleteInOrder();
}

void ReliabilityManager::HandleAck(const RdmaMessageView& view) {
  COWBIRD_CHECK(view.aeth.has_value());
  const std::uint8_t syndrome = view.aeth->syndrome;
  if (syndrome == kSyndromeAck) {
    const std::uint32_t acked = view.bth.psn;
    for (auto& entry : inflight_) {
      if (entry.wqe.op == WqeOp::kRead || entry.done) continue;
      if (PsnDistance(acked, entry.last_psn) >= 0) {
        entry.acked = true;
        entry.done = true;
      }
    }
    OnProgress();
    CompleteInOrder();
    return;
  }
  if (syndrome == kSyndromeNakSequenceError) {
    GoBackN();
    return;
  }
  if (syndrome == kSyndromeRnrNak) {
    // Receiver-not-ready: back off briefly before rewinding so we do not
    // hammer a responder that has no RECV posted yet.
    Device* device = qp_->device_;
    retransmit_timer_.Cancel();
    retransmit_timer_ = device->simulation().ScheduleCancelableAfter(
        device->config().retransmit_timeout / 8, [this] { GoBackN(); });
    return;
  }
  if (syndrome == kSyndromeNakRemoteAccess) {
    // Fatal for the offending WQE: complete it with an error status.
    for (auto& entry : inflight_) {
      if (!entry.done) {
        entry.done = true;
        entry.status = CqeStatus::kRemoteAccessError;
        break;
      }
    }
    OnProgress();
    CompleteInOrder();
  }
}

void ReliabilityManager::CompleteInOrder() {
  bool freed = false;
  while (!inflight_.empty() && inflight_.front().done) {
    const InflightWqe& entry = inflight_.front();
    if (entry.wqe.signaled) {
      qp_->send_cq_->Push(Cqe{entry.wqe.wr_id, ToCqeOpcode(entry.wqe.op),
                              entry.status, entry.wqe.length});
    }
    inflight_.pop_front();
    freed = true;
  }
  if (freed) TryTransmit();
  if (inflight_.empty()) retransmit_timer_.Cancel();
}

void ReliabilityManager::GoBackN() {
  retransmit_timer_.Cancel();
  if (qp_->Halted() || inflight_.empty()) return;
  ++retransmissions_;
  for (auto& entry : inflight_) {
    if (entry.done) continue;
    entry.bytes_done = 0;
    EmitMessage(entry);
  }
  ArmTimer();
}

void ReliabilityManager::ArmTimer() {
  if (retransmit_timer_.Pending()) return;
  Device* device = qp_->device_;
  retransmit_timer_ = device->simulation().ScheduleCancelableAfter(
      device->config().retransmit_timeout, [this] { GoBackN(); });
}

void ReliabilityManager::OnProgress() {
  retransmit_timer_.Cancel();
  if (!inflight_.empty()) ArmTimer();
}

}  // namespace cowbird::rdma
