// Go-Back-N reliability manager: the requester half of the RC state
// machine, split out of QueuePair so it sits beside (and independent of)
// the CongestionManager — the same decomposition RoCEv2 NIC engines use.
//
// The manager owns the send-side WQE queues, PSN assignment, cumulative
// ACK / NAK handling, the retransmission timer, and Go-Back-N rewinds.
// Packet construction and responder state stay in QueuePair; the manager
// reaches back through its owning QP (it is a friend) for emission and
// device services. Rate limiting never lives here: a Go-Back-N rewind
// re-emits through the QP's paced path, so retransmit storms are subject
// to the same per-flow rate as first transmissions.
#pragma once

#include <cstdint>

#include "common/pool.h"
#include "common/units.h"
#include "rdma/device.h"
#include "rdma/wire.h"

namespace cowbird::rdma {

class QueuePair;

enum class WqeOp : std::uint8_t { kRead, kWrite, kSend };

struct SendWqe {
  WqeOp op = WqeOp::kRead;
  std::uint64_t wr_id = 0;
  std::uint64_t laddr = 0;   // local buffer (source for write/send,
                             // destination for read)
  std::uint64_t raddr = 0;   // remote address (read/write)
  std::uint32_t rkey = 0;
  std::uint32_t length = 0;
  bool signaled = true;
};

class ReliabilityManager {
 public:
  explicit ReliabilityManager(QueuePair& qp) : qp_(&qp) {}
  ReliabilityManager(const ReliabilityManager&) = delete;
  ReliabilityManager& operator=(const ReliabilityManager&) = delete;

  void set_start_psn(std::uint32_t psn) { next_psn_ = psn & kPsnMask; }

  // Queues a posted WQE and transmits as far as the window allows.
  void Enqueue(SendWqe wqe);

  void HandleReadResponse(const RdmaMessageView& view);
  void HandleAck(const RdmaMessageView& view);

  // Engine-crash teardown: cancel the timer, discard all requester state.
  void Halt();

  std::size_t Outstanding() const {
    return inflight_.size() + pending_.size();
  }
  std::uint32_t next_psn() const { return next_psn_; }
  std::uint64_t retransmissions() const { return retransmissions_; }

 private:
  struct InflightWqe {
    SendWqe wqe;
    std::uint32_t first_psn = 0;
    std::uint32_t last_psn = 0;
    std::uint32_t segments = 1;
    std::uint32_t bytes_done = 0;  // read-response progress
    bool acked = false;            // write/send: covered by cumulative ACK
    bool done = false;             // ready to complete in order
    CqeStatus status = CqeStatus::kSuccess;
  };

  void TryTransmit();
  void EmitMessage(const InflightWqe& entry);
  void CompleteInOrder();
  void GoBackN();
  void ArmTimer();
  void OnProgress();

  QueuePair* qp_;
  // FixedDeque: WQE queues cycle at packet rate, and std::deque's block
  // churn would put the allocator on the datapath.
  FixedDeque<SendWqe> pending_;       // posted, not yet transmitted
  FixedDeque<InflightWqe> inflight_;  // transmitted, not completed
  std::uint32_t next_psn_ = 0;
  sim::TimerHandle retransmit_timer_;
  std::uint64_t retransmissions_ = 0;
};

}  // namespace cowbird::rdma
