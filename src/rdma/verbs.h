// CPU-charged verb wrappers.
//
// The raw QueuePair/CompletionQueue interfaces model what the NIC does; the
// functions here model what the *CPU* pays to ask for it (Figure 2): locks,
// WQE marshalling, doorbell MMIO for a post; lock and CQE check for a poll.
// Every baseline in the evaluation (sync/async one-sided, two-sided, Redy)
// calls through these wrappers from a SimThread; Cowbird never does — its
// client library touches only local memory.
#pragma once

#include <optional>
#include <span>

#include "rdma/params.h"
#include "rdma/qp.h"
#include "sim/task.h"
#include "sim/thread.h"

namespace cowbird::rdma {

// ibv_post_send analogue: charges lock + WQE build + doorbell.
inline sim::Task<void> PostSendVerb(sim::SimThread& thread,
                                    const CostModel& costs, QueuePair& qp,
                                    SendWqe wqe) {
  co_await thread.Work(costs.post_lock + costs.post_wqe,
                       sim::CpuCategory::kCommunication);
  qp.PostSend(wqe);
  co_await thread.Work(costs.post_doorbell,
                       sim::CpuCategory::kCommunication);
}

// ibv_post_recv analogue.
inline sim::Task<void> PostRecvVerb(sim::SimThread& thread,
                                    const CostModel& costs, QueuePair& qp,
                                    RecvWqe wqe) {
  co_await thread.Work(costs.post_lock + costs.post_wqe,
                       sim::CpuCategory::kCommunication);
  qp.PostRecv(wqe);
  co_await thread.Work(costs.post_doorbell,
                       sim::CpuCategory::kCommunication);
}

// One ibv_poll_cq check: charges the lock + CQE read whether or not a
// completion is found (the paper's Figure 2 measures exactly this floor).
inline sim::Task<std::optional<Cqe>> PollCqVerb(sim::SimThread& thread,
                                                const CostModel& costs,
                                                CompletionQueue& cq) {
  co_await thread.Work(costs.poll_lock + costs.poll_cqe,
                       sim::CpuCategory::kCommunication);
  co_return cq.Pop();
}

// Busy-poll until a completion arrives; the CPU burns a full poll cost per
// check, exactly like a spin loop on a real completion queue.
inline sim::Task<Cqe> BusyPollCqVerb(sim::SimThread& thread,
                                     const CostModel& costs,
                                     CompletionQueue& cq) {
  for (;;) {
    auto cqe = co_await PollCqVerb(thread, costs, cq);
    if (cqe.has_value()) co_return *cqe;
  }
}

// Doorbell-batched post: one lock + one doorbell for the whole linked list
// of work requests, marginal cost per WQE. The engines (Cowbird-Spot, Redy)
// live on this; per-access application code cannot (requests arrive one at
// a time on its critical path).
inline sim::Task<void> PostSendBatchVerb(sim::SimThread& thread,
                                         const CostModel& costs,
                                         QueuePair& qp,
                                         std::span<const SendWqe> wqes) {
  if (wqes.empty()) co_return;
  co_await thread.Work(costs.PostBatch(static_cast<int>(wqes.size())),
                       sim::CpuCategory::kCommunication);
  for (const SendWqe& wqe : wqes) qp.PostSend(wqe);
}

// Engine-tier batched post: the dedicated single-threaded agent loop pays
// no lock and an amortized doorbell (see CostModel::engine_post_fixed).
inline sim::Task<void> EnginePostBatchVerb(sim::SimThread& thread,
                                           const CostModel& costs,
                                           QueuePair& qp,
                                           std::span<const SendWqe> wqes) {
  if (wqes.empty()) co_return;
  co_await thread.Work(costs.EnginePostBatch(static_cast<int>(wqes.size())),
                       sim::CpuCategory::kCommunication);
  for (const SendWqe& wqe : wqes) qp.PostSend(wqe);
}

}  // namespace cowbird::rdma
