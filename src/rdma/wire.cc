#include "rdma/wire.h"

#include "net/bytes.h"

namespace cowbird::rdma {

using net::GetU16;
using net::GetU24;
using net::GetU32;
using net::GetU64;
using net::GetU8;
using net::PutU16;
using net::PutU24;
using net::PutU32;
using net::PutU64;
using net::PutU8;

const char* OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kSendFirst: return "SEND_FIRST";
    case Opcode::kSendMiddle: return "SEND_MIDDLE";
    case Opcode::kSendLast: return "SEND_LAST";
    case Opcode::kSendOnly: return "SEND_ONLY";
    case Opcode::kWriteFirst: return "WRITE_FIRST";
    case Opcode::kWriteMiddle: return "WRITE_MIDDLE";
    case Opcode::kWriteLast: return "WRITE_LAST";
    case Opcode::kWriteOnly: return "WRITE_ONLY";
    case Opcode::kReadRequest: return "READ_REQUEST";
    case Opcode::kReadResponseFirst: return "READ_RESP_FIRST";
    case Opcode::kReadResponseMiddle: return "READ_RESP_MIDDLE";
    case Opcode::kReadResponseLast: return "READ_RESP_LAST";
    case Opcode::kReadResponseOnly: return "READ_RESP_ONLY";
    case Opcode::kAcknowledge: return "ACKNOWLEDGE";
    case Opcode::kCnp: return "CNP";
  }
  return "UNKNOWN";
}

void Bth::Serialize(std::span<std::uint8_t> buf) const {
  COWBIRD_DCHECK(buf.size() >= kBthBytes);
  PutU8(buf, 0, static_cast<std::uint8_t>(opcode));
  PutU8(buf, 1, static_cast<std::uint8_t>(solicited ? 0x80 : 0x00));
  PutU16(buf, 2, pkey);
  PutU8(buf, 4, 0);  // reserved
  PutU24(buf, 5, dest_qp & kPsnMask);
  PutU8(buf, 8, static_cast<std::uint8_t>(ack_request ? 0x80 : 0x00));
  PutU24(buf, 9, psn & kPsnMask);
}

Bth Bth::Parse(std::span<const std::uint8_t> buf) {
  COWBIRD_DCHECK(buf.size() >= kBthBytes);
  Bth h;
  h.opcode = static_cast<Opcode>(GetU8(buf, 0));
  h.solicited = (GetU8(buf, 1) & 0x80) != 0;
  h.pkey = GetU16(buf, 2);
  h.dest_qp = GetU24(buf, 5);
  h.ack_request = (GetU8(buf, 8) & 0x80) != 0;
  h.psn = GetU24(buf, 9);
  return h;
}

void Reth::Serialize(std::span<std::uint8_t> buf) const {
  COWBIRD_DCHECK(buf.size() >= kRethBytes);
  PutU64(buf, 0, vaddr);
  PutU32(buf, 8, rkey);
  PutU32(buf, 12, dma_length);
}

Reth Reth::Parse(std::span<const std::uint8_t> buf) {
  COWBIRD_DCHECK(buf.size() >= kRethBytes);
  Reth h;
  h.vaddr = GetU64(buf, 0);
  h.rkey = GetU32(buf, 8);
  h.dma_length = GetU32(buf, 12);
  return h;
}

void Aeth::Serialize(std::span<std::uint8_t> buf) const {
  COWBIRD_DCHECK(buf.size() >= kAethBytes);
  PutU8(buf, 0, syndrome);
  PutU24(buf, 1, msn & kPsnMask);
}

Aeth Aeth::Parse(std::span<const std::uint8_t> buf) {
  COWBIRD_DCHECK(buf.size() >= kAethBytes);
  Aeth h;
  h.syndrome = GetU8(buf, 0);
  h.msn = GetU24(buf, 1);
  return h;
}

bool LooksLikeRdma(const net::Packet& packet) {
  if (packet.bytes.size() < net::kL2L3L4Bytes + kBthBytes + kIcrcBytes) {
    return false;
  }
  const auto udp = net::UdpHeader::Parse(
      std::span<const std::uint8_t>(packet.bytes)
          .subspan(net::kEthernetHeaderBytes + net::kIpv4HeaderBytes));
  return udp.dst_port == net::kRoceUdpPort;
}

RdmaMessageView ParseRdmaPacket(const net::Packet& packet) {
  auto body = packet.L4Payload();
  COWBIRD_CHECK(body.size() >= kBthBytes + kIcrcBytes);
  RdmaMessageView view;
  view.bth = Bth::Parse(body);
  std::size_t offset = kBthBytes;
  if (HasReth(view.bth.opcode)) {
    view.reth = Reth::Parse(body.subspan(offset));
    offset += kRethBytes;
  }
  if (HasAeth(view.bth.opcode)) {
    view.aeth = Aeth::Parse(body.subspan(offset));
    offset += kAethBytes;
  }
  COWBIRD_CHECK(body.size() >= offset + kIcrcBytes);
  view.payload = body.subspan(offset, body.size() - offset - kIcrcBytes);
  return view;
}

net::Packet BuildRdmaPacketInPlace(net::NodeId src, net::NodeId dst,
                                   net::Priority priority, const Bth& bth,
                                   const Reth* reth, const Aeth* aeth,
                                   std::size_t payload_len,
                                   std::span<std::uint8_t>* payload) {
  COWBIRD_CHECK(HasReth(bth.opcode) == (reth != nullptr));
  COWBIRD_CHECK(HasAeth(bth.opcode) == (aeth != nullptr));
  std::size_t len = kBthBytes + kIcrcBytes + payload_len;
  if (reth != nullptr) len += kRethBytes;
  if (aeth != nullptr) len += kAethBytes;
  net::Packet packet = net::MakeUdpPacket(src, dst, len, priority);
  auto body = packet.MutableL4Payload();
  bth.Serialize(body);
  std::size_t offset = kBthBytes;
  if (reth != nullptr) {
    reth->Serialize(body.subspan(offset));
    offset += kRethBytes;
  }
  if (aeth != nullptr) {
    aeth->Serialize(body.subspan(offset));
    offset += kAethBytes;
  }
  if (payload != nullptr) *payload = body.subspan(offset, payload_len);
  // iCRC left zero: programmable switches cannot compute it, so the paper
  // (and this model) disables the end-host check (Section 5.1, footnote 1).
  return packet;
}

net::Packet BuildRdmaPacket(net::NodeId src, net::NodeId dst,
                            net::Priority priority, const Bth& bth,
                            const Reth* reth, const Aeth* aeth,
                            std::span<const std::uint8_t> payload) {
  std::span<std::uint8_t> dst_payload;
  net::Packet packet = BuildRdmaPacketInPlace(
      src, dst, priority, bth, reth, aeth, payload.size(), &dst_payload);
  if (!payload.empty()) {
    std::copy(payload.begin(), payload.end(), dst_payload.begin());
  }
  return packet;
}

}  // namespace cowbird::rdma
