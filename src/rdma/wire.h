// RoCEv2 wire format: BTH / RETH / AETH headers (Table 4 of the paper).
//
// Opcodes use the InfiniBand Architecture RC values. Every RDMA message in
// the simulation is a real byte sequence — UDP payload = BTH [RETH|AETH]
// data iCRC — produced and parsed by the functions here. The Cowbird-P4
// pipeline manipulates these same bytes, which keeps the paper's
// header-recycling trick (read response → read request → write) honest.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/check.h"
#include "net/packet.h"

namespace cowbird::rdma {

enum class Opcode : std::uint8_t {
  kSendFirst = 0x00,
  kSendMiddle = 0x01,
  kSendLast = 0x02,
  kSendOnly = 0x04,
  kWriteFirst = 0x06,
  kWriteMiddle = 0x07,
  kWriteLast = 0x08,
  kWriteOnly = 0x0A,
  kReadRequest = 0x0C,
  kReadResponseFirst = 0x0D,
  kReadResponseMiddle = 0x0E,
  kReadResponseLast = 0x0F,
  kReadResponseOnly = 0x10,
  kAcknowledge = 0x11,
  // Congestion Notification Packet (RoCEv2 CNP, the DCQCN ECN echo): a
  // BTH-only frame whose dest_qp names the *sender-side* QP whose flow
  // must slow down. Carries no RETH/AETH/payload.
  kCnp = 0x81,
};

const char* OpcodeName(Opcode op);

constexpr std::size_t kBthBytes = 12;
constexpr std::size_t kRethBytes = 16;
constexpr std::size_t kAethBytes = 4;
constexpr std::size_t kIcrcBytes = 4;

// Path MTU: payload bytes per data packet. The paper's Section 5.2 describes
// segmentation at 1024 bytes; that is the RoCE path MTU in the testbed.
constexpr std::size_t kPathMtu = 1024;

// AETH syndrome values (IBA 9.7.5.2, simplified).
constexpr std::uint8_t kSyndromeAck = 0x00;
constexpr std::uint8_t kSyndromeRnrNak = 0x20;
constexpr std::uint8_t kSyndromeNakSequenceError = 0x60;
constexpr std::uint8_t kSyndromeNakRemoteAccess = 0x62;

struct Bth {
  Opcode opcode = Opcode::kAcknowledge;
  bool solicited = false;
  bool ack_request = false;
  std::uint16_t pkey = 0xFFFF;
  std::uint32_t dest_qp = 0;  // 24 bits
  std::uint32_t psn = 0;      // 24 bits

  void Serialize(std::span<std::uint8_t> buf) const;
  static Bth Parse(std::span<const std::uint8_t> buf);
};

struct Reth {
  std::uint64_t vaddr = 0;
  std::uint32_t rkey = 0;
  std::uint32_t dma_length = 0;

  void Serialize(std::span<std::uint8_t> buf) const;
  static Reth Parse(std::span<const std::uint8_t> buf);
};

struct Aeth {
  std::uint8_t syndrome = kSyndromeAck;
  std::uint32_t msn = 0;  // 24 bits

  void Serialize(std::span<std::uint8_t> buf) const;
  static Aeth Parse(std::span<const std::uint8_t> buf);
};

constexpr bool HasReth(Opcode op) {
  return op == Opcode::kReadRequest || op == Opcode::kWriteFirst ||
         op == Opcode::kWriteOnly;
}
constexpr bool HasAeth(Opcode op) {
  return op == Opcode::kReadResponseFirst ||
         op == Opcode::kReadResponseLast ||
         op == Opcode::kReadResponseOnly || op == Opcode::kAcknowledge;
}
constexpr bool IsReadResponse(Opcode op) {
  return op == Opcode::kReadResponseFirst ||
         op == Opcode::kReadResponseMiddle ||
         op == Opcode::kReadResponseLast || op == Opcode::kReadResponseOnly;
}
constexpr bool IsWrite(Opcode op) {
  return op == Opcode::kWriteFirst || op == Opcode::kWriteMiddle ||
         op == Opcode::kWriteLast || op == Opcode::kWriteOnly;
}
constexpr bool IsSend(Opcode op) {
  return op == Opcode::kSendFirst || op == Opcode::kSendMiddle ||
         op == Opcode::kSendLast || op == Opcode::kSendOnly;
}
// Packets that carry upper-layer data.
constexpr bool CarriesPayload(Opcode op) {
  return IsReadResponse(op) || IsWrite(op) || IsSend(op);
}
// Last packet of a segmented message (or the only one).
constexpr bool IsLastOrOnly(Opcode op) {
  return op == Opcode::kSendLast || op == Opcode::kSendOnly ||
         op == Opcode::kWriteLast || op == Opcode::kWriteOnly ||
         op == Opcode::kReadResponseLast || op == Opcode::kReadResponseOnly;
}
constexpr bool IsFirstOrOnly(Opcode op) {
  return op == Opcode::kSendFirst || op == Opcode::kSendOnly ||
         op == Opcode::kWriteFirst || op == Opcode::kWriteOnly ||
         op == Opcode::kReadResponseFirst || op == Opcode::kReadResponseOnly;
}

// Number of data packets needed to move `len` payload bytes. A zero-length
// message still occupies one packet.
constexpr std::uint32_t SegmentCount(std::uint64_t len) {
  if (len == 0) return 1;
  return static_cast<std::uint32_t>((len + kPathMtu - 1) / kPathMtu);
}

// Parsed view of an RDMA packet's UDP payload.
struct RdmaMessageView {
  Bth bth;
  std::optional<Reth> reth;
  std::optional<Aeth> aeth;
  std::span<const std::uint8_t> payload;  // upper-layer data, no iCRC
};

// Parses the UDP payload of `packet`. CHECK-fails on malformed input: in the
// simulation, a malformed RDMA packet is a bug, not an input condition.
RdmaMessageView ParseRdmaPacket(const net::Packet& packet);

// True if the UDP payload looks like an RDMA message (used by demux).
bool LooksLikeRdma(const net::Packet& packet);

// Builds a full RoCEv2 frame. `payload` may be empty (read requests, ACKs).
net::Packet BuildRdmaPacket(net::NodeId src, net::NodeId dst,
                            net::Priority priority, const Bth& bth,
                            const Reth* reth, const Aeth* aeth,
                            std::span<const std::uint8_t> payload);

// In-place variant: the frame is built with a zeroed `payload_len`-byte
// payload region and `*payload` is pointed at it, so segmenting senders DMA
// straight into the frame instead of staging each chunk in a scratch vector.
net::Packet BuildRdmaPacketInPlace(net::NodeId src, net::NodeId dst,
                                   net::Priority priority, const Bth& bth,
                                   const Reth* reth, const Aeth* aeth,
                                   std::size_t payload_len,
                                   std::span<std::uint8_t>* payload);

// 24-bit PSN arithmetic.
constexpr std::uint32_t kPsnMask = 0xFFFFFF;
constexpr std::uint32_t PsnAdd(std::uint32_t psn, std::uint32_t n) {
  return (psn + n) & kPsnMask;
}
// Signed distance a−b in 24-bit space, in [-2^23, 2^23).
constexpr std::int32_t PsnDistance(std::uint32_t a, std::uint32_t b) {
  const std::uint32_t diff = (a - b) & kPsnMask;
  return diff < (1u << 23) ? static_cast<std::int32_t>(diff)
                           : static_cast<std::int32_t>(diff) - (1 << 24);
}

}  // namespace cowbird::rdma
