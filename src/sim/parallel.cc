#include "sim/parallel.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <mutex>

namespace cowbird::sim {

int MaxParallelism() {
#ifdef COWBIRD_PARALLEL_DISABLED
  return 1;
#else
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
#endif
}

namespace {

// Per-worker deque under a mutex. Item counts are tiny (seeds, bench
// configs) and each item is an entire simulation run, so contention on the
// pops is irrelevant next to the work they hand out; a lock keeps the
// steal path obviously correct.
struct WorkerDeque {
  std::mutex mu;
  std::deque<int> items;

  bool PopFront(int* out) {
    std::lock_guard<std::mutex> lock(mu);
    if (items.empty()) return false;
    *out = items.front();
    items.pop_front();
    return true;
  }
  bool PopBack(int* out) {
    std::lock_guard<std::mutex> lock(mu);
    if (items.empty()) return false;
    *out = items.back();
    items.pop_back();
    return true;
  }
};

}  // namespace

void ParallelFor(int jobs, int n, const std::function<void(int)>& body) {
  if (n <= 0) return;
  int workers = jobs <= 0 ? MaxParallelism() : jobs;
#ifdef COWBIRD_PARALLEL_DISABLED
  workers = 1;
#endif
  workers = std::min(workers, n);
  if (workers <= 1) {
    for (int i = 0; i < n; ++i) body(i);
    return;
  }

  std::vector<WorkerDeque> deques(static_cast<std::size_t>(workers));
  for (int i = 0; i < n; ++i) {
    deques[static_cast<std::size_t>(i % workers)].items.push_back(i);
  }

  // No work is ever added after this point, so a worker may retire as soon
  // as one full scan (own deque + every victim) comes up empty.
  auto worker_loop = [&](int w) {
    int item;
    for (;;) {
      if (deques[static_cast<std::size_t>(w)].PopFront(&item)) {
        body(item);
        continue;
      }
      bool stole = false;
      for (int k = 1; k < workers; ++k) {
        const int victim = (w + k) % workers;
        if (deques[static_cast<std::size_t>(victim)].PopBack(&item)) {
          body(item);
          stole = true;
          break;
        }
      }
      if (!stole) return;
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(workers - 1));
  for (int w = 1; w < workers; ++w) {
    threads.emplace_back(worker_loop, w);
  }
  worker_loop(0);
  for (std::thread& t : threads) t.join();
}

void DomainGroup::AddDomain(Simulation& sim) {
  COWBIRD_CHECK(sim.group_ == nullptr);
  sim.group_ = this;
  sim.domain_id_ = static_cast<int>(sims_.size());
  sims_.push_back(&sim);
  start_hooks_.resize(sims_.size());
  epochs_total_.resize(sims_.size(), 0);
  epochs_skipped_.resize(sims_.size(), 0);
  horizon_.resize(sims_.size(), -1);
  edge_index_dirty_ = true;
  // The slot grid is rebuilt on every registration; re-materialize mailboxes
  // for cuts that were (unusually) registered before this domain joined.
  mailboxes_.clear();
  mailboxes_.resize(sims_.size() * sims_.size());
  inbox_srcs_.assign(sims_.size(), {});
  if (route_all_pairs_) {
    for (int src = 0; src < domain_count(); ++src) {
      for (int dst = 0; dst < domain_count(); ++dst) EnsureMailbox(src, dst);
    }
  }
  for (const CutEdge& edge : cut_edges_) {
    if (edge.src >= 0 && edge.dst >= 0) EnsureMailbox(edge.src, edge.dst);
  }
}

void DomainGroup::EnsureMailbox(int src, int dst) {
  if (src == dst) return;
  auto& slot = mailboxes_[static_cast<std::size_t>(src) * sims_.size() +
                          static_cast<std::size_t>(dst)];
  if (!slot) {
    slot = std::make_unique<Mailbox>();
    auto& srcs = inbox_srcs_[static_cast<std::size_t>(dst)];
    srcs.insert(std::lower_bound(srcs.begin(), srcs.end(), src), src);
  }
}

int DomainGroup::worker_count() const {
  int w = requested_workers_ <= 0 ? MaxParallelism() : requested_workers_;
#ifdef COWBIRD_PARALLEL_DISABLED
  w = 1;
#endif
  return std::max(1, std::min(w, static_cast<int>(sims_.size())));
}

void DomainGroup::NoteCrossLink(const CutEdge& edge) {
  COWBIRD_CHECK(edge.src >= 0 && edge.src < domain_count());
  COWBIRD_CHECK(edge.dst >= 0 && edge.dst < domain_count());
  COWBIRD_CHECK(edge.src != edge.dst);
  has_cross_link_ = true;
  lookahead_ = std::min(lookahead_, edge.lookahead);
  cut_edges_.push_back(edge);
  edge_index_dirty_ = true;
  EnsureMailbox(edge.src, edge.dst);
}

void DomainGroup::NoteCrossLink(Nanos lookahead) {
  has_cross_link_ = true;
  lookahead_ = std::min(lookahead_, lookahead);
  cut_edges_.push_back(CutEdge{-1, -1, lookahead, "<unnamed cross-link>",
                               "<unknown>", "<unknown>"});
  route_all_pairs_ = true;
  edge_index_dirty_ = true;
  for (int src = 0; src < domain_count(); ++src) {
    for (int dst = 0; dst < domain_count(); ++dst) EnsureMailbox(src, dst);
  }
}

void DomainGroup::CrossPost(int src, int dst, Nanos when, EventFn fn) {
  // A message landing inside the destination's horizon would mean the epoch
  // already dispatched events it could have affected — the lookahead
  // contract is broken, not merely this call.
  COWBIRD_CHECK(when > horizon_[static_cast<std::size_t>(dst)]);
  Mailbox* box = MailboxSlot(src, dst);
  COWBIRD_CHECK(box != nullptr);  // pair registered via NoteCrossLink
  box->events.push_back(CrossEvent{when, box->next_seq++, std::move(fn)});
}

void DomainGroup::SetDomainStartHook(int domain, std::function<void()> hook) {
  start_hooks_[static_cast<std::size_t>(domain)] = std::move(hook);
}

Nanos DomainGroup::Now() const {
  Nanos now = 0;
  for (const Simulation* sim : sims_) now = std::max(now, sim->Now());
  return now;
}

std::uint64_t DomainGroup::EventsProcessed() const {
  std::uint64_t total = 0;
  for (const Simulation* sim : sims_) total += sim->EventsProcessed();
  return total;
}

void DomainGroup::DrainInboxes(int dst) {
  Simulation& sim = *sims_[static_cast<std::size_t>(dst)];
  std::uint64_t delivered = 0;
  for (int src : inbox_srcs_[static_cast<std::size_t>(dst)]) {
    Mailbox* box = MailboxSlot(src, dst);
    if (box->events.empty()) continue;
    // Per-source streams are already in push order; the cross-band heap key
    // (bit 63, src, push seq) merges them into a fixed (when, src, seq)
    // dispatch order — a pure function of the epoch's contents, independent
    // of thread interleaving and of which epoch delivered them. This is
    // where cross-domain determinism comes from.
    const std::uint64_t band =
        kCrossSeqBand | (static_cast<std::uint64_t>(src) << kCrossSrcShift);
    for (CrossEvent& event : box->events) {
      COWBIRD_CHECK(event.seq <= kCrossSeqMask);
      sim.ScheduleCross(event.when, band | event.seq, std::move(event.fn));
    }
    delivered += box->events.size();
    box->events.clear();
  }
  if (delivered != 0) {
    cross_events_delivered_.fetch_add(delivered, std::memory_order_relaxed);
  }
}

void DomainGroup::BuildEdgeIndex() {
  const int n = domain_count();
  out_edges_.assign(static_cast<std::size_t>(n), {});
  // Per-pair minimum lookahead; n is at most a few hundred, so the n^2
  // scratch is cheap and the build runs once per Run.
  std::vector<Nanos> pair_la(static_cast<std::size_t>(n) *
                                 static_cast<std::size_t>(n),
                             kNoEventTime);
  if (route_all_pairs_) {
    Nanos anon = kNoEventTime;
    for (const CutEdge& edge : cut_edges_) {
      if (edge.src < 0) anon = std::min(anon, edge.lookahead);
    }
    for (std::size_t src = 0; src < static_cast<std::size_t>(n); ++src) {
      for (std::size_t dst = 0; dst < static_cast<std::size_t>(n); ++dst) {
        if (src != dst) pair_la[src * static_cast<std::size_t>(n) + dst] = anon;
      }
    }
  }
  for (const CutEdge& edge : cut_edges_) {
    if (edge.src < 0) continue;
    Nanos& slot = pair_la[static_cast<std::size_t>(edge.src) *
                              static_cast<std::size_t>(n) +
                          static_cast<std::size_t>(edge.dst)];
    slot = std::min(slot, edge.lookahead);
  }
  for (int src = 0; src < n; ++src) {
    for (int dst = 0; dst < n; ++dst) {
      const Nanos la = pair_la[static_cast<std::size_t>(src) *
                                   static_cast<std::size_t>(n) +
                               static_cast<std::size_t>(dst)];
      if (la != kNoEventTime) {
        out_edges_[static_cast<std::size_t>(src)].push_back(OutEdge{dst, la});
      }
    }
  }
  edge_index_dirty_ = false;
}

void DomainGroup::ComputeHorizons(Nanos t_min, Nanos cap) {
  const int n = domain_count();
  if (horizon_policy_ == HorizonPolicy::kGlobalMin) {
    // Saturating t_min + lookahead - 1: with no cross-domain link the
    // horizon is unbounded and only the cap (deadline / next global)
    // bounds it.
    const Nanos horizon = lookahead_ >= kNoEventTime - t_min
                              ? kNoEventTime
                              : t_min + lookahead_ - 1;
    horizon_.assign(static_cast<std::size_t>(n), std::min(horizon, cap));
    return;
  }
  // Per-edge appointment horizons: LBTS(d) is a lower bound on every
  // message d can receive in this or ANY later epoch, so dispatching
  // through LBTS(d) - 1 is safe. The transitive fixpoint
  //   LBTS(d) = min over edges s->d of min(next(s), LBTS(s)) + la(s,d)
  // is what makes the bound hold across epochs: a relay chain can hand an
  // intermediate domain earlier work later, so one-hop promises are not
  // enough. Lookaheads are strictly positive, so a Dijkstra-style
  // relaxation in ascending reach order settles every node the first time
  // it pops. Pure function of next_times_ and the cut graph → identical on
  // every worker count. Mailboxes were drained before this point, so every
  // already-published delivery is accounted for by next_times_.
  lbts_.assign(static_cast<std::size_t>(n), kNoEventTime);
  reach_ = next_times_;  // reach(d) = min(next(d), LBTS(d)) so far
  relax_heap_.clear();
  const auto heap_greater = [](const std::pair<Nanos, int>& a,
                               const std::pair<Nanos, int>& b) {
    return a.first > b.first;
  };
  for (int d = 0; d < n; ++d) {
    const Nanos reach = reach_[static_cast<std::size_t>(d)];
    if (reach != kNoEventTime && cap != kNoEventTime && reach > cap) continue;
    if (reach != kNoEventTime) relax_heap_.emplace_back(reach, d);
  }
  std::make_heap(relax_heap_.begin(), relax_heap_.end(), heap_greater);
  while (!relax_heap_.empty()) {
    std::pop_heap(relax_heap_.begin(), relax_heap_.end(), heap_greater);
    const auto [reach, src] = relax_heap_.back();
    relax_heap_.pop_back();
    if (reach != reach_[static_cast<std::size_t>(src)]) continue;  // stale
    for (const OutEdge& edge : out_edges_[static_cast<std::size_t>(src)]) {
      if (reach >= kNoEventTime - edge.lookahead) continue;
      const Nanos arrival = reach + edge.lookahead;
      if (arrival < lbts_[static_cast<std::size_t>(edge.dst)]) {
        lbts_[static_cast<std::size_t>(edge.dst)] = arrival;
        if (arrival < reach_[static_cast<std::size_t>(edge.dst)]) {
          reach_[static_cast<std::size_t>(edge.dst)] = arrival;
          relax_heap_.emplace_back(arrival, edge.dst);
          std::push_heap(relax_heap_.begin(), relax_heap_.end(), heap_greater);
        }
      }
    }
  }
  for (int d = 0; d < n; ++d) {
    const Nanos lbts = lbts_[static_cast<std::size_t>(d)];
    horizon_[static_cast<std::size_t>(d)] =
        lbts == kNoEventTime ? cap : std::min(lbts - 1, cap);
  }
}

bool DomainGroup::NextEpoch(Nanos deadline) {
  const int n = domain_count();
  for (;;) {
    if (halt_requested_.load(std::memory_order_acquire)) return false;
    next_times_.resize(static_cast<std::size_t>(n));
    Nanos t_min = kNoEventTime;
    for (int d = 0; d < n; ++d) {
      next_times_[static_cast<std::size_t>(d)] =
          sims_[static_cast<std::size_t>(d)]->NextEventTime();
      t_min = std::min(t_min, next_times_[static_cast<std::size_t>(d)]);
    }
    const Nanos g_min =
        next_global_ < globals_.size() ? globals_[next_global_].when
                                       : kNoEventTime;
    const Nanos next = std::min(t_min, g_min);
    if (next == kNoEventTime || next > deadline) return false;
    if (g_min <= t_min) {
      // Globals at time T run before domain events at T; every domain is
      // quiescent here, so the event may touch any of them.
      GlobalEvent& global = globals_[next_global_++];
      for (Simulation* sim : sims_) sim->AdvanceTo(global.when);
      global.fn();
      // A global may send on cross-domain links (live migration does);
      // those deliveries sit in mailboxes where the horizon computation
      // cannot see them. Fold them into the heaps before deciding anything.
      for (int d = 0; d < n; ++d) DrainInboxes(d);
      continue;
    }
    Nanos cap = deadline;
    if (g_min != kNoEventTime) cap = std::min(cap, g_min - 1);
    ComputeHorizons(t_min, cap);
    // The domain holding t_min always has horizon >= t_min (every lookahead
    // is positive), so each epoch retires at least one event — progress is
    // guaranteed. Domains whose earliest event lies beyond their horizon
    // skip the epoch entirely.
    for (int d = 0; d < n; ++d) {
      ++epochs_total_[static_cast<std::size_t>(d)];
      if (next_times_[static_cast<std::size_t>(d)] >
          horizon_[static_cast<std::size_t>(d)]) {
        ++epochs_skipped_[static_cast<std::size_t>(d)];
      }
    }
    return true;
  }
}

void DomainGroup::RunEpochsSequential(Nanos deadline) {
  while (NextEpoch(deadline)) {
    ++epochs_;
    for (int d = 0; d < domain_count(); ++d) {
      sims_[static_cast<std::size_t>(d)]->DispatchUpTo(
          horizon_[static_cast<std::size_t>(d)]);
    }
    for (int d = 0; d < domain_count(); ++d) DrainInboxes(d);
  }
}

void DomainGroup::RunEpochsParallel(Nanos deadline) {
  stop_workers_ = false;
  const int workers = worker_count();
  barrier_ = std::make_unique<EpochBarrier>(workers);

  // Worker w owns domains {d : d % workers == w} and advances them in
  // ascending id within each phase — the same order the sequential path
  // uses, so any worker count replays the identical epoch schedule.
  auto run_hooks = [this, workers](int w) {
    for (int d = w; d < domain_count(); d += workers) {
      if (start_hooks_[static_cast<std::size_t>(d)]) {
        start_hooks_[static_cast<std::size_t>(d)]();
      }
    }
  };
  auto dispatch_owned = [this, workers](int w) {
    for (int d = w; d < domain_count(); d += workers) {
      sims_[static_cast<std::size_t>(d)]->DispatchUpTo(
          horizon_[static_cast<std::size_t>(d)]);
    }
  };
  auto drain_owned = [this, workers](int w) {
    for (int d = w; d < domain_count(); d += workers) DrainInboxes(d);
  };
  auto timed_wait = [this](int w) {
    const auto start = std::chrono::steady_clock::now();
    barrier_->ArriveAndWait();
    barrier_wait_ns_[static_cast<std::size_t>(w)] +=
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start)
                .count());
  };

  auto worker_main = [&run_hooks, &dispatch_owned, &drain_owned, &timed_wait,
                      this](int w) {
    run_hooks(w);
    for (;;) {
      timed_wait(w);  // A: epoch published (or stop)
      if (stop_workers_) return;
      dispatch_owned(w);
      timed_wait(w);  // B: all dispatch done, mailboxes final
      drain_owned(w);
      timed_wait(w);  // C: all heaps updated, workers park
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(workers - 1));
  for (int w = 1; w < workers; ++w) {
    threads.emplace_back(worker_main, w);
  }
  run_hooks(0);

  // Between barrier C and the next barrier A every worker is parked, so the
  // coordinator is free to read all heaps and run global events.
  while (NextEpoch(deadline)) {
    ++epochs_;
    timed_wait(0);  // A
    dispatch_owned(0);
    timed_wait(0);  // B
    drain_owned(0);
    timed_wait(0);  // C
  }
  stop_workers_ = true;
  barrier_->ArriveAndWait();  // release workers into the stop check
  for (std::thread& t : threads) t.join();
}

void DomainGroup::FailZeroLookahead() const {
  const CutEdge* bad = nullptr;
  for (const CutEdge& edge : cut_edges_) {
    if (edge.lookahead <= 0) {
      bad = &edge;
      break;
    }
  }
  if (bad != nullptr && bad->src >= 0) {
    std::fprintf(stderr,
                 "DomainGroup: zero-lookahead cut: link '%s' from '%s' "
                 "(domain %d) to '%s' (domain %d) advertises %lld ns of "
                 "propagation delay.\n",
                 bad->link.c_str(), bad->src_node.c_str(), bad->src,
                 bad->dst_node.c_str(), bad->dst,
                 static_cast<long long>(bad->lookahead));
  } else {
    std::fprintf(stderr,
                 "DomainGroup: zero-lookahead cut: a cross-domain link "
                 "advertised 0 ns of propagation delay "
                 "(NoteCrossLink(0)).\n");
  }
  std::fprintf(stderr,
               "Conservative epochs dispatch [T, T + min-lookahead - 1]; a "
               "zero-lookahead cut makes that window empty, so the group "
               "would spin forever. Give the link a positive propagation "
               "delay or place both endpoints in the same partition group.\n");
  std::abort();
}

void DomainGroup::RunInternal(Nanos deadline) {
  COWBIRD_CHECK(!sims_.empty());
  // A zero-lookahead cut admits no safe horizon: the epoch loop would make
  // no progress. Fail loudly — naming the offending link — instead of
  // deadlocking (regression-tested).
  if (has_cross_link_ && lookahead_ <= 0) FailZeroLookahead();
  halt_requested_.store(false, std::memory_order_release);
  for (Simulation* sim : sims_) sim->ClearHalt();
  if (edge_index_dirty_) BuildEdgeIndex();
  resolved_workers_ = worker_count();
  if (barrier_wait_ns_.size() < static_cast<std::size_t>(resolved_workers_)) {
    barrier_wait_ns_.resize(static_cast<std::size_t>(resolved_workers_), 0);
  }
  // Globals may be registered in any order; consume in (when, seq) order.
  std::stable_sort(globals_.begin() + static_cast<std::ptrdiff_t>(next_global_),
                   globals_.end(),
                   [](const GlobalEvent& a, const GlobalEvent& b) {
                     if (a.when != b.when) return a.when < b.when;
                     return a.seq < b.seq;
                   });

  if (worker_count() > 1 && domain_count() > 1) {
    RunEpochsParallel(deadline);
  } else {
    for (const auto& hook : start_hooks_) {
      if (hook) hook();
    }
    RunEpochsSequential(deadline);
  }

  // Mirror Simulation::RunUntil: clocks land exactly on the deadline unless
  // the run was halted first.
  if (deadline != kNoEventTime &&
      !halt_requested_.load(std::memory_order_acquire)) {
    for (Simulation* sim : sims_) sim->AdvanceTo(deadline);
  }
}

std::uint64_t DomainGroup::barrier_wait_ns(int domain) const {
  if (barrier_wait_ns_.empty()) return 0;
  return barrier_wait_ns_[static_cast<std::size_t>(domain % resolved_workers_)];
}

void DomainGroup::ComputeHorizonsForBench(Nanos deadline) {
  if (edge_index_dirty_) BuildEdgeIndex();
  const int n = domain_count();
  next_times_.resize(static_cast<std::size_t>(n));
  Nanos t_min = kNoEventTime;
  for (int d = 0; d < n; ++d) {
    next_times_[static_cast<std::size_t>(d)] =
        sims_[static_cast<std::size_t>(d)]->NextEventTime();
    t_min = std::min(t_min, next_times_[static_cast<std::size_t>(d)]);
  }
  ComputeHorizons(t_min, deadline);
}

void DomainGroup::DrainAllInboxesForBench() {
  for (int d = 0; d < domain_count(); ++d) DrainInboxes(d);
}

}  // namespace cowbird::sim
