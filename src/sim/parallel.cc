#include "sim/parallel.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <mutex>

namespace cowbird::sim {

int MaxParallelism() {
#ifdef COWBIRD_PARALLEL_DISABLED
  return 1;
#else
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
#endif
}

namespace {

// Per-worker deque under a mutex. Item counts are tiny (seeds, bench
// configs) and each item is an entire simulation run, so contention on the
// pops is irrelevant next to the work they hand out; a lock keeps the
// steal path obviously correct.
struct WorkerDeque {
  std::mutex mu;
  std::deque<int> items;

  bool PopFront(int* out) {
    std::lock_guard<std::mutex> lock(mu);
    if (items.empty()) return false;
    *out = items.front();
    items.pop_front();
    return true;
  }
  bool PopBack(int* out) {
    std::lock_guard<std::mutex> lock(mu);
    if (items.empty()) return false;
    *out = items.back();
    items.pop_back();
    return true;
  }
};

}  // namespace

void ParallelFor(int jobs, int n, const std::function<void(int)>& body) {
  if (n <= 0) return;
  int workers = jobs <= 0 ? MaxParallelism() : jobs;
#ifdef COWBIRD_PARALLEL_DISABLED
  workers = 1;
#endif
  workers = std::min(workers, n);
  if (workers <= 1) {
    for (int i = 0; i < n; ++i) body(i);
    return;
  }

  std::vector<WorkerDeque> deques(static_cast<std::size_t>(workers));
  for (int i = 0; i < n; ++i) {
    deques[static_cast<std::size_t>(i % workers)].items.push_back(i);
  }

  // No work is ever added after this point, so a worker may retire as soon
  // as one full scan (own deque + every victim) comes up empty.
  auto worker_loop = [&](int w) {
    int item;
    for (;;) {
      if (deques[static_cast<std::size_t>(w)].PopFront(&item)) {
        body(item);
        continue;
      }
      bool stole = false;
      for (int k = 1; k < workers; ++k) {
        const int victim = (w + k) % workers;
        if (deques[static_cast<std::size_t>(victim)].PopBack(&item)) {
          body(item);
          stole = true;
          break;
        }
      }
      if (!stole) return;
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(workers - 1));
  for (int w = 1; w < workers; ++w) {
    threads.emplace_back(worker_loop, w);
  }
  worker_loop(0);
  for (std::thread& t : threads) t.join();
}

void DomainGroup::AddDomain(Simulation& sim) {
  COWBIRD_CHECK(sim.group_ == nullptr);
  sim.group_ = this;
  sim.domain_id_ = static_cast<int>(sims_.size());
  sims_.push_back(&sim);
  start_hooks_.resize(sims_.size());
  drain_scratch_.resize(sims_.size());
  // The slot grid is rebuilt on every registration; re-materialize mailboxes
  // for cuts that were (unusually) registered before this domain joined.
  mailboxes_.clear();
  mailboxes_.resize(sims_.size() * sims_.size());
  if (route_all_pairs_) {
    for (int src = 0; src < domain_count(); ++src) {
      for (int dst = 0; dst < domain_count(); ++dst) EnsureMailbox(src, dst);
    }
  }
  for (const CutEdge& edge : cut_edges_) {
    if (edge.src >= 0 && edge.dst >= 0) EnsureMailbox(edge.src, edge.dst);
  }
}

void DomainGroup::EnsureMailbox(int src, int dst) {
  if (src == dst) return;
  auto& slot = mailboxes_[static_cast<std::size_t>(src) * sims_.size() +
                          static_cast<std::size_t>(dst)];
  if (!slot) slot = std::make_unique<Mailbox>();
}

int DomainGroup::worker_count() const {
  int w = requested_workers_ <= 0 ? MaxParallelism() : requested_workers_;
#ifdef COWBIRD_PARALLEL_DISABLED
  w = 1;
#endif
  return std::max(1, std::min(w, static_cast<int>(sims_.size())));
}

void DomainGroup::NoteCrossLink(const CutEdge& edge) {
  COWBIRD_CHECK(edge.src >= 0 && edge.src < domain_count());
  COWBIRD_CHECK(edge.dst >= 0 && edge.dst < domain_count());
  COWBIRD_CHECK(edge.src != edge.dst);
  has_cross_link_ = true;
  lookahead_ = std::min(lookahead_, edge.lookahead);
  cut_edges_.push_back(edge);
  EnsureMailbox(edge.src, edge.dst);
}

void DomainGroup::NoteCrossLink(Nanos lookahead) {
  has_cross_link_ = true;
  lookahead_ = std::min(lookahead_, lookahead);
  cut_edges_.push_back(CutEdge{-1, -1, lookahead, "<unnamed cross-link>",
                               "<unknown>", "<unknown>"});
  route_all_pairs_ = true;
  for (int src = 0; src < domain_count(); ++src) {
    for (int dst = 0; dst < domain_count(); ++dst) EnsureMailbox(src, dst);
  }
}

void DomainGroup::CrossPost(int src, int dst, Nanos when, EventFn fn) {
  // A message landing inside the current horizon would mean the epoch
  // already dispatched events it could have affected — the lookahead
  // contract is broken, not merely this call.
  COWBIRD_CHECK(when > epoch_limit_);
  Mailbox* box = MailboxSlot(src, dst);
  COWBIRD_CHECK(box != nullptr);  // pair registered via NoteCrossLink
  const bool pushed =
      box->queue.TryPush(CrossEvent{when, box->next_seq++, std::move(fn)});
  COWBIRD_CHECK(pushed);  // ring sized for worst-case in-flight deliveries
}

void DomainGroup::SetDomainStartHook(int domain, std::function<void()> hook) {
  start_hooks_[static_cast<std::size_t>(domain)] = std::move(hook);
}

Nanos DomainGroup::Now() const {
  Nanos now = 0;
  for (const Simulation* sim : sims_) now = std::max(now, sim->Now());
  return now;
}

std::uint64_t DomainGroup::EventsProcessed() const {
  std::uint64_t total = 0;
  for (const Simulation* sim : sims_) total += sim->EventsProcessed();
  return total;
}

void DomainGroup::DrainInboxes(int dst) {
  auto& scratch = drain_scratch_[static_cast<std::size_t>(dst)];
  scratch.clear();
  for (int src = 0; src < domain_count(); ++src) {
    if (src == dst) continue;
    Mailbox* box = MailboxSlot(src, dst);
    if (box == nullptr) continue;  // pair carries no cut edge
    CrossEvent event;
    while (box->queue.TryPop(event)) {
      scratch.push_back(
          PendingCross{event.when, src, event.seq, std::move(event.fn)});
    }
  }
  // Per-source streams arrive in push order; the merged order (when, src,
  // seq) is a pure function of the epoch's contents, independent of thread
  // interleaving — this sort is where cross-domain determinism comes from.
  std::stable_sort(scratch.begin(), scratch.end(),
                   [](const PendingCross& a, const PendingCross& b) {
                     if (a.when != b.when) return a.when < b.when;
                     if (a.src != b.src) return a.src < b.src;
                     return a.seq < b.seq;
                   });
  Simulation& sim = *sims_[static_cast<std::size_t>(dst)];
  for (PendingCross& pending : scratch) {
    sim.ScheduleAt(pending.when, std::move(pending.fn));
  }
  cross_events_delivered_.fetch_add(scratch.size(),
                                    std::memory_order_relaxed);
  scratch.clear();
}

bool DomainGroup::NextEpoch(Nanos deadline, Nanos* limit) {
  for (;;) {
    if (halt_requested_.load(std::memory_order_acquire)) return false;
    Nanos t_min = kNoEventTime;
    for (const Simulation* sim : sims_) {
      t_min = std::min(t_min, sim->NextEventTime());
    }
    const Nanos g_min =
        next_global_ < globals_.size() ? globals_[next_global_].when
                                       : kNoEventTime;
    const Nanos next = std::min(t_min, g_min);
    if (next == kNoEventTime || next > deadline) return false;
    if (g_min <= t_min) {
      // Globals at time T run before domain events at T; every domain is
      // quiescent here, so the event may touch any of them.
      GlobalEvent& global = globals_[next_global_++];
      for (Simulation* sim : sims_) sim->AdvanceTo(global.when);
      global.fn();
      continue;
    }
    // Saturating t_min + lookahead - 1: with no cross-domain link the
    // horizon is unbounded and only the deadline (or a global) caps it.
    Nanos horizon = lookahead_ >= kNoEventTime - t_min
                        ? kNoEventTime
                        : t_min + lookahead_ - 1;
    if (g_min != kNoEventTime) horizon = std::min(horizon, g_min - 1);
    *limit = std::min(horizon, deadline);
    return true;
  }
}

void DomainGroup::RunEpochsSequential(Nanos deadline) {
  Nanos limit = 0;
  while (NextEpoch(deadline, &limit)) {
    ++epochs_;
    epoch_limit_ = limit;
    for (Simulation* sim : sims_) sim->DispatchUpTo(limit);
    for (int d = 0; d < domain_count(); ++d) DrainInboxes(d);
  }
}

void DomainGroup::RunEpochsParallel(Nanos deadline) {
  stop_workers_ = false;
  const int workers = worker_count();
  barrier_ = std::make_unique<EpochBarrier>(workers);

  // Worker w owns domains {d : d % workers == w} and advances them in
  // ascending id within each phase — the same order the sequential path
  // uses, so any worker count replays the identical epoch schedule.
  auto run_hooks = [this, workers](int w) {
    for (int d = w; d < domain_count(); d += workers) {
      if (start_hooks_[static_cast<std::size_t>(d)]) {
        start_hooks_[static_cast<std::size_t>(d)]();
      }
    }
  };
  auto dispatch_owned = [this, workers](int w) {
    for (int d = w; d < domain_count(); d += workers) {
      sims_[static_cast<std::size_t>(d)]->DispatchUpTo(epoch_limit_);
    }
  };
  auto drain_owned = [this, workers](int w) {
    for (int d = w; d < domain_count(); d += workers) DrainInboxes(d);
  };

  auto worker_main = [&run_hooks, &dispatch_owned, &drain_owned, this](int w) {
    run_hooks(w);
    for (;;) {
      barrier_->ArriveAndWait();  // A: epoch published (or stop)
      if (stop_workers_) return;
      dispatch_owned(w);
      barrier_->ArriveAndWait();  // B: all dispatch done, mailboxes final
      drain_owned(w);
      barrier_->ArriveAndWait();  // C: all heaps updated, workers park
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(workers - 1));
  for (int w = 1; w < workers; ++w) {
    threads.emplace_back(worker_main, w);
  }
  run_hooks(0);

  // Between barrier C and the next barrier A every worker is parked, so the
  // coordinator is free to read all heaps and run global events.
  Nanos limit = 0;
  while (NextEpoch(deadline, &limit)) {
    ++epochs_;
    epoch_limit_ = limit;
    barrier_->ArriveAndWait();  // A
    dispatch_owned(0);
    barrier_->ArriveAndWait();  // B
    drain_owned(0);
    barrier_->ArriveAndWait();  // C
  }
  stop_workers_ = true;
  barrier_->ArriveAndWait();  // release workers into the stop check
  for (std::thread& t : threads) t.join();
}

void DomainGroup::FailZeroLookahead() const {
  const CutEdge* bad = nullptr;
  for (const CutEdge& edge : cut_edges_) {
    if (edge.lookahead <= 0) {
      bad = &edge;
      break;
    }
  }
  if (bad != nullptr && bad->src >= 0) {
    std::fprintf(stderr,
                 "DomainGroup: zero-lookahead cut: link '%s' from '%s' "
                 "(domain %d) to '%s' (domain %d) advertises %lld ns of "
                 "propagation delay.\n",
                 bad->link.c_str(), bad->src_node.c_str(), bad->src,
                 bad->dst_node.c_str(), bad->dst,
                 static_cast<long long>(bad->lookahead));
  } else {
    std::fprintf(stderr,
                 "DomainGroup: zero-lookahead cut: a cross-domain link "
                 "advertised 0 ns of propagation delay "
                 "(NoteCrossLink(0)).\n");
  }
  std::fprintf(stderr,
               "Conservative epochs dispatch [T, T + min-lookahead - 1]; a "
               "zero-lookahead cut makes that window empty, so the group "
               "would spin forever. Give the link a positive propagation "
               "delay or place both endpoints in the same partition group.\n");
  std::abort();
}

void DomainGroup::RunInternal(Nanos deadline) {
  COWBIRD_CHECK(!sims_.empty());
  // A zero-lookahead cut admits no safe horizon: the epoch loop would make
  // no progress. Fail loudly — naming the offending link — instead of
  // deadlocking (regression-tested).
  if (has_cross_link_ && lookahead_ <= 0) FailZeroLookahead();
  halt_requested_.store(false, std::memory_order_release);
  for (Simulation* sim : sims_) sim->ClearHalt();
  epoch_limit_ = 0;
  // Globals may be registered in any order; consume in (when, seq) order.
  std::stable_sort(globals_.begin() + static_cast<std::ptrdiff_t>(next_global_),
                   globals_.end(),
                   [](const GlobalEvent& a, const GlobalEvent& b) {
                     if (a.when != b.when) return a.when < b.when;
                     return a.seq < b.seq;
                   });

  if (worker_count() > 1 && domain_count() > 1) {
    RunEpochsParallel(deadline);
  } else {
    for (const auto& hook : start_hooks_) {
      if (hook) hook();
    }
    RunEpochsSequential(deadline);
  }

  // Mirror Simulation::RunUntil: clocks land exactly on the deadline unless
  // the run was halted first.
  if (deadline != kNoEventTime &&
      !halt_requested_.load(std::memory_order_acquire)) {
    for (Simulation* sim : sims_) sim->AdvanceTo(deadline);
  }
}

}  // namespace cowbird::sim
