// Parallel execution layer, two levels.
//
// Level 1 — sweep parallelism: ParallelFor runs N completely independent
// jobs (each typically owning a private Simulation) on a small
// work-stealing pool. Each job stays bit-deterministic on its own; callers
// keep results in job-index order, so an aggregated report is byte-identical
// no matter how many workers ran it.
//
// Level 2 — intra-sim domains: DomainGroup partitions one logical
// simulation into N Simulation instances (event-loop domains) cut at
// net::Link boundaries. Synchronization is classic conservative PDES: every
// cross-domain link registers a CutEdge advertising its propagation delay
// as lookahead, and the group advances in barrier-separated epochs. Each
// epoch gives every domain d an *appointment horizon*: under the default
// HorizonPolicy::kPerEdge it is horizon(d) = LBTS(d) - 1, where the lower
// bound on any future incoming message time is the fixpoint
//
//   LBTS(d) = min over incoming cut edges (s -> d) of
//             min(NextEventTime(s), LBTS(s)) + lookahead(s -> d)
//
// computed by the coordinator (a Dijkstra-style relaxation over the
// lookahead graph) while every domain is quiescent. The transitive form
// matters: a relay chain a -> b -> c can hand b earlier work next epoch, so
// c's horizon must honor next(a) + la(a,b) + la(b,c), not just b's current
// earliest event. A domain whose own earliest event lies beyond its horizon
// simply skips the epoch. HorizonPolicy::kGlobalMin degenerates to the
// classic single horizon T_min + min-lookahead - 1 shared by all domains
// (T_min = earliest pending event anywhere); since every lookahead path is
// at least min-lookahead long, per-edge horizons dominate the global one,
// and the two policies produce bit-identical outcomes — which the scale
// tests pin.
//
// Cross-domain deliveries travel through per-(src,dst) mailboxes
// (materialized only for registered cut pairs, so an N-node fabric does not
// pay for N^2 rings) that are appended during dispatch and merged into the
// destination heap between epochs. Merged entries take heap keys in the
// cross band — bit 63, then source domain, then per-mailbox push order —
// above every locally drawn sequence number, so the dispatch order of
// same-time events is locals first (schedule order), then cross events by
// (src, push order): a pure function of the published epoch contents,
// independent of worker count, drain timing, and horizon policy.
//
// N domains run on W = worker_count() threads: domain d is owned by worker
// d % W, each worker advancing its domains in ascending id within every
// epoch phase. W = 1 degenerates to the sequential schedule, so the same
// run is bit-identical for any worker count — the determinism tests pin
// 1/2/4/8 workers against each other.
//
// Zero lookahead would make the horizon empty; the group refuses to run —
// naming the offending link and both endpoints — instead of spinning
// forever.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/units.h"
#include "sim/simulation.h"

namespace cowbird::sim {

// Upper bound on useful thread-level parallelism: hardware concurrency, or
// 1 when the build was configured with COWBIRD_PARALLEL=OFF.
int MaxParallelism();

// Default job count for --jobs style flags (same as MaxParallelism, named
// for intent at call sites).
inline int HardwareJobs() { return MaxParallelism(); }

// Runs body(0..n-1), each index exactly once, on min(jobs, n) workers with
// work stealing (each worker pops its own deque from the front and steals
// from others' backs). jobs <= 1 — or a COWBIRD_PARALLEL=OFF build — runs a
// plain serial loop on the calling thread. The call returns after every
// index has completed. An explicit jobs > MaxParallelism() is honored
// (oversubscription is harmless and the determinism tests need it).
void ParallelFor(int jobs, int n, const std::function<void(int)>& body);

// Bounded lock-free single-producer single-consumer ring. Capacity must be
// a power of two. Push/Pop are wait-free; Push returns false when full.
template <typename T, std::size_t kCapacity>
class SpscQueue {
  static_assert(kCapacity >= 2 && (kCapacity & (kCapacity - 1)) == 0,
                "capacity must be a power of two");

 public:
  bool TryPush(T&& value) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail == kCapacity) return false;
    slots_[head & (kCapacity - 1)] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  bool TryPop(T& out) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (tail == head) return false;
    out = std::move(slots_[tail & (kCapacity - 1)]);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Producer-side view; exact when called from either endpoint's thread
  // while the other endpoint is quiescent (how the epoch protocol uses it).
  std::size_t SizeApprox() const {
    return static_cast<std::size_t>(head_.load(std::memory_order_acquire) -
                                    tail_.load(std::memory_order_acquire));
  }

 private:
  std::array<T, kCapacity> slots_{};
  std::atomic<std::uint64_t> head_{0};  // written by producer
  std::atomic<std::uint64_t> tail_{0};  // written by consumer
};

// Sense-reversing counting barrier. Short adaptive spin, then parks on the
// sense word (std::atomic::wait) — epochs are microseconds of work, but a
// single-core host needs the loser to yield the CPU, not burn it.
class EpochBarrier {
 public:
  explicit EpochBarrier(int parties) : parties_(parties) {}

  void ArriveAndWait() {
    const std::uint32_t sense = sense_.load(std::memory_order_acquire);
    if (count_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      count_.store(0, std::memory_order_relaxed);
      sense_.store(sense + 1, std::memory_order_release);
      sense_.notify_all();
      return;
    }
    for (int spin = 0; spin < 64; ++spin) {
      if (sense_.load(std::memory_order_acquire) != sense) return;
    }
    while (sense_.load(std::memory_order_acquire) == sense) {
      sense_.wait(sense, std::memory_order_acquire);
    }
  }

 private:
  const int parties_;
  std::atomic<int> count_{0};
  std::atomic<std::uint32_t> sense_{0};
};

// How DomainGroup bounds each epoch. Both policies yield bit-identical
// simulation outcomes (the cross-band heap keys make same-time tie-breaks
// independent of delivery timing); kPerEdge runs far fewer epochs on
// fabrics where most domains are idle most of the time.
enum class HorizonPolicy {
  kGlobalMin,  // one horizon for all: T_min + min-lookahead - 1
  kPerEdge,    // per-domain horizons from incoming cut edges (default)
};

// Heap-key band for cross-domain deliveries: above every locally drawn
// sequence (bit 63), ordered by source domain then per-mailbox push order.
inline constexpr std::uint64_t kCrossSeqBand = 1ull << 63;
inline constexpr int kCrossSrcShift = 40;
inline constexpr std::uint64_t kCrossSeqMask = (1ull << kCrossSrcShift) - 1;

// One registered cross-domain link: the unit the partitioner hands to the
// group. `lookahead` is the link's propagation delay; the names exist so a
// zero-lookahead misconfiguration can be reported against the topology the
// user actually wrote instead of as a bare CHECK.
struct CutEdge {
  int src = -1;
  int dst = -1;
  Nanos lookahead = 0;
  std::string link;      // e.g. "uplink[client3]"
  std::string src_node;  // e.g. "client3"
  std::string dst_node;  // e.g. "tor"
};

// A set of Simulation domains advancing in lockstep epochs (see file
// comment). The calling thread doubles as worker 0 / the epoch coordinator;
// worker_count() - 1 extra threads are started per Run, each owning the
// domains d with d % worker_count() == its index. worker_count() == 1 runs
// every domain phase-by-phase in domain order on the calling thread —
// producing the exact same schedule, which is what the cross-worker-count
// determinism tests pin.
class DomainGroup {
 public:
  // workers <= 0 → MaxParallelism(). The resolved count is capped by the
  // domain count; an explicit request above MaxParallelism() is honored.
  explicit DomainGroup(int workers = 0) : requested_workers_(workers) {}
  DomainGroup(const DomainGroup&) = delete;
  DomainGroup& operator=(const DomainGroup&) = delete;
  ~DomainGroup() = default;

  // Registration order assigns domain ids 0..n-1. Must happen before any
  // cross-domain wiring and before the first Run.
  void AddDomain(Simulation& sim);
  int domain_count() const { return static_cast<int>(sims_.size()); }
  Simulation& domain(int d) { return *sims_[static_cast<std::size_t>(d)]; }
  int worker_count() const;

  // Called by net::Link when its endpoints land in different domains. The
  // advertised lookahead bounds the epoch horizons (see HorizonPolicy);
  // zero is refused at Run time (it would starve the epoch loop) with an
  // error naming the offending link and endpoints. The named form
  // materializes the mailbox for exactly that (src, dst) pair; the
  // anonymous Nanos overload keeps every pair routable (small hand-built
  // groups, tests).
  void NoteCrossLink(const CutEdge& edge);
  void NoteCrossLink(Nanos lookahead);
  Nanos lookahead() const { return lookahead_; }
  bool has_cross_link() const { return has_cross_link_; }
  const std::vector<CutEdge>& cut_edges() const { return cut_edges_; }

  // Epoch-horizon policy; may be changed between runs, not during one.
  void set_horizon_policy(HorizonPolicy policy) { horizon_policy_ = policy; }
  HorizonPolicy horizon_policy() const { return horizon_policy_; }

  // Delivers `fn` into domain `dst` at virtual time `when`. Call only from
  // domain `src`'s thread while it is dispatching an epoch; `when` must lie
  // strictly beyond `dst`'s published horizon (any positive-lookahead link
  // guarantees this, and the call CHECKs it).
  void CrossPost(int src, int dst, Nanos when, EventFn fn);

  // One-shot event executed between epochs with every domain quiescent and
  // advanced to `when` — the escape hatch for control-plane actions that
  // span domains (engine crash + migration in the chaos harness). Schedule
  // before Run. Events run in (when, registration) order, before same-time
  // domain events.
  template <typename F>
  void ScheduleGlobal(Nanos when, F&& fn) {
    globals_.push_back(GlobalEvent{when, global_seq_++,
                                   std::function<void()>(std::forward<F>(fn))});
  }

  // Invoked once per Run on the thread that owns `domain`, before its first
  // epoch — how per-domain telemetry registries learn their owner thread.
  // Hooks must not touch simulation state (the coordinator may already be
  // reading event heaps while late workers are still starting up).
  void SetDomainStartHook(int domain, std::function<void()> hook);

  // Counterparts of Simulation::Run/RunUntil/RunFor over the whole group.
  void Run() { RunInternal(kNoEventTime); }
  void RunUntil(Nanos deadline) { RunInternal(deadline); }
  void RunFor(Nanos duration) { RunUntil(Now() + duration); }

  // Stops the group at the next epoch boundary. Simulation::Halt() on any
  // member domain calls this (and additionally stops that domain's own
  // dispatch loop immediately, exactly as in a serial run).
  void RequestHalt() { halt_requested_.store(true, std::memory_order_release); }

  Nanos Now() const;                      // max over domains
  std::uint64_t EventsProcessed() const;  // sum over domains
  std::uint64_t epochs() const { return epochs_; }
  std::uint64_t cross_events_delivered() const {
    return cross_events_delivered_.load(std::memory_order_relaxed);
  }

  // Per-domain epoch efficiency, accumulated across runs. `epochs_total`
  // counts group epochs while the domain was registered; `epochs_skipped`
  // counts those where the domain had no event inside its horizon (the
  // per-edge policy's win). Both are deterministic. `barrier_wait_ns` is
  // the *wall-clock* time the domain's owning worker spent parked at epoch
  // barriers — nondeterministic by nature, report it like the benches'
  // `_wall` metrics.
  std::uint64_t epochs_total(int domain) const {
    return epochs_total_[static_cast<std::size_t>(domain)];
  }
  std::uint64_t epochs_skipped(int domain) const {
    return epochs_skipped_[static_cast<std::size_t>(domain)];
  }
  std::uint64_t barrier_wait_ns(int domain) const;

  // Bench-only hooks (micro_hotpaths): one horizon recomputation over the
  // current heap state / one full drain pass, on the calling thread.
  void ComputeHorizonsForBench(Nanos deadline);
  void DrainAllInboxesForBench();

 private:
  struct CrossEvent {
    Nanos when = 0;
    std::uint64_t seq = 0;  // per-mailbox push order
    EventFn fn;
  };
  // Appended by the source domain's worker during dispatch, drained into
  // the destination heap between barriers — the epoch barriers provide the
  // happens-before, so no per-event synchronization is needed.
  struct Mailbox {
    std::vector<CrossEvent> events;
    std::uint64_t next_seq = 0;  // producer-owned, monotonic over the run
  };
  struct GlobalEvent {
    Nanos when;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct OutEdge {
    int dst;
    Nanos lookahead;  // min over registered edges src -> dst
  };

  void RunInternal(Nanos deadline);
  void RunEpochsSequential(Nanos deadline);
  void RunEpochsParallel(Nanos deadline);
  // One scheduling decision by the coordinator (workers quiescent): either
  // runs due global events / computes per-domain horizons into horizon_
  // (returns true) or decides the run is over (returns false).
  bool NextEpoch(Nanos deadline);
  // Fills horizon_ for the active policy from next_times_, capping every
  // entry at `cap` (per-edge: the LBTS relaxation from the file comment).
  void ComputeHorizons(Nanos t_min, Nanos cap);
  // Per-src (dst, min-lookahead) lists derived from cut_edges_ /
  // route_all_pairs_; rebuilt at Run when registration changed.
  void BuildEdgeIndex();
  void DrainInboxes(int dst);
  [[noreturn]] void FailZeroLookahead() const;
  void EnsureMailbox(int src, int dst);
  Mailbox* MailboxSlot(int src, int dst) {
    return mailboxes_[static_cast<std::size_t>(src) * sims_.size() +
                      static_cast<std::size_t>(dst)]
        .get();
  }

  std::vector<Simulation*> sims_;
  int requested_workers_ = 0;
  Nanos lookahead_ = kNoEventTime;
  bool has_cross_link_ = false;
  bool route_all_pairs_ = false;  // anonymous NoteCrossLink(Nanos) was used
  std::vector<CutEdge> cut_edges_;
  HorizonPolicy horizon_policy_ = HorizonPolicy::kPerEdge;
  // Src-major n*n grid of mailbox slots; only registered (src, dst) pairs
  // are materialized (all pairs when route_all_pairs_).
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  // Dense per-dst list of sources with a materialized mailbox (ascending),
  // so a drain touches live pairs only instead of scanning all n^2 slots.
  std::vector<std::vector<int>> inbox_srcs_;
  std::vector<std::vector<OutEdge>> out_edges_;  // per src, ascending dst
  bool edge_index_dirty_ = true;
  std::vector<GlobalEvent> globals_;
  std::size_t next_global_ = 0;
  std::uint64_t global_seq_ = 0;
  std::vector<std::function<void()>> start_hooks_;
  std::atomic<bool> halt_requested_{false};
  std::uint64_t epochs_ = 0;
  std::vector<std::uint64_t> epochs_total_;
  std::vector<std::uint64_t> epochs_skipped_;
  // Per-worker barrier wait, written only by the owning worker during a
  // parallel run and read after it.
  std::vector<std::uint64_t> barrier_wait_ns_;
  int resolved_workers_ = 1;  // worker count of the last run
  // Workers drain their own inboxes concurrently; the tally is the only
  // shared word they touch.
  std::atomic<std::uint64_t> cross_events_delivered_{0};
  // Epoch protocol state, shared coordinator → workers. Plain fields: every
  // write happens while the readers are parked at a barrier, and the
  // barrier's atomics order the hand-off.
  std::vector<Nanos> horizon_;     // per-domain epoch horizon (inclusive)
  std::vector<Nanos> next_times_;  // coordinator scratch
  std::vector<Nanos> lbts_;        // coordinator scratch (LBTS relaxation)
  std::vector<Nanos> reach_;       // coordinator scratch (relaxation keys)
  std::vector<std::pair<Nanos, int>> relax_heap_;  // coordinator scratch
  bool stop_workers_ = false;
  std::unique_ptr<EpochBarrier> barrier_;
};

}  // namespace cowbird::sim
