// Parallel execution layer, two levels.
//
// Level 1 — sweep parallelism: ParallelFor runs N completely independent
// jobs (each typically owning a private Simulation) on a small
// work-stealing pool. Each job stays bit-deterministic on its own; callers
// keep results in job-index order, so an aggregated report is byte-identical
// no matter how many workers ran it.
//
// Level 2 — intra-sim domains: DomainGroup partitions one logical
// simulation into N Simulation instances (event-loop domains) cut at
// net::Link boundaries. Synchronization is classic conservative PDES: every
// cross-domain link registers a CutEdge advertising its propagation delay
// as lookahead, and the group advances in epochs whose horizon is the
// minimum lookahead over *cut* edges only. With T_min the earliest pending
// event time across all domains, every event at t in [T_min, T_min + L - 1]
// can be dispatched without hearing from the other domains first — a
// cross-domain message emitted at t >= T_min arrives no earlier than t + L,
// strictly beyond the epoch horizon. Cross-domain deliveries travel through
// per-(src,dst) SPSC timestamped queues (materialized only for registered
// cut pairs, so an N-node fabric does not pay for N^2 rings) and are merged
// into the destination heap between epochs in a fixed (when, src, seq)
// order, so the epoch schedule — and therefore the whole run — is
// bit-identical whether the domains execute on one thread or many.
//
// N domains run on W = worker_count() threads: domain d is owned by worker
// d % W, each worker advancing its domains in ascending id within every
// epoch phase. W = 1 degenerates to the sequential schedule, so the same
// run is bit-identical for any worker count — the determinism tests pin
// 1/2/4/8 workers against each other.
//
// Zero lookahead would make the horizon empty; the group refuses to run —
// naming the offending link and both endpoints — instead of spinning
// forever.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/units.h"
#include "sim/simulation.h"

namespace cowbird::sim {

// Upper bound on useful thread-level parallelism: hardware concurrency, or
// 1 when the build was configured with COWBIRD_PARALLEL=OFF.
int MaxParallelism();

// Default job count for --jobs style flags (same as MaxParallelism, named
// for intent at call sites).
inline int HardwareJobs() { return MaxParallelism(); }

// Runs body(0..n-1), each index exactly once, on min(jobs, n) workers with
// work stealing (each worker pops its own deque from the front and steals
// from others' backs). jobs <= 1 — or a COWBIRD_PARALLEL=OFF build — runs a
// plain serial loop on the calling thread. The call returns after every
// index has completed. An explicit jobs > MaxParallelism() is honored
// (oversubscription is harmless and the determinism tests need it).
void ParallelFor(int jobs, int n, const std::function<void(int)>& body);

// Bounded lock-free single-producer single-consumer ring. Capacity must be
// a power of two. Push/Pop are wait-free; Push returns false when full.
template <typename T, std::size_t kCapacity>
class SpscQueue {
  static_assert(kCapacity >= 2 && (kCapacity & (kCapacity - 1)) == 0,
                "capacity must be a power of two");

 public:
  bool TryPush(T&& value) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail == kCapacity) return false;
    slots_[head & (kCapacity - 1)] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  bool TryPop(T& out) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (tail == head) return false;
    out = std::move(slots_[tail & (kCapacity - 1)]);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Producer-side view; exact when called from either endpoint's thread
  // while the other endpoint is quiescent (how the epoch protocol uses it).
  std::size_t SizeApprox() const {
    return static_cast<std::size_t>(head_.load(std::memory_order_acquire) -
                                    tail_.load(std::memory_order_acquire));
  }

 private:
  std::array<T, kCapacity> slots_{};
  std::atomic<std::uint64_t> head_{0};  // written by producer
  std::atomic<std::uint64_t> tail_{0};  // written by consumer
};

// Sense-reversing counting barrier. Short adaptive spin, then parks on the
// sense word (std::atomic::wait) — epochs are microseconds of work, but a
// single-core host needs the loser to yield the CPU, not burn it.
class EpochBarrier {
 public:
  explicit EpochBarrier(int parties) : parties_(parties) {}

  void ArriveAndWait() {
    const std::uint32_t sense = sense_.load(std::memory_order_acquire);
    if (count_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      count_.store(0, std::memory_order_relaxed);
      sense_.store(sense + 1, std::memory_order_release);
      sense_.notify_all();
      return;
    }
    for (int spin = 0; spin < 64; ++spin) {
      if (sense_.load(std::memory_order_acquire) != sense) return;
    }
    while (sense_.load(std::memory_order_acquire) == sense) {
      sense_.wait(sense, std::memory_order_acquire);
    }
  }

 private:
  const int parties_;
  std::atomic<int> count_{0};
  std::atomic<std::uint32_t> sense_{0};
};

// One registered cross-domain link: the unit the partitioner hands to the
// group. `lookahead` is the link's propagation delay; the names exist so a
// zero-lookahead misconfiguration can be reported against the topology the
// user actually wrote instead of as a bare CHECK.
struct CutEdge {
  int src = -1;
  int dst = -1;
  Nanos lookahead = 0;
  std::string link;      // e.g. "uplink[client3]"
  std::string src_node;  // e.g. "client3"
  std::string dst_node;  // e.g. "tor"
};

// A set of Simulation domains advancing in lockstep epochs (see file
// comment). The calling thread doubles as worker 0 / the epoch coordinator;
// worker_count() - 1 extra threads are started per Run, each owning the
// domains d with d % worker_count() == its index. worker_count() == 1 runs
// every domain phase-by-phase in domain order on the calling thread —
// producing the exact same schedule, which is what the cross-worker-count
// determinism tests pin.
class DomainGroup {
 public:
  // workers <= 0 → MaxParallelism(). The resolved count is capped by the
  // domain count; an explicit request above MaxParallelism() is honored.
  explicit DomainGroup(int workers = 0) : requested_workers_(workers) {}
  DomainGroup(const DomainGroup&) = delete;
  DomainGroup& operator=(const DomainGroup&) = delete;
  ~DomainGroup() = default;

  // Registration order assigns domain ids 0..n-1. Must happen before any
  // cross-domain wiring and before the first Run.
  void AddDomain(Simulation& sim);
  int domain_count() const { return static_cast<int>(sims_.size()); }
  Simulation& domain(int d) { return *sims_[static_cast<std::size_t>(d)]; }
  int worker_count() const;

  // Called by net::Link when its endpoints land in different domains. The
  // epoch horizon is the minimum advertised lookahead; zero is refused at
  // Run time (it would starve the epoch loop) with an error naming the
  // offending link and endpoints. The named form materializes the mailbox
  // for exactly that (src, dst) pair; the anonymous Nanos overload keeps
  // every pair routable (small hand-built groups, tests).
  void NoteCrossLink(const CutEdge& edge);
  void NoteCrossLink(Nanos lookahead);
  Nanos lookahead() const { return lookahead_; }
  bool has_cross_link() const { return has_cross_link_; }
  const std::vector<CutEdge>& cut_edges() const { return cut_edges_; }

  // Delivers `fn` into domain `dst` at virtual time `when`. Call only from
  // domain `src`'s thread while it is dispatching an epoch; `when` must lie
  // strictly beyond the published epoch horizon (any positive-lookahead
  // link guarantees this, and the call CHECKs it).
  void CrossPost(int src, int dst, Nanos when, EventFn fn);

  // One-shot event executed between epochs with every domain quiescent and
  // advanced to `when` — the escape hatch for control-plane actions that
  // span domains (engine crash + migration in the chaos harness). Schedule
  // before Run. Events run in (when, registration) order, before same-time
  // domain events.
  template <typename F>
  void ScheduleGlobal(Nanos when, F&& fn) {
    globals_.push_back(GlobalEvent{when, global_seq_++,
                                   std::function<void()>(std::forward<F>(fn))});
  }

  // Invoked once per Run on the thread that owns `domain`, before its first
  // epoch — how per-domain telemetry registries learn their owner thread.
  // Hooks must not touch simulation state (the coordinator may already be
  // reading event heaps while late workers are still starting up).
  void SetDomainStartHook(int domain, std::function<void()> hook);

  // Counterparts of Simulation::Run/RunUntil/RunFor over the whole group.
  void Run() { RunInternal(kNoEventTime); }
  void RunUntil(Nanos deadline) { RunInternal(deadline); }
  void RunFor(Nanos duration) { RunUntil(Now() + duration); }

  // Stops the group at the next epoch boundary. Simulation::Halt() on any
  // member domain calls this (and additionally stops that domain's own
  // dispatch loop immediately, exactly as in a serial run).
  void RequestHalt() { halt_requested_.store(true, std::memory_order_release); }

  Nanos Now() const;                      // max over domains
  std::uint64_t EventsProcessed() const;  // sum over domains
  std::uint64_t epochs() const { return epochs_; }
  std::uint64_t cross_events_delivered() const {
    return cross_events_delivered_.load(std::memory_order_relaxed);
  }

 private:
  struct CrossEvent {
    Nanos when = 0;
    std::uint64_t seq = 0;  // per-mailbox push order
    EventFn fn;
  };
  struct Mailbox {
    SpscQueue<CrossEvent, 4096> queue;
    std::uint64_t next_seq = 0;  // producer-owned
  };
  struct PendingCross {
    Nanos when;
    int src;
    std::uint64_t seq;
    EventFn fn;
  };
  struct GlobalEvent {
    Nanos when;
    std::uint64_t seq;
    std::function<void()> fn;
  };

  void RunInternal(Nanos deadline);
  void RunEpochsSequential(Nanos deadline);
  void RunEpochsParallel(Nanos deadline);
  // One scheduling decision by the coordinator (workers quiescent): either
  // runs due global events / computes the next epoch horizon (returns true,
  // horizon in *limit) or decides the run is over (returns false).
  bool NextEpoch(Nanos deadline, Nanos* limit);
  void DrainInboxes(int dst);
  [[noreturn]] void FailZeroLookahead() const;
  void EnsureMailbox(int src, int dst);
  Mailbox* MailboxSlot(int src, int dst) {
    return mailboxes_[static_cast<std::size_t>(src) * sims_.size() +
                      static_cast<std::size_t>(dst)]
        .get();
  }

  std::vector<Simulation*> sims_;
  int requested_workers_ = 0;
  Nanos lookahead_ = kNoEventTime;
  bool has_cross_link_ = false;
  bool route_all_pairs_ = false;  // anonymous NoteCrossLink(Nanos) was used
  std::vector<CutEdge> cut_edges_;
  // Src-major n*n grid of mailbox slots; only registered (src, dst) pairs
  // are materialized (all pairs when route_all_pairs_).
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::vector<PendingCross>> drain_scratch_;
  std::vector<GlobalEvent> globals_;
  std::size_t next_global_ = 0;
  std::uint64_t global_seq_ = 0;
  std::vector<std::function<void()>> start_hooks_;
  std::atomic<bool> halt_requested_{false};
  std::uint64_t epochs_ = 0;
  // Workers drain their own inboxes concurrently; the tally is the only
  // shared word they touch.
  std::atomic<std::uint64_t> cross_events_delivered_{0};
  // Epoch protocol state, shared coordinator → workers. Plain fields: every
  // write happens while the readers are parked at a barrier, and the
  // barrier's atomics order the hand-off.
  Nanos epoch_limit_ = 0;
  bool stop_workers_ = false;
  std::unique_ptr<EpochBarrier> barrier_;
};

}  // namespace cowbird::sim
