#include "sim/simulation.h"

#include "sim/parallel.h"

namespace cowbird::sim {

void Simulation::Halt() {
  halted_ = true;
  if (group_ != nullptr) group_->RequestHalt();
}

Simulation::~Simulation() {
  // Destroy still-suspended root processes (server loops etc). Destroying a
  // root frame cascades: Task objects held in its frame destroy their own
  // child frames. No events are dispatched during teardown.
  // Copy first: destruction does not unregister (only final_suspend does),
  // but guard against any future re-entrancy.
  auto roots = std::move(live_roots_);
  for (auto& [addr, handle] : roots) {
    (void)addr;
    handle.destroy();
  }
}

bool Simulation::PopAndDispatchOne() {
  if (queue_.empty()) return false;
  const QueueEntry entry = queue_.top();
  queue_.pop();
  COWBIRD_CHECK(entry.when >= now_);
  now_ = entry.when;
  EventRecord* record = events_.Get(entry.event);
  if (record->timer) {
    // The cell is released here whether the timer fired or was canceled;
    // outstanding TimerHandles go stale (generation mismatch) rather than
    // dangling.
    TimerCell* cell = timer_cells_.TryGet(record->timer);
    COWBIRD_CHECK(cell != nullptr);
    const bool armed = cell->armed;
    timer_cells_.Release(record->timer);
    if (!armed) {
      events_.Release(entry.event);
      return true;  // canceled timer
    }
  }
  ++events_processed_;
  // Invoke in place: the pool slot address is stable even if the callback
  // schedules new events (slab growth never moves slots), so there is no
  // need to move the 64-byte closure out first. The slot is recycled after
  // the call returns.
  record->fn();
  events_.Release(entry.event);
  return true;
}

void Simulation::Run() {
  halted_ = false;
  while (!halted_ && PopAndDispatchOne()) {
  }
}

void Simulation::RunUntil(Nanos deadline) {
  halted_ = false;
  while (!halted_ && !queue_.empty() && queue_.top().when <= deadline) {
    PopAndDispatchOne();
  }
  if (now_ < deadline && !halted_) now_ = deadline;
}

Simulation::RootTask Simulation::RunRoot(Task<void> task) {
  co_await std::move(task);
}

void Simulation::Spawn(Task<void> task) {
  RootTask root = RunRoot(std::move(task));
  root.handle.promise().sim = this;
  live_roots_.emplace(root.handle.address(), root.handle);
  ScheduleAt(now_, [h = root.handle] { h.resume(); });
}

}  // namespace cowbird::sim
