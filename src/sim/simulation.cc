#include "sim/simulation.h"

namespace cowbird::sim {

Simulation::~Simulation() {
  // Destroy still-suspended root processes (server loops etc). Destroying a
  // root frame cascades: Task objects held in its frame destroy their own
  // child frames. No events are dispatched during teardown.
  // Copy first: destruction does not unregister (only final_suspend does),
  // but guard against any future re-entrancy.
  auto roots = std::move(live_roots_);
  for (auto& [addr, handle] : roots) {
    (void)addr;
    handle.destroy();
  }
}

void Simulation::ScheduleAt(Nanos when, std::function<void()> fn) {
  COWBIRD_CHECK(when >= now_);
  queue_.push(Event{when, next_seq_++, std::move(fn), nullptr});
}

TimerHandle Simulation::ScheduleCancelableAfter(Nanos delay,
                                                std::function<void()> fn) {
  auto alive = std::make_shared<bool>(true);
  queue_.push(Event{now_ + delay, next_seq_++, std::move(fn), alive});
  return TimerHandle(std::move(alive));
}

bool Simulation::PopAndDispatchOne() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; the event is moved out via const_cast,
  // which is safe because pop() immediately removes the moved-from element
  // and the heap property does not depend on the function payload.
  Event event = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  COWBIRD_CHECK(event.when >= now_);
  now_ = event.when;
  if (event.alive && !*event.alive) return true;  // canceled timer
  ++events_processed_;
  event.fn();
  return true;
}

void Simulation::Run() {
  halted_ = false;
  while (!halted_ && PopAndDispatchOne()) {
  }
}

void Simulation::RunUntil(Nanos deadline) {
  halted_ = false;
  while (!halted_ && !queue_.empty() && queue_.top().when <= deadline) {
    PopAndDispatchOne();
  }
  if (now_ < deadline && !halted_) now_ = deadline;
}

Simulation::RootTask Simulation::RunRoot(Task<void> task) {
  co_await std::move(task);
}

void Simulation::Spawn(Task<void> task) {
  RootTask root = RunRoot(std::move(task));
  root.handle.promise().sim = this;
  live_roots_.emplace(root.handle.address(), root.handle);
  ScheduleAt(now_, [h = root.handle] { h.resume(); });
}

}  // namespace cowbird::sim
