// Discrete-event simulation core.
//
// A Simulation owns a virtual clock and an event queue of (time, sequence,
// callback) entries. Events at equal times fire in schedule order, which —
// together with the seeded PRNGs — makes every run bit-reproducible.
//
// Coroutine processes (sim::Task<void>) are attached with Spawn(); they
// interact with the clock via `co_await sim.Delay(ns)` and with each other
// via the primitives in sync.h. All coroutine resumptions are funneled
// through the event queue (never resumed inline), so there is no reentrancy
// and no unbounded recursion between communicating processes.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/units.h"
#include "sim/task.h"

namespace cowbird::sim {

// Handle to a scheduled event that may be canceled (e.g. retransmission
// timers). Cancellation is lazy: the queue entry stays but becomes a no-op.
class TimerHandle {
 public:
  TimerHandle() = default;

  void Cancel() {
    if (alive_) *alive_ = false;
  }
  bool Pending() const { return alive_ && *alive_; }

 private:
  friend class Simulation;
  explicit TimerHandle(std::shared_ptr<bool> alive)
      : alive_(std::move(alive)) {}
  std::shared_ptr<bool> alive_;
};

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;
  ~Simulation();

  Nanos Now() const { return now_; }

  void ScheduleAt(Nanos when, std::function<void()> fn);
  void ScheduleAfter(Nanos delay, std::function<void()> fn) {
    ScheduleAt(now_ + delay, std::move(fn));
  }
  TimerHandle ScheduleCancelableAfter(Nanos delay, std::function<void()> fn);

  // Runs until the event queue drains or Halt() is called.
  void Run();
  // Runs until virtual time reaches `deadline` (events exactly at the
  // deadline still fire), the queue drains, or Halt() is called.
  void RunUntil(Nanos deadline);
  void RunFor(Nanos duration) { RunUntil(now_ + duration); }
  void Halt() { halted_ = true; }

  // Attach a root process. It is started via the event queue at the current
  // time; its frame is owned by the simulation and destroyed either on
  // completion or, if still suspended (e.g. a server loop), at simulation
  // destruction.
  void Spawn(Task<void> task);

  // Resume a suspended coroutine through the event queue at the current time.
  void Resume(std::coroutine_handle<> h) {
    ScheduleAt(now_, [h] { h.resume(); });
  }

  struct DelayAwaiter {
    Simulation* sim;
    Nanos delay;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      sim->ScheduleAfter(delay, [h] { h.resume(); });
    }
    void await_resume() const noexcept {}
  };

  // Suspend the calling coroutine for `delay` virtual nanoseconds.
  // Delay(0) still round-trips through the event queue, providing a
  // deterministic yield point.
  DelayAwaiter Delay(Nanos delay) {
    COWBIRD_CHECK(delay >= 0);
    return DelayAwaiter{this, delay};
  }

  std::uint64_t EventsProcessed() const { return events_processed_; }

 private:
  struct Event {
    Nanos when;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> alive;  // null → not cancelable

    bool operator>(const Event& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  // Driver coroutine wrapping a spawned task; destroys itself on completion.
  struct RootTask {
    struct promise_type {
      Simulation* sim = nullptr;

      RootTask get_return_object() {
        return RootTask{
            std::coroutine_handle<promise_type>::from_promise(*this)};
      }
      std::suspend_always initial_suspend() noexcept { return {}; }
      struct FinalAwaiter {
        bool await_ready() noexcept { return false; }
        void await_suspend(std::coroutine_handle<promise_type> h) noexcept {
          Simulation* sim = h.promise().sim;
          sim->live_roots_.erase(h.address());
          h.destroy();
        }
        void await_resume() noexcept {}
      };
      FinalAwaiter final_suspend() noexcept { return {}; }
      void return_void() {}
      void unhandled_exception() { std::terminate(); }
    };
    std::coroutine_handle<promise_type> handle;
  };

  static RootTask RunRoot(Task<void> task);

  bool PopAndDispatchOne();

  Nanos now_ = 0;
  bool halted_ = false;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  // address → handle of still-live root coroutines, for teardown.
  std::unordered_map<void*, std::coroutine_handle<>> live_roots_;
};

}  // namespace cowbird::sim
