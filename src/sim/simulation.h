// Discrete-event simulation core.
//
// A Simulation owns a virtual clock and an event queue of (time, sequence,
// callback) entries. Events at equal times fire in schedule order, which —
// together with the seeded PRNGs — makes every run bit-reproducible.
//
// Coroutine processes (sim::Task<void>) are attached with Spawn(); they
// interact with the clock via `co_await sim.Delay(ns)` and with each other
// via the primitives in sync.h. All coroutine resumptions are funneled
// through the event queue (never resumed inline), so there is no reentrancy
// and no unbounded recursion between communicating processes.
#pragma once

#include <algorithm>
#include <coroutine>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/inline_function.h"
#include "common/pool.h"
#include "common/units.h"
#include "sim/task.h"

namespace cowbird::sim {

class Simulation;
class DomainGroup;

// Sentinel "no pending event" time (NextEventTime, DomainGroup horizons).
inline constexpr Nanos kNoEventTime = std::numeric_limits<Nanos>::max();

// Event callbacks live inline in the queue entry: a std::function here
// heap-allocated once per simulated event (any capture beyond 16 bytes),
// which dominated the simulator's allocator traffic.
using EventFn = InlineFunction<void()>;

// Handle to a scheduled event that may be canceled (e.g. retransmission
// timers). Cancellation is lazy: the queue entry stays but becomes a no-op.
// The armed/disarmed bit lives in a pooled slab cell owned by the
// Simulation; the cell is recycled when the event dispatches, and the
// generation tag on the handle makes later Cancel()/Pending() calls on the
// stale handle safe no-ops.
class TimerHandle {
 public:
  TimerHandle() = default;

  void Cancel();
  bool Pending() const;

 private:
  friend class Simulation;
  TimerHandle(Simulation* sim, PoolHandle cell) : sim_(sim), cell_(cell) {}
  Simulation* sim_ = nullptr;
  PoolHandle cell_;
};

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;
  ~Simulation();

  Nanos Now() const { return now_; }

  // Templated so the closure is constructed directly inside the pooled
  // event record (InlineFunction's converting constructor) instead of being
  // relocated through an EventFn parameter — two 64-byte moves per event on
  // the hottest path in the simulator.
  template <typename F>
  void ScheduleAt(Nanos when, F&& fn) {
    COWBIRD_CHECK(when >= now_);
    const PoolHandle event =
        events_.Acquire(std::forward<F>(fn), PoolHandle{});
    queue_.push(QueueEntry{when, next_seq_++, event});
  }
  template <typename F>
  void ScheduleAfter(Nanos delay, F&& fn) {
    ScheduleAt(now_ + delay, std::forward<F>(fn));
  }
  template <typename F>
  TimerHandle ScheduleCancelableAfter(Nanos delay, F&& fn) {
    const PoolHandle cell = timer_cells_.Acquire();
    const PoolHandle event = events_.Acquire(std::forward<F>(fn), cell);
    queue_.push(QueueEntry{now_ + delay, next_seq_++, event});
    return TimerHandle(this, cell);
  }

  // Runs until the event queue drains or Halt() is called.
  void Run();
  // Runs until virtual time reaches `deadline` (events exactly at the
  // deadline still fire), the queue drains, or Halt() is called.
  void RunUntil(Nanos deadline);
  void RunFor(Nanos duration) { RunUntil(now_ + duration); }
  // Stops this simulation's dispatch loop; when the simulation is a domain
  // in a DomainGroup, also halts the group at its next epoch boundary.
  void Halt();

  // Earliest pending event time, or kNoEventTime when the queue is empty.
  Nanos NextEventTime() const {
    return queue_.empty() ? kNoEventTime : queue_.top().when;
  }

  // Domain membership (set by DomainGroup::AddDomain); standalone
  // simulations report null / 0.
  DomainGroup* domain_group() const { return group_; }
  int domain_id() const { return domain_id_; }

  // Attach a root process. It is started via the event queue at the current
  // time; its frame is owned by the simulation and destroyed either on
  // completion or, if still suspended (e.g. a server loop), at simulation
  // destruction.
  void Spawn(Task<void> task);

  // Resume a suspended coroutine through the event queue at the current time.
  void Resume(std::coroutine_handle<> h) {
    ScheduleAt(now_, [h] { h.resume(); });
  }

  struct DelayAwaiter {
    Simulation* sim;
    Nanos delay;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      sim->ScheduleAfter(delay, [h] { h.resume(); });
    }
    void await_resume() const noexcept {}
  };

  // Suspend the calling coroutine for `delay` virtual nanoseconds.
  // Delay(0) still round-trips through the event queue, providing a
  // deterministic yield point.
  DelayAwaiter Delay(Nanos delay) {
    COWBIRD_CHECK(delay >= 0);
    return DelayAwaiter{this, delay};
  }

  std::uint64_t EventsProcessed() const { return events_processed_; }

  // Live counters of the pooled event/timer records, for BindPoolTelemetry
  // (harnesses bind them as pool_in_use / pool_high_water /
  // pool_exhausted_total gauges labeled by pool name).
  const PoolStats& EventPoolStats() const { return events_.stats(); }
  const PoolStats& TimerPoolStats() const { return timer_cells_.stats(); }

 private:
  // The callable and timer handle live in a pooled record; the heap itself
  // holds only small POD entries, so sift-up/down moves 24 bytes instead of
  // relocating a 64-byte inline closure per swap.
  struct EventRecord {
    EventFn fn;
    PoolHandle timer;  // null → not cancelable
  };

  struct QueueEntry {
    Nanos when;
    std::uint64_t seq;
    PoolHandle event;

    bool operator>(const QueueEntry& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  // 4-ary min-heap on (when, seq). The key is unique per entry, so pop
  // order — and therefore the simulation — is identical to any other
  // conforming heap; the wider fan-out just halves the sift depth of the
  // hottest loop in the simulator. Entries are 24-byte PODs by design.
  class EventHeap {
   public:
    bool empty() const { return v_.empty(); }
    const QueueEntry& top() const { return v_[0]; }

    void push(QueueEntry e) {
      std::size_t i = v_.size();
      v_.push_back(e);
      while (i > 0) {
        const std::size_t parent = (i - 1) / 4;
        if (!(v_[parent] > v_[i])) break;
        std::swap(v_[parent], v_[i]);
        i = parent;
      }
    }

    void pop() {
      v_[0] = v_.back();
      v_.pop_back();
      const std::size_t n = v_.size();
      std::size_t i = 0;
      for (;;) {
        const std::size_t first = i * 4 + 1;
        if (first >= n) break;
        std::size_t best = first;
        const std::size_t last = std::min(first + 4, n);
        for (std::size_t c = first + 1; c < last; ++c) {
          if (v_[best] > v_[c]) best = c;
        }
        if (!(v_[i] > v_[best])) break;
        std::swap(v_[i], v_[best]);
        i = best;
      }
    }

   private:
    std::vector<QueueEntry> v_;
  };

  struct TimerCell {
    bool armed = true;
  };

  // Driver coroutine wrapping a spawned task; destroys itself on completion.
  struct RootTask {
    struct promise_type {
      Simulation* sim = nullptr;

      RootTask get_return_object() {
        return RootTask{
            std::coroutine_handle<promise_type>::from_promise(*this)};
      }
      std::suspend_always initial_suspend() noexcept { return {}; }
      struct FinalAwaiter {
        bool await_ready() noexcept { return false; }
        void await_suspend(std::coroutine_handle<promise_type> h) noexcept {
          Simulation* sim = h.promise().sim;
          sim->live_roots_.erase(h.address());
          h.destroy();
        }
        void await_resume() noexcept {}
      };
      FinalAwaiter final_suspend() noexcept { return {}; }
      void return_void() {}
      void unhandled_exception() { std::terminate(); }
    };
    std::coroutine_handle<promise_type> handle;
  };

  static RootTask RunRoot(Task<void> task);

  bool PopAndDispatchOne();

  // DomainGroup's cross-delivery entry: like ScheduleAt, but the heap
  // sequence is supplied by the caller instead of drawn from next_seq_.
  // DomainGroup passes keys in the cross band (bit 63 set, then source
  // domain, then per-mailbox push order), so the tie-break order of
  // same-time events is a pure function of the published epoch state —
  // independent of which epoch boundary happened to deliver the message.
  void ScheduleCross(Nanos when, std::uint64_t seq, EventFn fn) {
    COWBIRD_CHECK(when >= now_);
    const PoolHandle event = events_.Acquire(std::move(fn), PoolHandle{});
    queue_.push(QueueEntry{when, seq, event});
  }

  // DomainGroup's epoch interface: dispatch everything up to an inclusive
  // horizon, advance the clock over idle stretches, reset the halt latch.
  void DispatchUpTo(Nanos limit) {
    while (!halted_ && !queue_.empty() && queue_.top().when <= limit) {
      PopAndDispatchOne();
    }
  }
  void AdvanceTo(Nanos t) {
    if (now_ < t) now_ = t;
  }
  void ClearHalt() { halted_ = false; }

  friend class TimerHandle;
  friend class DomainGroup;

  Nanos now_ = 0;
  bool halted_ = false;
  DomainGroup* group_ = nullptr;
  int domain_id_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  EventHeap queue_;
  // Event payloads, recycled at dispatch.
  Pool<EventRecord> events_{1024, /*growable=*/true};
  // Armed bits for cancelable timers; a cell is acquired per timer and
  // released when its event dispatches (fired or canceled).
  Pool<TimerCell> timer_cells_{64, /*growable=*/true};
  // address → handle of still-live root coroutines, for teardown.
  std::unordered_map<void*, std::coroutine_handle<>> live_roots_;
};

inline void TimerHandle::Cancel() {
  if (sim_ == nullptr) return;
  if (auto* cell = sim_->timer_cells_.TryGet(cell_)) cell->armed = false;
}

inline bool TimerHandle::Pending() const {
  if (sim_ == nullptr) return false;
  const auto* cell = sim_->timer_cells_.TryGet(cell_);
  return cell != nullptr && cell->armed;
}

}  // namespace cowbird::sim
