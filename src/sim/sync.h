// Synchronization primitives for simulation coroutines.
//
// All primitives resume waiters *through the event queue* (Simulation::
// Resume) rather than inline, so a Send/Set never runs the waiter's code in
// the sender's stack frame. This keeps the event ordering model uniform:
// anything that happens, happens as a dispatched event.
#pragma once

#include <coroutine>
#include <optional>
#include <utility>

#include "common/check.h"
#include "common/pool.h"
#include "sim/simulation.h"

namespace cowbird::sim {

// One-shot event: waiters block until Set(); afterwards awaits are no-ops.
class OneShotEvent {
 public:
  explicit OneShotEvent(Simulation& sim) : sim_(&sim) {}

  bool IsSet() const { return set_; }

  void Set() {
    if (set_) return;
    set_ = true;
    for (auto waiter : waiters_) sim_->Resume(waiter);
    waiters_.clear();
  }

  struct Awaiter {
    OneShotEvent* event;
    bool await_ready() const noexcept { return event->set_; }
    void await_suspend(std::coroutine_handle<> h) {
      event->waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };
  Awaiter Wait() { return Awaiter{this}; }

 private:
  Simulation* sim_;
  bool set_ = false;
  FixedDeque<std::coroutine_handle<>> waiters_;
};

// Unbounded multi-producer / multi-consumer FIFO channel.
//
// Values are handed directly to a waiting receiver when one exists (each
// pending receiver's awaiter has a slot), which avoids the classic
// wake-then-steal race between a scheduled waiter and a fresh receiver.
template <typename T>
class Channel {
 public:
  explicit Channel(Simulation& sim) : sim_(&sim) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  void Send(T value) {
    if (!waiters_.empty()) {
      ReceiveAwaiter* waiter = waiters_.front();
      waiters_.pop_front();
      waiter->slot.emplace(std::move(value));
      sim_->Resume(waiter->handle);
      return;
    }
    values_.push_back(std::move(value));
  }

  bool Empty() const { return values_.empty(); }
  std::size_t Size() const { return values_.size(); }

  struct ReceiveAwaiter {
    Channel* channel;
    std::optional<T> slot;
    std::coroutine_handle<> handle;

    bool await_ready() {
      if (!channel->values_.empty()) {
        slot.emplace(std::move(channel->values_.front()));
        channel->values_.pop_front();
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      channel->waiters_.push_back(this);
    }
    T await_resume() {
      COWBIRD_CHECK(slot.has_value());
      return std::move(*slot);
    }
  };

  ReceiveAwaiter Receive() { return ReceiveAwaiter{this, std::nullopt, {}}; }

  // Non-blocking receive.
  std::optional<T> TryReceive() {
    if (values_.empty()) return std::nullopt;
    T v = std::move(values_.front());
    values_.pop_front();
    return v;
  }

 private:
  Simulation* sim_;
  FixedDeque<T> values_;
  FixedDeque<ReceiveAwaiter*> waiters_;
};

// Counting semaphore with direct token hand-off on Release().
class Semaphore {
 public:
  Semaphore(Simulation& sim, std::int64_t initial) : sim_(&sim),
                                                     count_(initial) {
    COWBIRD_CHECK(initial >= 0);
  }

  std::int64_t Available() const { return count_; }

  struct AcquireAwaiter {
    Semaphore* sem;
    bool await_ready() {
      if (sem->count_ > 0) {
        --sem->count_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      sem->waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };

  AcquireAwaiter Acquire() { return AcquireAwaiter{this}; }

  bool TryAcquire() {
    if (count_ > 0) {
      --count_;
      return true;
    }
    return false;
  }

  void Release() {
    if (!waiters_.empty()) {
      // Token handed to the waiter directly; count_ stays unchanged.
      auto h = waiters_.front();
      waiters_.pop_front();
      sim_->Resume(h);
      return;
    }
    ++count_;
  }

 private:
  Simulation* sim_;
  std::int64_t count_;
  FixedDeque<std::coroutine_handle<>> waiters_;
};

// Latch that releases all waiters when the count reaches zero.
class CountdownLatch {
 public:
  CountdownLatch(Simulation& sim, std::int64_t count)
      : event_(sim), count_(count) {
    COWBIRD_CHECK(count >= 0);
    if (count_ == 0) event_.Set();
  }

  void CountDown() {
    COWBIRD_CHECK(count_ > 0);
    if (--count_ == 0) event_.Set();
  }

  auto Wait() { return event_.Wait(); }
  std::int64_t Remaining() const { return count_; }

 private:
  OneShotEvent event_;
  std::int64_t count_;
};

}  // namespace cowbird::sim
