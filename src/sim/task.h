// Coroutine task type for simulation processes.
//
// Task<T> is a lazy coroutine: it starts suspended and runs when awaited
// (or when handed to Simulation::Spawn as a root process). Completion uses
// symmetric transfer to resume the awaiting parent, so arbitrarily deep
// protocol call chains do not grow the native stack.
//
// Exceptions thrown inside a task propagate to the awaiter; an exception
// escaping a root (spawned) task terminates the program — in a deterministic
// simulator an unexpected error means the run is invalid.
#pragma once

#include <array>
#include <coroutine>
#include <cstddef>
#include <exception>
#include <new>
#include <utility>
#include <variant>
#include <vector>

#include "common/check.h"

namespace cowbird::sim {

template <typename T>
class Task;

namespace internal {

// Size-classed recycler for coroutine frames. The datapath spawns a Task per
// operation (client issue, agent completion handling, verb posts), and each
// frame would otherwise be a heap round trip; recycled frames make coroutine
// calls allocation-free at steady state. Thread-local because simulations
// are single-threaded but tests run several in one process.
class FramePool {
 public:
  static void* Alloc(std::size_t size) {
    const std::size_t bucket = Bucket(size);
    if (bucket >= kBuckets) return ::operator new(size);
    auto& list = Instance().free_[bucket];
    if (!list.empty()) {
      void* frame = list.back();
      list.pop_back();
      return frame;
    }
    return ::operator new((bucket + 1) * kGranularity);
  }

  static void Free(void* frame, std::size_t size) {
    const std::size_t bucket = Bucket(size);
    if (bucket >= kBuckets) {
      ::operator delete(frame);
      return;
    }
    Instance().free_[bucket].push_back(frame);
  }

 private:
  static constexpr std::size_t kGranularity = 64;
  static constexpr std::size_t kBuckets = 64;  // recycles frames up to 4 KiB

  static std::size_t Bucket(std::size_t size) {
    return (size + kGranularity - 1) / kGranularity - 1;
  }

  static FramePool& Instance() {
    thread_local FramePool pool;
    return pool;
  }

  FramePool() = default;
  ~FramePool() {
    for (auto& list : free_) {
      for (void* frame : list) ::operator delete(frame);
    }
  }

  std::array<std::vector<void*>, kBuckets> free_;
};

template <typename T>
struct TaskPromiseBase {
  std::coroutine_handle<> continuation;

  // Route frame storage through the recycler. The sized delete is required:
  // it is what lets the frame return to its exact size class.
  static void* operator new(std::size_t size) { return FramePool::Alloc(size); }
  static void operator delete(void* frame, std::size_t size) {
    FramePool::Free(frame, size);
  }

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      auto next = h.promise().continuation;
      return next ? next : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }
};

}  // namespace internal

template <typename T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type : internal::TaskPromiseBase<T> {
    std::variant<std::monostate, T, std::exception_ptr> result;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T value) { result.template emplace<1>(std::move(value)); }
    void unhandled_exception() {
      result.template emplace<2>(std::current_exception());
    }
  };

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      if (handle_) handle_.destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  ~Task() {
    if (handle_) handle_.destroy();
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
    handle_.promise().continuation = parent;
    return handle_;
  }
  T await_resume() {
    auto& result = handle_.promise().result;
    if (result.index() == 2) {
      std::rethrow_exception(std::get<2>(std::move(result)));
    }
    COWBIRD_CHECK(result.index() == 1);
    return std::get<1>(std::move(result));
  }

 private:
  friend class Simulation;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}

  std::coroutine_handle<promise_type> Release() {
    return std::exchange(handle_, {});
  }

  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : internal::TaskPromiseBase<void> {
    std::exception_ptr exception;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
    void unhandled_exception() { exception = std::current_exception(); }
  };

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      if (handle_) handle_.destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  ~Task() {
    if (handle_) handle_.destroy();
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
    handle_.promise().continuation = parent;
    return handle_;
  }
  void await_resume() {
    if (handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
  }

 private:
  friend class Simulation;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}

  std::coroutine_handle<promise_type> Release() {
    return std::exchange(handle_, {});
  }

  std::coroutine_handle<promise_type> handle_;
};

}  // namespace cowbird::sim
