// Coroutine task type for simulation processes.
//
// Task<T> is a lazy coroutine: it starts suspended and runs when awaited
// (or when handed to Simulation::Spawn as a root process). Completion uses
// symmetric transfer to resume the awaiting parent, so arbitrarily deep
// protocol call chains do not grow the native stack.
//
// Exceptions thrown inside a task propagate to the awaiter; an exception
// escaping a root (spawned) task terminates the program — in a deterministic
// simulator an unexpected error means the run is invalid.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>
#include <variant>

#include "common/check.h"

namespace cowbird::sim {

template <typename T>
class Task;

namespace internal {

template <typename T>
struct TaskPromiseBase {
  std::coroutine_handle<> continuation;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      auto next = h.promise().continuation;
      return next ? next : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }
};

}  // namespace internal

template <typename T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type : internal::TaskPromiseBase<T> {
    std::variant<std::monostate, T, std::exception_ptr> result;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T value) { result.template emplace<1>(std::move(value)); }
    void unhandled_exception() {
      result.template emplace<2>(std::current_exception());
    }
  };

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      if (handle_) handle_.destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  ~Task() {
    if (handle_) handle_.destroy();
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
    handle_.promise().continuation = parent;
    return handle_;
  }
  T await_resume() {
    auto& result = handle_.promise().result;
    if (result.index() == 2) {
      std::rethrow_exception(std::get<2>(std::move(result)));
    }
    COWBIRD_CHECK(result.index() == 1);
    return std::get<1>(std::move(result));
  }

 private:
  friend class Simulation;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}

  std::coroutine_handle<promise_type> Release() {
    return std::exchange(handle_, {});
  }

  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : internal::TaskPromiseBase<void> {
    std::exception_ptr exception;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
    void unhandled_exception() { exception = std::current_exception(); }
  };

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      if (handle_) handle_.destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  ~Task() {
    if (handle_) handle_.destroy();
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
    handle_.promise().continuation = parent;
    return handle_;
  }
  void await_resume() {
    if (handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
  }

 private:
  friend class Simulation;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}

  std::coroutine_handle<promise_type> Release() {
    return std::exchange(handle_, {});
  }

  std::coroutine_handle<promise_type> handle_;
};

}  // namespace cowbird::sim
