// Simulated CPU threads with time accounting.
//
// A Machine models a compute server with a fixed number of cores. SimThreads
// charge work against the machine; when more threads are simultaneously
// busy than there are cores, work is stretched by the oversubscription
// factor (a processor-sharing approximation, fixed at work start). This is
// what makes "Redy runs out of cores past 8 threads" (Figure 11) an emergent
// behaviour rather than a hard-coded penalty.
//
// Every charged nanosecond is attributed to a category; the communication /
// total ratio is exactly the metric of Figure 10.
#pragma once

#include <algorithm>
#include <array>
#include <coroutine>
#include <cstdint>
#include <string>

#include "common/check.h"
#include "common/units.h"
#include "sim/simulation.h"

namespace cowbird::sim {

enum class CpuCategory : int {
  kCompute = 0,        // application logic (hashing, key comparison, copies
                       // the application would also do with local memory)
  kCommunication = 1,  // time spent inside the I/O / disaggregation library
  kCategoryCount = 2,
};

class Machine {
 public:
  Machine(Simulation& sim, int cores) : sim_(&sim), cores_(cores) {
    COWBIRD_CHECK(cores > 0);
  }

  int cores() const { return cores_; }
  int active_workers() const { return active_; }

  // Permanently occupies `n` cores (e.g. pinned spinning I/O threads that
  // burn a core whether or not work is available — Redy's design).
  void AddPinnedLoad(int n) {
    COWBIRD_CHECK(n >= 0);
    active_ += n;
  }

  // Registers the start of a work item and returns its stretched duration.
  Nanos BeginWork(Nanos nominal) {
    ++active_;
    const double factor =
        std::max(1.0, static_cast<double>(active_) / cores_);
    return static_cast<Nanos>(static_cast<double>(nominal) * factor);
  }
  void EndWork() {
    COWBIRD_CHECK(active_ > 0);
    --active_;
  }

  Simulation& simulation() { return *sim_; }

 private:
  Simulation* sim_;
  int cores_;
  int active_ = 0;
};

class SimThread {
 public:
  SimThread(Machine& machine, std::string name)
      : machine_(&machine),
        sim_(&machine.simulation()),
        name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  Simulation& simulation() { return *sim_; }
  Machine& machine() { return *machine_; }

  struct WorkAwaiter {
    SimThread* thread;
    Nanos nominal;
    CpuCategory category;

    bool await_ready() const noexcept { return nominal == 0; }
    void await_suspend(std::coroutine_handle<> h) {
      Machine* machine = thread->machine_;
      const Nanos stretched = machine->BeginWork(nominal);
      thread->Account(category, stretched);
      thread->sim_->ScheduleAfter(stretched, [machine, h] {
        machine->EndWork();
        h.resume();
      });
    }
    void await_resume() const noexcept {}
  };

  // Burn `nominal` ns of CPU in `category` (stretched if oversubscribed).
  WorkAwaiter Work(Nanos nominal, CpuCategory category) {
    COWBIRD_CHECK(nominal >= 0);
    return WorkAwaiter{this, nominal, category};
  }

  // Blocked/idle wait: advances time but charges no CPU.
  Simulation::DelayAwaiter Idle(Nanos duration) { return sim_->Delay(duration); }

  Nanos TimeIn(CpuCategory category) const {
    return accounted_[static_cast<int>(category)];
  }
  Nanos TotalBusy() const {
    Nanos total = 0;
    for (auto t : accounted_) total += t;
    return total;
  }
  double CommunicationRatio() const {
    const Nanos total = TotalBusy();
    if (total == 0) return 0.0;
    return static_cast<double>(TimeIn(CpuCategory::kCommunication)) /
           static_cast<double>(total);
  }
  void ResetAccounting() { accounted_ = {}; }

  void Account(CpuCategory category, Nanos duration) {
    accounted_[static_cast<int>(category)] += duration;
  }

 private:
  Machine* machine_;
  Simulation* sim_;
  std::string name_;
  std::array<Nanos, static_cast<int>(CpuCategory::kCategoryCount)>
      accounted_ = {};
};

}  // namespace cowbird::sim
