#include "spot/agent.h"

#include <algorithm>
#include <array>

#include "common/check.h"

namespace cowbird::spot {

namespace {
constexpr std::uint8_t kKindShift = 60;
constexpr std::uint64_t kInstanceShift = 48;
constexpr std::uint64_t kThreadShift = 32;

// Pool-address resolution through the instance's translation mirror. A miss
// is a control-plane bug (the client addressed outside its regions, or the
// mirror is stale); abort with the structured error so the log names the
// address and its nearest mapped neighbours.
core::Translation MustTranslate(const core::TranslationTable& table,
                                std::uint16_t region_id, std::uint64_t vaddr,
                                std::uint32_t length) {
  core::TranslateError error;
  const std::optional<core::Translation> t =
      table.Lookup(region_id, vaddr, length, &error);
  if (!t.has_value()) [[unlikely]] {
    std::fprintf(stderr, "spot translation failed: %s\n",
                 error.ToString().c_str());
    COWBIRD_CHECK(t.has_value());
  }
  return *t;
}
}  // namespace

std::uint64_t SpotAgent::MakeWrId(CompletionKind kind, std::uint32_t instance,
                                  std::uint16_t thread, std::uint32_t token) {
  return (static_cast<std::uint64_t>(kind) << kKindShift) |
         (static_cast<std::uint64_t>(instance & 0xFFF) << kInstanceShift) |
         (static_cast<std::uint64_t>(thread) << kThreadShift) | token;
}

SpotAgent::SpotAgent(rdma::Device& device, sim::Machine& machine,
                     Config config)
    : device_(&device),
      thread_(machine, "spot-agent"),
      config_(config),
      completions_(machine.simulation()),
      scheduler_(offload::ProbeScheduler::Config{
          config.probe_interval, config.adaptive_probe,
          config.probe_interval_max, offload::ProbeSelection::kRoundRobin}) {
  // The agent's staging arena is a pinned buffer on real hardware; fault it
  // in now so the wrapping bump allocator never materializes pages mid-run.
  device_->memory().PreFault(config_.staging_base, config_.staging_capacity);
  if (auto* hub = config_.telemetry) {
    const telemetry::Labels labels = EngineLabels();
    scheduler_.BindTelemetry(hub->metrics, labels);
    const struct {
      const char* name;
      const std::uint64_t* cell;
    } series[] = {
        {"engine_ops_completed", &ops_completed_},
        {"engine_probes_sent", &probes_sent_},
        {"engine_batches_flushed", &batches_flushed_},
        {"engine_reads_stalled_by_writes", &reads_stalled_by_writes_},
    };
    for (const auto& s : series) {
      hub->metrics.RegisterCallbackGauge(s.name, labels, [cell = s.cell] {
        return static_cast<std::int64_t>(*cell);
      });
    }
  }
}

SpotAgent::~SpotAgent() {
  if (auto* hub = config_.telemetry) {
    for (const auto& inst : instances_) {
      if (inst->active) {
        UnregisterInstanceTelemetry(inst->descriptor.instance_id);
      }
    }
    for (const char* name :
         {"engine_ops_completed", "engine_probes_sent",
          "engine_batches_flushed", "engine_reads_stalled_by_writes"}) {
      hub->metrics.UnregisterCallbackGauge(name, EngineLabels());
    }
  }
}

telemetry::Labels SpotAgent::EngineLabels() const {
  return {{"engine", "spot"},
          {"node", std::to_string(device_->node_id())}};
}

telemetry::Labels SpotAgent::InstanceLabels(std::uint32_t instance_id) const {
  telemetry::Labels labels = EngineLabels();
  labels.emplace_back("instance", std::to_string(instance_id));
  return labels;
}

void SpotAgent::RegisterInstanceTelemetry(Instance& inst) {
  auto* hub = config_.telemetry;
  if (hub == nullptr) return;
  const std::uint32_t id = inst.descriptor.instance_id;
  inst.probe_track = "spot/i" + std::to_string(id) + "/probe";
  // The depth gauge looks the instance up by id so a snapshot taken after
  // RemoveInstance reads 0 instead of walking an abandoned slot.
  hub->metrics.RegisterCallbackGauge(
      "engine_inflight_ops", InstanceLabels(id), [this, id] {
        const Instance* candidate = FindInstance(id);
        if (candidate == nullptr) return std::int64_t{0};
        std::int64_t total = 0;
        for (const ThreadState& ts : candidate->threads) {
          total += static_cast<std::int64_t>(ts.ops.size());
        }
        return total;
      });
  for (std::size_t t = 0; t < inst.threads.size(); ++t) {
    telemetry::Labels labels = InstanceLabels(id);
    labels.emplace_back("thread", std::to_string(t));
    inst.threads[t].hazards.BindTelemetry(hub->metrics, labels);
  }
}

void SpotAgent::UnregisterInstanceTelemetry(std::uint32_t instance_id) {
  auto* hub = config_.telemetry;
  if (hub == nullptr) return;
  hub->metrics.UnregisterCallbackGauge("engine_inflight_ops",
                                       InstanceLabels(instance_id));
}

void SpotAgent::AddInstance(
    const core::InstanceDescriptor& descriptor, rdma::QueuePair* to_compute,
    rdma::CompletionQueue* compute_cq,
    std::map<net::NodeId, rdma::QueuePair*> to_memory,
    std::map<net::NodeId, rdma::CompletionQueue*> memory_cqs,
    const offload::InstanceProgress* resume) {
  auto inst = std::make_unique<Instance>();
  inst->descriptor = descriptor;
  inst->translation = descriptor.BuildTranslation();
  inst->to_compute = to_compute;
  inst->to_memory.reserve(to_memory.size());
  for (const auto& [node, qp] : to_memory) {
    inst->to_memory.emplace_back(node, qp);
  }
  // Every server the translation table can point at must be reachable now;
  // discovering a missing QP on the data path would be far harder to debug.
  for (const core::RangeEntry& range : inst->translation.entries()) {
    COWBIRD_CHECK(to_memory.find(range.node) != to_memory.end());
  }
  inst->index = static_cast<std::uint32_t>(instances_.size());
  inst->threads.resize(descriptor.layout.threads);
  inst->probe_staging = AllocStaging(descriptor.layout.GreenBytesTotal());
  inst->meta_staging = AllocStaging(
      static_cast<Bytes>(descriptor.layout.threads) * kMetaFetchLimit *
      core::kMetadataEntryBytes);
  staging_floor_ = staging_cursor_;  // pin the fixed blocks below the wrap
  bool resumed_with_pending = false;
  if (resume != nullptr) {
    // Registry migration: continue from the counters the previous engine
    // exported. Entries at or past meta_head are re-discovered by the
    // next probe; sequence counters continue where the old engine stopped
    // so red-block progress stays monotonic for the client. Ops the old
    // engine had parsed but not completed ride along in resume->pending
    // (their metadata slots were freed by the client, so the rings cannot
    // resupply them) and are re-executed here.
    COWBIRD_CHECK(resume->threads.size() == inst->threads.size());
    COWBIRD_CHECK(resume->pending.empty() ||
                  resume->pending.size() == inst->threads.size());
    for (std::size_t t = 0; t < inst->threads.size(); ++t) {
      ThreadState& ts = inst->threads[t];
      ts.progress = resume->threads[t];
      ts.tail_seen = ts.progress.meta_head;
      ts.fetch_cursor = ts.progress.meta_head;
      ts.next_read_seq = ts.progress.read_progress;
      ts.next_write_seq = ts.progress.write_progress;
      ts.deliver_cursor = ts.progress.read_progress;
      ts.read_durable_seq = ts.progress.read_progress;
      ts.resp_tail_durable = ts.progress.resp_tail;
      if (t >= resume->pending.size()) continue;
      for (const offload::PendingOp& p : resume->pending[t]) {
        Op op;
        op.meta = p.meta;
        op.seq = p.seq;
        if (p.meta.rw_type == core::RwType::kWrite) {
          ts.next_write_seq = std::max(ts.next_write_seq, p.seq);
          if (p.completed) {
            // ACKed-durable in the pool before the crash: advance over it,
            // never re-execute (no hazard either — the data is landed).
            op.state = OpState::kDone;
          } else {
            if (!p.payload.empty()) {
              op.carried_payload =
                  std::make_shared<std::vector<std::uint8_t>>(p.payload);
            }
            op.hazard_ticket = ts.hazards.AdmitWrite(offload::HazardRange{
                p.meta.region_id, p.meta.resp_addr, p.meta.length});
          }
        } else {
          ts.next_read_seq = std::max(ts.next_read_seq, p.seq);
          op.hazard_ticket = ts.hazards.ReadFrontier();
        }
        ts.ops.push_back(op);
        resumed_with_pending = true;
      }
      AdvanceWriteProgressInOrder(ts);
    }
  }
  instances_.push_back(std::move(inst));
  RegisterInstanceTelemetry(*instances_.back());
  if (resumed_with_pending) {
    // Kick the main loop once per thread: publish the merged counters and
    // pump the seeded ops (same synthetic-completion channel the batch
    // timer uses). Attach happens while the agent runs, so the sends are
    // drained on the next main-loop wake-up.
    const auto index = static_cast<std::uint32_t>(instances_.size() - 1);
    const int threads = instances_.back()->descriptor.layout.threads;
    for (int t = 0; t < threads; ++t) {
      completions_.Send(rdma::Cqe{
          MakeWrId(CompletionKind::kResumeFlush, index,
                   static_cast<std::uint16_t>(t), 0),
          rdma::CqeOpcode::kWrite, rdma::CqeStatus::kSuccess, 0});
    }
  }

  auto pump = [this](rdma::CompletionQueue* cq) {
    cq->SetCompletionCallback([this, cq] {
      while (auto cqe = cq->Pop()) completions_.Send(*cqe);
    });
  };
  pump(compute_cq);
  for (auto& [node, cq] : memory_cqs) {
    (void)node;
    pump(cq);
  }
}

bool SpotAgent::RemoveInstance(std::uint32_t instance_id) {
  for (auto& inst : instances_) {
    if (inst->descriptor.instance_id != instance_id || !inst->active) {
      continue;
    }
    UnregisterInstanceTelemetry(instance_id);
    inst->active = false;
    for (ThreadState& ts : inst->threads) ts.batch_timer.Cancel();
    return true;
  }
  return false;
}

const SpotAgent::Instance* SpotAgent::FindInstance(
    std::uint32_t instance_id) const {
  for (const auto& inst : instances_) {
    if (inst->descriptor.instance_id == instance_id && inst->active) {
      return inst.get();
    }
  }
  return nullptr;
}

std::optional<offload::InstanceProgress> SpotAgent::ExportProgress(
    std::uint32_t instance_id) const {
  const Instance* inst = FindInstance(instance_id);
  if (inst == nullptr) return std::nullopt;
  offload::InstanceProgress snapshot;
  snapshot.threads.reserve(inst->threads.size());
  snapshot.pending.resize(inst->threads.size());
  for (std::size_t t = 0; t < inst->threads.size(); ++t) {
    const ThreadState& ts = inst->threads[t];
    // Export the *durable* read frontier, not the optimistic publication:
    // an in-flight batch dies with the engine's QPs on a crash, and claiming
    // its reads would lose their payloads. (If the optimistic red write did
    // land, the registry glue reconciles the snapshot with the client's
    // published counters — see offload::ReconcileWithPublished.)
    offload::ThreadProgress exported = ts.progress;
    exported.read_progress = ts.read_durable_seq;
    exported.resp_tail = ts.resp_tail_durable;
    snapshot.threads.push_back(exported);

    auto& pending = snapshot.pending[t];
    for (const Op& op : ts.ops) {
      offload::PendingOp p;
      p.meta = op.meta;
      p.seq = op.seq;
      if (op.meta.rw_type == core::RwType::kWrite) {
        if (op.seq <= ts.progress.write_progress) continue;  // counted
        if (op.state == OpState::kDone) {
          p.completed = true;  // ACKed in the pool; only advance counters
        } else if (op.state == OpState::kWriting) {
          // Payload already fetched (the client's data-ring bytes for it
          // are consumed), pool write not yet ACKed: carry the bytes.
          p.payload.resize(op.meta.length);
          device_->memory().Read(op.staging_addr, p.payload);
        }
        // kQueued / kFetching writes replay through the data ring: their
        // data_head bytes were not consumed yet.
      } else {
        if (op.seq <= ts.read_durable_seq) continue;  // durably delivered
        // Reads replay idempotently; the client's response-ring reservation
        // is intact for every read past the exported read_progress.
      }
      pending.push_back(std::move(p));
    }
  }
  return snapshot;
}

bool SpotAgent::InstanceDrained(std::uint32_t instance_id) const {
  const Instance* inst = FindInstance(instance_id);
  if (inst == nullptr) return false;
  for (const ThreadState& ts : inst->threads) {
    if (!ts.ops.empty() || ts.fetch_inflight) return false;
  }
  return !inst->probe_inflight;
}

void SpotAgent::Start() {
  COWBIRD_CHECK(!started_);
  started_ = true;
  auto& sim = thread_.simulation();
  sim.Spawn(MainLoop());
  sim.Spawn([](SpotAgent& agent) -> sim::Task<void> {
    while (!agent.probing_stopped_) {
      co_await agent.ProbeAll();
      // Section 5.2 ramp-up, in the shared scheduler: back off while the
      // last completed probe found nothing, snap back on activity.
      agent.scheduler_.OnProbeOutcome(agent.last_probe_found_work_);
      co_await agent.thread_.Idle(agent.scheduler_.current_interval());
    }
  }(*this));
}

std::uint64_t SpotAgent::AllocStaging(Bytes len) {
  // Bump allocator over the staging arena; wraps when exhausted. The arena
  // is sized far above the in-flight window, so reuse cannot collide with
  // live transfers. Wrapping returns to the floor, not zero: the permanent
  // probe/meta staging blocks carved out during AddInstance live below it
  // and must never be recycled as per-op scratch.
  if (staging_cursor_ + len > config_.staging_capacity) {
    staging_cursor_ = staging_floor_;
    COWBIRD_CHECK(staging_cursor_ + len <= config_.staging_capacity);
  }
  const std::uint64_t addr = config_.staging_base + staging_cursor_;
  staging_cursor_ += static_cast<std::uint32_t>((len + 63) & ~Bytes{63});
  return addr;
}

sim::Task<void> SpotAgent::MainLoop() {
  for (;;) {
    rdma::Cqe cqe = co_await completions_.Receive();
    // One CQ lock acquisition per wake-up; each drained CQE then pays its
    // marginal cost (wide ibv_poll_cq, as an event-driven agent would use).
    co_await thread_.Work(config_.costs.poll_lock,
                          sim::CpuCategory::kCommunication);
    co_await HandleCompletion(cqe);
    while (auto more = completions_.TryReceive()) {
      co_await HandleCompletion(*more);
    }
  }
}

sim::Task<void> SpotAgent::ProbeAll() {
  // Indexed iteration: AddInstance may run while this coroutine is
  // suspended at a post (registry-driven migration), reallocating the
  // vector under a range-for.
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    Instance& inst = *instances_[i];
    if (!inst.active || inst.probe_inflight) continue;
    inst.probe_inflight = true;
    ++probes_sent_;
    if (auto* hub = config_.telemetry) {
      inst.probe_span = hub->tracer.Begin(inst.probe_track, "probe");
    }
    const auto index = static_cast<std::uint32_t>(i);
    const rdma::SendWqe probe{
        rdma::WqeOp::kRead, MakeWrId(CompletionKind::kProbe, index, 0, 0),
        inst.probe_staging, inst.descriptor.layout.GreenBase(),
        inst.descriptor.compute_rkey,
        static_cast<std::uint32_t>(inst.descriptor.layout.GreenBytesTotal()),
        true};
    co_await rdma::EnginePostBatchVerb(
        thread_, config_.costs, *inst.to_compute,
        std::span<const rdma::SendWqe>(&probe, 1));
  }
}

sim::Task<void> SpotAgent::HandleCompletion(rdma::Cqe cqe) {
  COWBIRD_CHECK(cqe.status == rdma::CqeStatus::kSuccess);
  const auto kind = static_cast<CompletionKind>(cqe.wr_id >> kKindShift);
  if (kind != CompletionKind::kBatchTimer &&
      kind != CompletionKind::kResumeFlush) {
    co_await thread_.Work(config_.costs.poll_cqe_each,
                          sim::CpuCategory::kCommunication);
  }
  const auto instance_index =
      static_cast<std::uint32_t>((cqe.wr_id >> kInstanceShift) & 0xFFF);
  const auto thread_index =
      static_cast<int>((cqe.wr_id >> kThreadShift) & 0xFFFF);
  const auto token = static_cast<std::uint32_t>(cqe.wr_id);
  COWBIRD_CHECK(instance_index < instances_.size());
  Instance& inst = *instances_[instance_index];
  // Stale completion for a removed instance: drop it.
  if (!inst.active) co_return;

  switch (kind) {
    case CompletionKind::kProbe: {
      inst.probe_inflight = false;
      if (auto* hub = config_.telemetry) {
        hub->tracer.End(inst.probe_span);
        inst.probe_span = {};
      }
      last_probe_found_work_ = false;
      auto& mem = device_->memory();
      for (int t = 0; t < inst.descriptor.layout.threads; ++t) {
        const auto tail = mem.ReadValue<std::uint64_t>(
            inst.probe_staging + static_cast<std::uint64_t>(t) *
                                     core::kGreenBlockBytes);
        ThreadState& ts = inst.threads[t];
        if (tail > ts.tail_seen) {
          ts.tail_seen = tail;
          last_probe_found_work_ = true;
          co_await StartMetaFetch(inst, t);
        }
      }
      break;
    }
    case CompletionKind::kMetaFetch:
      co_await ParseFetchedMetadata(inst, thread_index);
      break;
    case CompletionKind::kPoolRead: {
      ThreadState& ts = inst.threads[thread_index];
      for (Op& op : ts.ops) {
        if (op.meta.rw_type == core::RwType::kRead && op.seq == token) {
          COWBIRD_CHECK(op.state == OpState::kFetching);
          op.state = OpState::kStaged;
          break;
        }
      }
      co_await FlushBatch(inst, thread_index);
      break;
    }
    case CompletionKind::kComputeFetch: {
      ThreadState& ts = inst.threads[thread_index];
      for (Op& op : ts.ops) {
        if (op.meta.rw_type == core::RwType::kWrite && op.seq == token) {
          COWBIRD_CHECK(op.state == OpState::kFetching);
          op.state = OpState::kWriting;
          ts.progress.data_head += op.meta.length;
          const core::Translation dst = MustTranslate(
              inst.translation, op.meta.region_id, op.meta.resp_addr,
              op.meta.length);
          rdma::QueuePair* pool_qp = MemoryQp(inst, dst.node);
          COWBIRD_CHECK(pool_qp != nullptr);
          const rdma::SendWqe pw{
              rdma::WqeOp::kWrite,
              MakeWrId(CompletionKind::kPoolWrite, instance_index,
                       static_cast<std::uint16_t>(thread_index), token),
              op.staging_addr, dst.addr, dst.rkey, op.meta.length, true};
          co_await rdma::EnginePostBatchVerb(
              thread_, config_.costs, *pool_qp,
              std::span<const rdma::SendWqe>(&pw, 1));
          break;
        }
      }
      break;
    }
    case CompletionKind::kPoolWrite: {
      ThreadState& ts = inst.threads[thread_index];
      for (Op& op : ts.ops) {
        if (op.meta.rw_type == core::RwType::kWrite && op.seq == token) {
          COWBIRD_CHECK(op.state == OpState::kWriting);
          op.state = OpState::kDone;
          ts.hazards.RetireWrite(op.hazard_ticket);
          ++ops_completed_;
          RecordOpPhase(inst, thread_index, /*is_write=*/true, op.seq,
                        telemetry::OpPhase::kDone);
          break;
        }
      }
      AdvanceWriteProgressInOrder(ts);
      co_await WriteRedBlock(inst, thread_index);
      // A completed write may unstall overlapping reads.
      co_await PumpThread(inst, thread_index);
      break;
    }
    case CompletionKind::kBatchWrite: {
      // The progress counters were already published via a red-block write
      // chained behind the batch on the same RC QP (the compute node sees
      // payload before counters); here we only retire local bookkeeping.
      ThreadState& ts = inst.threads[thread_index];
      const BatchToken* batch = inflight_batches_.Find(cqe.wr_id);
      COWBIRD_CHECK(batch != nullptr);
      for (Op& op : ts.ops) {
        if (op.meta.rw_type != core::RwType::kRead) continue;
        if (op.seq < batch->seq_begin || op.seq > batch->seq_end) continue;
        COWBIRD_CHECK(op.state == OpState::kDelivering);
        op.state = OpState::kDone;
      }
      // The ACK makes this batch's reads durable: the payload write is
      // complete at the compute node, so a crash export may now claim them.
      ts.read_durable_seq = std::max(ts.read_durable_seq, batch->seq_end);
      ts.resp_tail_durable =
          std::max(ts.resp_tail_durable, batch->resp_tail_end);
      inflight_batches_.Erase(cqe.wr_id);
      while (!ts.ops.empty() && ts.ops.front().state == OpState::kDone) {
        ts.ops.pop_front();
      }
      break;
    }
    case CompletionKind::kRedWrite:
      break;  // red-block writes are posted unsignaled; nothing arrives here
    case CompletionKind::kBatchTimer:
      co_await FlushBatch(inst, thread_index, /*force=*/true);
      break;
    case CompletionKind::kResumeFlush:
      // Resume-with-pending: publish the merged counters on the new QP and
      // start executing the seeded operations.
      co_await WriteRedBlock(inst, thread_index);
      co_await PumpThread(inst, thread_index);
      co_await StartMetaFetch(inst, thread_index);
      break;
  }
}

void SpotAgent::AdvanceWriteProgressInOrder(ThreadState& ts) {
  // Advance write progress in strict sequence order, then retire finished
  // front entries.
  bool advanced = true;
  while (advanced) {
    advanced = false;
    for (const Op& op : ts.ops) {
      if (op.meta.rw_type == core::RwType::kWrite &&
          op.seq == ts.progress.write_progress + 1 &&
          op.state == OpState::kDone) {
        ++ts.progress.write_progress;
        advanced = true;
      }
    }
  }
  while (!ts.ops.empty() && ts.ops.front().state == OpState::kDone) {
    ts.ops.pop_front();
  }
}

sim::Task<void> SpotAgent::StartMetaFetch(Instance& inst, int thread) {
  ThreadState& ts = inst.threads[thread];
  if (ts.fetch_inflight || ts.fetch_cursor >= ts.tail_seen) co_return;
  const auto& layout = inst.descriptor.layout;
  const std::uint64_t available = ts.tail_seen - ts.fetch_cursor;
  const std::uint64_t start_slot = ts.fetch_cursor % layout.meta_slots;
  const std::uint64_t contiguous = layout.meta_slots - start_slot;
  const std::uint64_t count = std::min<std::uint64_t>(
      {available, contiguous, kMetaFetchLimit});
  ts.fetch_inflight = true;
  ts.pending_fetch = count;
  const std::uint32_t instance_index = inst.index;
  const std::uint64_t staging =
      inst.meta_staging + static_cast<std::uint64_t>(thread) *
                              kMetaFetchLimit * core::kMetadataEntryBytes;
  const rdma::SendWqe fetch{
      rdma::WqeOp::kRead,
      MakeWrId(CompletionKind::kMetaFetch, instance_index,
               static_cast<std::uint16_t>(thread), 0),
      staging, layout.MetaSlotAddr(thread, ts.fetch_cursor),
      inst.descriptor.compute_rkey,
      static_cast<std::uint32_t>(count * core::kMetadataEntryBytes), true};
  co_await rdma::EnginePostBatchVerb(thread_, config_.costs,
                                     *inst.to_compute,
                                     std::span<const rdma::SendWqe>(&fetch, 1));
}

sim::Task<void> SpotAgent::ParseFetchedMetadata(Instance& inst, int thread) {
  ThreadState& ts = inst.threads[thread];
  COWBIRD_CHECK(ts.fetch_inflight);
  ts.fetch_inflight = false;
  auto& mem = device_->memory();
  const std::uint64_t staging =
      inst.meta_staging + static_cast<std::uint64_t>(thread) *
                              kMetaFetchLimit * core::kMetadataEntryBytes;
  std::array<std::uint8_t, core::kMetadataEntryBytes> raw;
  for (std::uint64_t i = 0; i < ts.pending_fetch; ++i) {
    mem.Read(staging + i * core::kMetadataEntryBytes, raw);
    core::RequestMetadata meta = core::RequestMetadata::ParseBytes(raw);
    // The tail pointer is published after the entry under x86-TSO, so a
    // fetched entry must be valid; tolerate a torn view defensively by
    // stopping at the first invalid entry (it will be re-fetched).
    if (meta.rw_type == core::RwType::kInvalid) break;
    Op op;
    op.meta = meta;
    if (meta.rw_type == core::RwType::kRead) {
      op.seq = ++ts.next_read_seq;
      // Only writes probed before this read may stall it.
      op.hazard_ticket = ts.hazards.ReadFrontier();
    } else {
      op.seq = ++ts.next_write_seq;
      op.hazard_ticket = ts.hazards.AdmitWrite(
          offload::HazardRange{meta.region_id, meta.resp_addr, meta.length});
    }
    ts.ops.push_back(op);
    ++ts.fetch_cursor;
    ++ts.progress.meta_head;
    RecordOpPhase(inst, thread, meta.rw_type == core::RwType::kWrite, op.seq,
                  telemetry::OpPhase::kParsed);
  }
  co_await WriteRedBlock(inst, thread);
  co_await PumpThread(inst, thread);
  co_await StartMetaFetch(inst, thread);  // more entries may remain
}

sim::Task<void> SpotAgent::PumpThread(Instance& inst, int thread) {
  ThreadState& ts = inst.threads[thread];
  const std::uint32_t instance_index = inst.index;
  int inflight = 0;
  for (const Op& op : ts.ops) {
    if (op.state == OpState::kFetching || op.state == OpState::kWriting ||
        op.state == OpState::kDelivering) {
      ++inflight;
    }
  }
  // Collect everything issuable, then post one doorbell-batched linked list
  // per destination QP. The per-QP WQE lists live in pump_scratch_ so their
  // capacity persists across calls (entries are recycled by qp slot).
  auto& batches = pump_scratch_;
  for (auto& b : batches) {
    b.qp = nullptr;
    b.wqes.clear();
  }
  auto batch_for = [&batches](rdma::QueuePair* qp)
      -> std::vector<rdma::SendWqe>& {
    for (auto& b : batches) {
      if (b.qp == qp) return b.wqes;
      if (b.qp == nullptr) {
        b.qp = qp;
        return b.wqes;
      }
    }
    batches.push_back(PumpBatch{qp, {}});
    return batches.back().wqes;
  };
  for (auto& op : ts.ops) {
    if (inflight >= config_.max_inflight_per_thread) break;
    if (op.state != OpState::kQueued) continue;
    if (op.meta.rw_type == core::RwType::kRead) {
      if (!config_.chaos_unsafe_skip_hazards &&
          ts.hazards.ReadBlocked(
              offload::HazardRange{op.meta.region_id, op.meta.req_addr,
                                   op.meta.length},
              op.hazard_ticket)) {
        // Exact range fencing: only this read stalls (Section 6); it will
        // be retried when a pool write completes.
        ++reads_stalled_by_writes_;
        continue;
      }
      op.staging_addr = AllocStaging(op.meta.length);
      op.state = OpState::kFetching;
      ++inflight;
      RecordOpPhase(inst, thread, /*is_write=*/false, op.seq,
                    telemetry::OpPhase::kExecute);
      const core::Translation src = MustTranslate(
          inst.translation, op.meta.region_id, op.meta.req_addr,
          op.meta.length);
      rdma::QueuePair* pool_qp = MemoryQp(inst, src.node);
      COWBIRD_CHECK(pool_qp != nullptr);
      batch_for(pool_qp)
          .push_back(rdma::SendWqe{
              rdma::WqeOp::kRead,
              MakeWrId(CompletionKind::kPoolRead, instance_index,
                       static_cast<std::uint16_t>(thread),
                       static_cast<std::uint32_t>(op.seq)),
              op.staging_addr, src.addr, src.rkey, op.meta.length, true});
    } else if (op.carried_payload != nullptr) {
      // Crash-resume replay: the snapshot carried the payload because the
      // dead engine had consumed the client's data-ring bytes. Stage it
      // locally and go straight to the pool write (data_head was already
      // advanced before the crash).
      op.staging_addr = AllocStaging(op.meta.length);
      device_->memory().Write(op.staging_addr, *op.carried_payload);
      op.state = OpState::kWriting;
      ++inflight;
      RecordOpPhase(inst, thread, /*is_write=*/true, op.seq,
                    telemetry::OpPhase::kExecute);
      const core::Translation dst = MustTranslate(
          inst.translation, op.meta.region_id, op.meta.resp_addr,
          op.meta.length);
      rdma::QueuePair* pool_qp = MemoryQp(inst, dst.node);
      COWBIRD_CHECK(pool_qp != nullptr);
      batch_for(pool_qp)
          .push_back(rdma::SendWqe{
              rdma::WqeOp::kWrite,
              MakeWrId(CompletionKind::kPoolWrite, instance_index,
                       static_cast<std::uint16_t>(thread),
                       static_cast<std::uint32_t>(op.seq)),
              op.staging_addr, dst.addr, dst.rkey, op.meta.length, true});
    } else {
      op.staging_addr = AllocStaging(op.meta.length);
      op.state = OpState::kFetching;
      ++inflight;
      RecordOpPhase(inst, thread, /*is_write=*/true, op.seq,
                    telemetry::OpPhase::kExecute);
      batch_for(inst.to_compute)
          .push_back(rdma::SendWqe{
              rdma::WqeOp::kRead,
              MakeWrId(CompletionKind::kComputeFetch, instance_index,
                       static_cast<std::uint16_t>(thread),
                       static_cast<std::uint32_t>(op.seq)),
              op.staging_addr, op.meta.req_addr,
              inst.descriptor.compute_rkey, op.meta.length, true});
    }
  }
  for (auto& b : batches) {
    if (b.qp == nullptr) break;
    co_await rdma::EnginePostBatchVerb(thread_, config_.costs, *b.qp,
                                       b.wqes);
  }
}

void SpotAgent::ArmBatchTimer(Instance& inst, int thread) {
  ThreadState& ts = inst.threads[thread];
  if (ts.batch_timer.Pending()) return;
  const std::uint32_t instance_index = inst.index;
  ts.batch_timer = thread_.simulation().ScheduleCancelableAfter(
      config_.batch_timeout, [this, instance_index, thread] {
        completions_.Send(rdma::Cqe{
            MakeWrId(CompletionKind::kBatchTimer, instance_index,
                     static_cast<std::uint16_t>(thread), 0),
            rdma::CqeOpcode::kWrite, rdma::CqeStatus::kSuccess, 0});
      });
}

sim::Task<void> SpotAgent::FlushBatch(Instance& inst, int thread,
                                      bool force) {
  ThreadState& ts = inst.threads[thread];
  // Collect the longest run of staged reads that is (a) next in sequence
  // order, (b) contiguous in the response ring, (c) at most batch_size long.
  // The run is recorded as indices into ts.ops (scratch reused across
  // calls); nothing pushes into ts.ops before the indices are consumed.
  auto& run = flush_run_;
  run.clear();
  std::uint64_t next_seq = ts.deliver_cursor + 1;
  std::uint64_t expected_addr = 0;
  for (std::size_t i = 0; i < ts.ops.size(); ++i) {
    Op& op = ts.ops[i];
    if (op.meta.rw_type != core::RwType::kRead) continue;
    if (op.seq < next_seq) continue;
    if (op.seq != next_seq || op.state != OpState::kStaged) break;
    if (!run.empty() && op.meta.resp_addr != expected_addr) break;
    run.push_back(static_cast<std::uint32_t>(i));
    expected_addr = op.meta.resp_addr + op.meta.length;
    ++next_seq;
    if (static_cast<int>(run.size()) >= config_.batch_size) break;
  }
  if (run.empty()) co_return;
  if (!force && static_cast<int>(run.size()) < config_.batch_size) {
    // Wait for more unless the batch timer says otherwise.
    ArmBatchTimer(inst, thread);
    co_return;
  }
  ts.batch_timer.Cancel();

  // Coalesce payloads into one write. The agent does not memcpy: it builds
  // a scatter-gather list over the staged buffers (one SGE per result) and
  // lets the NIC gather them — per-entry descriptor cost only. The staging
  // block here stands in for the gather.
  std::uint64_t total = 0;
  for (const std::uint32_t i : run) total += ts.ops[i].meta.length;
  const std::uint64_t batch_staging = AllocStaging(total);
  auto& mem = device_->memory();
  std::uint64_t offset = 0;
  auto& tmp = copy_scratch_;
  for (const std::uint32_t i : run) {
    Op& op = ts.ops[i];
    tmp.resize(op.meta.length);
    mem.Read(op.staging_addr, tmp);
    mem.Write(batch_staging + offset, tmp);
    offset += op.meta.length;
    op.state = OpState::kDelivering;
    ++ops_completed_;  // delivered (progress published with this batch)
    RecordOpPhase(inst, thread, /*is_write=*/false, op.seq,
                  telemetry::OpPhase::kDone);
  }
  co_await thread_.Work(
      static_cast<Nanos>(run.size()) * config_.costs.post_wqe_each,
      sim::CpuCategory::kCommunication);

  const std::uint32_t instance_index = inst.index;
  const std::uint64_t wr_id =
      MakeWrId(CompletionKind::kBatchWrite, instance_index,
               static_cast<std::uint16_t>(thread), next_token_++);
  // The batch's ACK is what makes these deliveries durable: record the
  // frontier it will establish so the completion handler can advance the
  // crash-export counters (read_durable_seq / resp_tail_durable).
  const std::uint64_t seq_begin = ts.ops[run.front()].seq;
  const std::uint64_t seq_end = ts.ops[run.back()].seq;
  inflight_batches_[wr_id] =
      BatchToken{seq_begin, seq_end, ts.progress.resp_tail + total};
  ts.deliver_cursor = seq_end;
  ++batches_flushed_;

  // Publish progress optimistically: the red-block write is chained on the
  // same RC QP *behind* the payload write, so the compute node can never
  // observe the counters before the data (Phase III then Phase IV ordering,
  // enforced by the transport instead of by waiting for the ACK).
  ts.progress.read_progress = seq_end;
  ts.progress.resp_tail += total;
  const std::uint64_t red_staging = AllocStaging(core::kRedBlockBytes);
  ComposeRedBlock(inst, thread, red_staging);
  const rdma::SendWqe chained[] = {
      rdma::SendWqe{rdma::WqeOp::kWrite, wr_id, batch_staging,
                    ts.ops[run.front()].meta.resp_addr,
                    inst.descriptor.compute_rkey,
                    static_cast<std::uint32_t>(total), true},
      rdma::SendWqe{rdma::WqeOp::kWrite, 0, red_staging,
                    inst.descriptor.layout.RedAddr(thread),
                    inst.descriptor.compute_rkey,
                    static_cast<std::uint32_t>(core::kRedBlockBytes),
                    /*signaled=*/false},
  };
  co_await rdma::EnginePostBatchVerb(thread_, config_.costs, *inst.to_compute,
                                   chained);
  // More staged reads may already form the next batch.
  co_await FlushBatch(inst, thread, force);
}

void SpotAgent::ComposeRedBlock(Instance& inst, int thread,
                                std::uint64_t staging) {
  ThreadState& ts = inst.threads[thread];
  (void)inst;
  std::array<std::uint8_t, offload::ProgressPublisher::kBlockBytes> block;
  offload::ProgressPublisher::Pack(ts.progress, block);
  device_->memory().Write(staging, block);
}

sim::Task<void> SpotAgent::WriteRedBlock(Instance& inst, int thread) {
  // Compose the 40-byte block in local staging, then one RDMA write updates
  // every pointer and counter (Phase IV, single-message requirement). The
  // write is unsignaled: nothing depends on its completion.
  //
  // Each publication gets a *fresh* staging slot: the NIC reads the block
  // at transmit time, so a shared slot would let a newer publication rewrite
  // a still-queued red write's contents — advertising counters whose payload
  // sits behind it in the send queue. Under Go-Back-N stalls the client
  // could then read a response slot before the data arrived.
  const std::uint64_t staging = AllocStaging(core::kRedBlockBytes);
  ComposeRedBlock(inst, thread, staging);
  const rdma::SendWqe wqe{
      rdma::WqeOp::kWrite, 0, staging,
      inst.descriptor.layout.RedAddr(thread), inst.descriptor.compute_rkey,
      static_cast<std::uint32_t>(core::kRedBlockBytes), /*signaled=*/false};
  co_await rdma::EnginePostBatchVerb(thread_, config_.costs, *inst.to_compute,
                                   std::span<const rdma::SendWqe>(&wqe, 1));
}

}  // namespace cowbird::spot
