// Cowbird-Spot offload engine (Section 6).
//
// An event-driven agent on a harvested/spot node executes the compute
// node's transfers through ordinary verbs:
//
//   Probe    — every probe_interval, one RDMA read fetches *all* threads'
//              green blocks (the packed layout makes this a single message,
//              requirement R3).
//   Fetch    — when a thread's metadata tail has advanced, RDMA-read the new
//              24-byte entries (two reads when the ring wraps).
//   Execute  — reads: RDMA-read the pool into local staging; writes:
//              RDMA-read the payload from the compute data ring, then
//              RDMA-write it to the pool.
//   Deliver  — staged read results are flushed to the compute node's
//              response ring; consecutive results whose destinations are
//              contiguous are coalesced into a single RDMA write of up to
//              batch_size results (the BATCH_SIZE batching of Section 6).
//   Complete — progress counters and ring heads are written back to the
//              red block, all five fields in one RDMA write (Phase IV).
//
// Consistency: per-type FIFO per thread is preserved end-to-end (pool QPs
// are RC, and delivery/batching is performed in sequence order). For the
// read-after-write hazard the agent does an exact overlapping-range check —
// unlike Cowbird-P4, only reads that truly overlap an in-flight write are
// stalled (Section 5.3).
//
// All verbs the agent issues charge *its own* SimThread (a spot core), never
// the compute node — that asymmetry is the entire point of Cowbird.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/pool.h"
#include "common/sparse_memory.h"
#include "core/instance.h"
#include "core/request.h"
#include "offload/hazard_tracker.h"
#include "offload/probe_scheduler.h"
#include "offload/progress.h"
#include "rdma/device.h"
#include "rdma/params.h"
#include "rdma/qp.h"
#include "rdma/verbs.h"
#include "sim/sync.h"
#include "sim/thread.h"
#include "telemetry/hub.h"

namespace cowbird::spot {

class SpotAgent {
 public:
  struct Config {
    Nanos probe_interval = Micros(2);
    // Section 5.2 ramp-up: "start at a low baseline rate and ramp up only
    // when activity is detected". When enabled, the interval doubles after
    // idle probes (up to probe_interval_max) and snaps back to
    // probe_interval on activity.
    bool adaptive_probe = false;
    Nanos probe_interval_max = Micros(64);
    // Maximum read results coalesced into one RDMA write to the compute
    // node. 1 disables batching (the "Cowbird (batching disabled)" series).
    int batch_size = 16;
    // Flush a non-empty batch after this long even if not full.
    Nanos batch_timeout = Micros(2);
    // Staging memory base on the spot node.
    std::uint64_t staging_base = 0x4000'0000;
    Bytes staging_capacity = MiB(64);
    // Per-thread cap on simultaneously executing operations.
    int max_inflight_per_thread = 128;
    // TEST-ONLY: disables the read-after-write hazard fence (Section 5.3).
    // Exists so the chaos harness can prove its linearizability checker
    // catches a real consistency bug; never enable outside tests.
    bool chaos_unsafe_skip_hazards = false;
    rdma::CostModel costs;
    // Optional telemetry hub: op lifecycle phases (parsed/execute/done),
    // probe spans, per-instance queue-depth gauges, and engine counters.
    // nullptr = telemetry off.
    telemetry::Hub* telemetry = nullptr;
  };

  // Entries fetched per metadata read (bounds the staging area and, in the
  // P4 analogue, what fits in the PHV).
  static constexpr std::uint64_t kMetaFetchLimit = 64;

  SpotAgent(rdma::Device& device, sim::Machine& machine, Config config);
  ~SpotAgent();

  // Registers an instance. `to_compute` must be a connected QP whose peer is
  // the instance's compute node; `to_memory[node]` likewise for every memory
  // node appearing in the region table. CQ completion routing is installed
  // here. May be called while the agent is running (registry-driven
  // migration); `resume` seeds the instance from a progress snapshot
  // exported by the engine previously serving it.
  void AddInstance(const core::InstanceDescriptor& descriptor,
                   rdma::QueuePair* to_compute,
                   rdma::CompletionQueue* compute_cq,
                   std::map<net::NodeId, rdma::QueuePair*> to_memory,
                   std::map<net::NodeId, rdma::CompletionQueue*> memory_cqs,
                   const offload::InstanceProgress* resume = nullptr);

  // Detaches an instance: no further probes or fetches for it, and stale
  // completions are dropped. Returns false if the id is unknown. For a
  // lossless handoff, stop probing and wait for InstanceDrained() first —
  // operations still in flight at removal are abandoned (the client-visible
  // effect of an engine crash).
  bool RemoveInstance(std::uint32_t instance_id);

  // Crash-safe progress snapshot — what a registry migration hands to the
  // engine taking over. Counters cover only ACKed-durable work (read
  // delivery is published optimistically but exported conservatively), and
  // parsed-but-incomplete operations ride along explicitly (see
  // offload::PendingOp): the client has already freed their metadata slots,
  // so they are unrecoverable from the rings alone. For a drained instance
  // the pending lists are empty and the counters match the red block.
  std::optional<offload::InstanceProgress> ExportProgress(
      std::uint32_t instance_id) const;

  // True when the instance has no parsed-but-incomplete operations and no
  // metadata fetch in flight (safe to hand off losslessly).
  bool InstanceDrained(std::uint32_t instance_id) const;

  void Start();

  // Engine decommission: stop issuing probes (and thereby new work);
  // already-fetched operations keep executing to completion.
  void StopProbing() { probing_stopped_ = true; }

  sim::SimThread& agent_thread() { return thread_; }
  std::uint64_t probes_sent() const { return probes_sent_; }
  Nanos current_probe_interval() const {
    return scheduler_.current_interval();
  }
  std::uint64_t ops_completed() const { return ops_completed_; }
  std::uint64_t batches_flushed() const { return batches_flushed_; }
  std::uint64_t reads_stalled_by_writes() const {
    return reads_stalled_by_writes_;
  }

 private:
  enum class OpState : std::uint8_t {
    kQueued,      // parsed, waiting to issue
    kFetching,    // read: pool fetch in flight; write: compute fetch in flight
    kStaged,      // read: payload staged locally, waiting to deliver
    kWriting,     // write: pool write in flight
    kDelivering,  // read: part of an in-flight batch to compute
    kDone,
  };

  struct Op {
    core::RequestMetadata meta;
    std::uint64_t seq = 0;  // per-thread per-type sequence (1-based)
    OpState state = OpState::kQueued;
    std::uint64_t staging_addr = 0;
    // Writes: the hazard-window admit ticket. Reads: the frontier captured
    // at parse time (only earlier writes can stall this read).
    offload::HazardTracker::Ticket hazard_ticket = 0;
    // Crash-resume replay: payload carried in the snapshot because the
    // previous engine had already consumed the client's data ring for this
    // write. Issued as a direct pool write, skipping the compute fetch.
    std::shared_ptr<std::vector<std::uint8_t>> carried_payload;
  };

  struct ThreadState {
    std::uint64_t tail_seen = 0;    // green meta_tail from last probe
    std::uint64_t fetch_cursor = 0; // entries requested from the ring
    // Red-block counters: meta_head (entries fully parsed), data_head,
    // resp_tail, write_progress, read_progress.
    offload::ThreadProgress progress;
    FixedDeque<Op> ops;             // probe order
    std::uint64_t next_read_seq = 0;
    std::uint64_t next_write_seq = 0;
    // Section 6 exact overlapping-range check, via the shared hazard core.
    offload::HazardTracker hazards{
        offload::HazardTracker::Policy::kExactRange};
    std::uint64_t pending_fetch = 0;   // entries in the in-flight meta read
    std::uint64_t deliver_cursor = 0;  // last read seq handed to a batch
    // Durable (batch-ACKed) counterparts of the optimistically published
    // read_progress / resp_tail — what a crash export may safely claim.
    std::uint64_t read_durable_seq = 0;
    std::uint64_t resp_tail_durable = 0;
    bool fetch_inflight = false;
    sim::TimerHandle batch_timer;
  };

  struct Instance {
    core::InstanceDescriptor descriptor;
    // Engine-side mirror of the cluster-pool translation table, copied from
    // the descriptor at attach. Every pool access resolves (region, vaddr)
    // through it; the single-server case degenerates to one identity range
    // per region. Never mutated while attached — a migration cutover
    // detaches, retargets the authoritative table, and re-attaches.
    core::TranslationTable translation;
    rdma::QueuePair* to_compute = nullptr;
    // Flattened from the AddInstance map (node-sorted): region lookups run
    // per issued op, and a handful of memory nodes scan faster than a tree.
    std::vector<std::pair<net::NodeId, rdma::QueuePair*>> to_memory;
    std::uint32_t index = 0;  // slot in instances_ (stable; encoded in wr_ids)
    std::vector<ThreadState> threads;
    std::uint64_t probe_staging = 0;     // staging addr for green blocks
    std::uint64_t meta_staging = 0;      // staging addr for metadata fetches
    bool probe_inflight = false;
    // Cleared by RemoveInstance: the slot stays (wr_ids encode the index)
    // but the instance is no longer probed and its completions are dropped.
    bool active = true;
    // Telemetry: probe round-trip span + precomputed track name.
    telemetry::SpanTracer::SpanHandle probe_span;
    std::string probe_track;
  };

 public:
  // Completion routing: wr_ids issued by the agent encode what to do next.
  enum class CompletionKind : std::uint8_t {
    kProbe,
    kMetaFetch,
    kPoolRead,      // read op data arrived in staging
    kComputeFetch,  // write op payload arrived from compute
    kPoolWrite,     // write op landed in the pool
    kBatchWrite,    // batch of read results landed in compute resp ring
    kRedWrite,      // red block update landed
    kBatchTimer,    // synthetic: batch timeout tick
    kResumeFlush,   // synthetic: publish + pump after a resume-with-pending
  };

 private:
  static std::uint64_t MakeWrId(CompletionKind kind, std::uint32_t instance,
                                std::uint16_t thread, std::uint32_t token);

  sim::Task<void> MainLoop();
  sim::Task<void> ProbeAll();
  sim::Task<void> HandleCompletion(rdma::Cqe cqe);
  sim::Task<void> StartMetaFetch(Instance& inst, int thread);
  sim::Task<void> ParseFetchedMetadata(Instance& inst, int thread);
  sim::Task<void> PumpThread(Instance& inst, int thread);
  sim::Task<void> FlushBatch(Instance& inst, int thread, bool force = false);
  // Strict in-order write_progress advance + front pops of finished ops
  // (shared by the pool-write completion path and crash-resume seeding).
  static void AdvanceWriteProgressInOrder(ThreadState& ts);
  void ComposeRedBlock(Instance& inst, int thread, std::uint64_t staging);
  sim::Task<void> WriteRedBlock(Instance& inst, int thread);
  void ArmBatchTimer(Instance& inst, int thread);

  std::uint64_t AllocStaging(Bytes len);

  const Instance* FindInstance(std::uint32_t instance_id) const;

  static rdma::QueuePair* MemoryQp(const Instance& inst, net::NodeId node) {
    for (const auto& [n, qp] : inst.to_memory) {
      if (n == node) return qp;
    }
    return nullptr;
  }

  // --- telemetry ---
  telemetry::Labels EngineLabels() const;
  telemetry::Labels InstanceLabels(std::uint32_t instance_id) const;
  void RegisterInstanceTelemetry(Instance& inst);
  void UnregisterInstanceTelemetry(std::uint32_t instance_id);
  void RecordOpPhase(const Instance& inst, int thread, bool is_write,
                     std::uint64_t seq, telemetry::OpPhase phase) {
    if (config_.telemetry != nullptr) {
      config_.telemetry->tracer.RecordOp(
          telemetry::OpKey{inst.descriptor.instance_id,
                           static_cast<std::uint32_t>(thread), is_write, seq},
          phase);
    }
  }

  rdma::Device* device_;
  sim::SimThread thread_;
  Config config_;
  std::vector<std::unique_ptr<Instance>> instances_;
  sim::Channel<rdma::Cqe> completions_;
  std::uint32_t staging_cursor_ = 0;
  // First per-op byte of the staging arena; the wrap target. Everything
  // below holds the instances' permanent probe/meta staging blocks.
  std::uint32_t staging_floor_ = 0;
  offload::ProbeScheduler scheduler_;  // Section 5.2 adaptive ramp (shared)
  bool last_probe_found_work_ = false;
  std::uint64_t probes_sent_ = 0;
  std::uint64_t ops_completed_ = 0;
  std::uint64_t batches_flushed_ = 0;
  std::uint64_t reads_stalled_by_writes_ = 0;
  bool started_ = false;
  bool probing_stopped_ = false;

  // In-flight delivery batch: the run of read seqs [seq_begin, seq_end]
  // delivered together (read seqs are per-thread unique and a batch is a
  // consecutive run, so the range names the ops without holding pointers
  // into the ops ring).
  struct BatchToken {
    std::uint64_t seq_begin = 0;
    std::uint64_t seq_end = 0;
    // Durable frontier this batch's ACK establishes.
    std::uint64_t resp_tail_end = 0;
  };
  DenseMap<BatchToken> inflight_batches_;
  std::uint32_t next_token_ = 1;

  // Issue-path scratch, reused across calls (the agent's coroutines are
  // serialized by MainLoop, so no two PumpThread/FlushBatch frames are ever
  // live at once). Steady state touches no allocator.
  struct PumpBatch {
    rdma::QueuePair* qp = nullptr;
    std::vector<rdma::SendWqe> wqes;
  };
  std::vector<PumpBatch> pump_scratch_;
  std::vector<std::uint32_t> flush_run_;   // indices into ThreadState::ops
  std::vector<std::uint8_t> copy_scratch_; // payload shuttle for coalescing
};

}  // namespace cowbird::spot
