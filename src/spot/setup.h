// Connection plumbing for a Cowbird-Spot deployment: QPs from the spot node
// to the compute node and to each memory node (Phase I of Section 5.2 — the
// control-plane setup the paper performs over an RPC endpoint).
#pragma once

#include <map>
#include <span>

#include "rdma/device.h"
#include "rdma/qp.h"

namespace cowbird::spot {

struct SpotConnection {
  rdma::QueuePair* to_compute = nullptr;
  rdma::CompletionQueue* compute_cq = nullptr;
  std::map<net::NodeId, rdma::QueuePair*> to_memory;
  std::map<net::NodeId, rdma::CompletionQueue*> memory_cqs;
};

inline SpotConnection ConnectSpotEngine(rdma::Device& spot,
                                        rdma::Device& compute,
                                        std::span<rdma::Device* const>
                                            memory_nodes) {
  SpotConnection conn;
  auto compute_pair = rdma::ConnectQueuePairs(spot, compute);
  conn.to_compute = compute_pair.a;
  conn.compute_cq = compute_pair.a_send_cq;
  for (rdma::Device* memory : memory_nodes) {
    auto pair = rdma::ConnectQueuePairs(spot, *memory);
    conn.to_memory[memory->node_id()] = pair.a;
    conn.memory_cqs[memory->node_id()] = pair.a_send_cq;
  }
  return conn;
}

}  // namespace cowbird::spot
