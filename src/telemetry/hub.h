// One bag of telemetry state for a simulation run: a metric registry plus a
// span tracer bound to the run's virtual clock.
//
// Components take a `telemetry::Hub*` in their Config and treat nullptr as
// "telemetry off": counters fall back to unbound handles (shared dummy
// cell), span/op recording is skipped behind a single pointer test. The
// workload harness constructs one Hub per run:
//
//   telemetry::Hub hub([&sim] { return sim.Now(); });
//   config.telemetry = &hub;
//   ...
//   WriteFile("trace.json", hub.tracer.ToChromeTraceJson());
//   WriteFile("snapshot.json", hub.metrics.TakeSnapshot().ToJson());
#pragma once

#include <utility>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace cowbird::telemetry {

struct Hub {
  explicit Hub(Clock clock) : tracer(std::move(clock)) {}
  Hub(const Hub&) = delete;
  Hub& operator=(const Hub&) = delete;

  MetricRegistry metrics;
  SpanTracer tracer;
};

}  // namespace cowbird::telemetry
