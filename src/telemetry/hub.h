// One bag of telemetry state for a simulation run: a metric registry plus a
// span tracer bound to the run's virtual clock.
//
// Components take a `telemetry::Hub*` in their Config and treat nullptr as
// "telemetry off": counters fall back to unbound handles (writes are
// no-ops), span/op recording is skipped behind a single pointer test. The
// workload harness constructs one Hub per run:
//
//   telemetry::Hub hub([&sim] { return sim.Now(); });
//   config.telemetry = &hub;
//   ...
//   WriteFile("trace.json", hub.tracer.ToChromeTraceJson());
//   WriteFile("snapshot.json", hub.metrics.TakeSnapshot().ToJson());
#pragma once

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace cowbird::telemetry {

struct Hub {
  explicit Hub(Clock clock) : tracer(std::move(clock)) {}
  Hub(const Hub&) = delete;
  Hub& operator=(const Hub&) = delete;

  MetricRegistry metrics;
  SpanTracer tracer;
};

// Telemetry for a partitioned simulation: one Hub shard per PDES domain,
// keyed by partition id. Shard 0 is the caller's root hub (possibly null —
// telemetry off); shards 1..n-1 are private hubs whose registries each bind
// to the worker thread that owns their domain. After the run, MergeInto
// folds the extra shards into the root's snapshot and tracer in ascending
// domain order — an N-way MergeFrom whose result is independent of how many
// worker threads executed the domains.
class HubShards {
 public:
  // clock_of(d) supplies the virtual clock for shard d's tracer (typically
  // that domain's Simulation::Now). With a null root every ForDomain returns
  // null and telemetry stays off; with a single domain the root serves all.
  void Reset(Hub* root, int domain_count,
             const std::function<Clock(int)>& clock_of) {
    root_ = root;
    extra_.clear();
    if (root == nullptr) return;
    for (int d = 1; d < domain_count; ++d) {
      extra_.push_back(std::make_unique<Hub>(clock_of(d)));
    }
  }

  Hub* ForDomain(int domain) {
    if (root_ == nullptr) return nullptr;
    if (domain == 0) return root_;
    return extra_[static_cast<std::size_t>(domain - 1)].get();
  }
  int shard_count() const {
    return root_ == nullptr ? 0 : 1 + static_cast<int>(extra_.size());
  }

  // Folds shards 1..n-1 into `snapshot` (which the caller took from the
  // root registry) and into the root tracer, in domain order.
  void MergeInto(Snapshot& snapshot) {
    if (root_ == nullptr) return;
    for (auto& shard : extra_) {
      snapshot.MergeFrom(shard->metrics.TakeSnapshot());
      root_->tracer.MergeFrom(shard->tracer);
    }
  }

 private:
  Hub* root_ = nullptr;
  std::vector<std::unique_ptr<Hub>> extra_;
};

}  // namespace cowbird::telemetry
