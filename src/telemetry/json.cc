#include "telemetry/json.h"

#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace cowbird::telemetry {

std::string JsonEscape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  COWBIRD_CHECK(std::isfinite(value));
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  // Trim trailing zeros but keep one digit after the point.
  std::string s(buf);
  while (s.size() > 1 && s.back() == '0' && s[s.size() - 2] != '.') {
    s.pop_back();
  }
  return s;
}

void JsonWriter::Comma() {
  if (!need_comma_.empty()) {
    if (pending_key_) {
      pending_key_ = false;
      return;  // value directly after its key: no comma
    }
    if (need_comma_.back()) out_ += ',';
    need_comma_.back() = true;
  }
}

void JsonWriter::BeginObject() {
  Comma();
  out_ += '{';
  need_comma_.push_back(false);
}

void JsonWriter::EndObject() {
  COWBIRD_CHECK(!need_comma_.empty() && !pending_key_);
  need_comma_.pop_back();
  out_ += '}';
}

void JsonWriter::BeginArray() {
  Comma();
  out_ += '[';
  need_comma_.push_back(false);
}

void JsonWriter::EndArray() {
  COWBIRD_CHECK(!need_comma_.empty() && !pending_key_);
  need_comma_.pop_back();
  out_ += ']';
}

void JsonWriter::Key(std::string_view key) {
  COWBIRD_CHECK(!pending_key_);
  Comma();
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
  pending_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  Comma();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
}

void JsonWriter::Uint(std::uint64_t value) {
  Comma();
  out_ += std::to_string(value);
}

void JsonWriter::Int(std::int64_t value) {
  Comma();
  out_ += std::to_string(value);
}

void JsonWriter::Double(double value) {
  Comma();
  out_ += JsonNumber(value);
}

void JsonWriter::Bool(bool value) {
  Comma();
  out_ += value ? "true" : "false";
}

void JsonWriter::RawNumber(std::string_view formatted) {
  Comma();
  out_ += formatted;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<JsonValue> Run() {
    SkipWs();
    JsonValue value;
    if (!ParseValue(value)) return std::nullopt;
    SkipWs();
    if (pos_ != text_.size()) {
      Fail("trailing characters after document");
      return std::nullopt;
    }
    return value;
  }

 private:
  void Fail(const std::string& message) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = "offset " + std::to_string(pos_) + ": " + message;
    }
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue& out) {
    if (pos_ >= text_.size()) {
      Fail("unexpected end of input");
      return false;
    }
    switch (text_[pos_]) {
      case '{': return ParseObject(out);
      case '[': return ParseArray(out);
      case '"': {
        out.kind = JsonValue::Kind::kString;
        return ParseString(out.string);
      }
      case 't':
      case 'f': return ParseBool(out);
      case 'n': return ParseNull(out);
      default: return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (Consume('}')) return true;
    for (;;) {
      SkipWs();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !ParseString(key)) {
        Fail("expected object key");
        return false;
      }
      for (const auto& [k, v] : out.object) {
        (void)v;
        if (k == key) {
          Fail("duplicate key \"" + key + "\"");
          return false;
        }
      }
      SkipWs();
      if (!Consume(':')) {
        Fail("expected ':' after key");
        return false;
      }
      SkipWs();
      JsonValue value;
      if (!ParseValue(value)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return true;
      Fail("expected ',' or '}' in object");
      return false;
    }
  }

  bool ParseArray(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipWs();
    if (Consume(']')) return true;
    for (;;) {
      SkipWs();
      JsonValue value;
      if (!ParseValue(value)) return false;
      out.array.push_back(std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) return true;
      Fail("expected ',' or ']' in array");
      return false;
    }
  }

  bool ParseString(std::string& out) {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            Fail("truncated \\u escape");
            return false;
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else {
              Fail("invalid \\u escape");
              return false;
            }
          }
          // The emitters only produce control-range escapes; decode the
          // BMP code point as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          Fail("invalid escape");
          return false;
      }
    }
    Fail("unterminated string");
    return false;
  }

  bool ParseBool(JsonValue& out) {
    out.kind = JsonValue::Kind::kBool;
    if (text_.substr(pos_, 4) == "true") {
      out.boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.substr(pos_, 5) == "false") {
      out.boolean = false;
      pos_ += 5;
      return true;
    }
    Fail("invalid literal");
    return false;
  }

  bool ParseNull(JsonValue& out) {
    if (text_.substr(pos_, 4) == "null") {
      out.kind = JsonValue::Kind::kNull;
      pos_ += 4;
      return true;
    }
    Fail("invalid literal");
    return false;
  }

  bool ParseNumber(JsonValue& out) {
    const std::size_t start = pos_;
    if (Consume('-')) {}
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      Fail("expected value");
      return false;
    }
    out.kind = JsonValue::Kind::kNumber;
    out.number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                             nullptr);
    return true;
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> ParseJson(std::string_view text, std::string* error) {
  return Parser(text, error).Run();
}

}  // namespace cowbird::telemetry
