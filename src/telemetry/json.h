// Minimal JSON support for the telemetry layer.
//
// Two halves, both deliberately small:
//
//   * JsonWriter — an append-only emitter used by Snapshot::ToJson and
//     SpanTracer::ToChromeTraceJson. Output is deterministic: callers emit
//     keys in a fixed order and the writer never reorders anything, which is
//     what lets tests golden-file the exported documents byte for byte.
//   * JsonValue / ParseJson — a strict recursive-descent parser used by the
//     golden-file validators (trace and bench snapshots round-trip through
//     it in tests). It supports exactly the subset the emitters produce:
//     objects, arrays, strings with \-escapes, numbers, booleans, null.
//
// Nothing here is a general-purpose JSON library; it exists so the repo can
// validate its own machine-readable outputs without an external dependency.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cowbird::telemetry {

std::string JsonEscape(std::string_view raw);

// Formats a double the way the emitters do: integers without a fraction,
// everything else with up to 6 significant decimals, never scientific for
// the magnitudes telemetry produces.
std::string JsonNumber(double value);

class JsonWriter {
 public:
  // Structural helpers; the writer tracks comma placement.
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();
  void Key(std::string_view key);  // must be inside an object
  void String(std::string_view value);
  void Uint(std::uint64_t value);
  void Int(std::int64_t value);
  void Double(double value);
  void Bool(bool value);
  void RawNumber(std::string_view formatted);

  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

 private:
  void Comma();

  std::string out_;
  // One entry per open container: true once a value was written at that
  // level (so the next value needs a comma first).
  std::vector<bool> need_comma_;
  bool pending_key_ = false;
};

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  // Insertion-ordered object members (duplicate keys rejected at parse).
  std::vector<std::pair<std::string, JsonValue>> object;

  bool IsObject() const { return kind == Kind::kObject; }
  bool IsArray() const { return kind == Kind::kArray; }
  bool IsString() const { return kind == Kind::kString; }
  bool IsNumber() const { return kind == Kind::kNumber; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
};

// Strict parse of a complete document. Returns nullopt (with a position
// and message in *error when provided) on any syntax violation, trailing
// garbage, or duplicate object key.
std::optional<JsonValue> ParseJson(std::string_view text,
                                   std::string* error = nullptr);

}  // namespace cowbird::telemetry
