#include "telemetry/metrics.h"

#include <algorithm>

#include "common/check.h"
#include "telemetry/json.h"

namespace cowbird::telemetry {

namespace {

bool LegalAtom(std::string_view s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (c == '{' || c == '}' || c == ',' || c == '=' || c == '"') return false;
  }
  return true;
}

std::uint64_t* DummyCounterCell() {
  static std::uint64_t cell = 0;
  return &cell;
}

std::int64_t* DummyGaugeCell() {
  static std::int64_t cell = 0;
  return &cell;
}

LogHistogram* DummyHistogramCell() {
  static LogHistogram cell;
  return &cell;
}

}  // namespace

Counter::Counter() : cell_(DummyCounterCell()) {}
Gauge::Gauge() : cell_(DummyGaugeCell()) {}
Histogram::Histogram() : cell_(DummyHistogramCell()) {}

std::string CanonicalMetricKey(std::string_view name, const Labels& labels) {
  COWBIRD_CHECK(LegalAtom(name));
  std::string key(name);
  if (labels.empty()) return key;
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  key += '{';
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    COWBIRD_CHECK(LegalAtom(sorted[i].first));
    COWBIRD_CHECK(LegalAtom(sorted[i].second));
    if (i > 0) {
      COWBIRD_CHECK(sorted[i].first != sorted[i - 1].first);  // no dup keys
      key += ',';
    }
    key += sorted[i].first;
    key += '=';
    key += sorted[i].second;
  }
  key += '}';
  return key;
}

Counter MetricRegistry::GetCounter(std::string_view name,
                                   const Labels& labels) {
  return Counter(&counters_[CanonicalMetricKey(name, labels)]);
}

Gauge MetricRegistry::GetGauge(std::string_view name, const Labels& labels) {
  std::string key = CanonicalMetricKey(name, labels);
  COWBIRD_CHECK(!callback_gauges_.contains(key));
  return Gauge(&gauges_[std::move(key)]);
}

Histogram MetricRegistry::GetHistogram(std::string_view name,
                                       const Labels& labels) {
  return Histogram(&histograms_[CanonicalMetricKey(name, labels)]);
}

void MetricRegistry::RegisterCallbackGauge(std::string_view name,
                                           const Labels& labels,
                                           std::function<std::int64_t()> fn) {
  COWBIRD_CHECK(fn != nullptr);
  std::string key = CanonicalMetricKey(name, labels);
  COWBIRD_CHECK(!gauges_.contains(key));
  callback_gauges_[std::move(key)] = std::move(fn);
}

void MetricRegistry::UnregisterCallbackGauge(std::string_view name,
                                             const Labels& labels) {
  callback_gauges_.erase(CanonicalMetricKey(name, labels));
}

Snapshot MetricRegistry::TakeSnapshot() const {
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [key, value] : counters_) {
    snap.counters.push_back({key, value});
  }
  // Stored and callback gauges share one sorted namespace; merge the two
  // already-sorted maps so snapshot order stays canonical.
  snap.gauges.reserve(gauges_.size() + callback_gauges_.size());
  auto stored = gauges_.begin();
  auto lazy = callback_gauges_.begin();
  while (stored != gauges_.end() || lazy != callback_gauges_.end()) {
    const bool take_stored =
        lazy == callback_gauges_.end() ||
        (stored != gauges_.end() && stored->first < lazy->first);
    if (take_stored) {
      snap.gauges.push_back({stored->first, stored->second});
      ++stored;
    } else {
      snap.gauges.push_back({lazy->first, lazy->second()});
      ++lazy;
    }
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [key, hist] : histograms_) {
    Snapshot::HistogramEntry entry;
    entry.key = key;
    entry.count = hist.count();
    entry.p50 = hist.QuantileUpperBound(0.5);
    entry.p99 = hist.QuantileUpperBound(0.99);
    for (int i = 0; i < LogHistogram::kBuckets; ++i) {
      if (hist.bucket(i) != 0) entry.buckets.emplace_back(i, hist.bucket(i));
    }
    snap.histograms.push_back(std::move(entry));
  }
  return snap;
}

std::optional<std::uint64_t> Snapshot::CounterValue(
    std::string_view key) const {
  for (const auto& entry : counters) {
    if (entry.key == key) return entry.value;
  }
  return std::nullopt;
}

std::optional<std::int64_t> Snapshot::GaugeValue(std::string_view key) const {
  for (const auto& entry : gauges) {
    if (entry.key == key) return entry.value;
  }
  return std::nullopt;
}

const Snapshot::HistogramEntry* Snapshot::FindHistogram(
    std::string_view key) const {
  for (const auto& entry : histograms) {
    if (entry.key == key) return &entry;
  }
  return nullptr;
}

std::string Snapshot::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("counters");
  w.BeginObject();
  for (const auto& entry : counters) {
    w.Key(entry.key);
    w.Uint(entry.value);
  }
  w.EndObject();
  w.Key("gauges");
  w.BeginObject();
  for (const auto& entry : gauges) {
    w.Key(entry.key);
    w.Int(entry.value);
  }
  w.EndObject();
  w.Key("histograms");
  w.BeginObject();
  for (const auto& entry : histograms) {
    w.Key(entry.key);
    w.BeginObject();
    w.Key("count");
    w.Uint(entry.count);
    w.Key("p50");
    w.Uint(entry.p50);
    w.Key("p99");
    w.Uint(entry.p99);
    w.Key("buckets");
    w.BeginObject();
    for (const auto& [bucket, count] : entry.buckets) {
      w.Key(std::to_string(bucket));
      w.Uint(count);
    }
    w.EndObject();
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.TakeString();
}

}  // namespace cowbird::telemetry
