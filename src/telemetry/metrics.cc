#include "telemetry/metrics.h"

#include <algorithm>

#include "common/check.h"
#include "telemetry/json.h"

namespace cowbird::telemetry {

namespace {

bool LegalAtom(std::string_view s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (c == '{' || c == '}' || c == ',' || c == '=' || c == '"') return false;
  }
  return true;
}

// Quantile over a sparse (bucket index, count) list; replicates
// LogHistogram::QuantileUpperBound exactly — the first crossing always lands
// on a non-empty bucket, so skipping empty ones changes nothing.
std::uint64_t SparseQuantileUpperBound(
    const std::vector<std::pair<int, std::uint64_t>>& buckets,
    std::uint64_t count, double q) {
  if (count == 0) return 0;
  const auto target =
      static_cast<std::uint64_t>(q * static_cast<double>(count));
  std::uint64_t seen = 0;
  for (const auto& [bucket, bucket_count] : buckets) {
    seen += bucket_count;
    if (seen > target) {
      if (bucket == 0) return 0;
      if (bucket >= 64) return ~0ull;
      return (1ull << bucket) - 1;
    }
  }
  return ~0ull;
}

}  // namespace

// Unbound handles hold nullptr: a thread-local dummy cell looks tempting but
// handles are typically constructed on the harness thread and exercised on a
// domain worker, so every "thread-local" fallback actually lands on the
// constructing thread's word — shared across domains, a data race.
Counter::Counter() : cell_(nullptr) {}
Gauge::Gauge() : cell_(nullptr) {}
Histogram::Histogram() : cell_(nullptr) {}

#ifndef NDEBUG
Counter::Counter(std::uint64_t* cell, const MetricRegistry* owner)
    : cell_(cell), owner_(owner) {}
Gauge::Gauge(std::int64_t* cell, const MetricRegistry* owner)
    : cell_(cell), owner_(owner) {}
Histogram::Histogram(LogHistogram* cell, const MetricRegistry* owner)
    : cell_(cell), owner_(owner) {}
#else
Counter::Counter(std::uint64_t* cell, const MetricRegistry*) : cell_(cell) {}
Gauge::Gauge(std::int64_t* cell, const MetricRegistry*) : cell_(cell) {}
Histogram::Histogram(LogHistogram* cell, const MetricRegistry*)
    : cell_(cell) {}
#endif

std::string CanonicalMetricKey(std::string_view name, const Labels& labels) {
  COWBIRD_CHECK(LegalAtom(name));
  std::string key(name);
  if (labels.empty()) return key;
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  key += '{';
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    COWBIRD_CHECK(LegalAtom(sorted[i].first));
    COWBIRD_CHECK(LegalAtom(sorted[i].second));
    if (i > 0) {
      COWBIRD_CHECK(sorted[i].first != sorted[i - 1].first);  // no dup keys
      key += ',';
    }
    key += sorted[i].first;
    key += '=';
    key += sorted[i].second;
  }
  key += '}';
  return key;
}

Counter MetricRegistry::GetCounter(std::string_view name,
                                   const Labels& labels) {
  return Counter(&counters_[CanonicalMetricKey(name, labels)], this);
}

Gauge MetricRegistry::GetGauge(std::string_view name, const Labels& labels) {
  std::string key = CanonicalMetricKey(name, labels);
  COWBIRD_CHECK(!callback_gauges_.contains(key));
  return Gauge(&gauges_[std::move(key)], this);
}

Histogram MetricRegistry::GetHistogram(std::string_view name,
                                       const Labels& labels) {
  return Histogram(&histograms_[CanonicalMetricKey(name, labels)], this);
}

void MetricRegistry::RegisterCallbackGauge(std::string_view name,
                                           const Labels& labels,
                                           std::function<std::int64_t()> fn) {
  COWBIRD_CHECK(fn != nullptr);
  std::string key = CanonicalMetricKey(name, labels);
  COWBIRD_CHECK(!gauges_.contains(key));
  callback_gauges_[std::move(key)] = std::move(fn);
}

void MetricRegistry::UnregisterCallbackGauge(std::string_view name,
                                             const Labels& labels) {
  callback_gauges_.erase(CanonicalMetricKey(name, labels));
}

Snapshot MetricRegistry::TakeSnapshot() const {
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [key, value] : counters_) {
    snap.counters.push_back({key, value});
  }
  // Stored and callback gauges share one sorted namespace; merge the two
  // already-sorted maps so snapshot order stays canonical.
  snap.gauges.reserve(gauges_.size() + callback_gauges_.size());
  auto stored = gauges_.begin();
  auto lazy = callback_gauges_.begin();
  while (stored != gauges_.end() || lazy != callback_gauges_.end()) {
    const bool take_stored =
        lazy == callback_gauges_.end() ||
        (stored != gauges_.end() && stored->first < lazy->first);
    if (take_stored) {
      snap.gauges.push_back({stored->first, stored->second});
      ++stored;
    } else {
      snap.gauges.push_back({lazy->first, lazy->second()});
      ++lazy;
    }
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [key, hist] : histograms_) {
    Snapshot::HistogramEntry entry;
    entry.key = key;
    entry.count = hist.count();
    entry.p50 = hist.QuantileUpperBound(0.5);
    entry.p99 = hist.QuantileUpperBound(0.99);
    for (int i = 0; i < LogHistogram::kBuckets; ++i) {
      if (hist.bucket(i) != 0) entry.buckets.emplace_back(i, hist.bucket(i));
    }
    snap.histograms.push_back(std::move(entry));
  }
  return snap;
}

void Snapshot::MergeFrom(const Snapshot& other) {
  // All three sections are sorted by canonical key (TakeSnapshot emits them
  // that way and this merge preserves it), so a linear two-pointer merge
  // keeps the aggregate canonical.
  {
    std::vector<CounterEntry> merged;
    merged.reserve(counters.size() + other.counters.size());
    std::size_t a = 0, b = 0;
    while (a < counters.size() || b < other.counters.size()) {
      if (b == other.counters.size() ||
          (a < counters.size() && counters[a].key < other.counters[b].key)) {
        merged.push_back(std::move(counters[a++]));
      } else if (a == counters.size() ||
                 other.counters[b].key < counters[a].key) {
        merged.push_back(other.counters[b++]);
      } else {
        merged.push_back(
            {std::move(counters[a].key),
             counters[a].value + other.counters[b].value});
        ++a;
        ++b;
      }
    }
    counters = std::move(merged);
  }
  {
    std::vector<GaugeEntry> merged;
    merged.reserve(gauges.size() + other.gauges.size());
    std::size_t a = 0, b = 0;
    while (a < gauges.size() || b < other.gauges.size()) {
      if (b == other.gauges.size() ||
          (a < gauges.size() && gauges[a].key < other.gauges[b].key)) {
        merged.push_back(std::move(gauges[a++]));
      } else if (a == gauges.size() || other.gauges[b].key < gauges[a].key) {
        merged.push_back(other.gauges[b++]);
      } else {
        merged.push_back({std::move(gauges[a].key),
                          gauges[a].value + other.gauges[b].value});
        ++a;
        ++b;
      }
    }
    gauges = std::move(merged);
  }
  {
    std::vector<HistogramEntry> merged;
    merged.reserve(histograms.size() + other.histograms.size());
    std::size_t a = 0, b = 0;
    while (a < histograms.size() || b < other.histograms.size()) {
      if (b == other.histograms.size() ||
          (a < histograms.size() &&
           histograms[a].key < other.histograms[b].key)) {
        merged.push_back(std::move(histograms[a++]));
      } else if (a == histograms.size() ||
                 other.histograms[b].key < histograms[a].key) {
        merged.push_back(other.histograms[b++]);
      } else {
        HistogramEntry entry;
        entry.key = std::move(histograms[a].key);
        entry.count = histograms[a].count + other.histograms[b].count;
        // Both bucket lists are sorted by index; merge, summing collisions.
        const auto& ba = histograms[a].buckets;
        const auto& bb = other.histograms[b].buckets;
        std::size_t i = 0, j = 0;
        while (i < ba.size() || j < bb.size()) {
          if (j == bb.size() ||
              (i < ba.size() && ba[i].first < bb[j].first)) {
            entry.buckets.push_back(ba[i++]);
          } else if (i == ba.size() || bb[j].first < ba[i].first) {
            entry.buckets.push_back(bb[j++]);
          } else {
            entry.buckets.emplace_back(ba[i].first,
                                       ba[i].second + bb[j].second);
            ++i;
            ++j;
          }
        }
        entry.p50 = SparseQuantileUpperBound(entry.buckets, entry.count, 0.5);
        entry.p99 =
            SparseQuantileUpperBound(entry.buckets, entry.count, 0.99);
        merged.push_back(std::move(entry));
        ++a;
        ++b;
      }
    }
    histograms = std::move(merged);
  }
}

std::optional<std::uint64_t> Snapshot::CounterValue(
    std::string_view key) const {
  for (const auto& entry : counters) {
    if (entry.key == key) return entry.value;
  }
  return std::nullopt;
}

std::optional<std::int64_t> Snapshot::GaugeValue(std::string_view key) const {
  for (const auto& entry : gauges) {
    if (entry.key == key) return entry.value;
  }
  return std::nullopt;
}

const Snapshot::HistogramEntry* Snapshot::FindHistogram(
    std::string_view key) const {
  for (const auto& entry : histograms) {
    if (entry.key == key) return &entry;
  }
  return nullptr;
}

std::string Snapshot::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("counters");
  w.BeginObject();
  for (const auto& entry : counters) {
    w.Key(entry.key);
    w.Uint(entry.value);
  }
  w.EndObject();
  w.Key("gauges");
  w.BeginObject();
  for (const auto& entry : gauges) {
    w.Key(entry.key);
    w.Int(entry.value);
  }
  w.EndObject();
  w.Key("histograms");
  w.BeginObject();
  for (const auto& entry : histograms) {
    w.Key(entry.key);
    w.BeginObject();
    w.Key("count");
    w.Uint(entry.count);
    w.Key("p50");
    w.Uint(entry.p50);
    w.Key("p99");
    w.Uint(entry.p99);
    w.Key("buckets");
    w.BeginObject();
    for (const auto& [bucket, count] : entry.buckets) {
      w.Key(std::to_string(bucket));
      w.Uint(count);
    }
    w.EndObject();
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.TakeString();
}

}  // namespace cowbird::telemetry
