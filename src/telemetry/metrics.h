// Metric registry: labeled counters, gauges, and log-histograms with
// near-zero hot-path cost.
//
// Design:
//
//   * Handles are raw pointers into registry-owned cells. A Counter is one
//     `std::uint64_t*`; `Add()` is a single increment through it, with no
//     lock or lookup on the hot path. A default-constructed (unbound) handle
//     holds nullptr and its writes are no-ops — one perfectly predicted
//     test-and-skip, so components built without a telemetry hub pay nothing
//     and never share a cell. (An earlier shared "throwaway word" design made
//     unbound handles constructed on one thread and exercised on another
//     race with each other.)
//   * The registry stores cells in `std::map` keyed by the canonical series
//     key ("name{k=v,...}" with label keys sorted), which gives pointer
//     stability for handles and sorted — hence deterministic — snapshots.
//   * Callback gauges are evaluated only at snapshot time. They are how
//     pre-existing member counters (net::Link fault counts, QP retransmits,
//     engine queue depths) surface through the registry without adding any
//     cost to the code that maintains them.
//
// Each registry is single-threaded, like the event-loop domain it observes.
// Sharded (multi-domain) runs give every domain its own registry and merge
// the snapshots afterwards (Snapshot::MergeFrom) — the hot path stays a raw
// increment. Debug builds additionally pin each registry to the thread that
// called BindToCurrentThread() and CHECK every cell access against it.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/stats.h"

namespace cowbird::telemetry {

// Label set for one metric series, e.g. {{"engine","p4"},{"instance","1"}}.
// Order does not matter; keys are sorted during canonicalization.
using Labels = std::vector<std::pair<std::string, std::string>>;

// "name" or "name{k1=v1,k2=v2}" with keys sorted; the identity of a series.
// Names/labels must not contain '{', '}', ',', '=' or '"'.
std::string CanonicalMetricKey(std::string_view name, const Labels& labels);

class MetricRegistry;

// Monotonically increasing counter handle.
class Counter {
 public:
  Counter();  // unbound: Add is a no-op
  void Add(std::uint64_t delta = 1) const {
    if (cell_ == nullptr) return;
    DCheckOwner();
    *cell_ += delta;
  }
  std::uint64_t value() const { return cell_ != nullptr ? *cell_ : 0; }

 private:
  friend class MetricRegistry;
  Counter(std::uint64_t* cell, const MetricRegistry* owner);
  void DCheckOwner() const;
  std::uint64_t* cell_;
#ifndef NDEBUG
  const MetricRegistry* owner_ = nullptr;
#endif
};

// Settable signed gauge handle.
class Gauge {
 public:
  Gauge();  // unbound: Set/Add are no-ops
  void Set(std::int64_t v) const {
    if (cell_ == nullptr) return;
    DCheckOwner();
    *cell_ = v;
  }
  void Add(std::int64_t delta) const {
    if (cell_ == nullptr) return;
    DCheckOwner();
    *cell_ += delta;
  }
  std::int64_t value() const { return cell_ != nullptr ? *cell_ : 0; }

 private:
  friend class MetricRegistry;
  Gauge(std::int64_t* cell, const MetricRegistry* owner);
  void DCheckOwner() const;
  std::int64_t* cell_;
#ifndef NDEBUG
  const MetricRegistry* owner_ = nullptr;
#endif
};

// Power-of-two histogram handle (see common/stats.h LogHistogram).
class Histogram {
 public:
  Histogram();  // unbound: Observe is a no-op
  void Observe(std::uint64_t value) const {
    if (cell_ == nullptr) return;
    DCheckOwner();
    cell_->Add(value);
  }
  const LogHistogram& histogram() const {
    static const LogHistogram kEmpty;
    return cell_ != nullptr ? *cell_ : kEmpty;
  }

 private:
  friend class MetricRegistry;
  Histogram(LogHistogram* cell, const MetricRegistry* owner);
  void DCheckOwner() const;
  LogHistogram* cell_;
#ifndef NDEBUG
  const MetricRegistry* owner_ = nullptr;
#endif
};

// Point-in-time copy of every series in a registry, sorted by canonical key.
// Two snapshots of identical runs serialize to identical JSON.
struct Snapshot {
  struct CounterEntry {
    std::string key;
    std::uint64_t value;
  };
  struct GaugeEntry {
    std::string key;
    std::int64_t value;
  };
  struct HistogramEntry {
    std::string key;
    std::uint64_t count;
    std::uint64_t p50;
    std::uint64_t p99;
    // (bucket index, count) for non-empty buckets only.
    std::vector<std::pair<int, std::uint64_t>> buckets;
  };

  std::vector<CounterEntry> counters;
  std::vector<GaugeEntry> gauges;
  std::vector<HistogramEntry> histograms;

  std::optional<std::uint64_t> CounterValue(std::string_view key) const;
  std::optional<std::int64_t> GaugeValue(std::string_view key) const;
  const HistogramEntry* FindHistogram(std::string_view key) const;

  // Folds `other` into this snapshot: counters and gauges sum on key
  // collision, histogram buckets add element-wise and p50/p99 are recomputed
  // from the merged distribution. New keys are inserted at their canonical
  // sorted position, so merging per-domain snapshots in domain order yields
  // a byte-deterministic aggregate regardless of how many threads ran.
  void MergeFrom(const Snapshot& other);

  // {"counters":{...},"gauges":{...},"histograms":{...}} with keys in
  // canonical (sorted) order. Deterministic byte-for-byte.
  std::string ToJson() const;
};

class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // Get-or-create. Repeated calls with the same name+labels return handles
  // to the same cell (label-set dedup).
  Counter GetCounter(std::string_view name, const Labels& labels = {});
  Gauge GetGauge(std::string_view name, const Labels& labels = {});
  Histogram GetHistogram(std::string_view name, const Labels& labels = {});

  // Gauge evaluated lazily at TakeSnapshot(); zero cost until then. The
  // callback must outlive the registry or be unregistered first.
  // Re-registering the same series replaces the callback (instances rebind
  // after migration).
  void RegisterCallbackGauge(std::string_view name, const Labels& labels,
                             std::function<std::int64_t()> fn);
  void UnregisterCallbackGauge(std::string_view name, const Labels& labels);

  Snapshot TakeSnapshot() const;

  std::size_t counter_series() const { return counters_.size(); }
  std::size_t gauge_series() const {
    return gauges_.size() + callback_gauges_.size();
  }
  std::size_t histogram_series() const { return histograms_.size(); }

  // Debug-build thread confinement. Binding pins the registry (and every
  // handle it issued) to the calling thread; any cell access from another
  // thread CHECK-fails. Release builds compile both to nothing — the hot
  // path stays a raw increment. Rebinding is allowed (domain workers are
  // respawned per Run); ReleaseThreadBinding restores "any thread".
  void BindToCurrentThread() {
#ifndef NDEBUG
    owner_thread_.store(std::this_thread::get_id(),
                        std::memory_order_relaxed);
#endif
  }
  void ReleaseThreadBinding() {
#ifndef NDEBUG
    owner_thread_.store(std::thread::id(), std::memory_order_relaxed);
#endif
  }
#ifndef NDEBUG
  void DCheckAccess() const {
    const std::thread::id owner =
        owner_thread_.load(std::memory_order_relaxed);
    COWBIRD_CHECK(owner == std::thread::id() ||
                  owner == std::this_thread::get_id());
  }
#endif

 private:
  // std::map: node-based, so cell addresses are stable across inserts.
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, std::int64_t> gauges_;
  std::map<std::string, LogHistogram> histograms_;
  std::map<std::string, std::function<std::int64_t()>> callback_gauges_;
#ifndef NDEBUG
  std::atomic<std::thread::id> owner_thread_{};
#endif
};

#ifndef NDEBUG
inline void Counter::DCheckOwner() const {
  if (owner_ != nullptr) owner_->DCheckAccess();
}
inline void Gauge::DCheckOwner() const {
  if (owner_ != nullptr) owner_->DCheckAccess();
}
inline void Histogram::DCheckOwner() const {
  if (owner_ != nullptr) owner_->DCheckAccess();
}
#else
inline void Counter::DCheckOwner() const {}
inline void Gauge::DCheckOwner() const {}
inline void Histogram::DCheckOwner() const {}
#endif

}  // namespace cowbird::telemetry
