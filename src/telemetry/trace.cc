#include "telemetry/trace.h"

#include <algorithm>
#include <cstdio>
#include <set>

#include "common/check.h"
#include "telemetry/json.h"

namespace cowbird::telemetry {

std::string OpKey::ToString() const {
  return "i" + std::to_string(instance_id) + "/t" + std::to_string(thread) +
         "/" + (is_write ? "W#" : "R#") + std::to_string(seq);
}

const char* OpPhaseName(OpPhase phase) {
  switch (phase) {
    case OpPhase::kIssue: return "issue";
    case OpPhase::kParsed: return "parsed";
    case OpPhase::kExecute: return "execute";
    case OpPhase::kDone: return "done";
    case OpPhase::kRetired: return "retired";
  }
  return "?";
}

const char* OpSegmentName(int segment) {
  switch (segment) {
    case 0: return "probe_pickup";
    case 1: return "engine_queue";
    case 2: return "fabric_pool";
    case 3: return "publish_deliver";
  }
  return "?";
}

bool OpBreakdown::Complete() const {
  for (const Nanos ts : at) {
    if (ts == kUnset) return false;
  }
  return true;
}

Nanos OpBreakdown::Total() const {
  return at[kNumOpPhases - 1] - at[0];
}

Nanos OpBreakdown::Segment(int segment) const {
  COWBIRD_CHECK(segment >= 0 && segment < kNumOpSegments);
  return at[segment + 1] - at[segment];
}

Nanos OpBreakdown::SumOfSegments() const {
  Nanos sum = 0;
  for (int i = 0; i < kNumOpSegments; ++i) sum += Segment(i);
  return sum;
}

SpanTracer::SpanTracer(Clock clock) : clock_(std::move(clock)) {
  COWBIRD_CHECK(clock_ != nullptr);
}

SpanTracer::SpanHandle SpanTracer::Begin(std::string_view track,
                                         std::string_view name) {
  if (spans_.size() >= span_capacity_) {
    ++dropped_spans_;
    return SpanHandle{};
  }
  Span span;
  span.track = std::string(track);
  span.name = std::string(name);
  span.begin = clock_();
  spans_.push_back(std::move(span));
  return SpanHandle{spans_.size() - 1};
}

void SpanTracer::End(SpanHandle handle) {
  if (!handle.valid()) return;
  COWBIRD_CHECK(handle.index < spans_.size());
  Span& span = spans_[handle.index];
  COWBIRD_CHECK(span.end == -1);
  span.end = clock_();
  COWBIRD_CHECK(span.end >= span.begin);
}

void SpanTracer::Instant(std::string_view track, std::string_view name) {
  if (instants_.size() >= instant_capacity_) {
    ++dropped_instants_;
    return;
  }
  instants_.push_back({std::string(track), std::string(name), clock_()});
}

void SpanTracer::RecordOpAt(const OpKey& key, OpPhase phase, Nanos ts) {
  auto it = ops_.find(key);
  if (it == ops_.end()) {
    if (ops_.size() >= op_capacity_) {
      ++dropped_ops_;
      return;
    }
    it = ops_.emplace(key, OpBreakdown{}).first;
    it->second.key = key;
  }
  // First stamp wins: a retransmitted or crash-migrated op may be parsed a
  // second time, but its lifecycle started at the first observation.
  Nanos& slot = it->second.at[static_cast<int>(phase)];
  if (slot == OpBreakdown::kUnset) slot = ts;
}

const OpBreakdown* SpanTracer::FindOp(const OpKey& key) const {
  const auto it = ops_.find(key);
  return it == ops_.end() ? nullptr : &it->second;
}

void SpanTracer::MergeFrom(const SpanTracer& other) {
  for (const Span& span : other.spans_) {
    if (spans_.size() >= span_capacity_) {
      ++dropped_spans_;
      continue;
    }
    spans_.push_back(span);
  }
  for (const InstantEvent& instant : other.instants_) {
    if (instants_.size() >= instant_capacity_) {
      ++dropped_instants_;
      continue;
    }
    instants_.push_back(instant);
  }
  for (const auto& [key, breakdown] : other.ops_) {
    auto it = ops_.find(key);
    if (it == ops_.end()) {
      if (ops_.size() >= op_capacity_) {
        ++dropped_ops_;
        continue;
      }
      ops_.emplace(key, breakdown);
      continue;
    }
    // Same first-stamp-wins rule as RecordOpAt: a phase this tracer already
    // observed keeps its timestamp.
    for (int phase = 0; phase < kNumOpPhases; ++phase) {
      if (it->second.at[phase] == OpBreakdown::kUnset) {
        it->second.at[phase] = breakdown.at[phase];
      }
    }
  }
  dropped_ops_ += other.dropped_ops_;
  dropped_spans_ += other.dropped_spans_;
  dropped_instants_ += other.dropped_instants_;
}

namespace {

// One Chrome trace event, pre-sorted by (ts, creation order) at export.
struct TraceEvent {
  Nanos ts = 0;
  std::size_t order = 0;
  char ph = 'X';
  std::string name;
  const char* cat = "span";
  std::string id;  // async events only
  int tid = 0;
  Nanos dur = 0;  // X only
};

// Chrome trace timestamps are microseconds; emit ns as fractional us so no
// precision is lost.
void EmitMicros(JsonWriter& w, Nanos ns) {
  COWBIRD_CHECK(ns >= 0);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  w.RawNumber(buf);
}

}  // namespace

std::string SpanTracer::ToChromeTraceJson() const {
  const Nanos now = clock_();

  // Assign tids: every track name, sorted, so the layout is deterministic
  // regardless of first-use order.
  std::set<std::string> track_names;
  for (const Span& span : spans_) track_names.insert(span.track);
  for (const InstantEvent& ev : instants_) track_names.insert(ev.track);
  for (const auto& [key, breakdown] : ops_) {
    (void)breakdown;
    track_names.insert("ops/i" + std::to_string(key.instance_id) + "/t" +
                       std::to_string(key.thread));
  }
  std::map<std::string, int> tid_of;
  int next_tid = 1;
  for (const std::string& name : track_names) tid_of[name] = next_tid++;

  std::vector<TraceEvent> events;
  events.reserve(spans_.size() + instants_.size() + ops_.size() * 10);
  auto add = [&events](TraceEvent ev) {
    ev.order = events.size();
    events.push_back(std::move(ev));
  };

  for (const Span& span : spans_) {
    TraceEvent ev;
    ev.ts = span.begin;
    ev.ph = 'X';
    ev.name = span.name;
    ev.tid = tid_of.at(span.track);
    ev.dur = (span.end == -1 ? now : span.end) - span.begin;
    add(std::move(ev));
  }
  for (const InstantEvent& instant : instants_) {
    TraceEvent ev;
    ev.ts = instant.ts;
    ev.ph = 'i';
    ev.name = instant.name;
    ev.tid = tid_of.at(instant.track);
    add(std::move(ev));
  }
  for (const auto& [key, breakdown] : ops_) {
    std::vector<int> recorded;
    for (int i = 0; i < kNumOpPhases; ++i) {
      if (breakdown.at[i] != OpBreakdown::kUnset) recorded.push_back(i);
    }
    if (recorded.empty()) continue;
    const int tid = tid_of.at("ops/i" + std::to_string(key.instance_id) +
                              "/t" + std::to_string(key.thread));
    const std::string id = key.ToString();
    const std::string op_name =
        (key.is_write ? "W#" : "R#") + std::to_string(key.seq);
    if (recorded.size() == 1) {
      TraceEvent ev;
      ev.ts = breakdown.at[recorded[0]];
      ev.ph = 'i';
      ev.name = op_name + ":" +
                OpPhaseName(static_cast<OpPhase>(recorded[0]));
      ev.cat = "op";
      ev.tid = tid;
      add(std::move(ev));
      continue;
    }
    // Outer async span over the whole recorded lifetime, with one nested
    // async span per segment between consecutive recorded phases.
    auto async = [&](char ph, std::string name, Nanos ts) {
      TraceEvent ev;
      ev.ts = ts;
      ev.ph = ph;
      ev.name = std::move(name);
      ev.cat = "op";
      ev.id = id;
      ev.tid = tid;
      add(std::move(ev));
    };
    async('b', op_name, breakdown.at[recorded.front()]);
    for (std::size_t i = 0; i + 1 < recorded.size(); ++i) {
      const int from = recorded[i];
      const int to = recorded[i + 1];
      const std::string segment =
          to == from + 1
              ? OpSegmentName(from)
              : std::string(OpPhaseName(static_cast<OpPhase>(from))) + ".." +
                    OpPhaseName(static_cast<OpPhase>(to));
      async('b', segment, breakdown.at[from]);
      async('e', segment, breakdown.at[to]);
    }
    async('e', op_name, breakdown.at[recorded.back()]);
  }

  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.ts != b.ts) return a.ts < b.ts;
                     return a.order < b.order;
                   });

  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit");
  w.String("ns");
  w.Key("traceEvents");
  w.BeginArray();
  // Process / thread naming metadata first.
  w.BeginObject();
  w.Key("name");
  w.String("process_name");
  w.Key("ph");
  w.String("M");
  w.Key("ts");
  w.Uint(0);
  w.Key("pid");
  w.Uint(1);
  w.Key("tid");
  w.Uint(0);
  w.Key("args");
  w.BeginObject();
  w.Key("name");
  w.String("cowbird-sim");
  w.EndObject();
  w.EndObject();
  for (const auto& [track, tid] : tid_of) {
    w.BeginObject();
    w.Key("name");
    w.String("thread_name");
    w.Key("ph");
    w.String("M");
    w.Key("ts");
    w.Uint(0);
    w.Key("pid");
    w.Uint(1);
    w.Key("tid");
    w.Int(tid);
    w.Key("args");
    w.BeginObject();
    w.Key("name");
    w.String(track);
    w.EndObject();
    w.EndObject();
  }
  for (const TraceEvent& ev : events) {
    w.BeginObject();
    w.Key("name");
    w.String(ev.name);
    w.Key("cat");
    w.String(ev.cat);
    w.Key("ph");
    w.String(std::string_view(&ev.ph, 1));
    w.Key("ts");
    EmitMicros(w, ev.ts);
    w.Key("pid");
    w.Uint(1);
    w.Key("tid");
    w.Int(ev.tid);
    if (ev.ph == 'X') {
      w.Key("dur");
      EmitMicros(w, ev.dur);
    }
    if (ev.ph == 'i') {
      w.Key("s");
      w.String("t");
    }
    if (ev.ph == 'b' || ev.ph == 'e') {
      w.Key("id");
      w.String(ev.id);
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

bool ValidateChromeTrace(std::string_view json, std::string* error) {
  auto fail = [error](const std::string& message) {
    if (error != nullptr && error->empty()) *error = message;
    return false;
  };
  std::string parse_error;
  const auto doc = ParseJson(json, &parse_error);
  if (!doc) return fail("parse error: " + parse_error);
  if (!doc->IsObject()) return fail("top level is not an object");
  const JsonValue* events = doc->Find("traceEvents");
  if (events == nullptr || !events->IsArray()) {
    return fail("missing traceEvents array");
  }
  // Open async ("b") event timestamps per cat/id, used as a stack.
  std::map<std::string, std::vector<double>> open_async;
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& ev = events->array[i];
    const std::string at = "event " + std::to_string(i) + ": ";
    if (!ev.IsObject()) return fail(at + "not an object");
    const JsonValue* name = ev.Find("name");
    if (name == nullptr || !name->IsString()) return fail(at + "bad name");
    const JsonValue* ph = ev.Find("ph");
    if (ph == nullptr || !ph->IsString() || ph->string.size() != 1) {
      return fail(at + "bad ph");
    }
    for (const char* field : {"ts", "pid", "tid"}) {
      const JsonValue* v = ev.Find(field);
      if (v == nullptr || !v->IsNumber()) {
        return fail(at + "bad " + field);
      }
    }
    const double ts = ev.Find("ts")->number;
    if (ts < 0) return fail(at + "negative ts");
    switch (ph->string[0]) {
      case 'M':
        break;
      case 'i':
        break;
      case 'X': {
        const JsonValue* dur = ev.Find("dur");
        if (dur == nullptr || !dur->IsNumber() || dur->number < 0) {
          return fail(at + "X event without non-negative dur");
        }
        break;
      }
      case 'b':
      case 'e': {
        const JsonValue* cat = ev.Find("cat");
        const JsonValue* id = ev.Find("id");
        if (cat == nullptr || !cat->IsString() || id == nullptr ||
            !id->IsString()) {
          return fail(at + "async event without cat/id");
        }
        auto& stack = open_async[cat->string + "\x1f" + id->string];
        if (ph->string[0] == 'b') {
          stack.push_back(ts);
        } else {
          if (stack.empty()) return fail(at + "'e' without matching 'b'");
          if (ts < stack.back()) return fail(at + "'e' before its 'b'");
          stack.pop_back();
        }
        break;
      }
      default:
        return fail(at + "unknown ph '" + ph->string + "'");
    }
  }
  for (const auto& [id, stack] : open_async) {
    if (!stack.empty()) {
      return fail("unbalanced async span id " + id.substr(id.find('\x1f') + 1));
    }
  }
  return true;
}

}  // namespace cowbird::telemetry
