// Virtual-time span tracing for the simulator, exported as Chrome Trace
// Event Format JSON (load in chrome://tracing or https://ui.perfetto.dev).
//
// Two kinds of record:
//
//   * Generic spans/instants on named tracks — engine activities like probe
//     rounds, GBN recovery windows, hazard pauses. Exported as complete
//     ("X") and instant ("i") events; each track becomes a named thread.
//   * Op lifecycle phases — every client op is keyed by
//     OpKey{instance, thread, is_write, seq} (the client and both engines
//     compute identical keys independently, because all sides assign
//     1-based per-type sequence numbers in FIFO order). Each side stamps
//     the phase boundaries it owns against the shared virtual clock:
//
//       kIssue    client enqueued the op (before any post cost is charged)
//       kParsed   engine fetched + parsed the metadata entry (probe pickup)
//       kExecute  engine issued the data-path transfer
//       kDone     engine completed the op and published progress
//       kRetired  client observed the red block and delivered the result
//
//     The four segments between consecutive boundaries tile the op's whole
//     client-observed latency exactly — tests assert the sum matches to the
//     nanosecond. Ops overlap freely within a thread (async issue), so they
//     are exported as async ("b"/"e") event nests, one id per op.
//
// The tracer reads time through a Clock callback rather than depending on
// sim::Simulation, keeping the telemetry library at the bottom of the
// dependency graph.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.h"

namespace cowbird::telemetry {

using Clock = std::function<Nanos()>;

// Identity of one client op, computable independently by client and engine.
struct OpKey {
  std::uint32_t instance_id = 0;
  std::uint32_t thread = 0;
  bool is_write = false;
  std::uint64_t seq = 0;  // 1-based per-(instance, thread, type) sequence

  friend auto operator<=>(const OpKey&, const OpKey&) = default;
  std::string ToString() const;  // e.g. "i1/t0/R#12"
};

enum class OpPhase : int {
  kIssue = 0,
  kParsed = 1,
  kExecute = 2,
  kDone = 3,
  kRetired = 4,
};
inline constexpr int kNumOpPhases = 5;
inline constexpr int kNumOpSegments = kNumOpPhases - 1;

const char* OpPhaseName(OpPhase phase);
// Segment i covers phase i -> phase i+1: "probe_pickup", "engine_queue",
// "fabric_pool", "publish_deliver".
const char* OpSegmentName(int segment);

// Recorded phase boundaries for one op; kUnset where never stamped.
struct OpBreakdown {
  static constexpr Nanos kUnset = -1;

  OpKey key;
  std::array<Nanos, kNumOpPhases> at = {kUnset, kUnset, kUnset, kUnset,
                                        kUnset};

  Nanos PhaseAt(OpPhase phase) const { return at[static_cast<int>(phase)]; }
  bool Complete() const;
  // Retired minus issue; only meaningful when Complete().
  Nanos Total() const;
  // Duration of segment i; only meaningful when Complete().
  Nanos Segment(int segment) const;
  Nanos SumOfSegments() const;
};

class SpanTracer {
 public:
  explicit SpanTracer(Clock clock);
  SpanTracer(const SpanTracer&) = delete;
  SpanTracer& operator=(const SpanTracer&) = delete;

  Nanos Now() const { return clock_(); }

  // Re-seats the clock — for harnesses that build their simulation after
  // the hub exists (the chaos runner owns a private Simulation per run).
  void SetClock(Clock clock) { clock_ = std::move(clock); }

  // -- Generic spans ------------------------------------------------------
  struct SpanHandle {
    std::size_t index = static_cast<std::size_t>(-1);
    bool valid() const { return index != static_cast<std::size_t>(-1); }
  };
  SpanHandle Begin(std::string_view track, std::string_view name);
  void End(SpanHandle handle);  // no-op on an invalid handle
  void Instant(std::string_view track, std::string_view name);

  // -- Op lifecycle -------------------------------------------------------
  void RecordOp(const OpKey& key, OpPhase phase) {
    RecordOpAt(key, phase, clock_());
  }
  // Explicit-timestamp variant for callers that capture Now() before
  // charging simulated work (the client's issue path does).
  void RecordOpAt(const OpKey& key, OpPhase phase, Nanos ts);

  const OpBreakdown* FindOp(const OpKey& key) const;
  const std::map<OpKey, OpBreakdown>& ops() const { return ops_; }

  std::size_t span_count() const { return spans_.size(); }
  std::size_t instant_count() const { return instants_.size(); }

  // Long benchmark runs can issue millions of ops; recording stops at the
  // capacity and counts what was dropped rather than growing without bound.
  void SetOpCapacity(std::size_t n) { op_capacity_ = n; }
  void SetSpanCapacity(std::size_t n) { span_capacity_ = n; }
  void SetInstantCapacity(std::size_t n) { instant_capacity_ = n; }
  std::uint64_t dropped_ops() const { return dropped_ops_; }
  std::uint64_t dropped_spans() const { return dropped_spans_; }
  std::uint64_t dropped_instants() const { return dropped_instants_; }

  // Folds another tracer's records into this one: spans and instants are
  // appended in the other tracer's order, op breakdowns merge per key with
  // already-stamped phases winning (each side of a domain cut stamps a
  // disjoint phase subset), dropped counters sum. Merging per-domain tracers
  // in domain order gives a deterministic aggregate.
  void MergeFrom(const SpanTracer& other);

  // Chrome Trace Event Format JSON: {"displayTimeUnit":"ns",
  // "traceEvents":[...]}. Deterministic for a deterministic run. Spans
  // still open are clamped to the current virtual time.
  std::string ToChromeTraceJson() const;

 private:
  struct Span {
    std::string track;
    std::string name;
    Nanos begin = 0;
    Nanos end = -1;  // -1 while open
  };
  struct InstantEvent {
    std::string track;
    std::string name;
    Nanos ts = 0;
  };

  Clock clock_;
  std::vector<Span> spans_;
  std::vector<InstantEvent> instants_;
  std::map<OpKey, OpBreakdown> ops_;
  std::size_t op_capacity_ = 1u << 18;
  std::size_t span_capacity_ = 1u << 18;
  std::size_t instant_capacity_ = 1u << 18;
  std::uint64_t dropped_ops_ = 0;
  std::uint64_t dropped_spans_ = 0;
  std::uint64_t dropped_instants_ = 0;
};

// Structural validator for the exported trace (used by tests and the bench
// drivers): parses the JSON strictly, checks every event has name/ph/ts/
// pid/tid, "X" events carry a non-negative dur, and async "b"/"e" pairs
// balance per id with non-decreasing timestamps.
bool ValidateChromeTrace(std::string_view json, std::string* error = nullptr);

}  // namespace cowbird::telemetry
