// Key generators for the evaluation workloads.
//
// The Zipfian generator is the standard YCSB construction (Gray et al.) so
// that "YCSB, Zipfian theta = 0.99" means the same distribution the paper
// benchmarked. Zeta constants are computed once per (n, theta).
#pragma once

#include <cmath>
#include <cstdint>

#include "common/check.h"
#include "common/rng.h"

namespace cowbird::workload {

class UniformGenerator {
 public:
  explicit UniformGenerator(std::uint64_t n) : n_(n) { COWBIRD_CHECK(n > 0); }
  std::uint64_t Next(Rng& rng) const { return rng.Below(n_); }

 private:
  std::uint64_t n_;
};

class ZipfianGenerator {
 public:
  ZipfianGenerator(std::uint64_t n, double theta = 0.99)
      : n_(n), theta_(theta) {
    COWBIRD_CHECK(n > 0);
    COWBIRD_CHECK(theta > 0 && theta < 1);
    zetan_ = Zeta(n, theta);
    zeta2_ = Zeta(2, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2_ / zetan_);
  }

  std::uint64_t Next(Rng& rng) const {
    const double u = rng.NextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    const auto rank = static_cast<std::uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return rank >= n_ ? n_ - 1 : rank;
  }

  // YCSB scrambles the rank so hot keys are scattered over the key space.
  std::uint64_t NextScrambled(Rng& rng) const {
    return Fnv(Next(rng)) % n_;
  }

 private:
  static double Zeta(std::uint64_t n, double theta) {
    double sum = 0;
    for (std::uint64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }
  static std::uint64_t Fnv(std::uint64_t v) {
    std::uint64_t hash = 14695981039346656037ull;
    for (int i = 0; i < 8; ++i) {
      hash ^= (v >> (i * 8)) & 0xFF;
      hash *= 1099511628211ull;
    }
    return hash;
  }

  std::uint64_t n_;
  double theta_;
  double zetan_;
  double zeta2_;
  double alpha_;
  double eta_;
};

}  // namespace cowbird::workload
